# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench bench-scale bench-server tools experiments crashtest crashtest-short crashtest-batch shardtest grouptest faulttest replicatetest migratetest audit obstest docs-check fuzz clean

all: build test

build:
	go build ./...

test: crashtest-short shardtest grouptest faulttest replicatetest migratetest audit obstest docs-check
	go test ./...

# Documentation hygiene: vet, formatting, and Markdown link integrity.
docs-check:
	go vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	go run ./cmd/docslint

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Flat-combining contention microbenchmarks: batch formation and amortized
# per-op cost at 1..8 writers, plus the engine-level scaling sweep (batched
# durability rounds must push fences/tx below the solo floor of 4).
bench-scale: tools
	go test -bench 'Combiner|Execute' -benchtime 100000x ./internal/flatcombine
	./bin/romulus-bench -workload swaps -engines rom,romlog,romlr -ops 4000 -threads 1,2,4,8

tools:
	go build -o bin/ ./cmd/...

# Regenerate every table and figure of the paper (moderate fidelity;
# raise -secs / -n for the paper's full 20-second, 1M-op settings).
experiments: tools
	mkdir -p results
	./bin/romulus-table1 -stores 64 -txs 200                         | tee results/table1.txt
	./bin/romulus-recover -sizes 1000,10000,100000,1000000           | tee results/recovery.txt
	./bin/romulus-bench -fig 4 -threads 1,2,4,8 -secs 0.5            | tee results/fig4.txt
	./bin/romulus-bench -fig 5 -threads 1,2,4,8 -secs 0.5            | tee results/fig5.txt
	./bin/romulus-bench -fig 6 -threads 1,4 -secs 0.5 -sizes 10000,100000,1000000 | tee results/fig6.txt
	./bin/romulus-bench -fig 7 -threads 2,4,8,16 -secs 0.5           | tee results/fig7.txt
	./bin/romulus-db -n 100000 -threads 1,2,4                        | tee results/fig8.txt
	./bin/romulus-sps -secs 0.3                                      | tee results/fig9.txt
	./bin/romulus-bench -pwbhist                                     | tee results/pwbhist.txt
	./bin/romulus-bench -workload swaps -ops 2000 -threads 1,2,4,8 -audit -json results/BENCH_swaps.json -append | tee results/workload_swaps.txt
	./bin/romulus-bench -workload map -ops 2000 -threads 1,2,4,8 -audit -json results/BENCH_map.json -append    | tee results/workload_map.txt
	./bin/romulus-bench -shards 1,2,4 -threads 4 -ops 2000 -audit -json results/BENCH_shard.json -append       | tee results/workload_shard.txt
	./bin/romulus-bench -migrate -threads 1 -ops 2000 -audit -json results/BENCH_shard.json -append            | tee results/workload_rebalance.txt
	./bin/romulus-bench -server 1,2,8,32,64,256,1024 -ops 4000 -audit -json results/BENCH_server.json -append  | tee results/workload_server.txt
	./bin/benchcheck results/BENCH_swaps.json results/BENCH_map.json results/BENCH_shard.json results/BENCH_server.json

# Network group-commit sweep alone: pipelined connections against the
# loopback server, up through saturation at 1024; fences per acknowledged
# write must fall below one once 8+ connections share durability rounds,
# and the p99 ack-latency SLO rows at the high counts are gated by
# benchcheck's trajectory ceiling (docs/PROTOCOL.md).
bench-server: tools
	mkdir -p results
	./bin/romulus-bench -server 1,2,8,32,64,256,1024 -ops 4000 -audit -json results/BENCH_server.json -append | tee results/workload_server.txt
	./bin/benchcheck results/BENCH_server.json

crashtest: tools
	./bin/romulus-crashtest -rounds 2000 -chain 3 -engines all -threads 4

# Combined-batch crash campaign: crashes aimed inside flat-combined
# durability rounds; recovery must expose every batch all-or-nothing.
crashtest-batch: tools
	./bin/romulus-crashtest -batch -rounds 1000 -chain 2 -threads 4 -audit

# Quick crash-chain pass under the race detector; part of `make test`.
crashtest-short:
	go run -race ./cmd/romulus-crashtest -seed 1 -rounds 250 -chain 3 -engines all -threads 4

# Cross-shard crash campaign: whole-process crash images across every shard
# device plus the coordinator log; in-doubt two-phase batches must resolve
# all-or-nothing under the auditor. Part of `make test`.
shardtest:
	go run -race ./cmd/romulus-crashtest -xshard -audit -seed 1 -rounds 120 -chain 2 -shards 3

# Network group-commit crash campaign under the race detector: concurrent
# pipelined connections share durability rounds through the server's group
# committer; crashes inside those rounds must lose no acknowledged write and
# never split a batch (docs/PROTOCOL.md durability contract). Part of
# `make test`.
grouptest:
	go run -race ./cmd/romulus-crashtest -group -audit -seed 1 -rounds 150 -chain 2 -threads 6

# Media-fault torture under the race detector: each round chains a torn
# crash, bit rot and sticky/transient media faults through recovery for
# every engine, asserting damage is lost-and-reported, never
# corrupt-and-served (docs/FAULTS.md). Part of `make test`.
faulttest:
	go run -race ./cmd/romulus-crashtest -faults -audit -seed 1 -rounds 60

# Mid-replicate crash campaign under the race detector: crashes armed a few
# persistence events past a random commit's durable point land inside
# dirty-range (or full-copy) replication; recovered lanes must replay each
# worker's surviving operation prefix exactly (DESIGN.md dirty-extent
# tracking). Part of `make test`.
replicatetest:
	go run -race ./cmd/romulus-crashtest -replicate -audit -seed 1 -rounds 150 -chain 2 -threads 2

# Mid-migration crash campaign under the race detector: crashes land inside
# the copy, cutover and cleanup phases of an online shard split — and inside
# recovery itself, chained — while a workload keeps writing to the moving
# keyspace; every key must recover to exactly one owner, with in-flight
# splits rolled back (journal in copy) or carried forward (journal past
# cutover) and no acknowledged write lost (docs/SHARDING.md). The left-right
# publish interleavings replica reads ride during the split run under the
# race detector too. Part of `make test`.
migratetest:
	go test -race ./internal/leftright/
	go run -race ./cmd/romulus-crashtest -migrate -audit -seed 1 -rounds 60 -chain 2

# Crash-chain campaign with the durability auditor chained in front of the
# crash scheduler: any dirty or unfenced line at a commit marker, any
# durably-claimed line lost at a crash, and any unflushed line at engine
# close fails the run. Part of `make test`.
audit:
	go run ./cmd/romulus-crashtest -audit -seed 1 -rounds 250 -chain 3 -engines all -threads 4

# Observability surface under the race detector: the metrics registry and
# span recorder (internal/obs), the HTTP ops endpoints (internal/obshttp),
# the pmem flight recorder (internal/blackbox), and the server's span
# pipeline (internal/server). Part of `make test`.
obstest:
	go test -race ./internal/obs/ ./internal/obshttp/ ./internal/blackbox/ ./internal/server/

fuzz:
	go test -fuzz FuzzAllocFree -fuzztime 60s ./internal/alloc
	go test -fuzz FuzzCrashRecovery -fuzztime 60s ./internal/core

clean:
	rm -rf bin
