// Bank-ledger example: concurrent transfers and wait-free auditors on a
// RomulusLR engine. Updates go through flat combining (many transfers can
// share one durable transaction); read-only audits use the Left-Right
// mechanism and never block, even while a transfer is in flight (§5.3 of
// the paper).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	romulus "repro"
)

const (
	accounts = 64
	initial  = 1_000
)

func main() {
	eng, err := romulus.New(8<<20, romulus.Config{Variant: romulus.RomLR})
	if err != nil {
		log.Fatal(err)
	}
	var ledger romulus.Ptr
	err = eng.Update(func(tx romulus.Tx) error {
		p, err := tx.Alloc(accounts * 8)
		if err != nil {
			return err
		}
		for i := 0; i < accounts; i++ {
			tx.Store64(p+romulus.Ptr(i*8), initial)
		}
		tx.SetRoot(0, p)
		ledger = p
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	var transfers, audits atomic.Int64
	stop := make(chan struct{})

	// Four tellers moving money around; each transfer is one durable tx.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h, err := eng.NewHandle()
			if err != nil {
				log.Println(err)
				return
			}
			defer h.Release()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2_000; i++ {
				from := romulus.Ptr(rng.Intn(accounts) * 8)
				to := romulus.Ptr(rng.Intn(accounts) * 8)
				amount := uint64(rng.Intn(20))
				h.Update(func(tx romulus.Tx) error {
					balance := tx.Load64(ledger + from)
					if balance < amount {
						return nil
					}
					tx.Store64(ledger+from, balance-amount)
					tx.Store64(ledger+to, tx.Load64(ledger+to)+amount)
					return nil
				})
				transfers.Add(1)
			}
		}(int64(w))
	}

	// Two auditors continuously checking that money is conserved. Under
	// RomulusLR these reads are wait-free: they run against the back copy
	// while a writer mutates main.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := eng.NewHandle()
			if err != nil {
				log.Println(err)
				return
			}
			defer h.Release()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Read(func(tx romulus.Tx) error {
					var sum uint64
					for i := 0; i < accounts; i++ {
						sum += tx.Load64(ledger + romulus.Ptr(i*8))
					}
					if sum != accounts*initial {
						log.Fatalf("audit failed: sum = %d", sum)
					}
					return nil
				})
				audits.Add(1)
				runtime.Gosched()
			}
		}()
	}

	// Wait for the tellers, then stop the auditors.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for transfers.Load() < 4*2_000 {
		runtime.Gosched()
	}
	close(stop)
	<-done

	s := eng.Stats()
	fmt.Printf("transfers: %d  audits: %d  combined ops: %d\n",
		transfers.Load(), audits.Load(), s.Combined)
	eng.Read(func(tx romulus.Tx) error {
		var sum uint64
		for i := 0; i < accounts; i++ {
			sum += tx.Load64(ledger + romulus.Ptr(i*8))
		}
		fmt.Printf("final balance sum: %d (expected %d) — money conserved\n", sum, accounts*initial)
		return nil
	})
}
