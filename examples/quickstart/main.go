// Quickstart: create a Romulus engine, persist a linked-list set inside
// durable transactions, save the region to a file, and reopen it — the Go
// analogue of Algorithm 3 in the paper.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	romulus "repro"
)

func main() {
	path := filepath.Join(os.TempDir(), "romulus-quickstart.pm")
	os.Remove(path)

	// A fresh engine: twin copies of 8 MiB, RomulusLog algorithm.
	eng, err := romulus.New(8<<20, romulus.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Create a persistent sorted set under root 0 and add a few keys.
	// Everything inside Update is one durable transaction: if the process
	// died mid-way, recovery would roll the whole thing back.
	var set *romulus.LinkedListSet
	err = eng.Update(func(tx romulus.Tx) error {
		var err error
		set, err = romulus.NewLinkedListSet(tx, 0)
		if err != nil {
			return err
		}
		for _, k := range []uint64{33, 7, 21} {
			if _, err := set.Add(tx, k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Read transactions are cheap and concurrent.
	eng.Read(func(tx romulus.Tx) error {
		fmt.Println("contains 21:", set.Contains(tx, 21))
		fmt.Println("keys:", set.Keys(tx, nil))
		return nil
	})

	// Persist the region image and reopen it, as if after a restart.
	if err := eng.Device().SaveFile(path); err != nil {
		log.Fatal(err)
	}
	reopened, err := romulus.OpenFile(path, romulus.Config{})
	if err != nil {
		log.Fatal(err)
	}
	set2 := romulus.AttachLinkedListSet(0)
	reopened.Read(func(tx romulus.Tx) error {
		fmt.Println("after reopen, keys:", set2.Keys(tx, nil))
		return nil
	})

	s := reopened.Stats()
	fmt.Printf("engine %s: %d update txs, %d read txs\n", reopened.Name(), s.UpdateTxs, s.ReadTxs)
	os.Remove(path)
}
