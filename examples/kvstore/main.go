// RomulusDB example: the durable key-value store of §6.4 of the paper,
// exercised through its LevelDB-style interface — single puts, atomic
// batches, snapshot iteration, and restart from a saved image.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	romulus "repro"
)

func main() {
	path := filepath.Join(os.TempDir(), "romulusdb-example.img")
	os.Remove(path)

	db, err := romulus.OpenDB(romulus.DBOptions{RegionSize: 16 << 20, Path: path})
	if err != nil {
		log.Fatal(err)
	}

	// Every Put is immediately durable — there is no WriteOptions.sync to
	// forget, unlike LevelDB's buffered default.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("user:%04d", i)
		val := fmt.Sprintf(`{"name":"user-%d","score":%d}`, i, i*i)
		if err := db.Put([]byte(key), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}

	// Atomic, durable batch: all or nothing.
	var batch romulus.DBBatch
	batch.Put([]byte("user:0004"), []byte(`{"name":"user-4","score":99}`))
	batch.Delete([]byte("user:0000"))
	if err := db.Write(&batch); err != nil {
		log.Fatal(err)
	}

	v, err := db.Get([]byte("user:0004"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user:0004 =", string(v))
	fmt.Println("live pairs:", db.Len())

	// Snapshot iteration inside one read transaction.
	fmt.Println("full scan:")
	db.Range(false, func(k, v []byte) bool {
		fmt.Printf("  %s = %s\n", k, v)
		return true
	})

	// Close writes the image to disk; reopening recovers it.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	db2, err := romulus.OpenDB(romulus.DBOptions{RegionSize: 16 << 20, Path: path})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after reopen, live pairs:", db2.Len())
	db2.Close()
	os.Remove(path)
}
