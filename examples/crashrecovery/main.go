// Crash-recovery demo: interrupt an update transaction at an arbitrary
// persistence point with a simulated power failure, then let Romulus's
// recovery (Algorithm 1) restore the last consistent state. The transfer
// below either happens entirely or not at all — never halfway.
package main

import (
	"fmt"
	"log"

	romulus "repro"
	"repro/internal/pmem"
)

func main() {
	eng, err := romulus.New(4<<20, romulus.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Two persistent "accounts" with 100 units each.
	var acctA, acctB romulus.Ptr
	err = eng.Update(func(tx romulus.Tx) error {
		p, err := tx.Alloc(16)
		if err != nil {
			return err
		}
		acctA, acctB = p, p+8
		tx.Store64(acctA, 100)
		tx.Store64(acctB, 100)
		tx.SetRoot(0, p)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Capture a power-failure image in the middle of a transfer: after the
	// debit has been stored and flushed, before the credit commits.
	dev := eng.Device()
	var crashImage []byte
	dev.SetHooks(&pmem.Hooks{Pwb: func(n uint64) {
		if crashImage == nil {
			// DropAll: everything not yet fenced is lost — the adversarial
			// worst case for a mid-transaction failure.
			crashImage = dev.CrashImage(pmem.DropAll)
		}
	}})
	err = eng.Update(func(tx romulus.Tx) error {
		tx.Store64(acctA, tx.Load64(acctA)-30) // debit (crash lands here)
		tx.Store64(acctB, tx.Load64(acctB)+30) // credit
		return nil
	})
	dev.SetHooks(nil)
	if err != nil {
		log.Fatal(err)
	}

	eng.Read(func(tx romulus.Tx) error {
		fmt.Printf("live engine after commit:   A=%d B=%d (sum %d)\n",
			tx.Load64(acctA), tx.Load64(acctB), tx.Load64(acctA)+tx.Load64(acctB))
		return nil
	})

	// "Reboot" from the crash image: Open runs recovery, which copies the
	// back region over the torn main region.
	recovered, err := romulus.Open(pmem.FromImage(crashImage, pmem.ModelDRAM), romulus.Config{})
	if err != nil {
		log.Fatal(err)
	}
	recovered.Read(func(tx romulus.Tx) error {
		p := tx.Root(0)
		a, b := tx.Load64(p), tx.Load64(p+8)
		fmt.Printf("recovered after mid-tx loss: A=%d B=%d (sum %d)\n", a, b, a+b)
		if a+b != 200 {
			log.Fatal("invariant violated!")
		}
		if a == 70 && b == 130 {
			fmt.Println("-> the whole transfer survived")
		} else if a == 100 && b == 100 {
			fmt.Println("-> the whole transfer was rolled back; money is conserved")
		}
		return nil
	})
}
