package romulus_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	romulus "repro"
)

// TestPublicAPIQuickstart walks the README quick-start path end to end
// through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	eng, err := romulus.New(4<<20, romulus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(func(tx romulus.Tx) error {
		p, err := tx.Alloc(16)
		if err != nil {
			return err
		}
		tx.Store64(p, 42)
		tx.SetRoot(0, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Read(func(tx romulus.Tx) error {
		if got := tx.Load64(tx.Root(0)); got != 42 {
			return fmt.Errorf("got %d", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIVariantsAndModels(t *testing.T) {
	for _, v := range []romulus.Variant{romulus.Rom, romulus.RomLog, romulus.RomLR} {
		eng, err := romulus.New(2<<20, romulus.Config{Variant: v, Model: romulus.ModelSTT})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Update(func(tx romulus.Tx) error {
			_, err := tx.Alloc(8)
			return err
		}); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

func TestPublicAPIStructures(t *testing.T) {
	eng, err := romulus.New(4<<20, romulus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var set *romulus.LinkedListSet
	var tree *romulus.RBTree
	if err := eng.Update(func(tx romulus.Tx) error {
		var err error
		if set, err = romulus.NewLinkedListSet(tx, 0); err != nil {
			return err
		}
		if tree, err = romulus.NewRBTree(tx, 1); err != nil {
			return err
		}
		if _, err := set.Add(tx, 7); err != nil {
			return err
		}
		_, err = tree.Put(tx, 7, 70)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	eng.Read(func(tx romulus.Tx) error {
		if !set.Contains(tx, 7) {
			t.Error("set lost 7")
		}
		if v, err := tree.Get(tx, 7); err != nil || v != 70 {
			t.Errorf("tree Get = %d, %v", v, err)
		}
		return nil
	})
}

func TestPublicAPIFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "region.pm")
	eng, err := romulus.New(2<<20, romulus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(func(tx romulus.Tx) error {
		p, err := tx.Alloc(8)
		if err != nil {
			return err
		}
		tx.Store64(p, 99)
		tx.SetRoot(3, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Device().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, err := romulus.OpenFile(path, romulus.Config{})
	if err != nil {
		t.Fatal(err)
	}
	re.Read(func(tx romulus.Tx) error {
		if got := tx.Load64(tx.Root(3)); got != 99 {
			t.Errorf("after reopen: %d", got)
		}
		return nil
	})
}

func TestPublicAPIDB(t *testing.T) {
	db, err := romulus.OpenDB(romulus.DBOptions{RegionSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := db.Get([]byte("nope")); !errors.Is(err, romulus.ErrDBNotFound) {
		t.Fatalf("missing: %v", err)
	}
	var b romulus.DBBatch
	b.Put([]byte("a"), []byte("1"))
	b.Delete([]byte("k"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}
