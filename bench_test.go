// Benchmarks mirroring every table and figure of the paper's evaluation
// (§6), one Benchmark* family each, plus ablations of the design choices
// called out in DESIGN.md. These run at reduced scale so `go test -bench=.`
// finishes in minutes; the cmd/ tools perform the full-fidelity sweeps and
// EXPERIMENTS.md records their output.
package romulus_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// benchEngine builds an engine or fails the benchmark.
func benchEngine(b *testing.B, kind string, region int, model pmem.Model) bench.Engine {
	b.Helper()
	e, err := bench.NewEngine(kind, region, model)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkTable1 measures the per-transaction persistence costs of
// Table 1: a 64-store transaction on every engine, reporting fences and
// write-back counts per transaction as custom metrics.
func BenchmarkTable1(b *testing.B) {
	const stores = 64
	for _, kind := range bench.EngineKinds {
		b.Run(kind, func(b *testing.B) {
			e := benchEngine(b, kind, 8<<20, pmem.ModelDRAM)
			var buf ptm.Ptr
			if err := e.Update(func(tx ptm.Tx) error {
				var err error
				buf, err = tx.Alloc(stores * 8)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			h, err := e.NewHandle()
			if err != nil {
				b.Fatal(err)
			}
			defer h.Release()
			e.Device().ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Update(func(tx ptm.Tx) error {
					for s := 0; s < stores; s++ {
						tx.Store64(buf+ptm.Ptr(s*8), uint64(i+s))
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := e.Device().Stats()
			b.ReportMetric(float64(st.Pfences+st.Psyncs)/float64(b.N), "fences/tx")
			b.ReportMetric(float64(st.Pwbs)/float64(b.N), "pwbs/tx")
			b.ReportMetric(float64(st.BytesPersisted)/float64(b.N)/float64(stores*8), "persistedB/userB")
		})
	}
}

// BenchmarkFig4 is the Figure 4 workload at one thread: update operations
// (remove+insert, two transactions) and read operations (two lookups) on
// the three data structures with 1,000 keys, across all engines.
func BenchmarkFig4(b *testing.B) {
	for _, workload := range []string{"writes", "reads"} {
		for _, ds := range bench.DSKinds {
			for _, kind := range bench.EngineKinds {
				b.Run(fmt.Sprintf("%s/%s/%s", workload, ds, kind), func(b *testing.B) {
					e := benchEngine(b, kind, bench.RegionFor(1000, 8), pmem.ModelDRAM)
					d, err := bench.NewDS(e, ds, 1000, 0)
					if err != nil {
						b.Fatal(err)
					}
					h, err := e.NewHandle()
					if err != nil {
						b.Fatal(err)
					}
					defer h.Release()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						key := uint64(i*2654435761) % 1000
						if workload == "writes" {
							err = d.Update(h, key)
						} else {
							err = d.Read(h, key)
						}
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig5 is the Figure 5 workload: update operations on the fixed
// 2,048-bucket hash map with 100 entries, across value sizes.
func BenchmarkFig5(b *testing.B) {
	for _, valSize := range []int{8, 64, 256, 1024} {
		for _, kind := range []string{"romlog", "mne", "pmdk"} {
			b.Run(fmt.Sprintf("%dB/%s", valSize, kind), func(b *testing.B) {
				e := benchEngine(b, kind, bench.RegionFor(100, valSize)+2048*16, pmem.ModelDRAM)
				d, err := bench.NewDS(e, "fixed", 100, valSize)
				if err != nil {
					b.Fatal(err)
				}
				h, err := e.NewHandle()
				if err != nil {
					b.Fatal(err)
				}
				defer h.Release()
				b.SetBytes(int64(valSize))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := d.Update(h, uint64(i)%100); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6 is the Figure 6 workload: update operations on the
// resizable hash map as the population grows. The basic Rom engine's
// full-region replication is the expected outlier. (The benchmark caps at
// 100K keys; cmd/romulus-bench -fig 6 runs the 1M point.)
func BenchmarkFig6(b *testing.B) {
	for _, keys := range []int{10_000, 100_000} {
		for _, kind := range []string{"rom", "romlog", "romlr", "pmdk"} {
			b.Run(fmt.Sprintf("%dk/%s", keys/1000, kind), func(b *testing.B) {
				e := benchEngine(b, kind, bench.RegionFor(keys, 8), pmem.ModelDRAM)
				d, err := bench.NewDS(e, "hash", keys, 0)
				if err != nil {
					b.Fatal(err)
				}
				h, err := e.NewHandle()
				if err != nil {
					b.Fatal(err)
				}
				defer h.Release()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := d.Update(h, uint64(i*2654435761)%uint64(keys)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7 is the Figure 7 workload: read throughput under concurrent
// writers. It uses the duration-driven harness once per benchmark
// iteration and reports transactions per second as custom metrics.
func BenchmarkFig7(b *testing.B) {
	for _, kind := range bench.EngineKinds {
		b.Run(kind, func(b *testing.B) {
			var readTx, writeTx float64
			for i := 0; i < b.N; i++ {
				e := benchEngine(b, kind, bench.RegionFor(1000, 8), pmem.ModelDRAM)
				d, err := bench.NewDS(e, "hash", 1000, 0)
				if err != nil {
					b.Fatal(err)
				}
				res, err := bench.RunMixed(e, d, 2, 4, 1000, 100*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				readTx, writeTx = res.ReadTxPerSec, res.WriteTxPerSec
			}
			b.ReportMetric(readTx, "readTX/s")
			b.ReportMetric(writeTx, "writeTX/s")
		})
	}
}

// BenchmarkFig8 is the Figure 8 workload family on both stores at benchmark
// scale (single thread; the cmd/romulus-db tool sweeps threads and scale).
func BenchmarkFig8(b *testing.B) {
	for _, db := range []string{"romdb", "leveldb"} {
		for _, w := range bench.DBWorkloads {
			b.Run(fmt.Sprintf("%s/%s", w, db), func(b *testing.B) {
				var micros float64
				for i := 0; i < b.N; i++ {
					res, err := bench.RunDBBench(db, w, b.TempDir(), 1, 2000)
					if err != nil {
						b.Fatal(err)
					}
					micros = res.MicrosPerOp
				}
				b.ReportMetric(micros, "µs/op")
			})
		}
	}
}

// BenchmarkFig9 is the SPS microbenchmark of Figure 9 across transaction
// sizes, under the CLFLUSH model (the paper's main machine) and the PCM
// latency model. Reported ns/op is per swap.
func BenchmarkFig9(b *testing.B) {
	for _, model := range []pmem.Model{pmem.ModelCLFLUSH, pmem.ModelPCM} {
		for _, swaps := range []int{1, 8, 64, 1024} {
			for _, kind := range bench.EngineKinds {
				b.Run(fmt.Sprintf("%s/swaps%d/%s", model.Name, swaps, kind), func(b *testing.B) {
					e := benchEngine(b, kind, (10_000*8)+(8<<20), model)
					var arr ptm.Ptr
					if err := e.Update(func(tx ptm.Tx) error {
						var err error
						arr, err = tx.Alloc(10_000 * 8)
						return err
					}); err != nil {
						b.Fatal(err)
					}
					h, err := e.NewHandle()
					if err != nil {
						b.Fatal(err)
					}
					defer h.Release()
					rng := uint64(12345)
					b.ResetTimer()
					for i := 0; i < b.N; i += swaps {
						if err := h.Update(func(tx ptm.Tx) error {
							for s := 0; s < swaps; s++ {
								rng = rng*6364136223846793005 + 1
								x := ptm.Ptr(rng % 10000 * 8)
								rng = rng*6364136223846793005 + 1
								y := ptm.Ptr(rng % 10000 * 8)
								a, c := tx.Load64(arr+x), tx.Load64(arr+y)
								tx.Store64(arr+x, c)
								tx.Store64(arr+y, a)
							}
							return nil
						}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkRecovery measures §6.5: recovery time after a mid-transaction
// crash, as a function of the population.
func BenchmarkRecovery(b *testing.B) {
	for _, entries := range []int{1000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("%dkv", entries), func(b *testing.B) {
			var last bench.RecoveryResult
			for i := 0; i < b.N; i++ {
				res, err := bench.MeasureRecovery(entries)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Duration.Microseconds()), "recovery-µs")
			b.ReportMetric(float64(last.Watermark), "copied-bytes")
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

// runUpdateBench drives the standard 1,000-key hash-map update op on a
// core engine with the given config.
func runUpdateBench(b *testing.B, cfg core.Config) {
	e, err := core.New(bench.RegionFor(1000, 8), cfg)
	if err != nil {
		b.Fatal(err)
	}
	d, err := bench.NewDS(e, "hash", 1000, 0)
	if err != nil {
		b.Fatal(err)
	}
	h, err := e.NewHandle()
	if err != nil {
		b.Fatal(err)
	}
	defer h.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Update(h, uint64(i*2654435761)%1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLogMerge compares the volatile log with and without
// in-place merging of adjacent entries.
func BenchmarkAblationLogMerge(b *testing.B) {
	b.Run("merge", func(b *testing.B) {
		runUpdateBench(b, core.Config{Variant: core.RomLog})
	})
	b.Run("no-merge", func(b *testing.B) {
		runUpdateBench(b, core.Config{Variant: core.RomLog, DisableLogMerge: true})
	})
}

// BenchmarkAblationPwbDedup compares per-store write-backs against
// deferring them to commit (one pwb per modified line from the compacted
// log).
func BenchmarkAblationPwbDedup(b *testing.B) {
	b.Run("per-store", func(b *testing.B) {
		runUpdateBench(b, core.Config{Variant: core.RomLog})
	})
	b.Run("deferred", func(b *testing.B) {
		runUpdateBench(b, core.Config{Variant: core.RomLog, DeferPwb: true})
	})
}

// BenchmarkAblationFlatCombining compares contended writers with and
// without operation combining.
func BenchmarkAblationFlatCombining(b *testing.B) {
	for name, cfg := range map[string]core.Config{
		"combining": {Variant: core.RomLog},
		"spinlock":  {Variant: core.RomLog, DisableFlatCombining: true},
	} {
		b.Run(name, func(b *testing.B) {
			e, err := core.New(bench.RegionFor(1000, 8), cfg)
			if err != nil {
				b.Fatal(err)
			}
			d, err := bench.NewDS(e, "hash", 1000, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				h, err := e.NewHandle()
				if err != nil {
					b.Error(err)
					return
				}
				defer h.Release()
				i := uint64(0)
				for pb.Next() {
					if err := d.Update(h, (i*2654435761)%1000); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkAblationReaderSync compares the two reader mechanisms: C-RW-WP
// (RomLog) vs Left-Right (RomLR) for read transactions.
func BenchmarkAblationReaderSync(b *testing.B) {
	for _, v := range []core.Variant{core.RomLog, core.RomLR} {
		b.Run(v.String(), func(b *testing.B) {
			e, err := core.New(bench.RegionFor(1000, 8), core.Config{Variant: v})
			if err != nil {
				b.Fatal(err)
			}
			d, err := bench.NewDS(e, "hash", 1000, 0)
			if err != nil {
				b.Fatal(err)
			}
			h, err := e.NewHandle()
			if err != nil {
				b.Fatal(err)
			}
			defer h.Release()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Read(h, uint64(i)%1000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBasicVsLog shows why the volatile log exists (§4.7):
// one small update on a region holding ever more data.
func BenchmarkAblationBasicVsLog(b *testing.B) {
	for _, heapKB := range []int{64, 1024} {
		for _, v := range []core.Variant{core.Rom, core.RomLog} {
			b.Run(fmt.Sprintf("%dKB/%s", heapKB, v), func(b *testing.B) {
				e, err := core.New(heapKB<<10+core.MinRegionSize, core.Config{Variant: v})
				if err != nil {
					b.Fatal(err)
				}
				var p ptm.Ptr
				if err := e.Update(func(tx ptm.Tx) error {
					var err error
					p, err = tx.Alloc(heapKB << 10) // grow the watermark
					return err
				}); err != nil {
					b.Fatal(err)
				}
				h, err := e.NewHandle()
				if err != nil {
					b.Fatal(err)
				}
				defer h.Release()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := h.Update(func(tx ptm.Tx) error {
						tx.Store64(p, uint64(i))
						return nil
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
