package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestRunServerWorkload drives the network sweep end to end: one variant,
// 1 and 4 connections on the loopback listener, audited, JSON rows captured
// — pinning the conns row shape trajectory tooling depends on.
func TestRunServerWorkload(t *testing.T) {
	var js strings.Builder
	out, err := RunServerWorkload(ServerWorkloadOptions{
		Conns:    []int{1, 4},
		Engines:  []string{"romlog"},
		Ops:      400,
		Pipeline: 16,
		Audit:    true,
		Metrics:  true,
		JSONOut:  &js,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "conns") || !strings.Contains(out, "fences/ack") {
		t.Fatalf("table missing columns:\n%s", out)
	}
	if !strings.Contains(out, "net_group_batch_total") {
		t.Fatalf("metrics block missing group-commit counters:\n%s", out)
	}
	var rows []WorkloadResult
	sc := bufio.NewScanner(strings.NewReader(js.String()))
	for sc.Scan() {
		var row WorkloadResult
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad JSON row %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d JSON rows, want 2", len(rows))
	}
	for i, row := range rows {
		if row.Schema != WorkloadSchema || row.Workload != "server" || row.Engine != "romlog" {
			t.Fatalf("row %d malformed: %+v", i, row)
		}
		if want := []int{1, 4}[i]; row.Conns != want {
			t.Fatalf("row %d conns = %d, want %d", i, row.Conns, want)
		}
		if row.Updates == 0 || row.FencesPerTx <= 0 || row.OpsPerSec <= 0 {
			t.Fatalf("row %d has empty measurements: %+v", i, row)
		}
		if row.AckP50Ns == 0 || row.AckP99Ns < row.AckP50Ns {
			t.Fatalf("row %d ack latency quantiles wrong: %+v", i, row)
		}
		if row.AuditViolations != 0 || row.AuditWaste == nil {
			t.Fatalf("row %d audit fields wrong: %+v", i, row)
		}
	}
	// The sweep's reason to exist: concurrent pipelined connections share
	// durability rounds, so fences per ack must drop from 1 conn to 4.
	if rows[1].FencesPerTx >= rows[0].FencesPerTx {
		t.Errorf("fences/ack did not fall with connections: conns=1 %.3f, conns=4 %.3f",
			rows[0].FencesPerTx, rows[1].FencesPerTx)
	}
}

// TestRunServerWorkloadRejectsForeignEngine pins that engines without a
// server composition are an error, not a silent skip.
func TestRunServerWorkloadRejectsForeignEngine(t *testing.T) {
	_, err := RunServerWorkload(ServerWorkloadOptions{Engines: []string{"mne"}, Ops: 10})
	if err == nil || !strings.Contains(err.Error(), "server composition") {
		t.Fatalf("mne accepted: %v", err)
	}
}

// TestCheckTrajectoryConnsDimension pins the network-server gates: conns
// separates groups, fences_per_tx (per acked write) regressions flag within
// a conns group, and an ops_per_sec collapse flags even when fence costs
// hold steady — while in-process rows (conns 0) are never throughput-gated.
func TestCheckTrajectoryConnsDimension(t *testing.T) {
	serverRow := func(conns int, fences, opsSec float64) string {
		return fmt.Sprintf(`{"schema":"romulus-bench/workload/v1","workload":"server",`+
			`"engine":"romlog","model":"dram","threads":1,"shards":1,"conns":%d,"ops":1000,`+
			`"seed":1,"elapsed_sec":0.1,"ops_per_sec":%g,"updates":1000,"reads":0,`+
			`"fences_per_tx":%g,"pwbs_per_tx":6,"ack_p50_ns":1000,"ack_p99_ns":5000}`,
			conns, opsSec, fences)
	}

	// conns=8 fence regression is not masked by a good conns=1 history.
	in := strings.Join([]string{
		serverRow(1, 4, 10000), serverRow(8, 0.5, 50000),
		serverRow(1, 4, 10000), serverRow(8, 4, 50000),
	}, "\n")
	regs, err := CheckTrajectory(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if r := regs[0]; r.Conns != 8 || r.Metric != "fences_per_tx" || r.Newest != 4 {
		t.Fatalf("wrong group flagged: %+v", r)
	}
	if !strings.Contains(regs[0].String(), "conns=8") {
		t.Errorf("regression string %q lacks conns dimension", regs[0].String())
	}

	// Throughput collapse flags on its own, with fences holding steady.
	in = strings.Join([]string{
		serverRow(8, 0.5, 50000),
		serverRow(8, 0.5, 20000),
	}, "\n")
	regs, err = CheckTrajectory(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "ops_per_sec" {
		t.Fatalf("ops/sec collapse not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "falls below") {
		t.Errorf("regression string %q does not read as a floor", regs[0].String())
	}

	// In-process rows are never throughput-gated: the same collapse with
	// conns absent passes (timed throughput is advisory there).
	plain := strings.ReplaceAll(serverRow(0, 4, 50000), `"conns":0,`, "")
	in = plain + "\n" + strings.ReplaceAll(serverRow(0, 4, 20000), `"conns":0,`, "")
	regs, err = CheckTrajectory(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("conns-less rows throughput-gated: %v", regs)
	}
}
