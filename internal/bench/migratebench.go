package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/shard"
)

// MigrateWorkloadOptions configure RunMigrateWorkload, the online-rebalance
// scenario behind `romulus-bench -migrate`. Each data point opens a
// two-shard store, measures steady-state client throughput, then splits a
// shard while the same client load keeps running — the quantity under test
// is how much serving capacity the copy-then-cutover migration costs while
// it is in flight.
type MigrateWorkloadOptions struct {
	// Engines lists the Romulus variants to run (default all three).
	Engines []string
	// Threads is the number of concurrent client goroutines (default 4),
	// identical in the steady and during-split windows.
	Threads int
	// Ops is the number of client operations in the steady-state window
	// (default 1500). The during-split window is bounded by the split
	// itself, not by an operation count.
	Ops int
	// Keys is the resident key population preloaded before measuring
	// (default 2000); the split moves roughly a quarter of it.
	Keys int
	// Seed fixes the operation streams (default 1).
	Seed int64
	// Model is the persistence model for every device.
	Model pmem.Model
	// Metrics appends each data point's registry snapshot (shard_migrate_*
	// and placement_* included) to the output.
	Metrics bool
	// Audit chains a durability auditor onto every device — shards and
	// coordinator; any violation fails the run.
	Audit bool
	// JSONOut, when non-nil, receives one WorkloadResult row per engine
	// (workload "rebalance", shards = the pre-split count), newline-
	// delimited, in the romulus-bench/workload/v1 schema. The row's
	// rebalance_ratio is gated as an absolute SLO by the trajectory
	// checker: during-split throughput must stay at or above half of
	// steady state.
	JSONOut io.Writer
}

// rebalanceServingFloor is the acceptance SLO for online splits: client
// throughput while the migration runs may not drop below this fraction of
// the steady-state rate. RunMigrateWorkload hard-fails below it, and the
// trajectory checker re-asserts it on every appended row.
const rebalanceServingFloor = 0.5

// RunMigrateWorkload measures shardkv serving capacity during an online
// shard split, one data point per engine: steady-state ops/sec over a fixed
// operation count, then ops/sec over the whole split window (copy, cutover,
// cleanup) with the same client mix running against the moving keyspace.
func RunMigrateWorkload(opts MigrateWorkloadOptions) (string, error) {
	if len(opts.Engines) == 0 {
		opts.Engines = []string{"rom", "romlog", "romlr"}
	}
	if opts.Threads == 0 {
		opts.Threads = 4
	}
	if opts.Ops == 0 {
		opts.Ops = 1500
	}
	if opts.Keys == 0 {
		opts.Keys = 2000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var out strings.Builder
	tbl := NewTable("engine", "shards", "threads", "steady ops/sec", "split ops/sec", "ratio", "split ms", "moved keys")
	jenc := json.NewEncoder(io.Discard)
	if opts.JSONOut != nil {
		jenc = json.NewEncoder(opts.JSONOut)
	}
	var metricsBlocks []string
	for _, kind := range opts.Engines {
		variant, ok := shardVariants[kind]
		if !ok {
			return "", fmt.Errorf("bench: engine %q has no sharded composition (use %s)",
				kind, strings.Join([]string{"rom", "romlog", "romlr"}, ", "))
		}
		res, status, reg, err := runMigratePoint(kind, variant, opts, jenc)
		if err != nil {
			return "", fmt.Errorf("bench: rebalance on %s: %w", kind, err)
		}
		tbl.Row(kind, fmt.Sprintf("%d→%d", res.Shards, res.Shards+1), opts.Threads,
			res.SteadyOpsPerSec, res.OpsPerSec,
			fmt.Sprintf("%.2f", res.RebalanceRatio),
			fmt.Sprintf("%.1f", res.ElapsedSec*1e3), status.CopiedKeys)
		if opts.Metrics {
			var b strings.Builder
			fmt.Fprintf(&b, "\n# store %s rebalance\n", kind)
			if err := reg.WriteText(&b); err != nil {
				return "", err
			}
			metricsBlocks = append(metricsBlocks, b.String())
		}
	}
	out.WriteString(tbl.String())
	for _, b := range metricsBlocks {
		out.WriteString(b)
	}
	return out.String(), nil
}

// runMigratePoint drives one engine's rebalance data point. The during-split
// window measures wall-clock from Begin to the driver's completion; client
// operations finished inside it are counted on the client side (the store's
// transaction totals would also count the migration's own copy batches).
func runMigratePoint(kind string, variant core.Variant, opts MigrateWorkloadOptions, jenc *json.Encoder) (WorkloadResult, migrate.Status, *obs.Registry, error) {
	const preSplit = 2
	reg := obs.NewRegistry()
	st, err := shard.Open(shard.Options{
		Shards:     preSplit,
		RegionSize: 1 << 21,
		CoordSize:  64 << 10,
		Variant:    variant,
		Model:      opts.Model,
		Metrics:    reg,
		Audit:      opts.Audit,
	})
	if err != nil {
		return WorkloadResult{}, migrate.Status{}, nil, err
	}
	defer st.Close()

	val := make([]byte, 100)
	prng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < opts.Keys; i++ {
		prng.Read(val)
		if err := st.Put(migKey(i), val); err != nil {
			return WorkloadResult{}, migrate.Status{}, nil, err
		}
	}

	// Both windows run the same free-running client pool so they compare
	// like with like. On machines with fewer cores than clients+driver the
	// workers yield between operations, so the scheduler interleaves at
	// operation granularity instead of preemption quanta (the same
	// discipline RunMixed documents for single-core CI boxes).
	yield := opts.Threads+1 > runtime.NumCPU()
	var stop atomic.Bool
	var clientOps, clientReads atomic.Uint64
	var wg sync.WaitGroup
	werrs := make(chan error, opts.Threads)
	for w := 0; w < opts.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + 100 + int64(w)))
			v := make([]byte, 100)
			for n := 0; !stop.Load(); n++ {
				if err := migClientOp(st, rng, v, n, opts.Keys); err != nil {
					werrs <- err
					return
				}
				clientOps.Add(1)
				if n%4 == 3 {
					clientReads.Add(1)
				}
				if yield {
					runtime.Gosched()
				}
			}
		}(w)
	}
	clientErr := func() error {
		select {
		case werr := <-werrs:
			return werr
		default:
			return nil
		}
	}

	// Let the pool settle before measuring: the first tens of milliseconds
	// run in a transient scheduling regime (combiner warm-up, allocator
	// growth) whose rate is not the steady state the split gets compared
	// against.
	time.Sleep(30 * time.Millisecond)

	// Steady-state window: run the pool until Ops operations land and at
	// least 20ms elapse, the measuring goroutine sleeping between checks —
	// the same scheduling regime as the during-split window, where the
	// pacing loop also sleeps, so the two rates are comparable on
	// oversubscribed machines. Device statistics reset here so the row's
	// per-tx persistence costs describe this clean window, not setup and
	// not the migration's own traffic.
	for _, d := range st.Devices() {
		d.ResetStats()
	}
	base := shardTxTotals(st)
	steadyBase := clientOps.Load()
	start := time.Now()
	for clientOps.Load()-steadyBase < uint64(opts.Ops) || time.Since(start) < 20*time.Millisecond {
		if err := clientErr(); err != nil {
			stop.Store(true)
			wg.Wait()
			return WorkloadResult{}, migrate.Status{}, nil, err
		}
		time.Sleep(2 * time.Millisecond)
	}
	steadyElapsed := time.Since(start)
	steadyCount := clientOps.Load()
	steadyReads := clientReads.Load()
	steady := float64(steadyCount-steadyBase) / steadyElapsed.Seconds()
	fin := shardTxTotals(st)
	updates := fin.updates - base.updates
	if updates == 0 {
		updates = 1
	}
	var pwbs, fences uint64
	for _, d := range st.Devices() {
		ds := d.Stats()
		pwbs += ds.Pwbs
		fences += ds.Pfences + ds.Psyncs
	}

	// During-split window: the same clients keep running while the driver
	// splits shard 0; the window is the split's own wall-clock span. The
	// driver is paced like a production rebalance throttle — after each
	// bounded Step it sleeps 3x the step's own duration (~25% duty cycle)
	// — so the migration is capped at a minority share of the machine and
	// the measured ratio reflects the subsystem's fencing and lock
	// behavior, not raw single-core CPU competition against a hot copy
	// loop.
	drv := migrate.New(st, migrate.Options{})
	splitStart := time.Now()
	_, err = drv.Begin(0, -1)
	for err == nil {
		t0 := time.Now()
		var done bool
		done, err = drv.Step()
		if done || err != nil {
			break
		}
		time.Sleep(time.Since(t0)*4 + 50*time.Microsecond)
	}
	splitElapsed := time.Since(splitStart)
	duringOps := clientOps.Load() - steadyCount
	duringReads := clientReads.Load() - steadyReads
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return WorkloadResult{}, migrate.Status{}, nil, fmt.Errorf("split: %w", err)
	}
	if werr := clientErr(); werr != nil {
		return WorkloadResult{}, migrate.Status{}, nil, fmt.Errorf("client during split: %w", werr)
	}
	status := drv.Status()
	if status.Phase != "done" {
		return WorkloadResult{}, migrate.Status{}, nil, fmt.Errorf("split ended in phase %q", status.Phase)
	}
	if opts.Audit {
		if n := st.ViolationCount(); n > 0 {
			return WorkloadResult{}, migrate.Status{}, nil, fmt.Errorf("auditor found %d durability violation(s)", n)
		}
	}

	during := float64(duringOps) / splitElapsed.Seconds()
	ratio := during / steady
	if ratio < rebalanceServingFloor {
		return WorkloadResult{}, migrate.Status{}, nil, fmt.Errorf(
			"during-split throughput %.0f ops/sec is %.0f%% of steady %.0f — below the %.0f%% serving floor (split %.1fms, %d client ops)",
			during, ratio*100, steady, rebalanceServingFloor*100, splitElapsed.Seconds()*1e3, duringOps)
	}

	res := WorkloadResult{
		Schema:   WorkloadSchema,
		Workload: "rebalance",
		Engine:   kind,
		Model:    opts.Model.Name,
		Threads:  opts.Threads,
		Shards:   preSplit,
		Ops:      opts.Ops,
		Seed:     opts.Seed,
		// ElapsedSec and OpsPerSec describe the during-split window — the
		// serving capacity the row exists to gate.
		ElapsedSec:      splitElapsed.Seconds(),
		OpsPerSec:       during,
		Updates:         duringOps - duringReads,
		Reads:           duringReads,
		FencesPerTx:     float64(fences) / float64(updates),
		PwbsPerTx:       float64(pwbs) / float64(updates),
		SteadyOpsPerSec: steady,
		RebalanceRatio:  ratio,
	}
	if err := jenc.Encode(res); err != nil {
		return WorkloadResult{}, migrate.Status{}, nil, err
	}
	return res, status, reg, nil
}

// migClientOp is one client operation of the rebalance mix — the shardkv
// single-key mix (puts with 100-byte values, a delete per ten updates, a
// read per four ops) over the preloaded population, so the moving keyspace
// slice stays under live write load throughout the split.
func migClientOp(st *shard.Store, rng *rand.Rand, val []byte, n, keys int) error {
	k := migKey(rng.Intn(keys))
	switch {
	case n%10 == 9:
		if err := st.Delete(k); err != nil {
			return err
		}
	default:
		rng.Read(val)
		if err := st.Put(k, val); err != nil {
			return err
		}
	}
	if n%4 == 3 {
		if _, err := st.Get(k); err != nil && err != shard.ErrNotFound {
			return err
		}
	}
	return nil
}

func migKey(i int) []byte {
	return []byte(fmt.Sprintf("mig-%05d", i))
}
