package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ptm"
)

// MixedResult reports throughput for one data point of Figures 4, 6 and 7.
// Transactions per second follows the paper's accounting: every operation
// is two transactions.
type MixedResult struct {
	WriteTxPerSec float64
	ReadTxPerSec  float64
	WriteOps      uint64
	ReadOps       uint64
}

// RunMixed drives writers update operations and readers read operations
// against ds for the given duration, picking uniform random keys in
// [0, keys). Either worker count may be zero.
//
// On machines with fewer cores than workers, each worker yields between
// operations so the scheduler interleaves them at operation granularity
// instead of 10 ms preemption quanta (essential on single-core CI boxes).
func RunMixed(e Engine, ds DataStructure, writers, readers, keys int, dur time.Duration) (MixedResult, error) {
	var stop atomic.Bool
	yield := writers+readers > runtime.NumCPU()
	var wg sync.WaitGroup
	var writeOps, readOps atomic.Uint64
	errs := make(chan error, writers+readers)

	worker := func(seed int64, update bool) {
		defer wg.Done()
		h, err := e.NewHandle()
		if err != nil {
			errs <- err
			return
		}
		defer h.Release()
		rng := rand.New(rand.NewSource(seed))
		var ops uint64
		for !stop.Load() {
			key := uint64(rng.Intn(keys))
			if update {
				if err := ds.Update(h, key); err != nil {
					errs <- err
					return
				}
			} else {
				if err := ds.Read(h, key); err != nil {
					errs <- err
					return
				}
			}
			ops++
			if yield {
				runtime.Gosched()
			}
		}
		if update {
			writeOps.Add(ops)
		} else {
			readOps.Add(ops)
		}
	}

	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go worker(int64(w)+1, true)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go worker(int64(r)+1000, false)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case err := <-errs:
		return MixedResult{}, err
	default:
	}
	res := MixedResult{WriteOps: writeOps.Load(), ReadOps: readOps.Load()}
	res.WriteTxPerSec = float64(res.WriteOps) * 2 / elapsed
	res.ReadTxPerSec = float64(res.ReadOps) * 2 / elapsed
	return res, nil
}

// RunSPS is the SPS microbenchmark of §6.6 (Figure 9): a persistent array
// of arrayLen 64-bit integers; each transaction swaps swapsPerTx random
// pairs; single-threaded. Returns swaps per microsecond.
func RunSPS(e Engine, arrayLen, swapsPerTx int, dur time.Duration) (float64, error) {
	var arr ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		arr, err = tx.Alloc(arrayLen * 8)
		if err != nil {
			return err
		}
		for i := 0; i < arrayLen; i++ {
			tx.Store64(arr+ptm.Ptr(i*8), uint64(i))
		}
		return nil
	}); err != nil {
		return 0, fmt.Errorf("bench: SPS setup: %w", err)
	}
	h, err := e.NewHandle()
	if err != nil {
		return 0, err
	}
	defer h.Release()
	rng := rand.New(rand.NewSource(9))
	deadline := time.Now().Add(dur)
	var swaps uint64
	start := time.Now()
	for time.Now().Before(deadline) {
		if err := h.Update(func(tx ptm.Tx) error {
			for s := 0; s < swapsPerTx; s++ {
				i := ptm.Ptr(rng.Intn(arrayLen) * 8)
				j := ptm.Ptr(rng.Intn(arrayLen) * 8)
				a := tx.Load64(arr + i)
				b := tx.Load64(arr + j)
				tx.Store64(arr+i, b)
				tx.Store64(arr+j, a)
			}
			return nil
		}); err != nil {
			return 0, err
		}
		swaps += uint64(swapsPerTx)
	}
	elapsedUs := float64(time.Since(start).Microseconds())
	return float64(swaps) / elapsedUs, nil
}
