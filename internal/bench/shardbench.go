package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/shard"
)

// ShardWorkloadOptions configure RunShardWorkload, the sharded-store sweep
// behind `romulus-bench -shards`. Each data point opens a fresh shard.Store
// (N shard devices plus the cross-shard coordinator log) and drives the
// single-key RomulusDB mix against it, so the sweep measures how routing
// update traffic across independent engines scales the batched fast path.
type ShardWorkloadOptions struct {
	// ShardCounts lists the shard counts to sweep (default {1, 2, 4}).
	ShardCounts []int
	// Engines lists the Romulus variants to run (default all three; mne and
	// pmdk have no sharded composition and are rejected).
	Engines []string
	// Threads is the number of concurrent client goroutines per data point
	// (default 4). Held fixed across shard counts so the sweep isolates the
	// partitioning dimension.
	Threads int
	// Ops is the number of update operations per data point (default 1000).
	// One read runs per four updates, as in the map workload.
	Ops int
	// Seed fixes the per-worker operation streams (default 1).
	Seed int64
	// Model is the persistence model for every device.
	Model pmem.Model
	// Metrics appends each data point's registry snapshot (shard_* routing
	// counters included) to the output.
	Metrics bool
	// Audit chains a durability auditor onto every device — each shard's and
	// the coordinator's; any violation fails the run.
	Audit bool
	// JSONOut, when non-nil, receives one WorkloadResult row per data point
	// (workload "shardkv", the shards field set), newline-delimited, in the
	// same romulus-bench/workload/v1 schema the trajectory checker consumes.
	JSONOut io.Writer
}

// shardVariants maps engine names accepted by -engines to shard.Store
// variants. Only the Romulus engines compose into the sharded store.
var shardVariants = map[string]core.Variant{
	"rom":    core.Rom,
	"romlog": core.RomLog,
	"romlr":  core.RomLR,
}

// RunShardWorkload sweeps the single-key workload across shard counts,
// returning a throughput table followed (with Metrics) by one metrics block
// per data point. Throughput rows at 1, 2 and 4 shards are the scaling
// evidence: the same client load spread over more independent engines means
// fewer writers contending per flat-combined batch.
func RunShardWorkload(opts ShardWorkloadOptions) (string, error) {
	if len(opts.ShardCounts) == 0 {
		opts.ShardCounts = []int{1, 2, 4}
	}
	if len(opts.Engines) == 0 {
		opts.Engines = []string{"rom", "romlog", "romlr"}
	}
	if opts.Threads == 0 {
		opts.Threads = 4
	}
	if opts.Ops == 0 {
		opts.Ops = 1000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	for _, n := range opts.ShardCounts {
		if n < 1 {
			return "", fmt.Errorf("bench: invalid shard count %d", n)
		}
	}
	var out strings.Builder
	tbl := NewTable("engine", "shards", "threads", "updates", "reads", "ops/sec", "fences/tx", "pwbs/tx")
	type block struct {
		name string
		reg  *obs.Registry
	}
	var blocks []block
	jenc := json.NewEncoder(io.Discard)
	if opts.JSONOut != nil {
		jenc = json.NewEncoder(opts.JSONOut)
	}
	for _, kind := range opts.Engines {
		variant, ok := shardVariants[kind]
		if !ok {
			return "", fmt.Errorf("bench: engine %q has no sharded composition (use %s)",
				kind, strings.Join([]string{"rom", "romlog", "romlr"}, ", "))
		}
		for _, shards := range opts.ShardCounts {
			reg := obs.NewRegistry()
			st, err := shard.Open(shard.Options{
				Shards:     shards,
				RegionSize: 1 << 21,
				CoordSize:  64 << 10,
				Variant:    variant,
				Model:      opts.Model,
				Metrics:    reg,
				Audit:      opts.Audit,
			})
			if err != nil {
				return "", err
			}
			res, err := runShardPoint(st, kind, shards, opts, jenc)
			st.Close()
			if err != nil {
				return "", fmt.Errorf("bench: shardkv on %s/%d shards: %w", kind, shards, err)
			}
			tbl.Row(kind, shards, opts.Threads, res.Updates, res.Reads,
				res.OpsPerSec, res.FencesPerTx, res.PwbsPerTx)
			blocks = append(blocks, block{fmt.Sprintf("%s shards=%d", kind, shards), reg})
		}
	}
	out.WriteString(tbl.String())
	if opts.Metrics {
		for _, b := range blocks {
			fmt.Fprintf(&out, "\n# store %s\n", b.name)
			if err := b.reg.WriteText(&out); err != nil {
				return "", err
			}
		}
	}
	return out.String(), nil
}

// runShardPoint drives one (engine, shard count) data point: the single-key
// mix of the map workload — puts with 100-byte values, one delete per ten
// updates, one read per four — split across Threads workers, each routing
// by key hash onto its shard's batched fast path.
func runShardPoint(st *shard.Store, kind string, shards int, opts ShardWorkloadOptions, jenc *json.Encoder) (WorkloadResult, error) {
	// Setup (map initialization, device formatting) is excluded from the
	// measured device totals.
	for _, d := range st.Devices() {
		d.ResetStats()
	}
	base := shardTxTotals(st)

	start := time.Now()
	err := runWorkers(opts.Threads, opts.Ops, func(w, ops int) error {
		rng := rand.New(rand.NewSource(opts.Seed + int64(w)))
		val := make([]byte, 100)
		for n := 0; n < ops; n++ {
			k := dbKey(rng.Intn(4 * opts.Ops))
			switch {
			case n%10 == 9:
				if err := st.Delete(k); err != nil {
					return err
				}
			default:
				rng.Read(val)
				if err := st.Put(k, val); err != nil {
					return err
				}
			}
			if n%4 == 3 {
				if _, err := st.Get(k); err != nil && err != shard.ErrNotFound {
					return err
				}
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return WorkloadResult{}, err
	}
	if opts.Audit {
		if n := st.ViolationCount(); n > 0 {
			return WorkloadResult{}, fmt.Errorf("auditor found %d durability violation(s)", n)
		}
	}

	fin := shardTxTotals(st)
	updates := fin.updates - base.updates
	if updates == 0 {
		updates = 1
	}
	var pwbs, fences uint64
	for _, d := range st.Devices() {
		ds := d.Stats()
		pwbs += ds.Pwbs
		fences += ds.Pfences + ds.Psyncs
	}
	res := WorkloadResult{
		Schema:      WorkloadSchema,
		Workload:    "shardkv",
		Engine:      kind,
		Model:       opts.Model.Name,
		Threads:     opts.Threads,
		Shards:      shards,
		Ops:         opts.Ops,
		Seed:        opts.Seed,
		ElapsedSec:  elapsed.Seconds(),
		OpsPerSec:   float64(opts.Ops) / elapsed.Seconds(),
		Updates:     updates,
		Reads:       fin.reads - base.reads,
		FencesPerTx: float64(fences) / float64(updates),
		PwbsPerTx:   float64(pwbs) / float64(updates),
	}
	if opts.Audit {
		var t audit.Totals
		for _, a := range st.Auditors() {
			if a == nil {
				continue
			}
			at := a.Totals()
			t.PwbClean += at.PwbClean
			t.PwbRequeued += at.PwbRequeued
			t.StoreQueued += at.StoreQueued
			t.FenceNoop += at.FenceNoop
			t.Violations += at.Violations
		}
		res.AuditViolations = t.Violations
		res.AuditWaste = &audit.Waste{
			PwbClean:    t.PwbClean,
			PwbRequeued: t.PwbRequeued,
			StoreQueued: t.StoreQueued,
			FenceNoop:   t.FenceNoop,
		}
	}
	if err := jenc.Encode(res); err != nil {
		return WorkloadResult{}, err
	}
	return res, nil
}

// shardTxTotals sums committed transaction counts across a store's shard
// engines; deltas of these are the logical operation counts the per-tx cost
// fields divide by.
type txTotals struct {
	updates, reads uint64
}

func shardTxTotals(st *shard.Store) txTotals {
	var t txTotals
	for i := 0; i < st.NumShards(); i++ {
		s := st.Engine(i).Stats()
		t.updates += s.UpdateTxs
		t.reads += s.ReadTxs
	}
	return t
}
