package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/server"
	"repro/internal/shard"
)

// ServerWorkloadOptions configure RunServerWorkload, the network front-end
// sweep behind `romulus-bench -server`. Each data point boots a fresh
// single-shard store plus romulusd-style server on a loopback listener and
// drives M pipelined client connections against it, so the sweep measures
// what the group committer buys: as connections contend, their writes merge
// into shared durability rounds and the fence cost per acknowledged write
// falls below the solo-transaction floor.
type ServerWorkloadOptions struct {
	// Conns lists the concurrent-connection counts to sweep
	// (default {1, 2, 8, 32}).
	Conns []int
	// Engines lists the Romulus variants to run (default all three; mne and
	// pmdk have no sharded composition behind the server).
	Engines []string
	// Ops is the total number of acknowledged SET operations per data point
	// (default 2000), split across connections.
	Ops int
	// Pipeline is the per-connection pipelining window: how many requests a
	// client streams before reading that burst's replies (default 32).
	Pipeline int
	// Seed fixes the per-connection key streams (default 1).
	Seed int64
	// Model is the persistence model for every device.
	Model pmem.Model
	// Metrics appends each data point's registry snapshot (net_group_* and
	// net_ack_latency_ns included) to the output.
	Metrics bool
	// Audit chains a durability auditor onto every device; any violation
	// fails the run.
	Audit bool
	// Spans enables request tracing on the benchmarked server (a span
	// recorder in its Options), so every request pays the per-phase
	// timestamping the -spans flag of romulusd would. RunSpanOverhead uses
	// this to pin the tracing overhead.
	Spans bool
	// JSONOut, when non-nil, receives one WorkloadResult row per data point
	// (workload "server", the conns field set), newline-delimited, in the
	// same romulus-bench/workload/v1 schema the trajectory checker consumes.
	JSONOut io.Writer
}

// RunServerWorkload sweeps pipelined SET load across connection counts,
// returning a throughput-and-latency table followed (with Metrics) by one
// metrics block per data point. The fences/ack column is the group-commit
// evidence: at one connection every acknowledged write pays a full solo
// durability round, while at 8+ connections cross-connection batching must
// push device fence events per ack below one.
func RunServerWorkload(opts ServerWorkloadOptions) (string, error) {
	if len(opts.Conns) == 0 {
		opts.Conns = []int{1, 2, 8, 32}
	}
	if len(opts.Engines) == 0 {
		opts.Engines = []string{"rom", "romlog", "romlr"}
	}
	if opts.Ops == 0 {
		opts.Ops = 2000
	}
	if opts.Pipeline == 0 {
		opts.Pipeline = 32
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	for _, n := range opts.Conns {
		if n < 1 {
			return "", fmt.Errorf("bench: invalid connection count %d", n)
		}
	}
	var out strings.Builder
	tbl := NewTable("engine", "conns", "acks", "ops/sec", "fences/ack", "pwbs/ack", "p50 µs", "p99 µs")
	type block struct {
		name string
		reg  *obs.Registry
	}
	var blocks []block
	jenc := json.NewEncoder(io.Discard)
	if opts.JSONOut != nil {
		jenc = json.NewEncoder(opts.JSONOut)
	}
	for _, kind := range opts.Engines {
		variant, ok := shardVariants[kind]
		if !ok {
			return "", fmt.Errorf("bench: engine %q has no server composition (use %s)",
				kind, strings.Join([]string{"rom", "romlog", "romlr"}, ", "))
		}
		for _, conns := range opts.Conns {
			// Isolate data points: a high-conns point leaves a large heap
			// and goroutine wake behind, and without a collection here the
			// NEXT point's ack p99 absorbs that garbage's GC pauses — the
			// sweep order, not the server, would set the latency SLO.
			runtime.GC()
			reg := obs.NewRegistry()
			res, err := runServerPoint(kind, variant, conns, reg, opts, jenc)
			if err != nil {
				return "", fmt.Errorf("bench: server on %s/%d conns: %w", kind, conns, err)
			}
			tbl.Row(kind, conns, res.Updates, res.OpsPerSec,
				res.FencesPerTx, res.PwbsPerTx,
				float64(res.AckP50Ns)/1e3, float64(res.AckP99Ns)/1e3)
			blocks = append(blocks, block{fmt.Sprintf("%s conns=%d", kind, conns), reg})
		}
	}
	out.WriteString(tbl.String())
	if opts.Metrics {
		for _, b := range blocks {
			fmt.Fprintf(&out, "\n# server %s\n", b.name)
			if err := b.reg.WriteText(&out); err != nil {
				return "", err
			}
		}
	}
	return out.String(), nil
}

// SpanOverheadOptions configure RunSpanOverhead, the spans-on vs spans-off
// throughput comparison behind `romulus-bench -span-overhead`.
type SpanOverheadOptions struct {
	// Engines lists the Romulus variants to compare (default romlog only —
	// the server's default engine).
	Engines []string
	// Conns is the concurrent-connection count per trial (default 8, where
	// group commit is active and the span path is exercised per batch).
	Conns int
	// Trials is how many off/on pairs to run per engine (default 3); the
	// best throughput of each mode is compared, so a single slow trial
	// (GC, scheduler noise) does not fabricate overhead.
	Trials int
	// Ops, Pipeline, Seed and Model mirror ServerWorkloadOptions.
	Ops      int
	Pipeline int
	Seed     int64
	Model    pmem.Model
}

// RunSpanOverhead measures what request tracing costs: for each engine it
// runs alternating spans-off / spans-on server trials on identical
// workloads and compares the best throughput of each mode. The result is a
// table with an overhead column — the acceptance budget for the span layer
// is < 5% ops/sec, and keeping the comparison in the bench binary (rather
// than a flaky CI gate) lets any machine re-pin it.
func RunSpanOverhead(opts SpanOverheadOptions) (string, error) {
	if len(opts.Engines) == 0 {
		opts.Engines = []string{"romlog"}
	}
	if opts.Conns == 0 {
		opts.Conns = 8
	}
	if opts.Trials == 0 {
		opts.Trials = 3
	}
	base := ServerWorkloadOptions{
		Ops:      opts.Ops,
		Pipeline: opts.Pipeline,
		Seed:     opts.Seed,
		Model:    opts.Model,
	}
	if base.Ops == 0 {
		base.Ops = 2000
	}
	if base.Pipeline == 0 {
		base.Pipeline = 32
	}
	if base.Seed == 0 {
		base.Seed = 1
	}
	jenc := json.NewEncoder(io.Discard)
	tbl := NewTable("engine", "conns", "trials", "off ops/sec", "on ops/sec", "overhead")
	for _, kind := range opts.Engines {
		variant, ok := shardVariants[kind]
		if !ok {
			return "", fmt.Errorf("bench: engine %q has no server composition", kind)
		}
		var bestOff, bestOn float64
		for trial := 0; trial < opts.Trials; trial++ {
			// Alternate off/on within each trial so drift (thermal, cache,
			// background load) hits both modes evenly.
			for _, withSpans := range []bool{false, true} {
				o := base
				o.Spans = withSpans
				res, err := runServerPoint(kind, variant, opts.Conns, obs.NewRegistry(), o, jenc)
				if err != nil {
					return "", fmt.Errorf("bench: span overhead on %s (spans=%v): %w", kind, withSpans, err)
				}
				if withSpans && res.OpsPerSec > bestOn {
					bestOn = res.OpsPerSec
				}
				if !withSpans && res.OpsPerSec > bestOff {
					bestOff = res.OpsPerSec
				}
			}
		}
		overhead := (bestOff - bestOn) / bestOff * 100
		tbl.Row(kind, opts.Conns, opts.Trials, bestOff, bestOn, fmt.Sprintf("%+.1f%%", overhead))
	}
	return fmt.Sprintf("Span overhead — best-of-%d pipelined SET throughput, spans off vs on\n%s",
		opts.Trials, tbl), nil
}

// runServerPoint drives one (engine, conns) data point: a fresh single-shard
// store behind a loopback server, Ops pipelined SETs split across conns
// connections, each streaming Pipeline requests per burst before reading the
// replies back. Setup (store formatting, connection dial, warmup) is excluded
// from the measured device totals.
func runServerPoint(kind string, variant core.Variant, conns int, reg *obs.Registry, opts ServerWorkloadOptions, jenc *json.Encoder) (WorkloadResult, error) {
	st, err := shard.Open(shard.Options{
		Shards:     1,
		RegionSize: 1 << 21,
		CoordSize:  64 << 10,
		Variant:    variant,
		Model:      opts.Model,
		Metrics:    reg,
		Audit:      opts.Audit,
	})
	if err != nil {
		return WorkloadResult{}, err
	}
	defer st.Close()

	sopts := server.Options{Registry: reg}
	if opts.Spans {
		sopts.Spans = obs.NewSpanRecorder(reg, 4096)
	}
	srv := server.New(st, sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return WorkloadResult{}, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()
	addr := ln.Addr().String()

	type conn struct {
		c net.Conn
		r *bufio.Reader
	}
	clients := make([]conn, conns)
	for i := range clients {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return WorkloadResult{}, err
		}
		defer c.Close()
		clients[i] = conn{c, bufio.NewReader(c)}
		// Warmup: prove the connection end to end before measuring.
		if _, err := c.Write([]byte("PING\n")); err != nil {
			return WorkloadResult{}, err
		}
		line, err := clients[i].r.ReadString('\n')
		if err != nil {
			return WorkloadResult{}, err
		}
		if strings.TrimRight(line, "\r\n") != "PONG" {
			return WorkloadResult{}, fmt.Errorf("warmup reply %q", line)
		}
	}

	for _, d := range st.Devices() {
		d.ResetStats()
	}
	ackBase := reg.Histogram("net_ack_latency_ns").Count()

	start := time.Now()
	err = runWorkers(conns, opts.Ops, func(w, ops int) error {
		cl := clients[w]
		rng := rand.New(rand.NewSource(opts.Seed + int64(w)))
		var burst strings.Builder
		for n := 0; n < ops; {
			window := opts.Pipeline
			if left := ops - n; window > left {
				window = left
			}
			burst.Reset()
			for i := 0; i < window; i++ {
				fmt.Fprintf(&burst, "SET c%dk%d v%d\n", w, rng.Intn(4*opts.Ops), n+i)
			}
			if _, err := cl.c.Write([]byte(burst.String())); err != nil {
				return err
			}
			for i := 0; i < window; i++ {
				line, err := cl.r.ReadString('\n')
				if err != nil {
					return err
				}
				if reply := strings.TrimRight(line, "\r\n"); reply != "OK" {
					return fmt.Errorf("SET reply %q", reply)
				}
			}
			n += window
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return WorkloadResult{}, err
	}
	if opts.Audit {
		if n := st.ViolationCount(); n > 0 {
			return WorkloadResult{}, fmt.Errorf("auditor found %d durability violation(s)", n)
		}
	}

	ackHist := reg.Histogram("net_ack_latency_ns")
	acks := ackHist.Count() - ackBase
	if acks == 0 {
		return WorkloadResult{}, fmt.Errorf("no acknowledged writes recorded")
	}
	var pwbs, fences uint64
	for _, d := range st.Devices() {
		ds := d.Stats()
		pwbs += ds.Pwbs
		fences += ds.Pfences + ds.Psyncs
	}
	res := WorkloadResult{
		Schema:     WorkloadSchema,
		Workload:   "server",
		Engine:     kind,
		Model:      opts.Model.Name,
		Threads:    1,
		Shards:     1,
		Conns:      conns,
		Ops:        opts.Ops,
		Seed:       opts.Seed,
		ElapsedSec: elapsed.Seconds(),
		OpsPerSec:  float64(acks) / elapsed.Seconds(),
		Updates:    acks,
		// FencesPerTx for server rows is fences per acknowledged write: the
		// quantity group commit amortizes across connections.
		FencesPerTx: float64(fences) / float64(acks),
		PwbsPerTx:   float64(pwbs) / float64(acks),
		AckP50Ns:    ackHist.Quantile(0.5),
		AckP99Ns:    ackHist.Quantile(0.99),
	}
	if opts.Audit {
		var t audit.Totals
		for _, a := range st.Auditors() {
			if a == nil {
				continue
			}
			at := a.Totals()
			t.PwbClean += at.PwbClean
			t.PwbRequeued += at.PwbRequeued
			t.StoreQueued += at.StoreQueued
			t.FenceNoop += at.FenceNoop
			t.Violations += at.Violations
		}
		res.AuditViolations = t.Violations
		res.AuditWaste = &audit.Waste{
			PwbClean:    t.PwbClean,
			PwbRequeued: t.PwbRequeued,
			StoreQueued: t.StoreQueued,
			FenceNoop:   t.FenceNoop,
		}
	}
	if err := jenc.Encode(res); err != nil {
		return WorkloadResult{}, err
	}
	return res, nil
}
