package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// RecoveryResult is one §6.5 data point: how long recovery takes after a
// mid-transaction crash, as a function of how much data lives in the
// region (recovery copies back over main up to the used watermark).
type RecoveryResult struct {
	Entries   int
	Watermark int // bytes recovery must copy
	Duration  time.Duration
}

// MeasureRecovery populates a RomulusLog hash map with entries key-value
// pairs (16-byte keys, 100-byte values, as in the paper's measurement),
// crashes the engine in the middle of an update transaction, and times the
// recovery performed by Open.
func MeasureRecovery(entries int) (RecoveryResult, error) {
	region := entries*360 + (8 << 20)
	e, err := core.New(region, core.Config{Variant: core.RomLog})
	if err != nil {
		return RecoveryResult{}, err
	}
	var m *pstruct.ByteMap
	if err := e.Update(func(tx ptm.Tx) error {
		mm, err := pstruct.NewByteMap(tx, 0, 0)
		m = mm
		return err
	}); err != nil {
		return RecoveryResult{}, err
	}
	val := make([]byte, 100)
	const batch = 512
	for lo := 0; lo < entries; lo += batch {
		hi := lo + batch
		if hi > entries {
			hi = entries
		}
		if err := e.Update(func(tx ptm.Tx) error {
			for i := lo; i < hi; i++ {
				if _, err := m.Put(tx, dbKey(i), val); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return RecoveryResult{}, fmt.Errorf("bench: recovery prefill: %w", err)
		}
	}
	// Crash mid-transaction so the persisted state is MUT and recovery has
	// to copy the full watermark back over main.
	dev := e.Device()
	var img []byte
	dev.SetHooks(&pmem.Hooks{Pwb: func(n uint64) {
		if img == nil {
			img = dev.CrashImage(pmem.KeepQueued)
		}
	}})
	if err := e.Update(func(tx ptm.Tx) error {
		_, err := m.Put(tx, dbKey(0), val)
		return err
	}); err != nil {
		return RecoveryResult{}, err
	}
	dev.SetHooks(nil)
	if img == nil {
		return RecoveryResult{}, fmt.Errorf("bench: no crash image captured")
	}
	crashed := pmem.FromImage(img, pmem.ModelDRAM)
	start := time.Now()
	re, err := core.Open(crashed, core.Config{Variant: core.RomLog})
	if err != nil {
		return RecoveryResult{}, err
	}
	dur := time.Since(start)
	return RecoveryResult{Entries: entries, Watermark: re.Watermark(), Duration: dur}, nil
}
