package bench

import (
	"strings"
	"testing"
)

// The §6.2 histogram analysis must show the paper's qualitative contrast:
// the linked list's per-transaction pwb distribution is tighter and lower
// than the red-black tree's.
func TestPwbHistograms(t *testing.T) {
	out, err := PwbHistograms(200, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range DSKinds {
		if !strings.Contains(out, ds) {
			t.Errorf("output missing %s section", ds)
		}
	}
	if !strings.Contains(out, "histogram peaks") {
		t.Error("output missing peak analysis")
	}
}
