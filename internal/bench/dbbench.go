package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/kvstore"
	"repro/internal/leveldbsim"
	"repro/internal/obs"
)

// DBWorkloads lists the Figure 8 benchmarks in presentation order. They
// follow LevelDB's db_bench definitions (§6.4): 16-byte keys, 100-byte
// values, one million operations per thread in the paper (scaled by the
// caller here); fillsync and fill-100k use 1,000 operations, the latter
// with 100 kB values.
var DBWorkloads = []string{"fillseq", "fillsync", "fillrandom", "overwrite", "readseq", "readreverse", "fill100k"}

// DBResult is one Figure 8 data point.
type DBResult struct {
	Workload    string
	DB          string // "romdb" or "leveldb"
	Threads     int
	MicrosPerOp float64 // elapsed per per-thread operation, db_bench style
	Ops         int
	Fdatasyncs  uint64 // leveldbsim only
}

// dbIface abstracts the two stores for the workload driver.
type dbIface interface {
	put(th int, key, val []byte, sync bool) error
	rangeAll(reverse bool, fn func(k, v []byte) bool) error
	close() error
	fdatasyncs() uint64
}

type romDB struct {
	db       *kvstore.DB
	sessions []*kvstore.Session
}

func (r *romDB) put(th int, key, val []byte, sync bool) error {
	return r.sessions[th].Put(key, val) // always durable; sync is implied
}

func (r *romDB) rangeAll(reverse bool, fn func(k, v []byte) bool) error {
	return r.db.Range(reverse, fn)
}

func (r *romDB) close() error {
	for _, s := range r.sessions {
		s.Close()
	}
	return r.db.Close()
}

func (r *romDB) fdatasyncs() uint64 { return 0 }

type lvlDB struct {
	db *leveldbsim.DB
}

func (l *lvlDB) put(th int, key, val []byte, sync bool) error {
	return l.db.Put(key, val, leveldbsim.WriteOptions{Sync: sync})
}

func (l *lvlDB) rangeAll(reverse bool, fn func(k, v []byte) bool) error {
	it := l.db.NewIterator(reverse)
	for it.Next() {
		if !fn(it.Key(), it.Value()) {
			break
		}
	}
	return it.Err()
}

func (l *lvlDB) close() error       { return l.db.Close() }
func (l *lvlDB) fdatasyncs() uint64 { return l.db.Stats().Fdatasyncs }

func openBenchDB(kind, dir string, threads, entries, valueSize int, metrics *obs.Registry, trace obs.Sink, onOpen func(*kvstore.DB)) (dbIface, error) {
	switch kind {
	case "romdb":
		region := entries*(220+valueSize+valueSize/2) + (16 << 20)
		db, err := kvstore.Open(kvstore.Options{RegionSize: region, Metrics: metrics, Trace: trace})
		if err != nil {
			return nil, err
		}
		if onOpen != nil {
			onOpen(db)
		}
		r := &romDB{db: db}
		for i := 0; i < threads; i++ {
			s, err := db.NewSession()
			if err != nil {
				return nil, err
			}
			r.sessions = append(r.sessions, s)
		}
		return r, nil
	case "leveldb":
		db, err := leveldbsim.Open(dir, leveldbsim.Options{})
		if err != nil {
			return nil, err
		}
		return &lvlDB{db: db}, nil
	}
	return nil, fmt.Errorf("bench: unknown db kind %q", kind)
}

func dbKey(i int) []byte { return []byte(fmt.Sprintf("%016d", i)) }

// RunDBBench executes one Figure 8 workload. entries is the per-thread
// operation count (the paper uses 1,000,000; 1,000 for fillsync and
// fill-100k). dir hosts leveldbsim files and is ignored for romdb.
func RunDBBench(dbKind, workload, dir string, threads, entries int) (DBResult, error) {
	return RunDBBenchObs(dbKind, workload, dir, threads, entries, nil, nil)
}

// RunDBBenchObs is RunDBBench with observability attached to the romdb
// side: metrics (when non-nil) receives the store's kv_*/pmem_*/ptm_*
// instruments, and trace receives its per-transaction events. Both are
// ignored for leveldb, which has no transactional engine underneath.
// The romulus-db -http endpoint is built on this hook.
func RunDBBenchObs(dbKind, workload, dir string, threads, entries int, metrics *obs.Registry, trace obs.Sink) (DBResult, error) {
	return RunDBBenchHook(dbKind, workload, dir, threads, entries, metrics, trace, nil)
}

// RunDBBenchHook is RunDBBenchObs plus an onOpen callback invoked with the
// live RomulusDB store the moment it opens (nil for leveldb runs). The
// romulus-db -audit flag uses it to chain a durability auditor onto the
// store's device before any benchmark transaction runs; the store is closed
// before RunDBBenchHook returns, so engine-close durability claims are
// checked too.
func RunDBBenchHook(dbKind, workload, dir string, threads, entries int, metrics *obs.Registry, trace obs.Sink, onOpen func(*kvstore.DB)) (DBResult, error) {
	valueSize := 100
	syncEach := false
	ops := entries
	switch workload {
	case "fillsync":
		ops = min(entries, 1000)
		syncEach = true
	case "fill100k":
		ops = min(entries, 1000)
		valueSize = 100 << 10
	}
	totalEntries := ops * threads
	db, err := openBenchDB(dbKind, dir, threads, totalEntries, valueSize, metrics, trace, onOpen)
	if err != nil {
		return DBResult{}, err
	}
	defer db.close()

	val := make([]byte, valueSize)
	rand.New(rand.NewSource(1)).Read(val)
	yield := threads > runtime.NumCPU()

	fillRange := func(th, lo, hi int, random bool, seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		for i := lo; i < hi; i++ {
			var k []byte
			if random {
				k = dbKey(rng.Intn(totalEntries))
			} else {
				k = dbKey(i)
			}
			if err := db.put(th, k, val, syncEach); err != nil {
				return err
			}
			if yield {
				runtime.Gosched()
			}
		}
		return nil
	}

	runThreads := func(fn func(th int) error) error {
		var wg sync.WaitGroup
		errs := make(chan error, threads)
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				if err := fn(th); err != nil {
					errs <- err
				}
			}(th)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return err
		default:
			return nil
		}
	}

	prepopulate := func() error {
		return runThreads(func(th int) error {
			return fillRange(th, th*ops, (th+1)*ops, false, int64(th))
		})
	}

	var start time.Time
	var opsDone int
	switch workload {
	case "fillseq", "fillsync", "fill100k":
		start = time.Now()
		err = runThreads(func(th int) error {
			return fillRange(th, th*ops, (th+1)*ops, false, int64(th))
		})
		opsDone = ops
	case "fillrandom":
		start = time.Now()
		err = runThreads(func(th int) error {
			return fillRange(th, 0, ops, true, int64(th))
		})
		opsDone = ops
	case "overwrite":
		if err := prepopulate(); err != nil {
			return DBResult{}, err
		}
		start = time.Now()
		err = runThreads(func(th int) error {
			return fillRange(th, 0, ops, true, 1000+int64(th))
		})
		opsDone = ops
	case "readseq", "readreverse":
		if err := prepopulate(); err != nil {
			return DBResult{}, err
		}
		reverse := workload == "readreverse"
		start = time.Now()
		err = runThreads(func(th int) error {
			n := 0
			scanErr := db.rangeAll(reverse, func(k, v []byte) bool {
				n++
				return true
			})
			if scanErr == nil && n < totalEntries {
				return fmt.Errorf("bench: %s scanned %d of %d entries", workload, n, totalEntries)
			}
			return scanErr
		})
		opsDone = totalEntries // per thread: one full scan of all entries
	default:
		return DBResult{}, fmt.Errorf("bench: unknown workload %q", workload)
	}
	if err != nil {
		return DBResult{}, err
	}
	elapsed := time.Since(start)
	return DBResult{
		Workload:    workload,
		DB:          dbKind,
		Threads:     threads,
		MicrosPerOp: float64(elapsed.Microseconds()) / float64(opsDone),
		Ops:         opsDone * threads,
		Fdatasyncs:  db.fdatasyncs(),
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
