package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestRunShardWorkload drives the sharded sweep end to end: one variant,
// shard counts 1 and 2, audited, JSON rows captured — pinning the row shape
// trajectory tooling depends on.
func TestRunShardWorkload(t *testing.T) {
	var js strings.Builder
	out, err := RunShardWorkload(ShardWorkloadOptions{
		ShardCounts: []int{1, 2},
		Engines:     []string{"romlog"},
		Threads:     2,
		Ops:         400,
		Audit:       true,
		Metrics:     true,
		JSONOut:     &js,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shards") || !strings.Contains(out, "fences/tx") {
		t.Fatalf("table missing columns:\n%s", out)
	}
	if !strings.Contains(out, "shard_route_put_total") {
		t.Fatalf("metrics block missing shard routing counters:\n%s", out)
	}
	var rows []WorkloadResult
	sc := bufio.NewScanner(strings.NewReader(js.String()))
	for sc.Scan() {
		var row WorkloadResult
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad JSON row %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d JSON rows, want 2", len(rows))
	}
	for i, row := range rows {
		if row.Schema != WorkloadSchema || row.Workload != "shardkv" || row.Engine != "romlog" {
			t.Fatalf("row %d malformed: %+v", i, row)
		}
		if want := []int{1, 2}[i]; row.Shards != want {
			t.Fatalf("row %d shards = %d, want %d", i, row.Shards, want)
		}
		if row.Updates == 0 || row.FencesPerTx <= 0 || row.OpsPerSec <= 0 {
			t.Fatalf("row %d has empty measurements: %+v", i, row)
		}
		if row.AuditViolations != 0 || row.AuditWaste == nil {
			t.Fatalf("row %d audit fields wrong: %+v", i, row)
		}
	}
}

// TestRunShardWorkloadRejectsForeignEngine pins that engines without a
// sharded composition are an error, not a silent skip.
func TestRunShardWorkloadRejectsForeignEngine(t *testing.T) {
	_, err := RunShardWorkload(ShardWorkloadOptions{Engines: []string{"pmdk"}, Ops: 10})
	if err == nil || !strings.Contains(err.Error(), "sharded composition") {
		t.Fatalf("pmdk accepted: %v", err)
	}
}

// TestCheckTrajectoryShardsDimension pins that shard counts separate
// trajectory groups: a regression at shards=4 must not be masked by a good
// shards=1 history, and rows differing only in shards never share a group.
func TestCheckTrajectoryShardsDimension(t *testing.T) {
	shardRow := func(shards int, fences float64) string {
		return fmt.Sprintf(`{"schema":"romulus-bench/workload/v1","workload":"shardkv",`+
			`"engine":"romlog","model":"dram","threads":4,"shards":%d,"ops":1000,"seed":1,`+
			`"elapsed_sec":0.1,"ops_per_sec":1,"updates":1000,"reads":250,`+
			`"fences_per_tx":%g,"pwbs_per_tx":6}`, shards, fences)
	}
	in := strings.Join([]string{
		shardRow(1, 4), shardRow(4, 1),
		shardRow(1, 4), shardRow(4, 3),
	}, "\n")
	regs, err := CheckTrajectory(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if r := regs[0]; r.Shards != 4 || r.Newest != 3 {
		t.Fatalf("wrong group flagged: %+v", r)
	}
	if !strings.Contains(regs[0].String(), "shards=4") {
		t.Errorf("regression string %q lacks shards dimension", regs[0].String())
	}
}
