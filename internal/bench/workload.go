package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// WorkloadOptions configure RunWorkload, the fixed-operation-count harness
// behind `romulus-bench -workload`. Unlike the figure benchmarks, workloads
// run a deterministic number of single-threaded transactions from a fixed
// seed, so metric and trace output is reproducible run to run.
type WorkloadOptions struct {
	// Workload selects the transaction mix: "swaps" (the SPS array-swap
	// microbenchmark of §6.6 — 2 loads and 2 stores per update, the
	// workload behind Table 1's fences-per-transaction counts) or "map"
	// (hash-map puts, gets and deletes, the RomulusDB-style mix).
	Workload string
	// Engines lists the engine kinds to run (default: all).
	Engines []string
	// Ops is the number of update transactions per engine (default 1000).
	// One read transaction runs per four updates.
	Ops int
	// Threads lists writer-thread counts to sweep; each engine runs the
	// workload once per count on a fresh device (default {1}). With more
	// than one thread Ops is split across workers, each driving its own
	// deterministic operation stream (seed+worker); interleaving — and so
	// batch formation — is scheduling-dependent, which is the point: the
	// sweep measures how flat-combined batching amortizes fences as writers
	// contend.
	Threads []int
	// Seed fixes the operation sequence (default 1).
	Seed int64
	// Model is the persistence model for the devices.
	Model pmem.Model
	// Metrics appends each engine's registry snapshot (sorted "name value"
	// lines) to the output. Setup work is excluded: device statistics are
	// reset after population.
	Metrics bool
	// TraceOut, when non-nil, receives the per-transaction trace as JSON
	// lines. At most TraceCap trailing events per engine are kept (default
	// 4096).
	TraceOut io.Writer
	// TraceCap bounds the retained trace events per engine.
	TraceCap int
	// Audit chains a durability auditor onto each engine's device. Waste
	// diagnostics surface as audit_* counters in the metrics block, and any
	// durability violation fails the run with a diagnostic error.
	Audit bool
	// JSONOut, when non-nil, receives the machine-readable result: one
	// WorkloadResult JSON object per engine, newline-delimited, schema
	// "romulus-bench/workload/v1". Field set and ordering are fixed, so
	// trajectory tooling can diff runs across commits.
	JSONOut io.Writer
}

// WorkloadResult is one engine's row of a -json workload run. Everything
// except the timing fields is deterministic for a fixed (workload, engine,
// model, ops, seed) tuple.
type WorkloadResult struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Model    string `json:"model"`
	Threads  int    `json:"threads"`
	// Shards is the partition count for sharded-store rows (workload
	// "shardkv", emitted by RunShardWorkload); zero for single-engine rows.
	Shards int `json:"shards,omitempty"`
	// Conns is the concurrent-client-connection count for network-server
	// rows (workload "server", emitted by RunServerWorkload); zero for
	// in-process rows. For conns rows OpsPerSec is additionally gated by the
	// trajectory checker, since throughput scaling with connections is the
	// point of the sweep.
	Conns      int     `json:"conns,omitempty"`
	Ops        int     `json:"ops"`
	Seed       int64   `json:"seed"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Updates and Reads are committed transaction counts from the trace.
	Updates uint64 `json:"updates"`
	Reads   uint64 `json:"reads"`
	// FencesPerTx and PwbsPerTx are the Table 1 persistence costs, measured
	// as device totals over logical committed updates — so with combining a
	// batch's shared durability round is amortized across its operations.
	FencesPerTx float64 `json:"fences_per_tx"`
	PwbsPerTx   float64 `json:"pwbs_per_tx"`
	// ReplicateBytesPerTx is the twin-copy replication volume per committed
	// update — the quantity the dirty-extent tracker shrinks from O(heap) to
	// O(dirty). Zero for engines without replication counters and for
	// sharded/server rows (their stats aggregate across stores).
	ReplicateBytesPerTx float64 `json:"replicate_bytes_per_tx,omitempty"`
	// Batches and OpsPerBatch describe flat-combined batch formation during
	// the measured run (absent for engines without a batch commit path).
	Batches     uint64  `json:"batches,omitempty"`
	OpsPerBatch float64 `json:"ops_per_batch,omitempty"`
	// AckP50Ns and AckP99Ns are acknowledgement-latency quantiles (submit to
	// durable ack, nanoseconds) for network-server rows; absent elsewhere.
	AckP50Ns uint64 `json:"ack_p50_ns,omitempty"`
	AckP99Ns uint64 `json:"ack_p99_ns,omitempty"`
	// SteadyOpsPerSec and RebalanceRatio are online-rebalance fields
	// (workload "rebalance", emitted by RunMigrateWorkload): client
	// throughput before the split starts, and the during-split fraction
	// OpsPerSec / SteadyOpsPerSec. The ratio carries an absolute SLO in the
	// trajectory checker — a store must keep serving at least half its
	// steady throughput while a shard splits.
	SteadyOpsPerSec float64 `json:"steady_ops_per_sec,omitempty"`
	RebalanceRatio  float64 `json:"rebalance_ratio,omitempty"`
	// Audit fields are present only for -audit runs.
	AuditViolations uint64       `json:"audit_violations,omitempty"`
	AuditWaste      *audit.Waste `json:"audit_waste,omitempty"`
}

// Workloads lists the workload names RunWorkload accepts.
var Workloads = []string{"swaps", "map"}

// RunWorkload runs the selected workload on each engine, returning a
// throughput table followed (with Metrics) by one metrics block per engine.
// Each engine gets a fresh device; tracing and metrics attach after setup so
// steady-state transactions are what the numbers describe.
func RunWorkload(opts WorkloadOptions) (string, error) {
	if opts.Ops == 0 {
		opts.Ops = 1000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.TraceCap == 0 {
		opts.TraceCap = 4096
	}
	kinds := opts.Engines
	if len(kinds) == 0 {
		kinds = EngineKinds
	}
	run := workloadFunc(opts.Workload)
	if run == nil {
		return "", fmt.Errorf("bench: unknown workload %q (have %s)",
			opts.Workload, strings.Join(Workloads, ", "))
	}

	threadCounts := opts.Threads
	if len(threadCounts) == 0 {
		threadCounts = []int{1}
	}

	var out strings.Builder
	tbl := NewTable("engine", "threads", "updates", "reads", "fences/tx", "pwbs/tx", "ops/batch")
	type block struct {
		name string
		reg  *obs.Registry
	}
	var blocks []block
	jenc := json.NewEncoder(io.Discard)
	if opts.JSONOut != nil {
		jenc = json.NewEncoder(opts.JSONOut)
	}
	for _, kind := range kinds {
		for _, threads := range threadCounts {
			if threads < 1 {
				return "", fmt.Errorf("bench: invalid thread count %d", threads)
			}
			e, err := NewEngine(kind, 1<<21, opts.Model)
			if err != nil {
				return "", err
			}
			reg := obs.NewRegistry()
			obs.Instrument(e.Device(), reg)
			obs.InstrumentPTM(e, reg)
			var aud *audit.Auditor
			if opts.Audit {
				aud = audit.New(e.Device(), audit.Options{})
				aud.Attach()
				if sa, ok := e.(interface{ SetAuditor(ptm.Auditor) }); ok {
					sa.SetAuditor(aud)
				}
				aud.PublishMetrics(reg)
			}
			ms := obs.NewMetricsSink(reg)
			var ring *obs.RingSink
			var sink obs.Sink = ms
			if opts.TraceOut != nil {
				ring = obs.NewRingSink(opts.TraceCap)
				sink = obs.Tee(ms, ring)
			}
			start := time.Now()
			base, err := run(e, sink, opts, threads)
			if err != nil {
				return "", fmt.Errorf("bench: workload %s on %s: %w", opts.Workload, kind, err)
			}
			elapsed := time.Since(start)
			if aud != nil {
				if n := aud.ViolationCount(); n > 0 {
					var detail string
					if vs := aud.Violations(); len(vs) > 0 {
						v := vs[0]
						detail = fmt.Sprintf("; first: [%s] at %s line %d (%s, %s/%s, site %s)",
							v.Kind, v.Point, v.Line, v.State, v.Engine, v.TxKind, v.Site)
					}
					return "", fmt.Errorf("bench: workload %s on %s: auditor found %d durability violation(s)%s",
						opts.Workload, kind, n, detail)
				}
			}
			s := reg.Snapshot()
			// Per-transaction costs from device totals over logical committed
			// updates: under combining the tx_fences histogram is per batch
			// (one event covers the whole durability round), so dividing
			// device counters by operations is what shows amortization.
			fin := e.Stats()
			devst := e.Device().Stats()
			updates := fin.UpdateTxs - base.UpdateTxs
			if updates == 0 {
				updates = 1
			}
			fencesPerTx := float64(devst.Pfences+devst.Psyncs) / float64(updates)
			pwbsPerTx := float64(devst.Pwbs) / float64(updates)
			batches := fin.Batches - base.Batches
			batchOps := fin.BatchOps - base.BatchOps
			opsPerBatch := 0.0
			if batches > 0 {
				opsPerBatch = float64(batchOps) / float64(batches)
			}
			tbl.Row(kind, threads, updates, s.Counters["trace_read_total"],
				fencesPerTx, pwbsPerTx, opsPerBatch)
			if opts.JSONOut != nil {
				res := WorkloadResult{
					Schema:      WorkloadSchema,
					Workload:    opts.Workload,
					Engine:      kind,
					Model:       opts.Model.Name,
					Threads:     threads,
					Ops:         opts.Ops,
					Seed:        opts.Seed,
					ElapsedSec:  elapsed.Seconds(),
					OpsPerSec:   float64(opts.Ops) / elapsed.Seconds(),
					Updates:     updates,
					Reads:       s.Counters["trace_read_total"],
					FencesPerTx: fencesPerTx,
					PwbsPerTx:   pwbsPerTx,
					ReplicateBytesPerTx: float64(fin.ReplicatedBytes-base.ReplicatedBytes) /
						float64(updates),
					Batches:     batches,
					OpsPerBatch: opsPerBatch,
				}
				if aud != nil {
					t := aud.Totals()
					res.AuditViolations = t.Violations
					res.AuditWaste = &audit.Waste{
						PwbClean:    t.PwbClean,
						PwbRequeued: t.PwbRequeued,
						StoreQueued: t.StoreQueued,
						FenceNoop:   t.FenceNoop,
					}
				}
				if err := jenc.Encode(res); err != nil {
					return "", err
				}
			}
			if opts.TraceOut != nil {
				if err := ring.WriteJSON(opts.TraceOut); err != nil {
					return "", err
				}
			}
			name := kind
			if threads != 1 {
				name = fmt.Sprintf("%s threads=%d", kind, threads)
			}
			blocks = append(blocks, block{name, reg})
		}
	}
	out.WriteString(tbl.String())
	if opts.Metrics {
		for _, b := range blocks {
			fmt.Fprintf(&out, "\n# engine %s\n", b.name)
			if err := b.reg.WriteText(&out); err != nil {
				return "", err
			}
		}
	}
	return out.String(), nil
}

// workloadFunc resolves a workload name to its driver. Drivers perform
// setup, reset device statistics, attach the sink, and then run the
// transaction sequence on the requested number of worker threads. They
// return the engine's post-setup TxStats so callers can delta out setup
// work from transaction and batch counters.
func workloadFunc(name string) func(Engine, obs.Sink, WorkloadOptions, int) (ptm.TxStats, error) {
	switch name {
	case "swaps":
		return runSwapsWorkload
	case "map":
		return runMapWorkload
	}
	return nil
}

// runWorkers splits ops across threads workers (worker 0 absorbs the
// remainder) and runs them concurrently, each with its own worker index for
// seed derivation. A single thread runs inline, preserving the exact
// sequential transaction order golden traces pin.
func runWorkers(threads, ops int, worker func(w, ops int) error) error {
	if threads <= 1 {
		return worker(0, ops)
	}
	share := ops / threads
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		n := share
		if w == 0 {
			n += ops % threads
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			errs[w] = worker(w, n)
		}(w, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// setTrace attaches the sink if the engine supports tracing (all the
// repository's engines do; the indirection keeps bench compiling against
// the minimal Engine surface).
func setTrace(e Engine, s obs.Sink) {
	if t, ok := e.(obs.Traceable); ok {
		t.SetTrace(s)
	}
}

// runSwapsWorkload: SPS-style array swaps, one swap per transaction — the
// minimal update against which Table 1 counts 4 fences per transaction for
// the Romulus engines.
func runSwapsWorkload(e Engine, sink obs.Sink, opts WorkloadOptions, threads int) (ptm.TxStats, error) {
	const arrayLen = 1024
	var arr ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		arr, err = tx.Alloc(arrayLen * 8)
		if err != nil {
			return err
		}
		for i := 0; i < arrayLen; i++ {
			tx.Store64(arr+ptm.Ptr(i*8), uint64(i))
		}
		return nil
	}); err != nil {
		return ptm.TxStats{}, err
	}
	e.Device().ResetStats()
	setTrace(e, sink)
	defer setTrace(e, nil)
	base := e.Stats()
	err := runWorkers(threads, opts.Ops, func(w, ops int) error {
		h, err := e.NewHandle()
		if err != nil {
			return err
		}
		defer h.Release()
		rng := rand.New(rand.NewSource(opts.Seed + int64(w)))
		for n := 0; n < ops; n++ {
			i := ptm.Ptr(rng.Intn(arrayLen) * 8)
			j := ptm.Ptr(rng.Intn(arrayLen) * 8)
			if err := h.Update(func(tx ptm.Tx) error {
				a := tx.Load64(arr + i)
				b := tx.Load64(arr + j)
				tx.Store64(arr+i, b)
				tx.Store64(arr+j, a)
				return nil
			}); err != nil {
				return err
			}
			if n%4 == 3 {
				if err := h.Read(func(tx ptm.Tx) error {
					tx.Load64(arr + i)
					return nil
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return base, err
}

// runMapWorkload: hash-map puts, gets and deletes against pstruct.ByteMap —
// the RomulusDB-flavoured mix, with value sizes spanning cache lines.
func runMapWorkload(e Engine, sink obs.Sink, opts WorkloadOptions, threads int) (ptm.TxStats, error) {
	var m *pstruct.ByteMap
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		m, err = pstruct.NewByteMap(tx, 0, 256)
		return err
	}); err != nil {
		return ptm.TxStats{}, err
	}
	e.Device().ResetStats()
	setTrace(e, sink)
	defer setTrace(e, nil)
	base := e.Stats()
	err := runWorkers(threads, opts.Ops, func(w, ops int) error {
		h, err := e.NewHandle()
		if err != nil {
			return err
		}
		defer h.Release()
		rng := rand.New(rand.NewSource(opts.Seed + int64(w)))
		val := make([]byte, 100)
		for n := 0; n < ops; n++ {
			k := dbKey(rng.Intn(4 * opts.Ops))
			switch {
			case n%10 == 9:
				if err := h.Update(func(tx ptm.Tx) error {
					_, err := m.Delete(tx, k)
					return err
				}); err != nil {
					return err
				}
			default:
				rng.Read(val)
				if err := h.Update(func(tx ptm.Tx) error {
					_, err := m.Put(tx, k, val)
					return err
				}); err != nil {
					return err
				}
			}
			if n%4 == 3 {
				if err := h.Read(func(tx ptm.Tx) error {
					_, err := m.Get(tx, k, nil)
					if err == pstruct.ErrNotFound {
						return nil
					}
					return err
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return base, err
}
