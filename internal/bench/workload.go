package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// WorkloadOptions configure RunWorkload, the fixed-operation-count harness
// behind `romulus-bench -workload`. Unlike the figure benchmarks, workloads
// run a deterministic number of single-threaded transactions from a fixed
// seed, so metric and trace output is reproducible run to run.
type WorkloadOptions struct {
	// Workload selects the transaction mix: "swaps" (the SPS array-swap
	// microbenchmark of §6.6 — 2 loads and 2 stores per update, the
	// workload behind Table 1's fences-per-transaction counts) or "map"
	// (hash-map puts, gets and deletes, the RomulusDB-style mix).
	Workload string
	// Engines lists the engine kinds to run (default: all).
	Engines []string
	// Ops is the number of update transactions per engine (default 1000).
	// One read transaction runs per four updates.
	Ops int
	// Seed fixes the operation sequence (default 1).
	Seed int64
	// Model is the persistence model for the devices.
	Model pmem.Model
	// Metrics appends each engine's registry snapshot (sorted "name value"
	// lines) to the output. Setup work is excluded: device statistics are
	// reset after population.
	Metrics bool
	// TraceOut, when non-nil, receives the per-transaction trace as JSON
	// lines. At most TraceCap trailing events per engine are kept (default
	// 4096).
	TraceOut io.Writer
	// TraceCap bounds the retained trace events per engine.
	TraceCap int
	// Audit chains a durability auditor onto each engine's device. Waste
	// diagnostics surface as audit_* counters in the metrics block, and any
	// durability violation fails the run with a diagnostic error.
	Audit bool
	// JSONOut, when non-nil, receives the machine-readable result: one
	// WorkloadResult JSON object per engine, newline-delimited, schema
	// "romulus-bench/workload/v1". Field set and ordering are fixed, so
	// trajectory tooling can diff runs across commits.
	JSONOut io.Writer
}

// WorkloadResult is one engine's row of a -json workload run. Everything
// except the timing fields is deterministic for a fixed (workload, engine,
// model, ops, seed) tuple.
type WorkloadResult struct {
	Schema     string  `json:"schema"`
	Workload   string  `json:"workload"`
	Engine     string  `json:"engine"`
	Model      string  `json:"model"`
	Threads    int     `json:"threads"`
	Ops        int     `json:"ops"`
	Seed       int64   `json:"seed"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Updates and Reads are committed transaction counts from the trace.
	Updates uint64 `json:"updates"`
	Reads   uint64 `json:"reads"`
	// FencesPerTx and PwbsPerTx are the Table 1 persistence costs.
	FencesPerTx float64 `json:"fences_per_tx"`
	PwbsPerTx   float64 `json:"pwbs_per_tx"`
	// Audit fields are present only for -audit runs.
	AuditViolations uint64       `json:"audit_violations,omitempty"`
	AuditWaste      *audit.Waste `json:"audit_waste,omitempty"`
}

// Workloads lists the workload names RunWorkload accepts.
var Workloads = []string{"swaps", "map"}

// RunWorkload runs the selected workload on each engine, returning a
// throughput table followed (with Metrics) by one metrics block per engine.
// Each engine gets a fresh device; tracing and metrics attach after setup so
// steady-state transactions are what the numbers describe.
func RunWorkload(opts WorkloadOptions) (string, error) {
	if opts.Ops == 0 {
		opts.Ops = 1000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.TraceCap == 0 {
		opts.TraceCap = 4096
	}
	kinds := opts.Engines
	if len(kinds) == 0 {
		kinds = EngineKinds
	}
	run := workloadFunc(opts.Workload)
	if run == nil {
		return "", fmt.Errorf("bench: unknown workload %q (have %s)",
			opts.Workload, strings.Join(Workloads, ", "))
	}

	var out strings.Builder
	tbl := NewTable("engine", "updates", "reads", "fences/tx", "pwbs/tx")
	type block struct {
		kind string
		reg  *obs.Registry
	}
	var blocks []block
	jenc := json.NewEncoder(io.Discard)
	if opts.JSONOut != nil {
		jenc = json.NewEncoder(opts.JSONOut)
	}
	for _, kind := range kinds {
		e, err := NewEngine(kind, 1<<21, opts.Model)
		if err != nil {
			return "", err
		}
		reg := obs.NewRegistry()
		obs.Instrument(e.Device(), reg)
		obs.InstrumentPTM(e, reg)
		var aud *audit.Auditor
		if opts.Audit {
			aud = audit.New(e.Device(), audit.Options{})
			aud.Attach()
			if sa, ok := e.(interface{ SetAuditor(ptm.Auditor) }); ok {
				sa.SetAuditor(aud)
			}
			aud.PublishMetrics(reg)
		}
		ms := obs.NewMetricsSink(reg)
		var ring *obs.RingSink
		var sink obs.Sink = ms
		if opts.TraceOut != nil {
			ring = obs.NewRingSink(opts.TraceCap)
			sink = obs.Tee(ms, ring)
		}
		start := time.Now()
		if err := run(e, sink, opts); err != nil {
			return "", fmt.Errorf("bench: workload %s on %s: %w", opts.Workload, kind, err)
		}
		elapsed := time.Since(start)
		if aud != nil {
			if n := aud.ViolationCount(); n > 0 {
				var detail string
				if vs := aud.Violations(); len(vs) > 0 {
					v := vs[0]
					detail = fmt.Sprintf("; first: [%s] at %s line %d (%s, %s/%s, site %s)",
						v.Kind, v.Point, v.Line, v.State, v.Engine, v.TxKind, v.Site)
				}
				return "", fmt.Errorf("bench: workload %s on %s: auditor found %d durability violation(s)%s",
					opts.Workload, kind, n, detail)
			}
		}
		s := reg.Snapshot()
		fences := s.Histograms["tx_fences"]
		pwbs := s.Histograms["tx_pwbs"]
		tbl.Row(kind, fences.Count, s.Counters["trace_read_total"],
			fences.Mean, pwbs.Mean)
		if opts.JSONOut != nil {
			res := WorkloadResult{
				Schema:      "romulus-bench/workload/v1",
				Workload:    opts.Workload,
				Engine:      kind,
				Model:       opts.Model.Name,
				Threads:     1,
				Ops:         opts.Ops,
				Seed:        opts.Seed,
				ElapsedSec:  elapsed.Seconds(),
				OpsPerSec:   float64(opts.Ops) / elapsed.Seconds(),
				Updates:     fences.Count,
				Reads:       s.Counters["trace_read_total"],
				FencesPerTx: fences.Mean,
				PwbsPerTx:   pwbs.Mean,
			}
			if aud != nil {
				t := aud.Totals()
				res.AuditViolations = t.Violations
				res.AuditWaste = &audit.Waste{
					PwbClean:    t.PwbClean,
					PwbRequeued: t.PwbRequeued,
					StoreQueued: t.StoreQueued,
					FenceNoop:   t.FenceNoop,
				}
			}
			if err := jenc.Encode(res); err != nil {
				return "", err
			}
		}
		if opts.TraceOut != nil {
			if err := ring.WriteJSON(opts.TraceOut); err != nil {
				return "", err
			}
		}
		blocks = append(blocks, block{kind, reg})
	}
	out.WriteString(tbl.String())
	if opts.Metrics {
		for _, b := range blocks {
			fmt.Fprintf(&out, "\n# engine %s\n", b.kind)
			if err := b.reg.WriteText(&out); err != nil {
				return "", err
			}
		}
	}
	return out.String(), nil
}

// workloadFunc resolves a workload name to its driver. Drivers perform
// setup, reset device statistics, attach the sink, and then run the
// deterministic transaction sequence.
func workloadFunc(name string) func(Engine, obs.Sink, WorkloadOptions) error {
	switch name {
	case "swaps":
		return runSwapsWorkload
	case "map":
		return runMapWorkload
	}
	return nil
}

// setTrace attaches the sink if the engine supports tracing (all the
// repository's engines do; the indirection keeps bench compiling against
// the minimal Engine surface).
func setTrace(e Engine, s obs.Sink) {
	if t, ok := e.(obs.Traceable); ok {
		t.SetTrace(s)
	}
}

// runSwapsWorkload: SPS-style array swaps, one swap per transaction — the
// minimal update against which Table 1 counts 4 fences per transaction for
// the Romulus engines.
func runSwapsWorkload(e Engine, sink obs.Sink, opts WorkloadOptions) error {
	const arrayLen = 1024
	var arr ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		arr, err = tx.Alloc(arrayLen * 8)
		if err != nil {
			return err
		}
		for i := 0; i < arrayLen; i++ {
			tx.Store64(arr+ptm.Ptr(i*8), uint64(i))
		}
		return nil
	}); err != nil {
		return err
	}
	e.Device().ResetStats()
	setTrace(e, sink)
	defer setTrace(e, nil)
	h, err := e.NewHandle()
	if err != nil {
		return err
	}
	defer h.Release()
	rng := rand.New(rand.NewSource(opts.Seed))
	for n := 0; n < opts.Ops; n++ {
		i := ptm.Ptr(rng.Intn(arrayLen) * 8)
		j := ptm.Ptr(rng.Intn(arrayLen) * 8)
		if err := h.Update(func(tx ptm.Tx) error {
			a := tx.Load64(arr + i)
			b := tx.Load64(arr + j)
			tx.Store64(arr+i, b)
			tx.Store64(arr+j, a)
			return nil
		}); err != nil {
			return err
		}
		if n%4 == 3 {
			if err := h.Read(func(tx ptm.Tx) error {
				tx.Load64(arr + i)
				return nil
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// runMapWorkload: hash-map puts, gets and deletes against pstruct.ByteMap —
// the RomulusDB-flavoured mix, with value sizes spanning cache lines.
func runMapWorkload(e Engine, sink obs.Sink, opts WorkloadOptions) error {
	var m *pstruct.ByteMap
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		m, err = pstruct.NewByteMap(tx, 0, 256)
		return err
	}); err != nil {
		return err
	}
	e.Device().ResetStats()
	setTrace(e, sink)
	defer setTrace(e, nil)
	h, err := e.NewHandle()
	if err != nil {
		return err
	}
	defer h.Release()
	rng := rand.New(rand.NewSource(opts.Seed))
	val := make([]byte, 100)
	for n := 0; n < opts.Ops; n++ {
		k := dbKey(rng.Intn(4 * opts.Ops))
		switch {
		case n%10 == 9:
			if err := h.Update(func(tx ptm.Tx) error {
				_, err := m.Delete(tx, k)
				return err
			}); err != nil {
				return err
			}
		default:
			rng.Read(val)
			if err := h.Update(func(tx ptm.Tx) error {
				_, err := m.Put(tx, k, val)
				return err
			}); err != nil {
				return err
			}
		}
		if n%4 == 3 {
			if err := h.Read(func(tx ptm.Tx) error {
				_, err := m.Get(tx, k, nil)
				if err == pstruct.ErrNotFound {
					return nil
				}
				return err
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
