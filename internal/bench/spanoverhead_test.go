package bench

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunSpanOverhead pins the comparison harness itself (not the overhead
// number, which is machine-dependent and printed for operators): both modes
// run to completion on every variant and the table carries the overhead
// column.
func TestRunSpanOverhead(t *testing.T) {
	out, err := RunSpanOverhead(SpanOverheadOptions{
		Engines: []string{"romlog"},
		Conns:   2,
		Trials:  1,
		Ops:     200,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"off ops/sec", "on ops/sec", "overhead", "romlog", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

// BenchmarkServerPoint measures one spans-on server data point end to end;
// profile it to see where the span layer spends (go test -bench ServerPoint
// -cpuprofile).
func BenchmarkServerPoint(b *testing.B) {
	for _, mode := range []struct {
		name  string
		spans bool
	}{{"spans-off", false}, {"spans-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := ServerWorkloadOptions{
					Ops:      2000,
					Pipeline: 32,
					Seed:     1,
					Spans:    mode.spans,
				}
				jenc := json.NewEncoder(io.Discard)
				if _, err := runServerPoint("romlog", shardVariants["romlog"], 8, obs.NewRegistry(), opts, jenc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
