package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
)

// PwbHistograms reproduces the §6.2 analysis: the distribution of pwb
// instructions per update transaction on each data structure, measured on
// a RomulusLog engine. The paper reports an average of ~10 pwbs for the
// linked list and a dispersed histogram with peaks around 50 and 130 for
// the red-black tree (most of them issued by the memory allocator).
func PwbHistograms(keys, opsPerDS int) (string, error) {
	var out strings.Builder
	for _, ds := range DSKinds {
		e, err := core.New(RegionFor(keys, 8), core.Config{Variant: core.RomLog})
		if err != nil {
			return "", err
		}
		d, err := NewDS(e, ds, keys, 0)
		if err != nil {
			return "", fmt.Errorf("pwbhist %s: %w", ds, err)
		}
		h, err := e.NewHandle()
		if err != nil {
			return "", err
		}
		rng := rand.New(rand.NewSource(21))
		e.ResetPwbHistogram() // exclude the prefill transactions
		for i := 0; i < opsPerDS; i++ {
			if err := d.Update(h, uint64(rng.Intn(keys))); err != nil {
				return "", err
			}
		}
		h.Release()
		hist := e.PwbHistogram()
		modes := hist.Modes(2, 16)
		fmt.Fprintf(&out, "pwbs per update transaction — %s (%d keys, steady state)\n", ds, keys)
		fmt.Fprintf(&out, "%s", hist.String())
		fmt.Fprintf(&out, "histogram peaks: %v\n\n", modes)
	}
	return out.String(), nil
}
