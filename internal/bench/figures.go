package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/pmem"
)

// FigOptions parameterize the figure reproductions. Zero values select the
// paper's settings scaled to a quick run; the cmd tools expose flags for
// full-fidelity sweeps.
type FigOptions struct {
	Engines  []string
	Threads  []int
	Duration time.Duration
	Keys     int
	Model    pmem.Model
}

func (o *FigOptions) defaults(keys int, threads []int) {
	if len(o.Engines) == 0 {
		o.Engines = EngineKinds
	}
	if len(o.Threads) == 0 {
		o.Threads = threads
	}
	if o.Duration == 0 {
		o.Duration = 500 * time.Millisecond
	}
	if o.Keys == 0 {
		o.Keys = keys
	}
	if o.Model.Name == "" {
		o.Model = pmem.ModelDRAM
	}
}

// Fig4 reproduces Figure 4: update-only and read-only throughput on the
// linked list, hash map and red-black tree with 1,000 entries, per engine
// and thread count.
func Fig4(o FigOptions) (string, error) {
	o.defaults(1000, []int{1, 2, 4, 8})
	var out strings.Builder
	for _, workload := range []string{"writes", "reads"} {
		for _, ds := range DSKinds {
			t := NewTable(append([]string{"engine \\ threads"}, intHeaders(o.Threads)...)...)
			for _, kind := range o.Engines {
				// One engine per (kind, structure): the update workload
				// keeps the population invariant, so thread counts can
				// share the prefilled structure.
				e, err := NewEngine(kind, RegionFor(o.Keys, 8), o.Model)
				if err != nil {
					return "", err
				}
				d, err := NewDS(e, ds, o.Keys, 0)
				if err != nil {
					return "", fmt.Errorf("fig4 %s/%s: %w", kind, ds, err)
				}
				row := []any{kind}
				for _, threads := range o.Threads {
					var res MixedResult
					if workload == "writes" {
						res, err = RunMixed(e, d, threads, 0, o.Keys, o.Duration)
					} else {
						res, err = RunMixed(e, d, 0, threads, o.Keys, o.Duration)
					}
					if err != nil {
						return "", fmt.Errorf("fig4 %s/%s: %w", kind, ds, err)
					}
					if workload == "writes" {
						row = append(row, res.WriteTxPerSec)
					} else {
						row = append(row, res.ReadTxPerSec)
					}
				}
				t.Row(row...)
			}
			fmt.Fprintf(&out, "Figure 4 — %s: %s (TX/s, %d keys)\n%s\n", workload, ds, o.Keys, t)
		}
	}
	return out.String(), nil
}

// Fig5 reproduces Figure 5: speedup of a 2,048-bucket fixed hash map with
// 100 entries relative to single-threaded PMDK, for value sizes 8, 64, 256
// and 1,024 bytes.
func Fig5(o FigOptions) (string, error) {
	o.defaults(100, []int{1, 2, 4, 8})
	sizes := []int{8, 64, 256, 1024}
	var out strings.Builder
	for _, valSize := range sizes {
		// Baseline: PMDK at one thread.
		base, err := fig5Point("pmdk", 1, o, valSize)
		if err != nil {
			return "", err
		}
		t := NewTable(append([]string{"engine \\ threads"}, intHeaders(o.Threads)...)...)
		for _, kind := range []string{"romlog", "mne", "pmdk"} {
			if !contains(o.Engines, kind) {
				continue
			}
			row := []any{kind}
			for _, threads := range o.Threads {
				tput, err := fig5Point(kind, threads, o, valSize)
				if err != nil {
					return "", err
				}
				row = append(row, tput/base)
			}
			t.Row(row...)
		}
		fmt.Fprintf(&out, "Figure 5 — %d-byte values (speedup vs 1-thread pmdk = 1.0)\n%s\n", valSize, t)
	}
	return out.String(), nil
}

func fig5Point(kind string, threads int, o FigOptions, valSize int) (float64, error) {
	e, err := NewEngine(kind, RegionFor(o.Keys, valSize)+2048*16, o.Model)
	if err != nil {
		return 0, err
	}
	d, err := NewDS(e, "fixed", o.Keys, valSize)
	if err != nil {
		return 0, fmt.Errorf("fig5 %s: %w", kind, err)
	}
	res, err := RunMixed(e, d, threads, 0, o.Keys, o.Duration)
	if err != nil {
		return 0, fmt.Errorf("fig5 %s: %w", kind, err)
	}
	return res.WriteTxPerSec, nil
}

// Fig6 reproduces Figure 6: update-only throughput on the resizable hash
// map with 10K, 100K and 1M keys. Mnemosyne is omitted exactly as in the
// paper (its transactions cannot allocate such large amounts).
func Fig6(o FigOptions, sizes []int) (string, error) {
	o.defaults(0, []int{1, 2, 4, 8})
	if len(sizes) == 0 {
		sizes = []int{10_000, 100_000, 1_000_000}
	}
	engines := o.Engines
	if len(engines) == len(EngineKinds) {
		engines = []string{"rom", "romlog", "romlr", "pmdk"}
	}
	var out strings.Builder
	for _, keys := range sizes {
		t := NewTable(append([]string{"engine \\ threads"}, intHeaders(o.Threads)...)...)
		for _, kind := range engines {
			e, err := NewEngine(kind, RegionFor(keys, 8), o.Model)
			if err != nil {
				return "", err
			}
			d, err := NewDS(e, "hash", keys, 0)
			if err != nil {
				return "", fmt.Errorf("fig6 %s/%d: %w", kind, keys, err)
			}
			row := []any{kind}
			for _, threads := range o.Threads {
				res, err := RunMixed(e, d, threads, 0, keys, o.Duration)
				if err != nil {
					return "", fmt.Errorf("fig6 %s/%d: %w", kind, keys, err)
				}
				row = append(row, res.WriteTxPerSec)
			}
			t.Row(row...)
		}
		fmt.Fprintf(&out, "Figure 6 — hash map, 100%% writes, %d keys (TX/s)\n%s\n", keys, t)
	}
	return out.String(), nil
}

// Fig7 reproduces Figure 7: read and write throughput on a 1,000-key hash
// map with two concurrent writers (left plot) and with none (right plot),
// as the reader count grows. The PMDK row demonstrates reader-preference
// writer starvation.
func Fig7(o FigOptions) (string, error) {
	o.defaults(1000, []int{2, 4, 8})
	var out strings.Builder
	for _, writers := range []int{2, 0} {
		t := NewTable(append([]string{"engine \\ readers"}, intHeaders(o.Threads)...)...)
		tw := NewTable(append([]string{"engine \\ readers"}, intHeaders(o.Threads)...)...)
		for _, kind := range o.Engines {
			e, err := NewEngine(kind, RegionFor(o.Keys, 8), o.Model)
			if err != nil {
				return "", err
			}
			d, err := NewDS(e, "hash", o.Keys, 0)
			if err != nil {
				return "", fmt.Errorf("fig7 %s: %w", kind, err)
			}
			row := []any{kind}
			roww := []any{kind}
			for _, readers := range o.Threads {
				res, err := RunMixed(e, d, writers, readers, o.Keys, o.Duration)
				if err != nil {
					return "", fmt.Errorf("fig7 %s: %w", kind, err)
				}
				row = append(row, res.ReadTxPerSec)
				roww = append(roww, res.WriteTxPerSec)
			}
			t.Row(row...)
			if writers > 0 {
				tw.Row(roww...)
			}
		}
		if writers > 0 {
			fmt.Fprintf(&out, "Figure 7 (left) — read TX/s with %d concurrent writers\n%s\n", writers, t)
			fmt.Fprintf(&out, "Figure 7 (left) — write TX/s with %d writers\n%s\n", writers, tw)
		} else {
			fmt.Fprintf(&out, "Figure 7 (right) — read TX/s, no writers\n%s\n", t)
		}
	}
	return out.String(), nil
}

// Fig9 reproduces Figure 9: the SPS benchmark across fence models and
// transaction sizes.
func Fig9(o FigOptions, swapsPerTx []int, models []pmem.Model) (string, error) {
	o.defaults(0, nil)
	if len(swapsPerTx) == 0 {
		swapsPerTx = []int{1, 4, 8, 16, 32, 64, 128, 256, 1024}
	}
	if len(models) == 0 {
		models = pmem.Models
	}
	var out strings.Builder
	for _, model := range models {
		t := NewTable(append([]string{"engine \\ swaps/tx"}, intHeaders(swapsPerTx)...)...)
		for _, kind := range o.Engines {
			row := []any{kind}
			for _, swaps := range swapsPerTx {
				e, err := NewEngine(kind, (10_000*8)+(8<<20), model)
				if err != nil {
					return "", err
				}
				v, err := RunSPS(e, 10_000, swaps, o.Duration)
				if err != nil {
					return "", fmt.Errorf("fig9 %s/%s: %w", kind, model.Name, err)
				}
				row = append(row, v)
			}
			t.Row(row...)
		}
		fmt.Fprintf(&out, "Figure 9 — SPS, %s (swaps/µs, single thread)\n%s\n", model.Name, t)
	}
	return out.String(), nil
}

func intHeaders(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
