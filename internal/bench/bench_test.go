package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/pmem"
)

func TestNewEngineAllKinds(t *testing.T) {
	for _, kind := range EngineKinds {
		e, err := NewEngine(kind, 1<<20, pmem.ModelDRAM)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if e.Name() == "" {
			t.Errorf("%s: empty name", kind)
		}
	}
	if _, err := NewEngine("nope", 1<<20, pmem.ModelDRAM); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	kinds, err := ParseEngines("")
	if err != nil || len(kinds) != len(EngineKinds) {
		t.Errorf("ParseEngines(\"\") = %v, %v", kinds, err)
	}
	kinds, err = ParseEngines("rom,pmdk")
	if err != nil || len(kinds) != 2 {
		t.Errorf("ParseEngines = %v, %v", kinds, err)
	}
	if _, err := ParseEngines("bogus"); err == nil {
		t.Error("bogus engine accepted")
	}
	ints, err := ParseInts("1, 2,30")
	if err != nil || len(ints) != 3 || ints[2] != 30 {
		t.Errorf("ParseInts = %v, %v", ints, err)
	}
	if _, err := ParseInts("x"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestDataStructuresRunUnderHarness(t *testing.T) {
	for _, ds := range append(append([]string{}, DSKinds...), "fixed") {
		e, err := NewEngine("romlog", RegionFor(100, 64), pmem.ModelDRAM)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDS(e, ds, 100, 64)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		res, err := RunMixed(e, d, 1, 1, 100, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if res.WriteOps == 0 || res.ReadOps == 0 {
			t.Errorf("%s: no progress: %+v", ds, res)
		}
	}
	if _, err := NewDS(nil, "nope", 1, 0); err == nil {
		t.Error("unknown DS accepted")
	}
}

func TestRunSPS(t *testing.T) {
	e, err := NewEngine("romlog", 1<<20, pmem.ModelDRAM)
	if err != nil {
		t.Fatal(err)
	}
	v, err := RunSPS(e, 1000, 4, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("swaps/us = %f", v)
	}
}

func TestRunDBBenchSmoke(t *testing.T) {
	for _, db := range []string{"romdb", "leveldb"} {
		for _, w := range DBWorkloads {
			entries := 200
			res, err := RunDBBench(db, w, t.TempDir(), 2, entries)
			if err != nil {
				t.Fatalf("%s/%s: %v", db, w, err)
			}
			if res.MicrosPerOp <= 0 {
				t.Errorf("%s/%s: micros/op = %f", db, w, res.MicrosPerOp)
			}
		}
	}
	if _, err := RunDBBench("romdb", "nope", t.TempDir(), 1, 10); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := RunDBBench("nope", "fillseq", t.TempDir(), 1, 10); err == nil {
		t.Error("unknown db accepted")
	}
}

func TestMeasureRecovery(t *testing.T) {
	res, err := MeasureRecovery(500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 || res.Watermark <= 0 {
		t.Errorf("recovery result: %+v", res)
	}
}

func TestMeasureTable1(t *testing.T) {
	rows, err := MeasureTable1(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(EngineKinds) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch r.Engine {
		case "rom", "romlog", "romlr":
			if r.Fences > 4 {
				t.Errorf("%s: %f fences/tx, want <= 4", r.Engine, r.Fences)
			}
		case "pmdk":
			if r.Fences < 64 {
				t.Errorf("pmdk: %f fences/tx, want >= one per word", r.Fences)
			}
		case "mne":
			if r.Fences < 4 {
				t.Errorf("mne: %f fences/tx, want >= 4", r.Fences)
			}
		}
	}
	// The headline amplification contrast: Romulus ~100%, baselines far
	// higher.
	var romAmp, mneAmp, pmdkAmp float64
	for _, r := range rows {
		switch r.Engine {
		case "romlog":
			romAmp = r.AmplificationPct
		case "mne":
			mneAmp = r.AmplificationPct
		case "pmdk":
			pmdkAmp = r.AmplificationPct
		}
	}
	if romAmp > 150 {
		t.Errorf("romlog amplification = %.0f%%, want ~100%%", romAmp)
	}
	if mneAmp < 250 {
		t.Errorf("mne amplification = %.0f%%, want >= 300%%-ish", mneAmp)
	}
	if pmdkAmp < 200 {
		t.Errorf("pmdk amplification = %.0f%%, want >= 300%%-ish", pmdkAmp)
	}
	an := AnalyticTable1Rows(64)
	if len(an) != 3 {
		t.Errorf("analytic rows = %d", len(an))
	}
}

func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	opts := FigOptions{
		Engines:  []string{"romlog", "pmdk"},
		Threads:  []int{1, 2},
		Duration: 30 * time.Millisecond,
		Model:    pmem.ModelDRAM,
	}
	out, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 4") {
		t.Error("fig4 output malformed")
	}
	if out, err = Fig5(opts); err != nil || !strings.Contains(out, "Figure 5") {
		t.Fatalf("fig5: %v", err)
	}
	if out, err = Fig6(opts, []int{2000}); err != nil || !strings.Contains(out, "Figure 6") {
		t.Fatalf("fig6: %v", err)
	}
	if out, err = Fig7(opts); err != nil || !strings.Contains(out, "Figure 7") {
		t.Fatalf("fig7: %v", err)
	}
	if out, err = Fig9(opts, []int{1, 8}, []pmem.Model{pmem.ModelDRAM}); err != nil || !strings.Contains(out, "Figure 9") {
		t.Fatalf("fig9: %v", err)
	}
}

func TestTablePrinter(t *testing.T) {
	tb := NewTable("a", "bb")
	tb.Row("x", 1234.5)
	tb.Row("yyyy", 0.25)
	s := tb.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "1234") || !strings.Contains(s, "0.250") {
		t.Errorf("table output:\n%s", s)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}
