package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pmem"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

func TestRunWorkloadSwapsMetrics(t *testing.T) {
	out, err := RunWorkload(WorkloadOptions{
		Workload: "swaps",
		Engines:  []string{"rom", "romlog", "romlr"},
		Ops:      64,
		Metrics:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: every Romulus variant commits an update with exactly 4
	// fences, independent of transaction size.
	if got := strings.Count(out, "tx_fences_mean 4\n"); got != 3 {
		t.Fatalf("want tx_fences_mean 4 for all 3 engines, got %d in:\n%s", got, out)
	}
	for _, name := range []string{"pmem_pwb_total", "ptm_update_tx_total", "trace_update_total", "tx_copied_bytes_sum"} {
		if !strings.Contains(out, name) {
			t.Errorf("metric %s missing from output", name)
		}
	}
}

func TestRunWorkloadMap(t *testing.T) {
	out, err := RunWorkload(WorkloadOptions{
		Workload: "map",
		Engines:  []string{"romlog", "mne", "pmdk"},
		Ops:      48,
		Metrics:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# engine pmdk") {
		t.Fatalf("missing pmdk metrics block:\n%s", out)
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	if _, err := RunWorkload(WorkloadOptions{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload should error")
	}
}

// TestWorkloadTraceGolden pins the full per-transaction trace of a
// fixed-seed swaps workload bit-for-bit. Any change to an engine's
// persistence protocol (pwb or fence counts, copy volume) or to the trace
// schema shows up as a diff here; regenerate deliberately with
//
//	go test ./internal/bench -run TraceGolden -update
func TestWorkloadTraceGolden(t *testing.T) {
	var trace bytes.Buffer
	_, err := RunWorkload(WorkloadOptions{
		Workload: "swaps",
		Engines:  []string{"rom", "romlog", "mne", "pmdk"},
		Ops:      24,
		Seed:     7,
		TraceOut: &trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_swaps.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, trace.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(trace.Bytes(), want) {
		gl, wl := strings.Split(trace.String(), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("trace diverges from %s at line %d:\ngot  %s\nwant %s",
					golden, i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("trace length differs from %s: got %d lines, want %d",
			golden, len(gl), len(wl))
	}

	// The same run must also be bit-for-bit repeatable within a process.
	var again bytes.Buffer
	if _, err := RunWorkload(WorkloadOptions{
		Workload: "swaps",
		Engines:  []string{"rom", "romlog", "mne", "pmdk"},
		Ops:      24,
		Seed:     7,
		TraceOut: &again,
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(trace.Bytes(), again.Bytes()) {
		t.Fatal("two identical runs produced different traces")
	}
}

// An audited workload run must stay violation-free on every engine, report
// audit_* counters in the metrics block, and leave Table 1's fence counts
// untouched (the auditor observes; it must not change the protocol).
func TestRunWorkloadAudited(t *testing.T) {
	out, err := RunWorkload(WorkloadOptions{
		Workload: "swaps",
		Engines:  EngineKinds,
		Ops:      64,
		Metrics:  true,
		Audit:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The 3 Romulus engines plus the Mnemosyne-style redo log all commit
	// with exactly 4 fences; the auditor must not change that.
	if got := strings.Count(out, "tx_fences_mean 4\n"); got != 4 {
		t.Fatalf("want tx_fences_mean 4 for 4 engines under -audit, got %d in:\n%s", got, out)
	}
	for _, name := range []string{"audit_violation_total 0", "audit_durable_check_total", "audit_pwb_clean_total"} {
		if !strings.Contains(out, name) {
			t.Errorf("metric %s missing from audited output", name)
		}
	}
}

// TestRunWorkloadJSON checks the machine-readable result stream: one
// romulus-bench/workload/v1 object per engine with deterministic
// persistence costs.
func TestRunWorkloadJSON(t *testing.T) {
	var buf bytes.Buffer
	_, err := RunWorkload(WorkloadOptions{
		Workload: "swaps",
		Engines:  []string{"rom", "pmdk"},
		Ops:      32,
		Model:    pmem.ModelDRAM,
		Audit:    true,
		JSONOut:  &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var rows []WorkloadResult
	for dec.More() {
		var r WorkloadResult
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d JSON rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Schema != "romulus-bench/workload/v1" {
			t.Errorf("%s: schema = %q", r.Engine, r.Schema)
		}
		if r.Model != "dram" || r.Ops != 32 || r.Threads != 1 {
			t.Errorf("%s: bad identity fields: %+v", r.Engine, r)
		}
		if r.Updates == 0 || r.FencesPerTx == 0 || r.OpsPerSec <= 0 {
			t.Errorf("%s: missing measurements: %+v", r.Engine, r)
		}
		if r.AuditViolations != 0 || r.AuditWaste == nil {
			t.Errorf("%s: audit fields wrong: violations=%d waste=%v", r.Engine, r.AuditViolations, r.AuditWaste)
		}
	}
	if rows[0].Engine != "rom" || rows[1].Engine != "pmdk" {
		t.Errorf("row order not engine order: %q, %q", rows[0].Engine, rows[1].Engine)
	}
}
