package bench

import (
	"fmt"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Table1Row is one measured (or analytic) row of the paper's Table 1.
type Table1Row struct {
	Engine        string
	LogType       string
	Interposition string
	Measured      bool
	// Per transaction, measured over dense word stores:
	Fences           float64 // pfence + psync
	Pwbs             float64
	UserBytes        float64
	PersistedBytes   float64
	AmplificationPct float64 // additional persistent bytes per user byte
}

// engineMeta carries the static columns of Table 1.
var engineMeta = map[string][2]string{
	"rom":    {"volatile redo", "stores"},
	"romlog": {"volatile redo", "stores"},
	"romlr":  {"volatile redo", "stores"},
	"mne":    {"redo", "loads + stores"},
	"pmdk":   {"undo", "stores"},
}

// AnalyticTable1Rows reproduces the non-runnable rows of Table 1 (systems
// the paper describes but whose code is not part of this evaluation),
// using the paper's own formulas with the given store count.
func AnalyticTable1Rows(stores int) []Table1Row {
	n := float64(stores)
	return []Table1Row{
		{Engine: "vista (paper)", LogType: "undo", Interposition: "stores",
			Fences: n, UserBytes: n * 8, PersistedBytes: n * 8 * 4, AmplificationPct: 300},
		{Engine: "atlas (paper)", LogType: "undo", Interposition: "stores",
			Fences: 2 + 3*n, UserBytes: n * 8, PersistedBytes: n * 8 * 5, AmplificationPct: 400},
		{Engine: "justdo (paper)", LogType: "done-to-here", Interposition: "stores",
			Fences: 2 + 3*n, UserBytes: n * 8, PersistedBytes: n * 8 * 5, AmplificationPct: 400},
	}
}

// MeasureTable1 runs the same dense-store transaction on every runnable
// engine and reports measured persistence costs. Each transaction writes
// `stores` consecutive 64-bit words of a prefilled buffer; contiguous
// stores keep cache-line accounting comparable to the paper's
// word-granularity analysis.
func MeasureTable1(stores, txs int) ([]Table1Row, error) {
	var rows []Table1Row
	for _, kind := range EngineKinds {
		e, err := NewEngine(kind, (stores*8*4)+(8<<20), pmem.ModelDRAM)
		if err != nil {
			return nil, err
		}
		var buf ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			buf, err = tx.Alloc(stores * 8)
			return err
		}); err != nil {
			return nil, fmt.Errorf("bench: table1 setup (%s): %w", kind, err)
		}
		h, err := e.NewHandle()
		if err != nil {
			return nil, err
		}
		// Warm up once so allocator effects do not pollute the measurement.
		if err := h.Update(func(tx ptm.Tx) error {
			for i := 0; i < stores; i++ {
				tx.Store64(buf+ptm.Ptr(i*8), uint64(i))
			}
			return nil
		}); err != nil {
			return nil, err
		}
		e.Device().ResetStats()
		for t := 0; t < txs; t++ {
			if err := h.Update(func(tx ptm.Tx) error {
				for i := 0; i < stores; i++ {
					tx.Store64(buf+ptm.Ptr(i*8), uint64(t+i))
				}
				return nil
			}); err != nil {
				return nil, err
			}
		}
		s := e.Device().Stats()
		h.Release()
		k := float64(txs)
		user := float64(stores * 8)
		persisted := float64(s.BytesPersisted) / k
		meta := engineMeta[kind]
		rows = append(rows, Table1Row{
			Engine:           kind,
			LogType:          meta[0],
			Interposition:    meta[1],
			Measured:         true,
			Fences:           (float64(s.Pfences) + float64(s.Psyncs)) / k,
			Pwbs:             float64(s.Pwbs) / k,
			UserBytes:        user,
			PersistedBytes:   persisted,
			AmplificationPct: (persisted - user) / user * 100,
		})
	}
	return rows, nil
}
