package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// WorkloadSchema identifies the JSON-lines row format emitted by -json
// workload runs and consumed by the trajectory checker.
const WorkloadSchema = "romulus-bench/workload/v1"

// DefaultTrajectoryTol is the relative headroom a row gets over its group's
// historical best before the checker calls it a regression. Multi-thread
// rows depend on combiner batch sizes, which vary a little with scheduling,
// so the tolerance is generous; a broken amortization (batches collapsing
// to one op, fences back at the per-tx floor) overshoots it many times over.
const DefaultTrajectoryTol = 0.30

// trajectoryEps is absolute slack added on top of the relative tolerance,
// so near-zero baselines (highly amortized fence rates) don't flag on
// sub-hundredth jitter.
const trajectoryEps = 0.05

// Regression describes one trajectory group whose newest row got worse.
type Regression struct {
	Workload string
	Engine   string
	Model    string
	Threads  int
	// Shards is the partition count of the regressed group (zero for
	// single-engine rows).
	Shards int
	// Conns is the client-connection count of the regressed group (zero for
	// in-process rows).
	Conns int
	// Metric is the regressed quantity ("fences_per_tx" or "pwbs_per_tx" —
	// per acknowledged write for server rows — "ops_per_sec", "ack_p99_ns",
	// or "rebalance_ratio").
	Metric string
	// Newest is the metric of the latest appended row; Best the baseline it
	// was judged against — the historical best over all earlier rows for the
	// deterministic cost metrics (fences, pwbs), the *median* of the earlier
	// rows for the wall-clock metrics (ops_per_sec, ack_p99_ns), and the
	// absolute serving floor for rebalance_ratio; Limit the threshold Newest
	// crossed.
	Newest, Best, Limit float64
}

// String renders the regression as one human-readable line.
func (r Regression) String() string {
	dims := fmt.Sprintf("model=%s threads=%d", r.Model, r.Threads)
	if r.Shards > 0 {
		dims += fmt.Sprintf(" shards=%d", r.Shards)
	}
	if r.Conns > 0 {
		dims += fmt.Sprintf(" conns=%d", r.Conns)
	}
	rel := "exceeds"
	if r.Metric == "ops_per_sec" || r.Metric == "rebalance_ratio" {
		rel = "falls below"
	}
	return fmt.Sprintf("%s/%s %s: %s %.3f %s %.3f (baseline over earlier rows %.3f)",
		r.Workload, r.Engine, dims, r.Metric, r.Newest, rel, r.Limit, r.Best)
}

// CheckTrajectory reads a trajectory file — WorkloadSchema JSON lines
// accumulated across runs with romulus-bench -json -append — and reports
// every (workload, engine, model, threads, shards, conns) group whose newest
// row regresses fences_per_tx or pwbs_per_tx above the group's historical
// best by more than tol (relative, plus a small absolute slack) — pwbs get
// the same headroom as fences, so a dirty-range replicate backsliding toward
// full-copy write amplification flags just like a broken fence amortization.
// Network-server rows (conns >
// 0) are additionally gated on ops_per_sec: throughput collapsing below the
// *median* of the group's earlier rows by more than tol flags, since scaling
// with connection count is what those rows exist to evidence. The wall-clock
// gates (ops_per_sec, ack_p99_ns) anchor on the median rather than the best
// because one unusually idle session would otherwise set a bar no honest run
// on a busier machine could meet — only the deterministic persistence-cost
// columns keep best-based floors. Rebalance rows
// (workload "rebalance") are gated on an absolute SLO instead of history:
// rebalance_ratio below the serving floor flags regardless of prior rows.
// Groups with a
// single row have no baseline and pass. Blank lines are skipped; rows of a
// different schema are an error, as mixing formats in one trajectory file
// hides history.
func CheckTrajectory(r io.Reader, tol float64) ([]Regression, error) {
	if tol <= 0 {
		tol = DefaultTrajectoryTol
	}
	type group struct {
		rows []WorkloadResult
	}
	groups := map[string]*group{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var row WorkloadResult
		if err := json.Unmarshal([]byte(text), &row); err != nil {
			return nil, fmt.Errorf("bench: trajectory line %d: %w", line, err)
		}
		if row.Schema != WorkloadSchema {
			return nil, fmt.Errorf("bench: trajectory line %d: schema %q, want %q", line, row.Schema, WorkloadSchema)
		}
		key := fmt.Sprintf("%s\x00%s\x00%s\x00%d\x00%d\x00%d",
			row.Workload, row.Engine, row.Model, row.Threads, row.Shards, row.Conns)
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: reading trajectory: %w", err)
	}
	var regs []Regression
	sort.Strings(order)
	for _, key := range order {
		rows := groups[key].rows
		newest := rows[len(rows)-1]
		// Rebalance rows carry an absolute SLO, not a history-relative gate:
		// the during-split throughput fraction may never fall below the
		// serving floor, even on a group's very first row. The ratio is
		// self-normalizing (during / steady on the same machine and run), so
		// unlike raw ops/sec it is safe to gate absolutely.
		if newest.Workload == "rebalance" && newest.RebalanceRatio > 0 &&
			newest.RebalanceRatio < rebalanceServingFloor {
			regs = append(regs, Regression{
				Workload: newest.Workload,
				Engine:   newest.Engine,
				Model:    newest.Model,
				Threads:  newest.Threads,
				Shards:   newest.Shards,
				Metric:   "rebalance_ratio",
				Newest:   newest.RebalanceRatio,
				Best:     rebalanceServingFloor,
				Limit:    rebalanceServingFloor,
			})
		}
		if len(rows) < 2 {
			continue
		}
		base := Regression{
			Workload: newest.Workload,
			Engine:   newest.Engine,
			Model:    newest.Model,
			Threads:  newest.Threads,
			Shards:   newest.Shards,
			Conns:    newest.Conns,
		}
		bestFences := rows[0].FencesPerTx
		for _, row := range rows[1 : len(rows)-1] {
			if row.FencesPerTx < bestFences {
				bestFences = row.FencesPerTx
			}
		}
		limit := bestFences*(1+tol) + trajectoryEps
		if newest.FencesPerTx > limit {
			r := base
			r.Metric = "fences_per_tx"
			r.Newest = newest.FencesPerTx
			r.Best = bestFences
			r.Limit = limit
			regs = append(regs, r)
		}
		// Write-amplification gate: pwbs per tx gets the same relative
		// headroom as fences. A zero best (history predating the pwbs
		// column) disables the gate rather than flagging every later row.
		bestPwbs := rows[0].PwbsPerTx
		for _, row := range rows[1 : len(rows)-1] {
			if row.PwbsPerTx < bestPwbs {
				bestPwbs = row.PwbsPerTx
			}
		}
		if bestPwbs > 0 {
			pwbLimit := bestPwbs*(1+tol) + trajectoryEps
			if newest.PwbsPerTx > pwbLimit {
				r := base
				r.Metric = "pwbs_per_tx"
				r.Newest = newest.PwbsPerTx
				r.Best = bestPwbs
				r.Limit = pwbLimit
				regs = append(regs, r)
			}
		}
		// Throughput gate for network-server rows: higher is better, so the
		// floor is the earlier rows' median shrunk by the tolerance. Anchoring
		// on the median (not the best) keeps one unusually idle session from
		// setting a floor normal runs cannot meet; a real collapse still lands
		// far below any honest center. Timing-based, hence only applied where
		// throughput scaling is the row's claim.
		if newest.Conns > 0 {
			var opsHist []float64
			for _, row := range rows[:len(rows)-1] {
				opsHist = append(opsHist, row.OpsPerSec)
			}
			medOps := medianOf(opsHist)
			floor := medOps * (1 - tol)
			if newest.OpsPerSec < floor {
				r := base
				r.Metric = "ops_per_sec"
				r.Newest = newest.OpsPerSec
				r.Best = medOps
				r.Limit = floor
				regs = append(regs, r)
			}
			// Ack-latency SLO ceiling: the p99 acknowledgment latency may not
			// blow past the earlier rows' median. Quantiles come from
			// power-of-two buckets, so one bucket step (a factor of two) is
			// legal jitter; the relative tolerance rides on top of that.
			// Rows predating the ack histogram (p99 absent/zero) are skipped
			// on both sides so old history neither gates nor trips.
			var p99Hist []float64
			for _, row := range rows[:len(rows)-1] {
				if row.AckP99Ns > 0 {
					p99Hist = append(p99Hist, float64(row.AckP99Ns))
				}
			}
			if len(p99Hist) > 0 && newest.AckP99Ns > 0 {
				medP99 := medianOf(p99Hist)
				ceiling := medP99 * 2 * (1 + tol)
				if float64(newest.AckP99Ns) > ceiling {
					r := base
					r.Metric = "ack_p99_ns"
					r.Newest = float64(newest.AckP99Ns)
					r.Best = medP99
					r.Limit = ceiling
					regs = append(regs, r)
				}
			}
		}
	}
	return regs, nil
}

// medianOf returns the lower median of xs (the middle element after
// sorting; for even counts the lower of the two middles, which biases the
// wall-clock baselines slightly toward the stricter side). xs must be
// non-empty; the caller's slice is not reordered.
func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// CheckTrajectoryFile is CheckTrajectory over a file path.
func CheckTrajectoryFile(path string, tol float64) ([]Regression, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return CheckTrajectory(f, tol)
}
