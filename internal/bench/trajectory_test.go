package bench

import (
	"fmt"
	"strings"
	"testing"
)

func trajRow(workload, engine string, threads int, fences float64) string {
	return trajRowPwbs(workload, engine, threads, fences, 6)
}

func trajRowPwbs(workload, engine string, threads int, fences, pwbs float64) string {
	return fmt.Sprintf(`{"schema":"romulus-bench/workload/v1","workload":%q,"engine":%q,`+
		`"model":"dram","threads":%d,"ops":1000,"seed":1,"elapsed_sec":0.1,"ops_per_sec":1,`+
		`"updates":1000,"reads":250,"fences_per_tx":%g,"pwbs_per_tx":%g}`,
		workload, engine, threads, fences, pwbs)
}

func TestCheckTrajectoryPassesAndFails(t *testing.T) {
	// Two runs of the same group: stable single-thread row, improved
	// multi-thread row. No regressions.
	ok := strings.Join([]string{
		trajRow("swaps", "romlog", 1, 4),
		trajRow("swaps", "romlog", 8, 2),
		"",
		trajRow("swaps", "romlog", 1, 4),
		trajRow("swaps", "romlog", 8, 0.5),
	}, "\n")
	regs, err := CheckTrajectory(strings.NewReader(ok), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// Third run: the 8-thread row collapses back to the per-tx fence floor
	// (combining broken). Must flag exactly that group; jitter on the other
	// row (within tolerance) must not flag.
	bad := ok + "\n" + trajRow("swaps", "romlog", 1, 4.2) + "\n" + trajRow("swaps", "romlog", 8, 4)
	regs, err = CheckTrajectory(strings.NewReader(bad), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Threads != 8 || r.Newest != 4 || r.Best != 0.5 {
		t.Fatalf("wrong regression flagged: %+v", r)
	}
	if !strings.Contains(r.String(), "fences_per_tx") {
		t.Errorf("regression string %q lacks metric name", r.String())
	}
}

func TestCheckTrajectoryPwbsGate(t *testing.T) {
	// Dirty-range replication holds pwbs_per_tx at 6; a row backsliding
	// toward full-copy write amplification must flag with the same headroom
	// the fence gate gets. Jitter within tolerance must not.
	ok := strings.Join([]string{
		trajRowPwbs("shardkv", "rom", 4, 4, 6),
		trajRowPwbs("shardkv", "rom", 4, 4, 7),
	}, "\n")
	regs, err := CheckTrajectory(strings.NewReader(ok), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("legal pwbs jitter flagged: %v", regs)
	}

	bad := ok + "\n" + trajRowPwbs("shardkv", "rom", 4, 4, 700)
	regs, err = CheckTrajectory(strings.NewReader(bad), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "pwbs_per_tx" {
		t.Fatalf("got %v, want one pwbs_per_tx regression", regs)
	}
	if regs[0].Best != 6 || regs[0].Newest != 700 {
		t.Fatalf("wrong regression flagged: %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "pwbs_per_tx") {
		t.Errorf("regression string %q lacks metric name", regs[0].String())
	}
}

func TestCheckTrajectoryPwbsGateSkipsZeroBaseline(t *testing.T) {
	// History predating the pwbs column deserializes as zero and provides no
	// baseline; the gate stays silent rather than flagging every later row.
	rows := strings.Join([]string{
		trajRowPwbs("swaps", "rom", 1, 4, 0),
		trajRowPwbs("swaps", "rom", 1, 4, 154),
	}, "\n")
	regs, err := CheckTrajectory(strings.NewReader(rows), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("pwbs gate fired without a baseline: %v", regs)
	}
}

func TestCheckTrajectorySingleRowGroupsPass(t *testing.T) {
	one := trajRow("map", "rom", 4, 4)
	regs, err := CheckTrajectory(strings.NewReader(one), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("single-row group flagged: %v", regs)
	}
}

// serverRow renders a network-server trajectory row (conns > 0) with an ack
// p99; p99 of 0 models history predating the ack histogram.
func serverRow(conns int, opsPerSec float64, ackP99 uint64) string {
	return fmt.Sprintf(`{"schema":"romulus-bench/workload/v1","workload":"server","engine":"romlog",`+
		`"model":"dram","threads":1,"shards":1,"conns":%d,"ops":2000,"seed":1,"elapsed_sec":0.1,`+
		`"ops_per_sec":%g,"updates":2000,"fences_per_tx":0.5,"pwbs_per_tx":6,"ack_p99_ns":%d}`,
		conns, opsPerSec, ackP99)
}

func TestCheckTrajectoryAckP99Ceiling(t *testing.T) {
	// One bucket step (2x) plus tolerance is legal jitter: 524287 → 1048575
	// stays under 524287*2*1.3.
	ok := strings.Join([]string{
		serverRow(8, 100000, 524287),
		serverRow(8, 101000, 1048575),
	}, "\n")
	regs, err := CheckTrajectory(strings.NewReader(ok), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("legal p99 jitter flagged: %v", regs)
	}

	// Two bucket steps past the best blows the SLO ceiling.
	bad := ok + "\n" + serverRow(8, 99000, 4194303)
	regs, err = CheckTrajectory(strings.NewReader(bad), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "ack_p99_ns" {
		t.Fatalf("got %v, want one ack_p99_ns regression", regs)
	}
	if regs[0].Best != 524287 {
		t.Fatalf("ceiling anchored on %v, want the earlier rows' median 524287", regs[0].Best)
	}
	if !strings.Contains(regs[0].String(), "ack_p99_ns") {
		t.Errorf("regression string %q lacks metric name", regs[0].String())
	}
}

func TestCheckTrajectoryWallClockGatesUseMedian(t *testing.T) {
	// One unusually idle session recorded an outlier row (high throughput,
	// low p99). The wall-clock gates must anchor on the median of the earlier
	// rows, so a newest row consistent with the typical runs passes even
	// though it falls outside tolerance of the outlier.
	rows := strings.Join([]string{
		serverRow(8, 160000, 1048575), // idle-session outlier
		serverRow(8, 100000, 4194303),
		serverRow(8, 101000, 4194303),
		serverRow(8, 99000, 4194303), // newest: typical, must pass
	}, "\n")
	regs, err := CheckTrajectory(strings.NewReader(rows), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("median-consistent newest row flagged against an outlier: %v", regs)
	}

	// A genuine collapse still lands far below the median floor.
	bad := rows + "\n" + serverRow(8, 20000, 67108863)
	regs, err = CheckTrajectory(strings.NewReader(bad), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("got %v, want ops_per_sec and ack_p99_ns regressions", regs)
	}
	for _, r := range regs {
		if r.Metric != "ops_per_sec" && r.Metric != "ack_p99_ns" {
			t.Errorf("unexpected regression %+v", r)
		}
		if r.Metric == "ops_per_sec" && r.Best != 100000 {
			t.Errorf("ops floor anchored on %v, want the median 100000", r.Best)
		}
	}
}

func TestCheckTrajectoryAckP99SkipsRowsWithoutP99(t *testing.T) {
	// Historical rows without the ack histogram (p99 0) provide no baseline:
	// the newest row cannot trip, and a newest row without p99 is skipped
	// even against a real baseline.
	noBase := strings.Join([]string{
		serverRow(8, 100000, 0),
		serverRow(8, 100000, 0),
		serverRow(8, 99000, 8388607),
	}, "\n")
	regs, err := CheckTrajectory(strings.NewReader(noBase), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("p99 gate fired without a baseline: %v", regs)
	}

	noNew := strings.Join([]string{
		serverRow(8, 100000, 524287),
		serverRow(8, 100000, 0),
	}, "\n")
	regs, err = CheckTrajectory(strings.NewReader(noNew), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("p99-less newest row flagged: %v", regs)
	}
}

func TestCheckTrajectoryRejectsForeignSchema(t *testing.T) {
	_, err := CheckTrajectory(strings.NewReader(`{"schema":"other/v2"}`), 0)
	if err == nil {
		t.Fatal("foreign schema accepted")
	}
}
