package bench

import (
	"fmt"
	"strings"
	"testing"
)

func trajRow(workload, engine string, threads int, fences float64) string {
	return fmt.Sprintf(`{"schema":"romulus-bench/workload/v1","workload":%q,"engine":%q,`+
		`"model":"dram","threads":%d,"ops":1000,"seed":1,"elapsed_sec":0.1,"ops_per_sec":1,`+
		`"updates":1000,"reads":250,"fences_per_tx":%g,"pwbs_per_tx":6}`,
		workload, engine, threads, fences)
}

func TestCheckTrajectoryPassesAndFails(t *testing.T) {
	// Two runs of the same group: stable single-thread row, improved
	// multi-thread row. No regressions.
	ok := strings.Join([]string{
		trajRow("swaps", "romlog", 1, 4),
		trajRow("swaps", "romlog", 8, 2),
		"",
		trajRow("swaps", "romlog", 1, 4),
		trajRow("swaps", "romlog", 8, 0.5),
	}, "\n")
	regs, err := CheckTrajectory(strings.NewReader(ok), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// Third run: the 8-thread row collapses back to the per-tx fence floor
	// (combining broken). Must flag exactly that group; jitter on the other
	// row (within tolerance) must not flag.
	bad := ok + "\n" + trajRow("swaps", "romlog", 1, 4.2) + "\n" + trajRow("swaps", "romlog", 8, 4)
	regs, err = CheckTrajectory(strings.NewReader(bad), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Threads != 8 || r.Newest != 4 || r.Best != 0.5 {
		t.Fatalf("wrong regression flagged: %+v", r)
	}
	if !strings.Contains(r.String(), "fences_per_tx") {
		t.Errorf("regression string %q lacks metric name", r.String())
	}
}

func TestCheckTrajectorySingleRowGroupsPass(t *testing.T) {
	one := trajRow("map", "rom", 4, 4)
	regs, err := CheckTrajectory(strings.NewReader(one), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("single-row group flagged: %v", regs)
	}
}

func TestCheckTrajectoryRejectsForeignSchema(t *testing.T) {
	_, err := CheckTrajectory(strings.NewReader(`{"schema":"other/v2"}`), 0)
	if err == nil {
		t.Fatal("foreign schema accepted")
	}
}
