// Package bench is the benchmark harness that regenerates every table and
// figure of the Romulus paper's evaluation (§6): engine factories, the
// data-structure workloads of Figure 4–7, the SPS microbenchmark of
// Figure 9, the db_bench-style workloads of Figure 8, recovery timing
// (§6.5) and the Table 1 cost measurements. The cmd/ tools and the
// top-level bench_test.go are thin drivers over this package.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/redolog"
	"repro/internal/undolog"
)

// Engine is the common surface the harness needs from any PTM.
type Engine interface {
	ptm.HandlePTM
	Device() *pmem.Device
}

// EngineKinds lists the engines of the paper's evaluation in its plotting
// order: the three Romulus variants, Mnemosyne-style, PMDK-style.
var EngineKinds = []string{"rom", "romlog", "romlr", "mne", "pmdk"}

// NewEngine builds an engine by kind with the given per-copy region size
// and persistence model.
func NewEngine(kind string, regionSize int, model pmem.Model) (Engine, error) {
	switch kind {
	case "rom":
		return core.New(regionSize, core.Config{Variant: core.Rom, Model: model})
	case "romlog":
		return core.New(regionSize, core.Config{Variant: core.RomLog, Model: model})
	case "romlr":
		return core.New(regionSize, core.Config{Variant: core.RomLR, Model: model})
	case "mne":
		// Large segments so SPS transactions of 1,024 swaps fit.
		return redolog.New(regionSize, redolog.Config{Model: model, SegmentSize: 1 << 20})
	case "pmdk":
		// Scale the undo log with the region: the real libpmemobj grows
		// its log, and Figure 6's hash-map resize transactions snapshot
		// large fractions of the table.
		logSize := regionSize/2 + (4 << 20)
		return undolog.New(regionSize, undolog.Config{Model: model, LogSize: logSize})
	}
	return nil, fmt.Errorf("bench: unknown engine kind %q", kind)
}

// ParseEngines splits a comma-separated engine list, defaulting to all.
func ParseEngines(s string) ([]string, error) {
	if s == "" || s == "all" {
		return EngineKinds, nil
	}
	kinds := strings.Split(s, ",")
	for _, k := range kinds {
		ok := false
		for _, known := range EngineKinds {
			if k == known {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("bench: unknown engine %q", k)
		}
	}
	return kinds, nil
}

// ParseInts parses a comma-separated integer list.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil {
			return nil, fmt.Errorf("bench: bad integer %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// Table is a simple aligned-column printer for benchmark output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
