package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// DataStructure adapts one of the paper's evaluation structures to the
// harness. Following §6.2: an update operation is two consecutive
// transactions (a removal then an insertion of the same random key, so the
// population is invariant) and a read operation is two read-only
// transactions, each looking up an existing random key.
type DataStructure interface {
	// Name is the label used in output ("list", "hash", "tree", "fixed").
	Name() string
	// Update performs one update operation (two transactions) on key.
	Update(h ptm.Handle, key uint64) error
	// Read performs one read operation (two transactions) on key.
	Read(h ptm.Handle, key uint64) error
}

// DSKinds lists the Figure 4 structures in presentation order.
var DSKinds = []string{"list", "hash", "tree"}

// NewDS creates and prefills a data structure of the given kind with keys
// 0..keys-1. Prefilling batches many insertions per transaction to keep
// setup time reasonable on the basic Rom engine.
func NewDS(e Engine, kind string, keys int, valSize int) (DataStructure, error) {
	switch kind {
	case "list":
		return newListDS(e, keys)
	case "hash":
		return newHashDS(e, keys)
	case "tree":
		return newTreeDS(e, keys)
	case "fixed":
		return newFixedDS(e, keys, 2048, valSize)
	}
	return nil, fmt.Errorf("bench: unknown data structure %q", kind)
}

// prefill inserts keys 0..n-1 in random order, batchSize keys per
// transaction.
func prefill(e Engine, n int, insert func(tx ptm.Tx, key uint64) error) error {
	perm := rand.New(rand.NewSource(42)).Perm(n)
	const batchSize = 512
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		if err := e.Update(func(tx ptm.Tx) error {
			for _, k := range perm[lo:hi] {
				if err := insert(tx, uint64(k)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return fmt.Errorf("bench: prefill: %w", err)
		}
	}
	return nil
}

type listDS struct {
	set *pstruct.LinkedListSet
}

func newListDS(e Engine, keys int) (*listDS, error) {
	d := &listDS{}
	if err := e.Update(func(tx ptm.Tx) error {
		set, err := pstruct.NewLinkedListSet(tx, 0)
		d.set = set
		return err
	}); err != nil {
		return nil, err
	}
	err := prefill(e, keys, func(tx ptm.Tx, k uint64) error {
		_, err := d.set.Add(tx, k)
		return err
	})
	return d, err
}

func (d *listDS) Name() string { return "list" }

func (d *listDS) Update(h ptm.Handle, key uint64) error {
	if err := h.Update(func(tx ptm.Tx) error {
		_, err := d.set.Remove(tx, key)
		return err
	}); err != nil {
		return err
	}
	return h.Update(func(tx ptm.Tx) error {
		_, err := d.set.Add(tx, key)
		return err
	})
}

func (d *listDS) Read(h ptm.Handle, key uint64) error {
	for i := 0; i < 2; i++ {
		if err := h.Read(func(tx ptm.Tx) error {
			d.set.Contains(tx, key)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

type hashDS struct {
	m *pstruct.HashMap
}

func newHashDS(e Engine, keys int) (*hashDS, error) {
	d := &hashDS{}
	if err := e.Update(func(tx ptm.Tx) error {
		m, err := pstruct.NewHashMap(tx, 0)
		d.m = m
		return err
	}); err != nil {
		return nil, err
	}
	err := prefill(e, keys, func(tx ptm.Tx, k uint64) error {
		_, err := d.m.Put(tx, k, k)
		return err
	})
	return d, err
}

func (d *hashDS) Name() string { return "hash" }

func (d *hashDS) Update(h ptm.Handle, key uint64) error {
	if err := h.Update(func(tx ptm.Tx) error {
		_, err := d.m.Remove(tx, key)
		return err
	}); err != nil {
		return err
	}
	return h.Update(func(tx ptm.Tx) error {
		_, err := d.m.Put(tx, key, key)
		return err
	})
}

func (d *hashDS) Read(h ptm.Handle, key uint64) error {
	for i := 0; i < 2; i++ {
		if err := h.Read(func(tx ptm.Tx) error {
			d.m.Contains(tx, key)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

type treeDS struct {
	t *pstruct.RBTree
}

func newTreeDS(e Engine, keys int) (*treeDS, error) {
	d := &treeDS{}
	if err := e.Update(func(tx ptm.Tx) error {
		t, err := pstruct.NewRBTree(tx, 0)
		d.t = t
		return err
	}); err != nil {
		return nil, err
	}
	err := prefill(e, keys, func(tx ptm.Tx, k uint64) error {
		_, err := d.t.Put(tx, k, k)
		return err
	})
	return d, err
}

func (d *treeDS) Name() string { return "tree" }

func (d *treeDS) Update(h ptm.Handle, key uint64) error {
	if err := h.Update(func(tx ptm.Tx) error {
		_, err := d.t.Remove(tx, key)
		return err
	}); err != nil {
		return err
	}
	return h.Update(func(tx ptm.Tx) error {
		_, err := d.t.Put(tx, key, key)
		return err
	})
}

func (d *treeDS) Read(h ptm.Handle, key uint64) error {
	for i := 0; i < 2; i++ {
		if err := h.Read(func(tx ptm.Tx) error {
			d.t.Contains(tx, key)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// fixedDS is the Figure 5 structure: a statically-dimensioned hash map
// with byte values of a fixed size.
type fixedDS struct {
	m       *pstruct.HashMapFixed
	valSize int
	val     []byte
}

func newFixedDS(e Engine, keys, buckets, valSize int) (*fixedDS, error) {
	d := &fixedDS{valSize: valSize, val: make([]byte, valSize)}
	for i := range d.val {
		d.val[i] = byte(i)
	}
	if err := e.Update(func(tx ptm.Tx) error {
		m, err := pstruct.NewHashMapFixed(tx, 0, buckets)
		d.m = m
		return err
	}); err != nil {
		return nil, err
	}
	err := prefill(e, keys, func(tx ptm.Tx, k uint64) error {
		_, err := d.m.Put(tx, k, d.val)
		return err
	})
	return d, err
}

func (d *fixedDS) Name() string { return "fixed" }

func (d *fixedDS) Update(h ptm.Handle, key uint64) error {
	if err := h.Update(func(tx ptm.Tx) error {
		_, err := d.m.Remove(tx, key)
		return err
	}); err != nil {
		return err
	}
	return h.Update(func(tx ptm.Tx) error {
		_, err := d.m.Put(tx, key, d.val)
		return err
	})
}

func (d *fixedDS) Read(h ptm.Handle, key uint64) error {
	var buf []byte
	for i := 0; i < 2; i++ {
		if err := h.Read(func(tx ptm.Tx) error {
			b, err := d.m.Get(tx, key, buf)
			if err == nil {
				buf = b
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// RegionFor estimates a generous per-copy region size for a structure of
// the given population and value size.
func RegionFor(keys, valSize int) int {
	perKey := 160 + 2*valSize // node chunk + bucket slots + slack
	size := keys*perKey + (8 << 20)
	return size
}
