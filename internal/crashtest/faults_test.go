package crashtest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// TestFaultCampaignAllEngines chains tear/rot/media rounds across every
// engine under the auditor. Any corrupt-and-served outcome, untyped error,
// or durability violation fails the campaign.
func TestFaultCampaignAllEngines(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	reg := obs.NewRegistry()
	reports, err := RunFaults(FaultConfig{Rounds: rounds, Seed: 20260808, Audit: true, Metrics: reg})
	if err != nil {
		t.Fatalf("fault campaign: %v", err)
	}
	if len(reports) != len(targets) {
		t.Fatalf("got %d reports, want %d", len(reports), len(targets))
	}
	for _, rep := range reports {
		if rep.Rounds != rounds {
			t.Errorf("%s: completed %d rounds, want %d", rep.Engine, rep.Rounds, rounds)
		}
		// Every round's rot trial ends in exactly one of the two acceptable
		// outcomes; anything else would have failed the campaign above.
		if rep.RotDetected+rep.RotBenign != rounds {
			t.Errorf("%s: rot outcomes %d detected + %d benign != %d rounds",
				rep.Engine, rep.RotDetected, rep.RotBenign, rounds)
		}
		// The media phase always trips faults (transient then sticky).
		if rep.MediaTrips == 0 {
			t.Errorf("%s: media phase tripped no faults (vacuous?)", rep.Engine)
		}
		if rep.AuditViolations != 0 {
			t.Errorf("%s: %d audit violations", rep.Engine, rep.AuditViolations)
		}
	}
	if v := reg.Counter("fault_rounds_total").Load(); v != uint64(rounds*len(targets)) {
		t.Errorf("fault_rounds_total = %d, want %d", v, rounds*len(targets))
	}
	if reg.Counter("fault_trip_total").Load() == 0 {
		t.Error("fault_trip_total not accumulated")
	}
}

// TestFaultCampaignReproducible pins determinism: same seed, same reports.
func TestFaultCampaignReproducible(t *testing.T) {
	cfg := FaultConfig{Rounds: 4, Seed: 7, Engines: []string{"romlog"}, Audit: true}
	a, err := RunFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a[0], b[0])
	}
}

// TestUnhardenedEngineServesRot is the campaign's non-vacuity fixture: a
// deliberately unhardened engine (core with the quiescent twin-copy verify
// disabled) opens an at-rest-corrupted image cleanly and serves the rotted
// value — exactly the corrupt-and-served outcome the exact-state check
// exists to catch — while the hardened open refuses the same image with
// ErrCorruptPayload.
func TestUnhardenedEngineServesRot(t *testing.T) {
	e, err := core.New(crashRegion, core.Config{Variant: core.Rom})
	if err != nil {
		t.Fatal(err)
	}
	st, err := newMapStore(e, coreVerify(e), true)
	if err != nil {
		t.Fatal(err)
	}
	const sentinel = 0x6B7C8D9EAFB0C1D2
	model := map[uint64]uint64{1: sentinel, 2: 42}
	if err := st.update([]op{{k: 1, v: sentinel}, {k: 2, v: 42}}); err != nil {
		t.Fatal(err)
	}
	st.dev().PersistAll()
	img := st.dev().Persisted()

	// Rot one bit of the sentinel value in the MAIN copy only (the first
	// occurrence; back holds the second). The value now disagrees with both
	// the model and the back twin.
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], sentinel)
	off := bytes.Index(img, sb[:])
	if off < 0 {
		t.Fatal("sentinel value not found in image")
	}
	img[off] ^= 0x01

	// Hardened open: the twin comparison refuses the image, typed.
	if _, err := core.Open(pmem.FromImage(img, pmem.ModelDRAM), core.Config{Variant: core.Rom}); !errors.Is(err, ptm.ErrCorruptPayload) {
		t.Fatalf("hardened open: err = %v, want ErrCorruptPayload", err)
	}

	// Unhardened open: serves the rot silently; the campaign's exact-state
	// validation is what flags it.
	e2, err := core.Open(pmem.FromImage(img, pmem.ModelDRAM), core.Config{Variant: core.Rom, DisableOpenVerify: true})
	if err != nil {
		t.Fatalf("unhardened open refused: %v", err)
	}
	st2, err := newMapStore(e2, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := st2.get(1)
	if err != nil || !found {
		t.Fatalf("get(1) = %v, %v", found, err)
	}
	if v == sentinel {
		t.Fatal("rot did not land in the sentinel value; fixture is vacuous")
	}
	if err := exactCheck(st2, model, 3); err == nil {
		t.Fatal("exactCheck passed on an engine serving rotted data; the campaign's detector is vacuous")
	}
}
