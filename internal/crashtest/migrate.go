// Mid-migration crash campaign: randomized crash chains against a sharded
// store WHILE an online shard split is in flight. Every round interleaves a
// single-threaded workload with the migration driver's bounded durable
// steps, crashes the whole process (all shard devices plus the coordinator
// log, captured consistently), and requires recovery to land on an exact
// committed prefix of the workload with exactly one owner per key — the
// placement journal's two arms (roll the copy back, roll the cutover
// forward) both get exercised or the campaign proves nothing.
package crashtest

import (
	"fmt"
	"math/rand"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/shard"
)

// MigrateConfig parameterizes the mid-migration campaign.
type MigrateConfig struct {
	// Rounds is the number of build/split/crash/recover cycles.
	Rounds int
	// Seed makes campaigns fully deterministic (single-threaded workload).
	Seed int64
	// Shards is the partition count BEFORE the split (default 2).
	Shards int
	// Keys bounds the keyspace (default 48).
	Keys int
	// OpsPerRound bounds completed workload operations interleaved with
	// migration steps before the crash (default 16).
	OpsPerRound int
	// BatchKeys bounds keys per migration batch (default 4 — small batches
	// put more durable phase transitions inside the crash window).
	BatchKeys int
	// ChainDepth is the maximum crashes per round (default 2): the first
	// lands in the workload or a migration step, later ones inside the
	// multi-device recovery itself.
	ChainDepth int
	// Metrics, when non-nil, accumulates pmem_* device totals and the
	// migrate_crash_* campaign counters.
	Metrics *obs.Registry
	// Audit chains a durability auditor on EVERY device for the workload
	// and every reopened image set. Violations fail the round.
	Audit bool
}

func (cfg *MigrateConfig) applyDefaults() {
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Keys == 0 {
		cfg.Keys = 48
	}
	if cfg.OpsPerRound == 0 {
		cfg.OpsPerRound = 16
	}
	if cfg.BatchKeys == 0 {
		cfg.BatchKeys = 4
	}
	if cfg.ChainDepth == 0 {
		cfg.ChainDepth = 2
	}
}

// MigrateReport summarizes a mid-migration crash campaign.
type MigrateReport struct {
	Rounds int `json:"rounds"`
	Shards int `json:"shards"`
	// MidOpCrashes counts rounds whose first crash interrupted live work
	// (the rest crashed at a quiescent point, post-workload).
	MidOpCrashes int `json:"mid_op_crashes"`
	// CopyCrashes / CleanupCrashes count captured images whose placement
	// journal was open in the copy phase (recovery must roll the partial
	// copy BACK) / past the cutover (recovery must roll the move FORWARD).
	// Both must be nonzero for the campaign to exercise both arms.
	CopyCrashes    int `json:"copy_crashes"`
	CleanupCrashes int `json:"cleanup_crashes"`
	// CompleteCrashes counts captures whose journal was already closed
	// (before Begin or after cleanup finished).
	CompleteCrashes int `json:"complete_crashes"`
	// ChainCrashes counts crashes beyond the first (inside recovery);
	// RecoveryCrashes counts those whose image set had recovery work
	// pending (a shard mid-transaction, an in-doubt coordinator record, or
	// an open placement journal).
	ChainCrashes    int `json:"chain_crashes"`
	RecoveryCrashes int `json:"recovery_crashes"`
	// RolledBack and CarriedForward count rounds whose recovered state
	// excluded/included the round's final completed operation.
	RolledBack      int    `json:"rolled_back"`
	CarriedForward  int    `json:"carried_forward"`
	AuditViolations uint64 `json:"audit_violations,omitempty"`
}

// RunMigrate executes the mid-migration campaign, returning the report and
// the first Failure (Engine "migrate") found.
func RunMigrate(cfg MigrateConfig) (MigrateReport, error) {
	cfg.applyDefaults()
	rep := MigrateReport{Shards: cfg.Shards}
	rng := rand.New(rand.NewSource(engineSeed(cfg.Seed, "migrate")))
	for round := 0; round < cfg.Rounds; round++ {
		roundSeed := rng.Int63()
		if err := runMigrateRound(cfg, round, roundSeed, &rep); err != nil {
			if f, ok := err.(*Failure); ok {
				f.Engine = "migrate"
				f.Round = round
				f.CampaignSeed = cfg.Seed
				f.RoundSeed = roundSeed
				f.Threads = 1
			}
			return rep, err
		}
		rep.Rounds++
	}
	if r := cfg.Metrics; r != nil {
		r.Counter("migrate_crash_rounds_total").Add(uint64(rep.Rounds))
		r.Counter("migrate_crash_copy_total").Add(uint64(rep.CopyCrashes))
		r.Counter("migrate_crash_cleanup_total").Add(uint64(rep.CleanupCrashes))
		r.Counter("migrate_crash_chain_total").Add(uint64(rep.ChainCrashes))
		r.Counter("migrate_crash_recovery_crash_total").Add(uint64(rep.RecoveryCrashes))
	}
	return rep, nil
}

func migrateOpts(cfg MigrateConfig) shard.Options {
	return shard.Options{
		Shards:     cfg.Shards,
		RegionSize: 256 << 10,
		CoordSize:  32 << 10,
		Variant:    core.RomLog,
	}
}

// migratePending reports whether an image set needs real recovery work:
// any shard mid-transaction, an in-doubt coordinator record, or an open
// placement journal (a split to resolve one way or the other).
func migratePending(imgs [][]byte) bool {
	coord := imgs[len(imgs)-1]
	return xshardPending(imgs) || shard.PlacementRecoveryPending(coord)
}

func runMigrateRound(cfg MigrateConfig, round int, roundSeed int64, rep *MigrateReport) error {
	rrng := rand.New(rand.NewSource(roundSeed))
	st, err := shard.Open(migrateOpts(cfg))
	if err != nil {
		return fmt.Errorf("building fresh sharded store: %w", err)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("m%03d", i)) }

	// Preload ~half the keyspace so the split has something to move, then
	// provision the destination shard BEFORE arming the capture — its device
	// must be inside the consistent multi-device snapshot.
	state := map[int]uint64{}
	for k := 0; k < cfg.Keys; k += 2 {
		v := rrng.Uint64()
		if err := st.Put(key(k), []byte(fmt.Sprintf("%d", v))); err != nil {
			return fmt.Errorf("round %d preload: %w", round, err)
		}
		state[k] = v
	}
	src := rrng.Intn(cfg.Shards)
	dst, err := st.AddShard()
	if err != nil {
		return fmt.Errorf("round %d provisioning shard: %w", round, err)
	}

	var roundAuds []*audit.Auditor
	devs := st.Devices()
	ms := pmem.NewMultiScheduler(devs...)
	ms.SetBudget(cfg.ChainDepth)
	pauds, auds := xshardAttach(devs, ms, cfg.Audit)
	if pauds != nil {
		st.SetAuditors(pauds)
		roundAuds = append(roundAuds, auds...)
	}
	policy := randPolicy(rrng)
	// A migration step is a durable batch (tens of events); with the default
	// geometry a full round runs ~750–1150 events, reaching the cutover near
	// a third of the way in. The random budget spans slightly past one full
	// round so first crashes spread across copy, cutover, cleanup, and (on
	// overshooting rounds) post-migration quiescence.
	ms.Arm(uint64(1+rrng.Intn(cfg.OpsPerRound*32+cfg.Keys*14)), policy)

	drv := migrate.New(st, migrate.Options{BatchKeys: cfg.BatchKeys})
	if _, err := drv.Begin(src, dst); err != nil {
		return fmt.Errorf("round %d migration begin: %w", round, err)
	}

	// Interleave: one workload op, one migration step, until both budgets
	// run out. states[i] is the keyspace after the i-th completed op;
	// mustSurvive is the latest state known committed before the crash.
	states := []map[int]uint64{cloneState(state)}
	mustSurvive := 0
	migDone := false
	for i := 0; i < cfg.OpsPerRound || !migDone; i++ {
		if i < cfg.OpsPerRound {
			next := cloneState(state)
			k := rrng.Intn(cfg.Keys)
			if rrng.Intn(4) == 0 {
				if err := st.Delete(key(k)); err != nil {
					return fmt.Errorf("round %d op %d (del): %w", round, i, err)
				}
				delete(next, k)
			} else {
				v := rrng.Uint64()
				if err := st.Put(key(k), []byte(fmt.Sprintf("%d", v))); err != nil {
					return fmt.Errorf("round %d op %d (put): %w", round, i, err)
				}
				next[k] = v
			}
			state = next
			states = append(states, next)
			if !ms.Captured() {
				mustSurvive = i + 1
			}
		}
		if !migDone {
			done, err := drv.Step()
			if err != nil {
				return fmt.Errorf("round %d migration step: %w", round, err)
			}
			migDone = done
		}
	}

	imgs, ev := ms.Images()
	if imgs != nil {
		rep.MidOpCrashes++
	} else {
		imgs = ms.CaptureNow(policy)
		ev = ms.Events()
	}
	ms.Detach()
	for _, d := range devs {
		accumDevice(cfg.Metrics, d)
	}
	switch shard.InspectCoordImage(imgs[len(imgs)-1]).PlacementJournalPhase() {
	case migrate.PhaseCopy:
		rep.CopyCrashes++
	case migrate.PhaseCleanup:
		rep.CleanupCrashes++
	default:
		rep.CompleteCrashes++
	}
	chain := []CrashPoint{{Event: ev}}

	// Crash chain: reopen each image set under a freshly armed
	// multi-scheduler; a crash during Reopen (shard recoveries, in-doubt
	// coordinator resolution, AND the placement journal's rollback or
	// roll-forward) yields the next link.
	var final *shard.Store
	for {
		rdevs := make([]*pmem.Device, len(imgs))
		for i, img := range imgs {
			rdevs[i] = pmem.FromImage(img, pmem.ModelDRAM)
		}
		pending := migratePending(imgs)
		ms2 := pmem.NewMultiScheduler(rdevs...)
		ms2.SetBudget(1)
		if len(chain) < cfg.ChainDepth {
			ms2.Arm(uint64(1+rrng.Intn(192)), randPolicy(rrng))
		}
		ropts := migrateOpts(cfg)
		pauds2, auds2 := xshardAttach(rdevs, ms2, cfg.Audit)
		ropts.Auditors = pauds2
		roundAuds = append(roundAuds, auds2...)
		st2, err := shard.Reopen(rdevs, ropts)
		if ms2.Captured() {
			imgs2, ev2 := ms2.Images()
			ms2.Detach()
			for _, d := range rdevs {
				accumDevice(cfg.Metrics, d)
			}
			rep.ChainCrashes++
			if pending {
				rep.RecoveryCrashes++
			}
			chain = append(chain, CrashPoint{Event: ev2, DuringOpen: true, RecoveryPending: pending})
			imgs = imgs2
			continue
		}
		ms2.Detach()
		if err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("reopen failed: %v", err)}
		}
		for _, a := range auds2 {
			a.Attach()
		}
		final = st2
		break
	}

	// Validate: recovery must have resolved the journal (no migration may
	// be left open), landed on an exact committed prefix, and left every
	// key with exactly one owner.
	if final.Placement().Migration != nil {
		return &Failure{Chain: chain, Reason: "recovered store still has an open migration journal"}
	}
	matched := -1
	for k := len(states) - 1; k >= mustSurvive; k-- {
		if xshardStateMatches(final, states[k], cfg.Keys, key) {
			matched = k
			break
		}
	}
	if matched < 0 {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"recovered state matches no committed prefix in [%d,%d]", mustSurvive, len(states)-1)}
	}
	if n := final.Len(); n != len(states[matched]) {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"recovered store has %d pairs, matched prefix implies %d (duplicate or orphaned owner)",
			n, len(states[matched]))}
	}
	if reason := migrateOwnership(final); reason != "" {
		return &Failure{Chain: chain, Reason: reason}
	}
	if matched < len(states)-1 {
		rep.RolledBack++
	} else {
		rep.CarriedForward++
	}

	// The recovered store must keep working — including a full re-split,
	// whichever way the crashed one resolved.
	if err := final.Put(key(0), []byte("probe")); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("recovered store unusable: %v", err)}
	}
	drv2 := migrate.New(final, migrate.Options{BatchKeys: cfg.BatchKeys})
	resrc := 0
	for sh := 0; sh < final.NumShards(); sh++ {
		if len(final.OwnedSlots(sh)) > len(final.OwnedSlots(resrc)) {
			resrc = sh
		}
	}
	if _, err := drv2.Split(resrc); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("post-recovery split failed: %v", err)}
	}
	if reason := migrateOwnership(final); reason != "" {
		return &Failure{Chain: chain, Reason: "after post-recovery split: " + reason}
	}

	// Audit rounds: close is the final durability claim, then any violation
	// across the round's auditors fails it.
	if cfg.Audit {
		if err := final.Close(); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("close after recovery: %v", err)}
		}
		for _, d := range final.Devices() {
			accumDevice(cfg.Metrics, d)
		}
		var total uint64
		var first *audit.Violation
		for _, a := range roundAuds {
			total += a.ViolationCount()
			if first == nil {
				if vs := a.Violations(); len(vs) > 0 {
					first = &vs[0]
				}
			}
		}
		if total > 0 {
			rep.AuditViolations += total
			reason := fmt.Sprintf("auditor: %d durability violation(s)", total)
			if first != nil {
				reason += fmt.Sprintf("; first: [%s] at %s: line %d off %d state=%s seq=%d engine=%s tx=%s site=%s",
					first.Kind, first.Point, first.Line, first.Off, first.State, first.Seq,
					first.Engine, first.TxKind, first.Site)
			}
			return &Failure{Chain: chain, Reason: reason}
		}
	}
	return nil
}

func cloneState(m map[int]uint64) map[int]uint64 {
	out := make(map[int]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// migrateOwnership scans every shard asserting each stored key lives on
// exactly the shard the placement routes it to — the single-owner
// invariant the migration journal exists to preserve. Returns "" when it
// holds, a failure reason otherwise.
func migrateOwnership(st *shard.Store) string {
	type loc struct{ shard, count int }
	seen := map[string]loc{}
	var pairs []struct {
		key string
		sh  int
	}
	for sh := 0; sh < st.NumShards(); sh++ {
		var keys []string
		err := st.View(sh, func(tx ptm.Tx, db *kvstore.DB) error {
			keys = keys[:0] // engine reads may retry fn
			db.RangeTx(tx, false, func(k, v []byte) bool {
				keys = append(keys, string(k))
				return true
			})
			return nil
		})
		if err != nil {
			return fmt.Sprintf("ownership scan of shard %d: %v", sh, err)
		}
		for _, k := range keys {
			l := seen[k]
			l.count++
			l.shard = sh
			seen[k] = l
			pairs = append(pairs, struct {
				key string
				sh  int
			}{k, sh})
		}
	}
	for k, l := range seen {
		if l.count > 1 {
			return fmt.Sprintf("key %q has %d owners", k, l.count)
		}
	}
	for _, p := range pairs {
		if want := st.ShardFor([]byte(p.key)); want != p.sh {
			return fmt.Sprintf("key %q stored on shard %d but routes to %d", p.key, p.sh, want)
		}
	}
	return ""
}
