package crashtest

import "testing"

func TestCampaignSmall(t *testing.T) {
	rep, err := Run(Config{Rounds: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 25 {
		t.Errorf("rounds = %d", rep.Rounds)
	}
	if rep.RolledBack+rep.CarriedForward != 25 {
		t.Errorf("outcomes do not add up: %+v", rep)
	}
	t.Logf("report: %+v", rep)
}

func TestCampaignHitsBothOutcomes(t *testing.T) {
	// Across enough seeds, both recovery outcomes (rollback and carry
	// forward) must occur — otherwise the harness is not actually crashing
	// mid-transaction.
	var total Report
	for seed := int64(0); seed < 8; seed++ {
		rep, err := Run(Config{Rounds: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		total.RolledBack += rep.RolledBack
		total.CarriedForward += rep.CarriedForward
		total.CrashedMidTx += rep.CrashedMidTx
	}
	if total.RolledBack == 0 {
		t.Error("no crash ever rolled back — adversary too weak")
	}
	if total.CarriedForward == 0 {
		t.Error("no crash ever carried forward")
	}
	if total.CrashedMidTx == 0 {
		t.Error("no crash landed mid-transaction")
	}
	t.Logf("total: %+v", total)
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := Run(Config{Rounds: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Rounds: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different reports: %+v vs %+v", a, b)
	}
}
