package crashtest

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/obs"
)

func TestCampaignSmall(t *testing.T) {
	reports, err := Run(Config{Rounds: 6, Seed: 1, ChainDepth: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(EngineNames()) {
		t.Fatalf("got %d reports, want %d", len(reports), len(EngineNames()))
	}
	for _, r := range reports {
		if r.Rounds != 6 {
			t.Errorf("%s: %d rounds completed, want 6", r.Engine, r.Rounds)
		}
	}
}

// A campaign is a pure function of its seed when single-threaded.
func TestCampaignDeterministic(t *testing.T) {
	cfg := Config{Rounds: 20, Seed: 42, Threads: 1, ChainDepth: 3, Engines: []string{"rom", "undolog"}}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

// A long-enough chain campaign must observe every interesting outcome:
// crashes inside the workload, crashes inside recovery of an image with
// pending work, and both rollback and carry-forward of workers' final
// transactions.
func TestCampaignHitsAllOutcomes(t *testing.T) {
	reports, err := Run(Config{Rounds: 60, Seed: 7, ChainDepth: 3, Threads: 2,
		Engines: []string{"romlog"}})
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	if r.MidTxCrashes == 0 {
		t.Error("no crash landed inside the workload")
	}
	if r.MidTxCrashes == r.Rounds {
		t.Error("no crash landed at a quiescent point")
	}
	if r.ChainCrashes == 0 {
		t.Error("no crash landed during reopen")
	}
	if r.RecoveryCrashes == 0 {
		t.Error("no crash landed inside pending recovery work")
	}
	if r.RolledBack == 0 || r.CarriedForward == 0 {
		t.Errorf("want both outcomes, got RolledBack=%d CarriedForward=%d",
			r.RolledBack, r.CarriedForward)
	}
	t.Logf("report: %+v", r)
}

// The concurrent workload path (multiple worker goroutines sharing one
// engine while the harness polls the scheduler) must be race-clean; this
// test exists mainly to run under -race.
func TestCampaignConcurrentWorkload(t *testing.T) {
	reports, err := Run(Config{Rounds: 8, Seed: 3, Threads: 4, ChainDepth: 2,
		Engines: []string{"romlr", "kvstore"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Threads != 4 {
			t.Errorf("%s ran with %d threads, want 4", r.Engine, r.Threads)
		}
	}
}

// The redo-log STM commits from worker goroutines directly, which the
// simulated device's data path does not allow; the campaign must force it
// single-threaded.
func TestCampaignRedologSingleThreaded(t *testing.T) {
	reports, err := Run(Config{Rounds: 4, Seed: 9, Threads: 4, Engines: []string{"redolog"}})
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Threads != 1 {
		t.Errorf("redolog ran with %d threads, want 1", reports[0].Threads)
	}
}

func TestUnknownEngine(t *testing.T) {
	_, err := Run(Config{Rounds: 1, Engines: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("err = %v, want unknown-engine error", err)
	}
}

// TestCampaignAudited runs every engine with the durability auditor chained
// in front of the crash scheduler. All engines implement the paper's fence
// protocols, so no round may surface a violation, and the commit markers
// every engine advances must register as durable checks.
func TestCampaignAudited(t *testing.T) {
	reg := obs.NewRegistry()
	reports, err := Run(Config{Rounds: 4, Seed: 5, Threads: 2, ChainDepth: 2,
		Engines: []string{"all"}, Audit: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.AuditViolations != 0 {
			t.Errorf("%s: %d audit violations, want 0", r.Engine, r.AuditViolations)
		}
	}
	if n := reg.Counter("audit_durable_check_total").Load(); n == 0 {
		t.Error("audit_durable_check_total = 0, want > 0 (commit markers were advanced)")
	}
	if n := reg.Counter("audit_violation_total").Load(); n != 0 {
		t.Errorf("audit_violation_total = %d, want 0", n)
	}
}

// Auditing must not perturb the campaign's crash decisions: the same seed
// with and without -audit must produce identical crash chains and recovery
// outcomes (the auditor only observes; persistence-event numbering is
// unchanged).
func TestCampaignAuditPreservesOutcomes(t *testing.T) {
	base, err := Run(Config{Rounds: 6, Seed: 11, Threads: 1, ChainDepth: 2, Engines: []string{"romlog"}})
	if err != nil {
		t.Fatal(err)
	}
	audited, err := Run(Config{Rounds: 6, Seed: 11, Threads: 1, ChainDepth: 2,
		Engines: []string{"romlog"}, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := base[0], audited[0]
	a.AuditViolations, a.AuditWaste = 0, audit.Waste{}
	b.AuditViolations, b.AuditWaste = 0, audit.Waste{}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("audited campaign diverged:\nbase:    %+v\naudited: %+v", a, b)
	}
}
