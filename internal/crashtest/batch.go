package crashtest

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// This file is the combined-commit crash campaign: it aims simulated power
// failures at the flat combiner's batched durability rounds and checks the
// property the batching design owes its users — a combined batch is
// crash-atomic. Every operation UpdateBatched reports under one batch
// sequence number became durable together or not at all, and durability
// respects batch commit order (the recovered state is a prefix of the
// sequence of committed rounds, never a subset with holes).
//
// Each worker owns one 8-byte slot of a shared persistent array and writes
// an increasing counter into it, one batched update per increment, recording
// the batch sequence number of every commit. After the crash (and a chained
// reopen that may crash again inside recovery), the recovered slot values
// reveal exactly which operations survived; the recorded sequence numbers
// then let the harness assert that no batch was split and no later round
// survived an earlier round's loss.

// BatchConfig parameterizes a combined-batch crash campaign.
type BatchConfig struct {
	// Rounds is the number of build/crash/recover cycles per variant.
	Rounds int
	// Seed makes campaigns reproducible (fully deterministic at Threads 1).
	Seed int64
	// Threads is the number of concurrent writer goroutines (default 4).
	Threads int
	// OpsPerWorker bounds batched updates per worker before the crash
	// (default 16).
	OpsPerWorker int
	// ChainDepth is the maximum crashes per round (default 1): the first
	// lands in the workload, later ones inside recovery itself.
	ChainDepth int
	// Engines selects core variants by name (rom, romlog, romlr); empty or
	// "all" means all three.
	Engines []string
	// Audit chains the durability auditor in front of the crash scheduler on
	// every device of the campaign; violations fail the round.
	Audit bool
}

func (cfg *BatchConfig) applyDefaults() {
	if cfg.Threads == 0 {
		cfg.Threads = 4
	}
	if cfg.OpsPerWorker == 0 {
		cfg.OpsPerWorker = 16
	}
	if cfg.ChainDepth == 0 {
		cfg.ChainDepth = 1
	}
}

// BatchReport summarizes one variant's combined-batch campaign.
type BatchReport struct {
	Engine  string `json:"engine"`
	Rounds  int    `json:"rounds"`
	Threads int    `json:"threads"`
	// MidBatchCrashes counts rounds whose crash interrupted the workload
	// (the rest crashed post-workload, at a quiescent point).
	MidBatchCrashes int `json:"mid_batch_crashes"`
	// MultiOpRounds counts rounds whose workload committed at least one
	// durability round carrying more than one operation — the situations the
	// all-or-nothing assertion is about.
	MultiOpRounds int `json:"multi_op_rounds"`
	// ChainCrashes counts crashes injected while reopening a crash image;
	// RecoveryCrashes the subset that interrupted real recovery work.
	ChainCrashes    int `json:"chain_crashes"`
	RecoveryCrashes int `json:"recovery_crashes"`
	// OpsSurvived and OpsLost count workload operations across all rounds by
	// whether recovery exposed their effect.
	OpsSurvived int `json:"ops_survived"`
	OpsLost     int `json:"ops_lost"`
	// AuditViolations counts durability violations (Audit campaigns only;
	// any nonzero count also fails the offending round).
	AuditViolations uint64 `json:"audit_violations,omitempty"`
}

// batchVariants maps engine names to core variants.
var batchVariants = []struct {
	name string
	v    core.Variant
}{
	{"rom", core.Rom},
	{"romlog", core.RomLog},
	{"romlr", core.RomLR},
}

// BatchEngineNames lists the variants the combined-batch campaign drives.
func BatchEngineNames() []string {
	names := make([]string, len(batchVariants))
	for i, bv := range batchVariants {
		names[i] = bv.name
	}
	return names
}

// RunBatch executes one combined-batch campaign per selected variant,
// returning per-variant reports and the first Failure found (nil when every
// round validates).
func RunBatch(cfg BatchConfig) ([]BatchReport, error) {
	cfg.applyDefaults()
	selected := map[string]bool{}
	all := len(cfg.Engines) == 0
	for _, n := range cfg.Engines {
		if n == "all" {
			all = true
		}
		selected[n] = true
	}
	var reports []BatchReport
	for _, bv := range batchVariants {
		if !all && !selected[bv.name] {
			continue
		}
		rep := BatchReport{Engine: bv.name, Threads: cfg.Threads}
		rng := rand.New(rand.NewSource(engineSeed(cfg.Seed, "batch-"+bv.name)))
		for round := 0; round < cfg.Rounds; round++ {
			roundSeed := rng.Int63()
			if err := batchRound(cfg, bv.v, round, roundSeed, &rep); err != nil {
				if f, ok := err.(*Failure); ok {
					f.Engine = bv.name
					f.Round = round
					f.CampaignSeed = cfg.Seed
					f.RoundSeed = roundSeed
					f.Threads = cfg.Threads
				}
				return append(reports, rep), err
			}
			rep.Rounds++
		}
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("crashtest: no batch variant matches %v (known: %v)",
			cfg.Engines, BatchEngineNames())
	}
	return reports, nil
}

// batchWorker records one worker's committed operations. Operation i
// (1-based) stores the value i into the worker's slot, so the recovered slot
// value equals the worker's surviving operation count.
type batchWorker struct {
	seqs        []uint64 // seqs[i-1] is the batch round that committed op i
	mustSurvive int      // ops known durable strictly before the crash fired
	err         error
}

func batchRound(cfg BatchConfig, v core.Variant, round int, roundSeed int64, rep *BatchReport) error {
	rrng := rand.New(rand.NewSource(roundSeed))
	e, err := core.New(crashRegion, core.Config{Variant: v})
	if err != nil {
		return fmt.Errorf("building fresh %s engine: %w", v, err)
	}

	// Setup: one committed transaction creating the slot array, so every
	// captured image reopens through recovery, never format.
	var slots ptm.Ptr
	err = e.Update(func(tx ptm.Tx) error {
		p, err := tx.Alloc(8 * cfg.Threads)
		if err != nil {
			return err
		}
		tx.SetRoot(0, p)
		slots = p
		return nil
	})
	if err != nil {
		return fmt.Errorf("%s setup: %w", v, err)
	}

	ra := &roundAudit{enabled: cfg.Audit}
	sched := pmem.NewScheduler(e.Device())
	sched.SetBudget(cfg.ChainDepth)
	aud, trig := ra.attach(e.Device(), sched)
	if aud != nil {
		e.SetAuditor(aud)
	}
	policy := randPolicy(rrng)
	// Batched commits amortize persistence events across ops, so the event
	// budget per op is lower than the map campaign's; the range still
	// overshoots so some rounds crash post-workload.
	crashAt := uint64(1 + rrng.Intn(cfg.Threads*cfg.OpsPerWorker*12+32))
	sched.Arm(crashAt, policy)

	base := e.Stats()
	workers := make([]*batchWorker, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		w := w
		bw := &batchWorker{}
		workers[w] = bw
		wrng := rand.New(rand.NewSource(roundSeed ^ int64(uint64(w+1)*0x9E3779B97F4A7C15)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := e.NewHandle()
			if err != nil {
				bw.err = err
				return
			}
			defer h.Release()
			bh := h.(interface {
				UpdateBatched(func(ptm.Tx) error) (uint64, error)
			})
			nOps := 1 + wrng.Intn(cfg.OpsPerWorker)
			slot := slots + ptm.Ptr(8*w)
			for i := 1; i <= nOps; i++ {
				val := uint64(i)
				seq, err := bh.UpdateBatched(func(tx ptm.Tx) error {
					tx.Store64(slot, val)
					return nil
				})
				if err != nil {
					bw.err = fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
				if seq == 0 {
					bw.err = fmt.Errorf("worker %d op %d: committed with batch seq 0", w, i)
					return
				}
				bw.seqs = append(bw.seqs, seq)
				if !sched.Captured() {
					bw.mustSurvive = i
				}
			}
		}()
	}
	wg.Wait()
	for _, bw := range workers {
		if bw.err != nil {
			return fmt.Errorf("%s batch workload: %w", v, bw.err)
		}
	}
	if st := e.Stats(); st.BatchOps-base.BatchOps > st.Batches-base.Batches {
		rep.MultiOpRounds++
	}

	img, ev := sched.Image()
	if img != nil {
		rep.MidBatchCrashes++
	} else {
		img = sched.CaptureNow(policy)
		ev = sched.Events()
	}
	trig.finish(img)
	sched.Detach()
	chain := []CrashPoint{{Event: ev}}

	// Crash chain: reopen each image under a freshly armed scheduler; a
	// crash during Open makes the partially recovered image the next link.
	var final *core.Engine
	for {
		dev := pmem.FromImage(img, pmem.ModelDRAM)
		pending := core.RecoveryPending(img)
		s2 := pmem.NewScheduler(dev)
		s2.SetBudget(1)
		if len(chain) < cfg.ChainDepth {
			s2.Arm(uint64(1+rrng.Intn(64)), randPolicy(rrng))
		}
		a2, trig2 := ra.attach(dev, s2)
		var audArg ptm.Auditor
		if a2 != nil {
			audArg = a2
		}
		e2, err := core.Open(dev, core.Config{Variant: v, Audit: audArg})
		if s2.Captured() {
			img2, ev2 := s2.Image()
			trig2.finish(img2)
			s2.Detach()
			rep.ChainCrashes++
			if pending {
				rep.RecoveryCrashes++
			}
			chain = append(chain, CrashPoint{Event: ev2, DuringOpen: true, RecoveryPending: pending})
			img = img2
			continue
		}
		s2.Detach()
		if err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("reopen failed: %v", err)}
		}
		if a2 != nil {
			dev.SetHooks(a2.Hooks())
		}
		final = e2
		break
	}

	// Validate: engine invariants, then per-worker prefixes, then batch
	// atomicity across workers.
	if err := final.CheckHeap(); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("heap after recovery: %v", err)}
	}
	if off := final.Verify(); off >= 0 {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("twin copies diverge at offset %d", off)}
	}
	recovered := make([]uint64, cfg.Threads)
	err = final.Read(func(tx ptm.Tx) error {
		p := tx.Root(0)
		for w := range recovered {
			recovered[w] = tx.Load64(p + ptm.Ptr(8*w))
		}
		return nil
	})
	if err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("reading recovered slots: %v", err)}
	}
	var survivedMax uint64
	lostMin := ^uint64(0)
	for w, bw := range workers {
		r := int(recovered[w])
		if r < bw.mustSurvive || r > len(bw.seqs) {
			return &Failure{Chain: chain, Reason: fmt.Sprintf(
				"worker %d: recovered count %d outside committed range [%d,%d]",
				w, r, bw.mustSurvive, len(bw.seqs))}
		}
		rep.OpsSurvived += r
		rep.OpsLost += len(bw.seqs) - r
		for i, seq := range bw.seqs {
			if i < r {
				if seq > survivedMax {
					survivedMax = seq
				}
			} else if seq < lostMin {
				lostMin = seq
			}
		}
	}
	// All-or-nothing per batch, and durability in batch commit order: every
	// surviving operation's round must precede every lost operation's round.
	// A split batch (one op durable, a same-seq op lost) or a gap (later
	// round durable, earlier round lost) both violate this.
	if survivedMax >= lostMin {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"batch atomicity violated: round %d (or earlier) lost while round %d survived",
			lostMin, survivedMax)}
	}

	// The recovered engine must keep working.
	probe := uint64(round + 1)
	err = final.Update(func(tx ptm.Tx) error {
		tx.Store64(tx.Root(0), probe)
		return nil
	})
	if err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("recovered engine unusable: %v", err)}
	}
	var got uint64
	err = final.Read(func(tx ptm.Tx) error {
		got = tx.Load64(tx.Root(0))
		return nil
	})
	if err != nil || got != probe {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"post-recovery write not readable: got %d want %d err=%v", got, probe, err)}
	}

	if cfg.Audit {
		if err := final.Close(); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("close after recovery: %v", err)}
		}
		if n, viol := ra.violations(); n > 0 {
			rep.AuditViolations += n
			reason := fmt.Sprintf("auditor: %d durability violation(s)", n)
			if viol != nil {
				reason += fmt.Sprintf("; first: [%s] at %s: line %d off %d state=%s seq=%d engine=%s tx=%s site=%s",
					viol.Kind, viol.Point, viol.Line, viol.Off, viol.State, viol.Seq, viol.Engine, viol.TxKind, viol.Site)
			}
			return &Failure{Chain: chain, Reason: reason}
		}
	}
	return nil
}
