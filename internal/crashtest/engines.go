package crashtest

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
	"repro/internal/redolog"
	"repro/internal/undolog"
)

// Per-engine sizing, deliberately small: tight regions make crashes land in
// interesting places (mid-resize, mid-replication) and keep rounds fast.
const (
	crashRegion = 1 << 17
	undoLogSize = 1 << 16
	redoSegSize = 1 << 15
	redoSegs    = 4
)

// op is one key-value operation of a workload transaction.
type op struct {
	del  bool
	k, v uint64
}

// store is what a round drives and validates: a persistent uint64→uint64
// map plus the device underneath it.
type store interface {
	dev() *pmem.Device
	// setTrace attaches a per-transaction trace sink to the underlying
	// engine (nil removes it). Called only at quiescent points.
	setTrace(s obs.Sink)
	// setAudit attaches a durability auditor to the underlying engine (nil
	// removes it). Called only at quiescent points.
	setAudit(a ptm.Auditor)
	// update applies ops as ONE durable transaction.
	update(ops []op) error
	get(k uint64) (uint64, bool, error)
	size() (int, error)
	// probe reads the raw 8-byte word at user heap offset p through a read
	// transaction; the media-fault campaign uses it to exercise the load
	// path at a controlled address without following any pointers.
	probe(p uint64) (uint64, error)
	// probeUpdate runs an update transaction whose only work is loading p,
	// exercising the update path's refusal to commit over a media fault.
	probeUpdate(p uint64) error
	// dataOffsets returns the device offsets of user heap address 0 for
	// every copy the engine's transactions may read.
	dataOffsets() []int
	// check validates engine invariants after recovery (heap, twin copies).
	check() error
	// close shuts the engine down (the final durability claim the auditor
	// verifies).
	close() error
}

// target is a crash-test subject: a way to build a fresh store, reopen one
// from a crash image, and inspect images for pending recovery work.
type target struct {
	name string
	// concurrent reports whether multiple goroutines may call update
	// simultaneously. The redo-log STM commits from the calling goroutine
	// with only word-stripe locking, which the simulated device's
	// single-mutator data path does not support, so it runs single-threaded.
	concurrent bool
	fresh      func() (store, error)
	// reopen attaches to a crash image. The auditor (nil when auditing is
	// off) is handed to the engine's Open so recovery runs fully audited.
	reopen func(dev *pmem.Device, aud ptm.Auditor) (store, error)
	// pending reports whether reopening this image performs real recovery
	// work (in-flight transaction state, non-empty logs).
	pending func(img []byte) bool
	// rotable returns the byte ranges of a quiescent image where at-rest
	// bit rot is DETECTABLE and the fault campaign may inject it. Nil means
	// the whole image (the twin-copy engines: header by checksum, payload
	// by twin comparison). The single-copy log engines confine rot to the
	// header and log — rot in their lone data payload has no redundancy to
	// check against and would be served, which is a documented limitation
	// of those designs, not a harness bug to provoke.
	rotable func(imgLen int) [][2]int
}

// EngineNames lists all crash-test subjects in campaign order.
func EngineNames() []string {
	names := make([]string, len(targets))
	for i, t := range targets {
		names[i] = t.name
	}
	return names
}

var targets = []target{
	coreTarget("rom", core.Rom),
	coreTarget("romlog", core.RomLog),
	coreTarget("romlr", core.RomLR),
	{
		name:       "undolog",
		concurrent: true, // global writer lock serializes mutators
		fresh: func() (store, error) {
			e, err := undolog.New(crashRegion, undolog.Config{LogSize: undoLogSize})
			if err != nil {
				return nil, err
			}
			return newMapStore(e, nil, true)
		},
		reopen: func(dev *pmem.Device, aud ptm.Auditor) (store, error) {
			e, err := undolog.Open(dev, undolog.Config{LogSize: undoLogSize, Audit: aud})
			if err != nil {
				return nil, err
			}
			return newMapStore(e, nil, false)
		},
		pending: undolog.RecoveryPending,
		rotable: func(imgLen int) [][2]int {
			// Header (first 256 bytes) plus the undo log at the tail; the
			// single data copy in between is uncheckable.
			return [][2]int{{0, 256}, {imgLen - undoLogSize, imgLen}}
		},
	},
	{
		name:       "redolog",
		concurrent: false,
		fresh: func() (store, error) {
			e, err := redolog.New(crashRegion, redolog.Config{SegmentSize: redoSegSize, Segments: redoSegs})
			if err != nil {
				return nil, err
			}
			return newMapStore(e, nil, true)
		},
		reopen: func(dev *pmem.Device, aud ptm.Auditor) (store, error) {
			e, err := redolog.Open(dev, redolog.Config{SegmentSize: redoSegSize, Segments: redoSegs, Audit: aud})
			if err != nil {
				return nil, err
			}
			return newMapStore(e, nil, false)
		},
		pending: func(img []byte) bool {
			return redolog.RecoveryPending(img, redolog.Config{SegmentSize: redoSegSize, Segments: redoSegs})
		},
		rotable: func(imgLen int) [][2]int {
			// Header plus the redo-log segments at the tail; the single
			// data copy in between is uncheckable.
			return [][2]int{{0, 256}, {imgLen - redoSegs*redoSegSize, imgLen}}
		},
	},
	{
		name:       "kvstore",
		concurrent: true,
		fresh: func() (store, error) {
			db, err := kvstore.Open(kvstore.Options{RegionSize: crashRegion, Variant: core.RomLog})
			if err != nil {
				return nil, err
			}
			return &kvStore{db: db}, nil
		},
		reopen: func(dev *pmem.Device, aud ptm.Auditor) (store, error) {
			e, err := core.Open(dev, core.Config{Variant: core.RomLog, Audit: aud})
			if err != nil {
				return nil, err
			}
			return &kvStore{db: kvstore.Attach(e)}, nil
		},
		pending: core.RecoveryPending,
	},
}

func coreTarget(name string, v core.Variant) target {
	return target{
		name:       name,
		concurrent: true, // flat combining: one combiner mutates at a time
		fresh: func() (store, error) {
			e, err := core.New(crashRegion, core.Config{Variant: v})
			if err != nil {
				return nil, err
			}
			return newMapStore(e, coreVerify(e), true)
		},
		reopen: func(dev *pmem.Device, aud ptm.Auditor) (store, error) {
			e, err := core.Open(dev, core.Config{Variant: v, Audit: aud})
			if err != nil {
				return nil, err
			}
			return newMapStore(e, coreVerify(e), false)
		},
		pending: core.RecoveryPending,
	}
}

func coreVerify(e *core.Engine) func() error {
	return func() error {
		if off := e.Verify(); off >= 0 {
			return fmt.Errorf("twin copies diverge at offset %d", off)
		}
		return nil
	}
}

// mapEngine is the slice of ptm.PTM the harness needs; all three engine
// packages satisfy it.
type mapEngine interface {
	Update(func(ptm.Tx) error) error
	Read(func(ptm.Tx) error) error
	Device() *pmem.Device
	DataOffsets() []int
	CheckHeap() error
	SetTrace(obs.Sink)
	SetAuditor(ptm.Auditor)
	Close() error
}

// probeLoad and probeStoreFree implement the media-fault probes over any
// ptm engine: a transaction whose only persistent access is one Load64 at a
// controlled offset, so a marked line is exercised without the engine
// following any (corruptible) pointers through it.
func probeLoad(e interface {
	Read(func(ptm.Tx) error) error
}, p uint64) (uint64, error) {
	var v uint64
	err := e.Read(func(tx ptm.Tx) error {
		v = tx.Load64(ptm.Ptr(p))
		return nil
	})
	return v, err
}

func probeUpdateLoad(e interface {
	Update(func(ptm.Tx) error) error
}, p uint64) error {
	return e.Update(func(tx ptm.Tx) error {
		_ = tx.Load64(ptm.Ptr(p))
		return nil
	})
}

// mapStore drives a pstruct.HashMap at root 0 on any engine.
type mapStore struct {
	e      mapEngine
	m      *pstruct.HashMap
	verify func() error
}

// newMapStore creates (fresh) or attaches (reopen) the root hash map.
// Creation commits one transaction, so every image a round captures already
// contains the map: reopen costs exactly the engine's own recovery work.
func newMapStore(e mapEngine, verify func() error, create bool) (store, error) {
	s := &mapStore{e: e, verify: verify}
	if !create {
		s.m = pstruct.AttachHashMap(0)
		return s, nil
	}
	err := e.Update(func(tx ptm.Tx) error {
		m, err := pstruct.NewHashMap(tx, 0)
		s.m = m
		return err
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (s *mapStore) dev() *pmem.Device { return s.e.Device() }

func (s *mapStore) dataOffsets() []int { return s.e.DataOffsets() }

func (s *mapStore) probe(p uint64) (uint64, error) { return probeLoad(s.e, p) }

func (s *mapStore) probeUpdate(p uint64) error { return probeUpdateLoad(s.e, p) }

func (s *mapStore) setTrace(t obs.Sink) { s.e.SetTrace(t) }

func (s *mapStore) setAudit(a ptm.Auditor) { s.e.SetAuditor(a) }

func (s *mapStore) close() error { return s.e.Close() }

func (s *mapStore) update(ops []op) error {
	return s.e.Update(func(tx ptm.Tx) error {
		for _, o := range ops {
			var err error
			if o.del {
				_, err = s.m.Remove(tx, o.k)
			} else {
				_, err = s.m.Put(tx, o.k, o.v)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
}

func (s *mapStore) get(k uint64) (uint64, bool, error) {
	var v uint64
	var found bool
	err := s.e.Read(func(tx ptm.Tx) error {
		val, err := s.m.Get(tx, k)
		if errors.Is(err, pstruct.ErrNotFound) {
			return nil
		}
		if err != nil {
			return err
		}
		v, found = val, true
		return nil
	})
	return v, found, err
}

func (s *mapStore) size() (int, error) {
	var n int
	err := s.e.Read(func(tx ptm.Tx) error {
		n = s.m.Len(tx)
		return nil
	})
	return n, err
}

func (s *mapStore) check() error {
	if err := s.e.CheckHeap(); err != nil {
		return fmt.Errorf("heap after recovery: %w", err)
	}
	if s.verify != nil {
		if err := s.verify(); err != nil {
			return err
		}
	}
	return nil
}

// kvStore drives RomulusDB through its public byte-oriented interface:
// single ops map to Put/Delete, multi-op transactions to a write batch.
type kvStore struct {
	db *kvstore.DB
}

func kvKey(k uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(k >> (8 * i))
	}
	return b
}

func (s *kvStore) dev() *pmem.Device { return s.db.Engine().Device() }

func (s *kvStore) dataOffsets() []int { return s.db.Engine().DataOffsets() }

func (s *kvStore) probe(p uint64) (uint64, error) { return probeLoad(s.db.Engine(), p) }

func (s *kvStore) probeUpdate(p uint64) error { return probeUpdateLoad(s.db.Engine(), p) }

func (s *kvStore) setTrace(t obs.Sink) { s.db.SetTrace(t) }

func (s *kvStore) setAudit(a ptm.Auditor) { s.db.SetAuditor(a) }

func (s *kvStore) close() error { return s.db.Close() }

func (s *kvStore) update(ops []op) error {
	if len(ops) == 1 {
		if ops[0].del {
			return s.db.Delete(kvKey(ops[0].k))
		}
		return s.db.Put(kvKey(ops[0].k), kvKey(ops[0].v))
	}
	var b kvstore.Batch
	for _, o := range ops {
		if o.del {
			b.Delete(kvKey(o.k))
		} else {
			b.Put(kvKey(o.k), kvKey(o.v))
		}
	}
	return s.db.Write(&b)
}

func (s *kvStore) get(k uint64) (uint64, bool, error) {
	val, err := s.db.Get(kvKey(k))
	if errors.Is(err, kvstore.ErrNotFound) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if len(val) != 8 {
		return 0, false, fmt.Errorf("kvstore: value for key %d has %d bytes, want 8", k, len(val))
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(val[i])
	}
	return v, true, nil
}

func (s *kvStore) size() (int, error) { return s.db.Len(), nil }

func (s *kvStore) check() error {
	e := s.db.Engine()
	if err := e.CheckHeap(); err != nil {
		return fmt.Errorf("heap after recovery: %w", err)
	}
	if off := e.Verify(); off >= 0 {
		return fmt.Errorf("twin copies diverge at offset %d", off)
	}
	return nil
}

// selectTargets resolves engine names ("all" or empty = every target).
func selectTargets(names []string) ([]target, error) {
	if len(names) == 0 {
		return targets, nil
	}
	byName := map[string]target{}
	for _, t := range targets {
		byName[t.name] = t
	}
	var out []target
	seen := map[string]bool{}
	for _, n := range names {
		if n == "all" {
			return targets, nil
		}
		t, ok := byName[n]
		if !ok {
			known := EngineNames()
			sort.Strings(known)
			return nil, fmt.Errorf("crashtest: unknown engine %q (known: %v)", n, known)
		}
		if !seen[n] {
			out = append(out, t)
			seen[n] = true
		}
	}
	return out, nil
}
