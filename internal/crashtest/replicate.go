package crashtest

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// This file is the mid-replicate crash campaign: it aims simulated power
// failures at the replication phase of the core engines' durability round —
// the window between a commit's durable point (state CPY, transaction
// already durable) and the return to IDL, where dirty-range replication
// copies only the round's touched cache lines back. Under sparse dirty sets
// most of the back region is intentionally NOT copied during that window, so
// a crash inside it exercises exactly the argument DESIGN.md makes for the
// dirty-extent tracker: recovery never consults the (volatile) dirty set, it
// re-copies the whole watermark prefix from the consistent main region.
//
// Workers store into widely scattered lanes — one cache line per slot — so
// the rom engine's dirty set is a handful of isolated lines. A ptm.Auditor
// shim (replicateArmer) counts commit durable points and arms the crash
// scheduler a few persistence events after a randomly chosen commit, landing
// the capture inside (or just after) that round's replication. Validation
// replays each worker's surviving operation prefix and compares every lane
// slot byte for byte, then checks twin-copy agreement and heap health.

// ReplicateConfig parameterizes a mid-replicate crash campaign.
type ReplicateConfig struct {
	// Rounds is the number of build/crash/recover cycles per variant.
	Rounds int
	// Seed makes campaigns reproducible (fully deterministic at Threads 1).
	Seed int64
	// Threads is the number of concurrent writer goroutines (default 2).
	Threads int
	// OpsPerWorker bounds updates per worker before the crash (default 12).
	OpsPerWorker int
	// ChainDepth is the maximum crashes per round (default 1): the first
	// lands in the workload, later ones inside recovery itself.
	ChainDepth int
	// Engines selects variants by name (rom, rom-full, romlog, romlr);
	// empty or "all" means all four.
	Engines []string
	// Audit chains the durability auditor in front of the crash scheduler
	// on every device of the campaign; violations fail the round.
	Audit bool
}

func (cfg *ReplicateConfig) applyDefaults() {
	if cfg.Threads == 0 {
		cfg.Threads = 2
	}
	if cfg.OpsPerWorker == 0 {
		cfg.OpsPerWorker = 12
	}
	if cfg.ChainDepth == 0 {
		cfg.ChainDepth = 1
	}
}

// ReplicateReport summarizes one variant's mid-replicate campaign.
type ReplicateReport struct {
	Engine  string `json:"engine"`
	Rounds  int    `json:"rounds"`
	Threads int    `json:"threads"`
	// MidReplicateCrashes counts rounds whose captured image was in state
	// CPY — the crash interrupted replication itself, after the durable
	// point and before the return to IDL.
	MidReplicateCrashes int `json:"mid_replicate_crashes"`
	// MidRoundCrashes counts rounds whose crash interrupted the workload at
	// all (the rest crashed post-workload, at a quiescent point).
	MidRoundCrashes int `json:"mid_round_crashes"`
	// ChainCrashes counts crashes injected while reopening a crash image;
	// RecoveryCrashes the subset that interrupted real recovery work.
	ChainCrashes    int `json:"chain_crashes"`
	RecoveryCrashes int `json:"recovery_crashes"`
	// OpsSurvived and OpsLost count workload operations across all rounds
	// by whether recovery exposed their effect.
	OpsSurvived int `json:"ops_survived"`
	OpsLost     int `json:"ops_lost"`
	// AuditViolations counts durability violations (Audit campaigns only;
	// any nonzero count also fails the offending round).
	AuditViolations uint64 `json:"audit_violations,omitempty"`
}

// replicateVariants covers the dirty-range default, the full-copy ablation
// (the paper's original O(watermark) replicate), and the two logged
// variants, so the campaign pins crash-equivalence across replication
// strategies, not just the new one.
var replicateVariants = []struct {
	name string
	cfg  core.Config
}{
	{"rom", core.Config{Variant: core.Rom}},
	{"rom-full", core.Config{Variant: core.Rom, FullReplicate: true}},
	{"romlog", core.Config{Variant: core.RomLog}},
	{"romlr", core.Config{Variant: core.RomLR}},
}

// ReplicateEngineNames lists the variants the mid-replicate campaign drives.
func ReplicateEngineNames() []string {
	names := make([]string, len(replicateVariants))
	for i, rv := range replicateVariants {
		names[i] = rv.name
	}
	return names
}

// replicateArmer is a ptm.Auditor shim that arms the crash scheduler a few
// persistence events after the target-th commit durable point, so the
// capture lands inside (or just past) that round's replication phase. It
// forwards every callback to the optional inner auditor, keeping waste and
// violation accounting intact when the campaign runs audited.
type replicateArmer struct {
	sched  *pmem.Scheduler
	inner  ptm.Auditor
	policy pmem.CrashPolicy
	target int    // arm at this commit durable point (1-based)
	offset uint64 // persistence events past the durable point

	mu      sync.Mutex
	commits int
	armed   bool
}

func (ra *replicateArmer) TxBegin(engine, kind string) {
	if ra.inner != nil {
		ra.inner.TxBegin(engine, kind)
	}
}

func (ra *replicateArmer) TxEnd() {
	if ra.inner != nil {
		ra.inner.TxEnd()
	}
}

func (ra *replicateArmer) DurablePoint(point string) {
	if ra.inner != nil {
		ra.inner.DurablePoint(point)
	}
	if point != "commit" {
		return
	}
	ra.mu.Lock()
	defer ra.mu.Unlock()
	ra.commits++
	if !ra.armed && ra.commits >= ra.target {
		ra.armed = true
		ra.sched.Arm(ra.offset, ra.policy)
	}
}

func (ra *replicateArmer) EngineClose(engine string) {
	if ra.inner != nil {
		ra.inner.EngineClose(engine)
	}
}

func (ra *replicateArmer) BatchCommitted(ops int) {
	if ba, ok := ra.inner.(ptm.BatchAuditor); ok {
		ba.BatchCommitted(ops)
	}
}

// RunReplicate executes one mid-replicate campaign per selected variant,
// returning per-variant reports and the first Failure found (nil when every
// round validates).
func RunReplicate(cfg ReplicateConfig) ([]ReplicateReport, error) {
	cfg.applyDefaults()
	selected := map[string]bool{}
	all := len(cfg.Engines) == 0
	for _, n := range cfg.Engines {
		if n == "all" {
			all = true
		}
		selected[n] = true
	}
	var reports []ReplicateReport
	for _, rv := range replicateVariants {
		if !all && !selected[rv.name] {
			continue
		}
		rep := ReplicateReport{Engine: rv.name, Threads: cfg.Threads}
		rng := rand.New(rand.NewSource(engineSeed(cfg.Seed, "replicate-"+rv.name)))
		for round := 0; round < cfg.Rounds; round++ {
			roundSeed := rng.Int63()
			if err := replicateRound(cfg, rv.cfg, round, roundSeed, &rep); err != nil {
				if f, ok := err.(*Failure); ok {
					f.Engine = rv.name
					f.Round = round
					f.CampaignSeed = cfg.Seed
					f.RoundSeed = roundSeed
					f.Threads = cfg.Threads
				}
				return append(reports, rep), err
			}
			rep.Rounds++
		}
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("crashtest: no replicate variant matches %v (known: %v)",
			cfg.Engines, ReplicateEngineNames())
	}
	return reports, nil
}

// Lane geometry: each worker owns laneSlots slots, one cache line apart, so
// a transaction's stores land on isolated lines and the rom dirty set stays
// sparse — the case where dirty-range replication skips the most media.
const laneSlots = 16

// laneVal is the deterministic value op i of worker w writes into scattered
// slot k; validation replays the surviving prefix with the same function.
func laneVal(w, i, k int) uint64 {
	return uint64(w+1)<<48 | uint64(i)<<16 | uint64(k+1)
}

// laneOps applies operation i (1-based) of worker w to the lane through
// store: slot 0 takes the op counter, then 1-3 scattered single-line stores.
func laneOps(w, i int, store func(slot int, v uint64)) {
	store(0, uint64(i))
	n := 1 + (i+w)%3
	for k := 0; k < n; k++ {
		slot := 1 + (i*7+k*5+w*3)%(laneSlots-1)
		store(slot, laneVal(w, i, k))
	}
}

type replicateWorker struct {
	mustSurvive int // ops known durable strictly before the crash fired
	committed   int
	err         error
}

func replicateRound(cfg ReplicateConfig, ecfg core.Config, round int, roundSeed int64, rep *ReplicateReport) error {
	rrng := rand.New(rand.NewSource(roundSeed))
	e, err := core.New(crashRegion, ecfg)
	if err != nil {
		return fmt.Errorf("building fresh %s engine: %w", ecfg.Variant, err)
	}

	// Setup: one committed transaction creating the lane array, so every
	// captured image reopens through recovery, never format.
	laneBytes := laneSlots * pmem.LineSize
	var lanes ptm.Ptr
	err = e.Update(func(tx ptm.Tx) error {
		p, err := tx.Alloc(laneBytes * cfg.Threads)
		if err != nil {
			return err
		}
		tx.SetRoot(0, p)
		lanes = p
		return nil
	})
	if err != nil {
		return fmt.Errorf("%s setup: %w", ecfg.Variant, err)
	}

	ra := &roundAudit{enabled: cfg.Audit}
	sched := pmem.NewScheduler(e.Device())
	sched.SetBudget(cfg.ChainDepth)
	aud, trig := ra.attach(e.Device(), sched)
	// The armer wraps the (possibly nil) auditor; it arms the scheduler at a
	// random commit's durable point plus a small event offset, so the crash
	// fires while replicate() is copying this round's dirty extents. With
	// flat combining several ops can share one commit, so the target may
	// never be reached — those rounds crash post-workload instead.
	armer := &replicateArmer{
		sched:  sched,
		policy: randPolicy(rrng),
		target: 1 + rrng.Intn(cfg.Threads*cfg.OpsPerWorker),
		offset: uint64(1 + rrng.Intn(8)),
	}
	if aud != nil { // keep the interface nil for unaudited rounds
		armer.inner = aud
	}
	e.SetAuditor(armer)

	workers := make([]*replicateWorker, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		w := w
		rw := &replicateWorker{}
		workers[w] = rw
		wrng := rand.New(rand.NewSource(roundSeed ^ int64(uint64(w+1)*0x9E3779B97F4A7C15)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := e.NewHandle()
			if err != nil {
				rw.err = err
				return
			}
			defer h.Release()
			lane := lanes + ptm.Ptr(w*laneBytes)
			nOps := 1 + wrng.Intn(cfg.OpsPerWorker)
			for i := 1; i <= nOps; i++ {
				i := i
				err := h.Update(func(tx ptm.Tx) error {
					laneOps(w, i, func(slot int, v uint64) {
						tx.Store64(lane+ptm.Ptr(slot*pmem.LineSize), v)
					})
					return nil
				})
				if err != nil {
					rw.err = fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
				rw.committed = i
				if !sched.Captured() {
					rw.mustSurvive = i
				}
			}
		}()
	}
	wg.Wait()
	for _, rw := range workers {
		if rw.err != nil {
			return fmt.Errorf("%s replicate workload: %w", ecfg.Variant, rw.err)
		}
	}

	img, ev := sched.Image()
	if img != nil {
		rep.MidRoundCrashes++
		if core.ReplicationPending(img) {
			rep.MidReplicateCrashes++
		}
	} else {
		img = sched.CaptureNow(randPolicy(rrng))
		ev = sched.Events()
	}
	trig.finish(img)
	sched.Detach()
	chain := []CrashPoint{{Event: ev}}

	// Crash chain: reopen each image under a freshly armed scheduler; a
	// crash during Open makes the partially recovered image the next link.
	var final *core.Engine
	for {
		dev := pmem.FromImage(img, pmem.ModelDRAM)
		pending := core.RecoveryPending(img)
		s2 := pmem.NewScheduler(dev)
		s2.SetBudget(1)
		if len(chain) < cfg.ChainDepth {
			s2.Arm(uint64(1+rrng.Intn(64)), randPolicy(rrng))
		}
		a2, trig2 := ra.attach(dev, s2)
		ocfg := ecfg
		if a2 != nil {
			ocfg.Audit = a2
		}
		e2, err := core.Open(dev, ocfg)
		if s2.Captured() {
			img2, ev2 := s2.Image()
			trig2.finish(img2)
			s2.Detach()
			rep.ChainCrashes++
			if pending {
				rep.RecoveryCrashes++
			}
			chain = append(chain, CrashPoint{Event: ev2, DuringOpen: true, RecoveryPending: pending})
			img = img2
			continue
		}
		s2.Detach()
		if err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("reopen failed: %v", err)}
		}
		if a2 != nil {
			dev.SetHooks(a2.Hooks())
		}
		final = e2
		break
	}

	// Validate: engine invariants, then each worker's lane against a replay
	// of its surviving operation prefix — every slot, not just the counter,
	// so a partially replicated (or partially recovered) scattered store
	// cannot hide.
	if err := final.CheckHeap(); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("heap after recovery: %v", err)}
	}
	if off := final.Verify(); off >= 0 {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("twin copies diverge at offset %d", off)}
	}
	lanesGot := make([][]uint64, cfg.Threads)
	err = final.Read(func(tx ptm.Tx) error {
		p := tx.Root(0)
		for w := range lanesGot {
			vals := make([]uint64, laneSlots)
			for s := range vals {
				vals[s] = tx.Load64(p + ptm.Ptr(w*laneBytes+s*pmem.LineSize))
			}
			lanesGot[w] = vals
		}
		return nil
	})
	if err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("reading recovered lanes: %v", err)}
	}
	for w, rw := range workers {
		got := lanesGot[w]
		r := int(got[0])
		if r < rw.mustSurvive || r > rw.committed {
			return &Failure{Chain: chain, Reason: fmt.Sprintf(
				"worker %d: recovered count %d outside committed range [%d,%d]",
				w, r, rw.mustSurvive, rw.committed)}
		}
		rep.OpsSurvived += r
		rep.OpsLost += rw.committed - r
		want := make([]uint64, laneSlots)
		for i := 1; i <= r; i++ {
			laneOps(w, i, func(slot int, v uint64) { want[slot] = v })
		}
		for s := range want {
			if got[s] != want[s] {
				return &Failure{Chain: chain, Reason: fmt.Sprintf(
					"worker %d slot %d: recovered %#x, replay of %d surviving ops gives %#x",
					w, s, got[s], r, want[s])}
			}
		}
	}

	// The recovered engine must keep working.
	probe := uint64(round + 1)
	err = final.Update(func(tx ptm.Tx) error {
		tx.Store64(tx.Root(0), probe)
		return nil
	})
	if err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("recovered engine unusable: %v", err)}
	}
	var got uint64
	err = final.Read(func(tx ptm.Tx) error {
		got = tx.Load64(tx.Root(0))
		return nil
	})
	if err != nil || got != probe {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"post-recovery write not readable: got %d want %d err=%v", got, probe, err)}
	}

	if cfg.Audit {
		if err := final.Close(); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("close after recovery: %v", err)}
		}
		if n, viol := ra.violations(); n > 0 {
			rep.AuditViolations += n
			reason := fmt.Sprintf("auditor: %d durability violation(s)", n)
			if viol != nil {
				reason += fmt.Sprintf("; first: [%s] at %s: line %d off %d state=%s seq=%d engine=%s tx=%s site=%s",
					viol.Kind, viol.Point, viol.Line, viol.Off, viol.State, viol.Seq, viol.Engine, viol.TxKind, viol.Site)
			}
			return &Failure{Chain: chain, Reason: reason}
		}
	}
	return nil
}
