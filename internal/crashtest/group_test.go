package crashtest

import (
	"strings"
	"testing"
)

// TestGroupCampaignSmall runs the network group-commit campaign across all
// three core variants: crashes land inside cross-connection batches and
// recovery must keep every acknowledged write and never split a batch.
func TestGroupCampaignSmall(t *testing.T) {
	reports, err := RunGroup(GroupConfig{Rounds: 20, Seed: 1, Conns: 6, ChainDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(GroupEngineNames()) {
		t.Fatalf("got %d reports, want %d", len(reports), len(GroupEngineNames()))
	}
	for _, r := range reports {
		if r.Rounds != 20 {
			t.Errorf("%s: %d rounds completed, want 20", r.Engine, r.Rounds)
		}
		if r.MultiConnBatches == 0 {
			t.Errorf("%s: no batch merged ops from more than one connection; campaign never exercised cross-connection group commit", r.Engine)
		}
		if r.MidRoundCrashes == 0 {
			t.Errorf("%s: no crash landed inside the workload", r.Engine)
		}
		if r.AcksSurvived == 0 || r.AcksLost == 0 {
			t.Errorf("%s: want acks on both sides of the crash line, got %d survived / %d lost",
				r.Engine, r.AcksSurvived, r.AcksLost)
		}
		t.Logf("%s: %+v", r.Engine, r)
	}
}

// TestGroupCampaignAudited chains the durability auditor in front of the
// crash scheduler: group-committed rounds must uphold the fence protocol
// exactly like solo ones.
func TestGroupCampaignAudited(t *testing.T) {
	reports, err := RunGroup(GroupConfig{Rounds: 8, Seed: 5, Conns: 6, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.AuditViolations != 0 {
			t.Errorf("%s: %d audit violations, want 0", r.Engine, r.AuditViolations)
		}
	}
}

func TestGroupCampaignUnknownEngine(t *testing.T) {
	_, err := RunGroup(GroupConfig{Rounds: 1, Engines: []string{"undolog"}})
	if err == nil || !strings.Contains(err.Error(), "no group variant") {
		t.Fatalf("err = %v, want no-group-variant error", err)
	}
}
