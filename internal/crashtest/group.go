package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/server"
	"repro/internal/shard"
)

// This file is the network group-commit crash campaign: it aims simulated
// power failures at the server layer's cross-connection batches (see
// internal/server/group.go) and checks the contract the server publishes in
// docs/PROTOCOL.md — a reply released by the group committer means the write
// was durable BEFORE the reply existed, so a crash at any instant loses no
// acknowledged write; and a group batch commits as one transaction, so a
// crash inside its durability round never leaves it partially visible.
//
// Each simulated connection owns one key and writes an increasing counter
// into it through the committer (pipelining a small window of submissions,
// like a real pipelined client), recording the batch sequence number of
// every acknowledged op. After the crash — and a chained reopen that may
// crash again inside recovery — the recovered value of each key reveals
// exactly which acknowledged ops survived; the recorded sequence numbers
// then assert that durability respects batch commit order and no batch was
// split. The workload is genuinely concurrent, so the campaign uses the
// single-device pmem.Scheduler (safe under concurrency) on the one shard
// the store is built with; the coordinator device is captured quiescently
// (group commit never touches it — no cross-shard batches here).

// GroupConfig parameterizes a group-commit crash campaign.
type GroupConfig struct {
	// Rounds is the number of build/crash/recover cycles per variant.
	Rounds int
	// Seed makes campaigns reproducible.
	Seed int64
	// Conns is the number of concurrent submitting "connections" (default 6).
	Conns int
	// OpsPerConn bounds acknowledged writes per connection before the crash
	// (default 12).
	OpsPerConn int
	// MaxBatch bounds one group batch (default 8 — small, so rounds commit
	// many batches and crashes land inside them).
	MaxBatch int
	// ChainDepth is the maximum crashes per round (default 1): the first
	// lands in the workload, later ones inside recovery itself.
	ChainDepth int
	// Engines selects core variants by name (rom, romlog, romlr); empty or
	// "all" means all three.
	Engines []string
	// Metrics, when non-nil, accumulates pmem_* device totals and the
	// group_crash_* campaign counters.
	Metrics *obs.Registry
	// Audit chains the durability auditor in front of the crash scheduler on
	// the shard device for the workload and every reopened image; violations
	// fail the round.
	Audit bool
}

func (cfg *GroupConfig) applyDefaults() {
	if cfg.Conns == 0 {
		cfg.Conns = 6
	}
	if cfg.OpsPerConn == 0 {
		cfg.OpsPerConn = 12
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if cfg.ChainDepth == 0 {
		cfg.ChainDepth = 1
	}
}

// GroupReport summarizes one variant's group-commit campaign.
type GroupReport struct {
	Engine string `json:"engine"`
	Rounds int    `json:"rounds"`
	Conns  int    `json:"conns"`
	// MidRoundCrashes counts rounds whose crash interrupted the workload
	// (the rest crashed post-workload, at a quiescent point).
	MidRoundCrashes int `json:"mid_round_crashes"`
	// Batches counts group batches started; MultiConnBatches the subset
	// merging ops from more than one connection — the cross-connection
	// sharing the assertion is about.
	Batches          int `json:"batches"`
	MultiConnBatches int `json:"multi_conn_batches"`
	// ChainCrashes counts crashes injected while reopening a crash image;
	// RecoveryCrashes the subset that interrupted real recovery work.
	ChainCrashes    int `json:"chain_crashes"`
	RecoveryCrashes int `json:"recovery_crashes"`
	// AcksSurvived and AcksLost count acknowledged writes across all rounds
	// by whether recovery exposed their effect. AcksLost counts ops acked
	// AFTER the crash image was captured (their rounds post-date the
	// captured state) — an op acked before the capture that fails to
	// survive fails the round instead.
	AcksSurvived int `json:"acks_survived"`
	AcksLost     int `json:"acks_lost"`
	// AuditViolations counts durability violations (Audit campaigns only;
	// any nonzero count also fails the offending round).
	AuditViolations uint64 `json:"audit_violations,omitempty"`
	// FlightRounds counts rounds whose recovered flight recorder held
	// records; FlightInFlight the subset whose report named a batch that
	// had started but not committed at the crash. Every round also asserts
	// the recorder's claims against ground truth (see groupRound).
	FlightRounds   int `json:"flight_rounds"`
	FlightInFlight int `json:"flight_in_flight_rounds"`
}

// GroupEngineNames lists the variants the group-commit campaign drives.
func GroupEngineNames() []string { return BatchEngineNames() }

// RunGroup executes one group-commit campaign per selected variant,
// returning per-variant reports and the first Failure found (nil when every
// round validates).
func RunGroup(cfg GroupConfig) ([]GroupReport, error) {
	cfg.applyDefaults()
	selected := map[string]bool{}
	all := len(cfg.Engines) == 0
	for _, n := range cfg.Engines {
		if n == "all" {
			all = true
		}
		selected[n] = true
	}
	var reports []GroupReport
	for _, bv := range batchVariants {
		if !all && !selected[bv.name] {
			continue
		}
		rep := GroupReport{Engine: bv.name, Conns: cfg.Conns}
		rng := rand.New(rand.NewSource(engineSeed(cfg.Seed, "group-"+bv.name)))
		for round := 0; round < cfg.Rounds; round++ {
			roundSeed := rng.Int63()
			if err := groupRound(cfg, bv.v, round, roundSeed, &rep); err != nil {
				if f, ok := err.(*Failure); ok {
					f.Engine = bv.name
					f.Round = round
					f.CampaignSeed = cfg.Seed
					f.RoundSeed = roundSeed
					f.Threads = cfg.Conns
				}
				return append(reports, rep), err
			}
			rep.Rounds++
		}
		// Non-vacuity: a healthy campaign recovers flight data nearly every
		// round (any round with an acked batch has at minimum its start
		// record). All-empty rings mean the blackbox check tested nothing.
		if rep.Rounds >= 25 && rep.FlightRounds == 0 {
			return append(reports, rep), fmt.Errorf(
				"crashtest: %s: %d rounds recovered no flight-recorder data — blackbox assertions are vacuous",
				bv.name, rep.Rounds)
		}
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("crashtest: no group variant matches %v (known: %v)",
			cfg.Engines, GroupEngineNames())
	}
	if r := cfg.Metrics; r != nil {
		for _, rep := range reports {
			r.Counter("group_crash_rounds_total").Add(uint64(rep.Rounds))
			r.Counter("group_crash_batch_total").Add(uint64(rep.Batches))
			r.Counter("group_crash_multiconn_batch_total").Add(uint64(rep.MultiConnBatches))
			r.Counter("group_crash_chain_total").Add(uint64(rep.ChainCrashes))
			r.Counter("group_crash_ack_survived_total").Add(uint64(rep.AcksSurvived))
			r.Counter("group_crash_ack_lost_total").Add(uint64(rep.AcksLost))
			r.Counter("group_crash_flight_rounds_total").Add(uint64(rep.FlightRounds))
			r.Counter("group_crash_flight_inflight_total").Add(uint64(rep.FlightInFlight))
		}
	}
	return reports, nil
}

// groupConn records one simulated connection's acknowledged writes. Op i
// (1-based) stores the decimal value i into the connection's key, so the
// recovered value equals the connection's surviving ack count.
type groupConn struct {
	seqs        []uint64 // seqs[i-1] is the group batch that committed op i
	mustSurvive int      // ops acked strictly before the crash fired
	err         error
}

func groupOpts(v core.Variant) shard.Options {
	return shard.Options{
		Shards:     1,
		RegionSize: 256 << 10,
		CoordSize:  32 << 10,
		Variant:    v,
		// Every round also tortures the flight recorder: batch records are
		// appended through the same crash scheduler as the data they
		// describe, and the recovered report is checked against ground
		// truth below.
		Blackbox: true,
	}
}

func groupRound(cfg GroupConfig, v core.Variant, round int, roundSeed int64, rep *GroupReport) error {
	rrng := rand.New(rand.NewSource(roundSeed))
	st, err := shard.Open(groupOpts(v))
	if err != nil {
		return fmt.Errorf("building fresh %s store: %w", v, err)
	}
	devs := st.Devices()
	shardDev, coordDev := devs[0], devs[1]

	ra := &roundAudit{enabled: cfg.Audit}
	sched := pmem.NewScheduler(shardDev)
	sched.SetBudget(cfg.ChainDepth)
	aud, trig := ra.attach(shardDev, sched)
	if aud != nil {
		st.SetAuditors([]ptm.Auditor{aud, nil})
	}
	policy := randPolicy(rrng)
	crashAt := uint64(1 + rrng.Intn(cfg.Conns*cfg.OpsPerConn*16+64))
	sched.Arm(crashAt, policy)

	// The committer under test: small batches, sometimes a linger window, and
	// an OnBatch probe recording batch formation for the report.
	var bmu sync.Mutex
	lingers := []time.Duration{0, 200 * time.Microsecond, time.Millisecond}
	cm := server.NewCommitter(st, server.GroupOptions{
		MaxBatch: cfg.MaxBatch,
		Linger:   lingers[rrng.Intn(len(lingers))],
		OnBatch: func(_ int, _ uint64, ops []*server.Pending) {
			conns := map[any]struct{}{}
			for _, p := range ops {
				conns[p.Tag()] = struct{}{}
			}
			bmu.Lock()
			rep.Batches++
			if len(conns) > 1 {
				rep.MultiConnBatches++
			}
			bmu.Unlock()
		},
	})

	conns := make([]*groupConn, cfg.Conns)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Conns; w++ {
		w := w
		gc := &groupConn{}
		conns[w] = gc
		wrng := rand.New(rand.NewSource(roundSeed ^ int64(uint64(w+1)*0x9E3779B97F4A7C15)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := []byte(fmt.Sprintf("conn%02d", w))
			nOps := 1 + wrng.Intn(cfg.OpsPerConn)
			window := 1 + wrng.Intn(4) // pipelined submissions in flight
			pending := make([]*server.Pending, 0, window)
			next := 1 // next op index whose ack to consume, 1-based
			consume := func(p *server.Pending) bool {
				reply := p.Wait()
				if reply != "OK" {
					gc.err = fmt.Errorf("conn %d op %d: reply %q", w, next, reply)
					return false
				}
				gc.seqs = append(gc.seqs, p.Seq())
				if !sched.Captured() {
					gc.mustSurvive = next
				}
				next++
				return true
			}
			for i := 1; i <= nOps; i++ {
				val := []byte(strconv.Itoa(i))
				p := cm.Submit(0, uint64(w+1), "set", w, func(tx ptm.Tx, db *kvstore.DB) (string, error) {
					if err := db.PutTx(tx, key, val); err != nil {
						return "", err
					}
					return "OK", nil
				})
				pending = append(pending, p)
				for len(pending) >= window {
					if !consume(pending[0]) {
						return
					}
					pending = pending[1:]
				}
			}
			for _, p := range pending {
				if !consume(p) {
					return
				}
			}
		}()
	}
	wg.Wait()
	cm.Close()
	for _, gc := range conns {
		if gc.err != nil {
			return fmt.Errorf("%s group workload: %w", v, gc.err)
		}
	}

	img, ev := sched.Image()
	if img != nil {
		rep.MidRoundCrashes++
	} else {
		img = sched.CaptureNow(policy)
		ev = sched.Events()
	}
	trig.finish(img)
	sched.Detach()
	// The coordinator is quiescent (group commit is single-shard by
	// construction); its captured image is simply its persisted state.
	coordImg := coordDev.CrashImage(policy)
	accumDevice(cfg.Metrics, shardDev)
	accumDevice(cfg.Metrics, coordDev)
	chain := []CrashPoint{{Event: ev}}

	// Crash chain: reopen each shard image (with a fresh coordinator device
	// from the quiescent image) under a freshly armed scheduler; a crash
	// during Reopen makes the partially recovered image the next link.
	var final *shard.Store
	for {
		sdev := pmem.FromImage(img, pmem.ModelDRAM)
		cdev := pmem.FromImage(coordImg, pmem.ModelDRAM)
		pending := core.RecoveryPending(img)
		s2 := pmem.NewScheduler(sdev)
		s2.SetBudget(1)
		if len(chain) < cfg.ChainDepth {
			s2.Arm(uint64(1+rrng.Intn(64)), randPolicy(rrng))
		}
		a2, trig2 := ra.attach(sdev, s2)
		ropts := groupOpts(v)
		if a2 != nil {
			ropts.Auditors = []ptm.Auditor{a2, nil}
		}
		st2, err := shard.Reopen([]*pmem.Device{sdev, cdev}, ropts)
		if s2.Captured() {
			img2, ev2 := s2.Image()
			trig2.finish(img2)
			s2.Detach()
			accumDevice(cfg.Metrics, sdev)
			rep.ChainCrashes++
			if pending {
				rep.RecoveryCrashes++
			}
			chain = append(chain, CrashPoint{Event: ev2, DuringOpen: true, RecoveryPending: pending})
			img = img2
			continue
		}
		s2.Detach()
		if err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("reopen failed: %v", err)}
		}
		if a2 != nil {
			sdev.SetHooks(a2.Hooks())
		}
		final = st2
		break
	}

	// Validate: per-connection recovered counts, then batch atomicity and
	// commit-order durability across connections.
	recovered := make([]int, cfg.Conns)
	for w := range conns {
		v, err := final.Get([]byte(fmt.Sprintf("conn%02d", w)))
		switch {
		case errors.Is(err, shard.ErrNotFound):
		case err != nil:
			return &Failure{Chain: chain, Reason: fmt.Sprintf("reading conn %d key: %v", w, err)}
		default:
			n, perr := strconv.Atoi(string(v))
			if perr != nil {
				return &Failure{Chain: chain, Reason: fmt.Sprintf("conn %d key holds %q, not a counter", w, v)}
			}
			recovered[w] = n
		}
	}
	var survivedMax, maxAcked uint64
	lostMin := ^uint64(0)
	for w, gc := range conns {
		r := recovered[w]
		if r < gc.mustSurvive || r > len(gc.seqs) {
			return &Failure{Chain: chain, Reason: fmt.Sprintf(
				"conn %d: recovered count %d outside acknowledged range [%d,%d] — an acked write was lost",
				w, r, gc.mustSurvive, len(gc.seqs))}
		}
		rep.AcksSurvived += r
		rep.AcksLost += len(gc.seqs) - r
		for i, seq := range gc.seqs {
			if i < r {
				if seq > survivedMax {
					survivedMax = seq
				}
			} else if seq < lostMin {
				lostMin = seq
			}
			if i < gc.mustSurvive && seq > maxAcked {
				maxAcked = seq
			}
		}
	}
	// All-or-nothing per group batch, durable in batch commit order: every
	// surviving op's batch must precede every lost op's batch. A split batch
	// (same seq on both sides) or a hole (later batch durable, earlier lost)
	// both trip this.
	if survivedMax >= lostMin {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"group batch atomicity violated: batch %d (or earlier) lost while batch %d survived",
			lostMin, survivedMax)}
	}

	// Flight-recorder forensics. The recovered ring's claims are checked
	// against ground truth from the workload:
	//
	//  1. Every batch's BatchStart record is fenced BEFORE its transaction,
	//     so a batch acked before the crash image was captured must appear
	//     started (ring wrap only retains newer, higher seqs, so the max
	//     can only grow).
	//  2. A durable BatchCommit record means the batch's psync completed
	//     before the record was even appended — so a commit record for a
	//     batch whose acked data was LOST is a lie on the media.
	fr := final.FlightReports()[0]
	if fr == nil {
		return &Failure{Chain: chain, Reason: "blackbox store reopened without a flight report"}
	}
	if maxAcked > 0 {
		if fr.Empty() {
			return &Failure{Chain: chain, Reason: fmt.Sprintf(
				"flight recorder empty though batch %d was acked before the crash", maxAcked)}
		}
		if fr.MaxBatchStarted < maxAcked {
			return &Failure{Chain: chain, Reason: fmt.Sprintf(
				"flight recorder names batch %d as last started, but batch %d was acked before the crash",
				fr.MaxBatchStarted, maxAcked)}
		}
	}
	if lostMin != ^uint64(0) && fr.MaxBatchCommitted >= lostMin {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"flight recorder claims batch %d committed, but batch %d lost acked data",
			fr.MaxBatchCommitted, lostMin)}
	}
	if !fr.Empty() {
		rep.FlightRounds++
		if len(fr.InFlight) > 0 {
			rep.FlightInFlight++
		}
	}

	// The recovered store must keep serving the group-commit path.
	cm2 := server.NewCommitter(final, server.GroupOptions{MaxBatch: cfg.MaxBatch})
	probe := cm2.Submit(0, 1, "probe", nil, func(tx ptm.Tx, db *kvstore.DB) (string, error) {
		if err := db.PutTx(tx, []byte("probe"), []byte(strconv.Itoa(round))); err != nil {
			return "", err
		}
		return "OK", nil
	})
	if reply := probe.Wait(); reply != "OK" {
		cm2.Close()
		return &Failure{Chain: chain, Reason: fmt.Sprintf("post-recovery group commit failed: %q", reply)}
	}
	cm2.Close()
	if v, err := final.Get([]byte("probe")); err != nil || string(v) != strconv.Itoa(round) {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("post-recovery group write not readable: %q err=%v", v, err)}
	}

	if cfg.Audit {
		if err := final.Close(); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("close after recovery: %v", err)}
		}
		for _, d := range final.Devices() {
			accumDevice(cfg.Metrics, d)
		}
		if n, viol := ra.violations(); n > 0 {
			rep.AuditViolations += n
			reason := fmt.Sprintf("auditor: %d durability violation(s)", n)
			if viol != nil {
				reason += fmt.Sprintf("; first: [%s] at %s: line %d off %d state=%s seq=%d engine=%s tx=%s site=%s",
					viol.Kind, viol.Point, viol.Line, viol.Off, viol.State, viol.Seq, viol.Engine, viol.TxKind, viol.Site)
			}
			return &Failure{Chain: chain, Reason: reason}
		}
	}
	return nil
}
