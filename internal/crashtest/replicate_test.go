package crashtest

import (
	"reflect"
	"strings"
	"testing"
)

// TestReplicateCampaignSmall runs the mid-replicate campaign across all four
// replication strategies with concurrent sparse-store writers: crashes are
// armed just past commit durable points and recovery must expose each
// worker's lanes exactly as a replay of its surviving operation prefix.
func TestReplicateCampaignSmall(t *testing.T) {
	reports, err := RunReplicate(ReplicateConfig{Rounds: 25, Seed: 1, Threads: 2, ChainDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(ReplicateEngineNames()) {
		t.Fatalf("got %d reports, want %d", len(reports), len(ReplicateEngineNames()))
	}
	for _, r := range reports {
		if r.Rounds != 25 {
			t.Errorf("%s: %d rounds completed, want 25", r.Engine, r.Rounds)
		}
		if r.MidRoundCrashes == 0 {
			t.Errorf("%s: no crash landed inside the workload", r.Engine)
		}
		if r.MidReplicateCrashes == 0 {
			t.Errorf("%s: no crash landed inside replication (state CPY); the armer never hit its window", r.Engine)
		}
		t.Logf("%s: %+v", r.Engine, r)
	}
}

// TestReplicateCampaignAudited chains the durability auditor onto every
// device: dirty-range replication must uphold the fence protocol under crash
// pressure exactly like the full copy.
func TestReplicateCampaignAudited(t *testing.T) {
	reports, err := RunReplicate(ReplicateConfig{Rounds: 10, Seed: 5, Threads: 2, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.AuditViolations != 0 {
			t.Errorf("%s: %d audit violations, want 0", r.Engine, r.AuditViolations)
		}
	}
}

// TestReplicateCampaignDeterministic: a single-threaded campaign is a pure
// function of its seed.
func TestReplicateCampaignDeterministic(t *testing.T) {
	cfg := ReplicateConfig{Rounds: 12, Seed: 42, Threads: 1, ChainDepth: 2, Engines: []string{"rom"}}
	a, err := RunReplicate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplicate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

func TestReplicateCampaignUnknownEngine(t *testing.T) {
	_, err := RunReplicate(ReplicateConfig{Rounds: 1, Engines: []string{"undolog"}})
	if err == nil || !strings.Contains(err.Error(), "no replicate variant") {
		t.Fatalf("err = %v, want no-replicate-variant error", err)
	}
}
