package crashtest

import (
	"reflect"
	"strings"
	"testing"
)

// TestBatchCampaignSmall runs the combined-batch campaign across all three
// core variants with concurrent writers: crashes land inside batched
// durability rounds and recovery must expose an all-or-nothing prefix of
// them.
func TestBatchCampaignSmall(t *testing.T) {
	reports, err := RunBatch(BatchConfig{Rounds: 20, Seed: 1, Threads: 4, ChainDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(BatchEngineNames()) {
		t.Fatalf("got %d reports, want %d", len(reports), len(BatchEngineNames()))
	}
	for _, r := range reports {
		if r.Rounds != 20 {
			t.Errorf("%s: %d rounds completed, want 20", r.Engine, r.Rounds)
		}
		if r.MultiOpRounds == 0 {
			t.Errorf("%s: no round committed a multi-op batch; campaign never exercised combined commits", r.Engine)
		}
		if r.MidBatchCrashes == 0 {
			t.Errorf("%s: no crash landed inside the workload", r.Engine)
		}
		if r.OpsSurvived == 0 || r.OpsLost == 0 {
			t.Errorf("%s: want both survived and lost ops, got %d/%d",
				r.Engine, r.OpsSurvived, r.OpsLost)
		}
		t.Logf("%s: %+v", r.Engine, r)
	}
}

// TestBatchCampaignAudited chains the durability auditor onto every device:
// batched commits must uphold the fence protocol exactly like solo ones.
func TestBatchCampaignAudited(t *testing.T) {
	reports, err := RunBatch(BatchConfig{Rounds: 8, Seed: 5, Threads: 4, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.AuditViolations != 0 {
			t.Errorf("%s: %d audit violations, want 0", r.Engine, r.AuditViolations)
		}
	}
}

// TestBatchCampaignDeterministic: a single-threaded campaign is a pure
// function of its seed.
func TestBatchCampaignDeterministic(t *testing.T) {
	cfg := BatchConfig{Rounds: 10, Seed: 42, Threads: 1, ChainDepth: 2, Engines: []string{"romlog"}}
	a, err := RunBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

func TestBatchCampaignUnknownEngine(t *testing.T) {
	_, err := RunBatch(BatchConfig{Rounds: 1, Engines: []string{"undolog"}})
	if err == nil || !strings.Contains(err.Error(), "no batch variant") {
		t.Fatalf("err = %v, want no-batch-variant error", err)
	}
}
