package crashtest

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// TestCorruptionTaxonomy pins the corruption-error taxonomy across every
// engine: torn header metadata, structurally invalid logs, and rotted
// payload each map to their typed error family — and never to a silent
// success. The offsets below lean on the shared layout every engine
// documents: a 256-byte header with magic at 0 and version at 8, the root
// array at main offset 64, and the log regions at the device tail.
func TestCorruptionTaxonomy(t *testing.T) {
	const headSize = 256

	type corruption struct {
		name string
		// damage mutates a clean quiescent image.
		damage func(img []byte)
		// want is the typed error family Open must answer with.
		want error
	}
	tornHeader := corruption{
		name: "torn header",
		// The version word is covered by the header checksum; flipping a
		// bit in it while the magic stays intact is exactly what a torn or
		// rotted header line looks like.
		damage: func(img []byte) { img[8] ^= 0x10 },
		want:   ptm.ErrCorruptHeader,
	}
	rottedMagic := corruption{
		name: "rotted magic",
		// A wrong-but-nonzero magic over a header whose checksum still
		// validates must NOT be treated as an unformatted device — that
		// would silently reformat a full region.
		damage: func(img []byte) { img[0] ^= 0x04 },
		want:   ptm.ErrCorruptHeader,
	}
	rottedPayload := corruption{
		name: "rotted payload",
		// Root 0 lives at main offset 64; flipping it in the main copy only
		// makes the twins diverge at a quiescent open.
		damage: func(img []byte) { img[headSize+64] ^= 0x01 },
		want:   ptm.ErrCorruptPayload,
	}

	cases := map[string][]corruption{
		"rom":     {tornHeader, rottedMagic, rottedPayload},
		"romlog":  {tornHeader, rottedMagic, rottedPayload},
		"romlr":   {tornHeader, rottedMagic, rottedPayload},
		"kvstore": {tornHeader, rottedMagic, rottedPayload},
		"undolog": {tornHeader, rottedMagic, {
			name: "torn log count",
			// The undo-log count is self-checked (count mixed into the high
			// word); a raw value that fails the decode is a torn or rotted
			// count line.
			damage: func(img []byte) {
				binary.LittleEndian.PutUint64(img[64:], 5)
			},
			want: ptm.ErrCorruptLog,
		}},
		"redolog": {tornHeader, rottedMagic, {
			name: "rotted segment flag",
			// The committed flag must be 0 or the self-evidencing segDone
			// constant; anything else means the flag line rotted, and
			// replaying on its strength would scribble stale log words over
			// committed data.
			damage: func(img []byte) {
				logBase := len(img) - redoSegs*redoSegSize
				binary.LittleEndian.PutUint64(img[logBase:], 0xBAD)
			},
			want: ptm.ErrCorruptLog,
		}},
	}

	for _, tgt := range targets {
		tgt := tgt
		t.Run(tgt.name, func(t *testing.T) {
			st, err := tgt.fresh()
			if err != nil {
				t.Fatal(err)
			}
			if err := st.update([]op{{k: 1, v: 11}, {k: 2, v: 22}}); err != nil {
				t.Fatal(err)
			}
			st.dev().PersistAll()
			clean := st.dev().Persisted()

			cs, ok := cases[tgt.name]
			if !ok {
				t.Fatalf("no taxonomy cases for engine %q", tgt.name)
			}
			for _, c := range cs {
				img := append([]byte(nil), clean...)
				c.damage(img)
				_, err := tgt.reopen(pmem.FromImage(img, pmem.ModelDRAM), nil)
				if err == nil {
					t.Errorf("%s: open SUCCEEDED on damaged image; corruption served silently", c.name)
					continue
				}
				if !errors.Is(err, c.want) {
					t.Errorf("%s: err = %v, want %v family", c.name, err, c.want)
				}
			}

			// The clean image itself must still open: the taxonomy cases
			// prove detection, this proves they are not refusing everything.
			if _, err := tgt.reopen(pmem.FromImage(clean, pmem.ModelDRAM), nil); err != nil {
				t.Errorf("clean image refused: %v", err)
			}
		})
	}
}
