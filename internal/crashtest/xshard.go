package crashtest

import (
	"fmt"
	"math/rand"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/shard"
)

// XShardConfig parameterizes the cross-shard campaign: randomized crash
// chains against a sharded store (N shard devices plus the coordinator log),
// with whole-process failures captured consistently across every device by
// pmem.MultiScheduler. The workload is single-threaded — the multi-device
// capture requires it — and mixes single-key writes with multi-key batches
// that span shards and commit through the coordinator's two-phase record.
type XShardConfig struct {
	// Rounds is the number of build/crash/recover cycles.
	Rounds int
	// Seed makes campaigns fully deterministic (single-threaded workload).
	Seed int64
	// Shards is the partition count (default 3).
	Shards int
	// Keys bounds the keyspace (default 48).
	Keys int
	// OpsPerRound bounds completed operations before the crash (default 10);
	// roughly 40% are cross-shard batches.
	OpsPerRound int
	// ChainDepth is the maximum crashes per round (default 2): the first
	// lands in the workload or a two-phase commit window, later ones inside
	// the multi-device recovery itself.
	ChainDepth int
	// Metrics, when non-nil, accumulates pmem_* device totals and the
	// xshard_crash_* campaign counters.
	Metrics *obs.Registry
	// Audit chains a durability auditor in front of the crash scheduler on
	// EVERY device — each shard and the coordinator log — for the workload
	// and every reopened image set. Violations fail the round.
	Audit bool
}

func (cfg *XShardConfig) applyDefaults() {
	if cfg.Shards == 0 {
		cfg.Shards = 3
	}
	if cfg.Keys == 0 {
		cfg.Keys = 48
	}
	if cfg.OpsPerRound == 0 {
		cfg.OpsPerRound = 10
	}
	if cfg.ChainDepth == 0 {
		cfg.ChainDepth = 2
	}
}

// XShardReport summarizes a cross-shard campaign.
type XShardReport struct {
	Rounds int `json:"rounds"`
	Shards int `json:"shards"`
	// MidOpCrashes counts rounds whose first crash interrupted the workload
	// (the rest crashed post-commit, at a quiescent point).
	MidOpCrashes int `json:"mid_op_crashes"`
	// XBatches counts cross-shard batches committed by the workloads.
	XBatches int `json:"xshard_batches"`
	// Replays and Rollbacks count in-doubt batches recovery rolled forward /
	// discarded across all recoveries of the campaign — both arms must be
	// exercised for the campaign to prove anything.
	Replays   uint64 `json:"replays"`
	Rollbacks uint64 `json:"rollbacks"`
	// ChainCrashes counts crashes beyond the first (inside recovery);
	// RecoveryCrashes counts those whose image set had real recovery work
	// pending (a shard mid-transaction or a prepared coordinator record).
	ChainCrashes    int `json:"chain_crashes"`
	RecoveryCrashes int `json:"recovery_crashes"`
	// RolledBack and CarriedForward count rounds whose recovered state
	// excluded/included the round's final completed operation.
	RolledBack      int    `json:"rolled_back"`
	CarriedForward  int    `json:"carried_forward"`
	AuditViolations uint64 `json:"audit_violations,omitempty"`
}

// RunXShard executes the cross-shard campaign, returning the report and the
// first Failure (Engine "xshard") found.
func RunXShard(cfg XShardConfig) (XShardReport, error) {
	cfg.applyDefaults()
	rep := XShardReport{Shards: cfg.Shards}
	rng := rand.New(rand.NewSource(engineSeed(cfg.Seed, "xshard")))
	for round := 0; round < cfg.Rounds; round++ {
		roundSeed := rng.Int63()
		if err := runXShardRound(cfg, round, roundSeed, &rep); err != nil {
			if f, ok := err.(*Failure); ok {
				f.Engine = "xshard"
				f.Round = round
				f.CampaignSeed = cfg.Seed
				f.RoundSeed = roundSeed
				f.Threads = 1
			}
			return rep, err
		}
		rep.Rounds++
	}
	if r := cfg.Metrics; r != nil {
		r.Counter("xshard_crash_rounds_total").Add(uint64(rep.Rounds))
		r.Counter("xshard_crash_chain_total").Add(uint64(rep.ChainCrashes))
		r.Counter("xshard_crash_recovery_crash_total").Add(uint64(rep.RecoveryCrashes))
		r.Counter("xshard_crash_replay_total").Add(rep.Replays)
		r.Counter("xshard_crash_rollback_total").Add(rep.Rollbacks)
	}
	return rep, nil
}

// xshardOpts builds the store options for one round; Auditors is filled per
// open by the caller.
func xshardOpts(cfg XShardConfig) shard.Options {
	return shard.Options{
		Shards:     cfg.Shards,
		RegionSize: 256 << 10,
		CoordSize:  32 << 10,
		Variant:    core.RomLog,
	}
}

// xshardAttach wires one image set's devices: per device, optionally an
// auditor chained IN FRONT of the multi-scheduler's counting bundle (shadow
// state must update before a capture can fire). Returns the ptm.Auditor
// slice for shard.Options.Auditors (nil when auditing is off) and the
// round's new auditors for accounting.
func xshardAttach(devs []*pmem.Device, ms *pmem.MultiScheduler, enabled bool) ([]ptm.Auditor, []*audit.Auditor) {
	if !enabled {
		ms.Attach()
		return nil, nil
	}
	pauds := make([]ptm.Auditor, len(devs))
	auds := make([]*audit.Auditor, len(devs))
	for i, d := range devs {
		a := audit.New(d, audit.Options{})
		d.SetHooks(pmem.ChainHooks(a.Hooks(), ms.Hooks(i)))
		pauds[i] = a
		auds[i] = a
	}
	return pauds, auds
}

// xshardPending reports whether an image set needs real recovery work: any
// shard mid-transaction, or a prepared-but-unfinished coordinator record.
func xshardPending(imgs [][]byte) bool {
	for _, img := range imgs[:len(imgs)-1] {
		if core.RecoveryPending(img) {
			return true
		}
	}
	return shard.CoordRecoveryPending(imgs[len(imgs)-1])
}

func runXShardRound(cfg XShardConfig, round int, roundSeed int64, rep *XShardReport) error {
	rrng := rand.New(rand.NewSource(roundSeed))
	opts := xshardOpts(cfg)
	st, err := shard.Open(opts)
	if err != nil {
		return fmt.Errorf("building fresh sharded store: %w", err)
	}
	var roundAuds []*audit.Auditor

	// Phase 1: single-threaded workload under one armed all-device capture.
	devs := st.Devices()
	ms := pmem.NewMultiScheduler(devs...)
	ms.SetBudget(cfg.ChainDepth)
	pauds, auds := xshardAttach(devs, ms, cfg.Audit)
	if pauds != nil {
		st.SetAuditors(pauds)
		roundAuds = append(roundAuds, auds...)
	}
	policy := randPolicy(rrng)
	// A single-key tx is ~24 events; a cross-shard batch several times that.
	// Overshooting lets some rounds crash post-workload, quiescent.
	ms.Arm(uint64(1+rrng.Intn(cfg.OpsPerRound*64+96)), policy)

	key := func(i int) []byte { return []byte(fmt.Sprintf("k%03d", i)) }
	state := map[int]uint64{}
	// states[i] is the keyspace after the i-th completed operation;
	// mustSurvive is the latest state known committed before the crash.
	states := []map[int]uint64{{}}
	mustSurvive := 0
	for i := 0; i < cfg.OpsPerRound; i++ {
		next := map[int]uint64{}
		for k, v := range state {
			next[k] = v
		}
		if rrng.Intn(5) < 2 { // cross-shard batch
			b := &kvstore.Batch{}
			n := 3 + rrng.Intn(4)
			hit := map[int]bool{}
			for o := 0; o < n; o++ {
				k := rrng.Intn(cfg.Keys)
				hit[st.ShardFor(key(k))] = true
				if rrng.Intn(4) == 0 {
					b.Delete(key(k))
					delete(next, k)
				} else {
					v := rrng.Uint64()
					b.Put(key(k), []byte(fmt.Sprintf("%d", v)))
					next[k] = v
				}
			}
			if err := st.Write(b); err != nil {
				return fmt.Errorf("round %d op %d (batch): %w", round, i, err)
			}
			if len(hit) > 1 {
				rep.XBatches++
			}
		} else { // single-key op
			k := rrng.Intn(cfg.Keys)
			if rrng.Intn(4) == 0 {
				if err := st.Delete(key(k)); err != nil {
					return fmt.Errorf("round %d op %d (del): %w", round, i, err)
				}
				delete(next, k)
			} else {
				v := rrng.Uint64()
				if err := st.Put(key(k), []byte(fmt.Sprintf("%d", v))); err != nil {
					return fmt.Errorf("round %d op %d (put): %w", round, i, err)
				}
				next[k] = v
			}
		}
		state = next
		states = append(states, next)
		if !ms.Captured() {
			mustSurvive = i + 1
		}
	}

	imgs, ev := ms.Images()
	if imgs != nil {
		rep.MidOpCrashes++
	} else {
		imgs = ms.CaptureNow(policy)
		ev = ms.Events()
	}
	ms.Detach()
	for _, d := range devs {
		accumDevice(cfg.Metrics, d)
	}
	chain := []CrashPoint{{Event: ev}}

	// Phase 2: the crash chain. Reopen each image set under a freshly armed
	// multi-scheduler; a crash during Reopen (shard recoveries plus the
	// coordinator's in-doubt resolution) yields the next link.
	var final *shard.Store
	for {
		rdevs := make([]*pmem.Device, len(imgs))
		for i, img := range imgs {
			rdevs[i] = pmem.FromImage(img, pmem.ModelDRAM)
		}
		pending := xshardPending(imgs)
		ms2 := pmem.NewMultiScheduler(rdevs...)
		ms2.SetBudget(1)
		if len(chain) < cfg.ChainDepth {
			ms2.Arm(uint64(1+rrng.Intn(128)), randPolicy(rrng))
		}
		ropts := xshardOpts(cfg)
		pauds2, auds2 := xshardAttach(rdevs, ms2, cfg.Audit)
		ropts.Auditors = pauds2
		// Chain-crashed reopens keep their auditors in the round's pool too:
		// a violation detected before the capture fired is still a violation.
		roundAuds = append(roundAuds, auds2...)
		st2, err := shard.Reopen(rdevs, ropts)
		if ms2.Captured() {
			imgs2, ev2 := ms2.Images()
			ms2.Detach()
			for _, d := range rdevs {
				accumDevice(cfg.Metrics, d)
			}
			rep.ChainCrashes++
			if pending {
				rep.RecoveryCrashes++
			}
			chain = append(chain, CrashPoint{Event: ev2, DuringOpen: true, RecoveryPending: pending})
			imgs = imgs2
			continue
		}
		ms2.Detach()
		if err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("reopen failed: %v", err)}
		}
		// Detach cleared the composed bundles; keep the recovered store's
		// auditors alone in place for validation and close.
		for _, a := range auds2 {
			a.Attach()
		}
		final = st2
		break
	}
	stats := final.Stats()
	rep.Replays += stats.XReplays
	rep.Rollbacks += stats.XRollback

	// Phase 3: validate. The recovered store must equal the keyspace after
	// some completed operation >= mustSurvive — exact-prefix matching makes
	// a half-applied cross-shard batch (or any lost acknowledged write) a
	// round failure, since a partial state matches no prefix.
	matched := -1
	for k := len(states) - 1; k >= mustSurvive; k-- {
		if xshardStateMatches(final, states[k], cfg.Keys, key) {
			matched = k
			break
		}
	}
	if matched < 0 {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"recovered state matches no committed prefix in [%d,%d]", mustSurvive, len(states)-1)}
	}
	if n := final.Len(); n != len(states[matched]) {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"recovered store has %d pairs, matched prefix implies %d", n, len(states[matched]))}
	}
	if matched < len(states)-1 {
		rep.RolledBack++
	} else {
		rep.CarriedForward++
	}

	// The recovered store must keep working, including cross-shard commits.
	if err := final.Put(key(0), []byte("probe")); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("recovered store unusable: %v", err)}
	}
	pb := &kvstore.Batch{}
	for k := 0; k < cfg.Keys && k < 8; k++ {
		pb.Put(key(k), []byte("probe-batch"))
	}
	if err := final.Write(pb); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("post-recovery batch failed: %v", err)}
	}
	if v, err := final.Get(key(1)); err != nil || string(v) != "probe-batch" {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("post-recovery batch not readable: %q err=%v", v, err)}
	}

	// Phase 4 (audit rounds): close is the final durability claim, then any
	// violation across the round's auditors fails it.
	if cfg.Audit {
		if err := final.Close(); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("close after recovery: %v", err)}
		}
		for _, d := range final.Devices() {
			accumDevice(cfg.Metrics, d)
		}
		var total uint64
		var first *audit.Violation
		for _, a := range roundAuds {
			total += a.ViolationCount()
			if first == nil {
				if vs := a.Violations(); len(vs) > 0 {
					first = &vs[0]
				}
			}
		}
		if total > 0 {
			rep.AuditViolations += total
			reason := fmt.Sprintf("auditor: %d durability violation(s)", total)
			if first != nil {
				reason += fmt.Sprintf("; first: [%s] at %s: line %d off %d state=%s seq=%d engine=%s tx=%s site=%s",
					first.Kind, first.Point, first.Line, first.Off, first.State, first.Seq,
					first.Engine, first.TxKind, first.Site)
			}
			return &Failure{Chain: chain, Reason: reason}
		}
	}
	return nil
}

func xshardStateMatches(st *shard.Store, want map[int]uint64, keys int, key func(int) []byte) bool {
	for k := 0; k < keys; k++ {
		wantV, ok := want[k]
		got, err := st.Get(key(k))
		if ok != (err == nil) {
			return false
		}
		if ok && string(got) != fmt.Sprintf("%d", wantV) {
			return false
		}
	}
	return true
}
