package crashtest

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// This file is the media-fault campaign: where crashtest.Run asks "does a
// power failure lose acknowledged data?", RunFaults asks "does DAMAGED
// media get served as if it were good?". Each round chains the three media
// failure modes through one engine:
//
//	crash with torn writes -> recover -> validate a committed prefix
//	bit rot at rest        -> reopen  -> typed refusal OR exact data
//	sticky/transient lines -> read    -> typed error OR correct data
//
// The invariant under test is the asymmetric one from the durability
// contract: losing data at a crash and SAYING so is acceptable (that is
// what typed corruption errors and shard quarantine are for); serving
// wrong bytes as if they were acknowledged state is never acceptable. A
// round fails on any silent divergence, any untyped error, and any
// durability violation the auditor records along the way.

// FaultConfig parameterizes a media-fault campaign.
type FaultConfig struct {
	// Rounds is the number of tear/rot/media chains per engine.
	Rounds int
	// Seed makes campaigns reproducible (rounds are single-threaded, so a
	// seed pins the campaign exactly).
	Seed int64
	// Keys bounds the keyspace (default 48).
	Keys int
	// TxPerRound bounds committed transactions before the torn crash
	// (default 10).
	TxPerRound int
	// Engines selects the subjects by name; empty or "all" means every one.
	Engines []string
	// Metrics, when non-nil, accumulates campaign totals: the pmem_*
	// counters over every device created plus fault_* campaign counters.
	Metrics *obs.Registry
	// Audit attaches a durability auditor to every device the campaign
	// creates; any violation fails the round, and media-fault forensics
	// (fault offset plus last-writer attribution) accumulate in the
	// auditors' reports.
	Audit bool
}

func (cfg *FaultConfig) applyDefaults() {
	if cfg.Keys == 0 {
		cfg.Keys = 48
	}
	if cfg.TxPerRound == 0 {
		cfg.TxPerRound = 10
	}
}

// FaultReport summarizes one engine's media-fault campaign.
type FaultReport struct {
	Engine string `json:"engine"`
	Rounds int    `json:"rounds"`
	// TornCrashes counts rounds whose torn-write crash interrupted the
	// workload (the rest crashed post-commit, at a quiescent point).
	TornCrashes int `json:"torn_crashes"`
	// RotDetected counts rot reopens refused with a typed corruption error
	// (lost-and-reported); RotBenign counts reopens that succeeded and then
	// validated bit-exact (the rot landed in dead or reconstructible bytes).
	// Every other outcome of a rot reopen is a Failure.
	RotDetected int `json:"rot_detected"`
	RotBenign   int `json:"rot_benign"`
	// MediaTrips counts media-fault trips across the round's devices.
	MediaTrips uint64 `json:"media_trips"`
	// TransientRetries counts probe attempts beyond the first needed to
	// read through transient faults.
	TransientRetries int `json:"transient_retries"`
	// AuditViolations counts durability violations (any nonzero count also
	// fails the offending round).
	AuditViolations uint64 `json:"audit_violations,omitempty"`
}

// RunFaults executes one media-fault campaign per selected engine,
// returning the per-engine reports and the first Failure found (nil when
// every round holds the corrupt-is-never-served invariant). Reports for
// engines that completed before the failure are still returned.
func RunFaults(cfg FaultConfig) ([]FaultReport, error) {
	cfg.applyDefaults()
	tgts, err := selectTargets(cfg.Engines)
	if err != nil {
		return nil, err
	}
	var reports []FaultReport
	var failure error
	for _, tgt := range tgts {
		rep, err := runFaultCampaign(cfg, tgt)
		reports = append(reports, rep)
		if err != nil {
			failure = err
			break
		}
	}
	if r := cfg.Metrics; r != nil {
		for _, rep := range reports {
			r.Counter("fault_rounds_total").Add(uint64(rep.Rounds))
			r.Counter("fault_torn_crash_total").Add(uint64(rep.TornCrashes))
			r.Counter("fault_rot_detected_total").Add(uint64(rep.RotDetected))
			r.Counter("fault_rot_benign_total").Add(uint64(rep.RotBenign))
			r.Counter("fault_trip_total").Add(rep.MediaTrips)
			r.Counter("fault_transient_retry_total").Add(uint64(rep.TransientRetries))
		}
	}
	return reports, failure
}

func runFaultCampaign(cfg FaultConfig, tgt target) (FaultReport, error) {
	rep := FaultReport{Engine: tgt.name}
	rng := rand.New(rand.NewSource(engineSeed(cfg.Seed, tgt.name)))
	for round := 0; round < cfg.Rounds; round++ {
		roundSeed := rng.Int63()
		if err := runFaultRound(cfg, tgt, round, roundSeed, &rep); err != nil {
			if f, ok := err.(*Failure); ok {
				f.Engine = tgt.name
				f.Round = round
				f.CampaignSeed = cfg.Seed
				f.RoundSeed = roundSeed
				f.Threads = 1
			}
			return rep, err
		}
		rep.Rounds++
	}
	return rep, nil
}

// typedCorrupt reports whether err is one of the typed refusals an engine
// is allowed — required — to answer damaged media with.
func typedCorrupt(err error) bool {
	return errors.Is(err, ptm.ErrCorruptHeader) ||
		errors.Is(err, ptm.ErrCorruptLog) ||
		errors.Is(err, ptm.ErrCorruptPayload) ||
		errors.Is(err, pmem.ErrMediaFault)
}

// attachPlain installs a bare auditor (no crash scheduler) on dev and hands
// it back both as the engine argument and for the round's violation sweep.
func (ra *roundAudit) attachPlain(dev *pmem.Device) (*audit.Auditor, ptm.Auditor) {
	if !ra.enabled {
		return nil, nil
	}
	a := audit.New(dev, audit.Options{})
	ra.auds = append(ra.auds, a)
	dev.SetHooks(a.Hooks())
	return a, a
}

// randomOps builds a small deterministic transaction for the fault round's
// single worker, and apply folds it into the model on commit.
func randomOps(rng *rand.Rand, keys int) []op {
	ops := make([]op, 1+rng.Intn(4))
	for i := range ops {
		ops[i] = op{
			del: rng.Intn(4) == 0,
			k:   uint64(rng.Intn(keys)),
			v:   rng.Uint64(),
		}
	}
	return ops
}

func apply(model map[uint64]uint64, ops []op) {
	for _, o := range ops {
		if o.del {
			delete(model, o.k)
		} else {
			model[o.k] = o.v
		}
	}
}

// exactCheck requires the store to agree with the model bit-for-bit: every
// key present with the exact value, every absent key absent, and the size
// to match. Any divergence on a successfully opened store is the campaign's
// terminal sin — corrupt state served as if it were good.
func exactCheck(st store, model map[uint64]uint64, keys int) error {
	for k := uint64(0); k < uint64(keys); k++ {
		want, ok := model[k]
		got, found, err := st.get(k)
		if err != nil {
			return fmt.Errorf("get key %d: %v", k, err)
		}
		if found != ok || (ok && got != want) {
			return fmt.Errorf("key %d: got (%d, %v), want (%d, %v)", k, got, found, want, ok)
		}
	}
	n, err := st.size()
	if err != nil {
		return fmt.Errorf("size: %v", err)
	}
	if n != len(model) {
		return fmt.Errorf("store has %d pairs, model has %d", n, len(model))
	}
	return nil
}

// rotImage flips nBits random single bits of img within the target's
// detectable ranges (the whole image for twin-copy engines).
func rotImage(rng *rand.Rand, tgt target, img []byte, nBits int) {
	ranges := [][2]int{{0, len(img)}}
	if tgt.rotable != nil {
		ranges = tgt.rotable(len(img))
	}
	total := 0
	for _, r := range ranges {
		total += r[1] - r[0]
	}
	for i := 0; i < nBits; i++ {
		off := rng.Intn(total)
		for _, r := range ranges {
			if off < r[1]-r[0] {
				img[r[0]+off] ^= 1 << rng.Intn(8)
				break
			}
			off -= r[1] - r[0]
		}
	}
}

func runFaultRound(cfg FaultConfig, tgt target, round int, roundSeed int64, rep *FaultReport) error {
	rrng := rand.New(rand.NewSource(roundSeed))
	ra := &roundAudit{enabled: cfg.Audit}

	// Phase 1: workload with one armed crash under a tearing adversary.
	// Alternate rounds exercise the two tear shapes: an 8-byte-aligned
	// prefix of each dirty line (the paper's atomicity floor) and
	// independent per-word coin flips.
	st, err := tgt.fresh()
	if err != nil {
		return fmt.Errorf("building fresh %s store: %w", tgt.name, err)
	}
	sched := pmem.NewScheduler(st.dev())
	sched.SetBudget(1)
	aud, trig := ra.attach(st.dev(), sched)
	if aud != nil {
		st.setAudit(aud)
	}
	policy := pmem.CrashPolicy{
		QueuedPersistProb: rrng.Float64(),
		EvictDirtyProb:    rrng.Float64() * 0.5,
		TearPrefix:        round%2 == 0,
		TearWords:         round%2 == 1,
		Rand:              rand.New(rand.NewSource(rrng.Int63())),
	}
	sched.Arm(uint64(1+rrng.Intn(cfg.TxPerRound*24+32)), policy)

	h := &workerHistory{states: []map[uint64]uint64{{}}}
	for k := uint64(0); k < uint64(cfg.Keys); k++ {
		h.keys = append(h.keys, k)
	}
	nTx := 1 + rrng.Intn(cfg.TxPerRound)
	for i := 0; i < nTx; i++ {
		ops := randomOps(rrng, cfg.Keys)
		if err := st.update(ops); err != nil {
			return fmt.Errorf("%s workload tx %d: %w", tgt.name, i, err)
		}
		next := map[uint64]uint64{}
		for k, v := range h.states[i] {
			next[k] = v
		}
		apply(next, ops)
		h.states = append(h.states, next)
		if !sched.Captured() {
			h.mustSurvive = i + 1
		}
	}
	img, ev := sched.Image()
	if img != nil {
		rep.TornCrashes++
	} else {
		img = sched.CaptureNow(policy)
		ev = sched.Events()
	}
	trig.finish(img)
	sched.Detach()
	accumDevice(cfg.Metrics, st.dev())
	chain := []CrashPoint{{Event: ev}}

	// Phase 2: recover the torn image and validate a committed prefix.
	// Tears at crash points respect 8-byte atomicity, the medium the
	// engines are designed for, so recovery must SUCCEED here — typed
	// refusals are for at-rest damage, phases 3 and 4.
	dev2 := pmem.FromImage(img, pmem.ModelDRAM)
	_, audArg := ra.attachPlain(dev2)
	st2, err := tgt.reopen(dev2, audArg)
	if err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("torn-crash reopen failed: %v", err)}
	}
	if err := st2.check(); err != nil {
		return &Failure{Chain: chain, Reason: err.Error()}
	}
	k, ok := matchPrefix(st2, h)
	if !ok {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"recovered keys match no committed prefix in [%d,%d]", h.mustSurvive, len(h.states)-1)}
	}
	model := map[uint64]uint64{}
	for key, v := range h.states[k] {
		model[key] = v
	}
	// The recovered store must keep working; fold a couple more committed
	// transactions into the model so later phases validate fresher state.
	for i := 0; i < 2; i++ {
		ops := randomOps(rrng, cfg.Keys)
		if err := st2.update(ops); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("post-recovery update: %v", err)}
		}
		apply(model, ops)
	}

	// A quiescent, fully persisted image of the recovered state is the
	// substrate for the at-rest phases.
	st2.dev().PersistAll()
	clean := st2.dev().Persisted()
	accumDevice(cfg.Metrics, st2.dev())
	if err := st2.close(); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("close after recovery: %v", err)}
	}

	// Phase 3: bit rot at rest. Flip a few bits of the clean image within
	// the engine's detectable ranges and reopen. Exactly two outcomes are
	// acceptable: a typed corruption refusal (rot detected, data lost AND
	// reported), or a successful open that then validates bit-exact (rot
	// landed in dead or twin-reconstructible bytes). Opening fine and
	// serving diverged data fails the campaign.
	rot := append([]byte(nil), clean...)
	rotImage(rrng, tgt, rot, 1+rrng.Intn(8))
	dev3 := pmem.FromImage(rot, pmem.ModelDRAM)
	_, audArg3 := ra.attachPlain(dev3)
	st3, err := tgt.reopen(dev3, audArg3)
	switch {
	case err != nil && typedCorrupt(err):
		rep.RotDetected++
	case err != nil:
		return &Failure{Chain: chain, Reason: fmt.Sprintf("rot reopen failed with untyped error: %v", err)}
	default:
		if err := st3.check(); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("rot survived reopen but %v", err)}
		}
		if err := exactCheck(st3, model, cfg.Keys); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("corrupt-and-served: rot survived reopen but %v", err)}
		}
		rep.RotBenign++
		if err := st3.close(); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("close after benign rot: %v", err)}
		}
		accumDevice(cfg.Metrics, dev3)
	}

	// Phase 4: live media faults. Reopen the clean image and mark one user
	// word's cache line bad — in every copy the engine may read — first
	// transient, then sticky. Reads and updates over the bad line must
	// answer the typed pmem.ErrMediaFault (the trip-delta precedence under
	// test: a corrupted load must not be laundered into a plausible engine
	// error or, worse, a clean result). The probe targets a controlled raw
	// offset so no corrupted pointer is ever dereferenced.
	dev4 := pmem.FromImage(clean, pmem.ModelDRAM)
	a4, audArg4 := ra.attachPlain(dev4)
	st4, err := tgt.reopen(dev4, audArg4)
	if err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("clean image reopen failed: %v", err)}
	}
	if a4 != nil {
		st4.setAudit(a4)
	}
	p := uint64(64 + 8*rrng.Intn(64)) // within the root array: always mapped, below the watermark
	expected, err := st4.probe(p)
	if err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("probe of healthy line: %v", err)}
	}

	bases := st4.dataOffsets()
	for _, b := range bases {
		dev4.MarkBad(b+int(p), true)
	}
	served := false
	for attempt := 0; attempt <= len(bases); attempt++ {
		v, err := st4.probe(p)
		if err == nil {
			if v != expected {
				return &Failure{Chain: chain, Reason: fmt.Sprintf(
					"transient fault: read served %#x, want %#x", v, expected)}
			}
			served = true
			break
		}
		if !errors.Is(err, pmem.ErrMediaFault) {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("transient fault: untyped error %v", err)}
		}
		rep.TransientRetries++
	}
	if !served {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"transient fault never cleared across %d retries", len(bases)+1)}
	}

	for _, b := range bases {
		dev4.MarkBad(b+int(p), false)
	}
	if v, err := st4.probe(p); err == nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"corrupt-and-served: sticky fault read returned %#x with no error", v)}
	} else if !errors.Is(err, pmem.ErrMediaFault) {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("sticky fault read: untyped error %v", err)}
	}
	if err := st4.probeUpdate(p); err == nil {
		return &Failure{Chain: chain, Reason: "corrupt-and-served: update over a sticky fault committed cleanly"}
	} else if !errors.Is(err, pmem.ErrMediaFault) {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("sticky fault update: untyped error %v", err)}
	}

	// After the (simulated) media repair the store must be whole: exact
	// state, and still writable.
	rep.MediaTrips += dev4.FaultsTripped()
	dev4.ClearFaults()
	if err := exactCheck(st4, model, cfg.Keys); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("state diverged after fault episode: %v", err)}
	}
	ops := randomOps(rrng, cfg.Keys)
	if err := st4.update(ops); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("update after fault episode: %v", err)}
	}
	apply(model, ops)
	if err := exactCheck(st4, model, cfg.Keys); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("post-repair write not readable: %v", err)}
	}
	accumDevice(cfg.Metrics, dev4)

	// Phase 5: close is the final durability claim; then (audit rounds)
	// any violation any of the round's auditors recorded — workload, torn
	// recovery, rot reopen, or the fault episode — fails the round.
	if err := st4.close(); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("close after fault episode: %v", err)}
	}
	if n, v := ra.violations(); n > 0 {
		rep.AuditViolations += n
		reason := fmt.Sprintf("auditor: %d durability violation(s)", n)
		if v != nil {
			reason += fmt.Sprintf("; first: [%s] at %s: line %d off %d state=%s seq=%d engine=%s tx=%s site=%s",
				v.Kind, v.Point, v.Line, v.Off, v.State, v.Seq, v.Engine, v.TxKind, v.Site)
		}
		return &Failure{Chain: chain, Reason: reason}
	}
	return nil
}
