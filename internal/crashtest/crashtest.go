// Package crashtest runs randomized crash-recovery campaigns against the
// Romulus engines: random transaction workloads on a persistent hash map,
// a simulated power failure at a random persistence event under a random
// adversary policy, recovery, and full validation of the recovered state
// against a tracked model. It is the repository's long-running torture
// harness (cmd/romulus-crashtest) and is also exercised by the test suite
// at small scale.
package crashtest

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// Config parameterizes a campaign.
type Config struct {
	// Rounds is the number of build/crash/recover cycles.
	Rounds int
	// Seed makes campaigns reproducible.
	Seed int64
	// Keys bounds the keyspace (default 64).
	Keys int
	// TxPerRound bounds committed transactions before the crash (default 20).
	TxPerRound int
}

// Report summarizes a campaign.
type Report struct {
	Rounds         int
	CrashedMidTx   int // crashes that landed inside the final transaction
	RolledBack     int // recoveries that rolled the final transaction back
	CarriedForward int // recoveries where the final transaction survived
}

// Run executes the campaign, returning an error describing the first
// safety violation found (nil if all rounds validate).
func Run(cfg Config) (Report, error) {
	if cfg.Keys == 0 {
		cfg.Keys = 64
	}
	if cfg.TxPerRound == 0 {
		cfg.TxPerRound = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rep Report
	variants := []core.Variant{core.Rom, core.RomLog, core.RomLR}
	for round := 0; round < cfg.Rounds; round++ {
		v := variants[rng.Intn(len(variants))]
		if err := runRound(rng, cfg, v, &rep); err != nil {
			return rep, fmt.Errorf("round %d (%v, seed %d): %w", round, v, cfg.Seed, err)
		}
		rep.Rounds++
	}
	return rep, nil
}

// mutate applies a random operation to both the persistent map and the
// model.
func mutate(tx ptm.Tx, m *pstruct.HashMap, model map[uint64]uint64, rng *rand.Rand, keys int) error {
	k := uint64(rng.Intn(keys))
	if rng.Intn(3) == 0 {
		if _, err := m.Remove(tx, k); err != nil {
			return err
		}
		delete(model, k)
		return nil
	}
	val := rng.Uint64()
	if _, err := m.Put(tx, k, val); err != nil {
		return err
	}
	model[k] = val
	return nil
}

func runRound(rng *rand.Rand, cfg Config, v core.Variant, rep *Report) error {
	e, err := core.New(1<<20, core.Config{Variant: v})
	if err != nil {
		return err
	}
	var m *pstruct.HashMap
	if err := e.Update(func(tx ptm.Tx) error {
		mm, err := pstruct.NewHashMap(tx, 0)
		m = mm
		return err
	}); err != nil {
		return err
	}
	model := map[uint64]uint64{}
	// Committed prefix.
	nTx := 1 + rng.Intn(cfg.TxPerRound)
	for i := 0; i < nTx; i++ {
		ops := 1 + rng.Intn(5)
		if err := e.Update(func(tx ptm.Tx) error {
			for o := 0; o < ops; o++ {
				if err := mutate(tx, m, model, rng, cfg.Keys); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	// Final transaction, crashed at a random persistence event under a
	// random policy.
	policy := pmem.CrashPolicy{
		QueuedPersistProb: rng.Float64(),
		EvictDirtyProb:    rng.Float64() * 0.5,
		TearWords:         rng.Intn(2) == 0,
		Rand:              rand.New(rand.NewSource(rng.Int63())),
	}
	crashAt := uint64(1 + rng.Intn(60))
	dev := e.Device()
	var img []byte
	var events uint64
	hook := func() {
		events++
		if img == nil && events == crashAt {
			img = dev.CrashImage(policy)
		}
	}
	dev.SetStoreHook(func(uint64) { hook() })
	dev.SetPwbHook(func(uint64) { hook() })
	dev.SetFenceHook(hook)
	modelAfter := map[uint64]uint64{}
	for k, val := range model {
		modelAfter[k] = val
	}
	finalOps := 1 + rng.Intn(8)
	if err := e.Update(func(tx ptm.Tx) error {
		for o := 0; o < finalOps; o++ {
			if err := mutate(tx, m, modelAfter, rng, cfg.Keys); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	dev.SetStoreHook(nil)
	dev.SetPwbHook(nil)
	dev.SetFenceHook(nil)
	if img == nil {
		// The transaction finished before the chosen event: crash now,
		// post-commit.
		img = dev.CrashImage(policy)
	} else {
		rep.CrashedMidTx++
	}

	// Recover and validate: the map must equal the pre- or post-final-tx
	// model exactly.
	re, err := core.Open(pmem.FromImage(img, pmem.ModelDRAM), core.Config{Variant: v})
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	if err := re.CheckHeap(); err != nil {
		return fmt.Errorf("heap after recovery: %w", err)
	}
	if off := re.Verify(); off >= 0 {
		return fmt.Errorf("twin copies diverge at offset %d after recovery", off)
	}
	rm := pstruct.AttachHashMap(0)
	var matchBefore, matchAfter bool
	err = re.Read(func(tx ptm.Tx) error {
		matchBefore = mapEquals(tx, rm, model)
		matchAfter = mapEquals(tx, rm, modelAfter)
		return nil
	})
	if err != nil {
		return err
	}
	switch {
	case matchAfter:
		rep.CarriedForward++
	case matchBefore:
		rep.RolledBack++
	default:
		return fmt.Errorf("recovered state matches neither pre- nor post-crash model (crash at event %d, policy %+v)", crashAt, policy)
	}
	// The recovered engine must keep working.
	if err := re.Update(func(tx ptm.Tx) error {
		_, err := rm.Put(tx, 0, 1)
		return err
	}); err != nil {
		return fmt.Errorf("recovered engine unusable: %w", err)
	}
	return nil
}

func mapEquals(tx ptm.Tx, m *pstruct.HashMap, model map[uint64]uint64) bool {
	if m.Len(tx) != len(model) {
		return false
	}
	equal := true
	m.Range(tx, func(k, v uint64) bool {
		if model[k] != v {
			equal = false
			return false
		}
		return true
	})
	return equal
}
