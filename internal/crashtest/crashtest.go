// Package crashtest runs randomized crash-chain campaigns against every
// engine in the repository: the three Romulus variants, the undo-log and
// redo-log baselines, and the RomulusDB key-value store.
//
// Each round drives a concurrent multi-goroutine workload over a persistent
// map, captures a simulated power failure at a random persistence event
// under a random adversary policy, then reopens the crash image. Reopening
// itself runs under an armed crash scheduler, so the next failure lands
// *inside* recovery — crash → partial recovery → crash again, as deep as the
// configured chain. The finally recovered state is validated against
// per-worker transaction histories: each worker's keys must reflect exactly
// a durable prefix of that worker's committed transactions.
//
// Violations surface as a structured Failure carrying everything needed to
// replay the round: campaign and round seeds, thread count, and the full
// crash chain (event indices and whether recovery work was pending).
package crashtest

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Config parameterizes a campaign.
type Config struct {
	// Rounds is the number of build/crash/recover cycles per engine.
	Rounds int
	// Seed makes campaigns reproducible (fully deterministic at Threads 1).
	Seed int64
	// Keys bounds the keyspace (default 64).
	Keys int
	// TxPerRound bounds committed transactions per worker before the crash
	// (default 12).
	TxPerRound int
	// Threads is the number of workload goroutines (default 2). Engines
	// whose commit path cannot share the simulated device run with 1.
	Threads int
	// ChainDepth is the maximum crashes per round (default 1): the first
	// lands in the workload, later ones inside recovery itself.
	ChainDepth int
	// Engines selects the subjects by name; empty or "all" means every one.
	Engines []string
	// Metrics, when non-nil, accumulates campaign totals into the registry:
	// the pmem_* counters summed over every device the campaign creates
	// (workload devices plus every reopened crash image) and crash_*
	// counters folded from the per-engine reports. Devices are per-round, so
	// unlike obs.Instrument the counters here are accumulated, not sampled.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one obs.TxEvent per workload transaction
	// (validation reads after recovery are not traced). The sink must be
	// safe for concurrent Emit calls at Threads > 1.
	Trace obs.Sink
	// Audit attaches a durability auditor to every device the campaign
	// creates (workload devices and each reopened crash image), composed
	// with the crash scheduler via pmem.ChainHooks. Any durability
	// violation — a dirty or unfenced line at a commit-marker advance, a
	// durably-claimed line lost at a crash, or one still unflushed at
	// engine close — fails the round. Waste diagnostics accumulate into
	// Metrics as audit_* counters.
	Audit bool
}

func (cfg *Config) applyDefaults() {
	if cfg.Keys == 0 {
		cfg.Keys = 64
	}
	if cfg.TxPerRound == 0 {
		cfg.TxPerRound = 12
	}
	if cfg.Threads == 0 {
		cfg.Threads = 2
	}
	if cfg.ChainDepth == 0 {
		cfg.ChainDepth = 1
	}
}

// Report summarizes one engine's campaign.
type Report struct {
	Engine string `json:"engine"`
	Rounds int    `json:"rounds"`
	// Threads is the worker count actually used (engines that cannot share
	// the device run with 1 regardless of Config.Threads).
	Threads int `json:"threads"`
	// MidTxCrashes counts rounds whose first crash interrupted the workload
	// (the rest crashed post-commit, at a quiescent point).
	MidTxCrashes int `json:"mid_tx_crashes"`
	// RolledBack and CarriedForward count workers whose recovered prefix
	// excluded/included their final committed transaction.
	RolledBack     int `json:"rolled_back"`
	CarriedForward int `json:"carried_forward"`
	// ChainCrashes counts crashes beyond the first, i.e. crashes injected
	// while an engine was reopening a crash image.
	ChainCrashes int `json:"chain_crashes"`
	// RecoveryCrashes counts chain crashes that interrupted real recovery
	// work (the image had an in-flight transaction or non-empty log).
	RecoveryCrashes int `json:"recovery_crashes"`
	// AuditViolations counts durability violations detected by the auditor
	// (only populated with Config.Audit; any nonzero count also fails the
	// offending round).
	AuditViolations uint64 `json:"audit_violations,omitempty"`
	// AuditWaste aggregates the auditor's waste diagnostics over the
	// campaign (only populated with Config.Audit).
	AuditWaste audit.Waste `json:"audit_waste,omitempty"`
}

// CrashPoint records one injected failure of a round's crash chain.
type CrashPoint struct {
	// Event is the persistence-event index the image was captured at.
	Event uint64 `json:"event"`
	// DuringOpen is true for chain crashes injected while reopening.
	DuringOpen bool `json:"during_open"`
	// RecoveryPending is true when the image being reopened required real
	// recovery work.
	RecoveryPending bool `json:"recovery_pending"`
}

// Failure describes a safety violation with everything needed to reproduce
// it. It implements error.
type Failure struct {
	Engine       string       `json:"engine"`
	Round        int          `json:"round"`
	CampaignSeed int64        `json:"campaign_seed"`
	RoundSeed    int64        `json:"round_seed"`
	Threads      int          `json:"threads"`
	Chain        []CrashPoint `json:"chain"`
	Reason       string       `json:"reason"`
}

func (f *Failure) Error() string {
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Sprintf("crashtest failure: %s round %d: %s", f.Engine, f.Round, f.Reason)
	}
	return "crashtest failure: " + string(b)
}

// Run executes one campaign per selected engine, returning the per-engine
// reports and the first Failure found (nil if every round validates).
// Reports for engines that completed before the failure are still returned.
func Run(cfg Config) ([]Report, error) {
	cfg.applyDefaults()
	tgts, err := selectTargets(cfg.Engines)
	if err != nil {
		return nil, err
	}
	var reports []Report
	var failure error
	for _, tgt := range tgts {
		rep, err := runCampaign(cfg, tgt)
		reports = append(reports, rep)
		if err != nil {
			failure = err
			break
		}
	}
	if r := cfg.Metrics; r != nil {
		for _, rep := range reports {
			r.Counter("crash_rounds_total").Add(uint64(rep.Rounds))
			r.Counter("crash_mid_tx_total").Add(uint64(rep.MidTxCrashes))
			r.Counter("crash_chain_total").Add(uint64(rep.ChainCrashes))
			r.Counter("crash_recovery_crash_total").Add(uint64(rep.RecoveryCrashes))
			r.Counter("crash_rolled_back_total").Add(uint64(rep.RolledBack))
			r.Counter("crash_carried_forward_total").Add(uint64(rep.CarriedForward))
		}
	}
	return reports, failure
}

// accumDevice folds one device's lifetime statistics into the campaign
// registry. Crash-test devices live for a fraction of a round, so campaign
// totals must be accumulated device by device rather than collected from a
// live device at snapshot time.
func accumDevice(r *obs.Registry, dev *pmem.Device) {
	if r == nil {
		return
	}
	s := dev.Stats()
	r.Counter("pmem_store_total").Add(s.Stores)
	r.Counter("pmem_store_bytes_total").Add(s.BytesStored)
	r.Counter("pmem_pwb_total").Add(s.Pwbs)
	r.Counter("pmem_pfence_total").Add(s.Pfences)
	r.Counter("pmem_psync_total").Add(s.Psyncs)
	r.Counter("pmem_fence_total").Add(s.Pfences + s.Psyncs)
	r.Counter("pmem_line_persisted_total").Add(s.LinesPersisted)
	r.Counter("pmem_persisted_bytes_total").Add(s.BytesPersisted)
}

// accumAudit folds one auditor's lifetime counters into the campaign
// registry and the per-engine report, following the same accumulation
// discipline as accumDevice (auditors are per-device, devices per-round).
func accumAudit(r *obs.Registry, rep *Report, a *audit.Auditor) {
	if a == nil {
		return
	}
	t := a.Totals()
	rep.AuditWaste.PwbClean += t.PwbClean
	rep.AuditWaste.PwbRequeued += t.PwbRequeued
	rep.AuditWaste.StoreQueued += t.StoreQueued
	rep.AuditWaste.FenceNoop += t.FenceNoop
	if r == nil {
		return
	}
	r.Counter("audit_pwb_clean_total").Add(t.PwbClean)
	r.Counter("audit_pwb_requeued_total").Add(t.PwbRequeued)
	r.Counter("audit_store_queued_total").Add(t.StoreQueued)
	r.Counter("audit_fence_noop_total").Add(t.FenceNoop)
	r.Counter("audit_durable_check_total").Add(t.DurableChecks)
	r.Counter("audit_violation_total").Add(t.Violations)
}

// forensicTrigger snapshots an auditor's crash forensics at the moment the
// scheduler captures an image. It rides as the last bundle in the hook
// chain: the auditor's shadow is already current and the scheduler has just
// (maybe) captured, so checking at each fence diffs the views at the exact
// failure point, before any later durable point can move the claim line.
// finish is the harness-side fallback for captures not followed by a fence
// (quiescent CaptureNow, or a crash landing on a trailing store).
type forensicTrigger struct {
	sched *pmem.Scheduler
	aud   *audit.Auditor

	mu   sync.Mutex
	done bool
}

func (f *forensicTrigger) hooks() *pmem.Hooks {
	return &pmem.Hooks{Fence: f.onFence}
}

func (f *forensicTrigger) onFence() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	if img, _ := f.sched.Image(); img != nil {
		f.done = true
		f.aud.Forensics(img)
	}
}

// finish runs the forensic diff for img unless a fence already did.
func (f *forensicTrigger) finish(img []byte) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done && img != nil {
		f.done = true
		f.aud.Forensics(img)
	}
}

// roundAudit owns one round's auditors (one per device: the workload device
// plus every reopened crash image).
type roundAudit struct {
	enabled bool
	auds    []*audit.Auditor
}

// attach builds an auditor for dev and installs the round's hook
// composition — auditor, then scheduler, then forensic trigger — replacing
// the scheduler-only bundle NewScheduler installed. Returns nils when
// auditing is off (the scheduler's own bundle stays in place).
func (ra *roundAudit) attach(dev *pmem.Device, sched *pmem.Scheduler) (*audit.Auditor, *forensicTrigger) {
	if !ra.enabled {
		return nil, nil
	}
	a := audit.New(dev, audit.Options{})
	ra.auds = append(ra.auds, a)
	trig := &forensicTrigger{sched: sched, aud: a}
	dev.SetHooks(pmem.ChainHooks(a.Hooks(), sched.Hooks(), trig.hooks()))
	return a, trig
}

// violations sums detected violations across the round's auditors and
// returns the first retained record for diagnostics.
func (ra *roundAudit) violations() (uint64, *audit.Violation) {
	var total uint64
	var first *audit.Violation
	for _, a := range ra.auds {
		total += a.ViolationCount()
		if first == nil {
			if vs := a.Violations(); len(vs) > 0 {
				first = &vs[0]
			}
		}
	}
	return total, first
}

// engineSeed derives a per-engine stream so campaigns are reproducible
// independently of which engines are selected.
func engineSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

func runCampaign(cfg Config, tgt target) (Report, error) {
	threads := cfg.Threads
	if !tgt.concurrent {
		threads = 1
	}
	if threads > cfg.Keys {
		threads = cfg.Keys
	}
	rep := Report{Engine: tgt.name, Threads: threads}
	rng := rand.New(rand.NewSource(engineSeed(cfg.Seed, tgt.name)))
	for round := 0; round < cfg.Rounds; round++ {
		roundSeed := rng.Int63()
		if err := runRound(cfg, tgt, threads, round, roundSeed, &rep); err != nil {
			if f, ok := err.(*Failure); ok {
				f.Engine = tgt.name
				f.Round = round
				f.CampaignSeed = cfg.Seed
				f.RoundSeed = roundSeed
				f.Threads = threads
			}
			return rep, err
		}
		rep.Rounds++
	}
	return rep, nil
}

func randPolicy(rng *rand.Rand) pmem.CrashPolicy {
	return pmem.CrashPolicy{
		QueuedPersistProb: rng.Float64(),
		EvictDirtyProb:    rng.Float64() * 0.5,
		TearWords:         rng.Intn(2) == 0,
		Rand:              rand.New(rand.NewSource(rng.Int63())),
	}
}

// workerHistory tracks one worker's committed transactions: states[i] is the
// worker's key space after its i-th transaction, and mustSurvive is the
// shortest prefix recovery is allowed to expose (transactions known to have
// committed strictly before the crash fired).
type workerHistory struct {
	keys        []uint64
	states      []map[uint64]uint64
	mustSurvive int
	err         error
}

func runRound(cfg Config, tgt target, threads, round int, roundSeed int64, rep *Report) error {
	rrng := rand.New(rand.NewSource(roundSeed))
	st, err := tgt.fresh()
	if err != nil {
		return fmt.Errorf("building fresh %s store: %w", tgt.name, err)
	}
	if cfg.Trace != nil {
		st.setTrace(cfg.Trace)
	}

	// Phase 1: concurrent workload with one armed crash. The scheduler
	// attaches after the store exists, so the map root is always durable
	// and every captured image reopens through the recovery path, never
	// through format.
	ra := &roundAudit{enabled: cfg.Audit}
	sched := pmem.NewScheduler(st.dev())
	sched.SetBudget(cfg.ChainDepth)
	aud, trig := ra.attach(st.dev(), sched)
	if aud != nil {
		st.setAudit(aud)
	}
	policy := randPolicy(rrng)
	// ~24 persistence events per small transaction; the range deliberately
	// overshoots so some rounds crash post-workload, at a quiescent point.
	crashAt := uint64(1 + rrng.Intn(threads*cfg.TxPerRound*24+32))
	sched.Arm(crashAt, policy)

	workers := make([]*workerHistory, threads)
	for w := 0; w < threads; w++ {
		h := &workerHistory{states: []map[uint64]uint64{{}}}
		for k := uint64(w); k < uint64(cfg.Keys); k += uint64(threads) {
			h.keys = append(h.keys, k)
		}
		workers[w] = h
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		w := w
		h := workers[w]
		wrng := rand.New(rand.NewSource(roundSeed ^ int64(uint64(w+1)*0x9E3779B97F4A7C15)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			nTx := 1 + wrng.Intn(cfg.TxPerRound)
			for i := 0; i < nTx; i++ {
				ops := make([]op, 1+wrng.Intn(4))
				for o := range ops {
					ops[o] = op{
						del: wrng.Intn(4) == 0,
						k:   h.keys[wrng.Intn(len(h.keys))],
						v:   wrng.Uint64(),
					}
				}
				if err := st.update(ops); err != nil {
					h.err = fmt.Errorf("worker %d tx %d: %w", w, i, err)
					return
				}
				next := map[uint64]uint64{}
				for k, v := range h.states[i] {
					next[k] = v
				}
				for _, o := range ops {
					if o.del {
						delete(next, o.k)
					} else {
						next[o.k] = o.v
					}
				}
				h.states = append(h.states, next)
				// Conservative: if the crash has not fired yet, this durable
				// transaction must survive. (If it fires between the commit
				// and this check we merely under-claim, which is safe.)
				if !sched.Captured() {
					h.mustSurvive = i + 1
				}
			}
		}()
	}
	wg.Wait()
	for _, h := range workers {
		if h.err != nil {
			return fmt.Errorf("%s workload: %w", tgt.name, h.err)
		}
	}

	img, ev := sched.Image()
	if img != nil {
		rep.MidTxCrashes++
	} else {
		// Workload outran the armed event: crash now, post-commit.
		img = sched.CaptureNow(policy)
		ev = sched.Events()
	}
	// Forensics fallback for captures with no subsequent fence (quiescent
	// CaptureNow, or a crash landing on the workload's last store).
	trig.finish(img)
	sched.Detach()
	accumDevice(cfg.Metrics, st.dev())
	chain := []CrashPoint{{Event: ev}}

	// Phase 2: the crash chain. Reopen each image under a freshly armed
	// scheduler; if the crash fires during Open, the partially recovered
	// image becomes the next link.
	var final store
	for {
		dev := pmem.FromImage(img, pmem.ModelDRAM)
		pending := tgt.pending(img)
		s2 := pmem.NewScheduler(dev)
		s2.SetBudget(1)
		if len(chain) < cfg.ChainDepth {
			s2.Arm(uint64(1+rrng.Intn(64)), randPolicy(rrng))
		}
		a2, trig2 := ra.attach(dev, s2)
		var audArg ptm.Auditor
		if a2 != nil {
			audArg = a2
		}
		st2, err := tgt.reopen(dev, audArg)
		if s2.Captured() {
			img2, ev2 := s2.Image()
			trig2.finish(img2)
			s2.Detach()
			accumDevice(cfg.Metrics, dev)
			rep.ChainCrashes++
			if pending {
				rep.RecoveryCrashes++
			}
			chain = append(chain, CrashPoint{Event: ev2, DuringOpen: true, RecoveryPending: pending})
			img = img2
			continue
		}
		s2.Detach()
		if err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("reopen failed: %v", err)}
		}
		// Detach cleared the whole composed bundle; reinstall the auditor
		// alone so the validation probe and engine close stay audited.
		if a2 != nil {
			dev.SetHooks(a2.Hooks())
		}
		final = st2
		break
	}
	// Covers recovery work plus the validation reads and probe below.
	defer accumDevice(cfg.Metrics, final.dev())

	// Phase 3: validate the recovered state.
	if err := final.check(); err != nil {
		return &Failure{Chain: chain, Reason: err.Error()}
	}
	total := 0
	for w, h := range workers {
		k, ok := matchPrefix(final, h)
		if !ok {
			return &Failure{Chain: chain, Reason: fmt.Sprintf(
				"worker %d: recovered keys match no committed prefix in [%d,%d]",
				w, h.mustSurvive, len(h.states)-1)}
		}
		total += len(h.states[k])
		if k < len(h.states)-1 {
			rep.RolledBack++
		} else {
			rep.CarriedForward++
		}
	}
	if n, err := final.size(); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("size after recovery: %v", err)}
	} else if n != total {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"recovered store has %d pairs, matched prefixes imply %d", n, total)}
	}
	// The recovered store must keep working.
	probe := uint64(round)
	if err := final.update([]op{{k: 0, v: probe}}); err != nil {
		return &Failure{Chain: chain, Reason: fmt.Sprintf("recovered store unusable: %v", err)}
	}
	if v, found, err := final.get(0); err != nil || !found || v != probe {
		return &Failure{Chain: chain, Reason: fmt.Sprintf(
			"post-recovery write not readable: v=%d found=%v err=%v", v, found, err)}
	}

	// Phase 4 (audit rounds only): closing is the engine's final durability
	// claim; then any violation recorded by any of the round's auditors —
	// workload, chained recoveries, or the probe — fails the round.
	if cfg.Audit {
		if err := final.close(); err != nil {
			return &Failure{Chain: chain, Reason: fmt.Sprintf("close after recovery: %v", err)}
		}
		for _, a := range ra.auds {
			accumAudit(cfg.Metrics, rep, a)
		}
		if n, v := ra.violations(); n > 0 {
			rep.AuditViolations += n
			reason := fmt.Sprintf("auditor: %d durability violation(s)", n)
			if v != nil {
				reason += fmt.Sprintf("; first: [%s] at %s: line %d off %d state=%s seq=%d engine=%s tx=%s site=%s",
					v.Kind, v.Point, v.Line, v.Off, v.State, v.Seq, v.Engine, v.TxKind, v.Site)
			}
			return &Failure{Chain: chain, Reason: reason}
		}
	}
	return nil
}

// matchPrefix finds a committed prefix of the worker's history that the
// recovered store agrees with on every key the worker owns, searching from
// the most recent transaction down to the oldest the crash allows.
func matchPrefix(final store, h *workerHistory) (int, bool) {
	for k := len(h.states) - 1; k >= h.mustSurvive; k-- {
		if prefixMatches(final, h, h.states[k]) {
			return k, true
		}
	}
	return 0, false
}

func prefixMatches(final store, h *workerHistory, state map[uint64]uint64) bool {
	for _, key := range h.keys {
		want, ok := state[key]
		got, found, err := final.get(key)
		if err != nil || found != ok || (ok && got != want) {
			return false
		}
	}
	return true
}
