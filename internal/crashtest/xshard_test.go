package crashtest

import (
	"testing"

	"repro/internal/obs"
)

// TestXShardCampaign drives the cross-shard crash campaign: whole-process
// failures captured consistently across every shard device plus the
// coordinator log, crash chains landing inside multi-device recovery, and
// exact-prefix validation that makes any half-applied cross-shard batch a
// failure.
func TestXShardCampaign(t *testing.T) {
	rep, err := RunXShard(XShardConfig{Rounds: 40, Seed: 21, Shards: 3, ChainDepth: 2})
	if err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if rep.Rounds != 40 {
		t.Fatalf("completed %d rounds, want 40", rep.Rounds)
	}
	if rep.XBatches == 0 {
		t.Fatal("campaign committed no cross-shard batches")
	}
	if rep.MidOpCrashes == 0 {
		t.Fatal("no crash interrupted a workload — arming window miscalibrated")
	}
	if rep.RolledBack+rep.CarriedForward != rep.Rounds {
		t.Fatalf("resolution counts %d+%d != rounds %d", rep.RolledBack, rep.CarriedForward, rep.Rounds)
	}
	t.Logf("xshard: %+v", rep)
}

// TestXShardCampaignAudited chains durability auditors in front of the crash
// scheduler on every device; any PCSO violation in the two-phase protocol or
// the shard engines fails the campaign.
func TestXShardCampaignAudited(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := RunXShard(XShardConfig{Rounds: 25, Seed: 77, Shards: 3, ChainDepth: 2,
		Audit: true, Metrics: reg})
	if err != nil {
		t.Fatalf("audited campaign failed: %v", err)
	}
	if rep.AuditViolations != 0 {
		t.Fatalf("campaign recorded %d violations without failing", rep.AuditViolations)
	}
	snap := reg.Snapshot()
	if snap.Counters["xshard_crash_rounds_total"] != uint64(rep.Rounds) {
		t.Fatalf("metrics rounds = %d, want %d", snap.Counters["xshard_crash_rounds_total"], rep.Rounds)
	}
	if snap.Counters["pmem_fence_total"] == 0 {
		t.Fatal("campaign accumulated no device totals")
	}
	t.Logf("xshard audited: %+v", rep)
}

// TestXShardCampaignDeterministic pins reproducibility: same seed, same
// report (the workload is single-threaded by construction).
func TestXShardCampaignDeterministic(t *testing.T) {
	cfg := XShardConfig{Rounds: 12, Seed: 5, Shards: 2, ChainDepth: 3}
	a, err := RunXShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunXShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
}
