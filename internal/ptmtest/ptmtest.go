// Package ptmtest is a conformance suite for ptm.HandlePTM engines: the
// three Romulus variants and the two baseline PTMs all must pass it. It
// checks the transactional contract (atomic visibility, rollback on error,
// transactional allocation), durability across clean restarts, and —
// most importantly — crash atomicity at every persistence event under
// adversarial crash policies.
package ptmtest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Engine is what the suite drives: a PTM whose device is reachable for
// crash simulation.
type Engine interface {
	ptm.HandlePTM
	Device() *pmem.Device
}

// Factory creates and re-creates engines for one implementation.
type Factory struct {
	// Name labels the subtests.
	Name string
	// New returns a fresh engine with a small region (>= 64 KiB usable).
	New func(tb testing.TB) Engine
	// Reopen builds an engine over a crash image produced by the suite.
	Reopen func(tb testing.TB, img []byte) (Engine, error)
}

// Run executes the whole conformance suite against the factory.
func Run(t *testing.T, f Factory) {
	t.Run("CommitVisibleAndDurable", func(t *testing.T) { testCommit(t, f) })
	t.Run("UnalignedAccessors", func(t *testing.T) { testAccessors(t, f) })
	t.Run("ErrorDiscardsEffects", func(t *testing.T) { testErrorDiscard(t, f) })
	t.Run("AllocationLifecycle", func(t *testing.T) { testAllocLifecycle(t, f) })
	t.Run("AllocationRollsBackWithTx", func(t *testing.T) { testAllocRollback(t, f) })
	t.Run("CleanRestartKeepsData", func(t *testing.T) { testCleanRestart(t, f) })
	t.Run("CrashAtomicityEverywhere", func(t *testing.T) { testCrashAtomicity(t, f) })
	t.Run("ConcurrentBankInvariant", func(t *testing.T) { testConcurrentBank(t, f) })
	t.Run("LargeStoreBytesDurable", func(t *testing.T) { testLargeStoreBytes(t, f) })
	t.Run("RootsSurviveRestart", func(t *testing.T) { testRootsSurvive(t, f) })
	t.Run("InterleavedHandles", func(t *testing.T) { testInterleavedHandles(t, f) })
}

// testLargeStoreBytes exercises multi-line byte ranges: stored, crashed
// post-commit, and read back intact after recovery.
func testLargeStoreBytes(t *testing.T, f Factory) {
	e := f.New(t)
	blob := make([]byte, 8000)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	var p ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(len(blob))
		if err != nil {
			return err
		}
		tx.StoreBytes(p, blob)
		tx.SetRoot(0, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	re, err := f.Reopen(t, e.Device().CrashImage(pmem.DropAll))
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Read(func(tx ptm.Tx) error {
		got := make([]byte, len(blob))
		tx.LoadBytes(tx.Root(0), got)
		for i := range blob {
			if got[i] != blob[i] {
				return fmt.Errorf("byte %d = %#x, want %#x", i, got[i], blob[i])
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// testRootsSurvive verifies every root slot independently persists.
func testRootsSurvive(t *testing.T, f Factory) {
	e := f.New(t)
	ptrs := make([]ptm.Ptr, ptm.NumRoots)
	if err := e.Update(func(tx ptm.Tx) error {
		for i := 0; i < ptm.NumRoots; i++ {
			p, err := tx.Alloc(8)
			if err != nil {
				return err
			}
			tx.Store64(p, uint64(i)*3+1)
			tx.SetRoot(i, p)
			ptrs[i] = p
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	re, err := f.Reopen(t, e.Device().CrashImage(pmem.DropAll))
	if err != nil {
		t.Fatal(err)
	}
	re.Read(func(tx ptm.Tx) error {
		for i := 0; i < ptm.NumRoots; i++ {
			if got := tx.Root(i); got != ptrs[i] {
				t.Errorf("root %d = %d, want %d", i, got, ptrs[i])
			}
			if v := tx.Load64(tx.Root(i)); v != uint64(i)*3+1 {
				t.Errorf("root %d value = %d", i, v)
			}
		}
		return nil
	})
}

// testInterleavedHandles runs two handles from one goroutine in strict
// alternation, verifying handle state (announcement slots, read-indicator
// slots) does not leak between them.
func testInterleavedHandles(t *testing.T, f Factory) {
	e := f.New(t)
	h1, err := e.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	h2, err := e.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	var p ptm.Ptr
	if err := h1.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(8)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		h := h1
		if i%2 == 1 {
			h = h2
		}
		if err := h.Update(func(tx ptm.Tx) error {
			tx.Store64(p, tx.Load64(p)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := h.Read(func(tx ptm.Tx) error {
			if got := tx.Load64(p); got != uint64(i+1) {
				return fmt.Errorf("iteration %d: value %d", i, got)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func testCommit(t *testing.T, f Factory) {
	e := f.New(t)
	var p ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(64)
		if err != nil {
			return err
		}
		tx.Store64(p, 0xC0FFEE)
		tx.SetRoot(0, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Read(func(tx ptm.Tx) error {
		if got := tx.Root(0); got != p {
			return fmt.Errorf("root = %d, want %d", got, p)
		}
		if got := tx.Load64(p); got != 0xC0FFEE {
			return fmt.Errorf("value = %#x", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func testAccessors(t *testing.T, f Factory) {
	e := f.New(t)
	if err := e.Update(func(tx ptm.Tx) error {
		p, err := tx.Alloc(64)
		if err != nil {
			return err
		}
		// Deliberately unaligned offsets, including word-crossing spans.
		tx.Store8(p+3, 0xAB)
		tx.Store16(p+7, 0x1234)              // crosses a word boundary
		tx.Store32(p+13, 0xDEADBEEF)         // crosses a word boundary
		tx.Store64(p+21, 0x1122334455667788) // crosses a word boundary
		tx.StoreBytes(p+33, []byte("edgy"))
		if got := tx.Load8(p + 3); got != 0xAB {
			return fmt.Errorf("Load8 = %#x", got)
		}
		if got := tx.Load16(p + 7); got != 0x1234 {
			return fmt.Errorf("Load16 = %#x", got)
		}
		if got := tx.Load32(p + 13); got != 0xDEADBEEF {
			return fmt.Errorf("Load32 = %#x", got)
		}
		if got := tx.Load64(p + 21); got != 0x1122334455667788 {
			return fmt.Errorf("Load64 = %#x", got)
		}
		buf := make([]byte, 4)
		tx.LoadBytes(p+33, buf)
		if string(buf) != "edgy" {
			return fmt.Errorf("LoadBytes = %q", buf)
		}
		// Neighbouring bytes must be untouched (still zero).
		if tx.Load8(p+2) != 0 || tx.Load8(p+4) != 0 {
			return errors.New("Store8 clobbered neighbours")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func testErrorDiscard(t *testing.T, f Factory) {
	e := f.New(t)
	var p ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(32)
		if err != nil {
			return err
		}
		tx.Store64(p, 1)
		tx.SetRoot(0, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := e.Update(func(tx ptm.Tx) error {
		tx.Store64(p, 2)
		tx.SetRoot(1, p)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Update returned %v, want boom", err)
	}
	if err := e.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(p); got != 1 {
			return fmt.Errorf("value = %d after failed tx, want 1", got)
		}
		if !tx.Root(1).IsNil() {
			return errors.New("root 1 set by failed tx")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func testAllocLifecycle(t *testing.T, f Factory) {
	e := f.New(t)
	var p ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(100)
		if err != nil {
			return err
		}
		// Fresh memory must be zero.
		for i := 0; i < 100; i += 8 {
			if got := tx.Load64(p + ptm.Ptr(i)); i+8 <= 100 && got != 0 {
				return fmt.Errorf("fresh byte %d = %#x", i, got)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(tx ptm.Tx) error { return tx.Free(p) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(tx ptm.Tx) error {
		if err := tx.Free(p); !errors.Is(err, ptm.ErrBadFree) {
			return fmt.Errorf("double free = %v, want ErrBadFree", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Out of memory must surface as ptm.ErrOutOfMemory.
	err := e.Update(func(tx ptm.Tx) error {
		_, err := tx.Alloc(1 << 30)
		return err
	})
	if !errors.Is(err, ptm.ErrOutOfMemory) {
		t.Fatalf("huge alloc = %v, want ErrOutOfMemory", err)
	}
}

func testAllocRollback(t *testing.T, f Factory) {
	e := f.New(t)
	boom := errors.New("abort")
	// Allocate inside a failing transaction; repeat many times. If failed
	// allocations leaked, the heap would eventually exhaust. Sizes stay
	// modest so every engine (including segment-limited redo logging) can
	// hold the zeroing in one transaction.
	for i := 0; i < 50; i++ {
		if err := e.Update(func(tx ptm.Tx) error {
			if _, err := tx.Alloc(1024); err != nil {
				return fmt.Errorf("iteration %d: %w", i, err)
			}
			return boom
		}); !errors.Is(err, boom) {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	// The heap must still satisfy a sizeable request.
	if err := e.Update(func(tx ptm.Tx) error {
		_, err := tx.Alloc(4 << 10)
		return err
	}); err != nil {
		t.Fatalf("heap leaked by rolled-back allocations: %v", err)
	}
}

func testCleanRestart(t *testing.T, f Factory) {
	e := f.New(t)
	if err := e.Update(func(tx ptm.Tx) error {
		p, err := tx.Alloc(32)
		if err != nil {
			return err
		}
		tx.Store64(p, 777)
		tx.SetRoot(5, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	img := e.Device().CrashImage(pmem.DropAll) // post-commit: all durable
	re, err := f.Reopen(t, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(tx.Root(5)); got != 777 {
			return fmt.Errorf("value after restart = %d", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func testCrashAtomicity(t *testing.T, f Factory) {
	e := f.New(t)
	const slots = 8
	var p ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(slots * 8)
		if err != nil {
			return err
		}
		tx.SetRoot(0, p)
		for i := 0; i < slots; i++ {
			tx.Store64(p+ptm.Ptr(i*8), 100)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	dev := e.Device()
	policies := []pmem.CrashPolicy{
		pmem.DropAll,
		pmem.KeepQueued,
		{QueuedPersistProb: 0.5, EvictDirtyProb: 0.25, TearWords: true,
			Rand: rand.New(rand.NewSource(99))},
	}
	var images [][]byte
	capture := func() {
		for _, pol := range policies {
			images = append(images, dev.CrashImage(pol))
		}
	}
	dev.SetHooks(&pmem.Hooks{
		Store: func(uint64) { capture() },
		Pwb:   func(uint64) { capture() },
		Fence: capture,
	})
	err := e.Update(func(tx ptm.Tx) error {
		for i := 0; i < slots; i++ {
			tx.Store64(p+ptm.Ptr(i*8), 200)
		}
		return nil
	})
	dev.SetHooks(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(images) == 0 {
		t.Fatal("no crash images captured")
	}
	for n, img := range images {
		re, err := f.Reopen(t, img)
		if err != nil {
			t.Fatalf("image %d: recovery failed: %v", n, err)
		}
		if err := re.Read(func(tx ptm.Tx) error {
			base := tx.Root(0)
			first := tx.Load64(base)
			if first != 100 && first != 200 {
				return fmt.Errorf("impossible value %d", first)
			}
			for i := 1; i < slots; i++ {
				if got := tx.Load64(base + ptm.Ptr(i*8)); got != first {
					return fmt.Errorf("torn: slot %d = %d vs %d", i, got, first)
				}
			}
			return nil
		}); err != nil {
			t.Fatalf("image %d: %v", n, err)
		}
	}
	t.Logf("%d crash images verified", len(images))
}

func testConcurrentBank(t *testing.T, f Factory) {
	e := f.New(t)
	const accounts, initial = 16, 100
	var arr ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		arr, err = tx.Alloc(accounts * 8)
		if err != nil {
			return err
		}
		for i := 0; i < accounts; i++ {
			tx.Store64(arr+ptm.Ptr(i*8), initial)
		}
		tx.SetRoot(0, arr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, iters = 4, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h, err := e.NewHandle()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if err := h.Update(func(tx ptm.Tx) error {
					a := tx.Root(0)
					fv := tx.Load64(a + ptm.Ptr(from*8))
					if fv < 5 {
						return nil
					}
					tx.Store64(a+ptm.Ptr(from*8), fv-5)
					tx.Store64(a+ptm.Ptr(to*8), tx.Load64(a+ptm.Ptr(to*8))+5)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if err := h.Read(func(tx ptm.Tx) error {
						a := tx.Root(0)
						var sum uint64
						for k := 0; k < accounts; k++ {
							sum += tx.Load64(a + ptm.Ptr(k*8))
						}
						if sum != accounts*initial {
							return fmt.Errorf("snapshot sum = %d", sum)
						}
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if err := e.Read(func(tx ptm.Tx) error {
		a := tx.Root(0)
		var sum uint64
		for k := 0; k < accounts; k++ {
			sum += tx.Load64(a + ptm.Ptr(k*8))
		}
		if sum != accounts*initial {
			return fmt.Errorf("final sum = %d", sum)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
