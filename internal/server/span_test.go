package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/blackbox"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
)

// startServerWith starts a caller-built Server on a fresh loopback listener
// (startServer builds its own Server; span tests need to pass Options).
func startServerWith(t *testing.T, srv *Server) (net.Addr, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr(), done
}

func shutdown(t *testing.T, srv *Server, done chan error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestSpanTimeline pins the tentpole end to end: a pipelined burst of SETs
// through a traced server yields, for each request id, the full phase
// timeline — parse, queue_wait, batch_form, psync_wait, reply_flush and the
// covering request span — with the committing shard and batch seq stamped on
// the group-commit phases. Reads emit only the phases they actually have.
func TestSpanTimeline(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	reg := obs.NewRegistry()
	rec := obs.NewSpanRecorder(reg, 1024)
	srv := New(st, Options{Registry: reg, Spans: rec})
	addr, done := startServerWith(t, srv)

	cl := dial(t, addr)
	// Pipeline: write the whole burst before reading any reply, so writes
	// genuinely queue behind one another and share batches.
	const n = 16
	var req strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&req, "SET k%d v%d\n", i, i)
	}
	req.WriteString("GET k0\n")
	if _, err := cl.c.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if line, err := cl.r.ReadString('\n'); err != nil || strings.TrimSpace(line) != "OK" {
			t.Fatalf("SET %d reply %q (err %v)", i, line, err)
		}
	}
	if line, err := cl.r.ReadString('\n'); err != nil || strings.TrimSpace(line) != "VALUE v0" {
		t.Fatalf("GET reply %q (err %v)", line, err)
	}

	// Every SET's timeline is fully reconstructable by request id.
	writePhases := []string{
		obs.PhaseParse, obs.PhaseQueueWait, obs.PhaseBatchForm,
		obs.PhasePsyncWait, obs.PhaseReplyFlush, obs.PhaseRequest,
	}
	var sets, gets int
	for _, ev := range rec.Events() {
		if ev.Phase != obs.PhaseRequest {
			continue
		}
		tl := rec.ByReq(ev.Req)
		switch ev.Op {
		case "set":
			sets++
			if len(tl) != len(writePhases) {
				t.Fatalf("req %d (set): %d phases %+v, want %d", ev.Req, len(tl), tl, len(writePhases))
			}
			for i, want := range writePhases {
				if tl[i].Phase != want {
					t.Fatalf("req %d phase[%d] = %q, want %q", ev.Req, i, tl[i].Phase, want)
				}
			}
			// Group-commit phases carry their routing: a real shard and the
			// batch that committed the write.
			if tl[3].Shard < 0 || tl[3].Shard >= st.NumShards() || tl[3].BatchSeq == 0 {
				t.Fatalf("req %d psync_wait span missing routing: %+v", ev.Req, tl[3])
			}
			// Phases tile the request: starts are monotone (the covering
			// request span restarts at t0, so skip it).
			for i := 1; i < len(tl)-1; i++ {
				if tl[i].StartNs < tl[i-1].StartNs {
					t.Fatalf("req %d phases out of order: %+v", ev.Req, tl)
				}
			}
		case "GET":
			gets++
			if len(tl) != 3 || tl[0].Phase != obs.PhaseParse || tl[1].Phase != obs.PhaseReplyFlush || tl[2].Phase != obs.PhaseRequest {
				t.Fatalf("req %d (get): phases %+v, want parse/reply_flush/request", ev.Req, tl)
			}
		}
	}
	if sets != n || gets != 1 {
		t.Fatalf("saw %d set / %d get request spans, want %d / 1", sets, gets, n)
	}

	// Each phase fed its histogram family.
	snap := reg.Snapshot()
	for _, h := range []string{
		"net_span_parse_ns", "net_span_queue_wait_ns", "net_span_batch_form_ns",
		"net_span_psync_wait_ns", "net_span_reply_flush_ns", "net_span_request_ns",
	} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("%s never observed", h)
		}
	}

	shutdown(t, srv, done)
}

// TestSpansOffNoEmission pins the default: without Options.Spans nothing is
// traced and the pipeline carries no span state.
func TestSpansOffNoEmission(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServer(t, st)
	cl := dial(t, addr)
	cl.must(t, "SET a 1", "OK")
	cl.must(t, "GET a", "VALUE 1")
	if srv.spans != nil {
		t.Fatal("spans recorder present without Options.Spans")
	}
	shutdown(t, srv, done)
}

// TestCommitterFlightRecords pins the blackbox bracket around group commit:
// on a store with flight recorders, every server write leaves a durable
// BatchStart/BatchCommit pair on its shard's ring, with the start record
// naming the first traced request of the batch.
func TestCommitterFlightRecords(t *testing.T) {
	st, err := shard.Open(shard.Options{
		Shards: 2, RegionSize: 512 << 10, CoordSize: 64 << 10,
		Variant: core.RomLog, Blackbox: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	srv := New(st, Options{Registry: reg, Spans: obs.NewSpanRecorder(reg, 64)})
	addr, done := startServerWith(t, srv)

	cl := dial(t, addr)
	cl.must(t, "SET fk fv", "OK")
	// Quiesce the commit loops before reading the ring directly (Inspect
	// bypasses the store's writer mutex).
	shutdown(t, srv, done)

	sh := st.ShardFor([]byte("fk"))
	eng := st.Engine(sh)
	off, size := eng.ReservedTail()
	rep := blackbox.Inspect(eng.Device(), off, size)
	if rep.Empty() || rep.MaxBatchStarted == 0 || rep.MaxBatchCommitted != rep.MaxBatchStarted {
		t.Fatalf("flight report after SET = %s, want started == committed > 0", rep)
	}
	var sawReq bool
	for _, r := range rep.Records {
		if r.Kind == blackbox.KindBatchStart && r.Req != 0 {
			sawReq = true
		}
	}
	if !sawReq {
		t.Fatalf("no BatchStart record carries a request id: %+v", rep.Records)
	}
}

// TestStatsReplyShape pins the STATS wire object: the flattened shard.Stats
// plus uptime_secs, quarantined_shards (always a list) and the group_commit
// section, with batch counters that move once a write committed.
func TestStatsReplyShape(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServer(t, st)
	cl := dial(t, addr)
	cl.must(t, "SET s 1", "OK")
	got, err := cl.do("STATS")
	if err != nil || !strings.HasPrefix(got, "STATS {") {
		t.Fatalf("STATS reply %q (err %v)", got, err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(strings.TrimPrefix(got, "STATS ")), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"shards", "pairs", "per_shard", "uptime_secs", "quarantined_shards", "group_commit"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("STATS object lacks %q: %s", key, got)
		}
	}
	if string(m["quarantined_shards"]) != "[]" {
		t.Fatalf("quarantined_shards = %s, want []", m["quarantined_shards"])
	}
	var g GroupStats
	if err := json.Unmarshal(m["group_commit"], &g); err != nil {
		t.Fatal(err)
	}
	if g.Batches == 0 || g.BatchOps == 0 || g.MeanBatchOps <= 0 {
		t.Fatalf("group_commit counters flat after a SET: %+v", g)
	}
	if len(g.QueueDepth) != st.NumShards() {
		t.Fatalf("queue_depth has %d entries, want %d", len(g.QueueDepth), st.NumShards())
	}
	shutdown(t, srv, done)
}
