// Package server is the network front-end of the sharded store: a
// line-oriented, pipelined TCP protocol (romulusd speaks it) over
// shard.Store, with group-committed writes — every acknowledged write is
// durable before its reply leaves the socket, and writes from all
// connections share durability rounds via the per-shard Committer (see
// group.go), so N concurrent writers pay far fewer than N psyncs.
//
// The complete wire contract — request grammar, every command's reply
// forms, the error taxonomy, pipelining semantics, and the per-command
// durability guarantee — is docs/PROTOCOL.md. Summary:
//
//	PING                  -> PONG
//	GET <key>             -> VALUE <value> | NOTFOUND
//	SET <key> <value>     -> OK             (durable before the reply)
//	DEL <key>             -> OK             (durable before the reply)
//	INCR <key> [delta]    -> INT <n>        (durable counter, default delta 1)
//	DECR <key> [delta]    -> INT <n>        (durable counter, default delta 1)
//	EXPIRE <key> <secs>   -> OK | NOTFOUND  (durable expiry deadline)
//	TTL <key>             -> TTL <secs> | TTL -1 | NOTFOUND
//	MULTI                 -> OK             (opens a queued batch)
//	  SET/DEL ...         -> QUEUED <n>     (inside MULTI)
//	  EXEC                -> OK <n>         (atomic durable commit, cross-shard safe)
//	  DISCARD             -> OK
//	STATS                 -> STATS <json>   (store + uptime + group-commit snapshot)
//	SCRUB <shard>         -> OK             (re-formats and readmits a quarantined shard)
//	SPLIT <shard>         -> OK <dst>       (starts an online split; runs in background)
//	PLACEMENT             -> PLACEMENT <json> (slot map + migration progress)
//	QUIT                  -> BYE            (server closes the connection)
//	anything else         -> ERR <message>
//
// # Pipelining
//
// Each connection has a reader goroutine and a writer goroutine. The reader
// parses and dispatches as many complete request lines as the client has
// sent without waiting for replies; the writer emits replies strictly in
// request order, coalescing bufio flushes (it flushes when its queue goes
// empty or before blocking on an unfinished write, not per reply). A client
// may therefore stream a burst of commands and then read the burst of
// replies. Replies never interleave or reorder; reads observe the
// connection's own earlier writes (the reader waits for this connection's
// outstanding writes before serving GET/TTL/STATS-free reads).
//
// # Group commit
//
// SET/DEL/INCR/DECR/EXPIRE and single-shard EXEC are executed by the
// shard's Committer loop: operations from all connections merge into one
// durable transaction per batch, and each reply is released only after the
// psync of the batch containing its write. Cross-shard EXEC runs the
// coordinator's two-phase protocol synchronously (still durable before the
// reply).
//
// # Degraded mode
//
// When the store quarantines a shard (media faults — see docs/FAULTS.md),
// operations routed to it answer with the typed reply
//
//	UNAVAIL shard=<n>[: reason]
//
// while every other shard keeps serving. SCRUB <n> re-formats the partition
// and readmits it. UNAVAIL is a distinct first token (not an ERR variant) so
// clients can retry elsewhere or back off without parsing prose.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/ptm"
	"repro/internal/shard"
)

// MaxLine bounds one protocol line (command + value).
const MaxLine = 1 << 20

// DefaultMaxBatchOps bounds a MULTI queue when Options.MaxBatchOps is 0.
const DefaultMaxBatchOps = 4096

// pipelineDepth bounds the replies a connection may have in flight; a reader
// that gets this far ahead of the writer blocks until replies drain, which
// also bounds per-connection memory.
const pipelineDepth = 256

// Options configure a Server.
type Options struct {
	// Registry receives net_* counters; nil keeps a private registry.
	Registry *obs.Registry
	// IdleTimeout closes a connection that sends no complete command for the
	// duration (0 = never). The deadline re-arms before every read, so a
	// slow-but-active client is not cut off; an idle one stops holding a
	// goroutine and a socket.
	IdleTimeout time.Duration
	// MaxBatchOps bounds the operations queued in one MULTI batch (0 =
	// DefaultMaxBatchOps; negative = unlimited). The op that would exceed the
	// bound answers "ERR batch too large" and discards the batch, so an
	// unbounded MULTI stream cannot grow server memory without limit.
	MaxBatchOps int
	// GroupMaxBatch bounds one group-commit batch transaction (0 =
	// DefaultGroupMaxBatch).
	GroupMaxBatch int
	// GroupLinger is how long a group-commit batch may wait for more
	// operations after its first arrives (0 = commit immediately with
	// whatever is queued — no added latency, batches still form under load).
	GroupLinger time.Duration
	// Now substitutes the clock used for EXPIRE/TTL deadlines (nil =
	// time.Now). Tests inject it to cross expiry boundaries deterministically.
	Now func() time.Time
	// Spans, when non-nil, turns on request-scoped tracing: every command is
	// assigned a server-wide request id and emits one SpanEvent per phase
	// (parse, queue_wait, batch_form, psync_wait, reply_flush, request) into
	// the recorder as its reply is flushed. Nil keeps tracing off — the hot
	// path then takes no timestamps beyond what group commit already takes.
	Spans *obs.SpanRecorder
}

// Server serves the protocol over a shard.Store.
type Server struct {
	st          *shard.Store
	committer   *Committer
	idleTimeout time.Duration
	maxBatchOps int
	now         func() time.Time
	spans       *obs.SpanRecorder
	started     time.Time
	reqSeq      atomic.Uint64

	// driver runs SPLIT's online shard migration (one at a time); splitWG
	// tracks the background run so Shutdown does not return while a split
	// still mutates the store.
	driver  *migrate.Driver
	splitWG sync.WaitGroup

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg      sync.WaitGroup
	drain   atomic.Bool
	connSeq atomic.Uint64

	connsTotal  *obs.Counter
	connsActive *obs.Gauge
	cmdGet      *obs.Counter
	cmdSet      *obs.Counter
	cmdDel      *obs.Counter
	cmdIncr     *obs.Counter
	cmdExpire   *obs.Counter
	cmdTTL      *obs.Counter
	cmdExec     *obs.Counter
	cmdErr      *obs.Counter
	cmdUnavail  *obs.Counter
	cmdScrub    *obs.Counter
	cmdSplit    *obs.Counter
	idleClosed  *obs.Counter
	flushes     *obs.Counter
}

// New wraps st in a protocol server and starts its group-commit loops
// (stopped by Shutdown).
func New(st *shard.Store, opts Options) *Server {
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	maxOps := opts.MaxBatchOps
	switch {
	case maxOps == 0:
		maxOps = DefaultMaxBatchOps
	case maxOps < 0:
		maxOps = 0 // unlimited
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Server{
		st: st,
		committer: NewCommitter(st, GroupOptions{
			MaxBatch: opts.GroupMaxBatch,
			Linger:   opts.GroupLinger,
			Registry: reg,
		}),
		driver:      migrate.New(st, migrate.Options{}),
		idleTimeout: opts.IdleTimeout,
		maxBatchOps: maxOps,
		now:         now,
		spans:       opts.Spans,
		started:     time.Now(),
		conns:       make(map[net.Conn]struct{}),
		connsTotal:  reg.Counter("net_conn_total"),
		connsActive: reg.Gauge("net_conn_active"),
		cmdGet:      reg.Counter("net_cmd_get_total"),
		cmdSet:      reg.Counter("net_cmd_set_total"),
		cmdDel:      reg.Counter("net_cmd_del_total"),
		cmdIncr:     reg.Counter("net_cmd_incr_total"),
		cmdExpire:   reg.Counter("net_cmd_expire_total"),
		cmdTTL:      reg.Counter("net_cmd_ttl_total"),
		cmdExec:     reg.Counter("net_cmd_exec_total"),
		cmdErr:      reg.Counter("net_cmd_err_total"),
		cmdUnavail:  reg.Counter("net_cmd_unavail_total"),
		cmdScrub:    reg.Counter("net_cmd_scrub_total"),
		cmdSplit:    reg.Counter("net_cmd_split_total"),
		idleClosed:  reg.Counter("net_conn_idle_closed_total"),
		flushes:     reg.Counter("net_reply_flush_total"),
	}
}

// Committer exposes the server's group-commit scheduler (benchmarks and
// crash harnesses submit through it directly).
func (s *Server) GroupCommitter() *Committer { return s.committer }

// StatsReply is the JSON object the STATS command marshals: the store
// snapshot (shard.Stats, flattened) plus the server-level fields an operator
// polls — uptime, which shards are quarantined, and group-commit batching
// health. docs/PROTOCOL.md pins the top-level keys; the conformance test
// diffs them against this struct, so renames cannot slip past the docs.
type StatsReply struct {
	shard.Stats
	UptimeSecs  float64             `json:"uptime_secs"`
	Quarantined []int               `json:"quarantined_shards"`
	Group       GroupStats          `json:"group_commit"`
	Placement   shard.PlacementInfo `json:"placement"`
}

// StatsReply snapshots the server for the STATS command (and romulusd's
// /stats endpoint, which serves the same object over HTTP).
func (s *Server) StatsReply() StatsReply {
	q := s.st.Quarantined()
	if q == nil {
		q = []int{} // pin the wire shape: always a list, never null
	}
	return StatsReply{
		Stats:       s.st.Stats(),
		UptimeSecs:  time.Since(s.started).Seconds(),
		Quarantined: q,
		Group:       s.committer.Stats(),
		Placement:   s.st.Placement(),
	}
}

// Commands returns every verb the server dispatches, sorted. The
// documentation conformance test diffs this set against docs/PROTOCOL.md's
// command table, so the wire reference cannot silently fall behind the
// dispatch switch.
func Commands() []string {
	return []string{
		"DECR", "DEL", "DISCARD", "EXEC", "EXPIRE", "GET", "INCR",
		"MULTI", "PING", "PLACEMENT", "QUIT", "SCRUB", "SET", "SPLIT",
		"STATS", "TTL",
	}
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// graceful drain, or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.drain.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connsTotal.Inc()
		s.connsActive.Add(1)
		s.wg.Add(1)
		go s.handle(c)
	}
}

// Shutdown drains gracefully: the listener closes, blocked readers wake, and
// every connection finishes the commands it has already parsed (their
// replies flushed, writes durable) before closing. Connections still alive
// when ctx expires are closed forcibly. Either way the group-commit loops
// stop only after every connection is done, so no submitted write is
// stranded.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drain.Store(true)
	// An in-flight split rolls back if it has not cut over yet (the journal's
	// abort arm); past the cutover it runs forward to completion. Either way
	// the background run finishes before Shutdown returns, so the caller may
	// close the store.
	s.driver.Stop()
	s.mu.Lock()
	s.draining = true
	if s.ln != nil {
		s.ln.Close()
	}
	// Wake connections parked in Read; mid-command connections are not
	// blocked and notice the drain flag after replying.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.splitWG.Wait()
		s.committer.Close()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		s.splitWG.Wait()
		s.committer.Close()
		return ctx.Err()
	}
}

// spanInfo carries one request's phase timestamps from the reader goroutine
// through the group-commit pipeline to the writer goroutine, which emits the
// SpanEvents when the reply's flush completes (the true end of the request).
// Stamping discipline: the reader owns t0/parsed, the commit loop owns
// drain/txStart/durable (group.go), and the writer reads everything after
// the Pending resolves — the done-channel close orders those writes, so no
// field needs atomics.
type spanInfo struct {
	req  uint64
	conn uint64
	op   string

	t0      time.Time // reader picked the line off the socket
	parsed  time.Time // dispatch done: enqueued (writes) or resolved (reads)
	drain   time.Time // commit loop pulled the op off the shard queue
	txStart time.Time // the batch transaction containing the op began
	durable time.Time // the batch's psync completed; reply releasable

	shard    int
	batchSeq uint64
}

// spanPool recycles spanInfos: one is taken per traced request and returned
// by the writer after rendering, so tracing adds no steady-state heap churn
// (which on small hosts costs more in GC assists than the tracing itself).
// The render in flush is the last reference — the commit loop's stamps all
// happen before the Pending's done closes, and the writer renders only
// after.
var spanPool = sync.Pool{New: func() any { return new(spanInfo) }}

// renderSpan appends one request's phases to evs, which the flusher hands to
// the recorder in one EmitBatch. end is the flush timestamp that closed the
// request. Phase boundaries that never happened (reads and immediate errors
// skip the queue) emit nothing; clock granularity can legally yield
// zero-length phases, which still emit.
func renderSpan(evs []obs.SpanEvent, sp *spanInfo, end time.Time) []obs.SpanEvent {
	ev := obs.SpanEvent{Req: sp.req, Conn: sp.conn, Op: sp.op, Shard: sp.shard, BatchSeq: sp.batchSeq}
	// Straight-line phase emission: a closure here defeats inlining and costs
	// measurably on the per-request path.
	if !sp.t0.IsZero() && !sp.parsed.IsZero() {
		ev.Phase = obs.PhaseParse
		ev.StartNs = sp.t0.UnixNano()
		ev.DurNs = nsBetween(sp.t0, sp.parsed)
		evs = append(evs, ev)
	}
	if !sp.parsed.IsZero() && !sp.drain.IsZero() {
		ev.Phase = obs.PhaseQueueWait
		ev.StartNs = sp.parsed.UnixNano()
		ev.DurNs = nsBetween(sp.parsed, sp.drain)
		evs = append(evs, ev)
	}
	if !sp.drain.IsZero() && !sp.txStart.IsZero() {
		ev.Phase = obs.PhaseBatchForm
		ev.StartNs = sp.drain.UnixNano()
		ev.DurNs = nsBetween(sp.drain, sp.txStart)
		evs = append(evs, ev)
	}
	if !sp.txStart.IsZero() && !sp.durable.IsZero() {
		ev.Phase = obs.PhasePsyncWait
		ev.StartNs = sp.txStart.UnixNano()
		ev.DurNs = nsBetween(sp.txStart, sp.durable)
		evs = append(evs, ev)
	}
	flushFrom := sp.durable
	if flushFrom.IsZero() {
		flushFrom = sp.parsed
	}
	if !flushFrom.IsZero() && !end.IsZero() {
		ev.Phase = obs.PhaseReplyFlush
		ev.StartNs = flushFrom.UnixNano()
		ev.DurNs = nsBetween(flushFrom, end)
		evs = append(evs, ev)
	}
	if !sp.t0.IsZero() && !end.IsZero() {
		ev.Phase = obs.PhaseRequest
		ev.StartNs = sp.t0.UnixNano()
		ev.DurNs = nsBetween(sp.t0, end)
		evs = append(evs, ev)
	}
	return evs
}

// nsBetween is a saturating duration: monotonic-clock steps between stamps
// taken on different goroutines never render as underflowed uint64s.
func nsBetween(from, to time.Time) uint64 {
	d := to.Sub(from)
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// token is one in-order reply slot: either an immediate reply text or a
// group-committed operation's future, plus the request's span (when tracing).
type token struct {
	text string
	p    *Pending
	sp   *spanInfo
}

func imm(text string) token { return token{text: text} }

// connState is the reader goroutine's per-connection state.
type connState struct {
	id    uint64
	multi *kvstore.Batch
	// cur is the span of the command currently being dispatched (nil when
	// tracing is off); submitWrite hands it to the Pending so the commit
	// loop can stamp the queue/batch/psync boundaries.
	cur *spanInfo
	// outstanding holds this connection's not-yet-committed writes; reads
	// barrier on them so a connection always observes its own writes.
	outstanding []*Pending
}

// track records a submitted write for the read barrier, pruning completed
// entries once the list grows (a deep pipeline of writes on one connection).
func (st *connState) track(p *Pending) {
	if len(st.outstanding) >= 32 {
		live := st.outstanding[:0]
		for _, q := range st.outstanding {
			select {
			case <-q.done:
			default:
				live = append(live, q)
			}
		}
		st.outstanding = live
	}
	st.outstanding = append(st.outstanding, p)
}

// barrier waits until every tracked write of this connection is durable —
// the read-your-writes fence for GET/TTL and for cross-shard EXEC (which
// bypasses the per-shard queues).
func (st *connState) barrier() {
	for _, p := range st.outstanding {
		<-p.done
	}
	st.outstanding = st.outstanding[:0]
}

// handle runs a connection's reader loop; replies flow through the writer
// goroutine so the reader can keep parsing ahead (pipelining).
func (s *Server) handle(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.connsActive.Add(-1)
		s.wg.Done()
	}()
	tokens := make(chan token, pipelineDepth)
	wdone := make(chan struct{})
	go s.writeReplies(c, tokens, wdone)

	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 4096), MaxLine)
	st := &connState{id: s.connSeq.Add(1)}
	for {
		if s.drain.Load() {
			break
		}
		if s.idleTimeout > 0 {
			// Re-arm before every read; a drain overrides with an immediate
			// deadline and is re-checked above and below either way.
			c.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		if !sc.Scan() {
			// EOF, an idle or drain-induced deadline, or a peer error:
			// nothing more to parse either way.
			var ne net.Error
			if !s.drain.Load() && errors.As(sc.Err(), &ne) && ne.Timeout() {
				s.idleClosed.Inc()
			}
			break
		}
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if s.spans != nil {
			sp := spanPool.Get().(*spanInfo)
			*sp = spanInfo{req: s.reqSeq.Add(1), conn: st.id, t0: time.Now(), shard: -1}
			st.cur = sp
		}
		tok, quit := s.dispatch(line, st)
		if sp := st.cur; sp != nil {
			st.cur = nil
			if sp.parsed.IsZero() {
				// Immediate reply (read, protocol error, MULTI bookkeeping):
				// dispatch resolved it right here.
				sp.parsed = time.Now()
			}
			if sp.op == "" {
				sp.op = verbOf(line)
			}
			tok.sp = sp
		}
		tokens <- tok
		if quit {
			break
		}
	}
	// No more tokens; let the writer drain and flush what was parsed, then
	// close the socket (the deferred Close runs after wdone).
	close(tokens)
	<-wdone
}

// writeReplies is a connection's writer goroutine: it resolves reply tokens
// strictly in request order and coalesces flushes — one flush per drained
// burst (when its queue goes empty) and one before blocking on a write that
// has not committed yet, never one per reply.
func (s *Server) writeReplies(c net.Conn, tokens <-chan token, wdone chan<- struct{}) {
	defer close(wdone)
	w := bufio.NewWriter(c)
	dead := false  // the socket failed; keep draining tokens without writing
	dirty := false // unflushed replies are buffered
	var spans []*spanInfo
	var evs []obs.SpanEvent // reused render buffer, one EmitBatch per flush
	flush := func() {
		if dirty && !dead {
			s.flushes.Inc()
			if w.Flush() != nil {
				dead = true
				c.Close() // wake the reader; the connection is useless now
			}
		}
		dirty = false
		if len(spans) > 0 {
			// One flush timestamp closes every span whose reply it carried;
			// emitted even on a dead socket (the work still happened).
			end := time.Now()
			for _, sp := range spans {
				evs = renderSpan(evs, sp, end)
				spanPool.Put(sp)
			}
			s.spans.EmitBatch(evs)
			evs = evs[:0]
			spans = spans[:0]
		}
	}
	for tok := range tokens {
		text := tok.text
		if tok.p != nil {
			select {
			case <-tok.p.done:
			default:
				// About to block on a durability round: don't sit on replies
				// the client could already be reading.
				flush()
				<-tok.p.done
			}
			text = tok.p.text
		}
		if !dead {
			w.WriteString(text)
			if err := w.WriteByte('\n'); err != nil {
				dead = true
				c.Close()
			}
			dirty = true
		}
		if tok.sp != nil {
			spans = append(spans, tok.sp)
		}
		if len(tokens) == 0 {
			flush()
		}
	}
	flush()
}

// dispatch executes one command line, returning its reply token and whether
// the connection should close. Immediate commands (reads, protocol errors,
// MULTI queueing) resolve here; writes return futures resolved by the
// group-commit loops.
func (s *Server) dispatch(line string, st *connState) (token, bool) {
	verb := line
	rest := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		verb, rest = line[:i], line[i+1:]
	}
	switch strings.ToUpper(verb) {
	case "PING":
		return imm("PONG"), false
	case "GET":
		key, errRep, ok := s.oneKey("GET", rest)
		if !ok {
			return imm(errRep), false
		}
		s.cmdGet.Inc()
		st.barrier()
		return imm(s.readKey(key)), false
	case "SET":
		key, val, ok := splitKeyValue(rest)
		if !ok {
			return imm(s.errf("SET needs a key and a value")), false
		}
		if errRep, ok := s.checkKey(key); !ok {
			return imm(errRep), false
		}
		s.cmdSet.Inc()
		if st.multi != nil {
			return s.queueMulti(st, false, key, val)
		}
		kb := []byte(key)
		p := s.submitWrite(st, kb, "set", setOp(kb, []byte(val)))
		return token{p: p}, false
	case "DEL":
		key, errRep, ok := s.oneKey("DEL", rest)
		if !ok {
			return imm(errRep), false
		}
		s.cmdDel.Inc()
		if st.multi != nil {
			return s.queueMulti(st, true, key, "")
		}
		kb := []byte(key)
		p := s.submitWrite(st, kb, "del", delOp(kb))
		return token{p: p}, false
	case "INCR", "DECR":
		op := strings.ToLower(verb)
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return imm(s.errf("%s needs a key and an optional integer delta", strings.ToUpper(verb))), false
		}
		key := fields[0]
		if errRep, ok := s.checkKey(key); !ok {
			return imm(errRep), false
		}
		delta := int64(1)
		if len(fields) == 2 {
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return imm(s.errf("%s delta is not an integer", strings.ToUpper(verb))), false
			}
			delta = n
		}
		if op == "decr" {
			delta = -delta
		}
		if st.multi != nil {
			return imm(s.errf("%s cannot be queued in MULTI", strings.ToUpper(verb))), false
		}
		s.cmdIncr.Inc()
		kb := []byte(key)
		p := s.submitWrite(st, kb, op, s.incrOp(kb, delta))
		return token{p: p}, false
	case "EXPIRE":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return imm(s.errf("EXPIRE needs a key and a seconds count")), false
		}
		key := fields[0]
		if errRep, ok := s.checkKey(key); !ok {
			return imm(errRep), false
		}
		secs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return imm(s.errf("EXPIRE seconds is not an integer")), false
		}
		if st.multi != nil {
			return imm(s.errf("EXPIRE cannot be queued in MULTI")), false
		}
		s.cmdExpire.Inc()
		kb := []byte(key)
		p := s.submitWrite(st, kb, "expire", s.expireOp(kb, secs))
		return token{p: p}, false
	case "TTL":
		key, errRep, ok := s.oneKey("TTL", rest)
		if !ok {
			return imm(errRep), false
		}
		s.cmdTTL.Inc()
		st.barrier()
		return imm(s.ttlReply(key)), false
	case "MULTI":
		if st.multi != nil {
			return imm(s.errf("MULTI already open")), false
		}
		st.multi = &kvstore.Batch{}
		return imm("OK"), false
	case "EXEC":
		if st.multi == nil {
			return imm(s.errf("EXEC without MULTI")), false
		}
		b := st.multi
		st.multi = nil
		s.cmdExec.Inc()
		return s.execMulti(st, b), false
	case "DISCARD":
		if st.multi == nil {
			return imm(s.errf("DISCARD without MULTI")), false
		}
		st.multi = nil
		return imm("OK"), false
	case "STATS":
		js, err := json.Marshal(s.StatsReply())
		if err != nil {
			return imm(s.errf("stats: %v", err)), false
		}
		return imm("STATS " + string(js)), false
	case "SCRUB":
		arg := strings.TrimSpace(rest)
		n, err := strconv.Atoi(arg)
		if arg == "" || err != nil {
			return imm(s.errf("SCRUB needs a shard index")), false
		}
		s.cmdScrub.Inc()
		if err := s.st.Scrub(n); err != nil {
			return imm(s.errf("scrub: %v", err)), false
		}
		return imm("OK"), false
	case "SPLIT":
		arg := strings.TrimSpace(rest)
		n, err := strconv.Atoi(arg)
		if arg == "" || err != nil {
			return imm(s.errf("SPLIT needs a source shard index")), false
		}
		s.cmdSplit.Inc()
		return imm(s.startSplit(n)), false
	case "PLACEMENT":
		reply := struct {
			shard.PlacementInfo
			Driver migrate.Status `json:"driver"`
		}{s.st.Placement(), s.driver.Status()}
		js, err := json.Marshal(reply)
		if err != nil {
			return imm(s.errf("placement: %v", err)), false
		}
		return imm("PLACEMENT " + string(js)), false
	case "QUIT":
		return imm("BYE"), true
	default:
		return imm(s.errf("unknown command %q", verb)), false
	}
}

// startSplit provisions a fresh shard, begins moving half of src's slots to
// it, and runs the copy/cutover/cleanup phases in the background — the
// store keeps serving throughout (poll PLACEMENT or STATS for progress).
// The reply names the destination shard. One migration runs at a time.
func (s *Server) startSplit(src int) string {
	if s.drain.Load() {
		return s.errf("split: server is shutting down")
	}
	dst, err := s.driver.Begin(src, -1)
	if err != nil {
		if errors.Is(err, migrate.ErrBusy) {
			return s.errf("migration already in progress")
		}
		return s.errf("split: %v", err)
	}
	// The new shard needs a commit loop before any write routes to it at
	// cutover.
	s.committer.EnsureShards(s.st.NumShards())
	s.splitWG.Add(1)
	go func() {
		defer s.splitWG.Done()
		// A terminal error (or a Stop-induced rollback) is recorded in the
		// driver's Status, which PLACEMENT exposes.
		_ = s.driver.Run()
	}()
	return "OK " + strconv.Itoa(dst)
}

// submitWrite routes one write to its shard's group-commit loop and tracks
// the future for the connection's read barrier. The routing keys (base key
// plus its expiry sidecar — every write body may touch both) and the redo
// closure let the commit loop re-dispatch the write if a migration cutover
// moves the key off the submitted shard while it queues.
func (s *Server) submitWrite(st *connState, key []byte, op string, fn OpFunc) *Pending {
	keys := [][]byte{key, expiryKey(key)}
	redo := func() string { return s.soloWrite(keys, op, fn) }
	p := s.committer.submitSpan(s.st.ShardFor(key), st.id, op, st.cur, keys, redo, fn)
	st.track(p)
	return p
}

// soloWrite runs one re-routed operation on whatever shard owns its keys
// now, under its own route pin (dirty-marking the keys if they are moving
// again).
func (s *Server) soloWrite(keys [][]byte, op string, fn OpFunc) string {
	h := s.st.BeginWrite(keys...)
	defer h.Done()
	var text string
	err := s.st.Update(h.Route(keys[0]), func(tx ptm.Tx, db *kvstore.DB) error {
		t, e := fn(tx, db)
		if e != nil {
			return e
		}
		text = t
		return nil
	})
	if err != nil {
		return s.opReply(op, err)
	}
	return text
}

// verbOf uppercases a line's command word for span labeling.
func verbOf(line string) string {
	if i := strings.IndexByte(line, ' '); i >= 0 {
		line = line[:i]
	}
	return strings.ToUpper(line)
}

// queueMulti appends one SET/DEL to the open MULTI batch, enforcing the
// queue bound.
func (s *Server) queueMulti(st *connState, del bool, key, val string) (token, bool) {
	if s.maxBatchOps > 0 && st.multi.Len() >= s.maxBatchOps {
		st.multi = nil
		return imm(s.errf("batch too large")), false
	}
	if del {
		st.multi.Delete([]byte(key))
	} else {
		st.multi.Put([]byte(key), []byte(val))
	}
	return imm(fmt.Sprintf("QUEUED %d", st.multi.Len())), false
}

// execMulti commits a MULTI batch: single-shard batches ride the shard's
// group-commit loop (sharing a durability round with other connections);
// cross-shard batches run the coordinator's two-phase protocol
// synchronously, after a barrier so they order after this connection's
// queued writes.
func (s *Server) execMulti(st *connState, b *kvstore.Batch) token {
	n := b.Len()
	if n == 0 {
		return imm("OK 0")
	}
	// Expand with expiry-sidecar sweeps (a SET/DEL clears any deadline on
	// the key, exactly like the non-MULTI commands) and collect the shards
	// touched. Sidecars route with their base key, so they never widen the
	// shard set.
	ex := &kvstore.Batch{}
	only := -1
	single := true
	b.Each(func(del bool, key, val []byte) {
		if del {
			ex.Delete(key)
		} else {
			ex.Put(key, val)
		}
		ex.Delete(expiryKey(key))
		if sh := s.st.ShardFor(key); only == -1 {
			only = sh
		} else if sh != only {
			single = false
		}
	})
	if single {
		reply := fmt.Sprintf("OK %d", n)
		var keys [][]byte
		ex.Each(func(del bool, key, val []byte) { keys = append(keys, key) })
		// If a cutover moves any of the batch's keys before it commits, the
		// redo path re-dispatches through the store's write front door,
		// which regroups by current ownership (and runs the two-phase
		// protocol if the batch is now cross-shard).
		redo := func() string {
			if err := s.st.Write(ex); err != nil {
				return s.opReply("exec", err)
			}
			return reply
		}
		p := s.committer.submitSpan(only, st.id, "exec", st.cur, keys, redo, func(tx ptm.Tx, db *kvstore.DB) (string, error) {
			if err := db.Apply(tx, ex); err != nil {
				return "", err
			}
			return reply, nil
		})
		st.track(p)
		return token{p: p}
	}
	st.barrier()
	if err := s.st.Write(ex); err != nil {
		return imm(s.opReply("exec", err))
	}
	return imm(fmt.Sprintf("OK %d", n))
}

// expiryKey is the shard-colocated sidecar key holding a key's expiry
// deadline (absolute UnixNano, decimal).
func expiryKey(key []byte) []byte { return shard.SidecarKey("exp", key) }

// expiredAt reports whether key's expiry sidecar says it is dead at now.
// Absent or malformed sidecars mean "live".
func expiredAt(tx ptm.Tx, db *kvstore.DB, key []byte, now time.Time) bool {
	e, err := db.GetTx(tx, expiryKey(key))
	if err != nil {
		return false
	}
	ns, perr := strconv.ParseInt(string(e), 10, 64)
	if perr != nil {
		return false
	}
	return now.UnixNano() >= ns
}

// setOp is SET's group-committed body: store the pair and clear any expiry.
func setOp(key, val []byte) OpFunc {
	return func(tx ptm.Tx, db *kvstore.DB) (string, error) {
		if err := db.PutTx(tx, key, val); err != nil {
			return "", err
		}
		if err := db.DeleteTx(tx, expiryKey(key)); err != nil {
			return "", err
		}
		return "OK", nil
	}
}

// delOp is DEL's group-committed body: remove the pair and its expiry.
func delOp(key []byte) OpFunc {
	return func(tx ptm.Tx, db *kvstore.DB) (string, error) {
		if err := db.DeleteTx(tx, key); err != nil {
			return "", err
		}
		if err := db.DeleteTx(tx, expiryKey(key)); err != nil {
			return "", err
		}
		return "OK", nil
	}
}

// incrOp is INCR/DECR's group-committed body: read-modify-write the decimal
// counter in the batch transaction. An expired value counts as absent
// (counter restarts at 0+delta); non-integer values and overflow are
// protocol-level failures — replies, not batch aborts.
func (s *Server) incrOp(key []byte, delta int64) OpFunc {
	return func(tx ptm.Tx, db *kvstore.DB) (string, error) {
		var cur int64
		v, err := db.GetTx(tx, key)
		switch {
		case errors.Is(err, kvstore.ErrNotFound):
		case err != nil:
			return "", err
		default:
			if !expiredAt(tx, db, key, s.now()) {
				n, perr := strconv.ParseInt(string(v), 10, 64)
				if perr != nil {
					return "ERR value is not an integer", nil
				}
				cur = n
			}
		}
		n := cur + delta
		if (delta > 0 && n < cur) || (delta < 0 && n > cur) {
			return "ERR increment overflows a 64-bit integer", nil
		}
		if err := db.PutTx(tx, key, strconv.AppendInt(nil, n, 10)); err != nil {
			return "", err
		}
		if err := db.DeleteTx(tx, expiryKey(key)); err != nil {
			return "", err
		}
		return "INT " + strconv.FormatInt(n, 10), nil
	}
}

// expireOp is EXPIRE's group-committed body: set (or, for secs <= 0,
// immediately enforce) a key's expiry deadline. Missing and already-expired
// keys answer NOTFOUND; an expired key is swept while we are here.
func (s *Server) expireOp(key []byte, secs int64) OpFunc {
	return func(tx ptm.Tx, db *kvstore.DB) (string, error) {
		now := s.now()
		_, err := db.GetTx(tx, key)
		if errors.Is(err, kvstore.ErrNotFound) {
			return "NOTFOUND", nil
		}
		if err != nil {
			return "", err
		}
		if expiredAt(tx, db, key, now) {
			if err := db.DeleteTx(tx, key); err != nil {
				return "", err
			}
			if err := db.DeleteTx(tx, expiryKey(key)); err != nil {
				return "", err
			}
			return "NOTFOUND", nil
		}
		if secs <= 0 {
			if err := db.DeleteTx(tx, key); err != nil {
				return "", err
			}
			if err := db.DeleteTx(tx, expiryKey(key)); err != nil {
				return "", err
			}
			return "OK", nil
		}
		deadline := now.Add(time.Duration(secs) * time.Second).UnixNano()
		if err := db.PutTx(tx, expiryKey(key), strconv.AppendInt(nil, deadline, 10)); err != nil {
			return "", err
		}
		return "OK", nil
	}
}

// readKey serves GET: one read transaction on the key's shard, honoring lazy
// expiry (an expired pair reads as NOTFOUND; it is swept by the next write
// to the key, keeping reads wait-free). ViewKey routes and reads under one
// left-right arrival, so reads stay wait-free even mid-migration — they
// never block on the cutover fence.
func (s *Server) readKey(key string) string {
	kb := []byte(key)
	var reply string
	err := s.st.ViewKey(kb, func(tx ptm.Tx, db *kvstore.DB) error {
		v, err := db.GetTx(tx, kb)
		if errors.Is(err, kvstore.ErrNotFound) {
			reply = "NOTFOUND"
			return nil
		}
		if err != nil {
			return err
		}
		if expiredAt(tx, db, kb, s.now()) {
			reply = "NOTFOUND"
			return nil
		}
		reply = "VALUE " + string(v)
		return nil
	})
	if err != nil {
		return s.opReply("get", err)
	}
	return reply
}

// ttlReply serves TTL: remaining whole seconds (rounded up), TTL -1 for keys
// without a deadline, NOTFOUND for absent or expired keys.
func (s *Server) ttlReply(key string) string {
	kb := []byte(key)
	now := s.now()
	var reply string
	err := s.st.ViewKey(kb, func(tx ptm.Tx, db *kvstore.DB) error {
		_, err := db.GetTx(tx, kb)
		if errors.Is(err, kvstore.ErrNotFound) {
			reply = "NOTFOUND"
			return nil
		}
		if err != nil {
			return err
		}
		e, err := db.GetTx(tx, expiryKey(kb))
		if errors.Is(err, kvstore.ErrNotFound) {
			reply = "TTL -1"
			return nil
		}
		if err != nil {
			return err
		}
		ns, perr := strconv.ParseInt(string(e), 10, 64)
		if perr != nil {
			reply = "TTL -1"
			return nil
		}
		rem := ns - now.UnixNano()
		if rem <= 0 {
			reply = "NOTFOUND"
			return nil
		}
		secs := (rem + int64(time.Second) - 1) / int64(time.Second)
		reply = "TTL " + strconv.FormatInt(secs, 10)
		return nil
	})
	if err != nil {
		return s.opReply("ttl", err)
	}
	return reply
}

// oneKey parses and validates a single-key argument.
func (s *Server) oneKey(verb, rest string) (key, errReply string, ok bool) {
	key = strings.TrimSpace(rest)
	if key == "" || strings.ContainsAny(key, " \t") {
		return "", s.errf("%s needs exactly one key", verb), false
	}
	if errRep, ok := s.checkKey(key); !ok {
		return "", errRep, false
	}
	return key, "", true
}

// checkKey rejects keys the store cannot route faithfully: NUL is the
// sidecar marker (see shard.SidecarKey), so client keys must not contain it.
func (s *Server) checkKey(key string) (errReply string, ok bool) {
	if strings.IndexByte(key, 0) >= 0 {
		return s.errf("key must not contain NUL"), false
	}
	return "", true
}

// splitKeyValue parses "key value..." where value is the rest of the line
// (may be empty, may contain spaces).
func splitKeyValue(rest string) (key, val string, ok bool) {
	if rest == "" {
		return "", "", false
	}
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		key, val = rest[:i], rest[i+1:]
	} else {
		key = rest
	}
	if key == "" {
		return "", "", false
	}
	return key, val, true
}

func (s *Server) errf(format string, args ...any) string {
	s.cmdErr.Inc()
	return "ERR " + fmt.Sprintf(format, args...)
}

// opReply renders a store error: a quarantined shard's *UnavailError becomes
// the typed UNAVAIL wire reply verbatim, everything else an ERR.
func (s *Server) opReply(op string, err error) string {
	var ue *shard.UnavailError
	if errors.As(err, &ue) {
		s.cmdUnavail.Inc()
		return ue.Error()
	}
	return s.errf("%s: %v", op, err)
}
