// Package server is the network front-end of the sharded store: a
// line-oriented TCP protocol (romulusd speaks it) over shard.Store, with one
// goroutine per connection and a graceful drain that lets in-flight commands
// finish — every acknowledged write is durable before its OK leaves the
// socket, so a drain (or crash) after the ack can never lose it.
//
// # Protocol
//
// Requests are single lines (LF or CRLF). Keys are whitespace-free tokens;
// values are the remainder of the line and may contain spaces but not
// newlines. Replies are single lines.
//
//	PING                 -> PONG
//	GET <key>            -> VALUE <value> | NOTFOUND
//	SET <key> <value>    -> OK            (durable before the reply)
//	DEL <key>            -> OK            (durable before the reply)
//	MULTI                -> OK            (opens a queued batch)
//	  SET/DEL ...        -> QUEUED <n>    (inside MULTI)
//	  EXEC               -> OK <n>        (atomic durable commit, cross-shard safe)
//	  DISCARD            -> OK
//	STATS                -> STATS <json>  (shard.Stats snapshot)
//	SCRUB <shard>        -> OK            (re-formats and readmits a quarantined shard)
//	QUIT                 -> BYE           (server closes the connection)
//	anything else        -> ERR <message>
//
// A MULTI batch commits with kvstore's last-op-wins semantics per key; when
// its keys span shards it runs the coordinator's two-phase protocol and is
// all-or-nothing across crashes. A MULTI queue is bounded by
// Options.MaxBatchOps; exceeding it answers "ERR batch too large" and drops
// the queued batch.
//
// # Degraded mode
//
// When the store quarantines a shard (media faults — see docs/FAULTS.md),
// operations routed to it answer with the typed reply
//
//	UNAVAIL shard=<n>[: reason]
//
// while every other shard keeps serving. SCRUB <n> re-formats the partition
// and readmits it. UNAVAIL is a distinct first token (not an ERR variant) so
// clients can retry elsewhere or back off without parsing prose.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/shard"
)

// MaxLine bounds one protocol line (command + value).
const MaxLine = 1 << 20

// DefaultMaxBatchOps bounds a MULTI queue when Options.MaxBatchOps is 0.
const DefaultMaxBatchOps = 4096

// Options configure a Server.
type Options struct {
	// Registry receives net_* counters; nil keeps a private registry.
	Registry *obs.Registry
	// IdleTimeout closes a connection that sends no complete command for the
	// duration (0 = never). The deadline re-arms before every read, so a
	// slow-but-active client is not cut off; an idle one stops holding a
	// goroutine and a socket.
	IdleTimeout time.Duration
	// MaxBatchOps bounds the operations queued in one MULTI batch (0 =
	// DefaultMaxBatchOps; negative = unlimited). The op that would exceed the
	// bound answers "ERR batch too large" and discards the batch, so an
	// unbounded MULTI stream cannot grow server memory without limit.
	MaxBatchOps int
}

// Server serves the protocol over a shard.Store.
type Server struct {
	st          *shard.Store
	idleTimeout time.Duration
	maxBatchOps int

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg    sync.WaitGroup
	drain atomic.Bool

	connsTotal  *obs.Counter
	connsActive *obs.Gauge
	cmdGet      *obs.Counter
	cmdSet      *obs.Counter
	cmdDel      *obs.Counter
	cmdExec     *obs.Counter
	cmdErr      *obs.Counter
	cmdUnavail  *obs.Counter
	cmdScrub    *obs.Counter
	idleClosed  *obs.Counter
}

// New wraps st in a protocol server.
func New(st *shard.Store, opts Options) *Server {
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	maxOps := opts.MaxBatchOps
	switch {
	case maxOps == 0:
		maxOps = DefaultMaxBatchOps
	case maxOps < 0:
		maxOps = 0 // unlimited
	}
	return &Server{
		st:          st,
		idleTimeout: opts.IdleTimeout,
		maxBatchOps: maxOps,
		conns:       make(map[net.Conn]struct{}),
		connsTotal:  reg.Counter("net_conn_total"),
		connsActive: reg.Gauge("net_conn_active"),
		cmdGet:      reg.Counter("net_cmd_get_total"),
		cmdSet:      reg.Counter("net_cmd_set_total"),
		cmdDel:      reg.Counter("net_cmd_del_total"),
		cmdExec:     reg.Counter("net_cmd_exec_total"),
		cmdErr:      reg.Counter("net_cmd_err_total"),
		cmdUnavail:  reg.Counter("net_cmd_unavail_total"),
		cmdScrub:    reg.Counter("net_cmd_scrub_total"),
		idleClosed:  reg.Counter("net_conn_idle_closed_total"),
	}
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// graceful drain, or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.drain.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connsTotal.Inc()
		s.connsActive.Add(1)
		s.wg.Add(1)
		go s.handle(c)
	}
}

// Shutdown drains gracefully: the listener closes, blocked readers wake, and
// every connection finishes its current command (its reply flushed) before
// closing. Connections still alive when ctx expires are closed forcibly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drain.Store(true)
	s.mu.Lock()
	s.draining = true
	if s.ln != nil {
		s.ln.Close()
	}
	// Wake connections parked in Read; mid-command connections are not
	// blocked and notice the drain flag after replying.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) handle(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.connsActive.Add(-1)
		s.wg.Done()
	}()
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 4096), MaxLine)
	w := bufio.NewWriter(c)

	var multi *kvstore.Batch
	for {
		if s.drain.Load() {
			return
		}
		if s.idleTimeout > 0 {
			// Re-arm before every read; a drain overrides with an immediate
			// deadline and is re-checked above and below either way.
			c.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		if !sc.Scan() {
			// EOF, an idle or drain-induced deadline, or a peer error:
			// nothing more to reply to either way.
			var ne net.Error
			if !s.drain.Load() && errors.As(sc.Err(), &ne) && ne.Timeout() {
				s.idleClosed.Inc()
			}
			return
		}
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		reply, quit := s.dispatch(line, &multi)
		w.WriteString(reply)
		w.WriteByte('\n')
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

// dispatch executes one command line, returning the reply line and whether
// the connection should close.
func (s *Server) dispatch(line string, multi **kvstore.Batch) (string, bool) {
	verb := line
	rest := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		verb, rest = line[:i], line[i+1:]
	}
	switch strings.ToUpper(verb) {
	case "PING":
		return "PONG", false
	case "GET":
		key := strings.TrimSpace(rest)
		if key == "" || strings.ContainsAny(key, " \t") {
			return s.errf("GET needs exactly one key"), false
		}
		s.cmdGet.Inc()
		v, err := s.st.Get([]byte(key))
		if err == shard.ErrNotFound {
			return "NOTFOUND", false
		}
		if err != nil {
			return s.opReply("get", err), false
		}
		return "VALUE " + string(v), false
	case "SET":
		key, val, ok := splitKeyValue(rest)
		if !ok {
			return s.errf("SET needs a key and a value"), false
		}
		s.cmdSet.Inc()
		if *multi != nil {
			if s.batchFull(*multi) {
				*multi = nil
				return s.errf("batch too large"), false
			}
			(*multi).Put([]byte(key), []byte(val))
			return fmt.Sprintf("QUEUED %d", (*multi).Len()), false
		}
		if err := s.st.Put([]byte(key), []byte(val)); err != nil {
			return s.opReply("set", err), false
		}
		return "OK", false
	case "DEL":
		key := strings.TrimSpace(rest)
		if key == "" || strings.ContainsAny(key, " \t") {
			return s.errf("DEL needs exactly one key"), false
		}
		s.cmdDel.Inc()
		if *multi != nil {
			if s.batchFull(*multi) {
				*multi = nil
				return s.errf("batch too large"), false
			}
			(*multi).Delete([]byte(key))
			return fmt.Sprintf("QUEUED %d", (*multi).Len()), false
		}
		if err := s.st.Delete([]byte(key)); err != nil {
			return s.opReply("del", err), false
		}
		return "OK", false
	case "MULTI":
		if *multi != nil {
			return s.errf("MULTI already open"), false
		}
		*multi = &kvstore.Batch{}
		return "OK", false
	case "EXEC":
		if *multi == nil {
			return s.errf("EXEC without MULTI"), false
		}
		b := *multi
		*multi = nil
		s.cmdExec.Inc()
		if err := s.st.Write(b); err != nil {
			return s.opReply("exec", err), false
		}
		return fmt.Sprintf("OK %d", b.Len()), false
	case "DISCARD":
		if *multi == nil {
			return s.errf("DISCARD without MULTI"), false
		}
		*multi = nil
		return "OK", false
	case "STATS":
		js, err := json.Marshal(s.st.Stats())
		if err != nil {
			return s.errf("stats: %v", err), false
		}
		return "STATS " + string(js), false
	case "SCRUB":
		arg := strings.TrimSpace(rest)
		n, err := strconv.Atoi(arg)
		if arg == "" || err != nil {
			return s.errf("SCRUB needs a shard index"), false
		}
		s.cmdScrub.Inc()
		if err := s.st.Scrub(n); err != nil {
			return s.errf("scrub: %v", err), false
		}
		return "OK", false
	case "QUIT":
		return "BYE", true
	default:
		return s.errf("unknown command %q", verb), false
	}
}

// splitKeyValue parses "key value..." where value is the rest of the line
// (may be empty, may contain spaces).
func splitKeyValue(rest string) (key, val string, ok bool) {
	if rest == "" {
		return "", "", false
	}
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		key, val = rest[:i], rest[i+1:]
	} else {
		key = rest
	}
	if key == "" {
		return "", "", false
	}
	return key, val, true
}

func (s *Server) errf(format string, args ...any) string {
	s.cmdErr.Inc()
	return "ERR " + fmt.Sprintf(format, args...)
}

// batchFull reports whether adding one more op to b would exceed the bound.
func (s *Server) batchFull(b *kvstore.Batch) bool {
	return s.maxBatchOps > 0 && b.Len() >= s.maxBatchOps
}

// opReply renders a store error: a quarantined shard's *UnavailError becomes
// the typed UNAVAIL wire reply verbatim, everything else an ERR.
func (s *Server) opReply(op string, err error) string {
	var ue *shard.UnavailError
	if errors.As(err, &ue) {
		s.cmdUnavail.Inc()
		return ue.Error()
	}
	return s.errf("%s: %v", op, err)
}
