package server

import (
	"bufio"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
)

// readLines reads n reply lines from the client.
func readLines(t *testing.T, r *bufio.Reader, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d/%d: %v (got %q so far)", i+1, n, err, out)
		}
		out = append(out, strings.TrimRight(line, "\r\n"))
	}
	return out
}

// TestPipelinedBurstInOrderReplies is the pipelining conformance test: one
// connection streams a burst of interleaved SET/GET/INCR/DECR/DEL without
// reading a single reply, then reads the whole burst back — replies must be
// byte-exact and strictly in request order, and reads must observe the
// connection's own earlier (pipelined) writes.
func TestPipelinedBurstInOrderReplies(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServer(t, st)

	cl := dial(t, addr)
	cmds := []string{
		"SET a 1",
		"INCR ctr",
		"GET a",
		"SET b two words",
		"DECR ctr 5",
		"GET b",
		"INCR ctr 10",
		"GET ctr",
		"DEL a",
		"GET a",
		"PING",
	}
	want := []string{
		"OK",
		"INT 1",
		"VALUE 1",
		"OK",
		"INT -4",
		"VALUE two words",
		"INT 6",
		"VALUE 6",
		"OK",
		"NOTFOUND",
		"PONG",
	}
	if _, err := cl.c.Write([]byte(strings.Join(cmds, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
	got := readLines(t, cl.r, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reply %d to %q: got %q, want %q (all: %q)", i, cmds[i], got[i], want[i], got)
		}
	}

	cl.c.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedFlushCoalescing pins that the writer does NOT flush once per
// reply: a burst whose writes all commit in one lingered group batch comes
// back in far fewer flushes than replies.
func TestPipelinedFlushCoalescing(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	reg := obs.NewRegistry()
	srv, addr, done := startServerOpts(t, st, Options{Registry: reg, GroupLinger: 100 * time.Millisecond})

	cl := dial(t, addr)
	const n = 16
	var burst strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&burst, "SET flushk%d v%d\n", i, i)
	}
	if _, err := cl.c.Write([]byte(burst.String())); err != nil {
		t.Fatal(err)
	}
	for i, line := range readLines(t, cl.r, n) {
		if line != "OK" {
			t.Fatalf("reply %d: got %q, want OK", i, line)
		}
	}
	if flushes := reg.Counter("net_reply_flush_total").Load(); flushes >= n {
		t.Fatalf("writer flushed %d times for %d replies; want coalesced (< %d)", flushes, n, n)
	}

	cl.c.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestGroupCommitSharesDurabilityRounds proves the point of group commit: K
// connections' concurrent SETs to one shard complete in fewer durability
// rounds (device fence events) than K solo SETs would pay.
func TestGroupCommitSharesDurabilityRounds(t *testing.T) {
	st, err := shard.Open(shard.Options{
		Shards:     1,
		RegionSize: 512 << 10,
		CoordSize:  64 << 10,
		Variant:    core.RomLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	srv, addr, done := startServerOpts(t, st, Options{Registry: reg, GroupLinger: 100 * time.Millisecond})

	dev := st.Devices()[0] // single shard; the coordinator is last
	fenceEvents := func() uint64 {
		s := dev.Stats()
		return s.Pfences + s.Psyncs
	}

	// Baseline: one solo SET's durability round.
	warm := dial(t, addr)
	warm.must(t, "SET warmup v", "OK")
	dev.ResetStats()
	warm.must(t, "SET solo v", "OK")
	base := fenceEvents()
	if base == 0 {
		t.Fatal("solo SET recorded no fence events; cannot measure sharing")
	}

	// K concurrent SETs from K connections, released together. With a
	// 100ms linger they must land in one or two shared batches, paying far
	// fewer than K durability rounds.
	const K = 8
	clients := make([]*client, K)
	for i := range clients {
		clients[i] = dial(t, addr)
		clients[i].must(t, "PING", "PONG")
	}
	dev.ResetStats()
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client) {
			defer wg.Done()
			<-start
			reply, err := cl.do(fmt.Sprintf("SET grp%d v%d", i, i))
			if err == nil && reply != "OK" {
				err = fmt.Errorf("reply %q", reply)
			}
			errs[i] = err
		}(i, cl)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("conn %d SET: %v", i, err)
		}
	}
	grouped := fenceEvents()
	if grouped >= base*K {
		t.Fatalf("%d concurrent SETs paid %d fence events (solo baseline %d): no durability rounds were shared", K, grouped, base)
	}
	t.Logf("solo SET: %d fence events; %d concurrent SETs: %d total (%.2fx solo, %.2f per ack)",
		base, K, grouped, float64(grouped)/float64(base), float64(grouped)/float64(K))
	if max := reg.Histogram("net_group_batch_conns").Max(); max < 2 {
		t.Fatalf("no batch merged ops from more than one connection (max fan-in %d)", max)
	}

	for _, cl := range clients {
		cl.c.Close()
	}
	warm.c.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestMultiQueuedErrorReplyOrdering pins the reply-ordering contract under
// MULTI…EXEC in a pipelined burst: a failed queued command's error is
// reported in its request position — after earlier QUEUED replies, before
// later ones, and never after (or instead of) EXEC's summary.
func TestMultiQueuedErrorReplyOrdering(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServer(t, st)

	cl := dial(t, addr)
	cmds := []string{
		"MULTI",
		"SET ord1 a",
		"BOGUS nope",
		"SET", // malformed: missing key and value
		"SET ord2 b",
		"EXEC",
		"GET ord1",
		"GET ord2",
	}
	want := []string{
		"OK",
		"QUEUED 1",
		`ERR unknown command "BOGUS"`,
		"ERR SET needs a key and a value",
		"QUEUED 2",
		"OK 2",
		"VALUE a",
		"VALUE b",
	}
	if _, err := cl.c.Write([]byte(strings.Join(cmds, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
	got := readLines(t, cl.r, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reply %d to %q: got %q, want %q (all: %q)", i, cmds[i], got[i], want[i], got)
		}
	}

	cl.c.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestExpireTTLIncrSemantics drives the EXPIRE/TTL/INCR surface across an
// injected clock: lazy expiry on read, sweep on write, counters restarting
// after expiry, and the protocol-level failure replies.
func TestExpireTTLIncrSemantics(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	var nowNs atomic.Int64
	nowNs.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	advance := func(d time.Duration) { nowNs.Add(int64(d)) }
	srv, addr, done := startServerOpts(t, st, Options{
		Now: func() time.Time { return time.Unix(0, nowNs.Load()) },
	})

	cl := dial(t, addr)

	// Deadline set, visible via TTL, enforced lazily on read.
	cl.must(t, "SET k v", "OK")
	cl.must(t, "TTL k", "TTL -1")
	cl.must(t, "EXPIRE k 5", "OK")
	cl.must(t, "TTL k", "TTL 5")
	cl.must(t, "GET k", "VALUE v")
	advance(6 * time.Second)
	cl.must(t, "GET k", "NOTFOUND")
	cl.must(t, "TTL k", "NOTFOUND")
	cl.must(t, "EXPIRE k 5", "NOTFOUND")

	// A write to the key sweeps the stale deadline.
	cl.must(t, "SET k v2", "OK")
	cl.must(t, "TTL k", "TTL -1")
	cl.must(t, "GET k", "VALUE v2")

	// EXPIRE <= 0 enforces immediately; EXPIRE on a missing key reports it.
	cl.must(t, "SET gone x", "OK")
	cl.must(t, "EXPIRE gone 0", "OK")
	cl.must(t, "GET gone", "NOTFOUND")
	cl.must(t, "EXPIRE never-was 5", "NOTFOUND")

	// Counters: INCR over an expired value restarts from zero.
	cl.must(t, "SET c 41", "OK")
	cl.must(t, "INCR c", "INT 42")
	cl.must(t, "EXPIRE c 1", "OK")
	advance(2 * time.Second)
	cl.must(t, "INCR c", "INT 1")
	cl.must(t, "TTL c", "TTL -1")

	// Protocol-level failures are replies, not aborts: the connection (and
	// any batch-mates) keep working.
	cl.must(t, "SET s not-a-number", "OK")
	cl.must(t, "INCR s", "ERR value is not an integer")
	cl.must(t, "SET o 9223372036854775807", "OK")
	cl.must(t, "INCR o", "ERR increment overflows a 64-bit integer")
	cl.must(t, "DECR o", "INT 9223372036854775806")
	cl.must(t, "GET s", "VALUE not-a-number")

	// Keys must not contain NUL: it is the expiry sidecar's marker byte.
	cl.must(t, "SET bad\x00key v", "ERR key must not contain NUL")
	cl.must(t, "GET bad\x00key", "ERR key must not contain NUL")
	cl.must(t, "INCR bad\x00key", "ERR key must not contain NUL")

	cl.c.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
}
