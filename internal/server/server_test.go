package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/shard"
)

func newTestStore(t *testing.T) *shard.Store {
	t.Helper()
	st, err := shard.Open(shard.Options{
		Shards:     4,
		RegionSize: 512 << 10,
		CoordSize:  64 << 10,
		Variant:    core.RomLog,
		Audit:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func startServer(t *testing.T, st *shard.Store) (*Server, net.Addr, chan error) {
	t.Helper()
	srv := New(st, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return srv, ln.Addr(), done
}

type client struct {
	c net.Conn
	r *bufio.Reader
}

func dial(t *testing.T, addr net.Addr) *client {
	t.Helper()
	c, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	return &client{c: c, r: bufio.NewReader(c)}
}

// do sends one command line and returns the reply line.
func (cl *client) do(line string) (string, error) {
	if _, err := fmt.Fprintf(cl.c, "%s\n", line); err != nil {
		return "", err
	}
	reply, err := cl.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(reply, "\r\n"), nil
}

func (cl *client) must(t *testing.T, line, want string) {
	t.Helper()
	got, err := cl.do(line)
	if err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	if got != want {
		t.Fatalf("%s: reply %q, want %q", line, got, want)
	}
}

// TestServerProtocol pins the command surface over one connection.
func TestServerProtocol(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServer(t, st)

	cl := dial(t, addr)
	cl.must(t, "PING", "PONG")
	cl.must(t, "GET nope", "NOTFOUND")
	cl.must(t, "SET greeting hello shard world", "OK")
	cl.must(t, "GET greeting", "VALUE hello shard world")
	cl.must(t, "DEL greeting", "OK")
	cl.must(t, "GET greeting", "NOTFOUND")

	// MULTI queues, EXEC commits atomically, queue order wins per key.
	cl.must(t, "MULTI", "OK")
	cl.must(t, "SET m1 a", "QUEUED 1")
	cl.must(t, "SET m2 b", "QUEUED 2")
	cl.must(t, "DEL m1", "QUEUED 3")
	cl.must(t, "SET m1 c", "QUEUED 4")
	cl.must(t, "EXEC", "OK 4")
	cl.must(t, "GET m1", "VALUE c")
	cl.must(t, "GET m2", "VALUE b")

	cl.must(t, "MULTI", "OK")
	cl.must(t, "SET dropped x", "QUEUED 1")
	cl.must(t, "DISCARD", "OK")
	cl.must(t, "GET dropped", "NOTFOUND")

	// Error surface.
	for _, bad := range []struct{ cmd, prefix string }{
		{"EXEC", "ERR EXEC without MULTI"},
		{"DISCARD", "ERR DISCARD without MULTI"},
		{"GET", "ERR GET"},
		{"GET two keys", "ERR GET"},
		{"SET", "ERR SET"},
		{"FROB x", "ERR unknown"},
	} {
		got, err := cl.do(bad.cmd)
		if err != nil {
			t.Fatalf("%s: %v", bad.cmd, err)
		}
		if !strings.HasPrefix(got, bad.prefix) {
			t.Fatalf("%s: reply %q, want prefix %q", bad.cmd, got, bad.prefix)
		}
	}

	got, err := cl.do("STATS")
	if err != nil || !strings.HasPrefix(got, "STATS {") {
		t.Fatalf("STATS reply %q (err %v)", got, err)
	}
	cl.must(t, "QUIT", "BYE")

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestServerConcurrentAndCrashRecover is the acceptance test: at least 4
// concurrent connections run mixed single-key and MULTI traffic, the server
// drains gracefully (idle connections included), and every write that was
// ACKNOWLEDGED on the wire survives a simulated crash + recovery of the
// whole store.
func TestServerConcurrentAndCrashRecover(t *testing.T) {
	st := newTestStore(t)
	srv, addr, done := startServer(t, st)

	const clients = 6
	const perClient = 40
	type ack struct{ key, val string } // val == "" means acked delete
	acked := make([][]ack, clients)

	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := dial(t, addr)
			defer cl.c.Close()
			for i := 0; i < perClient; i++ {
				k := fmt.Sprintf("c%d-k%03d", ci, i)
				v := fmt.Sprintf("v%d-%d", ci, i)
				switch i % 4 {
				case 0, 1: // single-key set
					if got, err := cl.do("SET " + k + " " + v); err != nil || got != "OK" {
						t.Errorf("client %d SET: %q %v", ci, got, err)
						return
					}
					acked[ci] = append(acked[ci], ack{k, v})
				case 2: // cross-shard MULTI: 4 sets under one EXEC
					if got, err := cl.do("MULTI"); err != nil || got != "OK" {
						t.Errorf("client %d MULTI: %q %v", ci, got, err)
						return
					}
					var batch []ack
					for j := 0; j < 4; j++ {
						mk := fmt.Sprintf("%s-m%d", k, j)
						if got, err := cl.do("SET " + mk + " " + v); err != nil || !strings.HasPrefix(got, "QUEUED") {
							t.Errorf("client %d queued SET: %q %v", ci, got, err)
							return
						}
						batch = append(batch, ack{mk, v})
					}
					if got, err := cl.do("EXEC"); err != nil || got != "OK 4" {
						t.Errorf("client %d EXEC: %q %v", ci, got, err)
						return
					}
					acked[ci] = append(acked[ci], batch...)
				case 3: // set then delete
					if got, err := cl.do("SET " + k + " " + v); err != nil || got != "OK" {
						t.Errorf("client %d SET: %q %v", ci, got, err)
						return
					}
					if got, err := cl.do("DEL " + k); err != nil || got != "OK" {
						t.Errorf("client %d DEL: %q %v", ci, got, err)
						return
					}
					acked[ci] = append(acked[ci], ack{k, ""})
				}
			}
		}(ci)
	}

	// One extra idle connection sits in a blocked read through the whole
	// run; the graceful drain must still complete promptly.
	idle := dial(t, addr)
	defer idle.c.Close()

	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// Crash the whole store: capture every device's surviving media image
	// and recover from those. Every acknowledged write was durable before
	// its reply, so nothing acked may be missing.
	devs := st.Devices()
	imgs := make([][]byte, len(devs))
	for i, d := range devs {
		imgs[i] = d.CrashImage(pmem.DropAll)
	}
	if n := st.ViolationCount(); n != 0 {
		t.Fatalf("auditors recorded %d violations during serving", n)
	}

	rdevs := make([]*pmem.Device, len(imgs))
	for i, img := range imgs {
		rdevs[i] = pmem.FromImage(img, pmem.ModelDRAM)
	}
	rst, err := shard.Reopen(rdevs, shard.Options{Variant: core.RomLog, Audit: true})
	if err != nil {
		t.Fatalf("Reopen after crash: %v", err)
	}
	checked := 0
	for _, list := range acked {
		for _, a := range list {
			got, err := rst.Get([]byte(a.key))
			if a.val == "" {
				if err != shard.ErrNotFound {
					t.Fatalf("acked delete of %s resurfaced: %q err=%v", a.key, got, err)
				}
			} else {
				if err != nil {
					t.Fatalf("acked write %s lost after crash: %v", a.key, err)
				}
				if string(got) != a.val {
					t.Fatalf("acked write %s = %q, want %q", a.key, got, a.val)
				}
			}
			checked++
		}
	}
	if checked < clients*perClient {
		t.Fatalf("only %d acked ops checked", checked)
	}
	if n := rst.ViolationCount(); n != 0 {
		t.Fatalf("recovery recorded %d violations", n)
	}
	t.Logf("verified %d acknowledged ops across %d clients after crash+recover", checked, clients)
}

// TestServerShutdownRefusesNewConns pins that a draining server stops
// accepting while still letting Serve return cleanly.
func TestServerShutdownRefusesNewConns(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServer(t, st)

	cl := dial(t, addr)
	cl.must(t, "SET k v", "OK")

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if c, err := net.Dial("tcp", addr.String()); err == nil {
		// The listener is closed; at best the dial is refused, at worst the
		// kernel accepted it before close — either way no service.
		c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		if _, err := fmt.Fprintf(c, "PING\n"); err == nil {
			buf := make([]byte, 8)
			if n, _ := c.Read(buf); n > 0 {
				t.Fatalf("draining server answered: %q", buf[:n])
			}
		}
		c.Close()
	}
}
