// Group commit: the scheduler that funnels writes from ALL connections into
// shared per-shard batches.
//
// The engines already amortize durability inside one shard: concurrent
// update transactions entering a shard's flat combiner share a single
// ≤4-fence durability round (PR 4's combined commit). What they cannot do is
// merge operations that never overlap in the combiner — a request/response
// server admits one write per connection round-trip, so batches stay thin
// and every client pays a full psync. The Committer closes that gap at the
// network layer: each shard has one commit loop that drains every queued
// operation (from any connection, pipelined arbitrarily deep), executes them
// all inside ONE durable shard transaction, and only then releases every
// operation's reply. N writers share one durability round instead of paying
// N; fences per acknowledged write drop below one as soon as batches carry
// more than a handful of operations.
//
// Scheduling: a batch closes when MaxBatch operations have been drained or
// when Linger has elapsed since the first operation of the batch arrived,
// whichever is first — so MaxBatch bounds transaction size and Linger bounds
// the tail latency a lone write can be held hostage for. Linger 0 (the
// default) never waits: a batch is whatever is queued at the moment the
// loop gets to it, which still merges bursts under load and adds no idle
// latency.
//
// Failure isolation: operations report protocol-level failures ("ERR value
// is not an integer") as replies, not transaction errors, so they cannot
// abort batch-mates. A real transaction error (media fault, heap
// exhaustion) rolls the whole batch back; the committer then re-runs every
// operation solo so the poisoned operation fails alone — mirroring the flat
// combiner's own solo re-run rule one level up.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/blackbox"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/ptm"
	"repro/internal/shard"
)

// DefaultGroupMaxBatch bounds one group-commit batch when
// Options.GroupMaxBatch is 0.
const DefaultGroupMaxBatch = 256

// OpFunc is one operation inside a group-commit transaction. It returns the
// wire reply for the operation; a non-nil error aborts the WHOLE batch
// transaction (the committer then isolates it by re-running every operation
// solo), so operation-level failures that should not disturb batch-mates
// must be encoded as "ERR ..." replies with a nil error. fn may run more
// than once (batch attempt, then solo) and must be deterministic
// read-modify-write over the transaction it is handed.
type OpFunc func(tx ptm.Tx, db *kvstore.DB) (string, error)

// Pending is one submitted operation's future. The reply becomes readable
// exactly when the psync of the durability round that committed the
// operation has completed — waiting on it IS the durable-before-reply
// guarantee.
type Pending struct {
	fn   OpFunc
	op   string // label for error rendering ("set", "incr", ...)
	conn uint64
	tag  any
	enq  time.Time
	seq  uint64
	text string
	done chan struct{}
	// keys are the operation's routing keys (base key plus sidecars). They
	// let the commit loop detect an operation whose ownership migrated off
	// the submitted shard while it sat in the queue; nil pins the operation
	// to the submitted shard (harness submissions, which never race a
	// migration).
	keys [][]byte
	// redo re-dispatches a re-routed operation on whatever shard owns its
	// keys now. The commit loop calls it OUTSIDE the batch's route pin, so
	// it may take the store's migration lock itself.
	redo func() string
	// sp, when tracing, is the request's span; the commit loop stamps the
	// queue-drain, tx-start and psync-done boundaries on it. Only the loop
	// writes these fields, and the writer goroutine reads them strictly
	// after done closes.
	sp *spanInfo
}

// Wait blocks until the operation's durability round completed and returns
// its reply line.
func (p *Pending) Wait() string {
	<-p.done
	return p.text
}

// Done returns a channel closed when the operation is durable and its reply
// final.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Seq returns the per-shard batch sequence number that committed the
// operation. Valid only after Done; crash harnesses use it to assert batch
// atomicity.
func (p *Pending) Seq() uint64 { return p.seq }

// Tag returns the opaque value given to Submit.
func (p *Pending) Tag() any { return p.tag }

// GroupOptions configure a Committer.
type GroupOptions struct {
	// MaxBatch bounds operations per batch transaction (0 =
	// DefaultGroupMaxBatch).
	MaxBatch int
	// Linger is how long a batch may wait for more operations after its
	// first arrives (0 = commit immediately with whatever is queued).
	Linger time.Duration
	// Registry receives net_group_* metrics; nil keeps a private registry.
	Registry *obs.Registry
	// OnBatch, when non-nil, is called with a batch's membership BEFORE its
	// transaction starts — crash harnesses record it so a crash inside the
	// round can be checked all-or-nothing against known membership.
	OnBatch func(shard int, seq uint64, ops []*Pending)
}

// Committer is the group-commit scheduler: one commit loop per shard of the
// store, each merging queued operations into shared durable transactions.
type Committer struct {
	st       *shard.Store
	maxBatch int
	linger   time.Duration
	onBatch  func(int, uint64, []*Pending)
	flight   bool // the store has flight recorders; stamp batch records

	// qmu guards queues against growth: a SPLIT that adds a shard calls
	// EnsureShards so writes routed to the new shard after cutover have a
	// commit loop to land on.
	qmu    sync.RWMutex
	queues []chan *Pending
	closed bool
	wg     sync.WaitGroup
	once   sync.Once

	batches    *obs.Counter
	batchOps   *obs.Counter
	soloRuns   *obs.Counter
	reroutes   *obs.Counter
	batchConns *obs.Histogram
	ackNs      *obs.Histogram
}

// NewCommitter starts one commit loop per shard of st. Close stops them.
func NewCommitter(st *shard.Store, opts GroupOptions) *Committer {
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultGroupMaxBatch
	}
	c := &Committer{
		st:         st,
		maxBatch:   maxBatch,
		linger:     opts.Linger,
		onBatch:    opts.OnBatch,
		flight:     st.HasFlightRecorder(),
		queues:     make([]chan *Pending, st.NumShards()),
		batches:    reg.Counter("net_group_batch_total"),
		batchOps:   reg.Counter("net_group_batch_ops_total"),
		soloRuns:   reg.Counter("net_group_solo_total"),
		reroutes:   reg.Counter("net_group_reroute_total"),
		batchConns: reg.Histogram("net_group_batch_conns"),
		ackNs:      reg.Histogram("net_ack_latency_ns"),
	}
	for i := range c.queues {
		c.queues[i] = make(chan *Pending, 4*maxBatch)
		c.wg.Add(1)
		go c.loop(i, c.queues[i])
	}
	return c
}

// EnsureShards grows the committer to at least n shard queues, starting a
// commit loop per new shard. The server calls it when a SPLIT provisions a
// shard, so writes that route there after the cutover have a loop to land
// on; Submit also calls it defensively. No-op after Close.
func (c *Committer) EnsureShards(n int) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if c.closed {
		return
	}
	for len(c.queues) < n {
		q := make(chan *Pending, 4*c.maxBatch)
		c.queues = append(c.queues, q)
		c.wg.Add(1)
		go c.loop(len(c.queues)-1, q)
	}
}

// queue returns shard sh's channel, growing the queue set if a migration
// added shards since the committer started.
func (c *Committer) queue(sh int) chan *Pending {
	c.qmu.RLock()
	if sh < len(c.queues) {
		q := c.queues[sh]
		c.qmu.RUnlock()
		return q
	}
	c.qmu.RUnlock()
	c.EnsureShards(sh + 1)
	c.qmu.RLock()
	defer c.qmu.RUnlock()
	return c.queues[sh]
}

// Submit enqueues fn for key's shard sh and returns its future. conn
// identifies the submitting connection (for the batch-fan-in histogram), op
// labels error replies, tag rides along for harnesses. Operations of one
// shard commit in submission order (the queue is FIFO and the loop drains it
// in order), so a connection that submits its writes in request order gets
// per-key ordering for free. Submit must not be called after Close.
func (c *Committer) Submit(sh int, conn uint64, op string, tag any, fn OpFunc) *Pending {
	p := &Pending{fn: fn, op: op, conn: conn, tag: tag, enq: time.Now(), done: make(chan struct{})}
	c.queue(sh) <- p
	return p
}

// submitSpan is Submit with a request span and routing keys attached. The
// span MUST be wired before the channel send — the commit loop may pick the
// Pending up the instant it is queued, so attaching afterwards is a data
// race. The send is the happens-before edge that publishes sp's reader-side
// stamps to the loop. keys/redo let the commit loop re-dispatch the
// operation if a migration cutover moves its keys off sh while it queues.
func (c *Committer) submitSpan(sh int, conn uint64, op string, sp *spanInfo, keys [][]byte, redo func() string, fn OpFunc) *Pending {
	p := &Pending{fn: fn, op: op, conn: conn, enq: time.Now(), done: make(chan struct{}), keys: keys, redo: redo}
	if sp != nil {
		sp.op = op
		sp.parsed = p.enq
		sp.shard = sh
		p.sp = sp
	}
	c.queue(sh) <- p
	return p
}

// Close drains every queue — all submitted operations still commit and
// resolve — and stops the commit loops. Callers must stop Submitting first.
func (c *Committer) Close() {
	c.once.Do(func() {
		c.qmu.Lock()
		c.closed = true
		for _, q := range c.queues {
			close(q)
		}
		c.qmu.Unlock()
	})
	c.wg.Wait()
}

// loop is shard sh's commit loop.
func (c *Committer) loop(sh int, q chan *Pending) {
	defer c.wg.Done()
	var seq uint64
	batch := make([]*Pending, 0, c.maxBatch)
	for first := range q {
		stampDrain(first)
		batch = append(batch[:0], first)
		batch = c.drainInto(q, batch)
		if c.linger > 0 && len(batch) < c.maxBatch {
			t := time.NewTimer(c.linger)
		linger:
			for len(batch) < c.maxBatch {
				select {
				case p, ok := <-q:
					if !ok {
						break linger
					}
					stampDrain(p)
					batch = append(batch, p)
					batch = c.drainInto(q, batch)
				case <-t.C:
					break linger
				}
			}
			t.Stop()
		}
		seq++
		c.commit(sh, seq, batch)
	}
}

// stampDrain marks the moment an operation left its shard queue — the
// queue_wait/batch_form boundary of its span. No-op (no clock read) when the
// operation is untraced.
func stampDrain(p *Pending) {
	if p.sp != nil {
		p.sp.drain = time.Now()
	}
}

// drainInto appends queued operations without waiting, up to the batch
// bound. Traced operations drained by one sweep share one drain timestamp.
func (c *Committer) drainInto(q chan *Pending, batch []*Pending) []*Pending {
	var now time.Time
	for len(batch) < c.maxBatch {
		select {
		case p, ok := <-q:
			if !ok {
				return batch
			}
			if p.sp != nil {
				if now.IsZero() {
					now = time.Now()
				}
				p.sp.drain = now
			}
			batch = append(batch, p)
		default:
			return batch
		}
	}
	return batch
}

// commit runs one batch as a single durable shard transaction and releases
// every member's reply after its psync. On a transaction-level error the
// batch rolls back untouched and each operation re-runs solo.
//
// Flight recording brackets the transaction: the BatchStart record is fenced
// onto the shard's blackbox ring BEFORE the batch runs — so a crash anywhere
// inside the durability round leaves a durable record naming the in-flight
// batch — and the BatchCommit record lands after the psync, so a durable
// commit record implies the batch's data is durable too (the psync strictly
// preceded the record's own fence).
// commit additionally pins routing for the whole batch: an elastic-shard
// cutover can flip slot ownership between an operation's submit (it was
// routed to sh then) and its drain (it commits now). The write handle holds
// the store's migration read lock across the transaction, so ownership
// cannot flip mid-batch; operations whose keys already re-routed off sh
// while queued are split out and re-dispatched on their new shard after the
// batch (p.redo), which preserves submission order per key — a key's queued
// operations either all still route here or all moved with it.
func (c *Committer) commit(sh int, seq uint64, ops []*Pending) {
	var rkeys [][]byte
	for _, p := range ops {
		rkeys = append(rkeys, p.keys...)
	}
	h := c.st.BeginWrite(rkeys...)
	local := ops
	var moved []*Pending
	if len(rkeys) > 0 {
		local = ops[:0]
		for _, p := range ops {
			if c.routedHere(h, p, sh) {
				local = append(local, p)
			} else {
				moved = append(moved, p)
			}
		}
	}
	if len(local) > 0 {
		c.commitLocal(h, sh, seq, local)
	}
	h.Done()
	// Re-dispatches run outside the handle: each takes its own route pin
	// (and the cross-shard path takes the migration lock), which would
	// deadlock against a cutover waiting on ours.
	for _, p := range moved {
		c.reroutes.Inc()
		p.text = p.redo()
		c.finish(p, seq, soloEnd(p))
	}
}

// routedHere reports whether p's keys all still route to sh under the
// batch's route pin. Keyless (or redo-less) operations are pinned to their
// submitted shard.
func (c *Committer) routedHere(h *shard.WriteHandle, p *Pending, sh int) bool {
	if p.keys == nil || p.redo == nil {
		return true
	}
	for _, k := range p.keys {
		if h.Route(k) != sh {
			return false
		}
	}
	return true
}

// commitLocal runs the batch members still routed to sh as one durable
// shard transaction. Caller holds the batch's route pin.
func (c *Committer) commitLocal(h *shard.WriteHandle, sh int, seq uint64, ops []*Pending) {
	if c.onBatch != nil {
		c.onBatch(sh, seq, ops)
	}
	conns := distinctConns(ops)
	if c.flight {
		c.st.RecordFlight(sh, blackbox.Record{
			Kind:     blackbox.KindBatchStart,
			BatchSeq: seq,
			Req:      firstReq(ops),
			Ops:      uint32(len(ops)),
			Conns:    uint32(conns),
		})
	}
	var txStart time.Time
	for _, p := range ops {
		if p.sp != nil {
			if txStart.IsZero() {
				txStart = time.Now()
			}
			p.sp.txStart = txStart
		}
	}
	err := c.st.Update(sh, func(tx ptm.Tx, db *kvstore.DB) error {
		for _, p := range ops {
			text, err := p.fn(tx, db)
			if err != nil {
				return err
			}
			p.text = text
		}
		return nil
	})
	if err != nil {
		for _, p := range ops {
			c.soloRuns.Inc()
			serr := c.st.Update(sh, func(tx ptm.Tx, db *kvstore.DB) error {
				text, err := p.fn(tx, db)
				if err != nil {
					return err
				}
				p.text = text
				return nil
			})
			if serr != nil {
				p.text = renderOpError(p.op, serr)
			}
			c.finish(p, seq, soloEnd(p))
		}
		c.flightCommit(sh, seq, len(ops))
		return
	}
	var end time.Time
	for _, p := range ops {
		if p.sp != nil && end.IsZero() {
			end = time.Now()
		}
	}
	c.batches.Inc()
	c.batchOps.Add(uint64(len(ops)))
	c.batchConns.Observe(uint64(conns))
	// Commit record before reply release: once a client reads an ack, the
	// batch's BatchCommit record is already on the ring.
	c.flightCommit(sh, seq, len(ops))
	for _, p := range ops {
		c.finish(p, seq, end)
	}
}

// flightCommit records a batch's resolution (shared tx or solo re-runs) on
// the shard's blackbox ring.
func (c *Committer) flightCommit(sh int, seq uint64, ops int) {
	if c.flight {
		c.st.RecordFlight(sh, blackbox.Record{
			Kind:     blackbox.KindBatchCommit,
			BatchSeq: seq,
			Ops:      uint32(ops),
		})
	}
}

// soloEnd takes the durable timestamp for one solo re-run (only when traced).
func soloEnd(p *Pending) time.Time {
	if p.sp == nil {
		return time.Time{}
	}
	return time.Now()
}

// firstReq returns the request id of the first traced operation in a batch
// (0 when tracing is off) — the flight record's anchor back into /trace.
func firstReq(ops []*Pending) uint64 {
	for _, p := range ops {
		if p.sp != nil {
			return p.sp.req
		}
	}
	return 0
}

// finish stamps the committing round and publishes the reply. durable is the
// post-psync timestamp for the span (zero when untraced).
func (c *Committer) finish(p *Pending, seq uint64, durable time.Time) {
	p.seq = seq
	if p.sp != nil {
		p.sp.durable = durable
		p.sp.batchSeq = seq
	}
	c.ackNs.Observe(uint64(time.Since(p.enq)))
	close(p.done)
}

// GroupStats is the group-commit section of a STATS reply: cumulative batch
// counters plus the live per-shard queue depths. MeanBatchOps is the
// amortization the layer achieves (operations per durability round).
type GroupStats struct {
	Batches      uint64  `json:"batches"`
	BatchOps     uint64  `json:"batch_ops"`
	SoloRuns     uint64  `json:"solo_runs"`
	Reroutes     uint64  `json:"reroutes"`
	MeanBatchOps float64 `json:"mean_batch_ops"`
	QueueDepth   []int   `json:"queue_depth"`
}

// Stats snapshots the committer for STATS replies. Queue depths are
// instantaneous (the loops keep draining while we look).
func (c *Committer) Stats() GroupStats {
	c.qmu.RLock()
	queues := c.queues
	c.qmu.RUnlock()
	g := GroupStats{
		Batches:    c.batches.Load(),
		BatchOps:   c.batchOps.Load(),
		SoloRuns:   c.soloRuns.Load(),
		Reroutes:   c.reroutes.Load(),
		QueueDepth: make([]int, len(queues)),
	}
	if g.Batches > 0 {
		g.MeanBatchOps = float64(g.BatchOps) / float64(g.Batches)
	}
	for i, q := range queues {
		g.QueueDepth[i] = len(q)
	}
	return g
}

// distinctConns counts how many different connections a batch merged — the
// cross-connection fan-in the group-commit design exists for.
func distinctConns(ops []*Pending) int {
	if len(ops) < 2 {
		return len(ops)
	}
	seen := make(map[uint64]struct{}, len(ops))
	for _, p := range ops {
		seen[p.conn] = struct{}{}
	}
	return len(seen)
}

// renderOpError turns a store error into its wire reply: a quarantined
// shard's *UnavailError passes through verbatim as the typed UNAVAIL reply,
// anything else becomes "ERR <op>: <err>".
func renderOpError(op string, err error) string {
	var ue *shard.UnavailError
	if errors.As(err, &ue) {
		return ue.Error()
	}
	return fmt.Sprintf("ERR %s: %v", op, err)
}
