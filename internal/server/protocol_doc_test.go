package server

import (
	"context"
	"encoding/json"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// docCommandRow matches one row of docs/PROTOCOL.md's command-reference
// table: a leading cell holding exactly one backticked upper-case verb.
var docCommandRow = regexp.MustCompile("^\\| `([A-Z]+)` \\|")

// TestProtocolDocCoversEveryCommand diffs the command table of
// docs/PROTOCOL.md against the server's dispatch set (Commands), both ways:
// a verb the server dispatches but the doc omits fails, and so does a verb
// the doc promises but the server no longer serves. This is what keeps the
// wire reference from silently falling behind the dispatch switch.
func TestProtocolDocCoversEveryCommand(t *testing.T) {
	data, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading protocol reference: %v", err)
	}
	// Scan only the "## Command reference" section: later tables (the error
	// taxonomy) reuse the cell format for reply tokens, not commands.
	documented := map[string]bool{}
	inSection := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			inSection = strings.HasPrefix(line, "## Command reference")
			continue
		}
		if !inSection {
			continue
		}
		if m := docCommandRow.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no command rows found in docs/PROTOCOL.md; did the table format change?")
	}

	served := Commands()
	for _, verb := range served {
		if !documented[verb] {
			t.Errorf("command %s is dispatched by the server but missing from docs/PROTOCOL.md's command table", verb)
		}
	}
	var extra []string
	servedSet := map[string]bool{}
	for _, verb := range served {
		servedSet[verb] = true
	}
	for verb := range documented {
		if !servedSet[verb] {
			extra = append(extra, verb)
		}
	}
	sort.Strings(extra)
	for _, verb := range extra {
		t.Errorf("docs/PROTOCOL.md documents %s, which the server does not dispatch", verb)
	}
}

// docStatsKeyRow matches one row of the "### STATS fields" table: a leading
// cell holding exactly one backticked snake_case key.
var docStatsKeyRow = regexp.MustCompile("^\\| `([a-z_]+)` \\|")

// TestProtocolDocCoversStatsFields diffs the STATS-fields table of
// docs/PROTOCOL.md against a marshaled StatsReply, both ways: a top-level
// key the server sends but the doc omits fails, and so does a documented
// key the reply no longer carries. The group_commit sub-keys are pinned
// too (they are named in the section's prose).
func TestProtocolDocCoversStatsFields(t *testing.T) {
	data, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading protocol reference: %v", err)
	}
	documented := map[string]bool{}
	inSection := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "#") {
			inSection = strings.Contains(line, "STATS fields")
			continue
		}
		if !inSection {
			continue
		}
		if m := docStatsKeyRow.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no STATS field rows found in docs/PROTOCOL.md; did the table format change?")
	}

	st := newTestStore(t)
	defer st.Close()
	srv := New(st, Options{})
	defer srv.Shutdown(context.Background())
	raw, err := json.Marshal(srv.StatsReply())
	if err != nil {
		t.Fatal(err)
	}
	var reply map[string]json.RawMessage
	if err := json.Unmarshal(raw, &reply); err != nil {
		t.Fatal(err)
	}
	for key := range reply {
		if !documented[key] {
			t.Errorf("STATS sends top-level key %q, missing from docs/PROTOCOL.md's STATS fields table", key)
		}
	}
	for key := range documented {
		if _, ok := reply[key]; !ok {
			t.Errorf("docs/PROTOCOL.md documents STATS key %q, which the reply does not carry", key)
		}
	}

	var group map[string]json.RawMessage
	if err := json.Unmarshal(reply["group_commit"], &group); err != nil {
		t.Fatalf("group_commit is not an object: %v", err)
	}
	doc := string(data)
	for key := range group {
		if !strings.Contains(doc, "`"+key+"`") {
			t.Errorf("STATS group_commit sends sub-key %q, not named in docs/PROTOCOL.md", key)
		}
	}
	for _, key := range []string{"batches", "batch_ops", "solo_runs", "reroutes", "mean_batch_ops", "queue_depth"} {
		if _, ok := group[key]; !ok {
			t.Errorf("documented group_commit sub-key %q missing from the reply", key)
		}
	}

	var placement map[string]json.RawMessage
	if err := json.Unmarshal(reply["placement"], &placement); err != nil {
		t.Fatalf("placement is not an object: %v", err)
	}
	for key := range placement {
		if !strings.Contains(doc, "`"+key+"`") {
			t.Errorf("STATS placement sends sub-key %q, not named in docs/PROTOCOL.md", key)
		}
	}
	// migration is omitempty — present only while a journal is open — so only
	// the always-present keys are required here; migrate tests cover the rest.
	for _, key := range []string{"slots", "version", "shard_slots"} {
		if _, ok := placement[key]; !ok {
			t.Errorf("documented placement sub-key %q missing from the reply", key)
		}
	}
}

// TestCommandsMatchesDispatch drives every verb Commands claims through a
// live server, asserting none answers "ERR unknown command" — so the list
// the doc test trusts is itself honest about the dispatch switch.
func TestCommandsMatchesDispatch(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServer(t, st)
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	for _, verb := range Commands() {
		if verb == "QUIT" {
			continue // closes the connection; dispatch is pinned by other tests
		}
		cl := dial(t, addr)
		reply, err := cl.do(verb)
		cl.c.Close()
		if err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
		if strings.HasPrefix(reply, "ERR unknown command") {
			t.Errorf("Commands() lists %s but the server does not dispatch it: %q", verb, reply)
		}
	}
}
