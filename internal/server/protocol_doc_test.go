package server

import (
	"context"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// docCommandRow matches one row of docs/PROTOCOL.md's command-reference
// table: a leading cell holding exactly one backticked upper-case verb.
var docCommandRow = regexp.MustCompile("^\\| `([A-Z]+)` \\|")

// TestProtocolDocCoversEveryCommand diffs the command table of
// docs/PROTOCOL.md against the server's dispatch set (Commands), both ways:
// a verb the server dispatches but the doc omits fails, and so does a verb
// the doc promises but the server no longer serves. This is what keeps the
// wire reference from silently falling behind the dispatch switch.
func TestProtocolDocCoversEveryCommand(t *testing.T) {
	data, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading protocol reference: %v", err)
	}
	// Scan only the "## Command reference" section: later tables (the error
	// taxonomy) reuse the cell format for reply tokens, not commands.
	documented := map[string]bool{}
	inSection := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			inSection = strings.HasPrefix(line, "## Command reference")
			continue
		}
		if !inSection {
			continue
		}
		if m := docCommandRow.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no command rows found in docs/PROTOCOL.md; did the table format change?")
	}

	served := Commands()
	for _, verb := range served {
		if !documented[verb] {
			t.Errorf("command %s is dispatched by the server but missing from docs/PROTOCOL.md's command table", verb)
		}
	}
	var extra []string
	servedSet := map[string]bool{}
	for _, verb := range served {
		servedSet[verb] = true
	}
	for verb := range documented {
		if !servedSet[verb] {
			extra = append(extra, verb)
		}
	}
	sort.Strings(extra)
	for _, verb := range extra {
		t.Errorf("docs/PROTOCOL.md documents %s, which the server does not dispatch", verb)
	}
}

// TestCommandsMatchesDispatch drives every verb Commands claims through a
// live server, asserting none answers "ERR unknown command" — so the list
// the doc test trusts is itself honest about the dispatch switch.
func TestCommandsMatchesDispatch(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServer(t, st)
	defer func() {
		srv.Shutdown(context.Background())
		<-done
	}()

	for _, verb := range Commands() {
		if verb == "QUIT" {
			continue // closes the connection; dispatch is pinned by other tests
		}
		cl := dial(t, addr)
		reply, err := cl.do(verb)
		cl.c.Close()
		if err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
		if strings.HasPrefix(reply, "ERR unknown command") {
			t.Errorf("Commands() lists %s but the server does not dispatch it: %q", verb, reply)
		}
	}
}
