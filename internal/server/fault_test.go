package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/shard"
)

// startServerOpts is startServer with explicit Options.
func startServerOpts(t *testing.T, st *shard.Store, opts Options) (*Server, net.Addr, chan error) {
	t.Helper()
	srv := New(st, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return srv, ln.Addr(), done
}

// TestServerIdleTimeout pins the per-connection idle read deadline: an idle
// connection is closed after the timeout, while an active one survives many
// multiples of it.
func TestServerIdleTimeout(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServerOpts(t, st, Options{IdleTimeout: 100 * time.Millisecond})

	active := dial(t, addr)
	idle := dial(t, addr)
	idle.c.SetReadDeadline(time.Now().Add(5 * time.Second))

	// The active client keeps issuing commands across > 10 idle windows.
	deadline := time.Now().Add(1200 * time.Millisecond)
	for time.Now().Before(deadline) {
		active.must(t, "PING", "PONG")
		time.Sleep(50 * time.Millisecond)
	}

	// The idle client must have been disconnected (EOF on its next read).
	if _, err := idle.r.ReadByte(); err == nil {
		t.Fatal("idle connection still open after > 10 idle windows")
	}
	active.must(t, "QUIT", "BYE")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestServerBatchBound pins the MULTI queue bound: the op that would exceed
// MaxBatchOps answers "ERR batch too large" and discards the batch.
func TestServerBatchBound(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv, addr, done := startServerOpts(t, st, Options{MaxBatchOps: 4})

	cl := dial(t, addr)
	cl.must(t, "MULTI", "OK")
	for i := 0; i < 4; i++ {
		cl.must(t, fmt.Sprintf("SET bk-%d v%d", i, i), fmt.Sprintf("QUEUED %d", i+1))
	}
	cl.must(t, "SET bk-4 v4", "ERR batch too large")
	// The batch was discarded with the error: EXEC has no MULTI to commit,
	// and none of the queued keys were applied.
	if got, _ := cl.do("EXEC"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("EXEC after overflow: %q, want ERR (batch discarded)", got)
	}
	cl.must(t, "GET bk-0", "NOTFOUND")
	// A fresh MULTI within the bound still commits.
	cl.must(t, "MULTI", "OK")
	cl.must(t, "SET ok-key ok-val", "QUEUED 1")
	cl.must(t, "EXEC", "OK 1")
	cl.must(t, "GET ok-key", "VALUE ok-val")
	cl.must(t, "QUIT", "BYE")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-done
}

// TestServerDegradedModeAndScrub is the end-to-end degraded-mode scenario:
// a shard is quarantined by sticky media faults mid-traffic; romulusd keeps
// serving every healthy shard, answers the faulted shard's keys with the
// typed UNAVAIL reply, and SCRUB re-formats and readmits the shard — with
// no acknowledged write on a healthy shard lost at any point.
func TestServerDegradedModeAndScrub(t *testing.T) {
	st, err := shard.Open(shard.Options{
		Shards:           4,
		RegionSize:       512 << 10,
		CoordSize:        64 << 10,
		Variant:          core.RomLog,
		Audit:            true,
		QuarantineFaults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, addr, done := startServerOpts(t, st, Options{})
	cl := dial(t, addr)

	// Find a victim-shard key and populate it with a large value whose
	// interior lines we can poison, plus healthy-shard keys on every other
	// shard.
	const victim = 1
	var vKey string
	for i := 0; ; i++ {
		k := fmt.Sprintf("vk-%04d", i)
		if st.ShardFor([]byte(k)) == victim {
			vKey = k
			break
		}
	}
	bigVal := strings.Repeat("z", 4096)
	cl.must(t, "SET "+vKey+" "+bigVal, "OK")
	healthy := map[string]string{}
	for i := 0; len(healthy) < 24; i++ {
		k := fmt.Sprintf("hk-%04d", i)
		if st.ShardFor([]byte(k)) == victim {
			continue
		}
		healthy[k] = fmt.Sprintf("hv-%04d", i)
		cl.must(t, "SET "+k+" "+healthy[k], "OK")
	}

	// Poison the value's interior lines on the victim shard's device.
	dev := st.Devices()[victim]
	img := dev.Persisted()
	off := bytes.Index(img, []byte(bigVal))
	if off < 0 {
		t.Fatal("value not found in victim shard image")
	}
	for o := off + pmem.LineSize; o < off+len(bigVal)-pmem.LineSize; o += pmem.LineSize {
		dev.MarkBad(o, false)
	}

	// The faulted key answers with the typed UNAVAIL reply and quarantines
	// the shard; every healthy shard keeps serving its acknowledged writes.
	reply, err := cl.do("GET " + vKey)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, fmt.Sprintf("UNAVAIL shard=%d", victim)) {
		t.Fatalf("GET on faulted shard: %q, want UNAVAIL shard=%d prefix", reply, victim)
	}
	if reply, _ := cl.do("SET " + vKey + " nope"); !strings.HasPrefix(reply, "UNAVAIL shard=") {
		t.Fatalf("SET on quarantined shard: %q, want UNAVAIL", reply)
	}
	for k, v := range healthy {
		cl.must(t, "GET "+k, "VALUE "+v)
	}
	cl.must(t, "SET during-quarantine dq", "OK") // healthy writes keep landing
	if st.ShardFor([]byte("during-quarantine")) == victim {
		t.Fatal("test key routed to victim; pick another key")
	}

	// SCRUB readmits the shard: old victim data is reported lost (NOTFOUND,
	// never a wrong value), new writes land, healthy data all still present.
	cl.must(t, fmt.Sprintf("SCRUB %d", victim), "OK")
	cl.must(t, "GET "+vKey, "NOTFOUND")
	cl.must(t, "SET "+vKey+" reborn", "OK")
	cl.must(t, "GET "+vKey, "VALUE reborn")
	for k, v := range healthy {
		cl.must(t, "GET "+k, "VALUE "+v)
	}
	cl.must(t, "GET during-quarantine", "VALUE dq")
	if reply, _ := cl.do(fmt.Sprintf("SCRUB %d", victim)); !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("SCRUB of healthy shard: %q, want ERR", reply)
	}
	cl.must(t, "QUIT", "BYE")

	if n := st.ViolationCount(); n != 0 {
		t.Fatalf("%d durability violations during degraded-mode run", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-done
}
