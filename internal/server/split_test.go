package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/migrate"
	"repro/internal/ptm"
	"repro/internal/shard"
)

// placementReply mirrors the PLACEMENT command's JSON for test decoding.
type placementReply struct {
	Slots      int            `json:"slots"`
	Version    uint64         `json:"version"`
	ShardSlots []int          `json:"shard_slots"`
	Driver     migrate.Status `json:"driver"`
}

func (cl *client) placement(t *testing.T) placementReply {
	t.Helper()
	reply, err := cl.do("PLACEMENT")
	if err != nil {
		t.Fatalf("PLACEMENT: %v", err)
	}
	js, ok := strings.CutPrefix(reply, "PLACEMENT ")
	if !ok {
		t.Fatalf("PLACEMENT reply %q", reply)
	}
	var pr placementReply
	if err := json.Unmarshal([]byte(js), &pr); err != nil {
		t.Fatalf("PLACEMENT json: %v", err)
	}
	return pr
}

// TestServerSplitEndToEnd drives an online split over the wire: SPLIT
// provisions a shard and answers immediately, writes and reads keep being
// served (and stay correct) while the migration runs in the background, and
// PLACEMENT/STATS report the grown slot map once it lands.
func TestServerSplitEndToEnd(t *testing.T) {
	st, err := shard.Open(shard.Options{
		Shards:     2,
		RegionSize: 512 << 10,
		CoordSize:  64 << 10,
		Variant:    core.RomLog,
		Audit:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, addr, done := startServer(t, st)

	cl := dial(t, addr)
	const n = 400
	for i := 0; i < n; i++ {
		cl.must(t, fmt.Sprintf("SET split-key-%03d v%03d", i, i), "OK")
	}
	before := cl.placement(t)
	if len(before.ShardSlots) != 2 || before.Driver.Active {
		t.Fatalf("pre-split placement: %+v", before)
	}

	reply, err := cl.do("SPLIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if reply != "OK 2" {
		t.Fatalf("SPLIT 0: %q, want OK 2", reply)
	}

	// A second connection keeps writing and reading its own writes while the
	// migration proceeds underneath it.
	wcl := dial(t, addr)
	stop := make(chan struct{})
	werrs := make(chan error, 1)
	go func() {
		defer close(werrs)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("live-%03d", i%50)
			if _, err := wcl.do(fmt.Sprintf("SET %s gen%d", k, i)); err != nil {
				werrs <- err
				return
			}
			got, err := wcl.do("GET " + k)
			if err != nil {
				werrs <- err
				return
			}
			if got != fmt.Sprintf("VALUE gen%d", i) {
				werrs <- fmt.Errorf("read-your-writes broke mid-split: %s = %q", k, got)
				return
			}
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	var after placementReply
	for {
		after = cl.placement(t)
		if !after.Driver.Active && after.Driver.Phase != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("split did not finish: %+v", after)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	if err := <-werrs; err != nil {
		t.Fatal(err)
	}
	if after.Driver.Phase != "done" || after.Driver.Error != "" {
		t.Fatalf("split ended %q (err %q), want done", after.Driver.Phase, after.Driver.Error)
	}
	if len(after.ShardSlots) != 3 || after.ShardSlots[2] == 0 {
		t.Fatalf("post-split slot map %v, want 3 shards with slots on shard 2", after.ShardSlots)
	}

	// Every pre-split key still reads back through the new routing.
	for i := 0; i < n; i++ {
		cl.must(t, fmt.Sprintf("GET split-key-%03d", i), fmt.Sprintf("VALUE v%03d", i))
	}

	// STATS carries the placement section and the grown shard count.
	raw, err := cl.do("STATS")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Shards    int `json:"shards"`
		Placement struct {
			ShardSlots []int `json:"shard_slots"`
		} `json:"placement"`
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(raw, "STATS ")), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 3 || len(stats.Placement.ShardSlots) != 3 {
		t.Fatalf("STATS after split: shards=%d placement=%v", stats.Shards, stats.Placement.ShardSlots)
	}

	// Argument and exclusion errors. The in-flight migration is held open by
	// driving the server's own driver directly, so the refusal is
	// deterministic rather than a race against a background run.
	cl.must(t, "SPLIT", "ERR SPLIT needs a source shard index")
	cl.must(t, "SPLIT abc", "ERR SPLIT needs a source shard index")
	if got, _ := cl.do("SPLIT 99"); !strings.HasPrefix(got, "ERR split:") {
		t.Fatalf("SPLIT 99: %q", got)
	}
	if _, err := srv.driver.Begin(0, -1); err != nil {
		t.Fatalf("second migration begin: %v", err)
	}
	cl.must(t, "SPLIT 1", "ERR migration already in progress")
	if err := srv.driver.Run(); err != nil {
		t.Fatalf("second migration run: %v", err)
	}

	if v := st.ViolationCount(); v != 0 {
		t.Fatalf("audit violations: %d", v)
	}
	shutdown(t, srv, done)
}

// TestGroupCommitReroutesStaleRoute pins the committer's route re-check: an
// operation submitted to a shard that no longer owns its key (exactly what a
// cutover between submit and drain produces) is split out of the batch and
// re-dispatched on the owning shard, and the reroute is counted.
func TestGroupCommitReroutesStaleRoute(t *testing.T) {
	st := newTestStore(t)
	defer st.Close()
	srv := New(st, Options{})
	defer srv.Shutdown(context.Background())

	key := []byte("reroute-me")
	right := st.ShardFor(key)
	wrong := (right + 1) % st.NumShards()
	var redone atomic.Bool
	fn := setOp(key, []byte("v1"))
	keys := [][]byte{key, expiryKey(key)}
	redo := func() string {
		redone.Store(true)
		return srv.soloWrite(keys, "set", fn)
	}
	p := srv.committer.submitSpan(wrong, 1, "set", nil, keys, redo, fn)
	if got := p.Wait(); got != "OK" {
		t.Fatalf("stale-routed SET: %q", got)
	}
	if !redone.Load() {
		t.Fatal("stale-routed op was not re-dispatched")
	}
	if rr := srv.committer.Stats().Reroutes; rr != 1 {
		t.Fatalf("reroutes counter = %d, want 1", rr)
	}
	var got string
	err := st.ViewKey(key, func(tx ptm.Tx, db *kvstore.DB) error {
		v, err := db.GetTx(tx, key)
		if err != nil {
			return err
		}
		got = string(v)
		return nil
	})
	if err != nil || got != "v1" {
		t.Fatalf("value after reroute: %q, %v", got, err)
	}
}
