// Offline coordinator-image inspection for romulus-recover's -coord mode:
// decode the two-phase record's state (is a batch in doubt?), a light scan
// of its payload, and the placement record with any migration journal —
// without opening engines or mutating anything.
package shard

import (
	"encoding/binary"
	"fmt"

	"repro/internal/migrate"
)

// PlacementReport is the decoded placement record of a coordinator image.
type PlacementReport struct {
	NumSlots  int    `json:"slots"`
	NumShards int    `json:"shards"`
	Version   uint64 `json:"version"`
	// SlotsPerShard counts owned slots by shard index.
	SlotsPerShard []int           `json:"slots_per_shard"`
	Journal       migrate.Journal `json:"journal"`
}

// CoordReport is an offline dump of a coordinator log image: the 2PC
// record's disposition plus the placement record (when present).
type CoordReport struct {
	// Formatted reports a valid magic + header. False means a fresh or
	// mid-format image: nothing was ever prepared, nothing to resolve.
	Formatted bool `json:"formatted"`
	// State is the state word's tag: "free", "prepared", or "garbage".
	State string `json:"state,omitempty"`
	// BatchID is the id named by the state word.
	BatchID uint64 `json:"batch_id,omitempty"`
	// InDoubt means a prepared batch would be rolled forward at reopen.
	InDoubt bool `json:"in_doubt"`
	// PayloadOps counts the staged batch's operations; OpsPerShard splits
	// the count by destination shard. Only meaningful when InDoubt (the
	// payload area otherwise holds a retired or abandoned record).
	PayloadOps   int         `json:"payload_ops,omitempty"`
	OpsPerShard  map[int]int `json:"ops_per_shard,omitempty"`
	PayloadError string      `json:"payload_error,omitempty"`
	// Placement is the decoded placement record; nil when the image
	// predates placement routing (or is too small to hold the record).
	Placement *PlacementReport `json:"placement,omitempty"`
}

// PlacementJournalPhase reports the migration journal's phase in the
// decoded placement record (PhaseNone when no placement record decoded).
func (rep CoordReport) PlacementJournalPhase() migrate.Phase {
	if rep.Placement == nil {
		return migrate.PhaseNone
	}
	return rep.Placement.Journal.Phase
}

// InspectCoordImage decodes a captured or saved coordinator image. It
// never fails: damage is reported in the fields rather than refused, so
// the operator sees whatever survives.
func InspectCoordImage(img []byte) CoordReport {
	var rep CoordReport
	le := binary.LittleEndian
	if len(img) >= cPayloadBase && le.Uint64(img[cOffMagic:]) == cMagic &&
		le.Uint64(img[cOffVersion:]) == cVersion &&
		le.Uint64(img[cOffHeadSum:]) == cMagic^cVersion^cHeadSalt {
		rep.Formatted = true
		word := le.Uint64(img[cOffState:])
		rep.BatchID = word & cIDMask
		switch word & cTagMask {
		case cTagFree:
			rep.State = "free"
		case cTagPrepared:
			rep.State = "prepared"
			rep.InDoubt = true
			rep.scanPayload(img)
		default:
			rep.State = "garbage"
		}
	}
	if len(img) >= placementReserve {
		if pl := migrate.DecodeRecordBytes(img[len(img)-placementReserve:]); pl != nil {
			rep.Placement = &PlacementReport{
				NumSlots:      pl.NumSlots,
				NumShards:     pl.NumShards,
				Version:       pl.Version,
				SlotsPerShard: pl.Counts(),
				Journal:       pl.Journal,
			}
		}
	}
	return rep
}

// scanPayload walks the staged ops counting per-shard totals. It is a
// bounds-checking scan, not a full decode: no batches are materialized.
func (rep *CoordReport) scanPayload(img []byte) {
	le := binary.LittleEndian
	if metaID := le.Uint64(img[cOffBatchID:]); metaID != rep.BatchID {
		rep.PayloadError = fmt.Sprintf("prepared state names batch %d but meta holds %d", rep.BatchID, metaID)
		return
	}
	payLen := int(le.Uint64(img[cOffPayLen:]))
	if payLen <= 0 || cPayloadBase+payLen > len(img)-placementReserve {
		rep.PayloadError = fmt.Sprintf("payload length %d out of bounds", payLen)
		return
	}
	payload := img[cPayloadBase : cPayloadBase+payLen]
	if sum := payloadSum(payload); sum != le.Uint64(img[cOffPaySum:]) {
		rep.PayloadError = "payload checksum mismatch"
		return
	}
	if len(payload) < 4 {
		rep.PayloadError = "payload truncated before op count"
		return
	}
	n := int(le.Uint32(payload))
	pos := 4
	perShard := make(map[int]int)
	for op := 0; op < n; op++ {
		if pos+13 > len(payload) {
			rep.PayloadError = fmt.Sprintf("payload truncated in op %d header", op)
			return
		}
		sh := int(le.Uint32(payload[pos:]))
		klen := int(le.Uint32(payload[pos+5:]))
		vlen := int(le.Uint32(payload[pos+9:]))
		pos += 13
		if klen < 0 || vlen < 0 || pos+klen+vlen > len(payload) {
			rep.PayloadError = fmt.Sprintf("payload truncated in op %d body", op)
			return
		}
		pos += klen + vlen
		perShard[sh]++
	}
	rep.PayloadOps = n
	rep.OpsPerShard = perShard
}
