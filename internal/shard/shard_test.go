package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/pmem"
)

func testOpts(shards int) Options {
	return Options{
		Shards:     shards,
		RegionSize: 256 << 10,
		CoordSize:  64 << 10,
		Variant:    core.RomLog,
		Audit:      true,
	}
}

// captureAll snapshots every store device under the given policy, in
// Devices order (shards first, coordinator last).
func captureAll(s *Store, p pmem.CrashPolicy) [][]byte {
	devs := s.Devices()
	imgs := make([][]byte, len(devs))
	for i, d := range devs {
		imgs[i] = d.CrashImage(p)
	}
	return imgs
}

// reopenImages rebuilds devices from captured images and reopens the store.
func reopenImages(t *testing.T, imgs [][]byte, opts Options) *Store {
	t.Helper()
	devs := make([]*pmem.Device, len(imgs))
	for i, img := range imgs {
		devs[i] = pmem.FromImage(img, pmem.ModelDRAM)
	}
	st, err := Reopen(devs, opts)
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	return st
}

// spanningBatch builds a batch guaranteed to touch at least two shards and
// returns it with the expected final contents.
func spanningBatch(t *testing.T, s *Store, n int) (*kvstore.Batch, map[string]string) {
	t.Helper()
	b := &kvstore.Batch{}
	want := map[string]string{}
	hit := map[int]bool{}
	for i := 0; i < n; i++ {
		k, v := fmt.Sprintf("xk-%03d", i), fmt.Sprintf("xv-%03d", i)
		b.Put([]byte(k), []byte(v))
		want[k] = v
		hit[s.ShardFor([]byte(k))] = true
	}
	if len(hit) < 2 {
		t.Fatalf("test batch only touched %d shard(s); enlarge it", len(hit))
	}
	return b, want
}

func checkAllPresent(t *testing.T, s *Store, want map[string]string, ctx string) {
	t.Helper()
	for k, v := range want {
		got, err := s.Get([]byte(k))
		if err != nil {
			t.Fatalf("%s: key %s: %v", ctx, k, err)
		}
		if !bytes.Equal(got, []byte(v)) {
			t.Fatalf("%s: key %s = %q, want %q", ctx, k, got, v)
		}
	}
}

func checkAllAbsent(t *testing.T, s *Store, want map[string]string, ctx string) {
	t.Helper()
	for k := range want {
		if _, err := s.Get([]byte(k)); err != ErrNotFound {
			t.Fatalf("%s: key %s should be absent, got err=%v", ctx, k, err)
		}
	}
}

func checkNoViolations(t *testing.T, s *Store, ctx string) {
	t.Helper()
	if n := s.ViolationCount(); n != 0 {
		t.Fatalf("%s: %d durability violations", ctx, n)
	}
}

// TestStoreBasicRouting pins single-key routing: every key lands on the
// shard ShardFor names, routing is stable, and ops behave like a flat map.
func TestStoreBasicRouting(t *testing.T) {
	s, err := Open(testOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	hit := map[int]int{}
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		v := []byte(fmt.Sprintf("val-%03d", i))
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		hit[s.ShardFor(k)]++
	}
	if len(hit) != 4 {
		t.Fatalf("64 keys hit only %d of 4 shards: %v", len(hit), hit)
	}
	if n := s.Len(); n != 64 {
		t.Fatalf("Len = %d, want 64", n)
	}
	// Each shard's map holds exactly the keys routed to it.
	st := s.Stats()
	for i, row := range st.PerShard {
		if row.Pairs != hit[i] {
			t.Fatalf("shard %d holds %d pairs, want %d", i, row.Pairs, hit[i])
		}
	}
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		got, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("val-%03d", i); string(got) != want {
			t.Fatalf("key %s = %q, want %q", k, got, want)
		}
	}
	if err := s.Delete([]byte("key-000")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("key-000")); err != ErrNotFound {
		t.Fatalf("deleted key: want ErrNotFound, got %v", err)
	}
	checkNoViolations(t, s, "basic ops")
}

// TestStoreSingleShardBatchFastPath pins that a batch whose keys all route
// to one shard commits on the shard's direct path, never touching the
// coordinator.
func TestStoreSingleShardBatchFastPath(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Collect keys until we have 3 on the same shard.
	var keys [][]byte
	for i := 0; len(keys) < 3; i++ {
		k := []byte(fmt.Sprintf("fp-%d", i))
		if s.ShardFor(k) == 0 {
			keys = append(keys, k)
		}
	}
	b := &kvstore.Batch{}
	for _, k := range keys {
		b.Put(k, []byte("v"))
	}
	if err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.XPrepares != 0 || st.XCommits != 0 {
		t.Fatalf("single-shard batch reached the coordinator: %+v", st)
	}
	if got := s.batchSingle.Load(); got != 1 {
		t.Fatalf("shard_batch_single_total = %d, want 1", got)
	}
	for _, k := range keys {
		if _, err := s.Get(k); err != nil {
			t.Fatalf("key %s: %v", k, err)
		}
	}
}

// TestStoreCrossShardBatchCommit pins the happy path of the two-phase
// protocol: a spanning batch lands atomically, the 2PC counters advance,
// last-op-wins holds across the shard split, and the auditors stay clean.
func TestStoreCrossShardBatchCommit(t *testing.T) {
	s, err := Open(testOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Put([]byte("keep"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	b, want := spanningBatch(t, s, 12)
	// Last-op-wins riders: a key Put then Deleted, a key Deleted then Put.
	b.Put([]byte("gone"), []byte("tmp"))
	b.Delete([]byte("gone"))
	b.Delete([]byte("back"))
	b.Put([]byte("back"), []byte("yes"))
	want["back"] = "yes"

	if err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	checkAllPresent(t, s, want, "after commit")
	if _, err := s.Get([]byte("gone")); err != ErrNotFound {
		t.Fatalf("put-then-deleted key survived: err=%v", err)
	}
	if got, _ := s.Get([]byte("keep")); string(got) != "old" {
		t.Fatalf("unrelated key disturbed: %q", got)
	}
	st := s.Stats()
	if st.XPrepares != 1 || st.XCommits != 1 || st.XAborts != 0 {
		t.Fatalf("2PC counters: %+v", st)
	}
	checkNoViolations(t, s, "cross-shard commit")

	// The same store keeps working for follow-up cross-shard traffic.
	b2, want2 := spanningBatch(t, s, 6)
	if err := s.Write(b2); err != nil {
		t.Fatal(err)
	}
	checkAllPresent(t, s, want2, "second batch")
	if st := s.Stats(); st.XCommits != 2 {
		t.Fatalf("XCommits = %d, want 2", st.XCommits)
	}
}

// TestCrossShardReplayAfterCrash is the deterministic roll-forward proof:
// images are captured at the exact protocol point where the prepare is
// durable and only SOME shards have applied. Recovery must replay the batch
// to the shards left behind — the acknowledged-durable prepare record makes
// the batch's outcome commit, never partial.
func TestCrossShardReplayAfterCrash(t *testing.T) {
	s, err := Open(testOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("pre"), []byte("kept")); err != nil {
		t.Fatal(err)
	}
	b, want := spanningBatch(t, s, 12)

	// Capture at two points: right after the durable prepare (NO shard has
	// applied), and after the first shard's apply (partial).
	var atPrepare, atPartial [][]byte
	s.coord.testAfterPrepare = func() { atPrepare = captureAll(s, pmem.DropAll) }
	applies := 0
	s.coord.testAfterApply = func(int) {
		if applies == 0 {
			atPartial = captureAll(s, pmem.DropAll)
		}
		applies++
	}
	if err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	if atPrepare == nil || atPartial == nil {
		t.Fatal("test hooks did not fire")
	}
	if applies < 2 {
		t.Fatalf("batch applied to %d shard(s); want >= 2", applies)
	}
	if !CoordRecoveryPending(atPrepare[len(atPrepare)-1]) {
		t.Fatal("prepare-point coordinator image should be recovery-pending")
	}

	for name, imgs := range map[string][][]byte{"at-prepare": atPrepare, "partial-apply": atPartial} {
		rs := reopenImages(t, imgs, testOpts(4))
		checkAllPresent(t, rs, want, name)
		if got, _ := rs.Get([]byte("pre")); string(got) != "kept" {
			t.Fatalf("%s: pre-existing key lost: %q", name, got)
		}
		st := rs.Stats()
		if st.XReplays != 1 || st.XRollback != 0 {
			t.Fatalf("%s: recovery counters: %+v", name, st)
		}
		checkNoViolations(t, rs, name)
		// Replay retired the record: a fresh reopen finds nothing in doubt,
		// and new cross-shard traffic gets a fresh id.
		imgs2 := captureAll(rs, pmem.DropAll)
		rs2 := reopenImages(t, imgs2, testOpts(4))
		if st := rs2.Stats(); st.XReplays != 0 || st.XRollback != 0 {
			t.Fatalf("%s: second recovery resolved something: %+v", name, st)
		}
		b2, want2 := spanningBatch(t, rs2, 6)
		if err := rs2.Write(b2); err != nil {
			t.Fatalf("%s: post-recovery batch: %v", name, err)
		}
		checkAllPresent(t, rs2, want2, name+" post-recovery batch")
	}
	s.Close()
}

// TestCrossShardRollbackAfterCrash is the deterministic presumed-abort
// proof: images are captured with the prepared state word STORED but not
// yet flushed, under DropAll — the crash erases the flip, leaving staged
// meta and payload with a free state word. No shard ever saw the batch
// (applies gate on the flip's psync), so recovery must discard the record
// and the batch must be fully invisible.
func TestCrossShardRollbackAfterCrash(t *testing.T) {
	s, err := Open(testOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("pre"), []byte("kept")); err != nil {
		t.Fatal(err)
	}
	b, want := spanningBatch(t, s, 12)

	var atFlip [][]byte
	s.coord.testAfterStateStore = func() { atFlip = captureAll(s, pmem.DropAll) }
	if err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	if atFlip == nil {
		t.Fatal("test hook did not fire")
	}
	coordImg := atFlip[len(atFlip)-1]
	if CoordRecoveryPending(coordImg) {
		t.Fatal("unflushed prepare flip leaked into the DropAll image")
	}
	// The staged meta IS durable (it was fenced before the flip): recovery
	// sees the abandoned attempt and counts the rollback.
	if got := binary.LittleEndian.Uint64(coordImg[cOffBatchID:]); got != 1 {
		t.Fatalf("staged meta id = %d, want 1", got)
	}

	rs := reopenImages(t, atFlip, testOpts(4))
	checkAllAbsent(t, rs, want, "after rollback")
	if got, _ := rs.Get([]byte("pre")); string(got) != "kept" {
		t.Fatalf("pre-existing key lost in rollback: %q", got)
	}
	st := rs.Stats()
	if st.XRollback != 1 || st.XReplays != 0 {
		t.Fatalf("recovery counters: %+v", st)
	}
	checkNoViolations(t, rs, "rollback recovery")

	// The discarded id is not reused in a way that confuses replay: the
	// store accepts new cross-shard batches and they commit cleanly.
	b2, want2 := spanningBatch(t, rs, 8)
	if err := rs.Write(b2); err != nil {
		t.Fatal(err)
	}
	checkAllPresent(t, rs, want2, "post-rollback batch")
	s.Close()
}

// TestCoordinatorGarbageStateWord pins the defensive arm: a corrupted state
// tag (outside the crash model — transitions are atomic word stores) is
// presumed aborted, repaired durably, and the store stays usable with ids
// that never collide with applied watermarks.
func TestCoordinatorGarbageStateWord(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	b, want := spanningBatch(t, s, 8)
	if err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	imgs := captureAll(s, pmem.DropAll)
	s.Close()

	// Scribble a garbage tag over the coordinator's state word.
	binary.LittleEndian.PutUint64(imgs[len(imgs)-1][cOffState:], 0xDEAD<<48|7)

	rs := reopenImages(t, imgs, testOpts(2))
	if st := rs.Stats(); st.XRollback != 1 {
		t.Fatalf("garbage state word not counted as rollback: %+v", st)
	}
	checkAllPresent(t, rs, want, "committed data after repair")
	// New batches must get ids above every applied watermark (the committed
	// batch advanced watermarks to 1), or replay idempotency would break.
	if rs.coord.lastID < 1 {
		t.Fatalf("repaired lastID = %d, below applied watermark", rs.coord.lastID)
	}
	b2, want2 := spanningBatch(t, rs, 6)
	if err := rs.Write(b2); err != nil {
		t.Fatal(err)
	}
	checkAllPresent(t, rs, want2, "post-repair batch")
}

// TestCoordinatorCorruptRecordRejected pins that recovery refuses to guess
// at a prepared record that fails validation — corruption of fenced bytes
// is not a crash artifact.
func TestCoordinatorCorruptRecordRejected(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spanningBatch(t, s, 8)
	var atPrepare [][]byte
	s.coord.testAfterPrepare = func() { atPrepare = captureAll(s, pmem.DropAll) }
	if err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a payload byte: the checksum must catch it.
	corrupt := make([][]byte, len(atPrepare))
	copy(corrupt, atPrepare)
	ci := append([]byte(nil), atPrepare[len(atPrepare)-1]...)
	ci[cPayloadBase+5] ^= 0xFF
	corrupt[len(corrupt)-1] = ci
	devs := make([]*pmem.Device, len(corrupt))
	for i, img := range corrupt {
		devs[i] = pmem.FromImage(img, pmem.ModelDRAM)
	}
	if _, err := Reopen(devs, testOpts(2)); err == nil {
		t.Fatal("Reopen accepted a corrupt prepared record")
	}

	// Header corruption is equally fatal.
	hi := append([]byte(nil), atPrepare[len(atPrepare)-1]...)
	binary.LittleEndian.PutUint64(hi[cOffHeadSum:], 12345)
	corrupt[len(corrupt)-1] = hi
	for i, img := range corrupt {
		devs[i] = pmem.FromImage(img, pmem.ModelDRAM)
	}
	if _, err := Reopen(devs, testOpts(2)); err == nil {
		t.Fatal("Reopen accepted a corrupt header")
	}
}

// TestCrossShardCrashDuringRecovery drives the crash-chain: starting from a
// durable-prepare image set, recovery itself is crashed at sampled event
// points (multi-device captures) and recovered again. Whatever the depth,
// the batch must come out fully visible — a durable prepare means commit.
func TestCrossShardCrashDuringRecovery(t *testing.T) {
	s, err := Open(testOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	b, want := spanningBatch(t, s, 9)
	var atPartial [][]byte
	applies := 0
	s.coord.testAfterApply = func(int) {
		if applies == 0 {
			atPartial = captureAll(s, pmem.DropAll)
		}
		applies++
	}
	if err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if atPartial == nil {
		t.Fatal("capture hook did not fire")
	}

	mkDevs := func(imgs [][]byte) []*pmem.Device {
		devs := make([]*pmem.Device, len(imgs))
		for i, img := range imgs {
			devs[i] = pmem.FromImage(img, pmem.ModelDRAM)
		}
		return devs
	}

	// Scheduler-driven runs reopen WITHOUT store auditors: Options.Audit
	// attaches auditor hooks as each device's sole bundle, which would
	// displace the scheduler's counting hooks. The final clean recovery of
	// each captured image set runs fully audited.
	schedOpts := testOpts(3)
	schedOpts.Audit = false

	// Dry run: count recovery's total event footprint.
	devs := mkDevs(atPartial)
	ms := pmem.NewMultiScheduler(devs...)
	ms.Attach()
	if _, err := Reopen(devs, schedOpts); err != nil {
		t.Fatalf("dry-run Reopen: %v", err)
	}
	total := ms.Events()
	ms.Detach()
	if total == 0 {
		t.Fatal("recovery generated no events")
	}

	// Sample ~16 crash points across the recovery, including the first and
	// last events. Each capture feeds a final clean recovery.
	step := total / 16
	if step == 0 {
		step = 1
	}
	tested := 0
	for ev := uint64(1); ev <= total; ev += step {
		devs := mkDevs(atPartial)
		ms := pmem.NewMultiScheduler(devs...)
		ms.Attach()
		ms.Arm(ev, pmem.DropAll)
		if _, err := Reopen(devs, schedOpts); err != nil {
			t.Fatalf("event %d: Reopen under scheduler: %v", ev, err)
		}
		imgs, at := ms.Images()
		ms.Detach()
		if imgs == nil {
			t.Fatalf("event %d: capture did not fire (total %d)", ev, total)
		}
		rs := reopenImages(t, imgs, testOpts(3))
		checkAllPresent(t, rs, want, fmt.Sprintf("crash@%d", at))
		checkNoViolations(t, rs, fmt.Sprintf("crash@%d", at))
		tested++
	}
	if tested < 2 {
		t.Fatalf("chain sampled only %d crash points", tested)
	}
}

// TestStoreDirRoundTrip pins the file-backed lifecycle: Close writes one
// image per shard plus the coordinator, Open reloads them, and a mismatched
// shard count is refused instead of silently mis-routing keys.
func TestStoreDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(3)
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, want := spanningBatch(t, s, 9)
	if err := s.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("solo"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAllPresent(t, s2, want, "after reload")
	if got, _ := s2.Get([]byte("solo")); string(got) != "1" {
		t.Fatalf("solo = %q", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The image files govern the shard count on reload: a stale -shards
	// flag (the store may have grown via an online split) is ignored, and
	// the durable placement map keeps routing identical.
	stale := opts
	stale.Shards = 2
	s3, err := Open(stale)
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.NumShards(); got != 3 {
		t.Fatalf("reload with stale shard count: NumShards = %d, want 3", got)
	}
	checkAllPresent(t, s3, want, "after stale-count reload")
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}
