package shard

import (
	"testing"

	"repro/internal/blackbox"
	"repro/internal/pmem"
)

// TestBlackboxRoundTrip pins the shard wiring of the flight recorder: a
// record appended through RecordFlight survives the device images into the
// next open's FlightReports, and the reopen stamps its own recovery record
// for the open after that.
func TestBlackboxRoundTrip(t *testing.T) {
	opts := Options{Shards: 2, RegionSize: 256 << 10, CoordSize: 32 << 10, Blackbox: true}
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasFlightRecorder() {
		t.Fatal("Blackbox store reports no flight recorder")
	}
	for _, rep := range st.FlightReports() {
		if rep == nil || !rep.Empty() {
			t.Fatalf("fresh store flight report = %+v, want present and empty", rep)
		}
	}
	if err := st.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	st.RecordFlight(0, blackbox.Record{Kind: blackbox.KindBatchStart, BatchSeq: 9, Req: 4, Ops: 1, Conns: 1})
	st.RecordFlight(0, blackbox.Record{Kind: blackbox.KindBatchCommit, BatchSeq: 9, Ops: 1})
	if got := st.Registry().Snapshot().Counters["blackbox_record_total"]; got != 2 {
		t.Fatalf("blackbox_record_total = %d, want 2", got)
	}

	// Rebuild devices from crash images — the records must be on the media,
	// not in volatile state.
	devs := st.Devices()
	imgs := make([]*pmem.Device, len(devs))
	for i, d := range devs {
		imgs[i] = pmem.FromImage(d.CrashImage(pmem.CrashPolicy{}), pmem.ModelCLWB)
	}
	st2, err := Reopen(imgs, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := st2.FlightReports()[0]
	if rep.Empty() || rep.MaxBatchStarted != 9 || rep.MaxBatchCommitted != 9 {
		t.Fatalf("replayed report = %+v, want batch 9 started and committed", rep)
	}
	snap := st2.Registry().Snapshot().Counters
	if got := snap["blackbox_replay_records"]; got != 2 {
		t.Fatalf("blackbox_replay_records = %d, want 2", got)
	}
	if got := snap["blackbox_reformatted_total"]; got != 0 {
		t.Fatalf("blackbox_reformatted_total = %d, want 0", got)
	}
	if rep.Records[0].Req != 4 {
		t.Fatalf("span checkpoint req = %d, want 4", rep.Records[0].Req)
	}
	if got, err := st2.Get([]byte("k")); err != nil || string(got) != "v" {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}

	// The reopen stamped a recovery record: a third open replays it.
	devs2 := st2.Devices()
	imgs2 := make([]*pmem.Device, len(devs2))
	for i, d := range devs2 {
		imgs2[i] = pmem.FromImage(d.CrashImage(pmem.CrashPolicy{}), pmem.ModelCLWB)
	}
	st3, err := Reopen(imgs2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep := st3.FlightReports()[0]; rep.Recoveries != 1 {
		t.Fatalf("third open replayed %d recoveries, want 1: %+v", rep.Recoveries, rep)
	}
}

// TestBlackboxOffByDefault pins that stores without the option neither
// reserve a tail nor record flights, and that RecordFlight is a safe no-op.
func TestBlackboxOffByDefault(t *testing.T) {
	st, err := Open(Options{Shards: 1, RegionSize: 256 << 10, CoordSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.HasFlightRecorder() {
		t.Fatal("default store has a flight recorder")
	}
	if _, size := st.Engine(0).ReservedTail(); size >= blackbox.MinSize {
		t.Fatalf("default store reserved %d tail bytes", size)
	}
	st.RecordFlight(0, blackbox.Record{Kind: blackbox.KindCheckpoint})
	if rep := st.FlightReports()[0]; rep != nil {
		t.Fatalf("flight report on a recorder-less store: %+v", rep)
	}
	if _, ok := st.Registry().Snapshot().Counters["blackbox_record_total"]; ok {
		t.Fatal("blackbox_* metrics published with the recorder off")
	}
}

// TestBlackboxReopenWithoutTail pins compatibility: a store created WITHOUT
// the reserve reopens fine with Blackbox on — the header governs the
// layout, there is just no tail to record into.
func TestBlackboxReopenWithoutTail(t *testing.T) {
	plain := Options{Shards: 1, RegionSize: 256 << 10, CoordSize: 32 << 10}
	st, err := Open(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	devs := st.Devices()
	imgs := make([]*pmem.Device, len(devs))
	for i, d := range devs {
		imgs[i] = pmem.FromImage(d.CrashImage(pmem.CrashPolicy{}), pmem.ModelCLWB)
	}
	withBB := plain
	withBB.Blackbox = true
	st2, err := Reopen(imgs, withBB)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, err := st2.Get([]byte("a")); err != nil || string(got) != "1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if st2.HasFlightRecorder() {
		t.Fatal("tail-less device grew a flight recorder")
	}
}
