package shard

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/pmem"
)

// keyOnShard finds a key (with the given prefix) that routes to shard want.
func keyOnShard(t *testing.T, s *Store, prefix string, want int) []byte {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("%s-%04d", prefix, i))
		if s.ShardFor(k) == want {
			return k
		}
	}
	t.Fatalf("no %s key routes to shard %d", prefix, want)
	return nil
}

// bigValue is a recognizable payload large enough to find in a device image
// and to fault interior lines of without touching allocator metadata.
func bigValue() []byte { return bytes.Repeat([]byte{0x7A}, 4096) }

// markValueBad locates val's persistent copy on dev and marks its interior
// lines (skipping one line at each edge, so node headers and allocator
// metadata on shared lines stay readable) as media-fault lines.
func markValueBad(t *testing.T, dev *pmem.Device, val []byte, transient bool) {
	t.Helper()
	img := dev.Persisted()
	off := bytes.Index(img, val)
	if off < 0 {
		t.Fatal("value payload not found in device image")
	}
	for o := off + pmem.LineSize; o < off+len(val)-pmem.LineSize; o += pmem.LineSize {
		dev.MarkBad(o, transient)
	}
}

// A transient media fault is retried and served; nothing is quarantined.
func TestTransientFaultRetried(t *testing.T) {
	opts := testOpts(4)
	opts.QuarantineFaults = true
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	key := keyOnShard(t, s, "victim", 1)
	if err := s.Put(key, bigValue()); err != nil {
		t.Fatal(err)
	}
	markValueBad(t, s.parts()[1].dev, bigValue(), true)

	got, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get after transient fault: %v", err)
	}
	if !bytes.Equal(got, bigValue()) {
		t.Fatal("transient-fault retry served a corrupted value")
	}
	if q := s.Quarantined(); len(q) != 0 {
		t.Fatalf("transient fault quarantined shards %v", q)
	}
}

// A sticky media fault quarantines its shard: faulted keys answer with the
// typed UnavailError, healthy shards keep serving, and Scrub re-formats and
// readmits the partition (admitting the data loss).
func TestStickyFaultQuarantineAndScrub(t *testing.T) {
	opts := testOpts(4)
	opts.QuarantineFaults = true
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const victim = 2
	vKey := keyOnShard(t, s, "victim", victim)
	if err := s.Put(vKey, bigValue()); err != nil {
		t.Fatal(err)
	}
	healthy := map[string]string{}
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("h-%03d", i)
		if s.ShardFor([]byte(k)) == victim {
			continue
		}
		healthy[k] = fmt.Sprintf("hv-%03d", i)
		if err := s.Put([]byte(k), []byte(healthy[k])); err != nil {
			t.Fatal(err)
		}
	}
	markValueBad(t, s.parts()[victim].dev, bigValue(), false)

	_, err = s.Get(vKey)
	var ue *UnavailError
	if !errors.As(err, &ue) || !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("Get on faulted shard: err = %v, want *UnavailError", err)
	}
	if ue.Shard != victim || !strings.HasPrefix(err.Error(), fmt.Sprintf("UNAVAIL shard=%d", victim)) {
		t.Fatalf("UnavailError = %q, want UNAVAIL shard=%d prefix", err, victim)
	}
	if q := s.Quarantined(); len(q) != 1 || q[0] != victim {
		t.Fatalf("Quarantined() = %v, want [%d]", q, victim)
	}

	// Healthy shards are unaffected, reads and writes alike.
	checkAllPresent(t, s, healthy, "degraded mode")
	hk := keyOnShard(t, s, "post", (victim+1)%4)
	if err := s.Put(hk, []byte("post-v")); err != nil {
		t.Fatalf("Put on healthy shard during quarantine: %v", err)
	}

	// Writes routed to the faulted shard are refused with the typed error —
	// single keys and cross-shard batches involving it alike.
	if err := s.Put(vKey, []byte("nope")); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("Put on faulted shard: err = %v, want ErrShardUnavailable", err)
	}
	xb := &kvstore.Batch{}
	xb.Put(vKey, []byte("x"))
	xb.Put(hk, []byte("x"))
	if err := s.Write(xb); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("cross-shard Write involving faulted shard: err = %v, want ErrShardUnavailable", err)
	}

	// Scrub admits the loss and readmits the shard.
	if err := s.Scrub(victim); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if q := s.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() after scrub = %v", q)
	}
	if _, err := s.Get(vKey); err != ErrNotFound {
		t.Fatalf("scrubbed shard should report old key lost (ErrNotFound), got %v", err)
	}
	if err := s.Put(vKey, []byte("fresh")); err != nil {
		t.Fatalf("Put on scrubbed shard: %v", err)
	}
	got, err := s.Get(vKey)
	if err != nil || string(got) != "fresh" {
		t.Fatalf("Get on scrubbed shard = %q, %v", got, err)
	}
	checkAllPresent(t, s, healthy, "after scrub")
	checkNoViolations(t, s, "quarantine+scrub")

	if err := s.Scrub(victim); err == nil {
		t.Fatal("Scrub of a healthy shard should be refused")
	}
}

// A Reopen over a damaged shard image quarantines that shard instead of
// failing the whole store; an in-doubt cross-shard batch is rolled forward
// onto the healthy shards immediately and onto the damaged shard at Scrub —
// no acknowledged write is lost or silently wrong, on any shard.
func TestReopenDegradedAndScrubRestoresInDoubtBatch(t *testing.T) {
	opts := testOpts(4)
	opts.QuarantineFaults = true
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	baseline := map[string]string{}
	for i := 0; i < 32; i++ {
		k, v := fmt.Sprintf("b-%03d", i), fmt.Sprintf("bv-%03d", i)
		baseline[k] = v
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	batch, batchWant := spanningBatch(t, s, 24)

	// Capture every device's media image at the moment the batch is durably
	// prepared on the coordinator but not yet applied to any shard.
	var imgs [][]byte
	s.coord.testAfterPrepare = func() {
		for _, d := range s.Devices() {
			imgs = append(imgs, d.Persisted())
		}
	}
	if err := s.Write(batch); err != nil {
		t.Fatal(err)
	}
	if imgs == nil {
		t.Fatal("prepare hook never fired")
	}

	// Pick a shard the batch involves and rot its captured header.
	victim := s.ShardFor([]byte("xk-000"))
	imgs[victim][8] ^= 0xFF // version word: header checksum now fails

	devs := make([]*pmem.Device, len(imgs))
	for i, img := range imgs {
		devs[i] = pmem.FromImage(img, pmem.ModelDRAM)
	}
	re, err := Reopen(devs, opts)
	if err != nil {
		t.Fatalf("degraded Reopen: %v", err)
	}
	if q := re.Quarantined(); len(q) != 1 || q[0] != victim {
		t.Fatalf("Quarantined() = %v, want [%d]", q, victim)
	}

	// Healthy shards serve their baseline AND their slice of the in-doubt
	// batch (rolled forward at open); the victim's keys answer UNAVAIL.
	for k, v := range batchWant {
		sh := re.ShardFor([]byte(k))
		got, err := re.Get([]byte(k))
		if sh == victim {
			if !errors.Is(err, ErrShardUnavailable) {
				t.Fatalf("victim key %s: err = %v, want ErrShardUnavailable", k, err)
			}
			continue
		}
		if err != nil || string(got) != v {
			t.Fatalf("healthy key %s = %q, %v; want %q (in-doubt batch rolled forward)", k, got, err, v)
		}
	}
	for k, v := range baseline {
		if re.ShardFor([]byte(k)) == victim {
			continue
		}
		got, err := re.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("baseline key %s = %q, %v; want %q", k, got, err, v)
		}
	}

	// The coordinator is wedged while the in-doubt batch has a quarantined
	// participant: further cross-shard commits are refused, healthy-only ones
	// included (the one prepared slot is occupied).
	wb, _ := spanningBatch(t, re, 24)
	if err := re.Write(wb); err == nil {
		t.Fatal("cross-shard Write should be refused while the coordinator is wedged")
	}

	// Scrub readmits the victim and finishes the roll-forward from the
	// coordinator log: the victim's slice of the acknowledged batch is
	// restored onto the fresh shard. Its baseline keys are lost — and
	// REPORTED lost (ErrNotFound after an admitted scrub), never served
	// wrong.
	if err := re.Scrub(victim); err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	checkAllPresent(t, re, batchWant, "after scrub (in-doubt batch restored)")
	if err := re.Write(wb); err != nil {
		t.Fatalf("cross-shard Write after scrub un-wedged: %v", err)
	}
	st := re.Stats()
	if st.XReplays == 0 {
		t.Error("expected a coordinator replay to be counted")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
