// Elastic sharding: placement-map routing and online shard migration.
//
// Routing no longer hashes keys straight to a shard index. Keys hash to a
// fixed set of placement SLOTS (migrate.Placement, persisted at the tail
// of the coordinator device), and each slot names its owning shard. The
// slot table is read through a Left-Right construct (the paper's §5.3
// technique, internal/leftright), so lookups — and the reads they serve —
// are wait-free even while a migration's cutover republishes the table.
//
// # The write protocol
//
// Every mutating operation brackets its route-then-commit span in a
// WriteHandle (BeginWrite..Done), which holds the migration epoch lock
// (Store.migMu) for read. Migration state transitions — begin, cutover,
// abort, shard add — take the same lock for write, which gives them the
// quiescence they need: when MigrationBegin returns, every in-flight
// write predates the migration; when the cutover holds the lock, no write
// is mid-commit. During the copy phase, writes proceed normally and mark
// any key they touch in a moving slot DIRTY (over-marking is harmless —
// the cutover just re-reads the source); at cutover, writes touching
// moving slots park on a gate channel (bounded by the cutover's bounded
// dirty-set recopy) while all other writes keep flowing.
//
// # Copy-then-cutover, and why recovery is exact
//
//	begin:   journal PhaseCopy (durable). Routing unchanged.
//	copy:    snapshot the moving keys, copy them to dst in bounded durable
//	         batches. Concurrent writes dirty-mark.
//	cutover: fence moving-slot writes, drain + recopy the dirty set, then
//	         publish ONE record that both flips slot ownership to dst and
//	         sets PhaseCleanup — the migration's atomic commit point —
//	         and toggle the Left-Right router.
//	cleanup: delete the moved keys from src in bounded batches; publish
//	         PhaseNone.
//
// A crash in copy recovers by rolling BACK (wipe dst's partial copies —
// routing never pointed there, so only migration copies can exist —
// journal PhaseNone): src owns every key. A crash in cleanup recovers by
// rolling FORWARD (delete src's leftovers of the moved slots): dst owns
// every key, because the flip record already routed them there. Since the
// flip is a single atomic record publish, no crash point can leave a key
// with zero or two owners.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/hsync"
	"repro/internal/kvstore"
	"repro/internal/leftright"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// placementReserve is the coordinator-tail area reserved for the durable
// placement record (coord.go's payload capacity check subtracts it).
const placementReserve = migrate.RecordSize

// errNoMigration is returned by migration steps called with no migration
// in flight.
var errNoMigration = errors.New("shard: no migration in progress")

// router is the wait-free slot->shard lookup: two slot tables behind a
// Left-Right instance pointer. Readers arrive on the construct's read
// indicator, read the published table, and depart; the (single) publisher
// rewrites the unpublished table and toggles. Reader threads share the
// indicator's per-tid counter slots round-robin, which the counters make
// safe (arrive/depart balance per goroutine regardless of tid sharing).
type router struct {
	tabs   [2][]int32
	lr     leftright.LR
	tid    atomic.Uint64
	active leftright.Instance // publisher-side only
}

func newRouter(p *migrate.Placement) *router {
	r := &router{}
	for inst := 0; inst < 2; inst++ {
		t := make([]int32, p.NumSlots)
		for i, sh := range p.Slots {
			t[i] = int32(sh)
		}
		r.tabs[inst] = t
	}
	return r
}

func (r *router) arrive() (tid, vi int) {
	tid = int(r.tid.Add(1) % hsync.MaxThreads)
	return tid, r.lr.Arrive(tid)
}

func (r *router) route(slot int) int {
	return int(r.tabs[r.lr.Read()][slot])
}

func (r *router) depart(tid, vi int) { r.lr.Depart(tid, vi) }

// lookup is the one-shot route for callers that do not span a shard
// access (write routing holds migMu instead, which excludes publishes).
func (r *router) lookup(slot int) int {
	tid, vi := r.arrive()
	sh := r.route(slot)
	r.depart(tid, vi)
	return sh
}

// publish installs a new slot table. Caller must hold the store's migMu
// write lock (single publisher; also excludes WriteHandle routing). After
// Toggle returns, no reader can still observe the old table, so readers
// routed to a migration's source shard have all departed before its
// cleanup deletes anything — the wait-free read guarantee.
func (r *router) publish(slots []int) {
	next := 1 - r.active
	for i, sh := range slots {
		r.tabs[next][i] = int32(sh)
	}
	r.lr.Toggle(next)
	r.active = next
	// The old table is reader-free now; sync it so the next publish only
	// has to toggle.
	for i, sh := range slots {
		r.tabs[1-next][i] = int32(sh)
	}
}

// slotOf maps a key to its placement slot (FNV-1a of the routing key,
// like the pre-placement shard hash; sidecar keys route by their base).
func (s *Store) slotOf(key []byte) int {
	h := fnv.New64a()
	h.Write(RoutingKey(key))
	return int(h.Sum64() % uint64(s.numSlots))
}

// migration is the in-flight copy-phase state (nil on Store when idle).
type migration struct {
	id       uint64
	src, dst int
	moving   []bool // by slot

	// fenced is guarded by Store.migMu (set under the write lock, read
	// under the read lock): when true, writes touching moving slots park
	// on gate until the cutover resolves.
	fenced bool

	mu    sync.Mutex
	dirty map[string]bool // moving keys written during copy; drained at cutover
	gate  chan struct{}   // non-nil while fenced; closed to release parked writers

	// Copy cursor, touched only by the driver's (serialized) steps.
	snapshotted bool
	copyKeys    [][]byte
	copyPos     int
}

// WriteHandle brackets one mutating operation's route-then-commit span.
// While held, slot ownership cannot change (Route is stable), and on Done
// any keys in moving slots are recorded for the cutover's recopy.
type WriteHandle struct {
	s      *Store
	m      *migration
	moving [][]byte
}

// BeginWrite opens a write span covering keys. It blocks only when a
// cutover has fenced a key's slot (a bounded window); otherwise it is one
// read-lock acquisition. Every path that mutates shard data through the
// store (Put, Delete, Write, the network layer's group commits) must
// bracket itself with BeginWrite..Done and route with Route.
func (s *Store) BeginWrite(keys ...[]byte) *WriteHandle {
	for {
		s.migMu.RLock()
		m := s.mig
		if m == nil {
			return &WriteHandle{s: s}
		}
		var moving [][]byte
		for _, k := range keys {
			if m.moving[s.slotOf(k)] {
				moving = append(moving, k)
			}
		}
		if len(moving) == 0 || !m.fenced {
			return &WriteHandle{s: s, m: m, moving: moving}
		}
		// Fenced: the cutover is recopying this slot's dirty keys. Park
		// until it publishes (or unwinds), then re-evaluate.
		m.mu.Lock()
		gate := m.gate
		m.mu.Unlock()
		s.migMu.RUnlock()
		if gate != nil {
			<-gate
		}
	}
}

// Route returns the shard key routes to, stable while the handle is held.
func (h *WriteHandle) Route(key []byte) int { return h.s.ShardFor(key) }

// Done closes the span: moving keys the operation touched are marked
// dirty (whether or not the commit succeeded — over-marking only costs a
// recopy read), and the epoch lock is released.
func (h *WriteHandle) Done() {
	if h.m != nil && len(h.moving) > 0 {
		h.m.mu.Lock()
		for _, k := range h.moving {
			h.m.dirty[string(k)] = true
		}
		h.m.mu.Unlock()
		h.s.migDirtyKeys.Add(uint64(len(h.moving)))
	}
	h.s.migMu.RUnlock()
}

// routedRead runs op against the shard key routes to, holding the
// router's read indicator across the shard access: a concurrent cutover's
// Toggle waits for us, so the source shard's copy cannot be cleaned up
// under a read that routed to it. Wait-free with respect to migration —
// reads never take migMu and never park on the cutover gate.
func (s *Store) routedRead(key []byte, op func(p *shardPart) error) error {
	tid, vi := s.router.arrive()
	err := s.onShard(s.router.route(s.slotOf(key)), op)
	s.router.depart(tid, vi)
	return err
}

// ViewKey runs fn as one read-only transaction on the shard key routes
// to, with the same migration-safe routing as Get (the router's read
// indicator is held across the transaction). The network layer's GET/TTL
// paths use this instead of ShardFor+View so a cutover can never retire a
// shard's copy of the key mid-read.
func (s *Store) ViewKey(key []byte, fn func(tx ptm.Tx, db *kvstore.DB) error) error {
	return s.routedRead(key, func(p *shardPart) error {
		return p.eng.Read(func(tx ptm.Tx) error { return fn(tx, p.db) })
	})
}

// slotsPerShard resolves the configured placement granularity.
func (s *Store) slotsPerShard() int {
	if s.opts.SlotsPerShard > 0 {
		return s.opts.SlotsPerShard
	}
	return migrate.DefaultSlotsPerShard
}

// placementArea returns the reserved record area at the coordinator tail.
func (c *coordinator) placementArea() (base, size int) {
	return c.dev.Size() - placementReserve, placementReserve
}

// writePlacement durably publishes a placement record inside an audited
// span (the caller holds c.mu). WriteRecord's double-slot protocol makes
// the publish atomic: a torn write leaves the previous record decodable.
func (c *coordinator) writePlacement(p *migrate.Placement, point string) error {
	if a := c.aud; a != nil {
		a.TxBegin("xshard-coord", point)
		defer a.TxEnd()
	}
	base, size := c.placementArea()
	if err := migrate.WriteRecord(c.dev, base, size, p); err != nil {
		return err
	}
	if a := c.aud; a != nil {
		a.DurablePoint(point)
	}
	return nil
}

// publishPlacement serializes a routine placement publish against
// cross-shard commits.
func (c *coordinator) publishPlacement(p *migrate.Placement) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writePlacement(p, "placement-publish")
}

// cutoverPublish publishes the migration's ownership flip. It refuses
// while the coordinator is wedged or a cross-shard batch sits prepared:
// that batch's payload routes ops by shard indices baked at its prepare,
// so flipping ownership before its replay retires would hand a key two
// owners' worth of history.
func (c *coordinator) cutoverPublish(p *migrate.Placement) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wedged != nil {
		return fmt.Errorf("shard: cutover refused, coordinator wedged: %w", c.wedged)
	}
	if c.dev.Load64(cOffState)&cTagMask == cTagPrepared {
		return errors.New("shard: cutover refused while a cross-shard batch is in doubt")
	}
	return c.writePlacement(p, "placement-cutover")
}

// initPlacement loads (or synthesizes) the durable placement after the
// shards and coordinator have opened, builds the router, and resolves any
// in-flight migration journal. Stores created before placement existed
// adopt the identity map — byte-for-byte the old hash%N routing.
func (s *Store) initPlacement() error {
	base, size := s.coord.placementArea()
	pl := migrate.ReadRecord(s.coord.dev, base, size)
	n := len(s.parts())
	if pl == nil {
		pl = migrate.Identity(n, s.slotsPerShard())
		if err := s.publishPlacement(pl); err != nil {
			return fmt.Errorf("shard: publishing initial placement: %w", err)
		}
	}
	switch {
	case pl.NumShards > n:
		return fmt.Errorf("shard: placement names %d shards but the store has %d shard devices", pl.NumShards, n)
	case pl.NumShards < n:
		// Devices beyond the placement's count: an AddShard whose record
		// publish never persisted. The extra shards own no slots; adopt
		// them so the counts agree.
		extra := n - pl.NumShards
		pl = pl.Clone()
		pl.NumShards = n
		if err := s.publishPlacement(pl); err != nil {
			return fmt.Errorf("shard: adopting %d unplaced shard(s): %w", extra, err)
		}
	}
	s.numSlots = pl.NumSlots
	s.placement = pl
	s.router = newRouter(pl)
	return s.resolveJournal()
}

// publishPlacement durably writes the record (coordinator-serialized) and
// counts the publish.
func (s *Store) publishPlacement(p *migrate.Placement) error {
	if err := s.coord.publishPlacement(p); err != nil {
		return err
	}
	s.placementPublish.Inc()
	return nil
}

// resolveJournal settles the migration journal at open: PhaseCopy rolls
// back (wipe dst's partial copies), PhaseCleanup rolls forward (purge
// src's moved keys). Both arms are idempotent — a crash during recovery
// itself just re-runs the same arm. When the shard the arm must write to
// is quarantined, the journal is left in place: routing is already
// correct either way (the flip record decides ownership), the unreachable
// leftovers sit on a shard that serves nothing, and a later Scrub+reopen
// re-resolves against the (then empty) partition.
func (s *Store) resolveJournal() error {
	pl := s.placement
	var purgeShard int
	var counter *obs.Counter
	switch pl.Journal.Phase {
	case migrate.PhaseNone:
		return nil
	case migrate.PhaseCopy:
		purgeShard, counter = pl.Journal.Dst, s.migRecoverAbort
	case migrate.PhaseCleanup:
		purgeShard, counter = pl.Journal.Src, s.migRecoverFinish
	}
	set := pl.Journal.MovingSet(s.numSlots)
	if err := s.purgeMoving(purgeShard, set); err != nil {
		if errors.Is(err, ErrShardUnavailable) {
			return nil
		}
		return fmt.Errorf("shard: resolving %v migration journal: %w", pl.Journal.Phase, err)
	}
	pl2 := pl.Clone()
	pl2.Journal = migrate.Journal{}
	if err := s.publishPlacement(pl2); err != nil {
		return err
	}
	s.placement = pl2
	counter.Inc()
	return nil
}

// purgeMoving deletes every key of shard whose slot is in set, in bounded
// durable batches.
func (s *Store) purgeMoving(shard int, set []bool) error {
	for {
		keys, err := s.collectMoving(shard, set, 128)
		if err != nil {
			return err
		}
		if len(keys) == 0 {
			return nil
		}
		if err := s.deleteKeys(shard, keys); err != nil {
			return err
		}
	}
}

// collectMoving scans shard for up to max keys whose slot is in set
// (copies — the scan's slices die with its transaction).
func (s *Store) collectMoving(shard int, set []bool, max int) ([][]byte, error) {
	var keys [][]byte
	err := s.View(shard, func(tx ptm.Tx, db *kvstore.DB) error {
		keys = keys[:0] // the engine may retry fn; rebuild
		db.RangeTx(tx, false, func(k, v []byte) bool {
			if set[s.slotOf(k)] {
				keys = append(keys, append([]byte(nil), k...))
			}
			return len(keys) < max
		})
		return nil
	})
	return keys, err
}

// deleteKeys removes keys from shard in one durable transaction.
func (s *Store) deleteKeys(shard int, keys [][]byte) error {
	return s.Update(shard, func(tx ptm.Tx, db *kvstore.DB) error {
		for _, k := range keys {
			if err := db.DeleteTx(tx, k); err != nil {
				return err
			}
		}
		return nil
	})
}

// AddShard brings a fresh empty shard online: a new engine + map, wired
// into auditing/blackbox like Open's shards, registered in the placement
// (owning no slots — a migration moves slots to it). Refused while a
// migration is journaled, so the device set a crash must recover is
// stable throughout a migration.
func (s *Store) AddShard() (int, error) {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	if s.mig != nil || s.placement.Journal.Phase != migrate.PhaseNone {
		return 0, errors.New("shard: cannot add a shard during a migration")
	}
	eng, err := core.New(s.opts.RegionSize, s.engineConfig())
	if err != nil {
		return 0, fmt.Errorf("shard: adding shard: %w", err)
	}
	if err := eng.Update(func(tx ptm.Tx) error {
		_, err := pstruct.NewByteMap(tx, 0, s.opts.InitialBuckets)
		return err
	}); err != nil {
		return 0, fmt.Errorf("shard: adding shard: initializing map: %w", err)
	}
	p := &shardPart{eng: eng, db: kvstore.Attach(eng), dev: eng.Device()}
	i := len(s.parts())
	s.amu.Lock()
	s.flight = append(s.flight, nil)
	err = s.attachBlackbox(i, p) // writes s.flight[i]
	s.amu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("shard: adding shard %d: %w", i, err)
	}
	var aud *audit.Auditor
	if s.opts.Audit && s.opts.Auditors == nil {
		aud = audit.New(eng.Device(), audit.Options{})
		aud.Attach()
		eng.SetAuditor(aud)
	}
	pl2 := s.placement.Clone()
	pl2.NumShards = i + 1
	if err := s.publishPlacement(pl2); err != nil {
		return 0, err
	}
	s.placement = pl2
	s.setParts(append(append([]*shardPart(nil), s.parts()...), p))
	s.amu.Lock()
	coordA := s.auds[len(s.auds)-1]
	s.auds = append(append(s.auds[:len(s.auds)-1:len(s.auds)-1], aud), coordA)
	s.amu.Unlock()
	return i, nil
}

// OwnedSlots lists the slots shard owns under the current placement.
func (s *Store) OwnedSlots(shard int) []int {
	s.migMu.RLock()
	defer s.migMu.RUnlock()
	return s.placement.OwnedBy(shard)
}

// MigrationBegin journals PhaseCopy for slots moving src -> dst and
// activates the write protocol's dirty tracking. Taking the epoch lock
// for write means every write in flight before the journal publish has
// committed when this returns — the copy snapshot misses none of them.
func (s *Store) MigrationBegin(src, dst int, slots []int) error {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	n := len(s.parts())
	if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
		return fmt.Errorf("shard: migration src=%d dst=%d invalid for %d shards", src, dst, n)
	}
	if s.mig != nil || s.placement.Journal.Phase != migrate.PhaseNone {
		return errors.New("shard: migration already in progress")
	}
	if len(slots) == 0 {
		return errors.New("shard: migration moves no slots")
	}
	ps := s.parts()
	if ps[src].faulted.Load() {
		return s.unavail(src)
	}
	if ps[dst].faulted.Load() {
		return s.unavail(dst)
	}
	moving := make([]bool, s.numSlots)
	for _, sl := range slots {
		if sl < 0 || sl >= s.numSlots {
			return fmt.Errorf("shard: migration slot %d out of range", sl)
		}
		if s.placement.Slots[sl] != src {
			return fmt.Errorf("shard: slot %d is owned by shard %d, not source %d", sl, s.placement.Slots[sl], src)
		}
		moving[sl] = true
	}
	sorted := append([]int(nil), slots...)
	sort.Ints(sorted)
	pl2 := s.placement.Clone()
	pl2.Journal = migrate.Journal{
		Phase: migrate.PhaseCopy,
		ID:    pl2.Version + 1,
		Src:   src,
		Dst:   dst,
		Slots: sorted,
	}
	if err := s.publishPlacement(pl2); err != nil {
		return err
	}
	s.placement = pl2
	s.mig = &migration{
		id:     pl2.Journal.ID,
		src:    src,
		dst:    dst,
		moving: moving,
		dirty:  make(map[string]bool),
	}
	s.migBegun.Inc()
	return nil
}

type kvPair struct{ k, v []byte }

// MigrationCopyStep copies up to maxKeys moving keys from src to dst in
// one durable destination transaction. The first step snapshots the
// moving key set; keys written after the snapshot are dirty-tracked by
// the write protocol and re-copied at cutover, so the copy pass never
// needs to rescan. Runs concurrently with foreground writes (it holds no
// locks across the engine work).
func (s *Store) MigrationCopyStep(maxKeys int) (keys, bytes int, done bool, err error) {
	if maxKeys <= 0 {
		maxKeys = 64
	}
	s.migMu.RLock()
	m := s.mig
	s.migMu.RUnlock()
	if m == nil {
		return 0, 0, false, errNoMigration
	}
	if !m.snapshotted {
		var snap [][]byte
		err := s.View(m.src, func(tx ptm.Tx, db *kvstore.DB) error {
			snap = snap[:0] // the engine may retry fn; rebuild
			db.RangeTx(tx, false, func(k, v []byte) bool {
				if m.moving[s.slotOf(k)] {
					snap = append(snap, append([]byte(nil), k...))
				}
				return true
			})
			return nil
		})
		if err != nil {
			return 0, 0, false, err
		}
		m.copyKeys, m.snapshotted = snap, true
	}
	if m.copyPos >= len(m.copyKeys) {
		return 0, 0, true, nil
	}
	end := m.copyPos + maxKeys
	if end > len(m.copyKeys) {
		end = len(m.copyKeys)
	}
	batch := m.copyKeys[m.copyPos:end]
	var puts []kvPair
	err = s.View(m.src, func(tx ptm.Tx, db *kvstore.DB) error {
		puts, bytes = puts[:0], 0 // the engine may retry fn; rebuild
		for _, k := range batch {
			v, err := db.GetTx(tx, k)
			if errors.Is(err, kvstore.ErrNotFound) {
				continue // deleted since the snapshot; the dirty set has it
			}
			if err != nil {
				return err
			}
			puts = append(puts, kvPair{k, v})
			bytes += len(k) + len(v)
		}
		return nil
	})
	if err != nil {
		return 0, 0, false, err
	}
	if len(puts) > 0 {
		if err := s.Update(m.dst, func(tx ptm.Tx, db *kvstore.DB) error {
			for _, p := range puts {
				if err := db.PutTx(tx, p.k, p.v); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return 0, 0, false, err
		}
	}
	m.copyPos = end
	s.migCopiedKeys.Add(uint64(len(batch)))
	s.migCopiedBytes.Add(uint64(bytes))
	return len(batch), bytes, m.copyPos >= len(m.copyKeys), nil
}

// recopyDirty drains the migration's dirty set, re-reading each key from
// src and applying the result (put or delete) to dst in batches of
// maxKeys, one durable transaction each.
func (s *Store) recopyDirty(m *migration, maxKeys int) (int, error) {
	total := 0
	for {
		m.mu.Lock()
		var batch [][]byte
		for k := range m.dirty {
			batch = append(batch, []byte(k))
			delete(m.dirty, k)
			if len(batch) >= maxKeys {
				break
			}
		}
		m.mu.Unlock()
		if len(batch) == 0 {
			return total, nil
		}
		var puts []kvPair
		var dels [][]byte
		err := s.View(m.src, func(tx ptm.Tx, db *kvstore.DB) error {
			puts, dels = puts[:0], dels[:0] // View may retry fn; rebuild
			for _, k := range batch {
				v, err := db.GetTx(tx, k)
				if errors.Is(err, kvstore.ErrNotFound) {
					dels = append(dels, k)
					continue
				}
				if err != nil {
					return err
				}
				puts = append(puts, kvPair{k, v})
			}
			return nil
		})
		if err != nil {
			return total, err
		}
		if err := s.Update(m.dst, func(tx ptm.Tx, db *kvstore.DB) error {
			for _, p := range puts {
				if err := db.PutTx(tx, p.k, p.v); err != nil {
					return err
				}
			}
			for _, k := range dels {
				if err := db.DeleteTx(tx, k); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return total, err
		}
		total += len(batch)
	}
}

// MigrationCutover is the commit point: fence writes to the moving slots,
// recopy the dirty set (first concurrently, then once more under the
// write lock to catch marks from writes that were mid-flight), publish
// the record that flips ownership AND journals PhaseCleanup in one
// durable write, and toggle the router. On any failure the fence lifts
// and writes resume against src — the caller (driver) aborts the copy.
func (s *Store) MigrationCutover(maxKeys int) (int, error) {
	if maxKeys <= 0 {
		maxKeys = 64
	}
	s.migMu.Lock()
	m := s.mig
	if m == nil {
		s.migMu.Unlock()
		return 0, errNoMigration
	}
	m.fenced = true
	m.mu.Lock()
	m.gate = make(chan struct{})
	m.mu.Unlock()
	s.migMu.Unlock()

	recopied, err := s.recopyDirty(m, maxKeys)

	s.migMu.Lock()
	if err == nil {
		// Final drain: every pre-fence write has released the epoch lock,
		// so its dirty marks are visible and no new ones can appear.
		var n int
		n, err = s.recopyDirty(m, maxKeys)
		recopied += n
	}
	if err == nil {
		pl2 := s.placement.Clone()
		for _, sl := range pl2.Journal.Slots {
			pl2.Slots[sl] = m.dst
		}
		pl2.Journal.Phase = migrate.PhaseCleanup
		if perr := s.coord.cutoverPublish(pl2); perr != nil {
			err = perr
		} else {
			s.placementPublish.Inc()
			s.placement = pl2
			s.router.publish(pl2.Slots)
			s.mig = nil
		}
	}
	if err != nil {
		m.fenced = false
	}
	m.mu.Lock()
	close(m.gate)
	m.gate = nil
	m.mu.Unlock()
	s.migMu.Unlock()
	if err != nil {
		return recopied, err
	}
	s.migCutovers.Inc()
	return recopied, nil
}

// MigrationCleanupStep deletes up to maxKeys moved keys still on the
// source shard; when none remain it publishes PhaseNone and reports done.
// Idempotent across crashes (recovery's roll-forward arm is this same
// purge).
func (s *Store) MigrationCleanupStep(maxKeys int) (int, bool, error) {
	if maxKeys <= 0 {
		maxKeys = 64
	}
	s.migMu.RLock()
	pl := s.placement
	s.migMu.RUnlock()
	if pl.Journal.Phase != migrate.PhaseCleanup {
		if pl.Journal.Phase == migrate.PhaseNone {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("shard: cleanup step in journal phase %v", pl.Journal.Phase)
	}
	set := pl.Journal.MovingSet(s.numSlots)
	keys, err := s.collectMoving(pl.Journal.Src, set, maxKeys)
	if err != nil {
		return 0, false, err
	}
	if len(keys) == 0 {
		s.migMu.Lock()
		defer s.migMu.Unlock()
		if s.placement.Journal.Phase != migrate.PhaseCleanup {
			return 0, true, nil
		}
		pl2 := s.placement.Clone()
		pl2.Journal = migrate.Journal{}
		if err := s.publishPlacement(pl2); err != nil {
			return 0, false, err
		}
		s.placement = pl2
		return 0, true, nil
	}
	if err := s.deleteKeys(pl.Journal.Src, keys); err != nil {
		return 0, false, err
	}
	s.migCleanedKeys.Add(uint64(len(keys)))
	return len(keys), false, nil
}

// MigrationAbort rolls an unfinished copy phase back: wipe the partial
// copies from dst (only migration copies can be there — routing never
// pointed at dst for the moving slots) and journal PhaseNone. Source owns
// every key again, exactly as before MigrationBegin.
func (s *Store) MigrationAbort() error {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	if s.mig == nil || s.placement.Journal.Phase != migrate.PhaseCopy {
		return errors.New("shard: no abortable migration (abort is only valid before cutover)")
	}
	m := s.mig
	set := s.placement.Journal.MovingSet(s.numSlots)
	if err := s.purgeMoving(m.dst, set); err != nil {
		return fmt.Errorf("shard: aborting migration: %w", err)
	}
	pl2 := s.placement.Clone()
	pl2.Journal = migrate.Journal{}
	if err := s.publishPlacement(pl2); err != nil {
		return err
	}
	s.placement = pl2
	s.mig = nil
	s.migAborts.Inc()
	return nil
}

// MigrationState summarizes an in-flight (journaled) migration for STATS.
type MigrationState struct {
	Phase string `json:"phase"`
	ID    uint64 `json:"id"`
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Slots int    `json:"slots"`
}

// PlacementInfo is the STATS `placement` section: geometry, record
// version, per-shard slot ownership, and the active migration (if any).
type PlacementInfo struct {
	Slots     int             `json:"slots"`
	Version   uint64          `json:"version"`
	Shards    []int           `json:"shard_slots"`
	Migration *MigrationState `json:"migration,omitempty"`
}

// Placement snapshots the placement for STATS and the PLACEMENT command.
func (s *Store) Placement() PlacementInfo {
	s.migMu.RLock()
	defer s.migMu.RUnlock()
	pl := s.placement
	info := PlacementInfo{Slots: pl.NumSlots, Version: pl.Version, Shards: pl.Counts()}
	if pl.Journal.Phase != migrate.PhaseNone {
		info.Migration = &MigrationState{
			Phase: pl.Journal.Phase.String(),
			ID:    pl.Journal.ID,
			Src:   pl.Journal.Src,
			Dst:   pl.Journal.Dst,
			Slots: len(pl.Journal.Slots),
		}
	}
	return info
}

// PlacementRecoveryPending reports whether a captured coordinator image
// holds a migration journal (copy or cleanup) that Reopen would resolve.
func PlacementRecoveryPending(img []byte) bool {
	if len(img) < migrate.RecordSize {
		return false
	}
	pl := migrate.DecodeRecordBytes(img[len(img)-migrate.RecordSize:])
	return pl != nil && pl.Journal.Phase != migrate.PhaseNone
}
