package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Coordinator log layout. The log is a tiny standalone device holding at
// most ONE in-flight cross-shard batch; cross-shard commits serialize on it
// (single-key traffic and single-shard batches never touch it).
//
//	line 0 (header):  magic | version | headSum | state word
//	line 1 (meta):    batch id | payload length | payload checksum
//	line 2+:          encoded batch payload
//
// The state word is the protocol's single linchpin: its high 16 bits are a
// tag (free / prepared) and its low 48 bits the batch id, so both protocol
// transitions — free(n) → prepared(n+1) at prepare, prepared(n) → free(n)
// at done — are ONE 8-byte store each. Words persist atomically under every
// crash policy (including word-tearing, which tears between words, not
// within them), so recovery can never observe a half-written transition or
// a done record whose id regressed relative to its tag.
//
// Two-phase protocol, and why recovery's two arms are forced:
//
//	prepare: payload + meta stored and FENCED, then the state word flips to
//	         prepared(id) and is psync'd. Shard applies begin only after
//	         that psync. Therefore at recovery, tag != prepared proves no
//	         shard ever applied a slice of the in-flight batch — rolling it
//	         back (presumed abort: simply not replaying it) is sound.
//	applies: each involved shard applies its slice in ONE engine transaction
//	         that also advances the shard's applied-batch watermark (root
//	         slot 1, twin-copied with the data). "watermark >= id" is thus
//	         exactly "this shard durably holds batch id", making replay
//	         idempotent per shard.
//	done:    the state word flips back to free(id) and is psync'd. A crash
//	         before that psync leaves tag == prepared with meta and payload
//	         intact (they were fenced before the prepare flip and are never
//	         touched during applies), so recovery replays the batch to every
//	         shard the watermark proves behind — roll-forward is always
//	         possible, never partial.
const (
	cOffMagic   = 0
	cOffVersion = 8
	cOffHeadSum = 16
	cOffState   = 24

	cOffBatchID = 64
	cOffPayLen  = 72
	cOffPaySum  = 80

	cPayloadBase = 128

	cMagic    = 0x44524853584d4f52 // "ROMXSHRD" little-endian
	cVersion  = 1
	cHeadSalt = 0x5ec0de5ec0de5ec0

	cIDMask      = (uint64(1) << 48) - 1
	cTagFree     = uint64(0xF5EE) << 48
	cTagPrepared = uint64(0x95E9) << 48
	cTagMask     = ^cIDMask
)

// Exported coordinator recovery errors.
var (
	// ErrCorruptHeader means the coordinator log carries the magic number
	// but its header fails validation — not a crash artifact (the format
	// protocol publishes the magic last), so recovery refuses to guess.
	ErrCorruptHeader = errors.New("shard: corrupt coordinator header")
	// ErrCorruptLog means a prepared record's meta or payload fails its
	// checksum. The protocol fences both before publishing the prepared
	// state, so this too cannot be a crash artifact.
	ErrCorruptLog = errors.New("shard: corrupt coordinator log record")
)

type coordinator struct {
	mu     sync.Mutex
	dev    *pmem.Device
	aud    ptm.Auditor
	lastID uint64
	// wedged records an apply-phase failure: the record stays prepared and
	// further cross-shard commits are refused until a reopen resolves it.
	wedged error

	prepares  atomic.Uint64
	commits   atomic.Uint64
	aborts    atomic.Uint64
	replays   atomic.Uint64
	rollbacks atomic.Uint64

	// Test hooks (nil in production) let crash tests capture multi-device
	// images at exact protocol points instead of counting events.
	testAfterPrepare    func()          // after the prepare psync + audit point
	testAfterStateStore func()          // after the prepared state-word store, before its pwb/psync
	testAfterApply      func(shard int) // after each shard's apply during commit
}

func stFree(id uint64) uint64     { return cTagFree | (id & cIDMask) }
func stPrepared(id uint64) uint64 { return cTagPrepared | (id & cIDMask) }

// openCoordinator formats a fresh log or recovers an existing one, resolving
// any in-doubt batch against the store's (already recovered) shards.
func openCoordinator(dev *pmem.Device, s *Store, aud ptm.Auditor) (*coordinator, error) {
	c := &coordinator{dev: dev, aud: aud}
	if dev.Load64(cOffMagic) != cMagic {
		// No magic: a fresh device, or a format that crashed before its
		// final publish — either way nothing was ever prepared here.
		c.format()
		return c, nil
	}
	if dev.Load64(cOffVersion) != cVersion ||
		dev.Load64(cOffHeadSum) != cMagic^cVersion^cHeadSalt {
		return nil, ErrCorruptHeader
	}

	// Fold the shards' applied watermarks into the id floor. The atomic
	// state word already prevents id regression; this guards the one case
	// it cannot — a corrupted state word repaired below — since reusing an
	// id a shard has already applied would break replay idempotency.
	maxApplied := uint64(0)
	for i, p := range s.parts() {
		w, err := p.appliedID()
		if err != nil {
			return nil, fmt.Errorf("shard %d: reading applied watermark: %w", i, err)
		}
		if w > maxApplied {
			maxApplied = w
		}
	}

	word := dev.Load64(cOffState)
	tag, id := word&cTagMask, word&cIDMask
	switch tag {
	case cTagFree:
		c.lastID = max(id, maxApplied)
		if metaID := dev.Load64(cOffBatchID); metaID > c.lastID {
			// A prepare attempt durably staged its meta but its state flip
			// never persisted: no shard can have applied it (applies gate on
			// the flip's psync), so the record is simply abandoned.
			c.rollbacks.Add(1)
		}
	case cTagPrepared:
		if err := c.replay(s, id); err != nil {
			if errors.Is(err, ErrShardUnavailable) {
				// The in-doubt batch involves a quarantined shard: the healthy
				// shards' slices were rolled forward above, the record stays
				// prepared, and the coordinator wedges until a Scrub readmits
				// the shard and resolve() can finish the roll-forward.
				c.wedged = err
			} else {
				return nil, err
			}
		}
		c.lastID = max(id, maxApplied)
	default:
		// A garbage tag is outside the crash model (both transitions are
		// single-word stores of valid tags); presume abort, repair the word
		// durably, and continue with the watermark-derived id floor.
		c.lastID = maxApplied
		c.publishState(stFree(c.lastID), "xshard-repair")
		c.rollbacks.Add(1)
	}
	return c, nil
}

// format initializes a fresh log. Failure-atomic: the magic is published
// last, so a crash mid-format leaves a magicless device that the next open
// formats again from scratch.
func (c *coordinator) format() {
	d := c.dev
	if a := c.aud; a != nil {
		a.TxBegin("xshard-coord", "format")
		defer a.TxEnd()
	}
	d.Store64(cOffVersion, cVersion)
	d.Store64(cOffHeadSum, cMagic^cVersion^cHeadSalt)
	d.Store64(cOffState, stFree(0))
	d.Pwb(cOffMagic)
	d.Pfence()
	d.Store64(cOffMagic, cMagic)
	d.Pwb(cOffMagic)
	d.Psync()
	if a := c.aud; a != nil {
		a.DurablePoint("coord-format")
	}
}

// publishState durably writes the state word and checks the durable point.
func (c *coordinator) publishState(word uint64, point string) {
	d := c.dev
	d.Store64(cOffState, word)
	d.Pwb(cOffState)
	d.Psync()
	if a := c.aud; a != nil {
		a.DurablePoint(point)
	}
}

// replay rolls an in-doubt prepared batch forward: every involved shard
// whose watermark is behind the batch id applies its slice, then the done
// transition retires the record. Idempotent — safe under crash-during-
// recovery chains of any depth.
func (c *coordinator) replay(s *Store, id uint64) error {
	d := c.dev
	if d.Load64(cOffBatchID) != id {
		return fmt.Errorf("%w: prepared state names batch %d but meta holds %d",
			ErrCorruptLog, id, d.Load64(cOffBatchID))
	}
	payLen := int(d.Load64(cOffPayLen))
	if payLen <= 0 || cPayloadBase+payLen > d.Size()-placementReserve {
		return fmt.Errorf("%w: payload length %d out of bounds", ErrCorruptLog, payLen)
	}
	payload := make([]byte, payLen)
	d.LoadBytes(cPayloadBase, payload)
	if sum := payloadSum(payload); sum != d.Load64(cOffPaySum) {
		return fmt.Errorf("%w: payload checksum mismatch", ErrCorruptLog)
	}
	groups, err := decodeOps(payload, len(s.parts()))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptLog, err)
	}
	// Healthy shards roll forward first; quarantined involved shards block
	// the done transition (the record must stay replayable for them), so the
	// caller wedges instead of retiring the batch.
	var blocked []int
	parts := s.parts()
	for i, g := range groups {
		if g == nil {
			continue
		}
		if parts[i].faulted.Load() {
			blocked = append(blocked, i)
			continue
		}
		w, err := parts[i].appliedID()
		if err != nil {
			return fmt.Errorf("shard %d: reading applied watermark: %w", i, err)
		}
		if w >= id {
			continue // this shard's slice already durable
		}
		if err := parts[i].applyPrepared(id, g); err != nil {
			return fmt.Errorf("shard %d: replaying batch %d: %w", i, id, err)
		}
	}
	if len(blocked) > 0 {
		return fmt.Errorf("shard: batch %d in doubt, involved shard(s) %v quarantined: %w",
			id, blocked, ErrShardUnavailable)
	}
	if a := c.aud; a != nil {
		a.TxBegin("xshard-coord", "replay-done")
	}
	c.publishState(stFree(id), "xshard-done")
	if a := c.aud; a != nil {
		a.TxEnd()
	}
	c.replays.Add(1)
	return nil
}

// commit runs the two-phase protocol for a batch spanning multiple shards.
// groups is indexed by shard; nil entries are uninvolved shards.
func (c *coordinator) commit(s *Store, groups []*kvstore.Batch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wedged != nil {
		return fmt.Errorf("shard: coordinator wedged by earlier apply failure (reopen or scrub to resolve): %w", c.wedged)
	}
	// Refuse upfront if any involved shard is quarantined: preparing a batch
	// that cannot complete would only wedge the coordinator.
	parts := s.parts()
	for i, g := range groups {
		if g != nil && parts[i].faulted.Load() {
			c.aborts.Add(1)
			return s.unavail(i)
		}
	}

	payload := encodeOps(groups)
	if cPayloadBase+len(payload) > c.dev.Size()-placementReserve {
		c.aborts.Add(1)
		return fmt.Errorf("shard: batch payload (%d bytes) exceeds coordinator log capacity (%d)",
			len(payload), c.dev.Size()-placementReserve-cPayloadBase)
	}
	id := c.lastID + 1
	d := c.dev

	// Prepare: payload and meta become durable (fence), THEN the prepared
	// state word is published (psync). Order is everything — see the layout
	// comment.
	if a := c.aud; a != nil {
		a.TxBegin("xshard-coord", "prepare")
	}
	d.StoreBytes(cPayloadBase, payload)
	d.PwbRange(cPayloadBase, len(payload))
	d.Store64(cOffBatchID, id)
	d.Store64(cOffPayLen, uint64(len(payload)))
	d.Store64(cOffPaySum, payloadSum(payload))
	d.Pwb(cOffBatchID) // meta shares one line
	d.Pfence()
	d.Store64(cOffState, stPrepared(id))
	if fn := c.testAfterStateStore; fn != nil {
		fn()
	}
	d.Pwb(cOffState)
	d.Psync()
	if a := c.aud; a != nil {
		a.DurablePoint("xshard-prepare")
		a.TxEnd()
	}
	c.prepares.Add(1)
	if fn := c.testAfterPrepare; fn != nil {
		fn()
	}

	// Applies: one durable shard transaction per involved shard, ascending
	// index order (deterministic for crash tests; no lock ordering concerns
	// since the coordinator mutex serializes cross-shard commits).
	for i, g := range groups {
		if g == nil {
			continue
		}
		if err := parts[i].applyPrepared(id, g); err != nil {
			if s.opts.QuarantineFaults && errors.Is(err, pmem.ErrMediaFault) {
				s.quarantine(i, err)
			}
			c.lastID = id // the id is burned: the prepared record owns it
			c.wedged = fmt.Errorf("shard %d, batch %d: %w", i, id, err)
			return fmt.Errorf("shard: cross-shard apply failed, batch %d in doubt until reopen or scrub: %w", id, err)
		}
		if fn := c.testAfterApply; fn != nil {
			fn(i)
		}
	}

	// Done: a single-word state flip retires the record.
	if a := c.aud; a != nil {
		a.TxBegin("xshard-coord", "done")
	}
	c.publishState(stFree(id), "xshard-done")
	if a := c.aud; a != nil {
		a.TxEnd()
	}
	c.lastID = id
	c.commits.Add(1)
	return nil
}

// resolve finishes an in-doubt prepared batch in-process — the Scrub path's
// counterpart to openCoordinator's recovery arm. If the state word still
// says prepared, the record is replayed (idempotently: a freshly scrubbed
// shard has watermark 0 and reapplies its slice, shards that already hold
// the batch skip), and on success the wedge is cleared.
func (c *coordinator) resolve(s *Store) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	word := c.dev.Load64(cOffState)
	if word&cTagMask != cTagPrepared {
		c.wedged = nil
		return nil
	}
	id := word & cIDMask
	if err := c.replay(s, id); err != nil {
		c.wedged = err
		return fmt.Errorf("shard: resolving in-doubt batch %d: %w", id, err)
	}
	c.wedged = nil
	c.lastID = max(id, c.lastID)
	return nil
}

func (c *coordinator) close() {
	if a := c.aud; a != nil {
		if ca, ok := a.(interface{ EngineClose(string) }); ok {
			ca.EngineClose("xshard-coord")
		}
	}
}

// CoordRecoveryPending reports whether a captured coordinator image holds a
// prepared-but-unfinished cross-shard batch that Reopen would roll forward.
func CoordRecoveryPending(img []byte) bool {
	if len(img) < cPayloadBase {
		return false
	}
	le := binary.LittleEndian
	return le.Uint64(img[cOffMagic:]) == cMagic &&
		le.Uint64(img[cOffState:])&cTagMask == cTagPrepared
}

// encodeOps serializes per-shard batches: u32 op count, then per op
// u32 shard | u8 del | u32 klen | u32 vlen | key | val (little-endian).
func encodeOps(groups []*kvstore.Batch) []byte {
	n := 0
	for _, g := range groups {
		if g != nil {
			n += g.Len()
		}
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(n))
	for i, g := range groups {
		if g == nil {
			continue
		}
		g.Each(func(del bool, key, val []byte) {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
			if del {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
			buf = append(buf, key...)
			buf = append(buf, val...)
		})
	}
	return buf
}

// decodeOps reverses encodeOps, validating every bound against the payload
// length and shard count.
func decodeOps(payload []byte, nShards int) ([]*kvstore.Batch, error) {
	le := binary.LittleEndian
	if len(payload) < 4 {
		return nil, errors.New("payload truncated before op count")
	}
	n := int(le.Uint32(payload))
	pos := 4
	groups := make([]*kvstore.Batch, nShards)
	for op := 0; op < n; op++ {
		if pos+13 > len(payload) {
			return nil, fmt.Errorf("payload truncated in op %d header", op)
		}
		sh := int(le.Uint32(payload[pos:]))
		del := payload[pos+4]
		klen := int(le.Uint32(payload[pos+5:]))
		vlen := int(le.Uint32(payload[pos+9:]))
		pos += 13
		if sh >= nShards {
			return nil, fmt.Errorf("op %d routes to shard %d of %d", op, sh, nShards)
		}
		if del > 1 || klen < 0 || vlen < 0 || pos+klen+vlen > len(payload) {
			return nil, fmt.Errorf("payload truncated in op %d body", op)
		}
		key := payload[pos : pos+klen]
		val := payload[pos+klen : pos+klen+vlen]
		pos += klen + vlen
		if groups[sh] == nil {
			groups[sh] = &kvstore.Batch{}
		}
		if del == 1 {
			groups[sh].Delete(key)
		} else {
			groups[sh].Put(key, val)
		}
	}
	return groups, nil
}

// payloadSum is FNV-1a 64 over the encoded payload.
func payloadSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
