package shard

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/migrate"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// checkOwnership asserts the migration invariant: every stored key lives
// on exactly the shard the placement routes it to — no key is orphaned on
// a shard that no longer owns its slot, and none exists twice.
func checkOwnership(t *testing.T, s *Store, ctx string) {
	t.Helper()
	seen := map[string]int{}
	for i := 0; i < s.NumShards(); i++ {
		var keys []string
		err := s.View(i, func(tx ptm.Tx, db *kvstore.DB) error {
			keys = keys[:0]
			db.RangeTx(tx, false, func(k, v []byte) bool {
				keys = append(keys, string(k))
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatalf("%s: scanning shard %d: %v", ctx, i, err)
		}
		for _, k := range keys {
			if owner := s.ShardFor([]byte(k)); owner != i {
				t.Fatalf("%s: key %q stored on shard %d but placement routes it to %d", ctx, k, i, owner)
			}
			if prev, dup := seen[k]; dup {
				t.Fatalf("%s: key %q exists on shards %d and %d", ctx, k, prev, i)
			}
			seen[k] = i
		}
	}
}

// A fresh store's identity placement must route byte-for-byte like the
// pre-placement hash-mod-N, including sidecar keys (which route by base).
func TestPlacementRoutingMatchesLegacyHash(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		s, err := Open(testOpts(n))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			key := []byte(fmt.Sprintf("legacy-key-%04d", i))
			h := fnv.New64a()
			h.Write(key)
			want := int(h.Sum64() % uint64(n))
			if got := s.ShardFor(key); got != want {
				t.Fatalf("shards=%d key %s: placement routes to %d, hash%%N to %d", n, key, got, want)
			}
			if got := s.ShardFor(SidecarKey("exp", key)); got != want {
				t.Fatalf("shards=%d key %s: sidecar routes to %d, base to %d", n, key, got, want)
			}
		}
		s.Close()
	}
}

func loadKeys(t *testing.T, s *Store, n int, tag string) map[string]string {
	t.Helper()
	want := map[string]string{}
	for i := 0; i < n; i++ {
		k, v := fmt.Sprintf("%s-%04d", tag, i), fmt.Sprintf("val-%s-%04d", tag, i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	return want
}

// An end-to-end online split: a fresh shard comes up, half the source's
// slots move, every key stays readable with its latest value, and each key
// ends on exactly its placement owner.
func TestSplitEndToEnd(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := loadKeys(t, s, 300, "split")

	d := migrate.New(s, migrate.Options{BatchKeys: 16})
	dst, err := d.Split(0)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if dst != 2 || s.NumShards() != 3 {
		t.Fatalf("split produced dst=%d, NumShards=%d", dst, s.NumShards())
	}
	st := d.Status()
	if st.Phase != "done" || st.CopiedKeys == 0 {
		t.Fatalf("driver status after split: %+v", st)
	}
	if len(s.OwnedSlots(2)) == 0 {
		t.Fatal("destination shard owns no slots after split")
	}
	checkAllPresent(t, s, want, "after split")
	checkOwnership(t, s, "after split")
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d (cleanup left duplicates?)", s.Len(), len(want))
	}
	if vc := s.ViolationCount(); vc != 0 {
		t.Fatalf("audit violations: %d", vc)
	}

	// The placement survives capture + reopen: same routing, same data.
	imgs := captureAll(s, pmem.DropAll)
	rs := reopenImages(t, imgs, testOpts(0))
	defer rs.Close()
	if rs.NumShards() != 3 {
		t.Fatalf("reopened NumShards = %d", rs.NumShards())
	}
	checkAllPresent(t, rs, want, "after split+reopen")
	checkOwnership(t, rs, "after split+reopen")
}

// Writes racing the split — including writes to the moving slice, which
// dual-track through the dirty set and the cutover fence — must all
// survive with their final values.
func TestSplitWithConcurrentWrites(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := loadKeys(t, s, 200, "live")

	d := migrate.New(s, migrate.Options{BatchKeys: 8})
	if _, err := d.Begin(0, -1); err != nil {
		t.Fatal(err)
	}
	// Concurrent writers overwrite existing keys (no inserts, no deletes),
	// so the exact value of a contended key is racy but the key set is
	// fixed: the checks below are the set, ownership, and the audit.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i <= 200; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("live-%04d", (i*7+w*61)%200)
				v := fmt.Sprintf("rewrite-%d-%d", w, i)
				if err := s.Put([]byte(k), []byte(v)); err != nil {
					t.Errorf("Put during split: %v", err)
					return
				}
			}
		}(w)
	}
	if err := d.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	checkOwnership(t, s, "after live split")
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	if vc := s.ViolationCount(); vc != 0 {
		t.Fatalf("audit violations: %d", vc)
	}
}

// A crash mid-copy rolls BACK: the journal's recovery arm wipes the
// destination's partial copies and the source owns every key again.
func TestCrashDuringCopyRollsBack(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	want := loadKeys(t, s, 120, "copycrash")

	d := migrate.New(s, migrate.Options{BatchKeys: 8})
	if _, err := d.Begin(0, -1); err != nil {
		t.Fatal(err)
	}
	// A few copy batches land durably on dst, then the "machine" dies.
	for i := 0; i < 3; i++ {
		if done, err := d.Step(); err != nil || done {
			t.Fatalf("copy step %d: done=%v err=%v", i, done, err)
		}
	}
	imgs := captureAll(s, pmem.DropAll)
	s.Close()

	if !PlacementRecoveryPending(imgs[len(imgs)-1]) {
		t.Fatal("captured coordinator image shows no migration journal")
	}
	rs := reopenImages(t, imgs, testOpts(0))
	defer rs.Close()
	if got := rs.Placement(); got.Migration != nil {
		t.Fatalf("journal not resolved at reopen: %+v", got.Migration)
	}
	// Roll-back: dst (shard 2) must hold nothing; src owns every key.
	if n := rs.NumShards(); n != 3 {
		t.Fatalf("reopened NumShards = %d", n)
	}
	var dstKeys int
	if err := rs.View(2, func(tx ptm.Tx, db *kvstore.DB) error {
		dstKeys = db.Len()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if dstKeys != 0 {
		t.Fatalf("destination still holds %d keys after copy-phase rollback", dstKeys)
	}
	checkAllPresent(t, rs, want, "after copy-crash recovery")
	checkOwnership(t, rs, "after copy-crash recovery")

	// The rolled-back store can split again, to completion.
	d2 := migrate.New(rs, migrate.Options{BatchKeys: 16})
	if _, err := d2.Begin(0, 2); err != nil {
		t.Fatalf("re-split Begin: %v", err)
	}
	if err := d2.Run(); err != nil {
		t.Fatalf("re-split: %v", err)
	}
	checkAllPresent(t, rs, want, "after re-split")
	checkOwnership(t, rs, "after re-split")
}

// A crash after the cutover publish rolls FORWARD: the flip record already
// moved ownership, recovery purges the source's leftovers.
func TestCrashAfterCutoverRollsForward(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	want := loadKeys(t, s, 120, "cutcrash")

	d := migrate.New(s, migrate.Options{BatchKeys: 8})
	if _, err := d.Begin(0, -1); err != nil {
		t.Fatal(err)
	}
	// Step until the cutover has published (driver reaches cleanup).
	for d.Status().Phase != "cleanup" {
		if done, err := d.Step(); err != nil {
			t.Fatalf("step: %v", err)
		} else if done {
			t.Fatal("migration finished before a cleanup-phase capture")
		}
	}
	// One bounded cleanup batch runs; the crash lands mid-cleanup.
	if done, err := d.Step(); err != nil || done {
		t.Fatalf("cleanup step: done=%v err=%v", done, err)
	}
	imgs := captureAll(s, pmem.DropAll)
	s.Close()

	if !PlacementRecoveryPending(imgs[len(imgs)-1]) {
		t.Fatal("captured coordinator image shows no migration journal")
	}
	rs := reopenImages(t, imgs, testOpts(0))
	defer rs.Close()
	if got := rs.Placement(); got.Migration != nil {
		t.Fatalf("journal not resolved at reopen: %+v", got.Migration)
	}
	if rs.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", rs.Len(), len(want))
	}
	checkAllPresent(t, rs, want, "after cutover-crash recovery")
	checkOwnership(t, rs, "after cutover-crash recovery")
	// Forward means dst kept its slots: shard 2 must own some and hold keys.
	if len(rs.OwnedSlots(2)) == 0 {
		t.Fatal("destination lost its slots — recovery rolled the cutover back")
	}
}

// Stop before cutover aborts: the source keeps everything, the fresh
// destination shard stays empty (and reusable by a later split).
func TestStopAbortsBeforeCutover(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := loadKeys(t, s, 80, "abort")

	d := migrate.New(s, migrate.Options{BatchKeys: 8})
	if _, err := d.Begin(0, -1); err != nil {
		t.Fatal(err)
	}
	if done, err := d.Step(); err != nil || done {
		t.Fatalf("first step: done=%v err=%v", done, err)
	}
	d.Stop()
	if _, err := d.Step(); !errors.Is(err, migrate.ErrStopped) {
		t.Fatalf("stopped step err = %v, want ErrStopped", err)
	}
	if got := s.Placement(); got.Migration != nil {
		t.Fatalf("journal survives abort: %+v", got.Migration)
	}
	checkAllPresent(t, s, want, "after abort")
	checkOwnership(t, s, "after abort")
	if len(s.OwnedSlots(2)) != 0 {
		t.Fatal("aborted migration left the destination owning slots")
	}
}

// Reads must stay consistent throughout every phase: a reader hammering
// the moving keys during a split never sees a missing key or a stale
// value for a key it just wrote.
func TestReadsDuringSplitNeverMiss(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := loadKeys(t, s, 150, "read")

	d := migrate.New(s, migrate.Options{BatchKeys: 4})
	if _, err := d.Begin(0, -1); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("read-%04d", (i+r*37)%150)
				got, err := s.Get([]byte(k))
				if err != nil {
					t.Errorf("Get(%s) during split: %v", k, err)
					return
				}
				if !bytes.Equal(got, []byte(want[k])) {
					t.Errorf("Get(%s) = %q, want %q", k, got, want[k])
					return
				}
				i++
			}
		}(r)
	}
	if err := d.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	checkOwnership(t, s, "after read-hammered split")
}

// AddShard is refused while a migration is journaled, and a second Begin
// is refused while one is active.
func TestMigrationExclusion(t *testing.T) {
	s, err := Open(testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	loadKeys(t, s, 40, "excl")
	d := migrate.New(s, migrate.Options{})
	if _, err := d.Begin(0, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddShard(); err == nil {
		t.Fatal("AddShard allowed during a migration")
	}
	if err := s.MigrationBegin(1, 0, s.OwnedSlots(1)[:1]); err == nil {
		t.Fatal("second MigrationBegin allowed")
	}
	if _, err := d.Begin(1, -1); !errors.Is(err, migrate.ErrBusy) {
		t.Fatalf("second driver Begin err = %v, want ErrBusy", err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	checkOwnership(t, s, "after exclusion test")
}
