// Shard quarantine: degraded-mode operation under media faults.
//
// A shard whose device trips uncorrectable media faults (pmem.ErrMediaFault)
// — at Reopen, because recovery found torn or rotted state, or mid-operation
// — is QUARANTINED rather than taking the whole store down: its keys answer
// with the typed *UnavailError while every other shard keeps serving, and
// the Scrub admin path re-formats the partition and readmits it. Transient
// faults get a bounded retry with backoff before quarantine triggers.
//
// The invariant the quarantine path preserves is the repo-wide media-fault
// contract: an acknowledged write is either served correctly or reported
// lost with a typed error — never silently served wrong. Quarantine reports;
// scrub admits the loss explicitly (the partition restarts empty, except for
// any in-doubt cross-shard batch the coordinator log can roll forward).
package shard

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// ErrShardUnavailable is the sentinel every *UnavailError unwraps to.
var ErrShardUnavailable = errors.New("shard: shard unavailable")

// UnavailError reports an operation refused because its shard is
// quarantined. The Error string is the wire-level reply romulusd sends
// ("UNAVAIL shard=N: reason"), so servers can pass it through verbatim.
type UnavailError struct {
	Shard  int
	Reason string
}

func (e *UnavailError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("UNAVAIL shard=%d", e.Shard)
	}
	return fmt.Sprintf("UNAVAIL shard=%d: %s", e.Shard, e.Reason)
}

func (e *UnavailError) Unwrap() error { return ErrShardUnavailable }

// unavail builds the typed refusal for shard i with its recorded reason.
func (s *Store) unavail(i int) *UnavailError {
	p := s.parts()[i]
	p.mu.RLock()
	r := p.reason
	p.mu.RUnlock()
	return &UnavailError{Shard: i, Reason: r}
}

// quarantine marks shard i FAULTED (idempotently) with cause as the reason.
func (s *Store) quarantine(i int, cause error) {
	p := s.parts()[i]
	p.mu.Lock()
	if !p.faulted.Load() {
		p.reason = cause.Error()
		p.faulted.Store(true)
		s.quarantineN.Inc()
	}
	p.mu.Unlock()
}

// onShard runs op against shard i under the shard's read lock, translating
// media faults into quarantine: transient faults are retried up to
// Options.FaultRetries times (with FaultRetryBackoff doubling per attempt),
// and a fault that survives the retries quarantines the shard (when
// Options.QuarantineFaults) and returns the typed *UnavailError.
func (s *Store) onShard(i int, op func(p *shardPart) error) error {
	p := s.parts()[i]
	for attempt := 0; ; attempt++ {
		if p.faulted.Load() {
			return s.unavail(i)
		}
		p.mu.RLock()
		if p.faulted.Load() || p.eng == nil {
			p.mu.RUnlock()
			return s.unavail(i)
		}
		err := op(p)
		p.mu.RUnlock()
		if err == nil || !errors.Is(err, pmem.ErrMediaFault) {
			return err
		}
		s.faultMedia.Inc()
		if attempt < s.opts.FaultRetries {
			s.faultRetry.Inc()
			if d := s.opts.FaultRetryBackoff; d > 0 {
				time.Sleep(d << attempt)
			}
			continue
		}
		if s.opts.QuarantineFaults {
			s.quarantine(i, err)
			return s.unavail(i)
		}
		return err
	}
}

// quarantinedOnOpen reports whether a shard-open failure is media damage a
// degraded reopen should quarantine (vs a config error that must fail open).
func quarantinedOnOpen(err error) bool {
	return errors.Is(err, pmem.ErrMediaFault) ||
		errors.Is(err, ptm.ErrCorruptHeader) ||
		errors.Is(err, ptm.ErrCorruptLog) ||
		errors.Is(err, ptm.ErrCorruptPayload)
}

// Quarantined returns the indices of currently quarantined shards.
func (s *Store) Quarantined() []int {
	var out []int
	for i, p := range s.parts() {
		if p.faulted.Load() {
			out = append(out, i)
		}
	}
	return out
}

// QuarantineReason returns the recorded cause for a quarantined shard, or
// "" when the shard is healthy.
func (s *Store) QuarantineReason(i int) string {
	p := s.parts()[i]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.reason
}

// Scrub re-formats a quarantined shard on a fresh device and readmits it:
// the partition restarts empty (the media loss is admitted, not hidden), and
// any in-doubt cross-shard batch still prepared on the coordinator log is
// rolled forward onto the fresh shard — so a cross-shard batch that was
// acknowledged before the fault is restored rather than lost. Returns an
// error if the shard is not quarantined, if the rebuild fails, or if the
// coordinator resolution fails (the shard is readmitted either way).
func (s *Store) Scrub(i int) error {
	parts := s.parts()
	if i < 0 || i >= len(parts) {
		return fmt.Errorf("shard: scrub: no shard %d", i)
	}
	p := parts[i]
	if !p.faulted.Load() {
		return fmt.Errorf("shard: scrub: shard %d is not quarantined", i)
	}
	eng, err := core.New(s.opts.RegionSize, s.engineConfig())
	if err != nil {
		return fmt.Errorf("shard: scrub %d: %w", i, err)
	}
	if err := eng.Update(func(tx ptm.Tx) error {
		_, err := pstruct.NewByteMap(tx, 0, s.opts.InitialBuckets)
		return err
	}); err != nil {
		return fmt.Errorf("shard: scrub %d: initializing map: %w", i, err)
	}
	s.amu.Lock()
	hadAud := s.auds[i] != nil
	s.amu.Unlock()
	var aud *audit.Auditor
	if hadAud {
		aud = audit.New(eng.Device(), audit.Options{})
		aud.Attach()
		eng.SetAuditor(aud)
	}
	// A fresh recorder on the fresh device; the quarantined device's ring
	// (if any) goes with it — its flight data described lost media.
	scrubbed := &shardPart{eng: eng, db: kvstore.Attach(eng), dev: eng.Device()}
	s.amu.Lock()
	err = s.attachBlackbox(i, scrubbed) // writes s.flight[i]
	s.amu.Unlock()
	if err != nil {
		return fmt.Errorf("shard: scrub %d: %w", i, err)
	}
	p.mu.Lock()
	p.eng, p.db, p.dev, p.bb = scrubbed.eng, scrubbed.db, scrubbed.dev, scrubbed.bb
	p.reason = ""
	p.faulted.Store(false)
	p.mu.Unlock()
	// The old engine (if any) is abandoned, not Closed: Close would report
	// auditor state for a partition whose loss was just admitted.
	if aud != nil {
		s.amu.Lock()
		s.auds[i] = aud
		s.amu.Unlock()
	}
	s.faultScrub.Inc()
	return s.coord.resolve(s)
}
