// Package shard implements a hash-partitioned persistent key-value store:
// N independent shards, each running its own pmem.Device, Romulus engine
// (rom/romlog/romlr selectable) with the flat-combining batched commit path,
// and RomulusDB map, behind one Store API.
//
// Keys hash to a fixed set of placement slots, and a durable placement map
// (persisted at the coordinator device's tail) assigns each slot to a shard
// — see placement.go. A fresh store's identity placement reproduces plain
// hash-mod-N routing exactly; online shard splits (internal/migrate) then
// move slots between shards without stopping reads or writes. Lookups read
// the slot table through a Left-Right construct, so routing is wait-free
// even while a migration republishes it.
//
// Single-key operations route to exactly one shard and keep the
// single-store fast path: they enter that shard's flat combiner and share
// its batched ≤4-fence durability rounds with concurrent writers of the
// same shard, while writers of different shards commit fully in parallel.
//
// Multi-key batches that span shards commit through a durable two-phase
// record on a small coordinator log device (see coord.go and
// docs/SHARDING.md): prepare (the batch's operations become durable on the
// coordinator) → per-shard applies (each a durable shard transaction that
// also advances the shard's applied-batch watermark) → done. Crash recovery
// replays prepared-but-unfinished batches shard by shard (idempotently, via
// the watermark) and rolls back records whose prepare never became durable,
// so cross-shard batches are all-or-nothing across any crash.
//
// Consistency model: each shard is durably linearizable on its own keys
// (the Romulus guarantee); a cross-shard batch is atomic with respect to
// durability and crashes, but is not isolated from concurrent readers —
// a reader racing the apply phase may observe one shard's slice before
// another's. Batch operations apply in queue order per key (a key always
// routes to one shard), so batches inherit kvstore's last-op-wins rule.
package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/blackbox"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// appliedRoot is the root slot holding each shard's applied-batch watermark
// cell: an 8-byte persistent cell recording the highest cross-shard batch id
// the shard has durably applied. kvstore owns root 0 (the map); the cell is
// allocated lazily by the first cross-shard apply. Because the cell is
// updated in the SAME transaction as the batch's operations, "watermark ≥ id"
// is exactly "this shard durably holds batch id", which is what makes
// recovery replay idempotent.
const appliedRoot = 1

// ErrNotFound aliases kvstore.ErrNotFound for callers of Get.
var ErrNotFound = kvstore.ErrNotFound

// Options configure Open and Reopen.
type Options struct {
	// Shards is the number of partitions created fresh (default 4). Reopen
	// derives the count from the device set, and AddShard can grow it at
	// runtime; the durable placement map keeps routing consistent across
	// restarts either way.
	Shards int
	// SlotsPerShard sets the placement granularity for a freshly created
	// store: the slot count is Shards × SlotsPerShard, fixed for the
	// store's lifetime (default migrate.DefaultSlotsPerShard). More slots
	// mean finer split boundaries at slightly larger placement records.
	SlotsPerShard int
	// RegionSize is the persistent heap size per twin copy per shard
	// (default 4 MiB).
	RegionSize int
	// CoordSize is the coordinator log device size (default 256 KiB, floor
	// 4× the placement record reserve). It bounds the encoded size of one
	// cross-shard batch; the placement map lives in the device's tail.
	CoordSize int
	// Variant selects the Romulus engine for every shard (default RomLog).
	Variant core.Variant
	// Model is the persistence model for freshly created devices.
	Model pmem.Model
	// Dir, when non-empty, backs the store with image files (shard-NN.img
	// plus coord.img): Open loads them if present and Close writes them
	// back. Empty keeps the store in memory (still crash-consistent within
	// the process).
	Dir string
	// InitialBuckets presizes each shard's hash map (0 = default).
	InitialBuckets int
	// Metrics, when non-nil, receives the store's observability surface:
	// shard_* routing counters, per-shard fence/batch gauges, and xshard_*
	// two-phase-commit counters (see docs/OBSERVABILITY.md). When nil the
	// store keeps a private registry so counters still work.
	Metrics *obs.Registry
	// Audit, when true, creates and attaches a durability auditor to every
	// device (each shard and the coordinator); violations are counted and
	// retrievable via Auditors/ViolationCount.
	Audit bool
	// Auditors, when non-nil, supplies externally managed auditors instead
	// (crash harnesses compose them with schedulers): one per shard plus the
	// coordinator's LAST, so len(Auditors) == Shards+1. Entries may be nil.
	// Takes precedence over Audit.
	Auditors []ptm.Auditor
	// QuarantineFaults enables degraded-mode operation: a shard whose device
	// trips an uncorrectable media fault (pmem.ErrMediaFault) at Reopen or
	// mid-operation is quarantined — its keys answer with the typed
	// *UnavailError while healthy shards keep serving — instead of failing
	// the whole store. Scrub re-formats and readmits a quarantined shard.
	QuarantineFaults bool
	// FaultRetries bounds per-operation retries on a media fault before the
	// fault is treated as permanent (default 1 — enough for the device's
	// transient faults, which self-clear after one trip). Negative disables
	// retries.
	FaultRetries int
	// FaultRetryBackoff is the sleep before the first retry, doubling per
	// attempt (default 0: retry immediately).
	FaultRetryBackoff time.Duration
	// Blackbox, when true, reserves a small tail of each shard's device
	// (blackbox.DefaultSize) for a crash-surviving flight recorder: the
	// group committer records batch starts and durable points there, and
	// Reopen replays whatever survived into FlightReports before appending
	// its own recovery record. Devices created without the reserve reopen
	// fine with Blackbox on — they just have no tail, so no recorder.
	Blackbox bool
}

func (o *Options) applyDefaults() {
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.RegionSize == 0 {
		o.RegionSize = 4 << 20
	}
	if o.CoordSize == 0 {
		o.CoordSize = 256 << 10
	}
	if o.CoordSize < 4*placementReserve {
		o.CoordSize = 4 * placementReserve
	}
	if o.FaultRetries == 0 {
		o.FaultRetries = 1
	} else if o.FaultRetries < 0 {
		o.FaultRetries = 0
	}
}

// shardPart is one partition: a device, its engine, and the RomulusDB map.
// A quarantined shard has faulted set; after a Reopen that quarantined the
// shard (recovery refused its image), eng and db are additionally nil while
// dev still holds the damaged device for forensics. mu guards the eng/db/dev
// triple against the Scrub swap: operations hold it for read, Scrub for
// write. reason is guarded by mu.
type shardPart struct {
	eng *core.Engine
	db  *kvstore.DB
	dev *pmem.Device
	bb  *blackbox.Recorder // reserved-tail flight recorder (nil when off)

	mu      sync.RWMutex
	faulted atomic.Bool
	reason  string

	// wmu is the raw-device writers' mutex. pmem.Device's mutation path is
	// unsynchronized (single-mutator by design); flight-recorder appends run
	// on the shard's committer goroutine while cross-shard applies
	// (applyPrepared) run engine updates on the coordinator caller's
	// goroutine against the same device, so both take wmu. The engine's own
	// update-vs-update serialization stays the flat combiner's job.
	wmu sync.Mutex
}

// appliedID reads the shard's applied-batch watermark (0 before the first
// cross-shard apply, and 0 for a quarantined shard with no engine).
func (p *shardPart) appliedID() (uint64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.eng == nil {
		return 0, nil
	}
	var id uint64
	err := p.eng.Read(func(tx ptm.Tx) error {
		if c := tx.Root(appliedRoot); !c.IsNil() {
			id = tx.Load64(c)
		}
		return nil
	})
	return id, err
}

// applyPrepared applies the shard's slice of prepared batch id in ONE
// durable transaction together with the watermark advance, making the apply
// atomic and recovery-idempotent: after a crash, "watermark ≥ id" decides
// replay per shard.
func (p *shardPart) applyPrepared(id uint64, b *kvstore.Batch) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.eng == nil {
		return fmt.Errorf("shard quarantined: %w", ErrShardUnavailable)
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	return p.eng.Update(func(tx ptm.Tx) error {
		if err := p.db.Apply(tx, b); err != nil {
			return err
		}
		cell := tx.Root(appliedRoot)
		if cell.IsNil() {
			var err error
			cell, err = tx.Alloc(8)
			if err != nil {
				return err
			}
			tx.SetRoot(appliedRoot, cell)
		}
		tx.Store64(cell, id)
		return nil
	})
}

// Store is a sharded persistent KV store.
type Store struct {
	opts Options
	// partsv holds the shard slice copy-on-write (AddShard appends by
	// publishing a longer copy), so readers index it without locks.
	partsv atomic.Pointer[[]*shardPart]
	coord  *coordinator
	reg    *obs.Registry

	// amu guards auds and flight against AddShard/Scrub appends.
	amu  sync.Mutex
	auds []*audit.Auditor // non-nil entries only when Options.Audit built them
	// flight holds the per-shard flight-recorder reports replayed at the
	// last Open/Reopen (nil entries: Blackbox off, no reserved tail, or the
	// shard was quarantined at open).
	flight []*blackbox.Report

	// Placement routing + migration state (see placement.go). migMu is the
	// migration epoch lock: writes hold it for read across their
	// route-then-commit span, migration state transitions take it for
	// write. placement and mig are guarded by it; router and numSlots are
	// set once at open.
	migMu     sync.RWMutex
	placement *migrate.Placement
	mig       *migration
	router    *router
	numSlots  int

	routeGet, routePut, routeDel *obs.Counter
	batchSingle, batchX          *obs.Counter

	faultMedia, faultRetry, faultScrub, quarantineN *obs.Counter

	placementPublish                  *obs.Counter
	migBegun, migAborts               *obs.Counter
	migCutovers                       *obs.Counter
	migCopiedKeys, migCopiedBytes     *obs.Counter
	migDirtyKeys, migCleanedKeys      *obs.Counter
	migRecoverAbort, migRecoverFinish *obs.Counter
}

// parts returns the current shard slice (never nil after open; treat as
// immutable).
func (s *Store) parts() []*shardPart { return *s.partsv.Load() }

func (s *Store) setParts(ps []*shardPart) { s.partsv.Store(&ps) }

// Open creates a fresh store, or reloads one from Options.Dir when image
// files are present.
func Open(opts Options) (*Store, error) {
	opts.applyDefaults()
	if opts.Dir != "" {
		if _, err := os.Stat(coordPath(opts.Dir)); err == nil {
			return openDir(opts)
		}
	}
	s := newStore(opts)
	exts := s.externalAuditors()
	parts := make([]*shardPart, 0, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		eng, err := core.New(opts.RegionSize, s.engineConfig())
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		p := &shardPart{eng: eng, db: kvstore.Attach(eng), dev: eng.Device()}
		if err := eng.Update(func(tx ptm.Tx) error {
			_, err := pstruct.NewByteMap(tx, 0, opts.InitialBuckets)
			return err
		}); err != nil {
			return nil, fmt.Errorf("shard %d: initializing map: %w", i, err)
		}
		if err := s.attachBlackbox(i, p); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		parts = append(parts, p)
	}
	s.setParts(parts)
	coordDev := pmem.New(opts.CoordSize, opts.Model)
	// Wire auditing before the coordinator formats so its protocol is
	// audited from the first store (shard formats above ran unaudited, as
	// fresh-device formats do throughout the repo's harnesses).
	s.wireAudit(exts, coordDev)
	coord, err := openCoordinator(coordDev, s, s.coordAuditor(exts))
	if err != nil {
		return nil, err
	}
	s.coord = coord
	if err := s.initPlacement(); err != nil {
		return nil, err
	}
	s.wireMetrics()
	return s, nil
}

// Reopen attaches a store to existing devices — one per shard plus the
// coordinator device LAST (the Devices order) — running each shard's crash
// recovery, the coordinator's in-doubt batch resolution, and then the
// placement map's migration-journal resolution (see placement.go). Crash
// harnesses drive this with devices built from captured images.
func Reopen(devs []*pmem.Device, opts Options) (*Store, error) {
	if len(devs) < 2 {
		return nil, fmt.Errorf("shard: Reopen needs at least one shard device plus the coordinator, got %d devices", len(devs))
	}
	opts.Shards = len(devs) - 1
	opts.applyDefaults()
	s := newStore(opts)
	exts := s.externalAuditors()
	if exts == nil && opts.Audit {
		// Internal auditors must attach before recovery runs on any device.
		s.wireAudit(nil, devs[len(devs)-1])
		for i, d := range devs[:len(devs)-1] {
			a := audit.New(d, audit.Options{})
			a.Attach()
			s.auds[i] = a
		}
		exts = make([]ptm.Auditor, len(devs))
		for i, a := range s.auds {
			if a != nil {
				exts[i] = a
			}
		}
	}
	parts := make([]*shardPart, 0, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		var aud ptm.Auditor
		if exts != nil && exts[i] != nil {
			aud = exts[i]
		}
		cfg := s.engineConfig()
		cfg.Audit = aud
		eng, err := core.Open(devs[i], cfg)
		if err != nil {
			if opts.QuarantineFaults && quarantinedOnOpen(err) {
				// Degraded reopen: this shard's image is torn, rotted, or
				// unreadable. Quarantine it (keys answer UNAVAIL, Scrub can
				// readmit) instead of refusing to serve the healthy shards.
				p := &shardPart{dev: devs[i]}
				p.reason = fmt.Sprintf("recovery failed: %v", err)
				p.faulted.Store(true)
				parts = append(parts, p)
				s.quarantineN.Inc()
				continue
			}
			return nil, fmt.Errorf("shard %d: reopening: %w", i, err)
		}
		p := &shardPart{eng: eng, db: kvstore.Attach(eng), dev: devs[i]}
		if err := s.attachBlackbox(i, p); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if p.bb != nil {
			// Stamp the successful recovery after replay, so the report the
			// caller reads describes the pre-crash run, not this reopen.
			p.bb.Recovery()
		}
		parts = append(parts, p)
	}
	s.setParts(parts)
	coord, err := openCoordinator(devs[len(devs)-1], s, s.coordAuditor(exts))
	if err != nil {
		return nil, fmt.Errorf("shard: reopening coordinator: %w", err)
	}
	s.coord = coord
	if err := s.initPlacement(); err != nil {
		return nil, err
	}
	s.wireMetrics()
	return s, nil
}

// openDir reloads a store persisted by Close into Options.Dir. The shard
// count comes from the image files present (an online split may have grown
// the store past the count it was created with).
func openDir(opts Options) (*Store, error) {
	var devs []*pmem.Device
	for i := 0; ; i++ {
		path := shardPath(opts.Dir, i)
		if _, err := os.Stat(path); err != nil {
			break
		}
		d, err := pmem.LoadFile(path, opts.Model)
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", i, err)
		}
		devs = append(devs, d)
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("shard: %s holds a coordinator image but no shard images", opts.Dir)
	}
	cd, err := pmem.LoadFile(coordPath(opts.Dir), opts.Model)
	if err != nil {
		return nil, fmt.Errorf("shard: loading coordinator: %w", err)
	}
	devs = append(devs, cd)
	st, err := Reopen(devs, opts)
	if err != nil {
		return nil, err
	}
	st.opts.Dir = opts.Dir
	return st, nil
}

func newStore(opts Options) *Store {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Store{
		opts:        opts,
		reg:         reg,
		auds:        make([]*audit.Auditor, opts.Shards+1),
		flight:      make([]*blackbox.Report, opts.Shards),
		routeGet:    reg.Counter("shard_route_get_total"),
		routePut:    reg.Counter("shard_route_put_total"),
		routeDel:    reg.Counter("shard_route_delete_total"),
		batchSingle: reg.Counter("shard_batch_single_total"),
		batchX:      reg.Counter("shard_batch_xshard_total"),
		faultMedia:  reg.Counter("fault_media_total"),
		faultRetry:  reg.Counter("fault_retry_total"),
		faultScrub:  reg.Counter("fault_scrub_total"),
		quarantineN: reg.Counter("shard_quarantine_total"),

		placementPublish: reg.Counter("placement_publish_total"),
		migBegun:         reg.Counter("shard_migrate_total"),
		migAborts:        reg.Counter("shard_migrate_abort_total"),
		migCutovers:      reg.Counter("shard_migrate_cutover_total"),
		migCopiedKeys:    reg.Counter("shard_migrate_copied_keys_total"),
		migCopiedBytes:   reg.Counter("shard_migrate_copied_bytes_total"),
		migDirtyKeys:     reg.Counter("shard_migrate_dirty_keys_total"),
		migCleanedKeys:   reg.Counter("shard_migrate_cleanup_keys_total"),
		migRecoverAbort:  reg.Counter("shard_migrate_recover_abort_total"),
		migRecoverFinish: reg.Counter("shard_migrate_recover_finish_total"),
	}
	s.setParts(nil)
	return s
}

// engineConfig is the per-shard core.Config Open, Reopen and Scrub share.
// With Blackbox on, fresh devices reserve the flight-recorder tail; on
// reopen the header governs the layout, so the reserve is advisory there.
func (s *Store) engineConfig() core.Config {
	cfg := core.Config{Variant: s.opts.Variant, Model: s.opts.Model}
	if s.opts.Blackbox {
		cfg.ReserveTail = blackbox.DefaultSize
	}
	return cfg
}

// attachBlackbox opens the flight recorder in shard i's reserved tail,
// storing the replayed report in s.flight[i]. A device without a (large
// enough) reserved tail — created before Blackbox or with it off — is not
// an error: the shard simply records no flights.
func (s *Store) attachBlackbox(i int, p *shardPart) error {
	if !s.opts.Blackbox {
		return nil
	}
	off, size := p.eng.ReservedTail()
	if size < blackbox.MinSize {
		return nil
	}
	rec, rep, err := blackbox.Open(p.dev, off, size)
	if err != nil {
		return fmt.Errorf("flight recorder: %w", err)
	}
	rep.Shard = i
	p.bb = rec
	s.flight[i] = rep
	return nil
}

// externalAuditors validates and returns Options.Auditors (nil when unset).
func (s *Store) externalAuditors() []ptm.Auditor {
	if s.opts.Auditors == nil {
		return nil
	}
	if len(s.opts.Auditors) != s.opts.Shards+1 {
		panic(fmt.Sprintf("shard: %d auditors for %d shards+coordinator", len(s.opts.Auditors), s.opts.Shards))
	}
	return s.opts.Auditors
}

// wireAudit creates internal auditors (Options.Audit without Auditors) for
// every already-created shard engine and the coordinator device, attaching
// their hooks and engine-side markers.
func (s *Store) wireAudit(exts []ptm.Auditor, coordDev *pmem.Device) {
	if exts != nil || !s.opts.Audit {
		return
	}
	for i, p := range s.parts() {
		a := audit.New(p.eng.Device(), audit.Options{})
		a.Attach()
		p.eng.SetAuditor(a)
		s.auds[i] = a
	}
	ca := audit.New(coordDev, audit.Options{})
	ca.Attach()
	s.auds[s.opts.Shards] = ca
}

// coordAuditor resolves the coordinator's ptm.Auditor from external or
// internal wiring.
func (s *Store) coordAuditor(exts []ptm.Auditor) ptm.Auditor {
	if exts != nil {
		return exts[len(exts)-1]
	}
	if a := s.auds[s.opts.Shards]; a != nil {
		return a
	}
	return nil
}

// wireMetrics registers the lazy per-shard gauges.
func (s *Store) wireMetrics() {
	c := s.coord
	s.reg.Collect(func(set obs.Setter) {
		set("xshard_prepare_total", c.prepares.Load())
		set("xshard_commit_total", c.commits.Load())
		set("xshard_abort_total", c.aborts.Load())
		set("xshard_replay_total", c.replays.Load())
		set("xshard_rollback_total", c.rollbacks.Load())
		cds := c.dev.Stats()
		set("coord_fence_total", cds.Pfences+cds.Psyncs)
		set("coord_pwb_total", cds.Pwbs)

		s.migMu.RLock()
		pl, migrating := s.placement, uint64(0)
		if pl.Journal.Phase != migrate.PhaseNone {
			migrating = 1
		}
		set("placement_slots", uint64(pl.NumSlots))
		set("placement_version", pl.Version)
		set("placement_shards", uint64(pl.NumShards))
		s.migMu.RUnlock()
		set("shard_migrate_active", migrating)

		shards := s.parts()
		s.amu.Lock()
		flight := append([]*blackbox.Report(nil), s.flight...)
		s.amu.Unlock()
		quarantined := uint64(0)
		flights, replayed, reformatted := uint64(0), uint64(0), uint64(0)
		for i, p := range shards {
			pre := fmt.Sprintf("shard_%d_", i)
			faulted := uint64(0)
			if p.faulted.Load() {
				faulted, quarantined = 1, quarantined+1
			}
			set(pre+"faulted", faulted)
			p.mu.RLock()
			eng, dev, bb := p.eng, p.dev, p.bb
			p.mu.RUnlock()
			if bb != nil {
				flights += bb.Appended()
			}
			if i < len(flight) {
				if rep := flight[i]; rep != nil {
					replayed += uint64(len(rep.Records))
					if rep.Reformatted {
						reformatted++
					}
				}
			}
			ds := dev.Stats()
			set(pre+"fence_total", ds.Pfences+ds.Psyncs)
			set(pre+"pwb_total", ds.Pwbs)
			if eng == nil {
				continue
			}
			es := eng.Stats()
			set(pre+"update_tx_total", es.UpdateTxs)
			set(pre+"read_tx_total", es.ReadTxs)
			set(pre+"batch_total", es.Batches)
			set(pre+"batch_ops_total", es.BatchOps)
		}
		set("shard_quarantined", quarantined)
		set("shard_count", uint64(len(shards)))
		if s.opts.Blackbox {
			set("blackbox_record_total", flights)
			set("blackbox_replay_records", replayed)
			set("blackbox_reformatted_total", reformatted)
		}
	})
}

// NumShards returns the partition count.
func (s *Store) NumShards() int { return len(s.parts()) }

// sidecarMark opens a sidecar key: "\x00<class>\x00<base>". The leading NUL
// cannot appear in protocol-level keys (the wire layer rejects it), so
// sidecars never collide with user data.
const sidecarMark = '\x00'

// SidecarKey builds a key that stores metadata ABOUT base (a TTL cell, a
// type tag, ...) and is guaranteed to live on base's shard: ShardFor routes
// sidecar keys by their base key. class must not contain NUL.
func SidecarKey(class string, base []byte) []byte {
	out := make([]byte, 0, len(class)+len(base)+2)
	out = append(out, sidecarMark)
	out = append(out, class...)
	out = append(out, sidecarMark)
	return append(out, base...)
}

// RoutingKey returns the key hashing routes by: the base key for sidecar
// keys (see SidecarKey), the key itself otherwise. A malformed sidecar (a
// leading NUL with no closing NUL) routes by its full bytes.
func RoutingKey(key []byte) []byte {
	if len(key) > 0 && key[0] == sidecarMark {
		if i := indexByteFrom(key, 1, sidecarMark); i >= 0 {
			return key[i+1:]
		}
	}
	return key
}

// indexByteFrom is bytes.IndexByte over key[from:], returning an absolute
// index.
func indexByteFrom(key []byte, from int, c byte) int {
	for i := from; i < len(key); i++ {
		if key[i] == c {
			return i
		}
	}
	return -1
}

// ShardFor returns the index of the shard key routes to under the current
// placement: FNV-1a of the routing key picks a placement slot, the slot
// table names the shard. A fresh store's identity placement makes this
// exactly the classic hash-mod-N. Sidecar keys route with their base key,
// so a key and its metadata always commit in the same shard's transactions
// — and always migrate together (they share a slot).
//
// During a migration the answer can change between calls; operations that
// act on the result must either hold a WriteHandle (mutations) or use the
// routed read path (Get/ViewKey), both of which pin the route across the
// shard access.
func (s *Store) ShardFor(key []byte) int {
	return s.router.lookup(s.slotOf(key))
}

// Registry returns the store's metrics registry (Options.Metrics, or the
// private one created when none was given).
func (s *Store) Registry() *obs.Registry { return s.reg }

// Devices returns every device of the store: one per shard, then the
// coordinator log LAST. The order matches Reopen's expectation, so a crash
// harness can capture all images and reopen from them.
func (s *Store) Devices() []*pmem.Device {
	parts := s.parts()
	out := make([]*pmem.Device, 0, len(parts)+1)
	for _, p := range parts {
		p.mu.RLock()
		out = append(out, p.dev)
		p.mu.RUnlock()
	}
	return append(out, s.coord.dev)
}

// Engine exposes shard i's engine (statistics, crash testing).
func (s *Store) Engine(i int) *core.Engine { return s.parts()[i].eng }

// SetAuditors installs externally managed auditors — one per shard plus the
// coordinator's last, nil entries allowed — on the engines and coordinator.
// Call only at a quiescent point.
func (s *Store) SetAuditors(auds []ptm.Auditor) {
	parts := s.parts()
	if len(auds) != len(parts)+1 {
		panic(fmt.Sprintf("shard: SetAuditors got %d auditors for %d shards+coordinator", len(auds), len(parts)))
	}
	for i, p := range parts {
		if p.eng != nil {
			p.eng.SetAuditor(auds[i])
		}
	}
	s.coord.aud = auds[len(auds)-1]
}

// Auditors returns the store-created auditors (Options.Audit), one per
// shard plus the coordinator's last; entries are nil when auditing is off
// or externally managed.
func (s *Store) Auditors() []*audit.Auditor {
	s.amu.Lock()
	defer s.amu.Unlock()
	return append([]*audit.Auditor(nil), s.auds...)
}

// FlightReports returns the per-shard flight-recorder reports replayed at
// the last Open/Reopen. Entries are nil when Blackbox is off, the device
// has no reserved tail, or the shard was quarantined at open. The reports
// describe the run *before* this open — forensics, not live state.
func (s *Store) FlightReports() []*blackbox.Report {
	s.amu.Lock()
	defer s.amu.Unlock()
	return append([]*blackbox.Report(nil), s.flight...)
}

// HasFlightRecorder reports whether any shard is recording flights; the
// group committer checks once instead of per batch.
func (s *Store) HasFlightRecorder() bool {
	for _, p := range s.parts() {
		if p.bb != nil {
			return true
		}
	}
	return false
}

// RecordFlight durably appends one record to shard i's flight recorder (a
// no-op when the shard has none, or is quarantined). Seq and TsNs are
// recorder-assigned. The append takes the shard's raw-device writers'
// mutex, which serializes it against cross-shard applies; the group
// committer — the intended caller — is otherwise the shard's only engine
// writer, so nothing else mutates the device concurrently.
func (s *Store) RecordFlight(i int, rec blackbox.Record) {
	parts := s.parts()
	if i < 0 || i >= len(parts) {
		return
	}
	p := parts[i]
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.bb == nil || p.faulted.Load() {
		return
	}
	p.wmu.Lock()
	p.bb.Append(rec)
	p.wmu.Unlock()
}

// ViolationCount sums durability violations across the store-created
// auditors.
func (s *Store) ViolationCount() uint64 {
	s.amu.Lock()
	defer s.amu.Unlock()
	var n uint64
	for _, a := range s.auds {
		if a != nil {
			n += a.ViolationCount()
		}
	}
	return n
}

// Get returns the value for key, ErrNotFound, or — for a quarantined shard
// — the typed *UnavailError. The lookup holds the routing construct's read
// indicator across the shard access, so a concurrent migration cutover can
// never retire the shard's copy of the key mid-read (see placement.go).
func (s *Store) Get(key []byte) ([]byte, error) {
	s.routeGet.Inc()
	var out []byte
	err := s.routedRead(key, func(p *shardPart) error {
		v, err := p.db.Get(key)
		out = v
		return err
	})
	return out, err
}

// Put durably stores the pair on key's shard.
func (s *Store) Put(key, val []byte) error {
	s.routePut.Inc()
	h := s.BeginWrite(key)
	defer h.Done()
	return s.onShard(h.Route(key), func(p *shardPart) error {
		return p.db.Put(key, val)
	})
}

// Delete durably removes key from its shard (a no-op if absent).
func (s *Store) Delete(key []byte) error {
	s.routeDel.Inc()
	h := s.BeginWrite(key)
	defer h.Done()
	return s.onShard(h.Route(key), func(p *shardPart) error {
		return p.db.Delete(key)
	})
}

// Update runs fn as ONE durable transaction on shard i, handing it the
// shard's transaction handle and RomulusDB map. This is the hand-off the
// network layer's group commit uses: many connections' operations merge into
// a single shard transaction, paying one flat-combined durability round for
// the whole batch. When Update returns nil the transaction's psync has
// completed — there is no separate completion notification to wait for.
// Keys touched inside fn MUST route to shard i (tx/db belong to that shard
// alone); use ShardFor, and SidecarKey for metadata keys. Callers that can
// race a migration must bracket the route + Update with a WriteHandle (the
// group committer does); migration internals call Update directly.
// Quarantine and transient-fault retry semantics match the single-key
// operations.
func (s *Store) Update(i int, fn func(tx ptm.Tx, db *kvstore.DB) error) error {
	return s.onShard(i, func(p *shardPart) error {
		return p.eng.Update(func(tx ptm.Tx) error { return fn(tx, p.db) })
	})
}

// View runs fn as one read-only transaction on shard i (a consistent
// snapshot of that shard). The same key-routing rule as Update applies;
// for single-key reads that must stay consistent under migration, use
// ViewKey instead.
func (s *Store) View(i int, fn func(tx ptm.Tx, db *kvstore.DB) error) error {
	return s.onShard(i, func(p *shardPart) error {
		return p.eng.Read(func(tx ptm.Tx) error { return fn(tx, p.db) })
	})
}

// Len returns the number of live pairs across the healthy shards (a
// quarantined shard's pairs are unreadable and excluded). Shards are read
// one at a time (no cross-shard snapshot), so a concurrent cross-shard
// batch may be half-counted; quiesce writers for an exact count. During a
// migration's copy/cleanup phases, moved keys can be double-counted (they
// exist on both shards until cleanup finishes); quiesce the migration too
// for an exact count.
func (s *Store) Len() int {
	n := 0
	for _, p := range s.parts() {
		p.mu.RLock()
		if p.eng != nil && !p.faulted.Load() {
			n += p.db.Len()
		}
		p.mu.RUnlock()
	}
	return n
}

// Write applies the batch atomically and durably. Batches touching one
// shard commit on that shard's fast path (one flat-combined durable
// transaction); batches spanning shards commit through the coordinator's
// durable two-phase record and are all-or-nothing across any crash. The
// whole batch runs under one WriteHandle, so a migration cannot re-route
// any of its keys between grouping and commit.
func (s *Store) Write(b *kvstore.Batch) error {
	if b.Len() == 0 {
		return nil
	}
	keys := make([][]byte, 0, b.Len())
	b.Each(func(del bool, key, val []byte) { keys = append(keys, key) })
	h := s.BeginWrite(keys...)
	defer h.Done()
	groups := make([]*kvstore.Batch, len(s.parts()))
	var involved []int
	b.Each(func(del bool, key, val []byte) {
		i := h.Route(key)
		if groups[i] == nil {
			groups[i] = &kvstore.Batch{}
			involved = append(involved, i)
		}
		if del {
			groups[i].Delete(key)
		} else {
			groups[i].Put(key, val)
		}
	})
	if len(involved) == 1 {
		s.batchSingle.Inc()
		return s.onShard(involved[0], func(p *shardPart) error {
			return p.db.Write(groups[involved[0]])
		})
	}
	s.batchX.Inc()
	return s.coord.commit(s, groups)
}

// ShardStats is one shard's row of Stats.
type ShardStats struct {
	Pairs     int    `json:"pairs"`
	UpdateTxs uint64 `json:"update_txs"`
	ReadTxs   uint64 `json:"read_txs"`
	Batches   uint64 `json:"batches"`
	Fences    uint64 `json:"fences"`
	// Faulted marks a quarantined shard; Reason carries its recorded cause.
	Faulted bool   `json:"faulted,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// Stats is a store-level snapshot.
type Stats struct {
	Shards    int          `json:"shards"`
	Pairs     int          `json:"pairs"`
	PerShard  []ShardStats `json:"per_shard"`
	XPrepares uint64       `json:"xshard_prepares"`
	XCommits  uint64       `json:"xshard_commits"`
	XAborts   uint64       `json:"xshard_aborts"`
	XReplays  uint64       `json:"xshard_replays"`
	XRollback uint64       `json:"xshard_rollbacks"`
}

// Stats returns a snapshot of store statistics.
func (s *Store) Stats() Stats {
	parts := s.parts()
	st := Stats{
		Shards:    len(parts),
		XPrepares: s.coord.prepares.Load(),
		XCommits:  s.coord.commits.Load(),
		XAborts:   s.coord.aborts.Load(),
		XReplays:  s.coord.replays.Load(),
		XRollback: s.coord.rollbacks.Load(),
	}
	for _, p := range parts {
		p.mu.RLock()
		row := ShardStats{
			Faulted: p.faulted.Load(),
			Reason:  p.reason,
			Fences:  p.dev.Stats().Pfences + p.dev.Stats().Psyncs,
		}
		if p.eng != nil && !row.Faulted {
			es := p.eng.Stats()
			row.Pairs = p.db.Len()
			row.UpdateTxs = es.UpdateTxs
			row.ReadTxs = es.ReadTxs
			row.Batches = es.Batches
		}
		p.mu.RUnlock()
		st.Pairs += row.Pairs
		st.PerShard = append(st.PerShard, row)
	}
	return st
}

// Close shuts every shard engine and the coordinator down, first writing
// image files back to Options.Dir when configured. The store must be
// quiescent.
func (s *Store) Close() error {
	parts := s.parts()
	if s.opts.Dir != "" {
		if err := os.MkdirAll(s.opts.Dir, 0o755); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		for i, p := range parts {
			if err := p.dev.SaveFile(shardPath(s.opts.Dir, i)); err != nil {
				return err
			}
		}
		if err := s.coord.dev.SaveFile(coordPath(s.opts.Dir)); err != nil {
			return err
		}
	}
	var first error
	for _, p := range parts {
		if p.eng == nil {
			continue
		}
		if err := p.eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.coord.close()
	return first
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%02d.img", i))
}

func coordPath(dir string) string { return filepath.Join(dir, "coord.img") }
