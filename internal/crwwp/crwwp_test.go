package crwwp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hsync"
)

func TestReadersExcludeWriter(t *testing.T) {
	var l Lock
	var value, snapshotA, snapshotB int64
	var wg sync.WaitGroup
	var reg hsync.Registry
	stop := make(chan struct{})

	// Writer: serialized by construction (single goroutine).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			l.WriterArrive()
			// Non-atomic two-step update; readers must never see it torn.
			value++
			snapshotA = value
			snapshotB = value
			l.WriterDepart()
		}
		close(stop)
	}()

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid, err := reg.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer reg.Release(tid)
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.SharedLock(tid)
				a, b := snapshotA, snapshotB
				l.SharedUnlock(tid)
				if a != b {
					t.Errorf("torn read: %d != %d", a, b)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestWriterPreference(t *testing.T) {
	// With a continuous stream of readers, the writer must still get in.
	var l Lock
	var reg hsync.Registry
	var writerDone atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid, _ := reg.Acquire()
			defer reg.Release(tid)
			for !writerDone.Load() {
				l.SharedLock(tid)
				l.SharedUnlock(tid)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond) // let readers saturate
		l.WriterArrive()
		l.WriterDepart()
		writerDone.Store(true)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		writerDone.Store(true)
		t.Fatal("writer starved by readers")
	}
	wg.Wait()
}

func TestWriterWaitsForReader(t *testing.T) {
	var l Lock
	l.SharedLock(0)
	acquired := make(chan struct{})
	go func() {
		l.WriterArrive()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("writer entered while reader held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	l.SharedUnlock(0)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never entered after reader departed")
	}
	l.WriterDepart()
}

func TestReaderBlockedWhileWriterPresent(t *testing.T) {
	var l Lock
	l.WriterArrive()
	got := make(chan struct{})
	go func() {
		l.SharedLock(1)
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("reader entered while writer present")
	case <-time.After(20 * time.Millisecond):
	}
	l.WriterDepart()
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never entered after writer departed")
	}
	l.SharedUnlock(1)
}

func BenchmarkSharedLockUnlock(b *testing.B) {
	var l Lock
	var reg hsync.Registry
	b.RunParallel(func(pb *testing.PB) {
		tid, err := reg.Acquire()
		if err != nil {
			b.Error(err)
			return
		}
		defer reg.Release(tid)
		for pb.Next() {
			l.SharedLock(tid)
			l.SharedUnlock(tid)
		}
	})
}
