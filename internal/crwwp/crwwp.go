// Package crwwp implements the C-RW-WP reader-writer lock of Calciu et al.
// as used by Romulus (§5.2 of the paper): writer preference, with a
// distributed read indicator whose per-thread entries span two cache lines
// to avoid false sharing. Readers pay one uncontended store to arrive and
// one to depart; the writer raises a flag and waits for the indicator to
// drain.
//
// In Romulus the writer side is the flat-combining combiner, which already
// holds the combiner spin lock; this package therefore exposes the writer
// flag and reader drain separately (WriterArrive/WriterDepart) instead of
// embedding its own mutual-exclusion lock. All state is volatile: locks
// need no persistence for correct recovery.
package crwwp

import (
	"runtime"
	"sync/atomic"

	"repro/internal/hsync"
)

// Lock is a C-RW-WP reader-writer lock. The zero value is ready to use.
// Thread IDs come from a hsync.Registry shared with the flat-combining
// array.
type Lock struct {
	writerPresent atomic.Bool
	readers       hsync.ReadIndicator
}

// SharedLock acquires the lock in shared mode for thread tid. Writer
// preference: if a writer is present or arrives concurrently, the reader
// backs off and retries, so writers cannot be starved by a stream of
// readers.
func (l *Lock) SharedLock(tid int) {
	for {
		l.readers.Arrive(tid)
		if !l.writerPresent.Load() {
			return
		}
		l.readers.Depart(tid)
		for spins := 0; l.writerPresent.Load(); spins++ {
			if spins > 16 {
				runtime.Gosched()
			}
		}
	}
}

// SharedUnlock releases a shared acquisition by thread tid.
func (l *Lock) SharedUnlock(tid int) {
	l.readers.Depart(tid)
}

// WriterArrive announces exclusive intent and waits until all readers have
// departed. The caller must already hold whatever lock serializes writers
// (in Romulus, the flat-combining spin lock).
func (l *Lock) WriterArrive() {
	l.writerPresent.Store(true)
	l.readers.WaitEmpty()
}

// WriterDepart ends the exclusive section, letting blocked readers in.
func (l *Lock) WriterDepart() {
	l.writerPresent.Store(false)
}
