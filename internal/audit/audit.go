// Package audit implements an online durability auditor for pmem.Device.
//
// The auditor attaches to the device's hook slot (composing with the crash
// Scheduler via pmem.ChainHooks) and shadows the device's per-cache-line
// persistence state: every store dirties the lines it covers, every pwb
// moves a dirty line to the flush queue (or straight to persistent under
// ordered models), and every fence drains the queue. On top of that shadow
// it checks the property the paper's correctness argument rests on (§4.1
// PCSO): at every point where an engine claims durability — the psync that
// advances the commit marker, a crash, engine close — no line the claim
// covers may still be dirty or unfenced. It simultaneously counts the waste
// the performance argument (§6.2) rests on avoiding: pwbs of clean lines,
// re-queued lines, and fences issued with an empty flush queue.
//
// Attribution: engines bracket protocol sections with TxBegin/TxEnd, so the
// auditor can attribute every line's last write to an engine and transaction
// kind, and (sampled, via runtime.Callers) to the user call site — the raw
// material for crash forensics.
package audit

import (
	"runtime"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/pmem"
)

// Options configures an Auditor.
type Options struct {
	// SampleEvery takes a call-site sample on every n-th store operation;
	// 1 samples every store, 0 uses the default (64). Sampling keeps the
	// runtime.Callers cost off the common path while still attributing hot
	// lines, which are rewritten constantly.
	SampleEvery int
	// MaxViolations bounds the retained violation records (the total counter
	// is never capped); 0 uses the default (64).
	MaxViolations int
}

const (
	defaultSampleEvery   = 64
	defaultMaxViolations = 64
)

// lineState is the auditor's shadow of one cache line.
type lineState struct {
	dirty  bool   // stored since last pwb
	queued bool   // pwb'd but not yet fenced (unordered models only)
	seq    uint64 // global store sequence number of the last store
	engine string // engine that issued the last store
	kind   string // protocol section of the last store ("update", "recovery", "format")
	pcs    []uintptr
}

// Totals is a snapshot of the auditor's cumulative counters.
type Totals struct {
	Stores        uint64 // store operations observed
	PwbClean      uint64 // pwbs of lines that were neither dirty nor queued
	PwbRequeued   uint64 // pwbs of lines already in the flush queue and not re-dirtied
	StoreQueued   uint64 // stores landing on a line between its pwb and the fence
	FenceNoop     uint64 // fences issued with no pwb since the previous fence
	DurableChecks uint64 // DurablePoint invocations
	Violations    uint64 // durability violations detected (all kinds)
	DirtyLines    uint64 // lines currently dirty
	QueuedLines   uint64 // lines currently flush-queued
	Batches       uint64 // flat-combined batch commits reported (BatchCommitted)
	BatchOps      uint64 // operations those batches retired
	MaxBatch      uint64 // largest single reported batch
	MediaFaults   uint64 // media-read faults tripped (Fault hook)
}

// Auditor shadows one Device. All state is guarded by one mutex: the hook
// callbacks run on mutating goroutines (serialized by the engines' own
// protocol for any given line), and the mutex additionally makes control
// reads (Totals, Summary, metric collection) safe from harness goroutines.
type Auditor struct {
	dev     *pmem.Device
	hooks   *pmem.Hooks
	ordered bool // device model persists at pwb; no flush queue exists

	sampleEvery   int
	maxViolations int

	mu          sync.Mutex
	lines       []lineState
	dirtyCount  int
	queuedCount int
	queuedOrder []int // lines in the shadow flush queue, fence-drain order

	seq            uint64 // global store sequence number
	lastDurable    uint64 // seq at the most recent DurablePoint
	pwbsSinceFence uint64
	sinceSample    int

	curEngine, curKind string // current TxBegin attribution

	pwbClean      uint64
	pwbRequeued   uint64
	storeQueued   uint64
	fenceNoop     uint64
	durableChecks uint64
	batches       uint64
	batchOps      uint64
	maxBatch      uint64

	violationsTotal uint64
	violations      []Violation
	lastCrash       *Report

	mediaFaultsTotal uint64
	mediaFaults      []MediaFault // retained records, capped at maxViolations
}

// New builds an auditor shadowing dev. The caller must still install its
// hooks (Attach, or pmem.ChainHooks composition with other observers).
func New(dev *pmem.Device, opts Options) *Auditor {
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = defaultSampleEvery
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = defaultMaxViolations
	}
	a := &Auditor{
		dev:           dev,
		ordered:       dev.Model().OrderedPwb,
		sampleEvery:   opts.SampleEvery,
		maxViolations: opts.MaxViolations,
		lines:         make([]lineState, (dev.Size()+pmem.LineSize-1)/pmem.LineSize),
	}
	a.hooks = &pmem.Hooks{
		StoreAt: a.onStore,
		PwbAt:   a.onPwb,
		Fence:   a.onFence,
		Crash:   a.onCrash,
		Fault:   a.onFault,
	}
	return a
}

// Hooks returns the auditor's hook bundle for composition with other
// observers via pmem.ChainHooks. Chain the auditor before event consumers
// (e.g. the crash Scheduler) so its shadow is current when they act.
func (a *Auditor) Hooks() *pmem.Hooks { return a.hooks }

// Attach installs the auditor as the device's sole hook bundle.
func (a *Auditor) Attach() { a.dev.SetHooks(a.hooks) }

// Device returns the audited device.
func (a *Auditor) Device() *pmem.Device { return a.dev }

// onStore dirties every line the store covers and records attribution.
func (a *Auditor) onStore(off, n int) {
	a.mu.Lock()
	a.seq++
	var pcs []uintptr
	a.sinceSample++
	if a.sinceSample >= a.sampleEvery {
		a.sinceSample = 0
		buf := make([]uintptr, 16)
		// skip runtime.Callers, onStore and the device's store frame; deeper
		// pmem frames are filtered by name at resolution time.
		pcs = buf[:runtime.Callers(3, buf)]
	}
	last := (off + n - 1) / pmem.LineSize
	for line := off / pmem.LineSize; line <= last; line++ {
		st := &a.lines[line]
		if st.queued {
			// A store between a line's pwb and the fence: under unordered
			// models the queued (stale) copy persists at the fence while the
			// new bytes need their own pwb — a correctness hazard if the
			// writer assumed the pwb covered them (§4.1).
			a.storeQueued++
		}
		if !st.dirty {
			st.dirty = true
			a.dirtyCount++
		}
		st.seq = a.seq
		st.engine = a.curEngine
		st.kind = a.curKind
		if pcs != nil {
			st.pcs = pcs
		}
	}
	a.mu.Unlock()
}

// onPwb transitions the flushed line out of dirty, mirroring the device:
// ordered models persist immediately, unordered models queue until a fence.
func (a *Auditor) onPwb(off int) {
	a.mu.Lock()
	a.pwbsSinceFence++
	st := &a.lines[off/pmem.LineSize]
	switch {
	case st.dirty:
		st.dirty = false
		a.dirtyCount--
		if a.ordered {
			// Persisted at the pwb itself; no queue.
		} else if !st.queued {
			st.queued = true
			a.queuedCount++
			a.queuedOrder = append(a.queuedOrder, off/pmem.LineSize)
		}
		// dirty && queued (store-after-pwb) keeps its queue slot: the device
		// does not double-queue, and the pwb was necessary.
	case st.queued:
		a.pwbRequeued++
	default:
		a.pwbClean++
	}
	a.mu.Unlock()
}

// onFence drains the shadow flush queue; queued lines become persistent.
func (a *Auditor) onFence() {
	a.mu.Lock()
	if a.pwbsSinceFence == 0 {
		a.fenceNoop++
	}
	a.pwbsSinceFence = 0
	for _, line := range a.queuedOrder {
		st := &a.lines[line]
		if st.queued {
			st.queued = false
			a.queuedCount--
		}
	}
	a.queuedOrder = a.queuedOrder[:0]
	a.mu.Unlock()
}

// onCrash runs inside Device.Crash after the crash policy has been applied
// to the persisted image and before the volatile view is discarded: the one
// moment both views of the failure exist. It records the forensic report and
// resets the shadow, since the device comes back quiescent.
func (a *Auditor) onCrash() {
	a.mu.Lock()
	rep := a.buildReport("crash", a.dev.PersistedBytes(0, a.dev.Size()))
	a.lastCrash = rep
	for i := range a.lines {
		a.lines[i] = lineState{}
	}
	a.dirtyCount, a.queuedCount = 0, 0
	a.queuedOrder = a.queuedOrder[:0]
	a.lastDurable = 0
	a.pwbsSinceFence = 0
	a.mu.Unlock()
}

// onFault records a media-read fault trip: which line failed, and — from the
// shadow — which engine and protocol section last wrote it. This is the
// forensic link between "the device refused a read" and "whose data was on
// that line", used by fault campaigns to attribute degraded-mode behavior.
func (a *Auditor) onFault(off int) {
	a.mu.Lock()
	a.mediaFaultsTotal++
	if len(a.mediaFaults) < a.maxViolations {
		line := off / pmem.LineSize
		rec := MediaFault{Off: off, Line: line}
		if line < len(a.lines) {
			st := &a.lines[line]
			rec.Seq = st.seq
			rec.Engine = st.engine
			rec.TxKind = st.kind
			rec.Site = resolveSite(st.pcs)
		}
		a.mediaFaults = append(a.mediaFaults, rec)
	}
	a.mu.Unlock()
}

// TxBegin attributes subsequent stores to an engine protocol section.
// Part of the ptm.Auditor interface.
func (a *Auditor) TxBegin(engine, kind string) {
	a.mu.Lock()
	a.curEngine, a.curKind = engine, kind
	a.mu.Unlock()
}

// TxEnd closes the current attribution section.
func (a *Auditor) TxEnd() {
	a.mu.Lock()
	a.curEngine, a.curKind = "", ""
	a.mu.Unlock()
}

// BatchCommitted records that the durable point just checked covered a
// flat-combined batch of ops announced operations — one durability round
// shared by the whole batch. Implements ptm.BatchAuditor; engines without a
// batch commit path never call it.
func (a *Auditor) BatchCommitted(ops int) {
	a.mu.Lock()
	a.batches++
	a.batchOps += uint64(ops)
	if uint64(ops) > a.maxBatch {
		a.maxBatch = uint64(ops)
	}
	a.mu.Unlock()
}

// DurablePoint checks the PCSO claim an engine just made: everything stored
// so far is persistent, so no line may be dirty or still in the flush queue.
// Engines call it immediately after the psync that advances their commit
// marker (§4.1).
func (a *Auditor) DurablePoint(point string) {
	a.mu.Lock()
	a.durableChecks++
	a.lastDurable = a.seq
	if a.dirtyCount > 0 || a.queuedCount > 0 {
		for line := range a.lines {
			st := &a.lines[line]
			if st.dirty || st.queued {
				a.recordViolation(Violation{
					Kind:   "durable-point",
					Point:  point,
					Line:   line,
					Off:    line * pmem.LineSize,
					State:  stateName(st),
					Seq:    st.seq,
					Engine: st.engine,
					TxKind: st.kind,
					Site:   resolveSite(st.pcs),
				})
			}
		}
	}
	a.mu.Unlock()
}

// EngineClose checks the engine's final durability claim: any line still
// dirty or unfenced that a durable point already claimed persistent
// (seq <= lastDurable) has been lost. Lines written after the last durable
// point (e.g. Romulus's deliberately-unflushed IDL store, which recovery
// reconstructs) are exempt — nothing claimed them durable.
func (a *Auditor) EngineClose(engine string) {
	a.mu.Lock()
	for line := range a.lines {
		st := &a.lines[line]
		if (st.dirty || st.queued) && st.seq > 0 && st.seq <= a.lastDurable {
			a.recordViolation(Violation{
				Kind:   "close",
				Point:  engine,
				Line:   line,
				Off:    line * pmem.LineSize,
				State:  stateName(st),
				Seq:    st.seq,
				Engine: st.engine,
				TxKind: st.kind,
				Site:   resolveSite(st.pcs),
			})
		}
	}
	a.mu.Unlock()
}

// recordViolation appends v under a.mu, capping retained records.
func (a *Auditor) recordViolation(v Violation) {
	a.violationsTotal++
	if len(a.violations) < a.maxViolations {
		a.violations = append(a.violations, v)
	}
}

// Forensics diffs the device's volatile view against a crash image (e.g.
// from Scheduler.Image) and returns the structured report: every lost line
// with its last-writer attribution, flagging as violations those the engine
// had already claimed durable. Call at a point where no mutator is running,
// or from a hook on the mutating goroutine.
func (a *Auditor) Forensics(img []byte) *Report {
	a.mu.Lock()
	rep := a.buildReport("crash", img)
	a.mu.Unlock()
	return rep
}

// Summary returns the report without an image diff — current shadow state,
// waste counters, and retained violations. Safe while mutators run.
func (a *Auditor) Summary() *Report {
	a.mu.Lock()
	rep := a.buildReport("summary", nil)
	a.mu.Unlock()
	return rep
}

// LastCrashReport returns the forensic report captured by the most recent
// Device.Crash, or nil.
func (a *Auditor) LastCrashReport() *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastCrash
}

// buildReport assembles a Report under a.mu. A non-nil img is diffed line by
// line against the volatile view; durably-claimed lost lines become
// violations of kind "crash-loss".
func (a *Auditor) buildReport(point string, img []byte) *Report {
	rep := &Report{
		Point:          point,
		Lines:          len(a.lines),
		DirtyLines:     a.dirtyCount,
		QueuedLines:    a.queuedCount,
		LastDurableSeq: a.lastDurable,
		StoreSeq:       a.seq,
		Waste: Waste{
			PwbClean:    a.pwbClean,
			PwbRequeued: a.pwbRequeued,
			StoreQueued: a.storeQueued,
			FenceNoop:   a.fenceNoop,
		},
	}
	if img != nil {
		mem := a.dev.Bytes(0, a.dev.Size())
		n := len(img)
		if len(mem) < n {
			n = len(mem)
		}
		for line := 0; line*pmem.LineSize < n; line++ {
			lo := line * pmem.LineSize
			hi := lo + pmem.LineSize
			if hi > n {
				hi = n
			}
			if string(mem[lo:hi]) == string(img[lo:hi]) {
				continue
			}
			st := &a.lines[line]
			claimed := (st.dirty || st.queued) && st.seq > 0 && st.seq <= a.lastDurable
			rep.Lost = append(rep.Lost, LostLine{
				Line:           line,
				Off:            lo,
				State:          stateName(st),
				Seq:            st.seq,
				Engine:         st.engine,
				TxKind:         st.kind,
				Site:           resolveSite(st.pcs),
				DurablyClaimed: claimed,
			})
			if claimed {
				a.recordViolation(Violation{
					Kind:   "crash-loss",
					Point:  point,
					Line:   line,
					Off:    lo,
					State:  stateName(st),
					Seq:    st.seq,
					Engine: st.engine,
					TxKind: st.kind,
					Site:   resolveSite(st.pcs),
				})
			}
		}
	}
	rep.Violations = append([]Violation(nil), a.violations...)
	rep.ViolationsTotal = a.violationsTotal
	rep.MediaFaults = append([]MediaFault(nil), a.mediaFaults...)
	rep.MediaFaultsTotal = a.mediaFaultsTotal
	return rep
}

// Totals snapshots the cumulative counters.
func (a *Auditor) Totals() Totals {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Totals{
		Stores:        a.seq,
		PwbClean:      a.pwbClean,
		PwbRequeued:   a.pwbRequeued,
		StoreQueued:   a.storeQueued,
		FenceNoop:     a.fenceNoop,
		DurableChecks: a.durableChecks,
		Violations:    a.violationsTotal,
		DirtyLines:    uint64(a.dirtyCount),
		QueuedLines:   uint64(a.queuedCount),
		Batches:       a.batches,
		BatchOps:      a.batchOps,
		MaxBatch:      a.maxBatch,
		MediaFaults:   a.mediaFaultsTotal,
	}
}

// ViolationCount returns the total number of violations detected.
func (a *Auditor) ViolationCount() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.violationsTotal
}

// Violations returns a copy of the retained violation records.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// PublishMetrics registers a lazy collector exporting the auditor's counters
// as audit_* metrics in r; values are read at snapshot time.
func (a *Auditor) PublishMetrics(r *obs.Registry) {
	r.Collect(func(set obs.Setter) {
		t := a.Totals()
		set("audit_store_total", t.Stores)
		set("audit_pwb_clean_total", t.PwbClean)
		set("audit_pwb_requeued_total", t.PwbRequeued)
		set("audit_store_queued_total", t.StoreQueued)
		set("audit_fence_noop_total", t.FenceNoop)
		set("audit_durable_check_total", t.DurableChecks)
		set("audit_violation_total", t.Violations)
		set("audit_dirty_lines", t.DirtyLines)
		set("audit_queued_lines", t.QueuedLines)
		set("audit_batch_total", t.Batches)
		set("audit_batch_ops_total", t.BatchOps)
		set("audit_batch_max", t.MaxBatch)
		set("audit_media_fault_total", t.MediaFaults)
	})
}

// stateName renders a line's shadow state for reports.
func stateName(st *lineState) string {
	switch {
	case st.dirty && st.queued:
		return "dirty+queued"
	case st.dirty:
		return "dirty"
	case st.queued:
		return "queued"
	case st.seq == 0:
		return "untracked"
	default:
		return "clean"
	}
}

// resolveSite turns a sampled PC slice into a stable, path-free description
// of up to two user frames ("pkg.Func < pkg.Caller"). Frames inside the
// pmem device and the auditor itself are filtered; function names only (no
// file:line) keep forensic reports deterministic across toolchains.
func resolveSite(pcs []uintptr) string {
	if len(pcs) == 0 {
		return ""
	}
	frames := runtime.CallersFrames(pcs)
	var parts []string
	for {
		fr, more := frames.Next()
		fn := fr.Function
		if fn != "" &&
			!strings.Contains(fn, "internal/pmem.") &&
			!strings.Contains(fn, "internal/audit.(*Auditor)") {
			if i := strings.LastIndexByte(fn, '/'); i >= 0 {
				fn = fn[i+1:]
			}
			parts = append(parts, fn)
			if len(parts) == 2 {
				break
			}
		}
		if !more {
			break
		}
	}
	return strings.Join(parts, " < ")
}
