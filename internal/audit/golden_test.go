package audit

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pmem"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// The golden scenario uses named top-level helpers so the sampled call
// sites resolve to stable function names; with SampleEvery=1 every store
// is attributed and the whole report is deterministic.

// goldenCommitted runs a correctly fenced mini-commit: survives the crash.
func goldenCommitted(dev *pmem.Device, a *Auditor) {
	a.TxBegin("rom", "update")
	dev.Store64(0, 0x1111)
	dev.Pwb(0)
	dev.Pfence()
	a.DurablePoint("commit")
	a.TxEnd()
}

// goldenClaimed pwbs but never fences before claiming durability: the
// durable point flags it, and the crash loses it again.
func goldenClaimed(dev *pmem.Device, a *Auditor) {
	a.TxBegin("romlog", "update")
	dev.Store64(64, 0x2222)
	dev.Pwb(64)
	a.DurablePoint("commit")
	a.TxEnd()
}

// goldenInflight leaves a mid-transaction store unfenced: expected crash
// damage, no violation.
func goldenInflight(dev *pmem.Device, a *Auditor) {
	a.TxBegin("romlog", "update")
	dev.Store64(128, 0x3333)
}

// TestGoldenCrashReport pins the forensic report of a fixed scenario
// bit-for-bit. Run with -update to regenerate testdata/crash_report.json.
func TestGoldenCrashReport(t *testing.T) {
	dev := pmem.New(4096, pmem.ModelDRAM)
	a := New(dev, Options{SampleEvery: 1})
	a.Attach()

	goldenCommitted(dev, a)
	goldenClaimed(dev, a)
	goldenInflight(dev, a)
	dev.Crash(pmem.DropAll)

	rep := a.LastCrashReport()
	if rep == nil {
		t.Fatal("no crash report")
	}
	var got bytes.Buffer
	if err := rep.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "crash_report.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("crash report diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", got.Bytes(), want)
	}
}
