package audit

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is a structured durability report: the shadow state of the device
// at one point (a crash, a live summary), the lost lines if a crash image
// was diffed, the retained violations, and the waste counters. Field order
// and the absence of volatile detail (pointers, file paths, line numbers)
// make the JSON form deterministic for a deterministic workload.
type Report struct {
	// Point names the report trigger: "crash" or "summary".
	Point string `json:"point"`
	// Lines is the number of cache lines the device holds.
	Lines int `json:"lines"`
	// DirtyLines and QueuedLines count lines not yet persistent at the
	// report point.
	DirtyLines  int `json:"dirty_lines"`
	QueuedLines int `json:"queued_lines"`
	// LastDurableSeq is the store sequence number covered by the engine's
	// most recent durability claim; StoreSeq is the current sequence.
	LastDurableSeq uint64 `json:"last_durable_seq"`
	StoreSeq       uint64 `json:"store_seq"`
	// Lost lists lines whose volatile contents differ from the crash image,
	// attributed to their last writer. Nil for summary reports.
	Lost []LostLine `json:"lost,omitempty"`
	// Violations are the retained violation records (capped); the total is
	// never capped.
	Violations      []Violation `json:"violations,omitempty"`
	ViolationsTotal uint64      `json:"violations_total"`
	// MediaFaults are the retained media-read fault records (capped); the
	// total is never capped. A media fault is expected damage under fault
	// injection, not a protocol violation — the violation would be serving
	// the corrupted data as if it were good.
	MediaFaults      []MediaFault `json:"media_faults,omitempty"`
	MediaFaultsTotal uint64       `json:"media_faults_total"`
	Waste            Waste        `json:"waste"`
}

// MediaFault is one tripped media-read fault, attributed (from the shadow)
// to the engine and protocol section that last wrote the failed line.
type MediaFault struct {
	Off    int    `json:"off"`
	Line   int    `json:"line"`
	Seq    uint64 `json:"seq"`
	Engine string `json:"engine,omitempty"`
	TxKind string `json:"tx_kind,omitempty"`
	Site   string `json:"site,omitempty"`
}

// LostLine is one cache line whose contents a crash discarded.
type LostLine struct {
	Line   int    `json:"line"`
	Off    int    `json:"off"`
	State  string `json:"state"`
	Seq    uint64 `json:"seq"`
	Engine string `json:"engine,omitempty"`
	TxKind string `json:"tx_kind,omitempty"`
	Site   string `json:"site,omitempty"`
	// DurablyClaimed marks a line the engine had already claimed durable —
	// losing it is a protocol violation, not expected crash damage.
	DurablyClaimed bool `json:"durably_claimed"`
}

// Violation is one detected durability violation. Kind is "durable-point"
// (line dirty or unfenced when the engine claimed durability), "crash-loss"
// (durably-claimed line lost at a crash), or "close" (durably-claimed line
// still unflushed at engine close).
type Violation struct {
	Kind   string `json:"kind"`
	Point  string `json:"point"`
	Line   int    `json:"line"`
	Off    int    `json:"off"`
	State  string `json:"state"`
	Seq    uint64 `json:"seq"`
	Engine string `json:"engine,omitempty"`
	TxKind string `json:"tx_kind,omitempty"`
	Site   string `json:"site,omitempty"`
}

// Waste aggregates redundant persistence work (§6.2: flushes the protocol
// does not require).
type Waste struct {
	PwbClean    uint64 `json:"pwb_clean"`
	PwbRequeued uint64 `json:"pwb_requeued"`
	StoreQueued uint64 `json:"store_queued"`
	FenceNoop   uint64 `json:"fence_noop"`
}

// WriteJSON writes the report as indented, deterministic JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes a human-readable rendering of the report.
func (r *Report) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, "audit report (%s): %d lines, %d dirty, %d queued, store_seq %d, last_durable %d\n",
		r.Point, r.Lines, r.DirtyLines, r.QueuedLines, r.StoreSeq, r.LastDurableSeq)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "waste: pwb_clean %d, pwb_requeued %d, store_queued %d, fence_noop %d\n",
		r.Waste.PwbClean, r.Waste.PwbRequeued, r.Waste.StoreQueued, r.Waste.FenceNoop); err != nil {
		return err
	}
	for _, l := range r.Lost {
		tag := ""
		if l.DurablyClaimed {
			tag = "  [DURABLY CLAIMED]"
		}
		if _, err := fmt.Fprintf(w, "lost line %d @%#x state=%s seq=%d writer=%s/%s site=%q%s\n",
			l.Line, l.Off, l.State, l.Seq, l.Engine, l.TxKind, l.Site, tag); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "violations: %d total\n", r.ViolationsTotal); err != nil {
		return err
	}
	for _, v := range r.Violations {
		if _, err := fmt.Fprintf(w, "VIOLATION [%s] at %s: line %d @%#x state=%s seq=%d writer=%s/%s site=%q\n",
			v.Kind, v.Point, v.Line, v.Off, v.State, v.Seq, v.Engine, v.TxKind, v.Site); err != nil {
			return err
		}
	}
	if r.MediaFaultsTotal > 0 {
		if _, err := fmt.Fprintf(w, "media faults: %d total\n", r.MediaFaultsTotal); err != nil {
			return err
		}
		for _, m := range r.MediaFaults {
			if _, err := fmt.Fprintf(w, "media fault line %d @%#x seq=%d writer=%s/%s site=%q\n",
				m.Line, m.Off, m.Seq, m.Engine, m.TxKind, m.Site); err != nil {
				return err
			}
		}
	}
	return nil
}
