package audit

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/pmem"
)

func newAudited(t *testing.T, size int, model pmem.Model, opts Options) (*pmem.Device, *Auditor) {
	t.Helper()
	dev := pmem.New(size, model)
	a := New(dev, opts)
	a.Attach()
	return dev, a
}

// TestLineStateMachine walks one line through clean → dirty → queued →
// fenced and checks the shadow agrees at every step.
func TestLineStateMachine(t *testing.T) {
	dev, a := newAudited(t, 4096, pmem.ModelDRAM, Options{})

	dev.Store64(0, 1)
	if tot := a.Totals(); tot.DirtyLines != 1 || tot.QueuedLines != 0 {
		t.Fatalf("after store: %+v", tot)
	}
	dev.Pwb(0)
	if tot := a.Totals(); tot.DirtyLines != 0 || tot.QueuedLines != 1 {
		t.Fatalf("after pwb: %+v", tot)
	}
	dev.Pfence()
	if tot := a.Totals(); tot.DirtyLines != 0 || tot.QueuedLines != 0 {
		t.Fatalf("after fence: %+v", tot)
	}
	if tot := a.Totals(); tot.PwbClean != 0 || tot.PwbRequeued != 0 || tot.StoreQueued != 0 || tot.FenceNoop != 0 {
		t.Fatalf("clean protocol produced waste: %+v", tot)
	}
	a.DurablePoint("commit")
	if n := a.ViolationCount(); n != 0 {
		t.Fatalf("clean durable point flagged %d violations: %+v", n, a.Violations())
	}
}

// TestOrderedModelPersistsAtPwb: under an ordered-pwb model there is no
// flush queue; a pwb takes the line straight to persistent.
func TestOrderedModelPersistsAtPwb(t *testing.T) {
	m := pmem.ModelDRAM
	m.OrderedPwb = true
	dev, a := newAudited(t, 4096, m, Options{})
	dev.Store64(0, 1)
	dev.Pwb(0)
	if tot := a.Totals(); tot.DirtyLines != 0 || tot.QueuedLines != 0 {
		t.Fatalf("ordered pwb left line non-clean: %+v", tot)
	}
	a.DurablePoint("commit")
	if n := a.ViolationCount(); n != 0 {
		t.Fatalf("violations under ordered model: %d", n)
	}
}

// TestWasteCounters provokes each waste diagnostic exactly once.
func TestWasteCounters(t *testing.T) {
	dev, a := newAudited(t, 4096, pmem.ModelDRAM, Options{})

	// pwb of a clean line.
	dev.Pwb(0)
	// fence with an empty queue (nothing was actually pwb'd above — the
	// line was clean — but the fence still saw one pwb instruction, so
	// issue a second, truly empty fence next).
	dev.Pfence() // 1 pwb since last fence: not a noop
	dev.Pfence() // 0 pwbs since last fence: noop

	// store on a queued line (between pwb and fence).
	dev.Store64(64, 1)
	dev.Pwb(64)
	dev.Store64(64, 2) // queued, not yet fenced
	dev.Pwb(64)        // necessary pwb, not waste
	dev.Pfence()

	// pwb of a line already queued and not re-dirtied.
	dev.Store64(128, 1)
	dev.Pwb(128)
	dev.Pwb(128) // redundant: already queued
	dev.Pfence()

	tot := a.Totals()
	if tot.PwbClean != 1 {
		t.Errorf("PwbClean = %d, want 1", tot.PwbClean)
	}
	if tot.FenceNoop != 1 {
		t.Errorf("FenceNoop = %d, want 1", tot.FenceNoop)
	}
	if tot.StoreQueued != 1 {
		t.Errorf("StoreQueued = %d, want 1", tot.StoreQueued)
	}
	if tot.PwbRequeued != 1 {
		t.Errorf("PwbRequeued = %d, want 1", tot.PwbRequeued)
	}
	if n := a.ViolationCount(); n != 0 {
		t.Errorf("waste is not a violation, got %d", n)
	}
}

// brokenCommit models an engine that skips the pwb of one of two modified
// lines before claiming durability — the defect class the auditor exists to
// catch, proving the zero-violations check is not vacuous.
func brokenCommit(dev *pmem.Device, a *Auditor) {
	a.TxBegin("broken", "update")
	dev.Store64(0, 0xA)
	dev.Store64(64, 0xB)
	dev.Pwb(0)
	// BUG: no Pwb(64).
	dev.Pfence()
	a.DurablePoint("commit")
	a.TxEnd()
}

// TestBrokenEngineFlagged: the deliberately-broken fixture must produce a
// durable-point violation naming the unflushed line with attribution.
func TestBrokenEngineFlagged(t *testing.T) {
	dev, a := newAudited(t, 4096, pmem.ModelDRAM, Options{SampleEvery: 1})
	brokenCommit(dev, a)
	if n := a.ViolationCount(); n != 1 {
		t.Fatalf("ViolationCount = %d, want 1", n)
	}
	v := a.Violations()[0]
	if v.Kind != "durable-point" || v.Line != 1 || v.State != "dirty" {
		t.Fatalf("violation = %+v", v)
	}
	if v.Engine != "broken" || v.TxKind != "update" {
		t.Fatalf("attribution = %q/%q, want broken/update", v.Engine, v.TxKind)
	}
	if !strings.Contains(v.Site, "brokenCommit") {
		t.Fatalf("site = %q, want it to name brokenCommit", v.Site)
	}
}

// TestCrashForensics: a durably-claimed but unfenced line lost at a crash
// is attributed and flagged; a merely in-flight line is reported as expected
// damage, not a violation.
func TestCrashForensics(t *testing.T) {
	dev, a := newAudited(t, 4096, pmem.ModelDRAM, Options{SampleEvery: 1})

	// Line 0: properly committed; survives.
	a.TxBegin("rom", "update")
	dev.Store64(0, 1)
	dev.Pwb(0)
	dev.Pfence()
	a.DurablePoint("commit")
	a.TxEnd()

	// Line 1: pwb'd but never fenced when the engine claims durability —
	// flagged at the durable point, and lost again at the crash.
	a.TxBegin("rom", "update")
	dev.Store64(64, 2)
	dev.Pwb(64)
	a.DurablePoint("commit")
	a.TxEnd()

	// Line 2: mid-transaction store, no durability claim covers it.
	a.TxBegin("rom", "update")
	dev.Store64(128, 3)

	dev.Crash(pmem.DropAll)
	rep := a.LastCrashReport()
	if rep == nil {
		t.Fatal("no crash report")
	}
	var lost1, lost2 *LostLine
	for i := range rep.Lost {
		switch rep.Lost[i].Line {
		case 0:
			t.Fatalf("fenced line 0 reported lost: %+v", rep.Lost[i])
		case 1:
			lost1 = &rep.Lost[i]
		case 2:
			lost2 = &rep.Lost[i]
		}
	}
	if lost1 == nil || !lost1.DurablyClaimed || lost1.State != "queued" {
		t.Fatalf("line 1: %+v", lost1)
	}
	if lost2 == nil || lost2.DurablyClaimed || lost2.State != "dirty" {
		t.Fatalf("line 2: %+v", lost2)
	}
	if lost1.Engine != "rom" || lost1.TxKind != "update" {
		t.Fatalf("line 1 attribution: %+v", lost1)
	}
	// One violation from the durable point, one from the crash loss.
	if n := a.ViolationCount(); n != 2 {
		t.Fatalf("ViolationCount = %d, want 2 (%+v)", n, a.Violations())
	}
	kinds := map[string]bool{}
	for _, v := range a.Violations() {
		kinds[v.Kind] = true
	}
	if !kinds["durable-point"] || !kinds["crash-loss"] {
		t.Fatalf("violation kinds = %v", kinds)
	}
	// The crash reset the shadow: the device is quiescent again.
	if tot := a.Totals(); tot.DirtyLines != 0 || tot.QueuedLines != 0 {
		t.Fatalf("shadow not reset after crash: %+v", tot)
	}
}

// TestEngineCloseViolation: a line claimed durable but still unflushed at
// close is flagged; a post-claim store (Romulus's IDL pattern) is exempt.
func TestEngineCloseViolation(t *testing.T) {
	dev, a := newAudited(t, 4096, pmem.ModelDRAM, Options{})
	dev.Store64(0, 1)
	dev.Pfence() // noop fence; line 0 still dirty
	a.DurablePoint("commit")
	a.EngineClose("test")
	// Line 0 was dirty at both the durable point and close.
	var kinds []string
	for _, v := range a.Violations() {
		kinds = append(kinds, v.Kind)
	}
	if len(kinds) != 2 || kinds[0] != "durable-point" || kinds[1] != "close" {
		t.Fatalf("violation kinds = %v", kinds)
	}

	// Fresh auditor: store only after the durable point → exempt at close.
	dev2, a2 := newAudited(t, 4096, pmem.ModelDRAM, Options{})
	a2.DurablePoint("commit")
	dev2.Store64(0, 7) // deliberate post-claim store, never flushed
	a2.EngineClose("test")
	if n := a2.ViolationCount(); n != 0 {
		t.Fatalf("post-claim store flagged at close: %+v", a2.Violations())
	}
}

// TestPublishMetrics: audit_* metrics appear in a registry snapshot.
func TestPublishMetrics(t *testing.T) {
	dev, a := newAudited(t, 4096, pmem.ModelDRAM, Options{})
	reg := obs.NewRegistry()
	a.PublishMetrics(reg)
	dev.Pwb(0) // one clean-pwb waste event
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"audit_pwb_clean_total 1",
		"audit_violation_total 0",
		"audit_dirty_lines 0",
		"audit_fence_noop_total 0",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics output missing %q:\n%s", name, out)
		}
	}
}

// TestReportWriters: both renderings of a report succeed and mention the
// essential facts.
func TestReportWriters(t *testing.T) {
	dev, a := newAudited(t, 4096, pmem.ModelDRAM, Options{SampleEvery: 1})
	brokenCommit(dev, a)
	rep := a.Summary()
	var txt, js bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "VIOLATION [durable-point]") {
		t.Errorf("text report missing violation:\n%s", txt.String())
	}
	if !strings.Contains(js.String(), `"kind": "durable-point"`) {
		t.Errorf("json report missing violation:\n%s", js.String())
	}
}

// TestConcurrentReaders runs a mutator thread against concurrent control-
// plane readers; meaningful only under -race, which the repo's test target
// enables.
func TestConcurrentReaders(t *testing.T) {
	dev, a := newAudited(t, 1<<16, pmem.ModelDRAM, Options{SampleEvery: 4})
	reg := obs.NewRegistry()
	a.PublishMetrics(reg)

	var mutators, readers sync.WaitGroup
	stop := make(chan struct{})
	// Mutators: the device requires external serialization of stores (as
	// the engines provide); a mutex stands in for the engine lock while
	// still exercising cross-goroutine handoff of the auditor.
	var devMu sync.Mutex
	for g := 0; g < 2; g++ {
		mutators.Add(1)
		go func(g int) {
			defer mutators.Done()
			for i := 0; i < 2000; i++ {
				devMu.Lock()
				a.TxBegin("race", "update")
				off := ((g*2000 + i) % 512) * pmem.LineSize
				dev.Store64(off, uint64(i))
				dev.Pwb(off)
				dev.Pfence()
				a.DurablePoint("commit")
				a.TxEnd()
				devMu.Unlock()
			}
		}(g)
	}
	// Readers: totals, summaries and metric snapshots race the mutators.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = a.Totals()
				_ = a.Summary()
				_ = reg.Snapshot()
			}
		}()
	}
	mutators.Wait()
	close(stop)
	readers.Wait()
	if n := a.ViolationCount(); n != 0 {
		t.Fatalf("violations under concurrent clean protocol: %d", n)
	}
}
