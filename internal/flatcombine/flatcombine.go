// Package flatcombine implements the flat-combining writer path used by
// every concurrent Romulus variant (§5.2, §5.3 of the paper): update
// operations announce themselves in a per-thread array; whichever announcer
// wins the writer lock becomes the combiner, executes every announced
// operation inside a single durable transaction, and only then signals
// completion. Aggregation amortizes lock hand-offs and persistence fences —
// with combining, the average number of fences per mutation drops below the
// four a solo transaction pays.
//
// The combiner is generic over the transaction handle type T supplied by
// the engine's Hooks, so the same code drives Romulus, RomulusLog and
// RomulusLR (which differ in what Begin/Commit do: reader draining for
// C-RW-WP, version toggling for left-right).
//
// Error and panic semantics: operations in a batch share one transaction,
// so a failing operation cannot be rolled back alone. When any operation of
// a batch fails (returns an error or panics), the combiner rolls the whole
// transaction back and re-executes each operation of the batch in its own
// transaction, isolating the failure while preserving exactly-once
// semantics for the operations that succeed. Operations must therefore be
// safe to re-execute after a full rollback, which holds for closures whose
// only side effects go through the transaction or overwrite captured
// variables — the usage pattern of the paper's API (Algorithm 2).
package flatcombine

import (
	"runtime"
	"sync/atomic"

	"repro/internal/hsync"
)

// Op is an announced update operation.
type Op[T any] func(tx T) error

// Hooks connect the combiner to a PTM engine. All three are invoked with
// the writer lock held, in the strict sequence Begin, then user operations,
// then exactly one of Commit or Rollback.
type Hooks[T any] struct {
	// Begin opens an update transaction and returns the handle passed to
	// the announced operations. For C-RW-WP engines it also drains readers;
	// for left-right it performs the first version toggle.
	Begin func() T
	// Commit makes the transaction durable (the psync of Algorithm 1) and
	// publishes its effects.
	Commit func(tx T)
	// Rollback reverts every effect of the transaction using the twin copy
	// (or the engine's log) and releases whatever Begin acquired.
	Rollback func(tx T)
}

type reqState int32

const (
	statePending reqState = iota
	stateDone
)

type request[T any] struct {
	op    Op[T]
	err   error
	pval  any // value recovered from a panicking op, re-raised at the owner
	state atomic.Int32
}

type paddedSlot[T any] struct {
	req atomic.Pointer[request[T]]
	_   [120]byte
}

// Combiner is a flat-combining array paired with a writer spin lock.
type Combiner[T any] struct {
	slots    [hsync.MaxThreads]paddedSlot[T]
	lock     hsync.SpinLock
	hooks    Hooks[T]
	combined atomic.Uint64 // ops executed on behalf of other threads
	batches  atomic.Uint64 // combining passes that executed at least one op
}

// New creates a combiner with the given engine hooks.
func New[T any](hooks Hooks[T]) *Combiner[T] {
	return &Combiner[T]{hooks: hooks}
}

// Combined returns the number of operations executed by a combiner on
// behalf of another thread, and the number of combining passes.
func (c *Combiner[T]) Combined() (ops, batches uint64) {
	return c.combined.Load(), c.batches.Load()
}

// Execute announces op in the slot of thread tid and waits until it has been
// executed durably — either by this thread (if it wins the writer lock and
// becomes the combiner) or by another combiner. It returns the operation's
// error and re-raises its panic, if any.
func (c *Combiner[T]) Execute(tid int, op Op[T]) error {
	req := &request[T]{op: op}
	c.slots[tid].req.Store(req)
	for spins := 0; ; spins++ {
		if req.state.Load() == int32(stateDone) {
			break
		}
		if c.lock.TryLock() {
			c.combine()
			c.lock.Unlock()
			if req.state.Load() == int32(stateDone) {
				break
			}
			continue
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
	// The slot may already hold a newer request from a reuse of this tid;
	// only clear it if it is still ours.
	c.slots[tid].req.CompareAndSwap(req, nil)
	if req.pval != nil {
		panic(req.pval)
	}
	return req.err
}

// combine gathers all pending announcements and executes them in a single
// transaction. Called with the writer lock held.
func (c *Combiner[T]) combine() {
	var batch []*request[T]
	for i := range c.slots {
		r := c.slots[i].req.Load()
		if r != nil && r.state.Load() == int32(statePending) {
			batch = append(batch, r)
		}
	}
	if len(batch) == 0 {
		return
	}
	c.batches.Add(1)
	c.combined.Add(uint64(len(batch) - 1))
	if c.runBatch(batch) {
		c.finish(batch)
		return
	}
	// At least one operation failed: the whole transaction was rolled back.
	// Isolate failures by re-running each operation in its own transaction.
	for _, r := range batch {
		c.runBatch([]*request[T]{r})
	}
	c.finish(batch)
}

// runBatch executes the batch inside one transaction. It returns false if
// any operation failed, in which case the transaction has been rolled back
// and no request has been marked done.
func (c *Combiner[T]) runBatch(batch []*request[T]) bool {
	tx := c.hooks.Begin()
	for _, r := range batch {
		r.err = nil
		r.pval = nil
		if !runOp(r, tx) {
			c.hooks.Rollback(tx)
			return false
		}
	}
	c.hooks.Commit(tx)
	return true
}

// runOp invokes a single operation, capturing error and panic. It returns
// false if the operation failed.
func runOp[T any](r *request[T], tx T) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			r.pval = p
			ok = false
		}
	}()
	r.err = r.op(tx)
	return r.err == nil
}

// finish marks every request in the batch done, releasing its owner. Only
// called after durability (or rollback) is settled, matching the paper's
// rule that visibility implies durability.
func (c *Combiner[T]) finish(batch []*request[T]) {
	for _, r := range batch {
		r.state.Store(int32(stateDone))
	}
}
