// Package flatcombine implements the flat-combining writer path used by
// every concurrent Romulus variant (§5.2, §5.3 of the paper): update
// operations announce themselves in a per-thread array; whichever announcer
// wins the writer lock becomes the combiner, executes every announced
// operation inside a single durable transaction, and only then signals
// completion. Aggregation amortizes lock hand-offs and persistence fences —
// with combining, the average number of fences per mutation drops below the
// four a solo transaction pays.
//
// The combiner drains, not just gathers: after executing the announcements
// it found on entry it rescans the array and folds any operations announced
// meanwhile into the same open transaction, repeating until a scan comes up
// empty. Only then does it pay the single durability round (one log replay /
// one main→back sync, one set of fences) for the whole batch, so the batch
// keeps growing for as long as writers keep arriving and the per-operation
// fence cost falls with contention instead of rising.
//
// The combiner is generic over the transaction handle type T supplied by
// the engine's Hooks, so the same code drives Romulus, RomulusLog and
// RomulusLR (which differ in what Begin/Commit do: reader draining for
// C-RW-WP, version toggling for left-right).
//
// Error and panic semantics: operations in a batch share one transaction,
// so a failing operation cannot be rolled back alone. When any operation of
// a batch fails (returns an error or panics), the combiner rolls the whole
// transaction back and re-executes each operation of the batch in its own
// transaction, isolating the failure while preserving exactly-once
// semantics for the operations that succeed. Operations must therefore be
// safe to re-execute after a full rollback, which holds for closures whose
// only side effects go through the transaction or overwrite captured
// variables — the usage pattern of the paper's API (Algorithm 2).
package flatcombine

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/hsync"
)

// Op is an announced update operation.
type Op[T any] func(tx T) error

// Hooks connect the combiner to a PTM engine. All three are invoked with
// the writer lock held, in the strict sequence Begin, then user operations,
// then exactly one of Commit or Rollback.
type Hooks[T any] struct {
	// Begin opens an update transaction and returns the handle passed to
	// the announced operations. For C-RW-WP engines it also drains readers;
	// for left-right it performs the first version toggle.
	Begin func() T
	// Commit makes the transaction durable (the psync of Algorithm 1) and
	// publishes its effects. ops is the number of announced operations the
	// transaction carries, so the engine can attribute the durability round
	// to the whole batch.
	Commit func(tx T, ops int)
	// Rollback reverts every effect of the transaction using the twin copy
	// (or the engine's log) and releases whatever Begin acquired.
	Rollback func(tx T)
}

type reqState int32

const (
	statePending reqState = iota
	stateClaimed          // gathered into the current combiner's open batch
	stateDone
)

type request[T any] struct {
	op    Op[T]
	err   error
	pval  any    // value recovered from a panicking op, re-raised at the owner
	seq   uint64 // durability round that committed this op (0 = rolled back)
	state atomic.Int32
}

type paddedSlot[T any] struct {
	req atomic.Pointer[request[T]]
	_   [120]byte
}

// Combiner is a flat-combining array paired with a writer spin lock.
type Combiner[T any] struct {
	slots     [hsync.MaxThreads]paddedSlot[T]
	lock      hsync.SpinLock
	hooks     Hooks[T]
	combined  atomic.Uint64 // ops executed on behalf of other threads
	seq       atomic.Uint64 // committed durability rounds, monotone
	batches   atomic.Uint64 // committed durability rounds (== seq, kept for stats reads)
	batchOps  atomic.Uint64 // ops retired across committed rounds
	maxBatch  atomic.Uint64 // largest single committed batch
	combineNs atomic.Uint64 // total wall time spent inside combining passes
}

// Stats is a snapshot of a combiner's batching counters.
type Stats struct {
	// Batches counts committed durability rounds. Each round pays one set
	// of commit fences regardless of how many operations it carries.
	Batches uint64
	// BatchOps counts operations retired across those rounds, so
	// BatchOps/Batches is the mean batch size.
	BatchOps uint64
	// Combined counts operations executed by a combiner on behalf of
	// another thread.
	Combined uint64
	// MaxBatch is the largest single committed batch.
	MaxBatch uint64
	// CombineNs is total wall-clock nanoseconds spent inside combining
	// passes (batch execution plus its durability round).
	CombineNs uint64
}

// New creates a combiner with the given engine hooks.
func New[T any](hooks Hooks[T]) *Combiner[T] {
	return &Combiner[T]{hooks: hooks}
}

// Combined returns the number of operations executed by a combiner on
// behalf of another thread, and the number of committed batches.
func (c *Combiner[T]) Combined() (ops, batches uint64) {
	return c.combined.Load(), c.batches.Load()
}

// Stats returns a snapshot of the batching counters. Safe to call
// concurrently with combining; counters are read individually, so the
// snapshot is only loosely consistent (fine for metrics).
func (c *Combiner[T]) Stats() Stats {
	return Stats{
		Batches:   c.batches.Load(),
		BatchOps:  c.batchOps.Load(),
		Combined:  c.combined.Load(),
		MaxBatch:  c.maxBatch.Load(),
		CombineNs: c.combineNs.Load(),
	}
}

// Execute announces op in the slot of thread tid and waits until it has been
// executed durably — either by this thread (if it wins the writer lock and
// becomes the combiner) or by another combiner. It returns the operation's
// error and re-raises its panic, if any.
func (c *Combiner[T]) Execute(tid int, op Op[T]) error {
	_, err := c.ExecuteSeq(tid, op)
	return err
}

// ExecuteSeq is Execute but also returns the durability round (batch
// sequence number) that committed the operation. Rounds are assigned in
// commit order starting at 1; operations committed by the same round share
// a number and became durable atomically. A rolled-back (failed) operation
// reports round 0.
func (c *Combiner[T]) ExecuteSeq(tid int, op Op[T]) (uint64, error) {
	req := &request[T]{op: op}
	c.slots[tid].req.Store(req)
	// Announce-then-yield: give up the processor once between announcing and
	// competing for the writer lock. A combiner running elsewhere gets a
	// chance to fold this request into its open batch instead of losing the
	// lock hand-off race to us, and on oversubscribed (or single-processor)
	// schedulers the yield creates the arrival overlap that hardware
	// parallelism provides naturally — without it every thread finds the
	// lock free and self-combines, so batches never exceed one operation.
	runtime.Gosched()
	for spins := 0; ; spins++ {
		if req.state.Load() == int32(stateDone) {
			break
		}
		if c.lock.TryLock() {
			c.combine()
			c.lock.Unlock()
			if req.state.Load() == int32(stateDone) {
				break
			}
			continue
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
	// The slot may already hold a newer request from a reuse of this tid;
	// only clear it if it is still ours.
	c.slots[tid].req.CompareAndSwap(req, nil)
	if req.pval != nil {
		panic(req.pval)
	}
	return req.seq, req.err
}

// gather scans the announcement array and claims every pending request,
// appending it to batch. Claiming (rather than leaving requests pending)
// lets the drain loop rescan without re-collecting operations already in
// the open transaction. Called with the writer lock held.
func (c *Combiner[T]) gather(batch []*request[T]) []*request[T] {
	for i := range c.slots {
		r := c.slots[i].req.Load()
		if r != nil && r.state.Load() == int32(statePending) {
			r.state.Store(int32(stateClaimed))
			batch = append(batch, r)
		}
	}
	return batch
}

// combine drains the announcement array into a single transaction: execute
// what was pending on entry, rescan, fold in late arrivals, and repeat
// until a scan finds nothing new; then commit the whole batch in one
// durability round. Called with the writer lock held.
func (c *Combiner[T]) combine() {
	batch := c.gather(nil)
	if len(batch) == 0 {
		return
	}
	start := time.Now()
	tx := c.hooks.Begin()
	ok, ran := true, 0
	for ok {
		for ran < len(batch) {
			r := batch[ran]
			ran++
			r.err, r.pval = nil, nil
			if !runOp(r, tx) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		next := c.gather(batch)
		if len(next) == len(batch) {
			break
		}
		batch = next
	}
	if ok {
		c.hooks.Commit(tx, len(batch))
		seq := c.seq.Add(1)
		for _, r := range batch {
			r.seq = seq
		}
		c.recordBatch(len(batch))
	} else {
		// At least one operation failed: the whole transaction was rolled
		// back. Isolate failures by re-running each claimed operation in its
		// own transaction (its own durability round).
		c.hooks.Rollback(tx)
		for _, r := range batch {
			c.runSolo(r)
		}
	}
	c.combined.Add(uint64(len(batch) - 1))
	c.combineNs.Add(uint64(time.Since(start)))
	c.finish(batch)
}

// runSolo re-executes one operation in its own transaction after a batch
// failure, assigning it its own durability round on success.
func (c *Combiner[T]) runSolo(r *request[T]) {
	tx := c.hooks.Begin()
	r.err, r.pval = nil, nil
	if runOp(r, tx) {
		c.hooks.Commit(tx, 1)
		r.seq = c.seq.Add(1)
		c.recordBatch(1)
	} else {
		c.hooks.Rollback(tx)
		r.seq = 0
	}
}

// recordBatch accounts one committed durability round of ops operations.
func (c *Combiner[T]) recordBatch(ops int) {
	c.batches.Add(1)
	c.batchOps.Add(uint64(ops))
	for {
		cur := c.maxBatch.Load()
		if uint64(ops) <= cur || c.maxBatch.CompareAndSwap(cur, uint64(ops)) {
			return
		}
	}
}

// runOp invokes a single operation, capturing error and panic. It returns
// false if the operation failed.
func runOp[T any](r *request[T], tx T) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			r.pval = p
			ok = false
		}
	}()
	r.err = r.op(tx)
	return r.err == nil
}

// finish marks every request in the batch done, releasing its owner. Only
// called after durability (or rollback) is settled, matching the paper's
// rule that visibility implies durability.
func (c *Combiner[T]) finish(batch []*request[T]) {
	for _, r := range batch {
		r.state.Store(int32(stateDone))
	}
}
