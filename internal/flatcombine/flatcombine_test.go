package flatcombine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/hsync"
)

// fakeTx is a toy transactional store: Begin snapshots, Commit keeps,
// Rollback restores. It lets the tests verify the combiner's transactional
// contract without a real PTM engine.
type fakeEngine struct {
	mu        sync.Mutex
	value     int
	snapshot  int
	begins    int
	commits   int
	rollbacks int
	batchOps  []int
	inTx      bool
}

type fakeTx struct{ e *fakeEngine }

func (t fakeTx) add(n int) { t.e.value += n }

func (e *fakeEngine) hooks() Hooks[fakeTx] {
	return Hooks[fakeTx]{
		Begin: func() fakeTx {
			e.mu.Lock() // detects overlapping transactions via deadlock-free check below
			if e.inTx {
				panic("overlapping transactions")
			}
			e.inTx = true
			e.begins++
			e.snapshot = e.value
			e.mu.Unlock()
			return fakeTx{e}
		},
		Commit: func(tx fakeTx, ops int) {
			e.mu.Lock()
			e.commits++
			e.batchOps = append(e.batchOps, ops)
			e.inTx = false
			e.mu.Unlock()
		},
		Rollback: func(tx fakeTx) {
			e.mu.Lock()
			e.rollbacks++
			e.value = e.snapshot
			e.inTx = false
			e.mu.Unlock()
		},
	}
}

func TestSingleThreadExecute(t *testing.T) {
	e := &fakeEngine{}
	c := New(e.hooks())
	err := c.Execute(0, func(tx fakeTx) error {
		tx.add(5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.value != 5 {
		t.Errorf("value = %d, want 5", e.value)
	}
	if e.begins != 1 || e.commits != 1 || e.rollbacks != 0 {
		t.Errorf("hook counts: %+v", e)
	}
}

func TestErrorRollsBack(t *testing.T) {
	e := &fakeEngine{}
	c := New(e.hooks())
	boom := errors.New("boom")
	err := c.Execute(0, func(tx fakeTx) error {
		tx.add(5)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if e.value != 0 {
		t.Errorf("value = %d after rollback, want 0", e.value)
	}
	if e.rollbacks == 0 {
		t.Error("Rollback hook never called")
	}
}

func TestPanicPropagatesAndRollsBack(t *testing.T) {
	e := &fakeEngine{}
	c := New(e.hooks())
	func() {
		defer func() {
			if p := recover(); p != "kapow" {
				t.Errorf("recovered %v, want kapow", p)
			}
		}()
		c.Execute(0, func(tx fakeTx) error {
			tx.add(9)
			panic("kapow")
		})
	}()
	if e.value != 0 {
		t.Errorf("value = %d after panic, want 0", e.value)
	}
}

func TestConcurrentCombining(t *testing.T) {
	e := &fakeEngine{}
	c := New(e.hooks())
	var reg hsync.Registry
	const workers, iters = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid, err := reg.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer reg.Release(tid)
			for i := 0; i < iters; i++ {
				if err := c.Execute(tid, func(tx fakeTx) error {
					tx.add(1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if e.value != workers*iters {
		t.Errorf("value = %d, want %d", e.value, workers*iters)
	}
	ops, batches := c.Combined()
	t.Logf("combined %d ops in %d batches", ops, batches)
}

func TestFailureIsolationInBatch(t *testing.T) {
	// When a batch mixes failing and succeeding ops, the failing op must
	// not commit and the succeeding ops must commit exactly once.
	e := &fakeEngine{}
	c := New(e.hooks())
	var reg hsync.Registry
	const workers = 8
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		fail := w%2 == 0
		go func() {
			defer wg.Done()
			tid, _ := reg.Acquire()
			defer reg.Release(tid)
			for i := 0; i < 100; i++ {
				err := c.Execute(tid, func(tx fakeTx) error {
					tx.add(1)
					if fail {
						return fmt.Errorf("op rejected")
					}
					return nil
				})
				if fail {
					if err == nil {
						t.Error("failing op reported success")
						return
					}
					failures.Add(1)
				} else if err != nil {
					t.Errorf("succeeding op reported %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	want := (workers / 2) * 100
	if e.value != want {
		t.Errorf("value = %d, want %d", e.value, want)
	}
	if failures.Load() != int64(want) {
		t.Errorf("failures = %d, want %d", failures.Load(), want)
	}
}

func TestReexecutionAfterBatchFailure(t *testing.T) {
	// An op may run more than once if its batch is rolled back; its final
	// effect must still be exactly-once. Track executions to prove the
	// re-execution path is actually exercised under concurrency.
	e := &fakeEngine{}
	c := New(e.hooks())
	var reg hsync.Registry
	var execs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		fail := w == 0
		go func() {
			defer wg.Done()
			tid, _ := reg.Acquire()
			defer reg.Release(tid)
			for i := 0; i < 50; i++ {
				c.Execute(tid, func(tx fakeTx) error {
					execs.Add(1)
					tx.add(1)
					if fail {
						return errors.New("always fails")
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	want := 7 * 50
	if e.value != want {
		t.Errorf("value = %d, want %d", e.value, want)
	}
	if execs.Load() < int64(8*50) {
		t.Errorf("execs = %d, want >= %d", execs.Load(), 8*50)
	}
}

func TestSequentialReuseOfSlot(t *testing.T) {
	e := &fakeEngine{}
	c := New(e.hooks())
	for i := 0; i < 100; i++ {
		if err := c.Execute(3, func(tx fakeTx) error { tx.add(1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if e.value != 100 {
		t.Errorf("value = %d, want 100", e.value)
	}
}

func TestExecuteSeqMonotoneAndStats(t *testing.T) {
	e := &fakeEngine{}
	c := New(e.hooks())
	var last uint64
	for i := 0; i < 50; i++ {
		seq, err := c.ExecuteSeq(0, func(tx fakeTx) error { tx.add(1); return nil })
		if err != nil {
			t.Fatal(err)
		}
		if seq <= last {
			t.Fatalf("seq %d not monotone after %d", seq, last)
		}
		last = seq
	}
	st := c.Stats()
	if st.Batches != 50 || st.BatchOps != 50 {
		t.Errorf("stats = %+v, want 50 batches of 1 op", st)
	}
	if st.MaxBatch != 1 {
		t.Errorf("MaxBatch = %d, want 1 (sequential execution)", st.MaxBatch)
	}
	if st.Combined != 0 {
		t.Errorf("Combined = %d, want 0 (no other threads)", st.Combined)
	}
}

func TestFailedOpReportsSeqZero(t *testing.T) {
	e := &fakeEngine{}
	c := New(e.hooks())
	seq, err := c.ExecuteSeq(0, func(tx fakeTx) error { return errors.New("no") })
	if err == nil {
		t.Fatal("expected error")
	}
	if seq != 0 {
		t.Errorf("seq = %d for rolled-back op, want 0", seq)
	}
}

func TestConcurrentBatchesShareSeq(t *testing.T) {
	// Under contention, ops committed by one durability round must report
	// the same sequence number, and every round's ops count must match the
	// count handed to the Commit hook.
	e := &fakeEngine{}
	c := New(e.hooks())
	var reg hsync.Registry
	const workers, iters = 8, 100
	var mu sync.Mutex
	perSeq := map[uint64]int{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid, _ := reg.Acquire()
			defer reg.Release(tid)
			for i := 0; i < iters; i++ {
				seq, err := c.ExecuteSeq(tid, func(tx fakeTx) error { tx.add(1); return nil })
				if err != nil || seq == 0 {
					t.Errorf("seq %d err %v", seq, err)
					return
				}
				mu.Lock()
				perSeq[seq]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if e.value != workers*iters {
		t.Fatalf("value = %d, want %d", e.value, workers*iters)
	}
	st := c.Stats()
	if st.BatchOps != workers*iters {
		t.Errorf("BatchOps = %d, want %d", st.BatchOps, workers*iters)
	}
	if st.Batches != uint64(len(perSeq)) {
		t.Errorf("Batches = %d but %d distinct seqs observed", st.Batches, len(perSeq))
	}
	// Cross-check each round's size against what the Commit hook saw.
	// Rounds commit in seq order, so the i-th commit is seq i+1.
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.batchOps) != len(perSeq) {
		t.Fatalf("%d commits, %d seqs", len(e.batchOps), len(perSeq))
	}
	total := 0
	for seq, n := range perSeq {
		if got := e.batchOps[seq-1]; got != n {
			t.Errorf("seq %d: commit hook saw %d ops, owners saw %d", seq, got, n)
		}
		total += n
	}
	if total != workers*iters {
		t.Errorf("seq op total = %d, want %d", total, workers*iters)
	}
}

func TestDrainFoldsLateArrivals(t *testing.T) {
	// A second op announced while the combiner is mid-batch must be folded
	// into the same open transaction (same seq), not deferred to its own
	// durability round. The first op blocks inside the transaction until it
	// observes the second announcement.
	e := &fakeEngine{}
	c := New(e.hooks())
	announced := make(chan struct{})
	var seq2 uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		var err error
		// Announce from tid 1 once tid 0's op signals it is running.
		<-announced
		seq2, err = c.ExecuteSeq(1, func(tx fakeTx) error { tx.add(1); return nil })
		if err != nil {
			t.Error(err)
		}
	}()
	seq1, err := c.ExecuteSeq(0, func(tx fakeTx) error {
		tx.add(1)
		close(announced)
		// Wait until the second request is visible in the announcement
		// array so the combiner's rescan is guaranteed to find it.
		for c.slots[1].req.Load() == nil {
			runtime.Gosched()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if seq1 != seq2 {
		t.Errorf("late arrival got seq %d, combiner batch was seq %d; want same round", seq2, seq1)
	}
	if e.commits != 1 {
		t.Errorf("commits = %d, want 1 (single drained batch)", e.commits)
	}
	if st := c.Stats(); st.MaxBatch != 2 {
		t.Errorf("MaxBatch = %d, want 2", st.MaxBatch)
	}
}

func BenchmarkExecuteUncontended(b *testing.B) {
	e := &fakeEngine{}
	c := New(e.hooks())
	op := func(tx fakeTx) error { tx.add(1); return nil }
	for i := 0; i < b.N; i++ {
		if err := c.Execute(0, op); err != nil {
			b.Fatal(err)
		}
	}
}
