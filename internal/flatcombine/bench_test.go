package flatcombine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchHooks builds hooks over a plain mutex with an optional simulated
// commit cost, standing in for an engine's durability round. commits counts
// durability rounds so benchmarks can report fence amortization.
func benchHooks(commitCost time.Duration, commits *atomic.Uint64) Hooks[int] {
	var mu sync.Mutex
	return Hooks[int]{
		Begin: func() int { mu.Lock(); return 0 },
		Commit: func(tx int, ops int) {
			if commitCost > 0 {
				spinFor(commitCost)
			}
			commits.Add(1)
			mu.Unlock()
		},
		Rollback: func(tx int) { mu.Unlock() },
	}
}

// spinFor busy-waits (rather than sleeping) so the simulated durability
// round occupies the combiner the way device latency would, without
// yielding the processor mid-round.
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// BenchmarkCombinerContention measures batched-commit throughput and batch
// formation at increasing writer counts. ops/batch and fence-rounds/op (the
// reciprocal) are the quantities the combined-commit design optimizes: as
// writers are added, rounds/op must fall below 1.
func BenchmarkCombinerContention(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var commits atomic.Uint64
			c := New(benchHooks(0, &commits))
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / workers
			if per == 0 {
				per = 1
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						c.Execute(tid, func(tx int) error { return nil })
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			st := c.Stats()
			if st.Batches > 0 {
				b.ReportMetric(float64(st.BatchOps)/float64(st.Batches), "ops/batch")
				b.ReportMetric(float64(st.Batches)/float64(st.BatchOps), "rounds/op")
			}
			b.ReportMetric(float64(st.MaxBatch), "max-batch")
		})
	}
}

// BenchmarkCombinerDurableCommit repeats the contention sweep with a
// simulated 2µs durability round (roughly a pcm-class fence sequence),
// showing the amortized cost per operation falling as batches absorb more
// writers.
func BenchmarkCombinerDurableCommit(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var commits atomic.Uint64
			c := New(benchHooks(2*time.Microsecond, &commits))
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / workers
			if per == 0 {
				per = 1
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						c.Execute(tid, func(tx int) error { return nil })
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			st := c.Stats()
			if st.Batches > 0 {
				b.ReportMetric(float64(st.BatchOps)/float64(st.Batches), "ops/batch")
			}
		})
	}
}
