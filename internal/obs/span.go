package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Span phases. A request's lifetime through the pipelined server decomposes
// into consecutive child phases under one parent "request" span:
//
//	parse       — request line read off the socket to dispatch complete
//	              (for writes: enqueued to the shard's group committer)
//	queue_wait  — enqueue to the committer loop draining the op
//	batch_form  — drained to the batch's shard transaction beginning
//	              (includes any -group-linger wait for batch-mates)
//	psync_wait  — transaction begin to the batch's durable point (psync)
//	reply_flush — durable (or, for reads, dispatched) to the reply's flush
//	request     — the parent: line read to reply flushed
//
// Read-only requests have no committer phases: they emit parse,
// reply_flush and request only.
const (
	PhaseParse      = "parse"
	PhaseQueueWait  = "queue_wait"
	PhaseBatchForm  = "batch_form"
	PhasePsyncWait  = "psync_wait"
	PhaseReplyFlush = "reply_flush"
	PhaseRequest    = "request"
)

// SpanEvent is one phase of one request's timeline. Like TxEvent it is
// emitted by value and holds no pointers.
type SpanEvent struct {
	// Seq is the recorder-assigned emission sequence (0-based).
	Seq uint64 `json:"seq"`
	// Req is the request's server-assigned ReqID: all phases of one request
	// share it, which is what /trace?req=<id> joins on.
	Req uint64 `json:"req"`
	// Conn is the serving connection's id.
	Conn uint64 `json:"conn"`
	// Op is the request verb ("SET", "GET", "EXEC", ...).
	Op string `json:"op"`
	// Phase is one of the Phase* constants.
	Phase string `json:"phase"`
	// StartNs is the phase's absolute start (UnixNano), DurNs its length.
	StartNs int64  `json:"start_ns"`
	DurNs   uint64 `json:"dur_ns"`
	// Shard and BatchSeq attribute committer phases to the durable batch
	// that carried the write (zero for read-only requests and for phases
	// before batch formation).
	Shard    int    `json:"shard,omitempty"`
	BatchSeq uint64 `json:"batch_seq,omitempty"`
}

// SpanRecorder retains the most recent span events in a ring and folds
// every phase into a per-phase latency histogram (net_span_<phase>_ns).
// Safe for concurrent Emit — each connection's writer goroutine emits its
// own requests' spans.
type SpanRecorder struct {
	mu    sync.Mutex
	buf   []SpanEvent
	total uint64

	parse, queueWait, batchForm, psyncWait, replyFlush, request *Histogram
}

// NewSpanRecorder creates a recorder retaining the last capacity events
// (minimum 1). When reg is non-nil the per-phase histograms are registered
// there; with a nil registry the recorder still rings (tests, ad-hoc use)
// but publishes no metrics.
func NewSpanRecorder(reg *Registry, capacity int) *SpanRecorder {
	if capacity < 1 {
		capacity = 1
	}
	r := &SpanRecorder{buf: make([]SpanEvent, capacity)}
	if reg == nil {
		reg = NewRegistry()
	}
	r.parse = reg.Histogram("net_span_parse_ns")
	r.queueWait = reg.Histogram("net_span_queue_wait_ns")
	r.batchForm = reg.Histogram("net_span_batch_form_ns")
	r.psyncWait = reg.Histogram("net_span_psync_wait_ns")
	r.replyFlush = reg.Histogram("net_span_reply_flush_ns")
	r.request = reg.Histogram("net_span_request_ns")
	return r
}

// Emit records one span event, assigning Seq.
func (r *SpanRecorder) Emit(ev SpanEvent) {
	r.observe(ev.Phase, ev.DurNs)
	r.mu.Lock()
	ev.Seq = r.total
	r.buf[r.total%uint64(len(r.buf))] = ev
	r.total++
	r.mu.Unlock()
}

// EmitBatch records many span events at once: histogram samples are
// aggregated locally and merged in a few atomics per phase, and the ring
// takes one lock acquisition for the whole batch. The server's reply flusher
// collects every flushed request's phases and emits them here, so a
// pipelined burst pays per-flush costs instead of per-phase costs — the
// difference between ~1% and ~10% throughput overhead under load.
func (r *SpanRecorder) EmitBatch(evs []SpanEvent) {
	if len(evs) == 0 {
		return
	}
	var acc [6]histAccum
	for i := range evs {
		switch evs[i].Phase {
		case PhaseParse:
			acc[0].add(evs[i].DurNs)
		case PhaseQueueWait:
			acc[1].add(evs[i].DurNs)
		case PhaseBatchForm:
			acc[2].add(evs[i].DurNs)
		case PhasePsyncWait:
			acc[3].add(evs[i].DurNs)
		case PhaseReplyFlush:
			acc[4].add(evs[i].DurNs)
		case PhaseRequest:
			acc[5].add(evs[i].DurNs)
		}
	}
	acc[0].mergeInto(r.parse)
	acc[1].mergeInto(r.queueWait)
	acc[2].mergeInto(r.batchForm)
	acc[3].mergeInto(r.psyncWait)
	acc[4].mergeInto(r.replyFlush)
	acc[5].mergeInto(r.request)
	r.mu.Lock()
	cap64 := uint64(len(r.buf))
	for i := range evs {
		evs[i].Seq = r.total + uint64(i)
	}
	// Bulk ring insert: at most two copy calls instead of a modulo and
	// bounds check per event. A batch longer than the ring keeps only its
	// tail (the older events would be overwritten anyway).
	src := evs
	if uint64(len(src)) > cap64 {
		drop := uint64(len(src)) - cap64
		src = src[drop:]
		r.total += drop
	}
	pos := r.total % cap64
	n := copy(r.buf[pos:], src)
	copy(r.buf, src[n:])
	r.total += uint64(len(src))
	r.mu.Unlock()
}

// observe folds one phase duration into its histogram.
func (r *SpanRecorder) observe(phase string, durNs uint64) {
	switch phase {
	case PhaseParse:
		r.parse.Observe(durNs)
	case PhaseQueueWait:
		r.queueWait.Observe(durNs)
	case PhaseBatchForm:
		r.batchForm.Observe(durNs)
	case PhasePsyncWait:
		r.psyncWait.Observe(durNs)
	case PhaseReplyFlush:
		r.replyFlush.Observe(durNs)
	case PhaseRequest:
		r.request.Observe(durNs)
	}
}

// Total returns the number of events emitted since creation.
func (r *SpanRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in emission order (oldest first).
func (r *SpanRecorder) Events() []SpanEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsLocked()
}

func (r *SpanRecorder) eventsLocked() []SpanEvent {
	n, cap64 := r.total, uint64(len(r.buf))
	start, count := uint64(0), n
	if n > cap64 {
		start, count = n-cap64, cap64
	}
	out := make([]SpanEvent, 0, count)
	for i := start; i < n; i++ {
		out = append(out, r.buf[i%cap64])
	}
	return out
}

// ByReq returns every retained span of one request, in emission order —
// the /trace?req=<id> timeline. Empty when the request's spans have been
// overwritten (or never existed).
func (r *SpanRecorder) ByReq(req uint64) []SpanEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanEvent
	for _, ev := range r.eventsLocked() {
		if ev.Req == req {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSON writes the retained spans as JSON lines, oldest first.
func (r *SpanRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
