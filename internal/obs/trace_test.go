package obs

import (
	"strings"
	"testing"
)

func TestRingSinkWraps(t *testing.T) {
	s := NewRingSink(3)
	for i := 0; i < 5; i++ {
		s.Emit(TxEvent{Engine: "rom", Kind: KindUpdate, Writes: uint64(i)})
	}
	if got := s.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(i + 2); ev.Seq != want || ev.Writes != want {
			t.Fatalf("event %d = seq %d writes %d, want %d", i, ev.Seq, ev.Writes, want)
		}
	}
}

func TestRingSinkWriteJSON(t *testing.T) {
	s := NewRingSink(8)
	s.Emit(TxEvent{Engine: "romlog", Kind: KindUpdate, Outcome: OutcomeCommit, Pwbs: 3, Fences: 4})
	s.Emit(TxEvent{Engine: "romlog", Kind: KindRead, Outcome: OutcomeOK, Reads: 2})
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	if want := `{"seq":0,"engine":"romlog","kind":"update","outcome":"commit","reads":0,"writes":0,"write_bytes":0,"copied_bytes":0,"pwbs":3,"fences":4}`; lines[0] != want {
		t.Fatalf("line 0 = %s\nwant     %s", lines[0], want)
	}
}

func TestMetricsSinkFolds(t *testing.T) {
	r := NewRegistry()
	s := NewMetricsSink(r)
	// Two committed updates, one rollback (ignored by histograms), one read.
	s.Emit(TxEvent{Kind: KindUpdate, Outcome: OutcomeCommit, Writes: 2, WriteBytes: 16, CopiedBytes: 100, Pwbs: 5, Fences: 4})
	s.Emit(TxEvent{Kind: KindUpdate, Outcome: OutcomeCommit, Writes: 4, WriteBytes: 32, CopiedBytes: 200, Pwbs: 7, Fences: 4, Retries: 2})
	s.Emit(TxEvent{Kind: KindUpdate, Outcome: OutcomeRollback, Pwbs: 99, Fences: 99})
	s.Emit(TxEvent{Kind: KindRead, Outcome: OutcomeOK, Reads: 3})

	snap := r.Snapshot()
	if got := snap.Counters["trace_update_total"]; got != 2 {
		t.Errorf("trace_update_total = %d, want 2", got)
	}
	if got := snap.Counters["trace_rollback_total"]; got != 1 {
		t.Errorf("trace_rollback_total = %d, want 1", got)
	}
	if got := snap.Counters["trace_read_total"]; got != 1 {
		t.Errorf("trace_read_total = %d, want 1", got)
	}
	if got := snap.Counters["trace_retries_total"]; got != 2 {
		t.Errorf("trace_retries_total = %d, want 2", got)
	}
	f := snap.Histograms["tx_fences"]
	if f.Count != 2 || f.Sum != 8 || f.Mean != 4 {
		t.Errorf("tx_fences = %+v, want count 2 sum 8 mean 4 (rollback excluded)", f)
	}
	if got := snap.Histograms["tx_pwbs"].Sum; got != 12 {
		t.Errorf("tx_pwbs sum = %d, want 12", got)
	}
	if got := snap.Histograms["read_tx_loads"].Sum; got != 3 {
		t.Errorf("read_tx_loads sum = %d, want 3", got)
	}
}

func TestTee(t *testing.T) {
	a, b := NewRingSink(4), NewRingSink(4)
	s := Tee(a, nil, b)
	s.Emit(TxEvent{Kind: KindUpdate})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("tee delivered %d/%d, want 1/1", a.Total(), b.Total())
	}
	if Tee(nil, nil) != nil {
		t.Fatal("Tee of only nils should be nil")
	}
	if got := Tee(a); got != Sink(a) {
		t.Fatal("Tee of one sink should return it unwrapped")
	}
}
