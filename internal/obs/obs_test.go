package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers get-or-create, updates, snapshots and
// resets from many goroutines; run with -race. Counter totals are checked
// for a quiet phase where no Reset can interleave.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		iters      = 1000
	)
	names := []string{"alpha_total", "beta_total", "gamma_total"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Re-resolve every iteration: get-or-create must always
				// return the same instrument for a name.
				r.Counter(names[i%len(names)]).Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("lat_ns").Observe(uint64(g*iters + i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()

	s := r.Snapshot()
	var total uint64
	for _, n := range names {
		total += s.Counters[n]
	}
	if want := uint64(goroutines * iters); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	if got := s.Gauges["depth"]; got != goroutines*iters {
		t.Fatalf("gauge = %d, want %d", got, goroutines*iters)
	}
	if got := s.Histograms["lat_ns"].Count; got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}

	// Same-name lookups must alias: a second handle observes the first's adds.
	c1, c2 := r.Counter("alias"), r.Counter("alias")
	if c1 != c2 {
		t.Fatal("Counter returned distinct instruments for one name")
	}

	r.Reset()
	s = r.Snapshot()
	if s.Counters["alpha_total"] != 0 || s.Gauges["depth"] != 0 || s.Histograms["lat_ns"].Count != 0 {
		t.Fatalf("Reset left non-zero instruments: %+v", s)
	}
}

// TestRegistryConcurrentReset runs Reset against concurrent writers purely
// for the race detector: no totals can be asserted, only absence of races
// and of lost instruments.
func TestRegistryConcurrentReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("spin_total") // pre-create so the final existence check is deterministic
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("spin_total").Inc()
				r.Histogram("spin_hist").Observe(3)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r.Reset()
		r.Snapshot()
	}
	close(stop)
	wg.Wait()
	if _, ok := r.Snapshot().Counters["spin_total"]; !ok {
		t.Fatal("Reset dropped the counter instead of zeroing it")
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	v := uint64(7)
	r.Collect(func(set Setter) { set("source_total", v) })
	if got := r.Snapshot().Counters["source_total"]; got != 7 {
		t.Fatalf("collector value = %d, want 7", got)
	}
	v = 11
	if got := r.Snapshot().Counters["source_total"]; got != 11 {
		t.Fatalf("collector is not re-run per snapshot: got %d, want 11", got)
	}
	// Reset leaves collectors attached: their sources own their own reset.
	r.Reset()
	if got := r.Snapshot().Counters["source_total"]; got != 11 {
		t.Fatalf("Reset detached the collector: got %d, want 11", got)
	}
}

func TestWriteTextSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Add(3)
	r.Counter("a_total").Add(1)
	r.Gauge("m_gauge").Set(-2)
	r.Histogram("h").Observe(4)

	var b1, b2 strings.Builder
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("WriteText output is not stable across calls")
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("output not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
	want := []string{"a_total 1", "h_count 1", "h_max 4", "h_mean 4", "h_p50 7", "h_sum 4", "m_gauge -2", "z_total 3"}
	got := b1.String()
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("missing line %q in:\n%s", w, got)
		}
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Histogram("h").Observe(1)
	var b1, b2 strings.Builder
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("WriteJSON output differs between identical snapshots")
	}
	if !strings.Contains(b1.String(), `"a": 1`) {
		t.Fatalf("unexpected JSON: %s", b1.String())
	}
}
