package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Kind classifies a traced transaction.
type Kind string

// Outcome records how a traced transaction ended.
type Outcome string

// Transaction kinds and outcomes. Every engine uses this vocabulary, so a
// trace consumer never needs engine-specific decoding.
const (
	KindUpdate Kind = "update"
	KindRead   Kind = "read"

	// OutcomeCommit: the update committed durably.
	OutcomeCommit Outcome = "commit"
	// OutcomeRollback: user code returned an error (or panicked) and the
	// engine rolled every persistent effect back.
	OutcomeRollback Outcome = "rollback"
	// OutcomeOK: a read-only transaction completed.
	OutcomeOK Outcome = "ok"
	// OutcomeError: a read-only transaction returned an error.
	OutcomeError Outcome = "error"
)

// TxEvent is one per-transaction trace record. Every engine emits the same
// schema (see docs/OBSERVABILITY.md for field-by-field units and the §6
// paper counterparts); fields an engine cannot measure are zero.
//
// Events are passed by value and contain no pointers, so emitting one
// allocates nothing on the caller's side.
type TxEvent struct {
	// Seq is the sink-assigned sequence number (RingSink numbers events in
	// emission order, starting at 0).
	Seq uint64 `json:"seq"`
	// Engine is the emitting engine's name ("rom", "romlog", "romlr",
	// "pmdk", "mne").
	Engine string `json:"engine"`
	Kind   Kind   `json:"kind"`
	// Outcome is how the transaction ended; for flat-combined engines an
	// update event covers one combined batch.
	Outcome Outcome `json:"outcome"`
	// Reads counts transactional load operations (the read set).
	Reads uint64 `json:"reads"`
	// Writes counts transactional store operations (the write set).
	Writes uint64 `json:"writes"`
	// WriteBytes is the user payload stored by the transaction.
	WriteBytes uint64 `json:"write_bytes"`
	// CopiedBytes is the engine's replication or logging volume: twin-copy
	// bytes for Romulus variants, undo-log snapshot bytes for the undo-log
	// engine, redo-log entry bytes for the STM.
	CopiedBytes uint64 `json:"copied_bytes"`
	// Pwbs and Fences are the persistence events (write-backs;
	// pfence+psync) the device executed on behalf of this transaction,
	// including logging and replication work.
	Pwbs   uint64 `json:"pwbs"`
	Fences uint64 `json:"fences"`
	// Retries counts conflict aborts before this transaction committed
	// (redo-log STM only; 0 elsewhere).
	Retries uint64 `json:"retries,omitempty"`
	// BatchOps is the number of announced operations this durability round
	// carried (flat-combined engines only; 0 elsewhere). An update event with
	// BatchOps > 1 is one crash-atomic super-transaction whose Pwbs and
	// Fences are shared by that many logical operations.
	BatchOps uint64 `json:"batch_ops,omitempty"`
}

// Sink receives per-transaction trace events. Implementations must be safe
// for concurrent Emit: engines with concurrent readers emit from multiple
// goroutines.
type Sink interface {
	Emit(ev TxEvent)
}

// RingSink retains the most recent events in a fixed-capacity ring buffer.
// It assigns Seq in emission order and never allocates after creation.
type RingSink struct {
	mu    sync.Mutex
	buf   []TxEvent
	total uint64
}

// NewRingSink creates a ring sink retaining the last capacity events
// (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]TxEvent, capacity)}
}

// Emit implements Sink.
func (s *RingSink) Emit(ev TxEvent) {
	s.mu.Lock()
	ev.Seq = s.total
	s.buf[s.total%uint64(len(s.buf))] = ev
	s.total++
	s.mu.Unlock()
}

// Total returns the number of events emitted since creation (including
// those already overwritten).
func (s *RingSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Events returns the retained events in emission order (oldest first).
func (s *RingSink) Events() []TxEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.total
	cap64 := uint64(len(s.buf))
	start := uint64(0)
	count := n
	if n > cap64 {
		start = n - cap64
		count = cap64
	}
	out := make([]TxEvent, 0, count)
	for i := start; i < n; i++ {
		out = append(out, s.buf[i%cap64])
	}
	return out
}

// WriteJSON writes the retained events as JSON lines (one event object per
// line, oldest first) — the golden-file trace format.
func (s *RingSink) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range s.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// MetricsSink folds trace events into a registry, deriving the per-
// transaction distributions of §6.2 from the stream: counters
// trace_update_total / trace_read_total / trace_rollback_total /
// trace_retries_total, and histograms tx_pwbs, tx_fences, tx_writes,
// tx_write_bytes, tx_copied_bytes over committed updates plus
// read_tx_loads over reads.
type MetricsSink struct {
	updates   *Counter
	reads     *Counter
	rollbacks *Counter
	retries   *Counter

	pwbs       *Histogram
	fences     *Histogram
	writes     *Histogram
	writeBytes *Histogram
	copied     *Histogram
	batchOps   *Histogram
	readLoads  *Histogram
}

// NewMetricsSink creates a sink recording into r. Instrument pointers are
// resolved once here, so Emit costs only atomic adds.
func NewMetricsSink(r *Registry) *MetricsSink {
	return &MetricsSink{
		updates:    r.Counter("trace_update_total"),
		reads:      r.Counter("trace_read_total"),
		rollbacks:  r.Counter("trace_rollback_total"),
		retries:    r.Counter("trace_retries_total"),
		pwbs:       r.Histogram("tx_pwbs"),
		fences:     r.Histogram("tx_fences"),
		writes:     r.Histogram("tx_writes"),
		writeBytes: r.Histogram("tx_write_bytes"),
		copied:     r.Histogram("tx_copied_bytes"),
		batchOps:   r.Histogram("tx_batch_ops"),
		readLoads:  r.Histogram("read_tx_loads"),
	}
}

// Emit implements Sink.
func (s *MetricsSink) Emit(ev TxEvent) {
	switch ev.Kind {
	case KindUpdate:
		s.retries.Add(ev.Retries)
		if ev.Outcome != OutcomeCommit {
			s.rollbacks.Inc()
			return
		}
		s.updates.Inc()
		s.pwbs.Observe(ev.Pwbs)
		s.fences.Observe(ev.Fences)
		s.writes.Observe(ev.Writes)
		s.writeBytes.Observe(ev.WriteBytes)
		s.copied.Observe(ev.CopiedBytes)
		if ev.BatchOps > 0 {
			s.batchOps.Observe(ev.BatchOps)
		}
	case KindRead:
		s.reads.Inc()
		s.readLoads.Observe(ev.Reads)
	}
}

// Tee returns a sink that forwards every event to each non-nil sink, or
// nil if none remain (so engines can attach the result unconditionally).
func Tee(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeSink(live)
}

type teeSink []Sink

// Emit implements Sink.
func (t teeSink) Emit(ev TxEvent) {
	for _, s := range t {
		s.Emit(ev)
	}
}
