// Package obs is the repository's observability layer: a metrics registry
// and a per-transaction tracing subsystem shared by every engine, with a
// single schema documented in docs/OBSERVABILITY.md.
//
// The paper's entire evaluation (§6) is driven by counting persistence
// events — pwbs and fences per transaction, write amplification, abort and
// retry behaviour. This package makes that lens a first-class subsystem
// instead of ad-hoc per-tool plumbing:
//
//   - Registry holds named atomic counters, gauges and power-of-two-bucket
//     histograms. Hot paths obtain a *Counter or *Histogram once and then
//     update it with a single atomic add — no map lookups, no allocation.
//     Collectors contribute point-in-time values (such as pmem.Device
//     counters) lazily at snapshot time, so instrumented data paths pay
//     nothing at all.
//   - Instrument attaches a pmem.Device to a Registry; InstrumentPTM does
//     the same for any ptm.PTM engine. Both publish the canonical pmem_*
//     and ptm_* metric set.
//   - TxEvent is the per-transaction trace record (begin/commit/rollback/
//     abort outcome, read- and write-set sizes, bytes copied, pwb and fence
//     counts) every engine emits through a pluggable Sink. RingSink keeps
//     the trailing window in a fixed ring buffer with JSON-lines export;
//     MetricsSink folds events into registry histograms; Tee fans out.
//
// Concurrency: all Registry instruments are safe for concurrent use. Sinks
// supplied to engines must be safe for concurrent Emit (RingSink and
// MetricsSink are); engines attach sinks at quiescent points only.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; obtain shared instances from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (e.g. bytes currently in use).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Setter publishes one collector-supplied counter value into a snapshot.
type Setter func(name string, v uint64)

// Registry is a namespace of counters, gauges and histograms plus lazy
// collectors. The zero value is not usable; create one with NewRegistry.
//
// Instrument lookups (Counter, Gauge, Histogram) take a mutex and are meant
// for setup time; the returned instruments are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(Setter)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Collect registers fn to contribute point-in-time counter values whenever
// the registry is snapshotted. Collector-published names share the counter
// namespace; live counters with the same name are shadowed.
func (r *Registry) Collect(fn func(Setter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Reset zeroes every registered counter, gauge and histogram. Collectors
// are not touched: their sources (device stats, engine tx counters) own
// their own reset.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot is a point-in-time copy of a registry's values, suitable for
// rendering or JSON encoding. Map keys are metric names.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument and runs the collectors.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Load()
	}
	var gauges map[string]int64
	if len(r.gauges) > 0 {
		gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			gauges[name] = g.Load()
		}
	}
	var hists map[string]HistogramSnapshot
	if len(r.hists) > 0 {
		hists = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hists[name] = h.Snapshot()
		}
	}
	collectors := r.collectors
	r.mu.Unlock()
	// Collectors run outside the registry lock: they read foreign state
	// (device stats, engine counters) that must not nest under r.mu.
	set := func(name string, v uint64) { counters[name] = v }
	for _, fn := range collectors {
		fn(set)
	}
	return Snapshot{Counters: counters, Gauges: gauges, Histograms: hists}
}

// WriteJSON writes the snapshot as a single indented JSON object. Go
// marshals map keys in sorted order, so the output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText renders the snapshot as sorted "name value" lines, one metric
// per line, in the expvar/Prometheus exposition spirit. Histograms expand
// into _count, _sum, _max, _mean, _p50 and _p99 lines.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, h.Count),
			fmt.Sprintf("%s_sum %d", name, h.Sum),
			fmt.Sprintf("%s_max %d", name, h.Max),
			fmt.Sprintf("%s_mean %s", name, trimFloat(h.Mean)),
			fmt.Sprintf("%s_p50 %d", name, h.P50),
			fmt.Sprintf("%s_p99 %d", name, h.P99),
		)
	}
	sort.Strings(lines)
	_, err := io.WriteString(w, strings.Join(lines, "\n")+"\n")
	return err
}

// trimFloat formats a mean with two decimals, trimming trailing zeros so
// integral means render as plain integers.
func trimFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
