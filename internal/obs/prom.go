package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): every live counter (and collector value) as TYPE
// counter, gauges as TYPE gauge, histograms as TYPE histogram with
// cumulative `le` buckets plus _sum and _count. Metric families are sorted
// by name, so the output is deterministic and golden-testable.
//
// The registry's histograms bucket observations by powers of two
// (bucketIndex = bits.Len64), stored as per-bucket counts with inclusive
// upper edges 0, 1, 3, 7, ... 2^i-1; Prometheus buckets are cumulative, so
// the per-bucket counts are summed here. Empty buckets are elided — the
// cumulative sums lose nothing — keeping a 65-bucket histogram's exposition
// near the size of its occupied range.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for _, bk := range h.Buckets {
			if bk.Count == 0 {
				continue
			}
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", name, promLe(bk.Le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promLe renders a bucket's inclusive upper edge. The histogram's top
// bucket stores ^uint64(0) as its edge; Prometheus spells that "+Inf", and
// emitting it here would shadow the explicit +Inf line, so it is rendered
// as the true maximal value (it can only carry observations of 2^63 and
// up, which no latency or count metric produces).
func promLe(le uint64) string {
	if le == math.MaxUint64 {
		return "1.8446744073709552e+19"
	}
	return fmt.Sprintf("%d", le)
}
