package obs

import (
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Instrument attaches dev to the registry: a collector publishes the
// device's persistence counters as the canonical pmem_* metric set on
// every snapshot. The data path pays nothing — the device already
// maintains these counters atomically — and the device's hook slot stays
// free for crash schedulers.
//
// Metrics published (see docs/OBSERVABILITY.md):
//
//	pmem_store_total, pmem_store_bytes_total, pmem_pwb_total,
//	pmem_pfence_total, pmem_psync_total, pmem_fence_total,
//	pmem_line_persisted_total, pmem_persisted_bytes_total
//
// Counters reflect the device since its last ResetStats; reset the device
// after setup work to scope metrics to the measured workload.
func Instrument(dev *pmem.Device, r *Registry) {
	r.Collect(func(set Setter) {
		s := dev.Stats()
		set("pmem_store_total", s.Stores)
		set("pmem_store_bytes_total", s.BytesStored)
		set("pmem_pwb_total", s.Pwbs)
		set("pmem_pfence_total", s.Pfences)
		set("pmem_psync_total", s.Psyncs)
		set("pmem_fence_total", s.Pfences+s.Psyncs)
		set("pmem_line_persisted_total", s.LinesPersisted)
		set("pmem_persisted_bytes_total", s.BytesPersisted)
	})
}

// InstrumentPTM attaches an engine's transaction counters to the registry
// under the canonical ptm_* names, again as a zero-overhead collector:
//
//	ptm_update_tx_total, ptm_read_tx_total, ptm_abort_total,
//	ptm_rollback_total, ptm_combined_total, ptm_batch_total,
//	ptm_batch_ops_total, ptm_batch_combine_ns_total
//
// Every engine in the repository reports the same schema, so tools can
// compare engines without per-engine cases. The ptm_batch_* gauges stay zero
// for engines without a flat-combined batch commit path.
func InstrumentPTM(e ptm.PTM, r *Registry) {
	r.Collect(func(set Setter) {
		s := e.Stats()
		set("ptm_update_tx_total", s.UpdateTxs)
		set("ptm_read_tx_total", s.ReadTxs)
		set("ptm_abort_total", s.Aborts)
		set("ptm_rollback_total", s.Rollbacks)
		set("ptm_combined_total", s.Combined)
		set("ptm_batch_total", s.Batches)
		set("ptm_batch_ops_total", s.BatchOps)
		set("ptm_batch_combine_ns_total", s.CombineNs)
	})
}

// Traceable is implemented by every engine that can emit per-transaction
// trace events. SetTrace must be called at a quiescent point (no
// transactions in flight); a nil sink disables tracing.
type Traceable interface {
	SetTrace(Sink)
}
