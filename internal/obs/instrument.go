package obs

import (
	"repro/internal/hist"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Instrument attaches dev to the registry: a collector publishes the
// device's persistence counters as the canonical pmem_* metric set on
// every snapshot. The data path pays nothing — the device already
// maintains these counters atomically — and the device's hook slot stays
// free for crash schedulers.
//
// Metrics published (see docs/OBSERVABILITY.md):
//
//	pmem_store_total, pmem_store_bytes_total, pmem_pwb_total,
//	pmem_pfence_total, pmem_psync_total, pmem_fence_total,
//	pmem_line_persisted_total, pmem_persisted_bytes_total
//
// Counters reflect the device since its last ResetStats; reset the device
// after setup work to scope metrics to the measured workload.
func Instrument(dev *pmem.Device, r *Registry) {
	r.Collect(func(set Setter) {
		s := dev.Stats()
		set("pmem_store_total", s.Stores)
		set("pmem_store_bytes_total", s.BytesStored)
		set("pmem_pwb_total", s.Pwbs)
		set("pmem_pfence_total", s.Pfences)
		set("pmem_psync_total", s.Psyncs)
		set("pmem_fence_total", s.Pfences+s.Psyncs)
		set("pmem_line_persisted_total", s.LinesPersisted)
		set("pmem_persisted_bytes_total", s.BytesPersisted)
	})
}

// InstrumentPTM attaches an engine's transaction counters to the registry
// under the canonical ptm_* names, again as a zero-overhead collector:
//
//	ptm_update_tx_total, ptm_read_tx_total, ptm_abort_total,
//	ptm_rollback_total, ptm_combined_total, ptm_batch_total,
//	ptm_batch_ops_total, ptm_batch_combine_ns_total,
//	ptm_replicate_bytes_total, ptm_replicate_extent_total
//
// Every engine in the repository reports the same schema, so tools can
// compare engines without per-engine cases. The ptm_batch_* gauges stay zero
// for engines without a flat-combined batch commit path, and the
// ptm_replicate_* gauges for engines without a twin-copy replication step.
//
// Engines that additionally expose their exact per-transaction pwb
// histogram (PwbHistogrammer — the core Romulus engines) also publish its
// shape as ptm_tx_pwb_p50, ptm_tx_pwb_p90, ptm_tx_pwb_p99 and
// ptm_tx_pwb_max, the distribution view behind the paper's §6.2 analysis —
// a collapsed write-amplification fix shows up here as the p99 falling to
// the dirty-line count rather than the watermark's line count.
func InstrumentPTM(e ptm.PTM, r *Registry) {
	ph, _ := e.(PwbHistogrammer)
	r.Collect(func(set Setter) {
		s := e.Stats()
		set("ptm_update_tx_total", s.UpdateTxs)
		set("ptm_read_tx_total", s.ReadTxs)
		set("ptm_abort_total", s.Aborts)
		set("ptm_rollback_total", s.Rollbacks)
		set("ptm_combined_total", s.Combined)
		set("ptm_batch_total", s.Batches)
		set("ptm_batch_ops_total", s.BatchOps)
		set("ptm_batch_combine_ns_total", s.CombineNs)
		set("ptm_replicate_bytes_total", s.ReplicatedBytes)
		set("ptm_replicate_extent_total", s.ReplicateExtents)
		if ph != nil {
			h := ph.PwbHistogram()
			if h.Count() > 0 {
				set("ptm_tx_pwb_p50", h.Quantile(0.50))
				set("ptm_tx_pwb_p90", h.Quantile(0.90))
				set("ptm_tx_pwb_p99", h.Quantile(0.99))
				set("ptm_tx_pwb_max", h.Max())
			}
		}
	})
}

// PwbHistogrammer is implemented by engines that keep an exact histogram of
// pwb instructions issued per committed update transaction (the core
// Romulus engines). InstrumentPTM publishes its quantiles as the
// ptm_tx_pwb_* series. The histogram is read when the registry snapshots;
// engines that only tolerate quiescent reads (the core engines update the
// histogram from the single writer without synchronization) inherit the
// registry owner's obligation to snapshot at quiescent points, which is
// when every in-repo harness does.
type PwbHistogrammer interface {
	PwbHistogram() hist.Histogram
}

// Traceable is implemented by every engine that can emit per-transaction
// trace events. SetTrace must be called at a quiescent point (no
// transactions in flight); a nil sink disables tracing.
type Traceable interface {
	SetTrace(Sink)
}
