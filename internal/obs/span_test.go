package obs

import (
	"sync"
	"testing"
)

// TestSpanRecorderRingAndByReq pins ring retention and the per-request
// timeline join.
func TestSpanRecorderRingAndByReq(t *testing.T) {
	reg := NewRegistry()
	r := NewSpanRecorder(reg, 4)
	r.Emit(SpanEvent{Req: 1, Phase: PhaseParse, DurNs: 10})
	r.Emit(SpanEvent{Req: 1, Phase: PhaseRequest, DurNs: 50})
	r.Emit(SpanEvent{Req: 2, Phase: PhaseParse, DurNs: 20})
	if got := r.ByReq(1); len(got) != 2 || got[0].Phase != PhaseParse || got[1].Phase != PhaseRequest {
		t.Fatalf("ByReq(1) = %+v", got)
	}
	// Overflow the 4-slot ring; req 1's spans are evicted.
	for i := 0; i < 4; i++ {
		r.Emit(SpanEvent{Req: 3, Phase: PhaseQueueWait, DurNs: 1})
	}
	if got := r.ByReq(1); len(got) != 0 {
		t.Fatalf("ByReq(1) after eviction = %+v, want empty", got)
	}
	if r.Total() != 7 {
		t.Fatalf("Total = %d, want 7", r.Total())
	}

	// Each phase fed its histogram.
	s := reg.Snapshot()
	if c := s.Histograms["net_span_parse_ns"].Count; c != 2 {
		t.Errorf("net_span_parse_ns count = %d, want 2", c)
	}
	if c := s.Histograms["net_span_queue_wait_ns"].Count; c != 4 {
		t.Errorf("net_span_queue_wait_ns count = %d, want 4", c)
	}
	if c := s.Histograms["net_span_request_ns"].Count; c != 1 {
		t.Errorf("net_span_request_ns count = %d, want 1", c)
	}
}

// TestSpanRecorderConcurrentEmit exercises Emit from many goroutines under
// the race detector.
func TestSpanRecorderConcurrentEmit(t *testing.T) {
	r := NewSpanRecorder(nil, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Emit(SpanEvent{Req: uint64(g*1000 + i), Phase: PhasePsyncWait, DurNs: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 1600 {
		t.Fatalf("Total = %d, want 1600", r.Total())
	}
	if got := len(r.Events()); got != 64 {
		t.Fatalf("retained %d events, want 64", got)
	}
}
