package obs

import (
	"math/bits"
	"sync/atomic"
)

// numBuckets covers the full uint64 range: bucket 0 holds the sample 0 and
// bucket i (1 <= i <= 64) holds samples in [2^(i-1), 2^i).
const numBuckets = 65

// Histogram is a lock-free power-of-two-bucket histogram for latency and
// size distributions. Observe is a handful of atomic adds — no allocation,
// no locking — at the cost of bucket-granular (factor-of-two) quantiles,
// which is exactly the fidelity the paper's latency discussion needs.
//
// The zero value is ready to use; obtain shared instances from a Registry.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// bucketIndex returns the bucket for sample v: 0 for 0, otherwise the bit
// length of v (so powers of two open a new bucket: 1→1, 2→2, 4→3, ...).
func bucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the half-open sample range [lo, hi) of bucket i;
// bucket 0 is the degenerate range [0, 1). For i = 64, hi wraps to 0 and
// means "no upper bound".
func BucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// histAccum locally aggregates samples destined for one Histogram so a batch
// can merge with a handful of atomic operations instead of four per sample.
// The span recorder's EmitBatch uses one per phase: without it, every flushed
// request costs ~24 contended atomic RMWs on shared histogram cache lines.
type histAccum struct {
	count, sum, max uint64
	lo, hi          int // touched bucket range [lo, hi]; scan only that
	buckets         [numBuckets]uint32
}

func (a *histAccum) add(v uint64) {
	i := bucketIndex(v)
	if a.count == 0 || i < a.lo {
		a.lo = i
	}
	if i > a.hi {
		a.hi = i
	}
	a.buckets[i]++
	a.count++
	a.sum += v
	if v > a.max {
		a.max = v
	}
}

// mergeInto applies the aggregate to h and resets the accumulator.
func (a *histAccum) mergeInto(h *Histogram) {
	if a.count == 0 {
		return
	}
	for i := a.lo; i <= a.hi; i++ {
		if c := a.buckets[i]; c != 0 {
			h.buckets[i].Add(uint64(c))
			a.buckets[i] = 0
		}
	}
	h.count.Add(a.count)
	h.sum.Add(a.sum)
	for {
		cur := h.max.Load()
		if a.max <= cur || h.max.CompareAndSwap(cur, a.max) {
			break
		}
	}
	a.count, a.sum, a.max, a.lo, a.hi = 0, 0, 0, 0, 0
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest sample recorded (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// inclusive upper edge of the bucket holding the q-th sample. Concurrent
// Observe calls may skew the answer by the in-flight samples.
func (h *Histogram) Quantile(q float64) uint64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(c))
	if target >= c {
		target = c - 1
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			_, hi := BucketBounds(i)
			if hi == 0 { // top bucket: no finite power-of-two upper edge
				return h.Max()
			}
			return hi - 1
		}
	}
	return h.Max()
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// HistogramSnapshot is a point-in-time summary of a Histogram, with the
// non-empty power-of-two buckets listed in ascending order.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P99   uint64  `json:"p99"`
	// Buckets maps the inclusive upper bucket edge (1, 2, 4, 8, ...; 0 for
	// the zero bucket) to its sample count. Empty buckets are omitted.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	// Le is the inclusive upper sample bound of the bucket: 0 for the zero
	// bucket, otherwise 2^i - 1.
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot summarizes the histogram. Taken bucket-by-bucket without a lock;
// concurrent Observe calls may leave the totals ahead of the buckets by the
// in-flight samples.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P99:   h.Quantile(0.99),
	}
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		le := uint64(0)
		if i > 0 && i < 64 {
			le = (uint64(1) << i) - 1
		} else if i >= 64 {
			le = ^uint64(0)
		}
		s.Buckets = append(s.Buckets, BucketCount{Le: le, Count: c})
	}
	return s
}
