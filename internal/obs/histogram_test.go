package obs

import (
	"sync"
	"testing"
)

// TestBucketBoundaries pins the power-of-two bucketing: 0 lands in the
// degenerate zero bucket, each power of two opens a new bucket, and every
// bucket's half-open range [lo, hi) round-trips through BucketBounds.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 10, 11}, {(1 << 11) - 1, 11},
		{1 << 62, 63},
		{1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := BucketBounds(c.bucket)
		if c.v < lo {
			t.Errorf("value %d below bucket %d range [%d, %d)", c.v, c.bucket, lo, hi)
		}
		if hi != 0 && c.v >= hi {
			t.Errorf("value %d at/above bucket %d upper bound %d", c.v, c.bucket, hi)
		}
	}
	// Ranges must tile with no gap: bucket i's hi is bucket i+1's lo.
	for i := 1; i < 63; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi != lo {
			t.Errorf("gap between bucket %d (hi %d) and %d (lo %d)", i, hi, i+1, lo)
		}
	}
}

func TestHistogramSnapshotEdges(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 || s.Sum != 0+1+2+3+4+1023+1024 || s.Max != 1024 {
		t.Fatalf("count/sum/max = %d/%d/%d", s.Count, s.Sum, s.Max)
	}
	// Expected non-empty buckets: le=0 (sample 0), le=1 (1), le=3 (2,3),
	// le=7 (4), le=1023 (1023), le=2047 (1024).
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1, 2047: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want edges %v", s.Buckets, want)
	}
	prev := int64(-1)
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
		if int64(b.Le) <= prev {
			t.Errorf("buckets not ascending at le=%d", b.Le)
		}
		prev = int64(b.Le)
	}
}

// TestQuantileUpperBound checks that Quantile returns the inclusive upper
// edge of the bucket holding the q-th sample, and that it is always an
// upper bound for the true quantile.
func TestQuantileUpperBound(t *testing.T) {
	var h Histogram
	// 100 samples of value 4 (bucket [4,8), edge 7) and 1 of 1000
	// (bucket [512,1024), edge 1023).
	for i := 0; i < 100; i++ {
		h.Observe(4)
	}
	h.Observe(1000)
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("p50 = %d, want 7", got)
	}
	if got := h.Quantile(0.99); got != 7 {
		t.Errorf("p99 = %d, want 7 (100/101 samples are 4)", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Errorf("p100 = %d, want 1023", got)
	}
	if got := h.Quantile(0); got != 7 {
		t.Errorf("p0 = %d, want 7", got)
	}

	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}

	// Top bucket has no finite power-of-two edge; Quantile falls back to Max.
	var top Histogram
	top.Observe(1 << 63)
	if got := top.Quantile(0.5); got != 1<<63 {
		t.Errorf("top-bucket p50 = %d, want 2^63 (Max fallback)", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, iters = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h.Observe(uint64(g + 1))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*iters {
		t.Fatalf("count = %d, want %d", got, goroutines*iters)
	}
	if got := h.Max(); got != goroutines {
		t.Fatalf("max = %d, want %d", got, goroutines)
	}
}
