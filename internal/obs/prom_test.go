package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePromGolden pins the Prometheus exposition byte-for-byte: TYPE
// lines, sorted families, cumulative le buckets derived from the
// power-of-two per-bucket counts, and the +Inf/_sum/_count triple.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("beta_total").Add(7)
	r.Counter("alpha_total").Add(2)
	r.Gauge("live_conns").Set(3)
	h := r.Histogram("lat_ns")
	h.Observe(0) // zero bucket, le="0"
	h.Observe(1) // le="1"
	h.Observe(1)
	h.Observe(5) // le="7"
	h.Observe(6)
	h.Observe(100) // le="127"

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE alpha_total counter",
		"alpha_total 2",
		"# TYPE beta_total counter",
		"beta_total 7",
		"# TYPE live_conns gauge",
		"live_conns 3",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="0"} 1`,
		`lat_ns_bucket{le="1"} 3`,
		`lat_ns_bucket{le="7"} 5`,
		`lat_ns_bucket{le="127"} 6`,
		`lat_ns_bucket{le="+Inf"} 6`,
		"lat_ns_sum 113",
		"lat_ns_count 6",
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestWritePromTopBucket pins that the maximal bucket renders as a finite
// edge distinct from the explicit +Inf line, so scrapers never see a
// duplicate label.
func TestWritePromTopBucket(t *testing.T) {
	r := NewRegistry()
	r.Histogram("big").Observe(^uint64(0))
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, `le="+Inf"`) != 1 {
		t.Fatalf("want exactly one +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `big_bucket{le="1.8446744073709552e+19"} 1`) {
		t.Fatalf("maximal bucket missing finite edge:\n%s", out)
	}
}

// TestWritePromCollector pins that collector-contributed values expose as
// counters like live ones.
func TestWritePromCollector(t *testing.T) {
	r := NewRegistry()
	r.Collect(func(set Setter) { set("dev_pwb_total", 11) })
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE dev_pwb_total counter\ndev_pwb_total 11\n") {
		t.Fatalf("collector value missing:\n%s", buf.String())
	}
}
