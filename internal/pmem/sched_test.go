package pmem

import (
	"sync"
	"testing"
)

// TestSchedulerCapturesAtTarget checks the scheduler captures exactly at
// the armed event and that the image reflects the media at that instant.
func TestSchedulerCapturesAtTarget(t *testing.T) {
	d := New(4096, ModelDRAM)
	s := NewScheduler(d)
	defer s.Detach()

	// Each iteration: one store event, one pwb event, one fence event.
	if !s.Arm(5, DropAll) {
		t.Fatal("arm refused with no budget set")
	}
	for i := 0; i < 4; i++ {
		d.Store64(i*64, uint64(i+1))
		d.Pwb(i * 64)
		d.Pfence()
	}
	img, ev := s.Image()
	if img == nil {
		t.Fatal("no image captured")
	}
	if ev != 5 {
		t.Fatalf("captured at event %d, want 5", ev)
	}
	// Event 5 is the pwb of iteration 1 (events 1,2,3 from iteration 0,
	// 4 = store, 5 = pwb). Under DropAll the pwb queued the line but no
	// fence ran, so word 64 must still be zero in the image while word 0
	// (fenced in iteration 0) must hold 1.
	rd := FromImage(img, ModelDRAM)
	if got := rd.Load64(0); got != 1 {
		t.Errorf("word 0 = %d, want 1 (fenced before crash)", got)
	}
	if got := rd.Load64(64); got != 0 {
		t.Errorf("word 64 = %d, want 0 (unfenced at crash)", got)
	}
	if s.Crashes() != 1 {
		t.Errorf("crashes = %d, want 1", s.Crashes())
	}
}

// TestSchedulerBudget checks the per-campaign crash budget bounds the number
// of captures across re-arms.
func TestSchedulerBudget(t *testing.T) {
	d := New(4096, ModelDRAM)
	s := NewScheduler(d)
	defer s.Detach()
	s.SetBudget(2)

	for i := 0; i < 2; i++ {
		if !s.Arm(1, KeepQueued) {
			t.Fatalf("arm %d refused within budget", i)
		}
		d.Store64(0, uint64(i))
		if !s.Captured() {
			t.Fatalf("arm %d did not fire", i)
		}
	}
	if s.Arm(1, KeepQueued) {
		t.Error("arm succeeded past budget")
	}
	if img := s.CaptureNow(KeepQueued); img != nil {
		t.Error("CaptureNow succeeded past budget")
	}
	if s.Crashes() != 2 {
		t.Errorf("crashes = %d, want 2", s.Crashes())
	}
}

// TestSchedulerRearmAcrossDevices exercises nested arming: a crash image is
// captured mid-write, and a second scheduler on the image's device captures
// again during the "recovery" writes — the crash-chain building block.
func TestSchedulerRearmAcrossDevices(t *testing.T) {
	d := New(4096, ModelDRAM)
	s := NewScheduler(d)
	s.Arm(2, DropAll)
	d.Store64(0, 7)
	d.Pwb(0)
	d.Pfence()
	img1, _ := s.Image()
	if img1 == nil {
		t.Fatal("first crash did not fire")
	}
	s.Detach()

	d2 := FromImage(img1, ModelDRAM)
	s2 := NewScheduler(d2)
	s2.Arm(3, KeepQueued)
	// Simulated recovery: rewrite and persist the word.
	d2.Store64(0, 7)
	d2.Pwb(0)
	d2.Pfence()
	img2, ev := s2.Image()
	if img2 == nil {
		t.Fatal("nested crash did not fire")
	}
	if ev != 3 {
		t.Errorf("nested crash at event %d, want 3", ev)
	}
	s2.Detach()
	d3 := FromImage(img2, ModelDRAM)
	if got := d3.Load64(0); got != 7 {
		t.Errorf("word 0 = %d after chained crash, want 7", got)
	}
}

// TestHookInstallRace arms and disarms schedulers and swaps raw hooks while
// a worker goroutine drives the data path. Run under -race this proves hook
// installation/invocation is race-safe (the concurrent harness depends on
// it). The single storing goroutine respects the device's one-mutator
// contract; only the hook slots are contended.
func TestHookInstallRace(t *testing.T) {
	d := New(1<<16, ModelDRAM)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			off := (i % 1024) * 64
			d.Store64(off, uint64(i))
			d.Pwb(off)
			if i%8 == 0 {
				d.Pfence()
			}
		}
	}()
	for round := 0; round < 200; round++ {
		s := NewScheduler(d)
		s.SetBudget(1)
		s.Arm(uint64(1+round%32), DropAll)
		if round%3 == 0 {
			s.Captured() // control-plane reads race-free too
			s.Events()
		}
		s.Disarm()
		s.Detach()
		// Raw hook churn as well.
		d.SetHooks(&Hooks{
			Store: func(uint64) {},
			Pwb:   func(uint64) {},
			Fence: func() {},
		})
		d.SetHooks(nil)
	}
	close(stop)
	wg.Wait()
}

// TestSchedulerConcurrentArmCapture checks an Arm from the harness
// goroutine concurrent with events on a worker goroutine still yields a
// valid capture (and never a torn image slot).
func TestSchedulerConcurrentArmCapture(t *testing.T) {
	d := New(1<<14, ModelDRAM)
	s := NewScheduler(d)
	defer s.Detach()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d.Store64((i%128)*64, uint64(i))
		}
	}()
	captures := 0
	for round := 0; round < 100; round++ {
		s.Arm(3, KeepQueued)
		for s.Events() < uint64(round*10) { // let events accumulate
		}
		if img, _ := s.Image(); img != nil {
			captures++
			if len(img) != d.Size() {
				t.Fatalf("torn image: %d bytes, device %d", len(img), d.Size())
			}
		}
	}
	close(stop)
	wg.Wait()
	if captures == 0 {
		t.Error("no captures landed while worker was storing")
	}
}
