package pmem

import (
	"sync"
	"sync/atomic"
)

// Scheduler is a deterministic crash-point scheduler for fault-injection
// campaigns. It claims the Device's hook slot and counts every persistence
// event (store, pwb, pfence/psync) with an atomic counter. When armed, it
// captures a crash image — the media contents a power failure at that exact
// event would leave behind — at the first event at or past the armed
// target, without disturbing the running workload.
//
// Crash-point numbering: event indices form one global sequence over all
// three event types, in program order on the mutating goroutine. Every
// store counts as one event (a StoreBytes or CopyWithin of any length is
// ONE store), every Pwb as one (a PwbRange of k lines is k events), and
// every Pfence or Psync as one. The first event after attach has index 1,
// and Arm targets are absolute positions in this sequence relative to the
// current count: Arm(1, p) captures at the very next event. Because the
// transactional layers serialize mutators, the numbering is deterministic
// for a deterministic single-threaded workload — the property crash-chain
// campaigns rely on to replay a failure from its recorded event index.
//
// Capturing instead of halting lets a single pass enumerate crash points:
// the workload runs to completion, and recovery is exercised separately on
// each captured image. Re-arming a fresh Scheduler on a device built from a
// captured image *before* opening it lands the next crash inside the
// engine's recovery (or format) code — chaining crash → partial recovery →
// crash, as deep as the crash budget allows.
//
// The Scheduler is goroutine-safe on the control plane: Arm, Disarm,
// Captured, Image and Events may be called from a harness goroutine while
// worker goroutines drive the device. The capture itself runs on the
// mutating goroutine, inside the persistence primitive that triggered it,
// so it never races with the (single) mutator.
type Scheduler struct {
	dev   *Device
	hooks *Hooks // the bundle NewScheduler installed

	events atomic.Uint64 // persistence events observed since attach
	armed  atomic.Bool   // fast path: is a capture pending?

	mu       sync.Mutex // guards everything below
	target   uint64     // absolute event index to crash at
	policy   CrashPolicy
	img      []byte // captured image, nil until the crash fires
	imgEvent uint64 // event index the image was captured at
	crashes  int    // captures taken so far
	budget   int    // max captures; 0 means unlimited
}

// NewScheduler attaches a scheduler to dev, replacing any hook bundle
// previously installed on it. The scheduler starts disarmed: events are
// counted but no crash is pending until Arm.
func NewScheduler(dev *Device) *Scheduler {
	s := &Scheduler{dev: dev}
	n := func(uint64) { s.tick() }
	s.hooks = &Hooks{Store: n, Pwb: n, Fence: func() { s.tick() }}
	dev.SetHooks(s.hooks)
	return s
}

// Hooks returns the scheduler's hook bundle so a harness can compose it with
// other observers via ChainHooks and reinstall the composition with
// SetHooks. The bundle itself is immutable after NewScheduler.
func (s *Scheduler) Hooks() *Hooks { return s.hooks }

// Detach removes the scheduler's hooks from the device. Events stop
// counting; a pending arm never fires.
func (s *Scheduler) Detach() {
	s.armed.Store(false)
	s.dev.SetHooks(nil)
}

// SetBudget bounds the total number of captures (Arm + CaptureNow) this
// scheduler may take; 0 means unlimited. The budget is what keeps a crash
// chain finite.
func (s *Scheduler) SetBudget(n int) {
	s.mu.Lock()
	s.budget = n
	s.mu.Unlock()
}

// Arm schedules a crash image capture at the eventsFromNow-th persistence
// event from now (1 means the very next event) under the given policy,
// clearing any previously captured image. It reports false if the crash
// budget is exhausted, in which case nothing is armed.
func (s *Scheduler) Arm(eventsFromNow uint64, policy CrashPolicy) bool {
	if eventsFromNow == 0 {
		eventsFromNow = 1
	}
	s.mu.Lock()
	if s.budget > 0 && s.crashes >= s.budget {
		s.mu.Unlock()
		return false
	}
	s.img = nil
	s.imgEvent = 0
	s.policy = policy
	s.target = s.events.Load() + eventsFromNow
	s.mu.Unlock()
	s.armed.Store(true)
	return true
}

// Disarm cancels a pending crash without detaching the hooks. Any already
// captured image is kept.
func (s *Scheduler) Disarm() { s.armed.Store(false) }

// tick is the shared hook body: count the event and, if the armed target
// has been reached, capture the crash image. Runs on the mutating
// goroutine.
func (s *Scheduler) tick() {
	n := s.events.Add(1)
	if !s.armed.Load() {
		return
	}
	s.mu.Lock()
	if s.armed.Load() && s.img == nil && n >= s.target {
		s.img = s.dev.CrashImage(s.policy)
		s.imgEvent = n
		s.crashes++
		s.armed.Store(false)
	}
	s.mu.Unlock()
}

// CaptureNow takes an immediate crash image under policy (for post-workload
// quiescent crashes), counting it against the budget. It returns nil if the
// budget is exhausted. Call only from the harness at a quiescent point, or
// from a hook on the mutating goroutine.
func (s *Scheduler) CaptureNow(policy CrashPolicy) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && s.crashes >= s.budget {
		return nil
	}
	s.armed.Store(false)
	s.img = s.dev.CrashImage(policy)
	s.imgEvent = s.events.Load()
	s.crashes++
	return s.img
}

// Captured reports whether an armed crash has fired since the last Arm.
func (s *Scheduler) Captured() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.img != nil
}

// Image returns the captured crash image and the event index it was taken
// at, or nil and 0 if no crash has fired since the last Arm.
func (s *Scheduler) Image() ([]byte, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.img, s.imgEvent
}

// Events returns the number of persistence events observed since attach.
func (s *Scheduler) Events() uint64 { return s.events.Load() }

// Crashes returns the number of captures taken so far.
func (s *Scheduler) Crashes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes
}
