package pmem

import (
	"bytes"
	"testing"
)

// TestMultiSchedulerSharedSequence pins that events on every member advance
// one shared counter and that the armed capture snapshots ALL members at the
// same instant, regardless of which member's primitive triggered it.
func TestMultiSchedulerSharedSequence(t *testing.T) {
	a := New(4*LineSize, ModelDRAM)
	b := New(4*LineSize, ModelDRAM)
	ms := NewMultiScheduler(a, b)
	ms.Attach()
	defer ms.Detach()

	// 3 events on a, then arm 2 ahead: the next event on EITHER member
	// counts, and the second one (a store on b) triggers the capture.
	a.Store64(0, 1)
	a.Pwb(0)
	a.Pfence()
	if got := ms.Events(); got != 3 {
		t.Fatalf("events after a's burst = %d, want 3", got)
	}
	ms.Arm(2, DropAll)
	a.Store64(64, 2) // event 4
	a.Pwb(64)        // event 5 — target reached, capture fires here
	if !ms.Captured() {
		t.Fatal("armed capture did not fire")
	}
	imgs, ev := ms.Images()
	if ev != 5 {
		t.Fatalf("capture event = %d, want 5", ev)
	}
	if len(imgs) != 2 {
		t.Fatalf("captured %d images, want 2", len(imgs))
	}
	// Under DropAll, a's fenced line 0 survives in a's image; the unfenced
	// store at 64 does not. b never fenced anything, so its image is zero.
	if v := load64(imgs[0], 0); v != 1 {
		t.Fatalf("member a image lost fenced data: %d", v)
	}
	if v := load64(imgs[0], 64); v != 0 {
		t.Fatalf("member a image kept unfenced store: %d", v)
	}
	if !bytes.Equal(imgs[1], make([]byte, b.Size())) {
		t.Fatal("member b image should be all-zero")
	}
}

// TestMultiSchedulerCapturesEveryMember pins that a capture triggered by one
// member reflects the exact durable state of the others at that moment.
func TestMultiSchedulerCapturesEveryMember(t *testing.T) {
	a := New(2*LineSize, ModelDRAM)
	b := New(2*LineSize, ModelDRAM)
	ms := NewMultiScheduler(a, b)
	ms.Attach()
	defer ms.Detach()

	// Persist 7 on b, then store-without-fence 9 on b, then trigger on a.
	b.Store64(0, 7)
	b.Pwb(0)
	b.Pfence()
	b.Store64(8, 9)
	ms.Arm(1, DropAll)
	a.Store64(0, 1) // trigger
	imgs, _ := ms.Images()
	if imgs == nil {
		t.Fatal("no capture")
	}
	if v := load64(imgs[1], 0); v != 7 {
		t.Fatalf("member b fenced word = %d, want 7", v)
	}
	if v := load64(imgs[1], 8); v != 0 {
		t.Fatalf("member b unfenced word leaked into DropAll image: %d", v)
	}
}

// TestMultiSchedulerBudget pins that the capture budget bounds Arm and
// CaptureNow across the whole member set.
func TestMultiSchedulerBudget(t *testing.T) {
	a := New(LineSize, ModelDRAM)
	b := New(LineSize, ModelDRAM)
	ms := NewMultiScheduler(a, b)
	ms.Attach()
	defer ms.Detach()
	ms.SetBudget(1)
	if imgs := ms.CaptureNow(DropAll); imgs == nil {
		t.Fatal("first capture should be within budget")
	}
	if ms.Arm(1, DropAll) {
		t.Fatal("Arm should fail once the budget is spent")
	}
	if imgs := ms.CaptureNow(DropAll); imgs != nil {
		t.Fatal("CaptureNow should fail once the budget is spent")
	}
}

func load64(img []byte, off int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(img[off+i])
	}
	return v
}
