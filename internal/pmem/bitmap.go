package pmem

import "math/bits"

// bitmap is a fixed-size bit set used to track cache-line state. It is only
// touched by the single mutator, so no synchronization is needed.
type bitmap struct {
	words []uint64
}

func newBitmap(n int) bitmap {
	return bitmap{words: make([]uint64, (n+63)/64)}
}

func (b bitmap) set(i int)       { b.words[i>>6] |= 1 << uint(i&63) }
func (b bitmap) clear(i int)     { b.words[i>>6] &^= 1 << uint(i&63) }
func (b bitmap) test(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitmap) reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// forEach calls fn for every set bit, in ascending order.
func (b bitmap) forEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
