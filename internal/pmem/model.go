package pmem

import "time"

// Model describes how the persistence primitives behave and what they cost.
// The five predefined models mirror the configurations evaluated in §6.6 of
// the paper (Figure 9).
type Model struct {
	// Name identifies the model in benchmark output.
	Name string
	// OrderedPwb marks write-backs as self-ordering and synchronous, like
	// CLFLUSH: the line is persisted at Pwb time and fences add nothing
	// (beyond their latency, which is zero for CLFLUSH).
	OrderedPwb bool
	// PwbLatency, PfenceLatency and PsyncLatency are injected busy-wait
	// delays per primitive, modelling slower media (STT-RAM, PCM).
	PwbLatency    time.Duration
	PfenceLatency time.Duration
	PsyncLatency  time.Duration
}

func (m Model) delayPwb()    { spin(m.PwbLatency) }
func (m Model) delayPfence() { spin(m.PfenceLatency) }
func (m Model) delayPsync()  { spin(m.PsyncLatency) }

// Predefined persistence models. Latencies for STT and PCM come from the
// paper (§6.1, citing Chauhan et al.): 140/200/200 ns and 340/500/500 ns for
// pwb/pfence/psync respectively.
var (
	// ModelCLWB: pwb maps to CLWB (unordered, cheap), fences to SFENCE.
	ModelCLWB = Model{Name: "clwb"}
	// ModelCLFLUSHOPT: pwb maps to CLFLUSHOPT (unordered, invalidating),
	// fences to SFENCE. Behaviourally identical to CLWB in this simulation;
	// kept separate so sweeps report both columns of Figure 9.
	ModelCLFLUSHOPT = Model{Name: "clflushopt"}
	// ModelCLFLUSH: pwb maps to CLFLUSH (ordered, synchronous), fences to
	// no-ops, the configuration of the paper's main test machine.
	ModelCLFLUSH = Model{Name: "clflush", OrderedPwb: true}
	// ModelSTT emulates STT-RAM media latency.
	ModelSTT = Model{
		Name:          "stt",
		PwbLatency:    140 * time.Nanosecond,
		PfenceLatency: 200 * time.Nanosecond,
		PsyncLatency:  200 * time.Nanosecond,
	}
	// ModelPCM emulates PCM media latency.
	ModelPCM = Model{
		Name:          "pcm",
		PwbLatency:    340 * time.Nanosecond,
		PfenceLatency: 500 * time.Nanosecond,
		PsyncLatency:  500 * time.Nanosecond,
	}
	// ModelDRAM is the default no-delay model used for the throughput
	// figures (supercapacitor-backed NVDIMMs, §6.1): unordered pwb, free
	// fences.
	ModelDRAM = Model{Name: "dram"}
)

// Models lists every predefined model in the order Figure 9 presents them.
var Models = []Model{ModelCLWB, ModelCLFLUSHOPT, ModelCLFLUSH, ModelSTT, ModelPCM}

// ModelByName returns the predefined model with the given name, or ok=false.
func ModelByName(name string) (Model, bool) {
	switch name {
	case "clwb":
		return ModelCLWB, true
	case "clflushopt":
		return ModelCLFLUSHOPT, true
	case "clflush":
		return ModelCLFLUSH, true
	case "stt":
		return ModelSTT, true
	case "pcm":
		return ModelPCM, true
	case "dram":
		return ModelDRAM, true
	}
	return Model{}, false
}
