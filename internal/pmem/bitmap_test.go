package pmem

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := newBitmap(200)
	for _, i := range []int{0, 63, 64, 127, 199} {
		if b.test(i) {
			t.Errorf("fresh bitmap has bit %d set", i)
		}
		b.set(i)
		if !b.test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	b.clear(64)
	if b.test(64) {
		t.Error("bit 64 still set after clear")
	}
	var got []int
	b.forEach(func(i int) { got = append(got, i) })
	want := []int{0, 63, 127, 199}
	if len(got) != len(want) {
		t.Fatalf("forEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forEach visited %v, want %v", got, want)
		}
	}
	b.reset()
	n := 0
	b.forEach(func(int) { n++ })
	if n != 0 {
		t.Errorf("reset left %d bits", n)
	}
}

// Property: forEach reports exactly the distinct set bits, ascending.
func TestQuickBitmapForEach(t *testing.T) {
	f := func(idxs []uint8) bool {
		b := newBitmap(256)
		uniq := map[int]bool{}
		for _, i := range idxs {
			b.set(int(i))
			uniq[int(i)] = true
		}
		var got []int
		b.forEach(func(i int) { got = append(got, i) })
		if len(got) != len(uniq) {
			return false
		}
		if !sort.IntsAreSorted(got) {
			return false
		}
		for _, i := range got {
			if !uniq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
