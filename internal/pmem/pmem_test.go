package pmem

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestStoreLoadRoundTrip(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store8(0, 0xAB)
	if got := d.Load8(0); got != 0xAB {
		t.Errorf("Load8 = %#x, want 0xAB", got)
	}
	d.Store16(2, 0xBEEF)
	if got := d.Load16(2); got != 0xBEEF {
		t.Errorf("Load16 = %#x, want 0xBEEF", got)
	}
	d.Store32(4, 0xDEADBEEF)
	if got := d.Load32(4); got != 0xDEADBEEF {
		t.Errorf("Load32 = %#x, want 0xDEADBEEF", got)
	}
	d.Store64(8, 0x0123456789ABCDEF)
	if got := d.Load64(8); got != 0x0123456789ABCDEF {
		t.Errorf("Load64 = %#x, want 0x0123456789ABCDEF", got)
	}
	src := []byte("persistent memory")
	d.StoreBytes(100, src)
	dst := make([]byte, len(src))
	d.LoadBytes(100, dst)
	if !bytes.Equal(src, dst) {
		t.Errorf("LoadBytes = %q, want %q", dst, src)
	}
}

func TestSizeRoundedToLine(t *testing.T) {
	d := New(100, ModelDRAM)
	if d.Size() != 128 {
		t.Errorf("Size = %d, want 128", d.Size())
	}
}

func TestStoreIsNotDurableWithoutFlush(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 42)
	d.Crash(DropAll)
	if got := d.Load64(0); got != 0 {
		t.Errorf("unflushed store survived crash: got %d, want 0", got)
	}
}

func TestPwbAloneIsNotDurableUnderUnorderedModel(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 42)
	d.Pwb(0)
	d.Crash(DropAll)
	if got := d.Load64(0); got != 0 {
		t.Errorf("queued-but-unfenced store survived DropAll crash: got %d, want 0", got)
	}
}

func TestPwbPlusFenceIsDurable(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 42)
	d.Pwb(0)
	d.Pfence()
	d.Crash(DropAll)
	if got := d.Load64(0); got != 42 {
		t.Errorf("fenced store lost at crash: got %d, want 42", got)
	}
}

func TestPsyncDrainsQueue(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(64, 7)
	d.Pwb(64)
	d.Psync()
	d.Crash(DropAll)
	if got := d.Load64(64); got != 7 {
		t.Errorf("psynced store lost at crash: got %d, want 7", got)
	}
}

func TestOrderedPwbIsImmediatelyDurable(t *testing.T) {
	d := New(4096, ModelCLFLUSH)
	d.Store64(0, 42)
	d.Pwb(0)
	// No fence: CLFLUSH is self-ordering.
	d.Crash(DropAll)
	if got := d.Load64(0); got != 42 {
		t.Errorf("CLFLUSH-flushed store lost at crash: got %d, want 42", got)
	}
}

func TestKeepQueuedPolicyPersistsUnfencedPwbs(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 42)
	d.Pwb(0)
	d.Crash(KeepQueued)
	if got := d.Load64(0); got != 42 {
		t.Errorf("KeepQueued dropped a queued line: got %d, want 42", got)
	}
}

func TestCrashDropsOnlyUnfencedLines(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 1) // fenced
	d.Pwb(0)
	d.Pfence()
	d.Store64(128, 2) // queued only
	d.Pwb(128)
	d.Store64(256, 3) // dirty only
	d.Crash(DropAll)
	if got := d.Load64(0); got != 1 {
		t.Errorf("fenced line lost: got %d", got)
	}
	if got := d.Load64(128); got != 0 {
		t.Errorf("queued line survived DropAll: got %d", got)
	}
	if got := d.Load64(256); got != 0 {
		t.Errorf("dirty line survived DropAll: got %d", got)
	}
}

func TestEvictDirtyProbPersistsDirtyLines(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 99) // never flushed
	d.Crash(CrashPolicy{EvictDirtyProb: 1})
	if got := d.Load64(0); got != 99 {
		t.Errorf("eviction policy did not persist dirty line: got %d, want 99", got)
	}
}

func TestTearWordsCanSplitALine(t *testing.T) {
	d := New(4096, ModelDRAM)
	for w := 0; w < 8; w++ {
		d.Store64(w*8, uint64(w+1))
	}
	d.Pwb(0)
	d.Crash(CrashPolicy{
		QueuedPersistProb: 0.5,
		TearWords:         true,
		Rand:              rand.New(rand.NewSource(7)),
	})
	kept, dropped := 0, 0
	for w := 0; w < 8; w++ {
		switch d.Load64(w * 8) {
		case uint64(w + 1):
			kept++
		case 0:
			dropped++
		default:
			t.Fatalf("word %d has impossible value %d", w, d.Load64(w*8))
		}
	}
	if kept == 0 || dropped == 0 {
		t.Errorf("expected a torn line with seed 7: kept=%d dropped=%d", kept, dropped)
	}
}

func TestFenceAfterCrashDoesNotResurrectOldQueue(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 42)
	d.Pwb(0)
	d.Crash(DropAll)
	d.Pfence() // must not persist the pre-crash line
	if got := d.Load64(0); got != 0 {
		t.Errorf("pre-crash queue drained after crash: got %d, want 0", got)
	}
}

func TestLineGranularityFlush(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 1)  // line 0
	d.Store64(64, 2) // line 1
	d.Pwb(0)         // flush only line 0
	d.Pfence()
	d.Crash(DropAll)
	if got := d.Load64(0); got != 1 {
		t.Errorf("line 0 lost: %d", got)
	}
	if got := d.Load64(64); got != 0 {
		t.Errorf("line 1 persisted without pwb: %d", got)
	}
}

func TestFlushPersistsWholeLine(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 1)
	d.Store64(56, 2) // same line, last word
	d.Pwb(8)         // any offset within the line
	d.Pfence()
	d.Crash(DropAll)
	if d.Load64(0) != 1 || d.Load64(56) != 2 {
		t.Errorf("whole line not persisted: %d %d", d.Load64(0), d.Load64(56))
	}
}

func TestPwbOfCleanLineIsNoop(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 1)
	d.Pwb(0)
	d.Pfence()
	before := d.Stats().LinesPersisted
	d.Pwb(0) // clean now
	d.Pfence()
	if after := d.Stats().LinesPersisted; after != before {
		t.Errorf("clean-line pwb persisted data: %d -> %d", before, after)
	}
}

func TestRedundantPwbsQueueLineOnce(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 1)
	d.Pwb(0)
	d.Pwb(0)
	d.Pwb(0)
	d.Pfence()
	if got := d.Stats().LinesPersisted; got != 1 {
		t.Errorf("LinesPersisted = %d, want 1", got)
	}
	if got := d.Stats().Pwbs; got != 3 {
		t.Errorf("Pwbs = %d, want 3", got)
	}
}

func TestStoreAfterPwbBeforeFenceIsVisibleInPersistedLine(t *testing.T) {
	// Real hardware may write back the line at fence time; our simulation
	// snapshots line content when the queue drains, which is one of the
	// legal outcomes. The algorithms never rely on the opposite.
	d := New(4096, ModelDRAM)
	d.Store64(0, 1)
	d.Pwb(0)
	d.Store64(8, 2) // same line, after pwb
	d.Pfence()
	d.Crash(DropAll)
	if got := d.Load64(8); got != 2 {
		t.Errorf("line snapshot at fence missed later store: got %d", got)
	}
}

func TestPwbRangeCoversAllLines(t *testing.T) {
	d := New(4096, ModelDRAM)
	for off := 0; off < 300; off += 8 {
		d.Store64(off, uint64(off+1))
	}
	d.PwbRange(0, 300)
	d.Pfence()
	d.Crash(DropAll)
	for off := 0; off < 300; off += 8 {
		if got := d.Load64(off); got != uint64(off+1) {
			t.Fatalf("offset %d lost: got %d", off, got)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 1)
	d.Store64(8, 2)
	d.StoreBytes(16, make([]byte, 10))
	d.Pwb(0)
	d.Pfence()
	d.Psync()
	s := d.Stats()
	if s.Stores != 3 {
		t.Errorf("Stores = %d, want 3", s.Stores)
	}
	if s.BytesStored != 26 {
		t.Errorf("BytesStored = %d, want 26", s.BytesStored)
	}
	if s.Pwbs != 1 || s.Pfences != 1 || s.Psyncs != 1 {
		t.Errorf("fence counters = %+v", s)
	}
	if s.LinesPersisted != 1 || s.BytesPersisted != LineSize {
		t.Errorf("persist counters = %+v", s)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Errorf("ResetStats left %+v", d.Stats())
	}
}

func TestCopyWithin(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.StoreBytes(0, []byte("twin-copy"))
	d.CopyWithin(2048, 0, 9)
	got := make([]byte, 9)
	d.LoadBytes(2048, got)
	if string(got) != "twin-copy" {
		t.Errorf("CopyWithin produced %q", got)
	}
	// Destination must be flushable like any store.
	d.PwbRange(2048, 9)
	d.Pfence()
	d.Crash(DropAll)
	d.LoadBytes(2048, got)
	if string(got) != "twin-copy" {
		t.Errorf("copied range not durable: %q", got)
	}
}

func TestMemset(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Memset(10, 0xFF, 20)
	for i := 10; i < 30; i++ {
		if d.Load8(i) != 0xFF {
			t.Fatalf("byte %d = %#x", i, d.Load8(i))
		}
	}
	if d.Load8(9) != 0 || d.Load8(30) != 0 {
		t.Error("Memset wrote outside its range")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "region.pm")
	d := New(4096, ModelDRAM)
	d.Store64(0, 77)
	d.Pwb(0)
	d.Pfence()
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadFile(path, ModelDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Load64(0); got != 77 {
		t.Errorf("reloaded region Load64 = %d, want 77", got)
	}
	if d2.Size() != 4096 {
		t.Errorf("reloaded size = %d", d2.Size())
	}
}

func TestLoadFileRejectsBadImages(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing"), ModelDRAM); err == nil {
		t.Error("LoadFile of missing file succeeded")
	}
	path := filepath.Join(t.TempDir(), "short.pm")
	d := New(LineSize, ModelDRAM)
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Truncate to a non-multiple of the line size.
	data := make([]byte, 10)
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, ModelDRAM); err == nil {
		t.Error("LoadFile of torn image succeeded")
	}
}

func TestPwbHookFiresAndCounts(t *testing.T) {
	d := New(4096, ModelDRAM)
	var seen []uint64
	d.SetHooks(&Hooks{Pwb: func(n uint64) { seen = append(seen, n) }})
	d.Store64(0, 1)
	d.Pwb(0)
	d.Pwb(0)
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("hook saw %v", seen)
	}
}

func TestStoreHookFires(t *testing.T) {
	d := New(4096, ModelDRAM)
	var n uint64
	d.SetHooks(&Hooks{Store: func(c uint64) { n = c }})
	d.Store64(0, 1)
	d.Store8(9, 2)
	if n != 2 {
		t.Errorf("store hook saw %d, want 2", n)
	}
}

func TestFenceHookFires(t *testing.T) {
	d := New(4096, ModelDRAM)
	n := 0
	d.SetHooks(&Hooks{Fence: func() { n++ }})
	d.Store64(0, 1)
	d.Pwb(0)
	d.Pfence()
	d.Psync()
	d.SetHooks(nil)
	d.Pfence()
	if n != 2 {
		t.Errorf("fence hook fired %d times, want 2", n)
	}
}

func TestModelByName(t *testing.T) {
	for _, m := range Models {
		got, ok := ModelByName(m.Name)
		if !ok || got.Name != m.Name {
			t.Errorf("ModelByName(%q) = %+v, %v", m.Name, got, ok)
		}
	}
	if _, ok := ModelByName("nvdimm-z"); ok {
		t.Error("ModelByName accepted unknown name")
	}
	if m, ok := ModelByName("dram"); !ok || m.OrderedPwb {
		t.Errorf("dram model = %+v, %v", m, ok)
	}
}

func TestPersistAll(t *testing.T) {
	d := New(4096, ModelDRAM)
	d.Store64(0, 5)
	d.Store64(512, 6)
	d.PersistAll()
	d.Crash(DropAll)
	if d.Load64(0) != 5 || d.Load64(512) != 6 {
		t.Error("PersistAll did not persist everything")
	}
}

// Property: any sequence of (store, pwb, fence) operations followed by a
// DropAll crash yields a persisted image where every fenced store survives
// and every never-flushed store does not.
func TestQuickDurabilityContract(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		d := New(1<<14, ModelDRAM)
		rng := rand.New(rand.NewSource(seed))
		fenced := map[int]uint64{}   // line -> last value fenced (word 0 of line)
		unfenced := map[int]uint64{} // line with data not yet fenced
		for _, op := range ops {
			line := int(op) % (d.Size() >> 6)
			off := line << 6
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.Uint64() | 1
				d.Store64(off, v)
				unfenced[line] = v
			case 2:
				d.Pwb(off)
			case 3:
				d.Pfence()
				// Everything queued so far is durable. We conservatively
				// track only lines that had pwb after their last store; to
				// keep the model simple, re-derive from the device by
				// fencing after a pwb of each line we know about.
			}
		}
		// Make a final authoritative pass: pwb+fence half the lines.
		for line := range unfenced {
			if line%2 == 0 {
				d.Pwb(line << 6)
			}
		}
		d.Pfence()
		for line, v := range unfenced {
			if line%2 == 0 {
				fenced[line] = v
			}
		}
		d.Crash(DropAll)
		for line, v := range fenced {
			if got := d.Load64(line << 6); got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStore64(b *testing.B) {
	d := New(1<<20, ModelDRAM)
	for i := 0; i < b.N; i++ {
		d.Store64((i*8)%(1<<20-8), uint64(i))
	}
}

func BenchmarkPwbFence(b *testing.B) {
	d := New(1<<20, ModelDRAM)
	for i := 0; i < b.N; i++ {
		off := (i * 64) % (1 << 19)
		d.Store64(off, uint64(i))
		d.Pwb(off)
		d.Pfence()
	}
}
