package pmem

import "testing"

func TestFlushSetDedupsLines(t *testing.T) {
	d := New(1024, ModelCLWB)
	fs := NewFlushSet(d.Size())
	// Three stores on line 0, one spanning lines 1-2, one more on line 1.
	d.Store64(0, 1)
	fs.Add(0, 8)
	d.Store64(8, 2)
	fs.Add(8, 8)
	d.Store8(16, 3)
	fs.Add(16, 1)
	d.StoreBytes(LineSize+60, make([]byte, 8)) // spans lines 1 and 2
	fs.Add(LineSize+60, 8)
	d.Store64(LineSize, 4)
	fs.Add(LineSize, 8)
	if fs.Len() != 3 {
		t.Fatalf("Len = %d, want 3 distinct lines", fs.Len())
	}
	before := d.Stats().Pwbs
	fs.Flush(d)
	if got := d.Stats().Pwbs - before; got != 3 {
		t.Fatalf("Flush issued %d pwbs, want 3", got)
	}
	if fs.Len() != 0 {
		t.Fatalf("Len after Flush = %d, want 0", fs.Len())
	}
	if !d.NeedsFence() {
		t.Fatal("queued write-backs should report NeedsFence")
	}
	d.Pfence()
	if d.NeedsFence() {
		t.Fatal("drained device should not need a fence")
	}
	for _, off := range []int{0, 8, 16, LineSize, LineSize + 60} {
		if d.Persisted()[off] != d.Bytes(off, 1)[0] {
			t.Errorf("offset %d not persisted after Flush+Pfence", off)
		}
	}
}

func TestFlushSetResetAndEpochReuse(t *testing.T) {
	d := New(LineSize*4, ModelCLWB)
	fs := NewFlushSet(d.Size())
	for round := 0; round < 10; round++ {
		fs.Add(0, 8)
		fs.Add(LineSize*2, 8)
		if fs.Len() != 2 {
			t.Fatalf("round %d: Len = %d, want 2", round, fs.Len())
		}
		if round%2 == 0 {
			fs.Flush(d)
		} else {
			fs.Reset()
		}
		if fs.Len() != 0 {
			t.Fatalf("round %d: Len after reset = %d", round, fs.Len())
		}
	}
}

func TestFlushSetEpochWraparound(t *testing.T) {
	fs := NewFlushSet(LineSize * 2)
	fs.epoch = ^uint32(0) // next Reset wraps
	fs.Add(0, 8)
	if fs.Len() != 1 {
		t.Fatalf("Len = %d", fs.Len())
	}
	fs.Reset()
	// After the wrap every stamp must read as stale.
	fs.Add(0, 8)
	fs.Add(LineSize, 8)
	if fs.Len() != 2 {
		t.Fatalf("Len after wraparound = %d, want 2", fs.Len())
	}
}

func TestNeedsFenceOrderedModel(t *testing.T) {
	d := New(LineSize, ModelCLFLUSH)
	d.Store64(0, 7)
	d.Pwb(0)
	if d.NeedsFence() {
		t.Fatal("ordered pwb persists immediately; no fence should be needed")
	}
	if d.Persisted()[0] != 7 {
		t.Fatal("ordered pwb did not persist the line")
	}
}
