package pmem

import (
	"testing"
	"time"
)

// The injected media latencies must actually materialize: under the PCM
// model a pfence costs at least its configured 500 ns.
func TestLatencyInjection(t *testing.T) {
	d := New(4096, ModelPCM)
	const n = 200
	start := time.Now()
	for i := 0; i < n; i++ {
		d.Pfence()
	}
	per := time.Since(start) / n
	if per < ModelPCM.PfenceLatency {
		t.Errorf("pfence cost %v under PCM, want >= %v", per, ModelPCM.PfenceLatency)
	}

	d2 := New(4096, ModelSTT)
	start = time.Now()
	for i := 0; i < n; i++ {
		d2.Store64(0, uint64(i))
		d2.Pwb(0)
	}
	per = time.Since(start) / n
	if per < ModelSTT.PwbLatency {
		t.Errorf("pwb cost %v under STT, want >= %v", per, ModelSTT.PwbLatency)
	}
}

// DRAM-like models must not inject delays (sanity bound: far below the
// PCM latency).
func TestNoLatencyUnderDRAM(t *testing.T) {
	d := New(4096, ModelDRAM)
	const n = 10000
	start := time.Now()
	for i := 0; i < n; i++ {
		d.Store64(0, uint64(i))
		d.Pwb(0)
		d.Pfence()
	}
	per := time.Since(start) / n
	if per > 2*time.Microsecond {
		t.Errorf("DRAM-model cycle cost %v, expected well under PCM latencies", per)
	}
}
