package pmem

import (
	"testing"
)

// TestChainHooksDegenerate pins the pass-through cases: no usable bundles
// yield nil, a single bundle is returned unwrapped.
func TestChainHooksDegenerate(t *testing.T) {
	if got := ChainHooks(); got != nil {
		t.Fatalf("ChainHooks() = %v, want nil", got)
	}
	if got := ChainHooks(nil, nil); got != nil {
		t.Fatalf("ChainHooks(nil, nil) = %v, want nil", got)
	}
	h := &Hooks{Fence: func() {}}
	if got := ChainHooks(nil, h, nil); got != h {
		t.Fatalf("ChainHooks with one usable bundle should return it unwrapped")
	}
}

// TestChainHooksOrder verifies every callback kind fires once per bundle, in
// argument order, with the event's arguments intact.
func TestChainHooksOrder(t *testing.T) {
	var log []string
	mk := func(tag string) *Hooks {
		return &Hooks{
			Store:   func(n uint64) { log = append(log, tag+"-store") },
			Pwb:     func(n uint64) { log = append(log, tag+"-pwb") },
			Fence:   func() { log = append(log, tag+"-fence") },
			StoreAt: func(off, n int) { log = append(log, tag+"-storeat") },
			PwbAt:   func(off int) { log = append(log, tag+"-pwbat") },
			Crash:   func() { log = append(log, tag+"-crash") },
		}
	}
	c := ChainHooks(mk("a"), nil, mk("b"))
	c.StoreAt(0, 8)
	c.Store(1)
	c.PwbAt(0)
	c.Pwb(1)
	c.Fence()
	c.Crash()
	want := []string{
		"a-storeat", "b-storeat", "a-store", "b-store",
		"a-pwbat", "b-pwbat", "a-pwb", "b-pwb",
		"a-fence", "b-fence", "a-crash", "b-crash",
	}
	if len(log) != len(want) {
		t.Fatalf("got %d hook calls %v, want %d", len(log), log, len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("call %d = %q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
}

// TestChainHooksPartial checks that a bundle missing some callbacks does not
// suppress the other bundle's, and that absent kinds stay nil.
func TestChainHooksPartial(t *testing.T) {
	var fences, stores int
	a := &Hooks{Fence: func() { fences++ }}
	b := &Hooks{Fence: func() { fences++ }, Store: func(uint64) { stores++ }}
	c := ChainHooks(a, b)
	c.Fence()
	c.Store(1)
	if fences != 2 || stores != 1 {
		t.Fatalf("fences=%d stores=%d, want 2 and 1", fences, stores)
	}
	if c.Pwb != nil || c.StoreAt != nil || c.PwbAt != nil || c.Crash != nil {
		t.Fatalf("callback kinds absent from every bundle must stay nil")
	}
}

// TestChainHooksWithScheduler drives a device with an observer chained
// before a Scheduler: the scheduler still counts events and captures, and
// the observer sees the same event stream.
func TestChainHooksWithScheduler(t *testing.T) {
	dev := New(4096, ModelDRAM)
	sched := NewScheduler(dev)
	var storeAts, pwbAts, fences int
	obs := &Hooks{
		StoreAt: func(off, n int) { storeAts++ },
		PwbAt:   func(off int) { pwbAts++ },
		Fence:   func() { fences++ },
	}
	dev.SetHooks(ChainHooks(obs, sched.Hooks()))

	sched.Arm(3, DropAll)
	dev.Store64(0, 1) // event 1
	dev.Pwb(0)        // event 2
	dev.Pfence()      // event 3: capture fires here
	if !sched.Captured() {
		t.Fatalf("scheduler did not capture through chained hooks")
	}
	if ev := sched.Events(); ev != 3 {
		t.Fatalf("scheduler counted %d events, want 3", ev)
	}
	if storeAts != 1 || pwbAts != 1 || fences != 1 {
		t.Fatalf("observer saw store=%d pwb=%d fence=%d, want 1 each", storeAts, pwbAts, fences)
	}
	img, ev := sched.Image()
	if img == nil || ev != 3 {
		t.Fatalf("Image() = (%v, %d), want captured image at event 3", img != nil, ev)
	}
}
