// Package pmem simulates byte-addressable persistent memory with explicit
// persistence primitives, for reproducing persistent-transactional-memory
// algorithms on hardware (and runtimes) that lack flush intrinsics.
//
// A Device holds two images of the same region:
//
//   - the volatile image, standing in for CPU caches plus DRAM, where every
//     store lands immediately; and
//   - the persisted image, standing in for the NVM media, which only receives
//     data through write-backs.
//
// Stores mark 64-byte cache lines dirty. Pwb queues a line for write-back,
// Pfence orders and completes queued write-backs, and Psync additionally
// waits for durability (in this simulation Pfence and Psync both drain the
// queue; they differ only in injected latency, mirroring how SFENCE serves
// both roles on x86). Under the CLFLUSH model, Pwb is self-ordering and
// synchronous and the fences are no-ops, exactly as in the paper's setup.
//
// Crash discards the volatile image and applies an adversarial policy to
// lines that were dirty or queued but not yet fenced, producing the set of
// post-crash images real hardware could produce. Recovery code then runs
// against the surviving persisted image.
//
// The data path (loads, stores, write-backs) is deliberately unsynchronized:
// the transactional layers above guarantee that at most one mutator runs at a
// time and that readers never race with the mutator on the same locations,
// matching the C++ memory-model assumptions of the original algorithms.
//
// The observability surface is the exception, fully synchronized so harness
// and metrics goroutines can watch a live device: the statistics counters
// are atomic (Stats and ResetStats are safe against concurrent instrumented
// stores), and the single hook slot (SetHooks) is an atomic pointer so a
// harness may install, replace or remove the hook bundle — and arm a
// Scheduler — while worker goroutines drive the data path. The hooks
// themselves still run on the mutating goroutine, inside the
// store/pwb/fence that triggered them.
package pmem

import (
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"
)

// LineSize is the simulated cache-line size in bytes. All dirtiness and
// write-back tracking happens at this granularity, like CLFLUSH/CLWB.
const LineSize = 64

const lineShift = 6 // log2(LineSize)

// Stats is a snapshot of the persistence-relevant event counters since the
// last ResetStats. The counters feed Table 1 (fences per transaction, write
// amplification) and the pwb histograms discussed in §6.2 of the paper.
type Stats struct {
	Stores         uint64 // store operations issued
	BytesStored    uint64 // bytes written to the volatile image
	Pwbs           uint64 // persist write-backs issued
	Pfences        uint64 // persist fences issued
	Psyncs         uint64 // persist syncs issued
	LinesPersisted uint64 // cache lines actually written to the persisted image
	BytesPersisted uint64 // bytes written to the persisted image
}

// devStats is the live, atomically-maintained form of Stats: metrics
// collectors snapshot and reset these counters while workers drive the data
// path, so every field is an uncontended atomic add on the mutator.
type devStats struct {
	stores         atomic.Uint64
	bytesStored    atomic.Uint64
	pwbs           atomic.Uint64
	pfences        atomic.Uint64
	psyncs         atomic.Uint64
	linesPersisted atomic.Uint64
	bytesPersisted atomic.Uint64
}

// Hooks bundles the per-event callbacks a harness or scheduler attaches to
// a Device. The bundle is installed atomically as one unit (SetHooks), so
// there is a single attach point instead of three independently racing
// slots; any nil member is simply skipped. Hooks run on the mutating
// goroutine, inside the primitive that triggered them, and may panic to
// simulate a crash at an exact persistence point.
type Hooks struct {
	// Store is called after every store with the total store count.
	Store func(n uint64)
	// Pwb is called after every Pwb with the total pwb count.
	Pwb func(n uint64)
	// Fence is called after every Pfence or Psync.
	Fence func()
	// StoreAt is called after every store with the byte range it covered,
	// [off, off+n). A StoreBytes or CopyWithin of any length is one call.
	StoreAt func(off, n int)
	// PwbAt is called after every Pwb with the line-aligned offset of the
	// flushed cache line.
	PwbAt func(off int)
	// Crash is called inside Crash after the policy has been applied to the
	// persisted image but before the volatile image is discarded, so an
	// observer can diff the two views at the exact failure point.
	Crash func()
	// Fault is called when a load trips a media-fault line (MarkBad), with
	// the offset of the faulting access. Auditors use it to keep forensics
	// of every detected media error.
	Fault func(off int)
}

// Device is a simulated persistent-memory region. The zero value is not
// usable; create one with New.
type Device struct {
	mem    []byte // volatile image: caches + DRAM
	pm     []byte // persisted image: NVM media
	dirty  bitmap // stored but not yet queued for write-back
	queued bitmap // queued by Pwb, not yet fenced
	// queuedLines tracks the order in which lines were queued so that fences
	// can drain them without scanning the whole bitmap.
	queuedLines []int64
	model       Model
	stats       devStats
	// hooks is an atomic pointer so that installation (from a harness
	// goroutine) never races with invocation (from the mutating goroutine).
	hooks atomic.Pointer[Hooks]
	// faults holds the installed media-fault line set (see fault.go); nil —
	// the overwhelmingly common case — costs one atomic load per read.
	faults     atomic.Pointer[faultSet]
	faultTrips atomic.Uint64
	faultLast  atomic.Pointer[MediaFaultError]
}

// New creates a Device of the given size (rounded up to a whole number of
// cache lines) using the given persistence model.
func New(size int, model Model) *Device {
	if size <= 0 {
		panic("pmem: non-positive device size")
	}
	size = (size + LineSize - 1) &^ (LineSize - 1)
	lines := size >> lineShift
	return &Device{
		mem:    make([]byte, size),
		pm:     make([]byte, size),
		dirty:  newBitmap(lines),
		queued: newBitmap(lines),
		model:  model,
	}
}

// Size returns the size of the region in bytes.
func (d *Device) Size() int { return len(d.mem) }

// Model returns the current persistence model.
func (d *Device) Model() Model { return d.model }

// SetModel replaces the persistence model. Intended for parameter sweeps at
// quiescent points.
func (d *Device) SetModel(m Model) { d.model = m }

// Stats returns a consistent-enough snapshot of the event counters: each
// counter is read atomically, so Stats is safe against concurrent
// instrumented stores (individual counters may be skewed by in-flight
// operations; snapshot at quiescent points for exact cross-counter ratios).
func (d *Device) Stats() Stats {
	return Stats{
		Stores:         d.stats.stores.Load(),
		BytesStored:    d.stats.bytesStored.Load(),
		Pwbs:           d.stats.pwbs.Load(),
		Pfences:        d.stats.pfences.Load(),
		Psyncs:         d.stats.psyncs.Load(),
		LinesPersisted: d.stats.linesPersisted.Load(),
		BytesPersisted: d.stats.bytesPersisted.Load(),
	}
}

// ResetStats zeroes the event counters. Safe to call while other goroutines
// drive the data path; counters reset one at a time, so a concurrent
// mutator's in-flight events land in either the old or the new epoch.
func (d *Device) ResetStats() {
	d.stats.stores.Store(0)
	d.stats.bytesStored.Store(0)
	d.stats.pwbs.Store(0)
	d.stats.pfences.Store(0)
	d.stats.psyncs.Store(0)
	d.stats.linesPersisted.Store(0)
	d.stats.bytesPersisted.Store(0)
}

// SetHooks atomically installs the hook bundle (nil removes it), replacing
// whatever was installed before. Safe to call while other goroutines drive
// the data path. This is the single attach point for schedulers and crash
// harnesses; metrics use obs.Instrument, which reads the atomic counters
// and leaves this slot free.
func (d *Device) SetHooks(h *Hooks) { d.hooks.Store(h) }

func (d *Device) markStored(off, n int) {
	stores := d.stats.stores.Add(1)
	d.stats.bytesStored.Add(uint64(n))
	first := off >> lineShift
	last := (off + n - 1) >> lineShift
	for l := first; l <= last; l++ {
		d.dirty.set(l)
	}
	if h := d.hooks.Load(); h != nil {
		if h.StoreAt != nil {
			h.StoreAt(off, n)
		}
		if h.Store != nil {
			h.Store(stores)
		}
	}
}

// Store8 writes one byte at off.
func (d *Device) Store8(off int, v byte) {
	d.mem[off] = v
	d.markStored(off, 1)
}

// Store16 writes a little-endian 16-bit value at off.
func (d *Device) Store16(off int, v uint16) {
	d.mem[off] = byte(v)
	d.mem[off+1] = byte(v >> 8)
	d.markStored(off, 2)
}

// Store32 writes a little-endian 32-bit value at off.
func (d *Device) Store32(off int, v uint32) {
	_ = d.mem[off+3]
	d.mem[off] = byte(v)
	d.mem[off+1] = byte(v >> 8)
	d.mem[off+2] = byte(v >> 16)
	d.mem[off+3] = byte(v >> 24)
	d.markStored(off, 4)
}

// Store64 writes a little-endian 64-bit value at off.
func (d *Device) Store64(off int, v uint64) {
	_ = d.mem[off+7]
	d.mem[off] = byte(v)
	d.mem[off+1] = byte(v >> 8)
	d.mem[off+2] = byte(v >> 16)
	d.mem[off+3] = byte(v >> 24)
	d.mem[off+4] = byte(v >> 32)
	d.mem[off+5] = byte(v >> 40)
	d.mem[off+6] = byte(v >> 48)
	d.mem[off+7] = byte(v >> 56)
	d.markStored(off, 8)
}

// StoreBytes copies src into the region at off.
func (d *Device) StoreBytes(off int, src []byte) {
	if len(src) == 0 {
		return
	}
	copy(d.mem[off:], src)
	d.markStored(off, len(src))
}

// Memset fills n bytes at off with v.
func (d *Device) Memset(off int, v byte, n int) {
	if n == 0 {
		return
	}
	s := d.mem[off : off+n]
	for i := range s {
		s[i] = v
	}
	d.markStored(off, n)
}

// Load8 reads one byte at off.
func (d *Device) Load8(off int) byte {
	if d.faultCheck(off, 1) {
		return d.mem[off] ^ corruptXor
	}
	return d.mem[off]
}

// Load16 reads a little-endian 16-bit value at off.
func (d *Device) Load16(off int) uint16 {
	v := uint16(d.mem[off]) | uint16(d.mem[off+1])<<8
	if d.faultCheck(off, 2) {
		v ^= corruptXor | corruptXor<<8
	}
	return v
}

// Load32 reads a little-endian 32-bit value at off.
func (d *Device) Load32(off int) uint32 {
	_ = d.mem[off+3]
	v := uint32(d.mem[off]) | uint32(d.mem[off+1])<<8 |
		uint32(d.mem[off+2])<<16 | uint32(d.mem[off+3])<<24
	if d.faultCheck(off, 4) {
		v ^= 0x01010101 * corruptXor
	}
	return v
}

// Load64 reads a little-endian 64-bit value at off.
func (d *Device) Load64(off int) uint64 {
	_ = d.mem[off+7]
	v := uint64(d.mem[off]) | uint64(d.mem[off+1])<<8 |
		uint64(d.mem[off+2])<<16 | uint64(d.mem[off+3])<<24 |
		uint64(d.mem[off+4])<<32 | uint64(d.mem[off+5])<<40 |
		uint64(d.mem[off+6])<<48 | uint64(d.mem[off+7])<<56
	if d.faultCheck(off, 8) {
		v ^= 0x0101010101010101 * corruptXor
	}
	return v
}

// LoadBytes copies len(dst) bytes starting at off into dst.
func (d *Device) LoadBytes(off int, dst []byte) {
	copy(dst, d.mem[off:off+len(dst)])
	if len(dst) > 0 && d.faultCheck(off, len(dst)) {
		for i := range dst {
			dst[i] ^= corruptXor
		}
	}
}

// Bytes returns the volatile image slice for [off, off+n). The caller must
// respect the same synchronization rules as Load/Store. Intended for bulk
// operations such as the main-to-back copy. A faulted line in the range
// trips the fault machinery, but the slice aliases the image and so cannot
// carry corrupted bytes; callers relying on Bytes must check FaultsTripped.
func (d *Device) Bytes(off, n int) []byte {
	if n > 0 {
		d.faultCheck(off, n)
	}
	return d.mem[off : off+n]
}

// CopyWithin copies n bytes from src to dst inside the region through the
// volatile image, marking destination lines dirty. It is the raw memcpy used
// for the twin-copy replication; callers must still issue Pwb for the
// destination range. A faulted source line corrupts the copied bytes (the
// fault propagates into the destination), so recovery code that ignores the
// trip replicates garbage — and hardened recovery detects the trip instead.
func (d *Device) CopyWithin(dst, src, n int) {
	if n == 0 {
		return
	}
	copy(d.mem[dst:dst+n], d.mem[src:src+n])
	if d.faultCheck(src, n) {
		s := d.mem[dst : dst+n]
		for i := range s {
			s[i] ^= corruptXor
		}
	}
	d.markStored(dst, n)
}

// Pwb initiates write-back of the cache line containing off. Under an
// ordered model (CLFLUSH) the line is persisted immediately; otherwise it is
// queued until the next Pfence or Psync. Pwb of a clean, unqueued line is a
// no-op apart from the injected latency, like flushing a clean line.
func (d *Device) Pwb(off int) {
	pwbs := d.stats.pwbs.Add(1)
	d.model.delayPwb()
	line := off >> lineShift
	if d.dirty.test(line) {
		d.dirty.clear(line)
		if d.model.OrderedPwb {
			d.persistLine(line)
		} else if !d.queued.test(line) {
			d.queued.set(line)
			d.queuedLines = append(d.queuedLines, int64(line))
		}
	}
	if h := d.hooks.Load(); h != nil {
		if h.PwbAt != nil {
			h.PwbAt(line << lineShift)
		}
		if h.Pwb != nil {
			h.Pwb(pwbs)
		}
	}
}

// PwbRange issues Pwb for every cache line overlapping [off, off+n).
func (d *Device) PwbRange(off, n int) {
	if n <= 0 {
		return
	}
	first := off >> lineShift
	last := (off + n - 1) >> lineShift
	for l := first; l <= last; l++ {
		d.Pwb(l << lineShift)
	}
}

// NeedsFence reports whether any write-back is queued and unfenced, i.e.
// whether a Pfence or Psync issued now would do ordering work. Under ordered
// models (CLFLUSH) lines persist at Pwb time and this is always false,
// matching the paper's observation that CLFLUSH needs no fences. Engines use
// it to elide provably-no-op fences; like the data path it must only be
// called from the mutating goroutine.
func (d *Device) NeedsFence() bool { return len(d.queuedLines) > 0 }

// Pfence orders preceding write-backs: every line queued by Pwb becomes
// persistent before the fence returns.
func (d *Device) Pfence() {
	d.stats.pfences.Add(1)
	d.model.delayPfence()
	d.drainQueue()
	if h := d.hooks.Load(); h != nil && h.Fence != nil {
		h.Fence()
	}
}

// Psync blocks until all preceding write-backs are persistent.
func (d *Device) Psync() {
	d.stats.psyncs.Add(1)
	d.model.delayPsync()
	d.drainQueue()
	if h := d.hooks.Load(); h != nil && h.Fence != nil {
		h.Fence()
	}
}

func (d *Device) drainQueue() {
	for _, l := range d.queuedLines {
		line := int(l)
		if d.queued.test(line) {
			d.queued.clear(line)
			d.persistLine(line)
		}
	}
	d.queuedLines = d.queuedLines[:0]
}

func (d *Device) persistLine(line int) {
	off := line << lineShift
	copy(d.pm[off:off+LineSize], d.mem[off:off+LineSize])
	d.stats.linesPersisted.Add(1)
	d.stats.bytesPersisted.Add(LineSize)
}

// PersistAll force-persists the entire volatile image, as if every line had
// been flushed and fenced. Used when formatting a fresh region.
func (d *Device) PersistAll() {
	copy(d.pm, d.mem)
	d.dirty.reset()
	d.queued.reset()
	d.queuedLines = d.queuedLines[:0]
}

// Persisted returns a copy of the persisted image, for inspection in tests.
func (d *Device) Persisted() []byte {
	out := make([]byte, len(d.pm))
	copy(out, d.pm)
	return out
}

// PersistedBytes returns the persisted image slice for [off, off+n) without
// copying. The caller must treat it as read-only and respect the same
// synchronization rules as the data path; auditors use it to diff individual
// cache lines against the volatile view.
func (d *Device) PersistedBytes(off, n int) []byte { return d.pm[off : off+n] }

// CrashPolicy controls the fate of not-yet-durable data at a simulated power
// failure.
type CrashPolicy struct {
	// QueuedPersistProb is the probability that a line queued by Pwb but not
	// yet fenced reaches the media anyway (write-backs may have completed
	// before the failure). 0 drops all, 1 persists all.
	QueuedPersistProb float64
	// EvictDirtyProb is the probability that a dirty line that was never
	// flushed reaches the media anyway, modelling cache evictions. Correct
	// algorithms must tolerate any value; 0 is the common deterministic case.
	EvictDirtyProb float64
	// TearWords, when true, applies the above decisions independently per
	// 8-byte word instead of per cache line, modelling word-granularity
	// persistence with torn lines.
	TearWords bool
	// TearPrefix, when true, persists only an 8-byte-aligned prefix of each
	// line selected for persistence — the first k words, 0 <= k <= 8, chosen
	// by Rand — modelling a write-back torn mid-line at the exact failure
	// point. Takes precedence over TearWords.
	TearPrefix bool
	// Rand supplies randomness; nil means a fixed-seed source (deterministic).
	Rand *rand.Rand
}

// DropAll is the deterministic worst case for unfenced data: everything that
// was not fenced is lost.
var DropAll = CrashPolicy{}

// KeepQueued persists everything that was at least queued by a Pwb, the
// deterministic best case.
var KeepQueued = CrashPolicy{QueuedPersistProb: 1}

// applyCrash writes the post-failure media contents into img (which must
// start as a copy of the persisted image), consuming no device state.
func (d *Device) applyCrash(img []byte, p CrashPolicy) {
	rng := p.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	decide := func(prob float64) bool {
		if prob <= 0 {
			return false
		}
		if prob >= 1 {
			return true
		}
		return rng.Float64() < prob
	}
	persistPartial := func(line int, prob float64) {
		off := line << lineShift
		switch {
		case p.TearPrefix:
			if decide(prob) {
				k := rng.Intn(LineSize/8+1) * 8
				copy(img[off:off+k], d.mem[off:off+k])
			}
		case p.TearWords:
			for w := 0; w < LineSize; w += 8 {
				if decide(prob) {
					copy(img[off+w:off+w+8], d.mem[off+w:off+w+8])
				}
			}
		default:
			if decide(prob) {
				copy(img[off:off+LineSize], d.mem[off:off+LineSize])
			}
		}
	}
	for _, l := range d.queuedLines {
		line := int(l)
		if d.queued.test(line) {
			persistPartial(line, p.QueuedPersistProb)
		}
	}
	if p.EvictDirtyProb > 0 {
		d.dirty.forEach(func(line int) {
			persistPartial(line, p.EvictDirtyProb)
		})
	}
}

// Crash simulates a power failure followed by a restart: the policy decides
// which in-flight lines reached the media, the volatile image is discarded,
// and the region is re-mapped from the persisted image. After Crash the
// device is quiescent and ready for recovery code.
func (d *Device) Crash(p CrashPolicy) {
	d.applyCrash(d.pm, p)
	if h := d.hooks.Load(); h != nil && h.Crash != nil {
		h.Crash()
	}
	d.dirty.reset()
	d.queued.reset()
	d.queuedLines = d.queuedLines[:0]
	// Restart: the volatile image is re-mapped from the media.
	copy(d.mem, d.pm)
}

// CrashImage returns the media contents a failure at this exact point would
// leave behind under the given policy, without disturbing the device.
// Crash-injection tests capture images at every persistence event of a live
// run and recover each one separately.
func (d *Device) CrashImage(p CrashPolicy) []byte {
	img := make([]byte, len(d.pm))
	copy(img, d.pm)
	d.applyCrash(img, p)
	return img
}

// FromImage creates a quiescent device whose volatile and persisted views
// both equal img, as if a machine rebooted with that media content.
func FromImage(img []byte, model Model) *Device {
	if len(img) == 0 || len(img)%LineSize != 0 {
		panic(fmt.Sprintf("pmem: image size %d is not a positive multiple of %d", len(img), LineSize))
	}
	d := New(len(img), model)
	copy(d.pm, img)
	copy(d.mem, img)
	return d
}

// SaveFile writes the persisted image to path, allowing a region to survive
// process restarts in examples and tools.
func (d *Device) SaveFile(path string) error {
	if err := os.WriteFile(path, d.pm, 0o644); err != nil {
		return fmt.Errorf("pmem: save %s: %w", path, err)
	}
	return nil
}

// LoadFile creates a Device from an image previously written by SaveFile.
func LoadFile(path string, model Model) (*Device, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pmem: load %s: %w", path, err)
	}
	if len(data) == 0 || len(data)%LineSize != 0 {
		return nil, fmt.Errorf("pmem: load %s: image size %d is not a positive multiple of %d", path, len(data), LineSize)
	}
	d := New(len(data), model)
	copy(d.pm, data)
	copy(d.mem, data)
	return d, nil
}

// spin busy-waits for roughly dur, simulating media latency without yielding
// the processor (matching how the paper injects rdtsc-measured delays).
func spin(dur time.Duration) {
	if dur <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < dur {
	}
}
