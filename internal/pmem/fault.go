package pmem

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Media-fault model. Real persistent memory does not only lose un-synced
// lines at a crash: cells rot at rest, and a read of a poisoned line returns
// an uncorrectable media error (on x86, a machine-check the kernel surfaces
// as SIGBUS). This file adds that failure mode to the simulated device:
//
//   - a harness marks chosen cache lines bad (MarkBad) at a quiescent point;
//   - any load touching a bad line "trips": the device counts the trip,
//     records a typed *MediaFaultError, invokes the Fault hook, and returns
//     deliberately corrupted bytes — so an unhardened consumer that ignores
//     the fault surface serves garbage, exactly what the fault campaign's
//     non-vacuity fixture demonstrates;
//   - transient lines self-clear after their first trip (a retry succeeds),
//     sticky lines keep tripping until ClearFaults (a scrub/repair).
//
// Consumers detect faults without threading errors through every Load call:
// snapshot FaultsTripped before an operation and compare after; on a delta,
// FaultError carries the typed error for the most recent trip.
//
// Like the rest of the data path, fault installation is expected at quiescent
// points; the set itself is an atomic pointer (copy-on-write) and per-line
// clears are atomic, so concurrent readers (RomulusLR) may trip safely.

// ErrMediaFault is the typed error for an uncorrectable media read fault.
// Errors returned by FaultError wrap it, so errors.Is works across layers.
var ErrMediaFault = errors.New("pmem: uncorrectable media read fault")

// MediaFaultError is a media read fault at a specific device offset.
type MediaFaultError struct{ Off int }

func (e *MediaFaultError) Error() string {
	return fmt.Sprintf("pmem: uncorrectable media read fault at offset %#x", e.Off)
}

// Unwrap makes errors.Is(err, ErrMediaFault) true.
func (e *MediaFaultError) Unwrap() error { return ErrMediaFault }

// corruptXor is the pattern XORed into bytes read through a faulted line —
// visibly wrong data rather than zeroes, so silent consumers fail loudly in
// validation harnesses.
const corruptXor = 0xA5

type faultLine struct {
	transient bool
	cleared   atomic.Bool
}

// faultSet is an immutable snapshot of the bad-line map; Device.faults holds
// it behind an atomic pointer so installation never races the data path.
type faultSet struct {
	lines map[int]*faultLine
}

// MarkBad marks the cache line containing off as a media-fault line. A
// transient line clears itself after the first load that trips it (modelling
// a correctable-on-retry error); a sticky line keeps tripping until
// ClearFaults. Call at quiescent points or from a harness goroutine; the set
// installs atomically.
func (d *Device) MarkBad(off int, transient bool) {
	line := off >> lineShift
	next := &faultSet{lines: make(map[int]*faultLine)}
	if old := d.faults.Load(); old != nil {
		for k, v := range old.lines {
			next.lines[k] = v
		}
	}
	next.lines[line] = &faultLine{transient: transient}
	d.faults.Store(next)
}

// ClearFaults removes every marked line — the repair a scrub performs. The
// trip counter and last-error latch are preserved (they are history, not
// state).
func (d *Device) ClearFaults() { d.faults.Store(nil) }

// FaultsTripped returns the number of loads that touched a faulted line
// since the device was created. Consumers snapshot it around an operation;
// a delta means the operation read corrupted data.
func (d *Device) FaultsTripped() uint64 { return d.faultTrips.Load() }

// FaultError returns the typed error for the most recent fault trip, or nil
// if no load has ever tripped. The error wraps ErrMediaFault.
func (d *Device) FaultError() error {
	if e := d.faultLast.Load(); e != nil {
		return e
	}
	return nil
}

// faultCheck reports whether a load of [off, off+n) touches a live faulted
// line, tripping the fault machinery when it does. The caller corrupts the
// returned data on a hit.
func (d *Device) faultCheck(off, n int) bool {
	fs := d.faults.Load()
	if fs == nil {
		return false
	}
	first := off >> lineShift
	last := (off + n - 1) >> lineShift
	hit := false
	for l := first; l <= last; l++ {
		fl, ok := fs.lines[l]
		if !ok || fl.cleared.Load() {
			continue
		}
		hit = true
		if fl.transient {
			fl.cleared.Store(true)
		}
	}
	if hit {
		d.faultTrips.Add(1)
		d.faultLast.Store(&MediaFaultError{Off: off})
		if h := d.hooks.Load(); h != nil && h.Fault != nil {
			h.Fault(off)
		}
	}
	return hit
}
