package pmem

// ChainHooks composes several hook bundles into one: each callback of the
// result invokes the corresponding non-nil callbacks of every argument, in
// argument order. Nil bundles are skipped, so conditional observers compose
// without special cases; with zero or one usable bundle the input is
// returned as-is.
//
// The hook slot on a Device is single-occupancy (SetHooks replaces the whole
// bundle), so an auditor and a crash Scheduler — or any other pair of
// observers — must be chained rather than installed one after the other,
// which would silently clobber. Order matters when a later bundle inspects
// state a former one maintains: put the state-keeping observer (auditor)
// before the one that acts on events (scheduler), so its view is current
// when the scheduler captures a crash image.
func ChainHooks(hooks ...*Hooks) *Hooks {
	var hs []*Hooks
	for _, h := range hooks {
		if h != nil {
			hs = append(hs, h)
		}
	}
	switch len(hs) {
	case 0:
		return nil
	case 1:
		return hs[0]
	}
	var stores, pwbs []func(uint64)
	var fences, crashes []func()
	var storeAts []func(int, int)
	var pwbAts, faults []func(int)
	for _, h := range hs {
		if h.Store != nil {
			stores = append(stores, h.Store)
		}
		if h.Pwb != nil {
			pwbs = append(pwbs, h.Pwb)
		}
		if h.Fence != nil {
			fences = append(fences, h.Fence)
		}
		if h.StoreAt != nil {
			storeAts = append(storeAts, h.StoreAt)
		}
		if h.PwbAt != nil {
			pwbAts = append(pwbAts, h.PwbAt)
		}
		if h.Crash != nil {
			crashes = append(crashes, h.Crash)
		}
		if h.Fault != nil {
			faults = append(faults, h.Fault)
		}
	}
	out := &Hooks{}
	if len(stores) > 0 {
		out.Store = func(n uint64) {
			for _, f := range stores {
				f(n)
			}
		}
	}
	if len(pwbs) > 0 {
		out.Pwb = func(n uint64) {
			for _, f := range pwbs {
				f(n)
			}
		}
	}
	if len(fences) > 0 {
		out.Fence = func() {
			for _, f := range fences {
				f()
			}
		}
	}
	if len(storeAts) > 0 {
		out.StoreAt = func(off, n int) {
			for _, f := range storeAts {
				f(off, n)
			}
		}
	}
	if len(pwbAts) > 0 {
		out.PwbAt = func(off int) {
			for _, f := range pwbAts {
				f(off)
			}
		}
	}
	if len(crashes) > 0 {
		out.Crash = func() {
			for _, f := range crashes {
				f()
			}
		}
	}
	if len(faults) > 0 {
		out.Fault = func(off int) {
			for _, f := range faults {
				f(off)
			}
		}
	}
	return out
}
