package pmem

import (
	"sync/atomic"
	"testing"
)

// TestMultiDeviceIndependentHookChains pins that two devices carry fully
// independent hook chains: events on one device never fire the other's
// hooks, and replacing one device's bundle leaves the other's intact. Shards
// rely on this — each shard's auditor and scheduler observe only their own
// device.
func TestMultiDeviceIndependentHookChains(t *testing.T) {
	a := New(2*LineSize, ModelDRAM)
	b := New(2*LineSize, ModelDRAM)

	var aStores, aFences, bStores, bFences atomic.Uint64
	hookFor := func(st, fe *atomic.Uint64) *Hooks {
		return ChainHooks(
			&Hooks{Store: func(uint64) { st.Add(1) }},
			&Hooks{Fence: func() { fe.Add(1) }},
		)
	}
	a.SetHooks(hookFor(&aStores, &aFences))
	b.SetHooks(hookFor(&bStores, &bFences))

	a.Store64(0, 1)
	a.Pwb(0)
	a.Pfence()
	b.Store64(0, 2)
	b.Store64(8, 3)

	if got := aStores.Load(); got != 1 {
		t.Fatalf("device a saw %d stores, want 1", got)
	}
	if got := aFences.Load(); got != 1 {
		t.Fatalf("device a saw %d fences, want 1", got)
	}
	if got := bStores.Load(); got != 2 {
		t.Fatalf("device b saw %d stores, want 2", got)
	}
	if got := bFences.Load(); got != 0 {
		t.Fatalf("device b saw %d fences, want 0", got)
	}

	// Replacing a's bundle must not disturb b's chain.
	a.SetHooks(nil)
	b.Store64(0, 4)
	a.Store64(8, 5)
	if got := bStores.Load(); got != 3 {
		t.Fatalf("device b saw %d stores after a's SetHooks(nil), want 3", got)
	}
	if got := aStores.Load(); got != 1 {
		t.Fatalf("detached device a still saw stores: %d", got)
	}
}

// TestMultiDeviceCrashIsolation pins that Crash on one device leaves another
// device's in-flight (dirty/queued) state untouched: the live device can
// still fence its queued lines to durability afterward. Shards must not
// share crash state — one shard's simulated failure cannot bleed into its
// neighbors.
func TestMultiDeviceCrashIsolation(t *testing.T) {
	crashed := New(2*LineSize, ModelDRAM)
	live := New(2*LineSize, ModelDRAM)

	// Both devices hold one queued-but-unfenced line and one merely dirty
	// line.
	for _, d := range []*Device{crashed, live} {
		d.Store64(0, 11)
		d.Pwb(0)
		d.Store64(64, 22)
	}

	crashed.Crash(DropAll)

	// The crashed device lost everything unfenced.
	if v := crashed.Load64(0); v != 0 {
		t.Fatalf("crashed device retained unfenced queued line: %d", v)
	}
	// The live device's volatile view and write-back queue are intact: the
	// fence drains its queued line to the media.
	if v := live.Load64(0); v != 11 {
		t.Fatalf("live device volatile view disturbed: %d", v)
	}
	if !live.NeedsFence() {
		t.Fatal("live device lost its queued write-back to a neighbor's crash")
	}
	live.Pfence()
	if v := load64(live.Persisted(), 0); v != 11 {
		t.Fatalf("live device failed to persist after neighbor crash: %d", v)
	}
	// Its dirty (never flushed) line is still volatile-only, as before.
	if v := load64(live.Persisted(), 64); v != 0 {
		t.Fatalf("live device dirty line persisted spuriously: %d", v)
	}
	// And the live device can itself crash-recover independently afterward.
	live.Store64(64, 33)
	live.Pwb(64)
	live.Psync()
	live.Crash(DropAll)
	if v := live.Load64(64); v != 33 {
		t.Fatalf("live device lost its own fenced data: %d", v)
	}
}
