package pmem

import "os"

// writeFile is a test helper kept separate so pmem.go stays free of
// test-only imports.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
