package pmem

// FlushSet is a deduplicated set of dirty cache lines awaiting write-back.
// Engines that defer per-store pwbs to commit time record every stored range
// here and then issue exactly one Pwb per distinct line in one burst before
// the commit fence — the line-granular batching that eliminates the
// store-on-queued-line and re-queued-pwb waste classes an eager per-store
// flush discipline produces (§6.2; see also FliT's analysis of redundant
// flush traffic).
//
// Membership is tracked with an epoch-stamped array, so Reset is O(1) and
// Add never allocates after the first few batches; insertion order is
// preserved so flush bursts (and therefore traces and audit streams) are
// deterministic for a deterministic store sequence.
//
// A FlushSet is confined to the single mutator of its device region, like
// the data path itself; it performs no synchronization.
type FlushSet struct {
	stamps []uint32
	epoch  uint32
	lines  []int32
}

// NewFlushSet creates a flush set covering a device (or region) of size
// bytes starting at offset 0.
func NewFlushSet(size int) *FlushSet {
	return &FlushSet{
		stamps: make([]uint32, (size+LineSize-1)>>lineShift),
		epoch:  1,
	}
}

// Add records every cache line overlapping [off, off+n) as needing
// write-back. Lines already in the set are skipped.
func (f *FlushSet) Add(off, n int) {
	if n <= 0 {
		return
	}
	last := (off + n - 1) >> lineShift
	for line := off >> lineShift; line <= last; line++ {
		if f.stamps[line] != f.epoch {
			f.stamps[line] = f.epoch
			f.lines = append(f.lines, int32(line))
		}
	}
}

// Len returns the number of distinct lines currently in the set.
func (f *FlushSet) Len() int { return len(f.lines) }

// Flush issues one Pwb per recorded line, in insertion order, then resets
// the set. The caller still owns the ordering fence.
func (f *FlushSet) Flush(d *Device) {
	for _, line := range f.lines {
		d.Pwb(int(line) << lineShift)
	}
	f.Reset()
}

// Reset empties the set without issuing write-backs (rollback path: the
// engine restores and flushes the modified ranges from its twin copy
// instead).
func (f *FlushSet) Reset() {
	f.lines = f.lines[:0]
	f.epoch++
	if f.epoch == 0 { // epoch wrapped: stamps may alias, clear them
		for i := range f.stamps {
			f.stamps[i] = 0
		}
		f.epoch = 1
	}
}
