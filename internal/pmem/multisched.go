package pmem

import (
	"sync"
	"sync/atomic"
)

// MultiScheduler extends the Scheduler's crash-point model to a set of
// Devices that together form one logical store — e.g. one device per shard
// plus a coordinator log. Persistence events on every member advance ONE
// shared sequence, and the capture taken when the armed target is reached
// snapshots a crash image of EVERY member at that same instant: the
// multi-device media state a whole-process power failure would leave behind.
//
// Event numbering follows the Scheduler exactly (every store, pwb and
// pfence/psync is one event), except that the sequence interleaves members
// in the order the mutating goroutine touches them. For a deterministic
// single-threaded workload the numbering is therefore deterministic, which
// is what the cross-shard crash campaigns replay failures from.
//
// The capture runs on the mutating goroutine, inside the member primitive
// that hit the target. Members other than the triggering device are read at
// that moment, so the harness must ensure no other goroutine is mid-mutation
// on them at capture time: drive the workload single-threaded (the
// cross-shard campaigns do) or quiesce other mutators first.
//
// Unlike NewScheduler, NewMultiScheduler does not install its hooks: each
// member's counting bundle is exposed via Hooks(i) so harnesses can compose
// it per device (auditor first, then scheduler) with ChainHooks, or call
// Attach to install the plain bundles everywhere.
type MultiScheduler struct {
	devs  []*Device
	hooks []*Hooks

	events atomic.Uint64
	armed  atomic.Bool

	mu       sync.Mutex // guards everything below
	target   uint64
	policy   CrashPolicy
	imgs     [][]byte // captured images, nil until a crash fires
	imgEvent uint64
	crashes  int
	budget   int // max captures; 0 means unlimited
}

// NewMultiScheduler creates a scheduler over the given member devices
// without installing any hooks. Use Hooks(i) to compose per member, or
// Attach to install the plain counting bundles.
func NewMultiScheduler(devs ...*Device) *MultiScheduler {
	if len(devs) == 0 {
		panic("pmem: MultiScheduler needs at least one device")
	}
	m := &MultiScheduler{devs: devs, hooks: make([]*Hooks, len(devs))}
	n := func(uint64) { m.tick() }
	for i := range devs {
		m.hooks[i] = &Hooks{Store: n, Pwb: n, Fence: func() { m.tick() }}
	}
	return m
}

// Hooks returns member i's counting bundle for composition via ChainHooks.
// The bundle is immutable after NewMultiScheduler.
func (m *MultiScheduler) Hooks(i int) *Hooks { return m.hooks[i] }

// Attach installs the plain counting bundle on every member, replacing any
// hooks previously installed on them.
func (m *MultiScheduler) Attach() {
	for i, d := range m.devs {
		d.SetHooks(m.hooks[i])
	}
}

// Detach removes all hooks from every member (including any composition a
// harness installed around this scheduler's bundles) and disarms.
func (m *MultiScheduler) Detach() {
	m.armed.Store(false)
	for _, d := range m.devs {
		d.SetHooks(nil)
	}
}

// SetBudget bounds the total number of captures (Arm + CaptureNow); 0 means
// unlimited.
func (m *MultiScheduler) SetBudget(n int) {
	m.mu.Lock()
	m.budget = n
	m.mu.Unlock()
}

// Arm schedules an all-member capture at the eventsFromNow-th persistence
// event from now (1 = the very next event on any member), clearing any
// previously captured images. It reports false if the crash budget is
// exhausted.
func (m *MultiScheduler) Arm(eventsFromNow uint64, policy CrashPolicy) bool {
	if eventsFromNow == 0 {
		eventsFromNow = 1
	}
	m.mu.Lock()
	if m.budget > 0 && m.crashes >= m.budget {
		m.mu.Unlock()
		return false
	}
	m.imgs = nil
	m.imgEvent = 0
	m.policy = policy
	m.target = m.events.Load() + eventsFromNow
	m.mu.Unlock()
	m.armed.Store(true)
	return true
}

// Disarm cancels a pending crash without detaching hooks; captured images
// are kept.
func (m *MultiScheduler) Disarm() { m.armed.Store(false) }

// tick counts one event and captures every member's crash image when the
// armed target is reached. Runs on the mutating goroutine.
func (m *MultiScheduler) tick() {
	n := m.events.Add(1)
	if !m.armed.Load() {
		return
	}
	m.mu.Lock()
	if m.armed.Load() && m.imgs == nil && n >= m.target {
		m.capture()
		m.imgEvent = n
		m.armed.Store(false)
	}
	m.mu.Unlock()
}

// capture snapshots every member under the armed policy; caller holds m.mu.
func (m *MultiScheduler) capture() {
	imgs := make([][]byte, len(m.devs))
	for i, d := range m.devs {
		imgs[i] = d.CrashImage(m.policy)
	}
	m.imgs = imgs
	m.crashes++
}

// CaptureNow takes an immediate all-member capture under policy (for
// post-workload quiescent crashes), counting it against the budget. It
// returns nil if the budget is exhausted. Call only at a quiescent point or
// from a hook on the mutating goroutine.
func (m *MultiScheduler) CaptureNow(policy CrashPolicy) [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.budget > 0 && m.crashes >= m.budget {
		return nil
	}
	m.armed.Store(false)
	m.policy = policy
	m.capture()
	m.imgEvent = m.events.Load()
	return m.imgs
}

// Captured reports whether an armed crash has fired since the last Arm.
func (m *MultiScheduler) Captured() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.imgs != nil
}

// Images returns the captured per-member crash images (index-aligned with
// the devices passed to NewMultiScheduler) and the event index they were
// taken at, or nil and 0 if no crash has fired since the last Arm.
func (m *MultiScheduler) Images() ([][]byte, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.imgs, m.imgEvent
}

// Events returns the number of persistence events observed across all
// members since creation.
func (m *MultiScheduler) Events() uint64 { return m.events.Load() }

// Crashes returns the number of captures taken so far.
func (m *MultiScheduler) Crashes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashes
}
