package obshttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/pmem"
)

// startMux serves mux on loopback and returns a GET helper; shutdown is
// registered as cleanup.
func startMux(t *testing.T, mux http.Handler) func(path string) (int, string) {
	t.Helper()
	s, err := Listen("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err, ok := <-s.Err(); ok && err != nil {
			t.Errorf("serve loop: %v", err)
		}
	})
	return func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}
}

// TestMuxRoutes pins the shared endpoint layout both binaries serve: text
// and JSON metrics, ndjson trace, and the auditor route's 503-until-attached
// behavior.
func TestMuxRoutes(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("demo_total").Add(3)
	ring := obs.NewRingSink(16)
	var aud atomic.Pointer[audit.Auditor]

	get := startMux(t, NewMux(Sources{
		Registry: func() *obs.Registry { return reg },
		Trace:    ring,
		Auditor:  func() *audit.Auditor { return aud.Load() },
	}))

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "demo_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"demo_total"`) {
		t.Fatalf("/metrics?format=json = %d %q", code, body)
	}
	if code, _ := get("/trace"); code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	if code, _ := get("/audit"); code != http.StatusServiceUnavailable {
		t.Fatalf("/audit without auditor = %d, want 503", code)
	}

	dev := pmem.New(4096, pmem.ModelDRAM)
	aud.Store(audit.New(dev, audit.Options{}))
	if code, body := get("/audit"); code != 200 || body == "" {
		t.Fatalf("/audit with auditor = %d %q", code, body)
	}
}

// TestListenBindErrorIsSynchronous pins the reason this wrapper exists: an
// unusable address fails the caller, not a background goroutine.
func TestListenBindErrorIsSynchronous(t *testing.T) {
	s, err := Listen("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Listen(s.Addr(), http.NewServeMux()); err == nil {
		t.Fatal("second bind on the same address succeeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// TestTraceReqTimeline pins the /trace?req=<id> view: the request's spans as
// one JSON array, 404 for unknown/evicted ids, 400 for garbage.
func TestTraceReqTimeline(t *testing.T) {
	reg := obs.NewRegistry()
	spans := obs.NewSpanRecorder(reg, 64)
	spans.Emit(obs.SpanEvent{Req: 7, Op: "set", Phase: obs.PhaseParse, DurNs: 10})
	spans.Emit(obs.SpanEvent{Req: 7, Op: "set", Phase: obs.PhasePsyncWait, DurNs: 90, Shard: 2, BatchSeq: 5})
	spans.Emit(obs.SpanEvent{Req: 7, Op: "set", Phase: obs.PhaseRequest, DurNs: 120})
	spans.Emit(obs.SpanEvent{Req: 8, Op: "get", Phase: obs.PhaseRequest, DurNs: 3})

	get := startMux(t, NewMux(Sources{
		Registry: func() *obs.Registry { return reg },
		Spans:    spans,
	}))

	code, body := get("/trace?req=7")
	if code != 200 {
		t.Fatalf("/trace?req=7 = %d %q", code, body)
	}
	var tl []obs.SpanEvent
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl) != 3 || tl[1].Phase != obs.PhasePsyncWait || tl[1].Shard != 2 || tl[1].BatchSeq != 5 {
		t.Fatalf("timeline = %+v", tl)
	}
	if code, _ := get("/trace?req=999"); code != http.StatusNotFound {
		t.Fatalf("/trace?req=999 = %d, want 404", code)
	}
	if code, _ := get("/trace?req=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/trace?req=bogus = %d, want 400", code)
	}
	// Plain /trace includes the spans as ndjson.
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, `"phase":"psync_wait"`) {
		t.Fatalf("/trace = %d %q", code, body)
	}
}

// TestMetricsPromFormat pins the prom endpoint end to end: exposition
// content type and the cumulative bucket rendering.
func TestMetricsPromFormat(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("ops_total").Add(5)
	reg.Histogram("lat_ns").Observe(3)

	get := startMux(t, NewMux(Sources{Registry: func() *obs.Registry { return reg }}))
	code, body := get("/metrics?format=prom")
	if code != 200 {
		t.Fatalf("/metrics?format=prom = %d", code)
	}
	for _, want := range []string{
		"# TYPE ops_total counter",
		"ops_total 5",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="3"} 1`,
		`lat_ns_bucket{le="+Inf"} 1`,
		"lat_ns_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition lacks %q:\n%s", want, body)
		}
	}
}

// TestHealthReady pins the ops probes: /healthz is unconditional liveness,
// /readyz consults the hook and surfaces its reason on 503.
func TestHealthReady(t *testing.T) {
	var notReady atomic.Bool
	get := startMux(t, NewMux(Sources{
		Registry: func() *obs.Registry { return obs.NewRegistry() },
		Ready: func() error {
			if notReady.Load() {
				return &quarantineErr{}
			}
			return nil
		},
	}))
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	notReady.Store(true)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "quarantined") {
		t.Fatalf("/readyz degraded = %d %q, want 503 naming the quarantine", code, body)
	}
}

type quarantineErr struct{}

func (*quarantineErr) Error() string { return "1 shard quarantined" }

// TestMultiAuditor pins the sharded /audit view: every live auditor renders,
// nils are skipped, and format=json yields an array.
func TestMultiAuditor(t *testing.T) {
	a0 := audit.New(pmem.New(4096, pmem.ModelDRAM), audit.Options{})
	a2 := audit.New(pmem.New(4096, pmem.ModelDRAM), audit.Options{})
	get := startMux(t, NewMux(Sources{
		Registry: func() *obs.Registry { return obs.NewRegistry() },
		Auditors: func() []*audit.Auditor { return []*audit.Auditor{a0, nil, a2} },
	}))
	if code, body := get("/audit"); code != 200 || strings.Count(body, "audit report") != 2 {
		t.Fatalf("/audit = %d %q, want two summaries", code, body)
	}
	code, body := get("/audit?format=json")
	if code != 200 {
		t.Fatalf("/audit?format=json = %d", code)
	}
	var reps []json.RawMessage
	if err := json.Unmarshal([]byte(body), &reps); err != nil || len(reps) != 2 {
		t.Fatalf("json array = %v (err %v), want 2 reports", len(reps), err)
	}
}

// TestPprofGate pins that profiling routes exist only behind the flag.
func TestPprofGate(t *testing.T) {
	reg := func() *obs.Registry { return obs.NewRegistry() }
	getOff := startMux(t, NewMux(Sources{Registry: reg}))
	if code, _ := getOff("/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without Pprof = %d, want 404", code)
	}
	getOn := startMux(t, NewMux(Sources{Registry: reg, Pprof: true}))
	if code, body := getOn("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ with Pprof = %d", code)
	}
}

// TestConcurrentScrapeWhileEmitting drives /metrics, /trace and
// /trace?req=<id> while a workload emits spans and tx events — the race
// detector (make obstest runs this package under -race) proves the
// observability surface is safe against a live server.
func TestConcurrentScrapeWhileEmitting(t *testing.T) {
	reg := obs.NewRegistry()
	spans := obs.NewSpanRecorder(reg, 128)
	ring := obs.NewRingSink(128)
	get := startMux(t, NewMux(Sources{
		Registry: func() *obs.Registry { return reg },
		Trace:    ring,
		Spans:    spans,
	}))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := reg.Counter("emit_total")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ops.Inc()
				ring.Emit(obs.TxEvent{Seq: uint64(i)})
				req := uint64(g*10000 + i)
				spans.Emit(obs.SpanEvent{Req: req, Op: "set", Phase: obs.PhaseParse, DurNs: 1})
				spans.Emit(obs.SpanEvent{Req: req, Op: "set", Phase: obs.PhaseRequest, DurNs: 2})
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		if code, _ := get("/metrics?format=prom"); code != 200 {
			t.Errorf("/metrics scrape %d failed: %d", i, code)
		}
		if code, _ := get("/trace"); code != 200 {
			t.Errorf("/trace scrape %d failed: %d", i, code)
		}
		get("/trace?req=3") // may 404 (evicted); must not race or crash
	}
	close(stop)
	wg.Wait()
}
