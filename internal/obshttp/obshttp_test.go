package obshttp

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/pmem"
)

// TestMuxRoutes pins the shared endpoint layout both binaries serve: text
// and JSON metrics, ndjson trace, and the auditor route's 503-until-attached
// behavior.
func TestMuxRoutes(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("demo_total").Add(3)
	ring := obs.NewRingSink(16)
	var aud *audit.Auditor

	mux := NewMux(Sources{
		Registry: func() *obs.Registry { return reg },
		Trace:    ring,
		Auditor:  func() *audit.Auditor { return aud },
	})
	s, err := Listen("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err, ok := <-s.Err(); ok && err != nil {
			t.Errorf("serve loop: %v", err)
		}
	}()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "demo_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"demo_total"`) {
		t.Fatalf("/metrics?format=json = %d %q", code, body)
	}
	if code, _ := get("/trace"); code != 200 {
		t.Fatalf("/trace = %d", code)
	}
	if code, _ := get("/audit"); code != http.StatusServiceUnavailable {
		t.Fatalf("/audit without auditor = %d, want 503", code)
	}

	dev := pmem.New(4096, pmem.ModelDRAM)
	aud = audit.New(dev, audit.Options{})
	if code, body := get("/audit"); code != 200 || body == "" {
		t.Fatalf("/audit with auditor = %d %q", code, body)
	}
}

// TestListenBindErrorIsSynchronous pins the reason this wrapper exists: an
// unusable address fails the caller, not a background goroutine.
func TestListenBindErrorIsSynchronous(t *testing.T) {
	s, err := Listen("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Listen(s.Addr(), http.NewServeMux()); err == nil {
		t.Fatal("second bind on the same address succeeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s.Shutdown(ctx)
}
