// Package obshttp is the shared observability HTTP surface for the repo's
// long-running binaries (romulus-db -http, romulusd -http): one mux layout
// for /metrics, /trace and /audit, and a graceful http.Server wrapper that
// surfaces bind errors synchronously instead of dying silently in a
// goroutine.
package obshttp

import (
	"context"
	"net"
	"net/http"

	"repro/internal/audit"
	"repro/internal/obs"
)

// Sources names the live objects the mux serves. Registry is required; the
// other routes register only when their source is non-nil. Function fields
// are consulted per request, so a binary that swaps registries or auditors
// between workload points (romulus-db) serves whichever is current.
type Sources struct {
	// Registry returns the current metrics registry (required).
	Registry func() *obs.Registry
	// Trace, when non-nil, serves the retained per-transaction events as
	// JSON lines on /trace.
	Trace *obs.RingSink
	// Auditor, when non-nil, serves the current durability auditor's
	// summary on /audit; the route answers 503 while it returns nil.
	Auditor func() *audit.Auditor
}

// NewMux builds the shared mux: GET /metrics (text; ?format=json), GET
// /trace (ndjson), GET /audit (text; ?format=json). Callers add their own
// routes (e.g. romulusd's /stats) on the returned mux.
func NewMux(src Sources) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		r := src.Registry()
		if r == nil {
			http.Error(w, "no registry", http.StatusServiceUnavailable)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	if src.Trace != nil {
		ring := src.Trace
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			ring.WriteJSON(w)
		})
	}
	if src.Auditor != nil {
		cur := src.Auditor
		mux.HandleFunc("/audit", func(w http.ResponseWriter, req *http.Request) {
			a := cur()
			if a == nil {
				http.Error(w, "no auditor attached (run with -audit)", http.StatusServiceUnavailable)
				return
			}
			// Summary reads shadow state only — safe against a live store.
			rep := a.Summary()
			if req.URL.Query().Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				rep.WriteJSON(w)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rep.WriteText(w)
		})
	}
	return mux
}

// Server is a listening http.Server with graceful shutdown.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	errc chan error
}

// Listen binds addr and starts serving h in the background. The bind happens
// HERE, so an unusable address fails the caller immediately; errors from the
// serve loop itself arrive on Err.
func Listen(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: h},
		ln:   ln,
		errc: make(chan error, 1),
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.errc <- err
		}
		close(s.errc)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Err delivers serve-loop errors; it closes when the server stops.
func (s *Server) Err() <-chan error { return s.errc }

// Shutdown gracefully drains in-flight requests until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
