// Package obshttp is the shared observability HTTP surface for the repo's
// long-running binaries (romulus-db -http, romulusd -http): one mux layout
// for /metrics, /trace, /audit, /healthz and /readyz (plus opt-in
// /debug/pprof), and a graceful http.Server wrapper that surfaces bind
// errors synchronously instead of dying silently in a goroutine.
//
// Endpoint summary (docs/OBSERVABILITY.md is the full reference):
//
//	GET /metrics                 text counters (obs.WriteText)
//	GET /metrics?format=json     one JSON object
//	GET /metrics?format=prom     Prometheus exposition (counters, gauges,
//	                             cumulative-le histograms)
//	GET /trace                   retained events as JSON lines: tx events
//	                             (Trace ring) then request spans (Spans)
//	GET /trace?req=<id>          one request's span timeline as a JSON
//	                             array (404 once evicted from the ring)
//	GET /audit                   durability auditor summaries (503 until
//	                             one is attached; ?format=json)
//	GET /healthz                 liveness: always 200 once serving
//	GET /readyz                  readiness: 200, or 503 + reason from the
//	                             Ready hook (e.g. quarantined shards)
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/audit"
	"repro/internal/obs"
)

// Sources names the live objects the mux serves. Registry is required; the
// other routes register only when their source is non-nil. Function fields
// are consulted per request, so a binary that swaps registries or auditors
// between workload points (romulus-db) serves whichever is current.
type Sources struct {
	// Registry returns the current metrics registry (required).
	Registry func() *obs.Registry
	// Trace, when non-nil, serves the retained per-transaction events as
	// JSON lines on /trace.
	Trace *obs.RingSink
	// Spans, when non-nil, adds request spans to /trace and enables the
	// /trace?req=<id> timeline view.
	Spans *obs.SpanRecorder
	// Auditors, when non-nil, serves every live durability auditor on
	// /audit (one summary per shard). Takes precedence over Auditor.
	Auditors func() []*audit.Auditor
	// Auditor, when non-nil (and Auditors is nil), serves the single
	// current auditor on /audit; the route answers 503 while it returns
	// nil. Kept for single-engine binaries (romulus-db).
	Auditor func() *audit.Auditor
	// Ready, when non-nil, gates /readyz: a non-nil error answers 503 with
	// the error text as the reason. Nil means "ready once serving".
	Ready func() error
	// Pprof registers net/http/pprof under /debug/pprof/ (off by default:
	// profiling endpoints expose goroutine stacks and should be opted
	// into, not ambient).
	Pprof bool
}

// NewMux builds the shared mux. Callers add their own routes (e.g.
// romulusd's /stats) on the returned mux.
func NewMux(src Sources) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		r := src.Registry()
		if r == nil {
			http.Error(w, "no registry", http.StatusServiceUnavailable)
			return
		}
		switch req.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			r.WriteProm(w)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			r.WriteText(w)
		}
	})
	if src.Trace != nil || src.Spans != nil {
		ring, spans := src.Trace, src.Spans
		mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
			if q := req.URL.Query().Get("req"); q != "" {
				if spans == nil {
					http.Error(w, "request spans not enabled", http.StatusNotFound)
					return
				}
				id, err := strconv.ParseUint(q, 10, 64)
				if err != nil {
					http.Error(w, "req must be a request id", http.StatusBadRequest)
					return
				}
				tl := spans.ByReq(id)
				if len(tl) == 0 {
					http.Error(w, fmt.Sprintf("no retained spans for req %d", id), http.StatusNotFound)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(tl)
				return
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			if ring != nil {
				ring.WriteJSON(w)
			}
			if spans != nil {
				spans.WriteJSON(w)
			}
		})
	}
	if src.Auditors != nil || src.Auditor != nil {
		many, one := src.Auditors, src.Auditor
		mux.HandleFunc("/audit", func(w http.ResponseWriter, req *http.Request) {
			var live []*audit.Auditor
			if many != nil {
				for _, a := range many() {
					if a != nil {
						live = append(live, a)
					}
				}
			} else if a := one(); a != nil {
				live = append(live, a)
			}
			if len(live) == 0 {
				http.Error(w, "no auditor attached (run with -audit)", http.StatusServiceUnavailable)
				return
			}
			// Summary reads shadow state only — safe against a live store.
			if req.URL.Query().Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				if len(live) == 1 {
					live[0].Summary().WriteJSON(w)
					return
				}
				reps := make([]*audit.Report, len(live))
				for i, a := range live {
					reps[i] = a.Summary()
				}
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(reps)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for i, a := range live {
				if len(live) > 1 {
					fmt.Fprintf(w, "== auditor %d ==\n", i)
				}
				a.Summary().WriteText(w)
			}
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if src.Ready != nil {
			if err := src.Ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	})
	if src.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a listening http.Server with graceful shutdown.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	errc chan error
}

// Listen binds addr and starts serving h in the background. The bind happens
// HERE, so an unusable address fails the caller immediately; errors from the
// serve loop itself arrive on Err.
func Listen(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: h},
		ln:   ln,
		errc: make(chan error, 1),
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.errc <- err
		}
		close(s.errc)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Err delivers serve-loop errors; it closes when the server stops.
func (s *Server) Err() <-chan error { return s.errc }

// Shutdown gracefully drains in-flight requests until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
