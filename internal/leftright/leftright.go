// Package leftright implements the Left-Right universal construct
// (Ramalhete & Correia) adapted for RomulusLR (§5.3 of the paper). It gives
// read operations wait-free population-oblivious progress: a reader arrives
// on the current version's read indicator, observes which of the two
// instances to read, reads, and departs — it never waits for any other
// thread. The single writer (serialized externally, by flat combining in
// RomulusLR) toggles the instance pointer and waits for readers to drain
// off the instance it is about to modify.
//
// In RomulusLR the two "instances" are the main and back persistent
// regions; readers directed at back use synthetic pointers (an offset added
// at every load). This package only manages the control variables; the
// engine maps instances to regions.
package leftright

import "repro/internal/hsync"

// Instance identifies which of the two data instances readers should use.
type Instance int32

// The two instances. For RomulusLR, Main is the region user code mutates
// and Back is the twin copy readable through synthetic pointers.
const (
	Main Instance = 0
	Back Instance = 1
)

// LR holds the Left-Right control state: the instance pointer, the version
// index, and one read indicator per version. The zero value directs readers
// at Main with version 0 and is ready to use.
type LR struct {
	leftRight    atomicInstance
	versionIndex atomicInstance // reused 0/1 type for the version too
	readers      [2]hsync.ReadIndicator
}

// Arrive registers thread tid as a reader and returns the version index to
// pass to Depart. Wait-free: one atomic increment and one load.
func (lr *LR) Arrive(tid int) int {
	vi := int(lr.versionIndex.Load())
	lr.readers[vi].Arrive(tid)
	return vi
}

// Depart deregisters a reader that arrived with version index vi.
func (lr *LR) Depart(tid, vi int) {
	lr.readers[vi].Depart(tid)
}

// Read returns the instance the reader should use. Must be called after
// Arrive.
func (lr *LR) Read() Instance {
	return lr.leftRight.Load()
}

// Toggle directs new readers at instance to and then waits until no reader
// can still be observing the other instance, using the classic Left-Right
// double version-toggle. On return the caller may safely modify the
// instance readers were diverted away from. Only the (single) writer may
// call it.
func (lr *LR) Toggle(to Instance) {
	lr.leftRight.Store(to)
	prev := lr.versionIndex.Load()
	next := 1 - prev
	// Wait for stragglers on the version we are about to expose, then
	// switch versions and wait for readers still on the old version. After
	// both waits, every active reader arrived after the instance switch and
	// is therefore on instance `to`.
	lr.readers[next].WaitEmpty()
	lr.versionIndex.Store(next)
	lr.readers[prev].WaitEmpty()
}
