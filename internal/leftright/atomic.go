package leftright

import "sync/atomic"

// atomicInstance is an atomic Instance value.
type atomicInstance struct {
	v atomic.Int32
}

func (a *atomicInstance) Load() Instance   { return Instance(a.v.Load()) }
func (a *atomicInstance) Store(i Instance) { a.v.Store(int32(i)) }
