package leftright

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/hsync"
)

// The publish interleavings replica reads depend on during a shard split
// (internal/shard routedRead): readers arrive/depart while the single writer
// toggles instances, with NO synchronization between them other than the
// left-right protocol itself.
//
// payload is mutated by the writer with plain (non-atomic) stores and read by
// readers with plain loads. If any interleaving of Arrive/Read/Depart with
// Toggle lets a reader overlap the writer's instance, the race detector
// reports it; the a == b invariant additionally catches torn views even
// without -race.
func TestReadDuringPublishPayloadIntegrity(t *testing.T) {
	var lr LR
	var reg hsync.Registry
	// payload[inst] = {a, b}; the writer always leaves a == b.
	var payload [2][2]uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		slow := r%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid, err := reg.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer reg.Release(tid)
			for {
				select {
				case <-stop:
					return
				default:
				}
				vi := lr.Arrive(tid)
				inst := lr.Read()
				a := payload[inst][0]
				if slow {
					// Straddle the toggle between the two loads: the writer
					// must still be waiting for this registered reader.
					runtime.Gosched()
				}
				b := payload[inst][1]
				lr.Depart(tid, vi)
				if a != b {
					t.Errorf("torn read on instance %d: a=%d b=%d", inst, a, b)
					return
				}
			}
		}()
	}
	cur := Main
	for n := uint64(1); n <= 400; n++ {
		writeSide := 1 - cur
		// Plain stores: only Toggle's drain makes this safe.
		payload[writeSide][0] = n
		payload[writeSide][1] = n
		lr.Toggle(writeSide)
		cur = writeSide
	}
	close(stop)
	wg.Wait()
}

// Mid-toggle progress and publish visibility: while the writer is parked in
// Toggle draining a reader pinned on the old instance, new readers must (a)
// complete Arrive/Read/Depart cycles without blocking — the wait-free
// population-oblivious property — and (b) once they observe the new instance,
// never see the pointer regress. This is exactly the window an online shard
// split spends in cutover: the publish must be visible to new replica reads
// before the drain of old ones finishes.
func TestReadersSeePublishedInstanceMidToggle(t *testing.T) {
	var lr LR
	pinned := lr.Arrive(0) // version 0, instance Main
	toggled := make(chan struct{})
	go func() {
		lr.Toggle(Back) // blocks in the second WaitEmpty on the pinned reader
		close(toggled)
	}()

	seenBack := false
	cycles := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		vi := lr.Arrive(1)
		inst := lr.Read()
		lr.Depart(1, vi)
		if inst == Back {
			seenBack = true
			cycles++
		} else if seenBack {
			t.Fatal("instance pointer regressed to Main mid-toggle")
		}
		if cycles >= 1000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readers starved mid-toggle: %d post-publish cycles, seenBack=%v", cycles, seenBack)
		}
	}

	// The pinned reader still holds version 0, so Toggle cannot have passed
	// its second drain, no matter how the above cycles interleaved.
	select {
	case <-toggled:
		t.Fatal("Toggle returned while a reader was pinned on the old instance")
	default:
	}
	lr.Depart(0, pinned)
	select {
	case <-toggled:
	case <-time.After(5 * time.Second):
		t.Fatal("Toggle never completed after the pinned reader departed")
	}
	vi := lr.Arrive(0)
	if got := lr.Read(); got != Back {
		t.Errorf("Read after completed Toggle = %v, want Back", got)
	}
	lr.Depart(0, vi)
}
