package leftright

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hsync"
)

func TestZeroValueDirectsReadersAtMain(t *testing.T) {
	var lr LR
	vi := lr.Arrive(0)
	if got := lr.Read(); got != Main {
		t.Errorf("Read = %v, want Main", got)
	}
	lr.Depart(0, vi)
}

func TestToggleSwitchesInstance(t *testing.T) {
	var lr LR
	lr.Toggle(Back)
	vi := lr.Arrive(0)
	if got := lr.Read(); got != Back {
		t.Errorf("Read after Toggle(Back) = %v", got)
	}
	lr.Depart(0, vi)
	lr.Toggle(Main)
	vi = lr.Arrive(0)
	if got := lr.Read(); got != Main {
		t.Errorf("Read after Toggle(Main) = %v", got)
	}
	lr.Depart(0, vi)
}

func TestToggleWaitsForReaderOnOtherInstance(t *testing.T) {
	var lr LR
	vi := lr.Arrive(0) // reader on Main
	done := make(chan struct{})
	go func() {
		lr.Toggle(Back) // must wait for the Main reader
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Toggle returned while a reader was active on the old instance")
	case <-time.After(20 * time.Millisecond):
	}
	lr.Depart(0, vi)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Toggle never completed after reader departed")
	}
}

// The core Left-Right safety property: after Toggle(to) returns, no reader
// is observing the other instance, ever, under heavy churn.
func TestNoReaderOnWriteSideInstance(t *testing.T) {
	var lr LR
	var reg hsync.Registry
	// observing[i] counts readers currently using instance i.
	var observing [2]atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tid, err := reg.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer reg.Release(tid)
			for {
				select {
				case <-stop:
					return
				default:
				}
				vi := lr.Arrive(tid)
				inst := lr.Read()
				observing[inst].Add(1)
				observing[inst].Add(-1)
				lr.Depart(tid, vi)
			}
		}()
	}
	cur := Main
	for i := 0; i < 300; i++ {
		next := 1 - cur
		lr.Toggle(next)
		// Writer now owns instance `cur`; no reader may be observing it.
		for k := 0; k < 10; k++ {
			if n := observing[cur].Load(); n != 0 {
				t.Fatalf("iteration %d: %d readers on the writer-side instance", i, n)
			}
		}
		cur = next
	}
	close(stop)
	wg.Wait()
}

// Readers must be wait-free: an Arrive/Read/Depart cycle completes even
// while a writer is blocked mid-toggle waiting for someone else.
func TestReadersWaitFreeDuringToggle(t *testing.T) {
	var lr LR
	blocker := lr.Arrive(0) // keeps the writer waiting
	toggling := make(chan struct{})
	go func() {
		close(toggling)
		lr.Toggle(Back)
	}()
	<-toggling
	time.Sleep(5 * time.Millisecond) // let the writer reach its wait loop
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			vi := lr.Arrive(1)
			_ = lr.Read()
			lr.Depart(1, vi)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reader blocked while writer mid-toggle")
	}
	lr.Depart(0, blocker)
}

func BenchmarkArriveReadDepart(b *testing.B) {
	var lr LR
	var reg hsync.Registry
	b.RunParallel(func(pb *testing.PB) {
		tid, err := reg.Acquire()
		if err != nil {
			b.Error(err)
			return
		}
		defer reg.Release(tid)
		for pb.Next() {
			vi := lr.Arrive(tid)
			_ = lr.Read()
			lr.Depart(tid, vi)
		}
	})
}
