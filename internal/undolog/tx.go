package undolog

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/ptm"
)

// Tx implements ptm.Tx with undo logging. For every range modified for the
// first time in the transaction, the protocol is:
//
//  1. append (addr, len, old data) to the log; pwb; pfence
//  2. bump the persistent entry count; pwb; pfence
//  3. perform the in-place store; pwb
//
// Step 1's fence guarantees the old data is durable before the count admits
// the entry; step 2's fence guarantees the entry is durable before the
// in-place modification can possibly reach the media. This is the ordering
// obligation that gives undo-log PTMs their per-range fence cost (Table 1).
type Tx struct {
	e        *Engine
	readOnly bool
	logTail  int             // next free byte in the log region
	logged   map[uint64]bool // word addresses already logged this tx
	failed   error           // sticky failure (log overflow)

	// Trace accounting (plain fields: writers are serialized, readers own
	// their stack-allocated Tx). loggedBytes is the undo-log volume, entry
	// headers included.
	loads       uint64
	stores      uint64
	writeBytes  uint64
	loggedBytes uint64
}

var _ ptm.Tx = (*Tx)(nil)

func (t *Tx) mustWrite() {
	if t.readOnly {
		panic("undolog: mutating operation inside a read-only transaction")
	}
}

func (t *Tx) checkRange(p ptm.Ptr, n int) {
	if int(p)+n > t.e.regionSize {
		panic(fmt.Sprintf("undolog: access [%d,%d) outside region of %d bytes", p, int(p)+n, t.e.regionSize))
	}
}

// logRange appends an undo entry snapshotting [p, p+n) and makes it
// durable. Reports false (and poisons the transaction) on overflow.
func (t *Tx) logRange(p ptm.Ptr, n int) bool {
	if t.failed != nil {
		return false
	}
	d := t.e.dev
	entry := 16 + ptm.Align(n, 8)
	if t.logTail+entry > t.e.logBase+t.e.logSize {
		t.failed = ErrLogFull
		return false
	}
	o := t.logTail
	d.Store64(o, uint64(p))
	d.Store64(o+8, uint64(n))
	d.CopyWithin(o+16, t.e.mainBase+int(p), n)
	d.PwbRange(o, entry)
	d.Pfence()
	cnt, ok := decodeCount(d.Load64(offLogCount))
	if !ok {
		// The count word failed its self-check mid-run: a media fault
		// corrupted the loaded value. Poison the transaction so it rolls
		// back rather than publishing a count derived from garbage.
		t.failed = fmt.Errorf("undolog: log count word fails its self-check: %w", ErrCorruptLog)
		return false
	}
	d.Store64(offLogCount, encodeCount(cnt+1))
	d.Pwb(offLogCount)
	d.Pfence()
	t.logTail += entry
	t.loggedBytes += uint64(entry)
	return true
}

// logWord logs an 8-byte-aligned word once per transaction.
func (t *Tx) logWord(p ptm.Ptr) bool {
	w := uint64(p) &^ 7
	if t.logged[w] {
		return t.failed == nil
	}
	if !t.logRange(ptm.Ptr(w), 8) {
		return false
	}
	t.logged[w] = true
	return true
}

// Load8 implements ptm.Tx.
func (t *Tx) Load8(p ptm.Ptr) byte {
	t.checkRange(p, 1)
	t.loads++
	return t.e.dev.Load8(t.e.mainBase + int(p))
}

// Load16 implements ptm.Tx.
func (t *Tx) Load16(p ptm.Ptr) uint16 {
	t.checkRange(p, 2)
	t.loads++
	return t.e.dev.Load16(t.e.mainBase + int(p))
}

// Load32 implements ptm.Tx.
func (t *Tx) Load32(p ptm.Ptr) uint32 {
	t.checkRange(p, 4)
	t.loads++
	return t.e.dev.Load32(t.e.mainBase + int(p))
}

// Load64 implements ptm.Tx.
func (t *Tx) Load64(p ptm.Ptr) uint64 {
	t.checkRange(p, 8)
	t.loads++
	return t.e.dev.Load64(t.e.mainBase + int(p))
}

// LoadBytes implements ptm.Tx.
func (t *Tx) LoadBytes(p ptm.Ptr, dst []byte) {
	t.checkRange(p, len(dst))
	t.loads++
	t.e.dev.LoadBytes(t.e.mainBase+int(p), dst)
}

// Store8 implements ptm.Tx.
func (t *Tx) Store8(p ptm.Ptr, v byte) {
	t.mustWrite()
	t.checkRange(p, 1)
	if !t.logWord(p) {
		return
	}
	off := t.e.mainBase + int(p)
	t.e.dev.Store8(off, v)
	t.stores++
	t.writeBytes++
	t.e.dev.Pwb(off)
}

// Store16 implements ptm.Tx.
func (t *Tx) Store16(p ptm.Ptr, v uint16) {
	t.mustWrite()
	t.checkRange(p, 2)
	if !t.logWord(p) || (uint64(p)&7) > 6 && !t.logWord(p+1) {
		return
	}
	off := t.e.mainBase + int(p)
	t.e.dev.Store16(off, v)
	t.stores++
	t.writeBytes += 2
	t.e.dev.PwbRange(off, 2)
}

// Store32 implements ptm.Tx.
func (t *Tx) Store32(p ptm.Ptr, v uint32) {
	t.mustWrite()
	t.checkRange(p, 4)
	if !t.logWord(p) || (uint64(p)&7) > 4 && !t.logWord(p+4) {
		return
	}
	off := t.e.mainBase + int(p)
	t.e.dev.Store32(off, v)
	t.stores++
	t.writeBytes += 4
	t.e.dev.PwbRange(off, 4)
}

// Store64 implements ptm.Tx.
func (t *Tx) Store64(p ptm.Ptr, v uint64) {
	t.mustWrite()
	t.checkRange(p, 8)
	if !t.logWord(p) || (uint64(p)&7) != 0 && !t.logWord(p+7) {
		return
	}
	off := t.e.mainBase + int(p)
	t.e.dev.Store64(off, v)
	t.stores++
	t.writeBytes += 8
	t.e.dev.PwbRange(off, 8)
}

// StoreBytes implements ptm.Tx. Byte ranges are logged as one entry (like
// PMDK's range snapshots) rather than per word.
func (t *Tx) StoreBytes(p ptm.Ptr, src []byte) {
	t.mustWrite()
	t.checkRange(p, len(src))
	if len(src) == 0 {
		return
	}
	if !t.logRange(p, len(src)) {
		return
	}
	off := t.e.mainBase + int(p)
	t.e.dev.StoreBytes(off, src)
	t.stores++
	t.writeBytes += uint64(len(src))
	t.e.dev.PwbRange(off, len(src))
}

// memset zeroes fresh allocations through the same logged path.
func (t *Tx) memset(p ptm.Ptr, n int) {
	if n == 0 || !t.logRange(p, n) {
		return
	}
	off := t.e.mainBase + int(p)
	t.e.dev.Memset(off, 0, n)
	t.stores++
	t.writeBytes += uint64(n)
	t.e.dev.PwbRange(off, n)
}

// Alloc implements ptm.Tx.
func (t *Tx) Alloc(n int) (ptm.Ptr, error) {
	t.mustWrite()
	p, err := t.e.heap.Alloc(n)
	if err != nil {
		if errors.Is(err, alloc.ErrOutOfMemory) {
			return 0, ptm.ErrOutOfMemory
		}
		return 0, err
	}
	if t.failed != nil {
		return 0, t.failed
	}
	t.memset(ptm.Ptr(p), n)
	if t.failed != nil {
		return 0, t.failed
	}
	return ptm.Ptr(p), nil
}

// Free implements ptm.Tx.
func (t *Tx) Free(p ptm.Ptr) error {
	t.mustWrite()
	if err := t.e.heap.Free(uint64(p)); err != nil {
		if errors.Is(err, alloc.ErrBadFree) {
			return ptm.ErrBadFree
		}
		return err
	}
	return t.failed
}

// Root implements ptm.Tx.
func (t *Tx) Root(i int) ptm.Ptr {
	if i < 0 || i >= ptm.NumRoots {
		panic(fmt.Sprintf("undolog: root index %d out of [0,%d)", i, ptm.NumRoots))
	}
	return ptm.Ptr(t.e.dev.Load64(t.e.mainBase + rootsOff + 8*i))
}

// SetRoot implements ptm.Tx.
func (t *Tx) SetRoot(i int, p ptm.Ptr) {
	if i < 0 || i >= ptm.NumRoots {
		panic(fmt.Sprintf("undolog: root index %d out of [0,%d)", i, ptm.NumRoots))
	}
	t.Store64(ptm.Ptr(rootsOff+8*i), uint64(p))
}
