// Package undolog implements a PMDK-style undo-log persistent transactional
// memory, the strongest baseline the Romulus paper compares against
// (libpmemobj; §2 and §6). Before each first modification of a word inside
// a transaction, the word's old value is appended to a persistent undo log
// and made durable (two fences per logged range: entry, then count); only
// then is the in-place store issued. Commit drains outstanding write-backs
// and truncates the log. Recovery applies the log backwards, restoring the
// pre-transaction state.
//
// Concurrency follows the paper's evaluation setup: PMDK has no built-in
// concurrent transactions, so accesses are guarded by a global
// reader-preference reader-writer lock (the C++ benchmark used
// std::shared_timed_mutex). Reader preference is what starves writers at
// high reader counts in Figure 7 — reproduced faithfully here.
package undolog

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Device layout:
//
//	[ head : headSize ][ main : regionSize ][ log : logSize ]
const (
	offMagic      = 0
	offVersion    = 8
	offRegionSize = 16
	offLogSize    = 24
	offHeadSum    = 32 // checksum of the static header words
	offLogCount   = 64 // self-checked count of valid undo entries (encodeCount), own cache line
	headSize      = 256
)

const (
	magicValue    = 0x504D444B554E444F // "PMDKUNDO"
	layoutVersion = 1
)

// Main-region layout mirrors the Romulus engines: reserved line, roots,
// heap — so the same data-structure code runs unchanged on this engine.
const (
	rootsOff = 64
	heapBase = rootsOff + ptm.NumRoots*8
)

// Config tunes the engine.
type Config struct {
	// Model is the persistence model for freshly created devices.
	Model pmem.Model
	// LogSize is the undo-log capacity in bytes (default 1 MiB). A
	// transaction whose log outgrows it fails with ErrLogFull.
	LogSize int
	// Audit, when non-nil, receives the engine's durability-protocol
	// markers (ptm.Auditor).
	Audit ptm.Auditor
}

// ErrLogFull is returned when a transaction overflows the undo log.
var ErrLogFull = errors.New("undolog: transaction exceeds undo log capacity")

// ErrCorruptHeader aliases the repository-wide typed error returned
// (wrapped) by Open when the header magic is intact but the checksum over
// the static header words fails — torn head metadata.
var ErrCorruptHeader = ptm.ErrCorruptHeader

// ErrCorruptLog aliases the typed error returned (wrapped) by Open when the
// undo log's structure is invalid (entries running off the log region or
// addressing bytes outside main); applying it would corrupt the heap.
var ErrCorruptLog = ptm.ErrCorruptLog

// headerChecksum covers the static header words written once at format.
func headerChecksum(version, regionSize, logSize uint64) uint64 {
	return ptm.HeaderChecksum(magicValue, version, regionSize, logSize)
}

// The log-count word is the engine's single linchpin: recovery replays
// exactly count entries, so a rotted count silently replays stale log bytes
// over committed data. The word is therefore self-checking: the count lives
// in the low 32 bits and a hash of it in the high 32. encodeCount(0) == 0,
// so a freshly formatted (all-zero) word and the commit-time truncation both
// stay plain zeroes — and RecoveryPending's nonzero test keeps working. The
// word is written with atomic 8-byte stores (never torn, per the paper's
// word-atomicity assumption), so only at-rest rot can break the pairing.

func countMix(n uint64) uint64 {
	x := (n + 1) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	return x >> 32
}

func encodeCount(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return n&0xFFFFFFFF | countMix(n&0xFFFFFFFF)<<32
}

func decodeCount(w uint64) (uint64, bool) {
	if w == 0 {
		return 0, true
	}
	n := w & 0xFFFFFFFF
	if w>>32 != countMix(n) {
		return 0, false
	}
	return n, true
}

const defaultLogSize = 1 << 20

// Engine is the undo-log PTM. It implements ptm.HandlePTM.
type Engine struct {
	dev        *pmem.Device
	mainBase   int
	logBase    int
	regionSize int
	logSize    int
	heap       *alloc.Heap

	wmu sync.Mutex // serializes writers (the "W" side of the global lock)
	rw  prefLock   // reader-preference reader-writer lock

	wtx Tx // single writer transaction, reused

	updates   atomic.Uint64
	reads     atomic.Uint64
	rollbacks atomic.Uint64

	// trace receives one obs.TxEvent per transaction when non-nil; set only
	// at quiescent points (SetTrace).
	trace obs.Sink

	// aud receives durability-protocol markers when non-nil. Set at Open
	// (Config.Audit) or at a quiescent point (SetAuditor).
	aud ptm.Auditor
}

var _ ptm.HandlePTM = (*Engine)(nil)

// MinRegionSize is the smallest usable main-region size.
const MinRegionSize = heapBase + alloc.MinSize

// New creates and formats a fresh engine with the given main-region size.
func New(regionSize int, cfg Config) (*Engine, error) {
	if cfg.LogSize == 0 {
		cfg.LogSize = defaultLogSize
	}
	if regionSize < MinRegionSize {
		return nil, fmt.Errorf("undolog: region size %d below minimum %d", regionSize, MinRegionSize)
	}
	regionSize = ptm.Align(regionSize, pmem.LineSize)
	cfg.LogSize = ptm.Align(cfg.LogSize, pmem.LineSize)
	dev := pmem.New(headSize+regionSize+cfg.LogSize, cfg.Model)
	return Open(dev, cfg)
}

// Open attaches to a device, formatting a blank one and recovering a used
// one (rolling back any in-flight transaction recorded in the log).
func Open(dev *pmem.Device, cfg Config) (*Engine, error) {
	if cfg.LogSize == 0 {
		cfg.LogSize = defaultLogSize
	}
	cfg.LogSize = ptm.Align(cfg.LogSize, pmem.LineSize)
	regionSize := dev.Size() - headSize - cfg.LogSize
	if regionSize < MinRegionSize {
		return nil, fmt.Errorf("undolog: device too small for region+log")
	}
	e := &Engine{
		dev:        dev,
		mainBase:   headSize,
		logBase:    headSize + regionSize,
		regionSize: regionSize,
		logSize:    cfg.LogSize,
	}
	e.wtx = Tx{e: e, logged: make(map[uint64]bool)}
	e.aud = cfg.Audit
	openTrips := dev.FaultsTripped()
	if dev.Load64(offMagic) != magicValue {
		// A NONZERO wrong magic with a header checksum that validates against
		// the true magic constant is a rotted magic word, not a blank device;
		// reformatting would silently discard the region. Magic zero stays
		// "unformatted" — a crash mid-format can leave a durable checksum
		// before the magic publish, and rot never zeroes the whole word.
		if sum := dev.Load64(offHeadSum); dev.Load64(offMagic) != 0 && sum != 0 &&
			sum == headerChecksum(dev.Load64(offVersion), dev.Load64(offRegionSize), dev.Load64(offLogSize)) {
			return nil, fmt.Errorf("undolog: magic %#x but header checksum matches a formatted region: %w",
				dev.Load64(offMagic), ErrCorruptHeader)
		}
		if a := e.aud; a != nil {
			a.TxBegin(e.Name(), "format")
		}
		if err := e.format(); err != nil {
			if a := e.aud; a != nil {
				a.TxEnd()
			}
			return nil, err
		}
		if a := e.aud; a != nil {
			a.DurablePoint("format")
			a.TxEnd()
		}
	} else {
		if sum := headerChecksum(dev.Load64(offVersion), dev.Load64(offRegionSize), dev.Load64(offLogSize)); dev.Load64(offHeadSum) != sum {
			return nil, fmt.Errorf("undolog: header checksum %#x, computed %#x: %w",
				dev.Load64(offHeadSum), sum, ErrCorruptHeader)
		}
		if got := dev.Load64(offVersion); got != layoutVersion {
			return nil, fmt.Errorf("undolog: layout version %d, want %d", got, layoutVersion)
		}
		if got := dev.Load64(offRegionSize); got != uint64(regionSize) {
			return nil, fmt.Errorf("undolog: header region size %d, device implies %d", got, regionSize)
		}
		if a := e.aud; a != nil {
			a.TxBegin(e.Name(), "recovery")
		}
		if err := e.recover(); err != nil {
			if a := e.aud; a != nil {
				a.TxEnd()
			}
			return nil, err
		}
		if a := e.aud; a != nil {
			a.DurablePoint("recovery")
			a.TxEnd()
		}
	}
	if dev.FaultsTripped() != openTrips {
		return nil, fmt.Errorf("undolog: media fault during open: %w", dev.FaultError())
	}
	heap, err := alloc.Open((*heapMem)(e), heapBase)
	if err != nil {
		return nil, fmt.Errorf("undolog: opening allocator: %w", err)
	}
	e.heap = heap
	return e, nil
}

func (e *Engine) format() error {
	d := e.dev
	d.Store64(offVersion, layoutVersion)
	d.Store64(offRegionSize, uint64(e.regionSize))
	d.Store64(offLogSize, uint64(e.logSize))
	d.Store64(offHeadSum, headerChecksum(layoutVersion, uint64(e.regionSize), uint64(e.logSize)))
	d.Store64(offLogCount, 0)
	if _, err := alloc.Format((*rawMem)(e), heapBase, uint64(e.regionSize-heapBase)); err != nil {
		return fmt.Errorf("undolog: formatting heap: %w", err)
	}
	wm := e.rawHeapTop()
	d.PwbRange(0, headSize)
	d.PwbRange(e.mainBase, int(wm))
	d.Pfence()
	d.Store64(offMagic, magicValue)
	d.Pwb(offMagic)
	d.Pfence()
	return nil
}

func (e *Engine) rawHeapTop() uint64 {
	h, err := alloc.Open((*rawMem)(e), heapBase)
	if err != nil {
		panic(fmt.Sprintf("undolog: heap vanished after format: %v", err))
	}
	return h.Top()
}

// recover rolls back an interrupted transaction by applying the undo log in
// reverse, then truncates the log. Every entry is bounds-checked before
// anything is applied: the entry count and each (addr, len) pair come from
// the media, and blindly trusting a corrupted value would scribble outside
// main or walk off the log region. Structural damage aborts recovery with
// ErrCorruptLog instead.
func (e *Engine) recover() error {
	d := e.dev
	raw, ok := decodeCount(d.Load64(offLogCount))
	if !ok {
		return fmt.Errorf("undolog: log count word %#x fails its self-check (rotted count): %w",
			d.Load64(offLogCount), ErrCorruptLog)
	}
	count := int(raw)
	if count == 0 {
		return nil
	}
	// An entry occupies at least 16 bytes, so the log bounds the count.
	if count < 0 || count > e.logSize/16 {
		return fmt.Errorf("undolog: log count %d exceeds capacity of %d-byte log: %w",
			count, e.logSize, ErrCorruptLog)
	}
	// Walk forward to find and validate entry offsets, then apply in
	// reverse.
	offs := make([]int, 0, count)
	off := e.logBase
	logEnd := e.logBase + e.logSize
	for i := 0; i < count; i++ {
		if off+16 > logEnd {
			return fmt.Errorf("undolog: entry %d/%d starts past log end: %w", i, count, ErrCorruptLog)
		}
		addr := d.Load64(off)
		n := d.Load64(off + 8)
		if n > uint64(e.logSize) || off+16+ptm.Align(int(n), 8) > logEnd {
			return fmt.Errorf("undolog: entry %d/%d length %d runs off the log: %w", i, count, n, ErrCorruptLog)
		}
		if addr+n > uint64(e.regionSize) {
			return fmt.Errorf("undolog: entry %d/%d addresses [%d,%d) outside main region of %d bytes: %w",
				i, count, addr, addr+n, e.regionSize, ErrCorruptLog)
		}
		offs = append(offs, off)
		off += 16 + ptm.Align(int(n), 8)
	}
	for i := count - 1; i >= 0; i-- {
		o := offs[i]
		addr := int(d.Load64(o))
		n := int(d.Load64(o + 8))
		d.CopyWithin(e.mainBase+addr, o+16, n)
		d.PwbRange(e.mainBase+addr, n)
	}
	d.Pfence()
	d.Store64(offLogCount, 0)
	d.Pwb(offLogCount)
	d.Pfence()
	return nil
}

// RecoveryPending reports whether opening a device with these media
// contents would perform actual recovery work (a non-empty undo log).
func RecoveryPending(img []byte) bool {
	if len(img) < headSize {
		return false
	}
	load := func(off int) uint64 {
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(img[off+i])
		}
		return v
	}
	return load(offMagic) == magicValue && load(offLogCount) != 0
}

// beginTx prepares the writer transaction. Caller holds the writer lock.
func (e *Engine) beginTx() *Tx {
	t := &e.wtx
	t.logTail = e.logBase
	t.failed = nil
	t.loads, t.stores, t.writeBytes, t.loggedBytes = 0, 0, 0, 0
	// Go maps never shrink their bucket arrays: after one huge transaction
	// (e.g. a hash-map resize), even an emptied map costs O(capacity) to
	// iterate. Replace oversized maps instead of clearing them.
	if len(t.logged) > 4096 {
		t.logged = make(map[uint64]bool)
	} else {
		for k := range t.logged {
			delete(t.logged, k)
		}
	}
	return t
}

// commitTx: make all in-place stores durable, then truncate the log. Fences
// with nothing queued (an empty transaction, or an ordered-pwb model) are
// provably no-ops and skipped; safe here because the writer lock makes this
// engine single-mutator.
func (e *Engine) commitTx() {
	d := e.dev
	if d.NeedsFence() {
		d.Pfence() // drain data write-backs
	}
	d.Store64(offLogCount, 0)
	d.Pwb(offLogCount)
	if d.NeedsFence() {
		d.Psync()
	}
	if a := e.aud; a != nil {
		a.DurablePoint("commit")
	}
}

// rollbackTx restores pre-transaction state from the undo log (same code
// path recovery uses). In-process the log was just written by this
// transaction, so a structural error is an engine invariant violation, not
// media damage.
func (e *Engine) rollbackTx() {
	if err := e.recover(); err != nil {
		panic(fmt.Sprintf("undolog: rollback of freshly written log failed: %v", err))
	}
	e.rollbacks.Add(1)
}

// Name implements ptm.PTM. The engine reports as "pmdk", its role in the
// paper's evaluation.
func (e *Engine) Name() string { return "pmdk" }

// Stats implements ptm.PTM.
func (e *Engine) Stats() ptm.TxStats {
	return ptm.TxStats{
		UpdateTxs: e.updates.Load(),
		ReadTxs:   e.reads.Load(),
		Rollbacks: e.rollbacks.Load(),
	}
}

// Device exposes the underlying device for statistics and crash testing.
func (e *Engine) Device() *pmem.Device { return e.dev }

// DataOffsets returns the device offsets of user heap address 0 — a single
// element, since the undo-log engine keeps one copy of the data. Fault-
// injection harnesses use it to address user data on the raw device.
func (e *Engine) DataOffsets() []int { return []int{e.mainBase} }

// CheckHeap validates allocator invariants; used by recovery tests.
func (e *Engine) CheckHeap() error { return e.heap.CheckInvariants() }

// SetAuditor installs (or, with nil, removes) the durability auditor. Call
// at a quiescent point; protocol work done earlier is simply unaudited.
func (e *Engine) SetAuditor(a ptm.Auditor) { e.aud = a }

// Close implements ptm.PTM.
func (e *Engine) Close() error {
	if a := e.aud; a != nil {
		a.EngineClose(e.Name())
	}
	return nil
}

// Update implements ptm.PTM.
func (e *Engine) Update(fn func(ptm.Tx) error) error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	e.rw.writerLock()
	defer e.rw.writerUnlock()
	st := e.dev.Stats()
	startPwb, startFence := st.Pwbs, st.Pfences+st.Psyncs
	if a := e.aud; a != nil {
		a.TxBegin(e.Name(), "update")
		defer a.TxEnd()
	}
	t := e.beginTx()
	committed := false
	defer func() {
		if !committed {
			e.rollbackTx()
			e.emitUpdate(t, obs.OutcomeRollback, startPwb, startFence)
		}
	}()
	trips := e.dev.FaultsTripped()
	err := fn(t)
	if e.dev.FaultsTripped() != trips {
		// fn computed on corrupted loads; roll back (deferred) instead of
		// committing fault-tainted state. The fault takes precedence over
		// fn's own error, which corrupted loads may have fabricated.
		return e.dev.FaultError()
	}
	if err != nil {
		return err
	}
	if t.failed != nil {
		return t.failed
	}
	e.commitTx()
	committed = true
	e.updates.Add(1)
	e.emitUpdate(t, obs.OutcomeCommit, startPwb, startFence)
	return nil
}

// emitUpdate sends the writer transaction's trace event. Called with the
// writer lock held, so the device deltas are attributable to this tx.
func (e *Engine) emitUpdate(t *Tx, out obs.Outcome, startPwb, startFence uint64) {
	s := e.trace
	if s == nil {
		return
	}
	st := e.dev.Stats()
	s.Emit(obs.TxEvent{
		Engine:      e.Name(),
		Kind:        obs.KindUpdate,
		Outcome:     out,
		Reads:       t.loads,
		Writes:      t.stores,
		WriteBytes:  t.writeBytes,
		CopiedBytes: t.loggedBytes,
		Pwbs:        st.Pwbs - startPwb,
		Fences:      st.Pfences + st.Psyncs - startFence,
	})
}

// Read implements ptm.PTM.
func (e *Engine) Read(fn func(ptm.Tx) error) error {
	e.rw.readerLock()
	defer e.rw.readerUnlock()
	e.reads.Add(1)
	t := Tx{e: e, readOnly: true}
	trips := e.dev.FaultsTripped()
	err := fn(&t)
	if e.dev.FaultsTripped() != trips {
		err = e.dev.FaultError()
	}
	if s := e.trace; s != nil {
		out := obs.OutcomeOK
		if err != nil {
			out = obs.OutcomeError
		}
		s.Emit(obs.TxEvent{Engine: e.Name(), Kind: obs.KindRead, Outcome: out, Reads: t.loads})
	}
	return err
}

// SetTrace installs (or, with nil, removes) the per-transaction trace sink;
// it implements obs.Traceable. Call at a quiescent point.
func (e *Engine) SetTrace(s obs.Sink) { e.trace = s }

// NewHandle implements ptm.HandlePTM. The global lock needs no per-thread
// state, so handles simply delegate.
func (e *Engine) NewHandle() (ptm.Handle, error) { return handle{e}, nil }

type handle struct{ e *Engine }

func (h handle) Update(fn func(ptm.Tx) error) error { return h.e.Update(fn) }
func (h handle) Read(fn func(ptm.Tx) error) error   { return h.e.Read(fn) }
func (h handle) Release()                           {}

// prefLock is a reader-preference reader-writer lock: readers never check
// for *waiting* writers, only *active* ones, so a steady stream of readers
// starves writers — the behaviour the paper observed when wrapping PMDK in
// std::shared_timed_mutex (Figure 7).
type prefLock struct {
	readers      atomic.Int64
	writerActive atomic.Bool
}

func (l *prefLock) readerLock() {
	for {
		l.readers.Add(1)
		if !l.writerActive.Load() {
			return
		}
		l.readers.Add(-1)
		for spins := 0; l.writerActive.Load(); spins++ {
			if spins > 16 {
				runtime.Gosched()
			}
		}
	}
}

func (l *prefLock) readerUnlock() { l.readers.Add(-1) }

// writerLock is called with the writer-writer mutex held.
func (l *prefLock) writerLock() {
	for spins := 0; ; spins++ {
		if l.readers.Load() == 0 {
			l.writerActive.Store(true)
			if l.readers.Load() == 0 {
				return
			}
			// A reader slipped in between the check and the flag; it will
			// observe the flag and depart. Retract and retry.
			l.writerActive.Store(false)
		}
		if spins > 16 {
			runtime.Gosched()
		}
	}
}

func (l *prefLock) writerUnlock() { l.writerActive.Store(false) }

// rawMem adapts the device for allocator formatting (plain stores).
type rawMem Engine

func (m *rawMem) Load64(off uint64) uint64 {
	e := (*Engine)(m)
	return e.dev.Load64(e.mainBase + int(off))
}

func (m *rawMem) Store64(off uint64, v uint64) {
	e := (*Engine)(m)
	e.dev.Store64(e.mainBase+int(off), v)
}

// heapMem routes allocator accesses through the writer transaction so that
// metadata mutations are undo-logged like user data.
type heapMem Engine

func (m *heapMem) Load64(off uint64) uint64 {
	e := (*Engine)(m)
	return e.dev.Load64(e.mainBase + int(off))
}

func (m *heapMem) Store64(off uint64, v uint64) {
	e := (*Engine)(m)
	e.wtx.Store64(ptm.Ptr(off), v)
}
