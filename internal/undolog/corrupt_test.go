package undolog

import (
	"errors"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// put64 overwrites the 8-byte little-endian word at off in img.
func put64(img []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		img[off+i] = byte(v >> (8 * i))
	}
}

func get64(img []byte, off int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(img[off+i])
	}
	return v
}

// persistedImage builds an engine with one committed value and returns its
// fully-persisted media image plus the config to reopen it.
func persistedImage(t *testing.T) ([]byte, Config) {
	t.Helper()
	cfg := Config{LogSize: 1 << 16}
	e, err := New(1<<17, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(tx ptm.Tx) error {
		p, err := tx.Alloc(64)
		if err != nil {
			return err
		}
		tx.Store64(p, 42)
		tx.SetRoot(0, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.dev.PersistAll()
	return e.dev.Persisted(), cfg
}

// A torn header (magic intact, static words damaged) must surface as the
// typed ErrCorruptHeader, not as a confusing size/version mismatch or a
// silent reformat.
func TestOpenTornHeader(t *testing.T) {
	img, cfg := persistedImage(t)
	for _, off := range []int{offVersion, offRegionSize, offLogSize, offHeadSum} {
		bad := append([]byte(nil), img...)
		put64(bad, off, get64(bad, off)^0xFF00FF00FF00FF00)
		_, err := Open(pmem.FromImage(bad, pmem.ModelDRAM), cfg)
		if !errors.Is(err, ErrCorruptHeader) {
			t.Errorf("corrupting word at %d: err = %v, want ErrCorruptHeader", off, err)
		}
		if !errors.Is(err, ptm.ErrCorruptHeader) {
			t.Errorf("corrupting word at %d: err %v does not unwrap to ptm.ErrCorruptHeader", off, err)
		}
	}
}

// A structurally impossible undo log must abort recovery with ErrCorruptLog
// instead of scribbling over main or walking off the log region.
func TestOpenCorruptLog(t *testing.T) {
	img, cfg := persistedImage(t)
	regionSize := int(get64(img, offRegionSize))
	logBase := headSize + regionSize

	cases := []struct {
		name   string
		mutate func(img []byte)
	}{
		{"count exceeds capacity", func(img []byte) {
			put64(img, offLogCount, encodeCount(uint64(cfg.LogSize))) // far beyond logSize/16 entries
		}},
		{"entry length runs off log", func(img []byte) {
			put64(img, offLogCount, encodeCount(1))
			put64(img, logBase, 0)                       // addr
			put64(img, logBase+8, uint64(cfg.LogSize)*2) // n
		}},
		{"entry addresses outside region", func(img []byte) {
			put64(img, offLogCount, encodeCount(1))
			put64(img, logBase, uint64(regionSize)) // addr at region end
			put64(img, logBase+8, 8)                // n
		}},
		{"rotted count word", func(img []byte) {
			put64(img, offLogCount, 1) // count without its self-check hash
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := append([]byte(nil), img...)
			tc.mutate(bad)
			_, err := Open(pmem.FromImage(bad, pmem.ModelDRAM), cfg)
			if !errors.Is(err, ErrCorruptLog) {
				t.Fatalf("err = %v, want ErrCorruptLog", err)
			}
		})
	}
}

// RecoveryPending distinguishes images with undo work from clean ones.
func TestRecoveryPending(t *testing.T) {
	img, _ := persistedImage(t)
	if RecoveryPending(img) {
		t.Error("clean image reported as pending recovery")
	}
	pend := append([]byte(nil), img...)
	put64(pend, offLogCount, 1)
	if !RecoveryPending(pend) {
		t.Error("image with non-empty log not reported as pending")
	}
	if RecoveryPending(make([]byte, headSize)) {
		t.Error("unformatted image reported as pending")
	}
}
