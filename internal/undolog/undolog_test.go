package undolog

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/ptmtest"
)

func TestConformance(t *testing.T) {
	cfg := Config{LogSize: 256 << 10}
	ptmtest.Run(t, ptmtest.Factory{
		Name: "pmdk",
		New: func(tb testing.TB) ptmtest.Engine {
			e, err := New(1<<20, cfg)
			if err != nil {
				tb.Fatal(err)
			}
			return e
		},
		Reopen: func(tb testing.TB, img []byte) (ptmtest.Engine, error) {
			return Open(pmem.FromImage(img, pmem.ModelDRAM), cfg)
		},
	})
}

func TestName(t *testing.T) {
	e, err := New(1<<18, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "pmdk" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestLogOverflowFailsTransaction(t *testing.T) {
	e, err := New(1<<18, Config{LogSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Update(func(tx ptm.Tx) error {
		// Zeroing an 8 KiB allocation needs an 8 KiB undo entry.
		_, err := tx.Alloc(8192)
		return err
	})
	if !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
	// The overflowing transaction must have been rolled back and the
	// engine must still work.
	if err := e.Update(func(tx ptm.Tx) error {
		q, err := tx.Alloc(32)
		if err == nil {
			tx.Store64(q, 1)
		}
		return err
	}); err != nil {
		t.Fatalf("engine broken after overflow: %v", err)
	}
}

// Undo logging pays fences proportional to the number of modified ranges
// (Table 1: 2 + k*Nranges) — the contrast to Romulus's constant 4.
func TestFencesGrowWithStores(t *testing.T) {
	e, err := New(1<<20, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(4096)
		return err
	})
	fences := func(stores int) uint64 {
		e.Device().ResetStats()
		e.Update(func(tx ptm.Tx) error {
			for i := 0; i < stores; i++ {
				tx.Store64(p+ptm.Ptr(i*8), uint64(i))
			}
			return nil
		})
		s := e.Device().Stats()
		return s.Pfences + s.Psyncs
	}
	f10, f100 := fences(10), fences(100)
	if f100 <= f10 {
		t.Errorf("fences did not grow with stores: %d for 10, %d for 100", f10, f100)
	}
	if f100 < 100 {
		t.Errorf("expected at least one fence per logged word, got %d for 100 stores", f100)
	}
}

// The reader-preference lock must starve a writer while readers churn
// continuously — the PMDK behaviour in Figure 7.
func TestReaderPreferenceStarvesWriter(t *testing.T) {
	var l prefLock
	stop := make(chan struct{})
	var running atomic.Int64
	// Two overlapping readers keep the read count permanently nonzero.
	for r := 0; r < 2; r++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.readerLock()
				running.Add(1)
				time.Sleep(time.Millisecond)
				running.Add(-1)
				l.readerUnlock()
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	acquired := make(chan struct{})
	go func() {
		l.writerLock()
		l.writerUnlock()
		close(acquired)
	}()
	select {
	case <-acquired:
		// Acceptable: on a single CPU the readers may leave a gap. Verify
		// at least that readers were actually active.
		if running.Load() < 0 {
			t.Fatal("impossible")
		}
		t.Log("writer found a gap (single-CPU scheduling)")
	case <-time.After(50 * time.Millisecond):
		// Starved, as designed.
	}
	close(stop)
	// Let readers drain so the writer (if still blocked) can finish.
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never completed after readers stopped")
	}
}

func TestRecoveryAppliesUndoInReverse(t *testing.T) {
	// Two stores to the same word in one crashed transaction: recovery
	// must restore the ORIGINAL value, not the intermediate one. The word
	// dedupe means only one entry exists, but overlapping StoreBytes
	// ranges create genuine duplicates.
	e, err := New(1<<18, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(64)
		tx.SetRoot(0, p)
		if err == nil {
			tx.StoreBytes(p, []byte{1, 1, 1, 1, 1, 1, 1, 1})
		}
		return err
	})
	var img []byte
	dev := e.Device()
	count := 0
	dev.SetHooks(&pmem.Hooks{Store: func(uint64) {
		count++
	}})
	e.Update(func(tx ptm.Tx) error {
		tx.StoreBytes(p, []byte{2, 2, 2, 2, 2, 2, 2, 2})
		tx.StoreBytes(p, []byte{3, 3, 3, 3, 3, 3, 3, 3})
		img = dev.CrashImage(pmem.KeepQueued) // both stores issued, tx not committed
		return nil
	})
	dev.SetHooks(nil)
	re, err := Open(pmem.FromImage(img, pmem.ModelDRAM), Config{})
	if err != nil {
		t.Fatal(err)
	}
	re.Read(func(tx ptm.Tx) error {
		if got := tx.Load8(tx.Root(0)); got != 1 {
			t.Errorf("recovered value = %d, want original 1", got)
		}
		return nil
	})
}
