// Package migrate is the elastic-sharding layer: a durable placement map
// (slot -> shard ownership) that replaces the store's implicit hash%N
// routing, plus the step-driven migration driver that moves a slice of a
// shard's keyspace to another shard online (copy-then-cutover).
//
// # Placement map
//
// Keys hash to one of NumSlots fixed slots (FNV-1a 64, like the old
// routing); each slot is owned by exactly one shard. The slot count is
// fixed at store creation as SlotsPerShard x the initial shard count, so
// the identity placement slots[i] = i % N routes every key exactly where
// hash%N routed it — stores created before placement existed adopt the
// identity map on open and observe no routing change. Migration moves
// ownership of whole slots; a "split" moves half of a shard's slots to a
// fresh shard.
//
// # Durable record
//
// The placement (and the migration journal embedded in it) persists in a
// small reserved area at the tail of the coordinator device, as two
// alternating record slots. A publish writes the full record (header:
// magic, sequence, payload length, FNV-1a checksum; then payload) into the
// slot NOT holding the newest valid record, then flushes and fences. A
// reader takes the valid slot with the highest sequence, so a crash that
// tears a publish leaves the previous record intact: placement changes are
// atomic. Ownership transfer during migration is a single record publish
// (the cutover), which is therefore also the migration's atomic commit
// point — see the Journal phases below.
//
// # Migration journal
//
// The record embeds one journal entry describing the in-flight migration:
//
//	PhaseNone    — no migration; Slots all owned per the map.
//	PhaseCopy    — slots listed in Journal are being copied src->dst; the
//	               map still routes them to src. Crash recovery rolls the
//	               migration BACK: wipe the partial copies from dst,
//	               publish PhaseNone. Source still owns every key.
//	PhaseCleanup — the cutover published: the same record flipped the
//	               moved slots to dst AND set this phase, atomically.
//	               Crash recovery rolls FORWARD: delete the moved keys
//	               still on src, publish PhaseNone. Dst owns every key.
//
// Either way recovery converges to exactly one owner per key.
package migrate

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/pmem"
)

// DefaultSlotsPerShard fixes the placement granularity at store creation:
// NumSlots = SlotsPerShard x initial shards. Any initial shard count N
// divides SlotsPerShard*N, which is what makes the identity placement
// reproduce hash%N routing exactly.
const DefaultSlotsPerShard = 16

// RecordSize is the reserved placement area at the tail of the coordinator
// device: two alternating record slots of half this size each.
const RecordSize = 8 << 10

const (
	recMagic   = 0x45434c504d4f52 // "ROMPLCE" little-endian (7 bytes + high zero)
	recHdrSize = 32               // magic | seq | payload len | payload fnv64a
	maxSlots   = 1 << 20
)

// Phase is the migration journal state.
type Phase uint32

const (
	PhaseNone    Phase = 0
	PhaseCopy    Phase = 1
	PhaseCleanup Phase = 2
)

func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseCopy:
		return "copy"
	case PhaseCleanup:
		return "cleanup"
	}
	return fmt.Sprintf("phase(%d)", uint32(p))
}

// Journal is the embedded migration record: which slots are moving from
// Src to Dst, and how far the state machine got (see the package comment
// for the recovery meaning of each phase).
type Journal struct {
	Phase Phase  `json:"phase,omitempty"`
	ID    uint64 `json:"id,omitempty"`
	Src   int    `json:"src,omitempty"`
	Dst   int    `json:"dst,omitempty"`
	Slots []int  `json:"slots,omitempty"`
}

// MovingSet returns slot membership as a dense bitmap of size numSlots.
func (j *Journal) MovingSet(numSlots int) []bool {
	set := make([]bool, numSlots)
	for _, s := range j.Slots {
		if s >= 0 && s < numSlots {
			set[s] = true
		}
	}
	return set
}

// Placement is the routing truth: Slots[slot] names the owning shard.
// Version is the record sequence it was read from / published as.
type Placement struct {
	NumSlots  int     `json:"num_slots"`
	NumShards int     `json:"num_shards"`
	Slots     []int   `json:"slots"`
	Version   uint64  `json:"version"`
	Journal   Journal `json:"journal"`
}

// Identity builds the placement that reproduces hash%shards routing:
// slots*shards slots with slots[i] = i % shards.
func Identity(shards, slotsPerShard int) *Placement {
	if slotsPerShard <= 0 {
		slotsPerShard = DefaultSlotsPerShard
	}
	n := shards * slotsPerShard
	p := &Placement{NumSlots: n, NumShards: shards, Slots: make([]int, n)}
	for i := range p.Slots {
		p.Slots[i] = i % shards
	}
	return p
}

// Clone deep-copies the placement (journal slots included).
func (p *Placement) Clone() *Placement {
	q := *p
	q.Slots = append([]int(nil), p.Slots...)
	q.Journal.Slots = append([]int(nil), p.Journal.Slots...)
	return &q
}

// SlotOf maps a routing key to its slot.
func (p *Placement) SlotOf(routingKey []byte) int {
	h := fnv.New64a()
	h.Write(routingKey)
	return int(h.Sum64() % uint64(p.NumSlots))
}

// OwnedBy lists the slots shard owns, ascending.
func (p *Placement) OwnedBy(shard int) []int {
	var out []int
	for s, sh := range p.Slots {
		if sh == shard {
			out = append(out, s)
		}
	}
	return out
}

// Counts returns slots-per-shard ownership (index = shard).
func (p *Placement) Counts() []int {
	c := make([]int, p.NumShards)
	for _, sh := range p.Slots {
		if sh >= 0 && sh < len(c) {
			c[sh]++
		}
	}
	return c
}

// encode serializes the placement payload (everything but Version, which
// lives in the record header as the sequence).
func (p *Placement) encode() []byte {
	buf := make([]byte, 0, 8+4*len(p.Slots)+24+4*len(p.Journal.Slots))
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	put32(uint32(p.NumSlots))
	put32(uint32(p.NumShards))
	for _, sh := range p.Slots {
		put32(uint32(sh))
	}
	put32(uint32(p.Journal.Phase))
	put64(p.Journal.ID)
	put32(uint32(p.Journal.Src))
	put32(uint32(p.Journal.Dst))
	put32(uint32(len(p.Journal.Slots)))
	for _, s := range p.Journal.Slots {
		put32(uint32(s))
	}
	return buf
}

func decodePlacement(b []byte) (*Placement, error) {
	pos := 0
	get32 := func() (uint32, bool) {
		if pos+4 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[pos:])
		pos += 4
		return v, true
	}
	get64 := func() (uint64, bool) {
		if pos+8 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b[pos:])
		pos += 8
		return v, true
	}
	fail := func(what string) (*Placement, error) {
		return nil, fmt.Errorf("placement payload: truncated %s", what)
	}
	nSlots, ok := get32()
	if !ok {
		return fail("slot count")
	}
	nShards, ok := get32()
	if !ok {
		return fail("shard count")
	}
	if nSlots == 0 || nSlots > maxSlots || nShards == 0 || uint64(nShards) > uint64(nSlots) {
		return nil, fmt.Errorf("placement payload: implausible geometry (%d slots, %d shards)", nSlots, nShards)
	}
	p := &Placement{NumSlots: int(nSlots), NumShards: int(nShards), Slots: make([]int, nSlots)}
	for i := range p.Slots {
		sh, ok := get32()
		if !ok {
			return fail("slot table")
		}
		if sh >= nShards {
			return nil, fmt.Errorf("placement payload: slot %d owned by shard %d of %d", i, sh, nShards)
		}
		p.Slots[i] = int(sh)
	}
	ph, ok := get32()
	if !ok {
		return fail("journal phase")
	}
	if ph > uint32(PhaseCleanup) {
		return nil, fmt.Errorf("placement payload: unknown journal phase %d", ph)
	}
	p.Journal.Phase = Phase(ph)
	id, ok := get64()
	if !ok {
		return fail("journal id")
	}
	p.Journal.ID = id
	src, ok := get32()
	if !ok {
		return fail("journal src")
	}
	dst, ok := get32()
	if !ok {
		return fail("journal dst")
	}
	nMove, ok := get32()
	if !ok {
		return fail("journal slot count")
	}
	if nMove > nSlots {
		return nil, fmt.Errorf("placement payload: journal moves %d of %d slots", nMove, nSlots)
	}
	if p.Journal.Phase != PhaseNone {
		if src >= nShards || dst >= nShards || src == dst {
			return nil, fmt.Errorf("placement payload: journal src=%d dst=%d of %d shards", src, dst, nShards)
		}
		p.Journal.Src, p.Journal.Dst = int(src), int(dst)
	}
	for i := 0; i < int(nMove); i++ {
		s, ok := get32()
		if !ok {
			return fail("journal slots")
		}
		if s >= nSlots {
			return nil, fmt.Errorf("placement payload: journal slot %d of %d", s, nSlots)
		}
		p.Journal.Slots = append(p.Journal.Slots, int(s))
	}
	return p, nil
}

func payloadSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// decodeSlot validates one record slot's header+payload from raw bytes,
// returning (nil, 0) when the slot holds no valid record (unformatted or
// torn — never an error: the other slot decides).
func decodeSlot(area []byte) (*Placement, uint64) {
	if len(area) < recHdrSize {
		return nil, 0
	}
	if binary.LittleEndian.Uint64(area[0:]) != recMagic {
		return nil, 0
	}
	seq := binary.LittleEndian.Uint64(area[8:])
	payLen := binary.LittleEndian.Uint64(area[16:])
	sum := binary.LittleEndian.Uint64(area[24:])
	if payLen == 0 || payLen > uint64(len(area)-recHdrSize) {
		return nil, 0
	}
	payload := area[recHdrSize : recHdrSize+int(payLen)]
	if payloadSum(payload) != sum {
		return nil, 0
	}
	p, err := decodePlacement(payload)
	if err != nil {
		return nil, 0
	}
	p.Version = seq
	return p, seq
}

// DecodeRecordBytes reads the newest valid placement from a raw copy of
// the record area (both slots), or nil when neither slot holds one.
func DecodeRecordBytes(area []byte) *Placement {
	half := len(area) / 2
	a, aSeq := decodeSlot(area[:half])
	b, bSeq := decodeSlot(area[half:])
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case bSeq > aSeq:
		return b
	default:
		return a
	}
}

// ReadRecord loads the newest valid placement from the record area
// [base, base+size) of dev, or nil when the area holds none (a store from
// before placement existed, or a crash tore the very first publish).
func ReadRecord(dev *pmem.Device, base, size int) *Placement {
	area := make([]byte, size)
	dev.LoadBytes(base, area)
	return DecodeRecordBytes(area)
}

// WriteRecord publishes p into the record area [base, base+size) of dev:
// full record into the slot not holding the newest valid sequence, then
// flush + fence. On return p.Version is the published sequence. The caller
// serializes publishers (the store's coordinator mutex) and wraps the call
// in its durability-audit transaction.
func WriteRecord(dev *pmem.Device, base, size int, p *Placement) error {
	half := size / 2
	payload := p.encode()
	if recHdrSize+len(payload) > half {
		return fmt.Errorf("placement record: payload %dB exceeds slot %dB", len(payload), half-recHdrSize)
	}
	cur := ReadRecord(dev, base, size)
	seq := uint64(1)
	slot := 0
	if cur != nil {
		seq = cur.Version + 1
		// The newest record's slot must survive the publish: write the other.
		area := make([]byte, size)
		dev.LoadBytes(base, area)
		if a, aSeq := decodeSlot(area[:half]); a != nil {
			if b, bSeq := decodeSlot(area[half:]); b == nil || aSeq > bSeq {
				slot = 1
			}
		}
	}
	off := base + slot*half
	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], recMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hdr[24:], payloadSum(payload))
	dev.StoreBytes(off, hdr[:])
	dev.StoreBytes(off+recHdrSize, payload)
	dev.PwbRange(off, recHdrSize+len(payload))
	dev.Psync()
	p.Version = seq
	return nil
}
