package migrate

import (
	"errors"
	"fmt"
	"sync"
)

// Target is the store surface the driver operates on (implemented by
// *shard.Store). Every mutating step is itself crash-safe: the target
// journals phase transitions durably and its recovery resolves a partial
// step to exactly one owner per key.
type Target interface {
	// NumShards reports the current shard count.
	NumShards() int
	// AddShard brings a fresh, empty shard online (owning no slots) and
	// returns its index.
	AddShard() (int, error)
	// OwnedSlots lists the placement slots shard currently owns.
	OwnedSlots(shard int) []int
	// MigrationBegin journals PhaseCopy for slots moving src -> dst.
	MigrationBegin(src, dst int, slots []int) error
	// MigrationCopyStep copies at most maxKeys of the moving keyspace to
	// dst in one durable batch, reporting progress and completion.
	MigrationCopyStep(maxKeys int) (keys, bytes int, done bool, err error)
	// MigrationCutover fences writes to the moving slots, re-copies keys
	// dirtied during the copy phase (in batches of maxKeys), and publishes
	// the ownership flip (PhaseCleanup) — the atomic commit point.
	MigrationCutover(maxKeys int) (recopied int, err error)
	// MigrationCleanupStep deletes at most maxKeys moved keys still on the
	// source shard; done reports the journal returned to PhaseNone.
	MigrationCleanupStep(maxKeys int) (deleted int, done bool, err error)
	// MigrationAbort rolls an unfinished copy phase back (wipes partial
	// copies from dst, journals PhaseNone).
	MigrationAbort() error
}

// Options tune a Driver.
type Options struct {
	// BatchKeys bounds the keys moved per durable batch (0 = 64). Smaller
	// batches bound the write-fence window at cutover; larger ones
	// amortize psyncs during copy.
	BatchKeys int
}

// ErrBusy is returned by Begin when a migration is already in flight.
var ErrBusy = errors.New("migrate: migration already in progress")

// ErrStopped reports a migration aborted by Stop before its cutover.
var ErrStopped = errors.New("migrate: stopped before cutover")

// Status is a point-in-time driver snapshot (the STATS placement section
// and MIGRATION admin reply marshal it).
type Status struct {
	Active       bool   `json:"active"`
	Phase        string `json:"phase,omitempty"` // copy | cutover | cleanup | done | aborted
	Src          int    `json:"src,omitempty"`
	Dst          int    `json:"dst,omitempty"`
	MovingSlots  int    `json:"moving_slots,omitempty"`
	CopiedKeys   int    `json:"copied_keys,omitempty"`
	CopiedBytes  int    `json:"copied_bytes,omitempty"`
	RecopiedKeys int    `json:"recopied_keys,omitempty"`
	DeletedKeys  int    `json:"deleted_keys,omitempty"`
	Error        string `json:"error,omitempty"`
}

// Driver runs one migration at a time as a sequence of bounded steps, so
// a caller (the server's SPLIT goroutine, the crash campaign's round
// loop) can interleave steps with foreground work and observe progress.
type Driver struct {
	t     Target
	batch int

	mu   sync.Mutex
	st   Status
	stop bool
}

// New builds a driver over t.
func New(t Target, opts Options) *Driver {
	b := opts.BatchKeys
	if b <= 0 {
		b = 64
	}
	return &Driver{t: t, batch: b}
}

// Begin starts moving half of src's slots to dst. dst < 0 provisions a
// fresh shard via AddShard. Returns the destination shard index.
func (d *Driver) Begin(src, dst int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.st.Active {
		return 0, ErrBusy
	}
	if src < 0 || src >= d.t.NumShards() {
		return 0, fmt.Errorf("migrate: source shard %d out of range", src)
	}
	owned := d.t.OwnedSlots(src)
	if len(owned) < 2 {
		return 0, fmt.Errorf("migrate: shard %d owns %d slot(s); nothing to split", src, len(owned))
	}
	if dst < 0 {
		n, err := d.t.AddShard()
		if err != nil {
			return 0, err
		}
		dst = n
	} else if dst >= d.t.NumShards() || dst == src {
		return 0, fmt.Errorf("migrate: destination shard %d invalid", dst)
	}
	moving := owned[len(owned)/2:]
	if err := d.t.MigrationBegin(src, dst, moving); err != nil {
		return 0, err
	}
	d.st = Status{Active: true, Phase: "copy", Src: src, Dst: dst, MovingSlots: len(moving)}
	d.stop = false
	return dst, nil
}

// Step advances the migration by one bounded durable batch. It returns
// done=true when the migration has fully completed (or aborted); the
// terminal error, if any, is also recorded in Status.
func (d *Driver) Step() (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.st.Active {
		return true, nil
	}
	if d.stop && d.st.Phase == "copy" {
		// Stop requests honor the journal's abort arm: before the cutover
		// publish the source still owns every key, so rolling back is safe.
		err := d.t.MigrationAbort()
		d.st.Active = false
		d.st.Phase = "aborted"
		if err != nil {
			d.st.Error = err.Error()
			return true, err
		}
		d.st.Error = ErrStopped.Error()
		return true, ErrStopped
	}
	var err error
	switch d.st.Phase {
	case "copy":
		var keys, bytes int
		var done bool
		keys, bytes, done, err = d.t.MigrationCopyStep(d.batch)
		d.st.CopiedKeys += keys
		d.st.CopiedBytes += bytes
		if err == nil && done {
			d.st.Phase = "cutover"
		}
	case "cutover":
		var recopied int
		recopied, err = d.t.MigrationCutover(d.batch)
		d.st.RecopiedKeys += recopied
		if err == nil {
			d.st.Phase = "cleanup"
		}
	case "cleanup":
		var n int
		var done bool
		n, done, err = d.t.MigrationCleanupStep(d.batch)
		d.st.DeletedKeys += n
		if err == nil && done {
			d.st.Phase = "done"
			d.st.Active = false
			return true, nil
		}
	default:
		d.st.Active = false
		return true, nil
	}
	if err != nil {
		d.fail(err)
		return true, err
	}
	return false, nil
}

// fail records a terminal error, rolling back when the copy phase can
// still abort (after the cutover publish the only way out is forward, so
// cleanup errors leave the journal for recovery to finish). Caller holds
// d.mu.
func (d *Driver) fail(err error) {
	if d.st.Phase == "copy" {
		if aerr := d.t.MigrationAbort(); aerr != nil {
			err = fmt.Errorf("%w (abort: %v)", err, aerr)
		}
		d.st.Phase = "aborted"
	}
	d.st.Active = false
	d.st.Error = err.Error()
}

// Run steps the migration to completion.
func (d *Driver) Run() error {
	for {
		done, err := d.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// Split is Begin(src, fresh shard) + Run: the one-call online split.
func (d *Driver) Split(src int) (int, error) {
	dst, err := d.Begin(src, -1)
	if err != nil {
		return 0, err
	}
	return dst, d.Run()
}

// Stop requests a rollback; the next Step aborts if the cutover has not
// published yet (afterwards the migration completes forward regardless).
func (d *Driver) Stop() {
	d.mu.Lock()
	d.stop = true
	d.mu.Unlock()
}

// Busy reports whether a migration is in flight.
func (d *Driver) Busy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st.Active
}

// Status snapshots driver progress.
func (d *Driver) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st
}
