package migrate

import (
	"hash/fnv"
	"testing"

	"repro/internal/pmem"
)

func TestIdentityMatchesHashModN(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		p := Identity(shards, DefaultSlotsPerShard)
		for i := 0; i < 500; i++ {
			key := []byte{byte(i), byte(i >> 8), 'k'}
			h := fnv.New64a()
			h.Write(key)
			want := int(h.Sum64() % uint64(shards))
			if got := p.Slots[p.SlotOf(key)]; got != want {
				t.Fatalf("shards=%d key %v: identity placement routes to %d, hash%%N to %d", shards, key, got, want)
			}
		}
	}
}

func TestRecordRoundtrip(t *testing.T) {
	dev := pmem.New(64<<10, pmem.ModelDRAM)
	base, size := dev.Size()-RecordSize, RecordSize
	if got := ReadRecord(dev, base, size); got != nil {
		t.Fatalf("fresh device decoded a record: %+v", got)
	}
	p := Identity(3, 16)
	p.Journal = Journal{Phase: PhaseCopy, ID: 7, Src: 1, Dst: 2, Slots: []int{5, 9, 33}}
	if err := WriteRecord(dev, base, size, p); err != nil {
		t.Fatal(err)
	}
	got := ReadRecord(dev, base, size)
	if got == nil {
		t.Fatal("no record after publish")
	}
	if got.Version != 1 || got.NumSlots != 48 || got.NumShards != 3 {
		t.Fatalf("bad header fields: %+v", got)
	}
	if got.Journal.Phase != PhaseCopy || got.Journal.Src != 1 || got.Journal.Dst != 2 || len(got.Journal.Slots) != 3 {
		t.Fatalf("journal did not survive: %+v", got.Journal)
	}
	for i := range p.Slots {
		if got.Slots[i] != p.Slots[i] {
			t.Fatalf("slot %d: got %d want %d", i, got.Slots[i], p.Slots[i])
		}
	}
	// Second publish bumps the sequence and lands in the other slot; the
	// reader follows the newest.
	p2 := got.Clone()
	p2.Journal = Journal{}
	p2.Slots[5] = 2
	if err := WriteRecord(dev, base, size, p2); err != nil {
		t.Fatal(err)
	}
	got2 := ReadRecord(dev, base, size)
	if got2 == nil || got2.Version != 2 || got2.Slots[5] != 2 || got2.Journal.Phase != PhaseNone {
		t.Fatalf("second publish not visible: %+v", got2)
	}
}

// A torn publish (arbitrary garbage over the slot being written) must
// leave the previous record readable: the checksum rejects the torn slot.
func TestTornPublishKeepsPreviousRecord(t *testing.T) {
	dev := pmem.New(64<<10, pmem.ModelDRAM)
	base, size := dev.Size()-RecordSize, RecordSize
	p := Identity(2, 16)
	if err := WriteRecord(dev, base, size, p); err != nil {
		t.Fatal(err)
	}
	// Record 1 landed in slot 0; a publish of record 2 targets slot 1.
	// Simulate the tear: partial header with the new sequence, no payload.
	half := size / 2
	var hdr [recHdrSize]byte
	copy(hdr[:], []byte("ROMPLCE\x00garbage!"))
	dev.StoreBytes(base+half, hdr[:])
	dev.PwbRange(base+half, recHdrSize)
	dev.Psync()
	got := ReadRecord(dev, base, size)
	if got == nil || got.Version != 1 || got.NumShards != 2 {
		t.Fatalf("torn publish destroyed the previous record: %+v", got)
	}
}

type fakeTarget struct {
	shards    int
	owned     map[int][]int
	copySteps int
	cleanups  int
	journal   Phase
	aborted   bool
}

func (f *fakeTarget) NumShards() int { return f.shards }
func (f *fakeTarget) AddShard() (int, error) {
	f.shards++
	return f.shards - 1, nil
}
func (f *fakeTarget) OwnedSlots(sh int) []int { return f.owned[sh] }
func (f *fakeTarget) MigrationBegin(src, dst int, slots []int) error {
	f.journal = PhaseCopy
	return nil
}
func (f *fakeTarget) MigrationCopyStep(maxKeys int) (int, int, bool, error) {
	f.copySteps++
	return maxKeys, maxKeys * 10, f.copySteps >= 3, nil
}
func (f *fakeTarget) MigrationCutover(maxKeys int) (int, error) {
	f.journal = PhaseCleanup
	return 2, nil
}
func (f *fakeTarget) MigrationCleanupStep(maxKeys int) (int, bool, error) {
	f.cleanups++
	if f.cleanups >= 2 {
		f.journal = PhaseNone
		return 1, true, nil
	}
	return maxKeys, false, nil
}
func (f *fakeTarget) MigrationAbort() error {
	f.aborted = true
	f.journal = PhaseNone
	return nil
}

func TestDriverStateMachine(t *testing.T) {
	ft := &fakeTarget{shards: 2, owned: map[int][]int{0: {0, 2, 4, 6}, 1: {1, 3, 5, 7}}}
	d := New(ft, Options{BatchKeys: 8})
	dst, err := d.Begin(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if dst != 2 || ft.shards != 3 {
		t.Fatalf("expected fresh shard 2, got dst=%d shards=%d", dst, ft.shards)
	}
	if st := d.Status(); !st.Active || st.Phase != "copy" || st.MovingSlots != 2 {
		t.Fatalf("post-begin status: %+v", st)
	}
	if _, err := d.Begin(1, -1); err != ErrBusy {
		t.Fatalf("second Begin: want ErrBusy, got %v", err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Status()
	if st.Active || st.Phase != "done" || st.CopiedKeys != 24 || st.RecopiedKeys != 2 || st.DeletedKeys != 9 {
		t.Fatalf("terminal status: %+v", st)
	}
	if ft.journal != PhaseNone {
		t.Fatalf("journal not cleared: %v", ft.journal)
	}
}

func TestDriverStopAborts(t *testing.T) {
	ft := &fakeTarget{shards: 2, owned: map[int][]int{0: {0, 2, 4, 6}}}
	d := New(ft, Options{BatchKeys: 8})
	if _, err := d.Begin(0, -1); err != nil {
		t.Fatal(err)
	}
	d.Stop()
	done, err := d.Step()
	if !done || err != ErrStopped {
		t.Fatalf("stopped step: done=%v err=%v", done, err)
	}
	if !ft.aborted {
		t.Fatal("target not aborted")
	}
	if st := d.Status(); st.Active || st.Phase != "aborted" {
		t.Fatalf("status after stop: %+v", st)
	}
}
