package linearize

import "testing"

func TestEmptyHistory(t *testing.T) {
	if !Check(RegisterModel{}, nil) {
		t.Error("empty history not linearizable")
	}
}

func TestSequentialHistory(t *testing.T) {
	h := []Op{
		{Invoke: 0, Return: 1, Kind: "write", Arg: 5},
		{Invoke: 2, Return: 3, Kind: "read", Result: 5},
		{Invoke: 4, Return: 5, Kind: "write", Arg: 7},
		{Invoke: 6, Return: 7, Kind: "read", Result: 7},
	}
	if !Check(RegisterModel{}, h) {
		t.Error("valid sequential history rejected")
	}
}

func TestStaleReadRejected(t *testing.T) {
	h := []Op{
		{Invoke: 0, Return: 1, Kind: "write", Arg: 5},
		{Invoke: 2, Return: 3, Kind: "read", Result: 0}, // stale: write already returned
	}
	if Check(RegisterModel{}, h) {
		t.Error("stale read accepted")
	}
}

func TestConcurrentReadMaySeeEitherValue(t *testing.T) {
	// A read overlapping a write may return the old or the new value.
	for _, result := range []uint64{0, 5} {
		h := []Op{
			{Invoke: 0, Return: 10, Kind: "write", Arg: 5},
			{Invoke: 1, Return: 9, Kind: "read", Result: result},
		}
		if !Check(RegisterModel{}, h) {
			t.Errorf("overlapping read of %d rejected", result)
		}
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// read=5 then non-overlapping read=0 cannot both be right without a
	// concurrent second write.
	h := []Op{
		{Invoke: 0, Return: 1, Kind: "write", Arg: 5},
		{Invoke: 2, Return: 3, Kind: "read", Result: 5},
		{Invoke: 4, Return: 5, Kind: "read", Result: 0},
	}
	if Check(RegisterModel{}, h) {
		t.Error("time-travelling read accepted")
	}
}

func TestNewOldInversionRejected(t *testing.T) {
	// Two sequential reads observing new-then-old around a concurrent
	// write is the classic non-linearizable inversion.
	h := []Op{
		{Invoke: 0, Return: 100, Kind: "write", Arg: 9},
		{Invoke: 10, Return: 20, Kind: "read", Result: 9},
		{Invoke: 30, Return: 40, Kind: "read", Result: 0},
	}
	if Check(RegisterModel{}, h) {
		t.Error("new-old inversion accepted")
	}
}

func TestCounterModelConcurrentAdds(t *testing.T) {
	// Two overlapping add(1) ops: the one that observed 0 linearizes
	// first; a later read must see 2.
	h := []Op{
		{Invoke: 0, Return: 10, Kind: "add", Arg: 1, Result: 0},
		{Invoke: 1, Return: 9, Kind: "add", Arg: 1, Result: 1},
		{Invoke: 20, Return: 21, Kind: "read", Result: 2},
	}
	if !Check(CounterModel{}, h) {
		t.Error("valid concurrent adds rejected")
	}
	// Both observing 0 would be a lost update.
	h[1].Result = 0
	h[2].Result = 1
	if Check(CounterModel{}, h) {
		t.Error("lost update accepted")
	}
}

func TestHistoryTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized history did not panic")
		}
	}()
	Check(RegisterModel{}, make([]Op, 21))
}
