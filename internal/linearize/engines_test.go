package linearize_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/ptm"
	"repro/internal/redolog"
	"repro/internal/undolog"
)

// engines under test: all five PTMs must produce linearizable histories on
// a shared register.
func linEngines(t *testing.T) map[string]ptm.HandlePTM {
	t.Helper()
	out := map[string]ptm.HandlePTM{}
	for _, v := range []core.Variant{core.Rom, core.RomLog, core.RomLR} {
		e, err := core.New(1<<20, core.Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		out[v.String()] = e
	}
	u, err := undolog.New(1<<20, undolog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out["pmdk"] = u
	r, err := redolog.New(1<<20, redolog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out["mne"] = r
	return out
}

// TestEnginesProduceLinearizableHistories drives three goroutines over a
// persistent register and checks every recorded history against the
// sequential register model — an executable version of the paper's durable
// linearizability claim (§5.2).
func TestEnginesProduceLinearizableHistories(t *testing.T) {
	for name, e := range linEngines(t) {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 8; round++ {
				var reg ptm.Ptr
				if err := e.Update(func(tx ptm.Tx) error {
					var err error
					reg, err = tx.Alloc(8)
					return err
				}); err != nil {
					t.Fatal(err)
				}
				var clock atomic.Int64
				type slot struct {
					ops []linearize.Op
				}
				workers := 3
				opsPer := 4
				slots := make([]slot, workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						h, err := e.NewHandle()
						if err != nil {
							t.Error(err)
							return
						}
						defer h.Release()
						for i := 0; i < opsPer; i++ {
							var op linearize.Op
							if (w+i)%2 == 0 {
								val := uint64(round*100 + w*10 + i + 1)
								op.Kind, op.Arg = "write", val
								op.Invoke = clock.Add(1)
								err = h.Update(func(tx ptm.Tx) error {
									tx.Store64(reg, val)
									return nil
								})
								op.Return = clock.Add(1)
							} else {
								op.Kind = "read"
								op.Invoke = clock.Add(1)
								err = h.Read(func(tx ptm.Tx) error {
									op.Result = tx.Load64(reg)
									return nil
								})
								op.Return = clock.Add(1)
							}
							if err != nil {
								t.Error(err)
								return
							}
							slots[w].ops = append(slots[w].ops, op)
						}
					}(w)
				}
				wg.Wait()
				var history []linearize.Op
				for _, s := range slots {
					history = append(history, s.ops...)
				}
				if !linearize.Check(linearize.RegisterModel{}, history) {
					t.Fatalf("round %d: non-linearizable history:\n%s", round, fmtHistory(history))
				}
			}
		})
	}
}

func fmtHistory(h []linearize.Op) string {
	out := ""
	for _, op := range h {
		out += fmt.Sprintf("  [%3d,%3d] %s(%d) -> %d\n", op.Invoke, op.Return, op.Kind, op.Arg, op.Result)
	}
	return out
}

// TestCheckerCatchesBrokenEngine sanity-checks the harness itself: a
// deliberately broken "engine" (reads bypass synchronization and return a
// cached stale value) must be flagged. Without this, a vacuously-passing
// checker would go unnoticed.
func TestCheckerCatchesBrokenEngine(t *testing.T) {
	// Construct a manually corrupted history equivalent to a stale cache:
	// write 1 completes, then a later read returns 0.
	h := []linearize.Op{
		{Invoke: 1, Return: 2, Kind: "write", Arg: 1},
		{Invoke: 3, Return: 4, Kind: "read", Result: 0},
	}
	if linearize.Check(linearize.RegisterModel{}, h) {
		t.Fatal("checker failed to flag a stale read")
	}
}
