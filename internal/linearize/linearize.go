// Package linearize is a small linearizability checker in the style of
// Wing & Gong, used to validate the engines' concurrency claims: Romulus
// transactions are "irrevocable" and serialized by a single combiner, and
// the paper asserts durable linearizability (§5.2) — every operation
// appears to take effect atomically between its invocation and response,
// with durability before visibility.
//
// The checker takes a concurrent history of operations (invocation and
// response timestamps plus observed results) and a sequential model, and
// searches for a legal linear order: operations may be reordered only when
// their real-time intervals overlap. The search is exponential in the
// worst case, so tests keep histories small; with a single-writer PTM the
// histories are nearly sequential and the search is fast.
package linearize

import "sort"

// Op is one completed operation in a concurrent history.
type Op struct {
	// Invoke and Return are logical timestamps (any monotonic clock).
	Invoke, Return int64
	// Kind and Arg describe the operation for the model.
	Kind string
	Arg  uint64
	// Result is the value the concurrent execution observed.
	Result uint64
}

// Model is a sequential specification: Apply returns the expected result
// of op in the given state and the successor state. States must be
// comparable via the Hash for memoization.
type Model interface {
	// Init returns the initial state.
	Init() any
	// Apply runs op against state, returning the model result and the new
	// state. It must not mutate state in place.
	Apply(state any, op Op) (result uint64, newState any)
	// Hash fingerprints a state for memoization.
	Hash(state any) uint64
}

// Check reports whether history is linearizable with respect to the model.
func Check(model Model, history []Op) bool {
	n := len(history)
	if n == 0 {
		return true
	}
	if n > 20 {
		// Guard against accidental exponential blow-ups in tests.
		panic("linearize: history too large for exact checking")
	}
	ops := append([]Op(nil), history...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	type memoKey struct {
		taken     uint32
		stateHash uint64
	}
	seen := map[memoKey]bool{}

	var search func(taken uint32, state any) bool
	search = func(taken uint32, state any) bool {
		if taken == (1<<uint(n))-1 {
			return true
		}
		key := memoKey{taken, model.Hash(state)}
		if seen[key] {
			return false
		}
		seen[key] = true
		// The earliest return time among pending ops bounds which ops may
		// linearize next: an op can only go first if no pending op
		// returned strictly before it was invoked.
		minReturn := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if taken&(1<<uint(i)) == 0 && ops[i].Return < minReturn {
				minReturn = ops[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if taken&(1<<uint(i)) != 0 {
				continue
			}
			if ops[i].Invoke > minReturn {
				continue // a pending op returned before this one started
			}
			res, next := model.Apply(state, ops[i])
			if res != ops[i].Result {
				continue
			}
			if search(taken|1<<uint(i), next) {
				return true
			}
		}
		return false
	}
	return search(0, model.Init())
}

// RegisterModel is a sequential model of a single uint64 register with
// "read" and "write" operations, the canonical linearizability test
// object.
type RegisterModel struct{}

// Init implements Model.
func (RegisterModel) Init() any { return uint64(0) }

// Apply implements Model.
func (RegisterModel) Apply(state any, op Op) (uint64, any) {
	v := state.(uint64)
	switch op.Kind {
	case "write":
		return 0, op.Arg
	case "read":
		return v, v
	}
	panic("linearize: unknown register op " + op.Kind)
}

// Hash implements Model.
func (RegisterModel) Hash(state any) uint64 { return state.(uint64) }

// CounterModel is a sequential model of a fetch-and-add counter with
// "add" (returns the pre-increment value) and "read".
type CounterModel struct{}

// Init implements Model.
func (CounterModel) Init() any { return uint64(0) }

// Apply implements Model.
func (CounterModel) Apply(state any, op Op) (uint64, any) {
	v := state.(uint64)
	switch op.Kind {
	case "add":
		return v, v + op.Arg
	case "read":
		return v, v
	}
	panic("linearize: unknown counter op " + op.Kind)
}

// Hash implements Model.
func (CounterModel) Hash(state any) uint64 { return state.(uint64) }
