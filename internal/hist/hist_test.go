package hist

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("empty histogram not zero")
	}
	if h.String() != "hist: empty" {
		t.Errorf("String = %q", h.String())
	}
}

func TestBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 4, 100} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 22 {
		t.Errorf("Mean = %f", h.Mean())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %d", h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %d", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %d", got)
	}
}

func TestOverflow(t *testing.T) {
	var h Histogram
	h.Add(5000)
	h.Add(10)
	if h.Max() != 5000 || h.Count() != 2 {
		t.Error("overflow sample lost")
	}
	if !strings.Contains(h.String(), ">1024") {
		t.Errorf("String missing overflow note:\n%s", h.String())
	}
}

func TestModesFindsTwoPeaks(t *testing.T) {
	var h Histogram
	// Two clear peaks at 50 and 130, like the paper's red-black tree.
	for i := 0; i < 100; i++ {
		h.Add(50)
	}
	for i := 0; i < 80; i++ {
		h.Add(130)
	}
	for v := uint64(10); v < 200; v += 7 {
		h.Add(v)
	}
	modes := h.Modes(2, 20)
	if len(modes) != 2 {
		t.Fatalf("modes = %v", modes)
	}
	if modes[0] != 50 || modes[1] != 130 {
		t.Errorf("modes = %v, want [50 130]", modes)
	}
}

func TestModesRespectsGap(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Add(50)
	}
	for i := 0; i < 9; i++ {
		h.Add(52) // within the gap of 50
	}
	for i := 0; i < 8; i++ {
		h.Add(200)
	}
	modes := h.Modes(2, 20)
	if len(modes) != 2 || modes[0] != 50 || modes[1] != 200 {
		t.Errorf("modes = %v, want [50 200]", modes)
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	var h Histogram
	h.Add(7)
	s := h.Snapshot()
	h.Add(7)
	if s.Count() != 1 || h.Count() != 2 {
		t.Error("snapshot shares state")
	}
}

// Property: mean and quantiles are consistent with the sample multiset.
func TestQuickStatsConsistent(t *testing.T) {
	f := func(raw []uint16) bool {
		var h Histogram
		var sum uint64
		for _, v := range raw {
			h.Add(uint64(v % 1025))
			sum += uint64(v % 1025)
		}
		if h.Count() != uint64(len(raw)) {
			return false
		}
		if len(raw) > 0 {
			if h.Mean() != float64(sum)/float64(len(raw)) {
				return false
			}
			if h.Quantile(0) > h.Quantile(0.5) || h.Quantile(0.5) > h.Quantile(1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
