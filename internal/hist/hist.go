// Package hist provides a small fixed-bucket histogram used to study
// per-transaction persistence behaviour — the paper's §6.2 analysis of pwb
// counts per transaction (the linked list averages ~10 pwbs, the red-black
// tree shows peaks at 50 and 130).
package hist

import (
	"fmt"
	"strings"
)

// maxTracked is the largest individually-tracked value; larger samples land
// in the overflow bucket.
const maxTracked = 1024

// Histogram counts integer samples in [0, maxTracked] plus overflow. The
// zero value is ready to use. Not safe for concurrent use; the PTM engines
// record from the single writer.
type Histogram struct {
	buckets  [maxTracked + 1]uint64
	overflow uint64
	count    uint64
	sum      uint64
	max      uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	if v <= maxTracked {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample seen.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) of the tracked range.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for v, c := range h.buckets {
		seen += c
		if seen > target {
			return uint64(v)
		}
	}
	return h.max
}

// Modes returns up to n local peaks of the distribution (bucket values with
// the highest counts, at least minGap apart), largest count first. This is
// what surfaces the paper's "two peaks at 50 and 130" observation.
func (h *Histogram) Modes(n, minGap int) []uint64 {
	type vc struct {
		v uint64
		c uint64
	}
	var all []vc
	for v, c := range h.buckets {
		if c > 0 {
			all = append(all, vc{uint64(v), c})
		}
	}
	// Selection sort by count (n is tiny).
	var out []uint64
	for len(out) < n && len(all) > 0 {
		best := 0
		for i, e := range all {
			if e.c > all[best].c {
				best = i
			}
		}
		cand := all[best].v
		all = append(all[:best], all[best+1:]...)
		ok := true
		for _, m := range out {
			d := int64(cand) - int64(m)
			if d < 0 {
				d = -d
			}
			if d < int64(minGap) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cand)
		}
	}
	return out
}

// Snapshot returns a copy.
func (h *Histogram) Snapshot() Histogram { return *h }

// String renders a compact summary with an ASCII bar chart over up to 16
// ranges.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "hist: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50=%d p99=%d max=%d\n",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
	// Bucket into 16 ranges up to the max tracked value with samples.
	hi := int(h.max)
	if hi > maxTracked {
		hi = maxTracked
	}
	if hi == 0 {
		hi = 1
	}
	step := (hi + 15) / 16
	if step == 0 {
		step = 1
	}
	var rows []struct {
		lo, hi int
		c      uint64
	}
	var peak uint64
	for lo := 0; lo <= hi; lo += step {
		end := lo + step - 1
		if end > maxTracked {
			end = maxTracked
		}
		var c uint64
		for v := lo; v <= end; v++ {
			c += h.buckets[v]
		}
		rows = append(rows, struct {
			lo, hi int
			c      uint64
		}{lo, end, c})
		if c > peak {
			peak = c
		}
	}
	for _, r := range rows {
		bar := 0
		if peak > 0 {
			bar = int(r.c * 40 / peak)
		}
		fmt.Fprintf(&b, "%5d-%-5d %8d %s\n", r.lo, r.hi, r.c, strings.Repeat("#", bar))
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, ">%d: %d samples\n", maxTracked, h.overflow)
	}
	return b.String()
}
