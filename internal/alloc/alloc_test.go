package alloc

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// sliceMem is a trivial Mem over a byte slice for testing the heap in
// isolation from any PTM engine.
type sliceMem []byte

func (m sliceMem) Load64(off uint64) uint64 {
	return binary.LittleEndian.Uint64(m[off:])
}

func (m sliceMem) Store64(off, v uint64) {
	binary.LittleEndian.PutUint64(m[off:], v)
}

func newHeap(t testing.TB, size uint64) *Heap {
	t.Helper()
	mem := make(sliceMem, size+64)
	h, err := Format(mem, 64, size)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return h
}

func TestFormatAndOpen(t *testing.T) {
	mem := make(sliceMem, 1<<16)
	if _, err := Format(mem, 0, MinSize-1); err == nil {
		t.Error("Format accepted undersized region")
	}
	h, err := Format(mem, 0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	h2, err := Open(mem, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if h2.Top() != h.Top() || h2.End() != h.End() {
		t.Error("re-opened heap disagrees with original")
	}
	if _, err := Open(make(sliceMem, 1024), 0); err != ErrCorrupt {
		t.Errorf("Open of blank region: %v, want ErrCorrupt", err)
	}
}

func TestAllocBasics(t *testing.T) {
	h := newHeap(t, 1<<16)
	p1, err := h.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == 0 {
		t.Fatal("nil pointer from Alloc")
	}
	if p1%16 != 0 {
		t.Errorf("pointer %d not 16-aligned", p1)
	}
	p2, err := h.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Error("two live allocations share a pointer")
	}
	n, err := h.UsableSize(p1)
	if err != nil || n < 24 {
		t.Errorf("UsableSize = %d, %v", n, err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSizedAlloc(t *testing.T) {
	h := newHeap(t, 1<<16)
	p, err := h.Alloc(0)
	if err != nil || p == 0 {
		t.Fatalf("Alloc(0) = %d, %v", p, err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAlloc(t *testing.T) {
	h := newHeap(t, 1<<16)
	if _, err := h.Alloc(-1); err == nil {
		t.Error("Alloc(-1) succeeded")
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := newHeap(t, 1<<16)
	p1, _ := h.Alloc(100)
	p2, _ := h.Alloc(100) // keeps p1's region from merging into the top
	if err := h.Free(p1); err != nil {
		t.Fatal(err)
	}
	p3, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Errorf("freed chunk not reused: got %d, want %d", p3, p1)
	}
	_ = p2
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeAdjacentToTopShrinksHeap(t *testing.T) {
	h := newHeap(t, 1<<16)
	before := h.Top()
	p, _ := h.Alloc(1000)
	if h.Top() <= before {
		t.Fatal("top did not grow")
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if h.Top() != before {
		t.Errorf("top = %d after free, want %d", h.Top(), before)
	}
}

func TestCoalescing(t *testing.T) {
	h := newHeap(t, 1<<16)
	p1, _ := h.Alloc(48)
	p2, _ := h.Alloc(48)
	p3, _ := h.Alloc(48)
	p4, _ := h.Alloc(48) // barrier against the top
	// Free in an order that exercises next- then prev-coalescing.
	if err := h.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p3); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p2); err != nil { // merges p1+p2+p3
		t.Fatal(err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The coalesced block must satisfy a request covering all three chunks
	// (3 x 64-byte chunks minus one 16-byte header).
	p5, err := h.Alloc(3*64 - 16)
	if err != nil {
		t.Fatal(err)
	}
	if p5 != p1 {
		t.Errorf("coalesced block starts at %d, want %d", p5, p1)
	}
	_ = p4
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitLeavesUsableRemainder(t *testing.T) {
	h := newHeap(t, 1<<16)
	big, _ := h.Alloc(1024)
	_, _ = h.Alloc(16) // barrier
	if err := h.Free(big); err != nil {
		t.Fatal(err)
	}
	small, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if small != big {
		t.Errorf("split did not reuse the big chunk: %d vs %d", small, big)
	}
	// The remainder must serve another allocation without touching the top.
	top := h.Top()
	if _, err := h.Alloc(512); err != nil {
		t.Fatal(err)
	}
	if h.Top() != top {
		t.Error("remainder not reused; allocation went to the wilderness")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBadFree(t *testing.T) {
	h := newHeap(t, 1<<16)
	p, _ := h.Alloc(64)
	cases := []uint64{0, 8, p + 8, p + 1, h.End() + 16}
	for _, bad := range cases {
		if err := h.Free(bad); err != ErrBadFree {
			t.Errorf("Free(%d) = %v, want ErrBadFree", bad, err)
		}
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != ErrBadFree {
		t.Errorf("double free = %v, want ErrBadFree", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	h := newHeap(t, MinSize+256)
	if _, err := h.Alloc(1 << 20); err != ErrOutOfMemory {
		t.Errorf("huge Alloc = %v, want ErrOutOfMemory", err)
	}
	// Exhaust, then verify recovery by freeing.
	var ps []uint64
	for {
		p, err := h.Alloc(32)
		if err == ErrOutOfMemory {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		t.Fatal("no allocations before OOM")
	}
	for _, p := range ps {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Alloc(64); err != nil {
		t.Errorf("Alloc after freeing everything: %v", err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	h := newHeap(t, 1<<16)
	p, _ := h.Alloc(100)
	s := h.Stats()
	if s.Allocs != 1 || s.Frees != 0 || s.AllocatedBytes == 0 {
		t.Errorf("after alloc: %+v", s)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	s = h.Stats()
	if s.Frees != 1 || s.AllocatedBytes != 0 {
		t.Errorf("after free: %+v", s)
	}
}

func TestLargeBinRouting(t *testing.T) {
	h := newHeap(t, 1<<22)
	sizes := []int{2000, 5000, 70000, 300000, 1 << 20}
	var ps []uint64
	for _, n := range sizes {
		p, err := h.Alloc(n)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", n, err)
		}
		ps = append(ps, p)
	}
	_, _ = h.Alloc(16) // barrier
	for _, p := range ps {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reuse from bins, not the wilderness.
	top := h.Top()
	for _, n := range sizes {
		if _, err := h.Alloc(n); err != nil {
			t.Fatalf("re-Alloc(%d): %v", n, err)
		}
	}
	if h.Top() != top {
		t.Error("large allocations not served from bins")
	}
}

func TestBinForMonotonic(t *testing.T) {
	last := 0
	for size := uint64(minChunk); size <= 1<<30; size += 16 {
		b := binFor(size)
		if b < last {
			t.Fatalf("binFor(%d) = %d < previous %d", size, b, last)
		}
		if b >= numBins {
			t.Fatalf("binFor(%d) = %d out of range", size, b)
		}
		last = b
		if size > 1<<12 {
			size += size / 2 // sample sparsely above 4 KiB
		}
	}
}

// Property: a random interleaving of allocs and frees never hands out
// overlapping blocks, never corrupts invariants, and frees always succeed
// for live pointers.
func TestQuickRandomAllocFree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newHeap(t, 1<<18)
		type block struct{ p, n uint64 }
		var live []block
		overlap := func(a, b block) bool {
			return a.p < b.p+b.n && b.p < a.p+a.n
		}
		for i := 0; i < 300; i++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				n := uint64(rng.Intn(2000))
				p, err := h.Alloc(int(n))
				if err == ErrOutOfMemory {
					continue
				}
				if err != nil {
					t.Logf("Alloc: %v", err)
					return false
				}
				nb := block{p, n}
				if n == 0 {
					nb.n = 1
				}
				for _, b := range live {
					if overlap(nb, b) {
						t.Logf("overlap: %+v vs %+v", nb, b)
						return false
					}
				}
				live = append(live, nb)
			} else {
				i := rng.Intn(len(live))
				if err := h.Free(live[i].p); err != nil {
					t.Logf("Free: %v", err)
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		if err := h.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: contents of live allocations survive arbitrary churn around
// them (the allocator never writes into live payloads).
func TestQuickPayloadIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := make(sliceMem, 1<<18)
		h, err := Format(mem, 0, 1<<18)
		if err != nil {
			return false
		}
		type block struct {
			p    uint64
			data uint64
		}
		var live []block
		for i := 0; i < 200; i++ {
			switch {
			case len(live) == 0 || rng.Intn(3) != 0:
				p, err := h.Alloc(8 + rng.Intn(200))
				if err != nil {
					continue
				}
				v := rng.Uint64()
				mem.Store64(p, v)
				live = append(live, block{p, v})
			default:
				i := rng.Intn(len(live))
				if err := h.Free(live[i].p); err != nil {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			for _, b := range live {
				if mem.Load64(b.p) != b.data {
					t.Logf("payload at %d clobbered", b.p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	h := newHeap(b, 1<<20)
	for i := 0; i < b.N; i++ {
		p, err := h.Alloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}
