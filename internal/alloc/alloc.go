// Package alloc implements the sequential persistent-memory allocator used
// by every PTM engine in this repository. It follows the design the Romulus
// paper adapted from Doug Lea's allocator: boundary-tagged chunks with
// segregated free lists, with **all metadata stored inside the persistent
// region** and mutated exclusively through the interposed Mem interface.
//
// Because every metadata store goes through the owning transaction, a crash
// during an allocation or free rolls the allocator back together with the
// user data (§4.4 of the paper): there are no internal inconsistencies to
// repair and no external leaks to collect, and no specialized garbage
// collector is needed.
//
// The allocator is sequential by design. The PTM engines guarantee a single
// mutator at a time (flat combining serializes all writers), which is
// exactly the property the paper exploits to reuse a sequential allocator.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
)

// Mem is the interposed persistent memory the heap lives in. Offsets are in
// the same address space as the pointers the heap hands out.
type Mem interface {
	Load64(off uint64) uint64
	Store64(off uint64, v uint64)
}

// Chunk geometry. Sizes are multiples of align; the low bits of the size
// field hold flags.
const (
	align      = 16
	headerSize = 16
	// minChunk leaves room for header (16), fd/bk links (16) and the
	// boundary-tag footer (8, in the last word) without overlap.
	minChunk    = 48
	flagInUse   = 1 // this chunk is allocated
	flagPrevUse = 2 // the chunk immediately below is allocated
	flagMask    = flagInUse | flagPrevUse
	// Chunk sizes occupy the low 48 bits of the header word; the top 16
	// bits hold a checksum of the chunk address, so that Free of a pointer
	// that does not address a real chunk header (e.g. an interior pointer
	// whose surrounding payload happens to look plausible) is detected
	// with probability 65535/65536 instead of corrupting the free lists.
	sizeMask = (uint64(1)<<48 - 1) &^ flagMask
)

// headerTag returns the 16-bit address checksum stored in a chunk header.
func headerTag(c uint64) uint64 {
	x := c * 0x9E3779B97F4A7C15
	return (x >> 48) & 0xFFFF
}

// Bin layout: small bins hold one chunk size each (48..1040 step 16), large
// bins hold power-of-two ranges above that.
const (
	numSmallBins = 63
	numLargeBins = 32
	numBins      = numSmallBins + numLargeBins
	smallMax     = minChunk + (numSmallBins-1)*align // 1040
)

// Metadata field offsets, relative to the heap base.
const (
	offMagic     = 0
	offEnd       = 8
	offTop       = 16
	offAllocs    = 24
	offFrees     = 32
	offAllocated = 40
	offBins      = 48
	metaSize     = offBins + numBins*8 // 808
	firstChunkAt = (metaSize + align - 1) &^ (align - 1)
)

const magic = 0x524F4D554C414C43 // "ROMULALC"

// ErrCorrupt is returned by Open when the region does not contain a heap.
var ErrCorrupt = errors.New("alloc: heap metadata corrupt or unformatted")

// ErrOutOfMemory is returned by Alloc when no chunk can satisfy the request.
var ErrOutOfMemory = errors.New("alloc: out of memory")

// ErrBadFree is returned by Free for a pointer that does not address a live
// allocation.
var ErrBadFree = errors.New("alloc: bad free")

// Heap manages a persistent heap inside [base, base+size) of mem. The Heap
// struct itself is volatile and stateless: all durable state lives in mem,
// so a Heap can be re-opened over a recovered region at any time.
type Heap struct {
	mem  Mem
	base uint64
}

// MinSize is the smallest region a heap can be formatted in.
const MinSize = firstChunkAt + minChunk

// Format initializes heap metadata in [base, base+size) of mem and returns
// the heap. All stores go through mem and therefore through the caller's
// transaction.
func Format(mem Mem, base, size uint64) (*Heap, error) {
	if size < MinSize {
		return nil, fmt.Errorf("alloc: region size %d below minimum %d", size, MinSize)
	}
	h := &Heap{mem: mem, base: base}
	h.store(offEnd, base+size)
	h.store(offTop, base+firstChunkAt)
	h.store(offAllocs, 0)
	h.store(offFrees, 0)
	h.store(offAllocated, 0)
	for b := 0; b < numBins; b++ {
		h.store(offBins+uint64(b)*8, 0)
	}
	h.store(offMagic, magic)
	return h, nil
}

// Open returns a heap over a previously formatted region.
func Open(mem Mem, base uint64) (*Heap, error) {
	h := &Heap{mem: mem, base: base}
	if h.load(offMagic) != magic {
		return nil, ErrCorrupt
	}
	return h, nil
}

func (h *Heap) load(rel uint64) uint64     { return h.mem.Load64(h.base + rel) }
func (h *Heap) store(rel, v uint64)        { h.mem.Store64(h.base+rel, v) }
func (h *Heap) binHead(b int) uint64       { return h.load(offBins + uint64(b)*8) }
func (h *Heap) setBinHead(b int, v uint64) { h.store(offBins+uint64(b)*8, v) }

// Absolute chunk accessors (off is an absolute offset in mem).
func (h *Heap) chunkWord(off uint64) uint64 { return h.mem.Load64(off) }
func (h *Heap) setChunkWord(off, v uint64)  { h.mem.Store64(off, v) }
func (h *Heap) chunkSize(c uint64) uint64   { return h.chunkWord(c) & sizeMask }
func (h *Heap) chunkFlags(c uint64) uint64  { return h.chunkWord(c) & flagMask }
func (h *Heap) setHeader(c, size, fl uint64) {
	h.setChunkWord(c, size|fl|headerTag(c)<<48)
}
func (h *Heap) headerTagOK(c uint64) bool {
	return h.chunkWord(c)>>48 == headerTag(c)
}
func (h *Heap) inUse(c uint64) bool      { return h.chunkWord(c)&flagInUse != 0 }
func (h *Heap) prevInUse(c uint64) bool  { return h.chunkWord(c)&flagPrevUse != 0 }
func (h *Heap) footerOf(c, size uint64)  { h.setChunkWord(c+size-8, size) }
func (h *Heap) prevSize(c uint64) uint64 { return h.chunkWord(c - 8) }
func (h *Heap) fd(c uint64) uint64       { return h.chunkWord(c + 16) }
func (h *Heap) bk(c uint64) uint64       { return h.chunkWord(c + 24) }
func (h *Heap) setFd(c, v uint64)        { h.setChunkWord(c+16, v) }
func (h *Heap) setBk(c, v uint64)        { h.setChunkWord(c+24, v) }

func (h *Heap) setPrevUseBit(c uint64, used bool) {
	w := h.chunkWord(c)
	if used {
		w |= flagPrevUse
	} else {
		w &^= flagPrevUse
	}
	h.setChunkWord(c, w)
}

// binFor maps a chunk size to its bin index.
func binFor(size uint64) int {
	if size <= smallMax {
		return int((size - minChunk) >> 4)
	}
	// 1041..2048 -> first large bin, doubling after that.
	b := numSmallBins + bits.Len64(size-1) - 11
	if b >= numBins {
		b = numBins - 1
	}
	return b
}

func (h *Heap) binInsert(c, size uint64) {
	b := binFor(size)
	head := h.binHead(b)
	h.setFd(c, head)
	h.setBk(c, 0)
	if head != 0 {
		h.setBk(head, c)
	}
	h.setBinHead(b, c)
}

func (h *Heap) binUnlink(c, size uint64) {
	fd, bk := h.fd(c), h.bk(c)
	if bk == 0 {
		h.setBinHead(binFor(size), fd)
	} else {
		h.setFd(bk, fd)
	}
	if fd != 0 {
		h.setBk(fd, bk)
	}
}

// chunkFor rounds a payload request up to a chunk size.
func chunkFor(n uint64) uint64 {
	size := (n + headerSize + align - 1) &^ (align - 1)
	if size < minChunk {
		size = minChunk
	}
	return size
}

// Alloc allocates n payload bytes and returns the absolute offset of the
// payload (chunk + header). The payload is NOT zeroed; the transactional
// layer above zeroes it so that the zeroing is interposed efficiently.
func (h *Heap) Alloc(n int) (uint64, error) {
	if n < 0 {
		return 0, fmt.Errorf("alloc: negative size %d", n)
	}
	need := chunkFor(uint64(n))
	// Search the bins, smallest candidate bin first.
	for b := binFor(need); b < numBins; b++ {
		for c := h.binHead(b); c != 0; c = h.fd(c) {
			size := h.chunkSize(c)
			if size < need {
				continue
			}
			h.binUnlink(c, size)
			h.takeChunk(c, size, need)
			h.bumpAllocStats(need)
			return c + headerSize, nil
		}
	}
	// Carve from the wilderness.
	top, end := h.load(offTop), h.load(offEnd)
	if end-top < need {
		return 0, ErrOutOfMemory
	}
	c := top
	// The chunk immediately below top is always in use (free neighbours are
	// merged into top), so flagPrevUse holds.
	h.setHeader(c, need, flagInUse|flagPrevUse)
	h.store(offTop, top+need)
	h.bumpAllocStats(need)
	return c + headerSize, nil
}

// takeChunk converts free chunk c (of the given size, already unlinked) into
// an allocated chunk of exactly need bytes, splitting off any remainder.
func (h *Heap) takeChunk(c, size, need uint64) {
	if size-need >= minChunk {
		// Split: the remainder becomes a free chunk above c.
		r := c + need
		rs := size - need
		h.setHeader(r, rs, flagPrevUse) // c is now in use below r
		h.footerOf(r, rs)
		h.binInsert(r, rs)
		// The chunk above the remainder keeps flagPrevUse==0 (prev free).
		h.setHeader(c, need, flagInUse|flagPrevUse)
		return
	}
	// Use the whole chunk.
	h.setHeader(c, size, flagInUse|flagPrevUse)
	next := c + size
	if next < h.load(offTop) {
		h.setPrevUseBit(next, true)
	}
}

func (h *Heap) bumpAllocStats(size uint64) {
	h.store(offAllocs, h.load(offAllocs)+1)
	h.store(offAllocated, h.load(offAllocated)+size)
}

// Free releases the allocation whose payload starts at p (as returned by
// Alloc), coalescing with free neighbours and the wilderness.
func (h *Heap) Free(p uint64) error {
	if p < h.base+firstChunkAt+headerSize || p%align != 0 {
		return ErrBadFree
	}
	c := p - headerSize
	top := h.load(offTop)
	if c >= top || !h.inUse(c) || !h.headerTagOK(c) {
		return ErrBadFree
	}
	size := h.chunkSize(c)
	if size < minChunk || size%align != 0 || c+size > top {
		return ErrBadFree
	}
	h.store(offFrees, h.load(offFrees)+1)
	h.store(offAllocated, h.load(offAllocated)-size)

	// Coalesce with the previous chunk if it is free. Headers of chunks
	// that cease to exist are cleared so stale (tagged, in-use-looking)
	// headers inside larger blocks cannot satisfy a later bogus Free.
	if !h.prevInUse(c) {
		ps := h.prevSize(c)
		prev := c - ps
		h.binUnlink(prev, ps)
		h.setChunkWord(c, 0)
		c = prev
		size += ps
	}
	next := c + size
	if next == top {
		// Merge into the wilderness. The chunk below c is in use (either c
		// had flagPrevUse, or we coalesced with prev whose prev was in use),
		// preserving the invariant that the chunk below top is allocated.
		h.setChunkWord(c, 0)
		h.store(offTop, c)
		return nil
	}
	// Coalesce with the next chunk if it is free.
	if !h.inUse(next) {
		ns := h.chunkSize(next)
		h.binUnlink(next, ns)
		h.setChunkWord(next, 0)
		size += ns
		next = c + size
		if next == top {
			h.setChunkWord(c, 0)
			h.store(offTop, c)
			return nil
		}
	}
	h.setPrevUseBit(next, false)
	h.setHeader(c, size, flagPrevUse)
	h.footerOf(c, size)
	h.binInsert(c, size)
	return nil
}

// UsableSize returns the payload capacity of the allocation at p.
func (h *Heap) UsableSize(p uint64) (int, error) {
	c := p - headerSize
	if p < h.base+firstChunkAt+headerSize || p%align != 0 || c >= h.load(offTop) ||
		!h.inUse(c) || !h.headerTagOK(c) {
		return 0, ErrBadFree
	}
	return int(h.chunkSize(c) - headerSize), nil
}

// Top returns the current wilderness offset: the high-water mark of the
// heap. Romulus copies only up to this point (§6.5).
func (h *Heap) Top() uint64 { return h.load(offTop) }

// End returns the end offset of the heap region.
func (h *Heap) End() uint64 { return h.load(offEnd) }

// Stats reports allocator counters (live in persistent memory, so they are
// transactional like everything else).
type Stats struct {
	Allocs         uint64
	Frees          uint64
	AllocatedBytes uint64
	TopOffset      uint64
}

// Stats returns a snapshot of the allocator counters.
func (h *Heap) Stats() Stats {
	return Stats{
		Allocs:         h.load(offAllocs),
		Frees:          h.load(offFrees),
		AllocatedBytes: h.load(offAllocated),
		TopOffset:      h.load(offTop),
	}
}

// CheckInvariants walks the whole heap and verifies chunk and bin
// consistency. Intended for tests; returns a descriptive error on the first
// violation found.
func (h *Heap) CheckInvariants() error {
	top, end := h.load(offTop), h.load(offEnd)
	if top < h.base+firstChunkAt || top > end {
		return fmt.Errorf("alloc: top %d outside [%d,%d]", top, h.base+firstChunkAt, end)
	}
	// Walk chunks linearly.
	free := map[uint64]uint64{} // chunk -> size
	prevFree := false
	prevExists := false
	for c := h.base + firstChunkAt; c < top; {
		size := h.chunkSize(c)
		if size < minChunk || size%align != 0 || c+size > top {
			return fmt.Errorf("alloc: chunk %d has bad size %d", c, size)
		}
		if !h.headerTagOK(c) {
			return fmt.Errorf("alloc: chunk %d has bad header tag", c)
		}
		if prevExists && h.prevInUse(c) == prevFree {
			return fmt.Errorf("alloc: chunk %d prev-use flag inconsistent", c)
		}
		if !h.inUse(c) {
			if prevFree {
				return fmt.Errorf("alloc: adjacent free chunks at %d", c)
			}
			if h.chunkWord(c+size-8) != size {
				return fmt.Errorf("alloc: chunk %d footer %d != size %d", c, h.chunkWord(c+size-8), size)
			}
			free[c] = size
			prevFree = true
		} else {
			prevFree = false
		}
		prevExists = true
		c += size
	}
	if prevFree {
		return fmt.Errorf("alloc: free chunk adjacent to top")
	}
	// Every free chunk must be in exactly the right bin.
	seen := map[uint64]bool{}
	for b := 0; b < numBins; b++ {
		prev := uint64(0)
		for c := h.binHead(b); c != 0; c = h.fd(c) {
			if seen[c] {
				return fmt.Errorf("alloc: chunk %d linked twice", c)
			}
			seen[c] = true
			size, ok := free[c]
			if !ok {
				return fmt.Errorf("alloc: bin %d links non-free chunk %d", b, c)
			}
			if binFor(size) != b {
				return fmt.Errorf("alloc: chunk %d size %d in bin %d, want %d", c, size, b, binFor(size))
			}
			if h.bk(c) != prev {
				return fmt.Errorf("alloc: chunk %d bk %d != %d", c, h.bk(c), prev)
			}
			prev = c
		}
	}
	if len(seen) != len(free) {
		return fmt.Errorf("alloc: %d free chunks but %d binned", len(free), len(seen))
	}
	return nil
}
