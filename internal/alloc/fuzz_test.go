package alloc

import "testing"

// FuzzAllocFree interprets the fuzz input as a sequence of allocator
// commands and checks the heap invariants after every step. Run with
// `go test -fuzz FuzzAllocFree ./internal/alloc`; the seeds below also run
// in ordinary `go test`.
func FuzzAllocFree(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 0, 100, 1, 1})
	f.Add([]byte{0, 255, 0, 255, 1, 0, 1, 1, 0, 16})
	f.Add(bytes16(0, 1, 0, 2, 0, 3, 1, 1, 1, 0, 0, 200, 1, 0, 0, 50))
	f.Fuzz(func(t *testing.T, data []byte) {
		mem := make(sliceMem, 1<<16)
		h, err := Format(mem, 0, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		var live []uint64
		for i := 0; i+1 < len(data); i += 2 {
			cmd, arg := data[i], data[i+1]
			switch cmd % 3 {
			case 0: // alloc of arg*8 bytes
				p, err := h.Alloc(int(arg) * 8)
				if err == ErrOutOfMemory {
					continue
				}
				if err != nil {
					t.Fatalf("Alloc: %v", err)
				}
				live = append(live, p)
			case 1: // free a live pointer
				if len(live) == 0 {
					continue
				}
				idx := int(arg) % len(live)
				if err := h.Free(live[idx]); err != nil {
					t.Fatalf("Free(%d): %v", live[idx], err)
				}
				live = append(live[:idx], live[idx+1:]...)
			case 2: // free a bogus pointer: must fail cleanly
				bogus := uint64(arg) * 7
				if err := h.Free(bogus); err == nil {
					// Only legal if it happened to be live.
					found := false
					for _, p := range live {
						if p == bogus {
							found = true
						}
					}
					if !found {
						t.Fatalf("Free(%d) of non-live pointer succeeded", bogus)
					}
					// Remove it so we don't double free later.
					for i, p := range live {
						if p == bogus {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			}
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}

func bytes16(vals ...byte) []byte { return vals }
