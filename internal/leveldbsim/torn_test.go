package leveldbsim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// A WAL with a torn tail (half a record, as after a crash mid-write) must
// recover the intact prefix and ignore the tail, like LevelDB's log reader.
func TestTornWALTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wo := WriteOptions{Sync: true}
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"), wo); err != nil {
			t.Fatal(err)
		}
	}
	db.wal.Close()

	// Tear the tail: append half a record.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{3, 0, 0, 0, 1, 0}); err != nil { // truncated header
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn WAL: %v", err)
	}
	defer db2.Close()
	for i := 0; i < 10; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Errorf("key k%02d lost to torn tail: %v", i, err)
		}
	}
}

// A corrupt length field (absurd value) must also terminate replay safely.
func TestCorruptWALLengthStopsReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("good"), []byte("1"), WriteOptions{Sync: true}); err != nil {
		t.Fatal(err)
	}
	db.wal.Close()
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// klen = 2^30: insane, must be treated as corruption.
	f.Write([]byte{0, 0, 0, 64, 4, 0, 0, 0})
	f.Write(make([]byte, 64))
	f.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with corrupt WAL: %v", err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("good")); err != nil {
		t.Errorf("intact record lost: %v", err)
	}
	n, _ := db2.Len()
	if n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}

// Unsynced buffered writes are allowed to vanish at a crash — that is the
// buffered-durability window the paper criticizes. Verify the store still
// opens and retains everything that WAS synced.
func TestCrashLosesOnlyUnsyncedSuffix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SyncEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("synced"), []byte("1"), WriteOptions{Sync: true}); err != nil {
		t.Fatal(err)
	}
	// Buffered writes: never flushed to the file.
	for i := 0; i < 5; i++ {
		db.Put([]byte(fmt.Sprintf("buf%d", i)), []byte("x"), WriteOptions{})
	}
	// Crash: close the fd without flushing the bufio layer.
	db.wal.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("synced")); err != nil {
		t.Errorf("synced write lost: %v", err)
	}
	lost := 0
	for i := 0; i < 5; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("buf%d", i))); errors.Is(err, ErrNotFound) {
			lost++
		}
	}
	if lost != 5 {
		t.Errorf("expected all 5 buffered writes lost, lost %d", lost)
	}
}
