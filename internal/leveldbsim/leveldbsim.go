// Package leveldbsim is a compact LevelDB-style log-structured key-value
// store, built as the disk-based comparator for the RomulusDB evaluation
// (Figure 8 of the Romulus paper). It reproduces the durability semantics
// that matter for that comparison:
//
//   - updates append to a write-ahead log with BUFFERED durability: the
//     data reaches the OS immediately but fdatasync runs only about once
//     per SyncEvery bytes (~1000 kB, the paper's measured LevelDB
//     behaviour), so a crash can lose recently acknowledged writes;
//   - WriteOptions.sync (the Sync field here) forces an fdatasync per
//     operation, the mode the paper's fillsync benchmark measures;
//   - the memtable flushes to sorted immutable runs (SSTs); reads consult
//     the memtable then runs newest-first; iterators merge everything in
//     key order, forward or reverse (readseq / readreverse);
//   - runs are compacted by merging when they accumulate.
//
// The implementation is deliberately real: actual files, actual fsync,
// actual recovery by WAL replay — so the fill-100k and fillsync shapes come
// from genuine I/O, not constants.
package leveldbsim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("leveldbsim: key not found")

// Options configure Open.
type Options struct {
	// MemtableBytes triggers a flush to an SST (default 4 MiB).
	MemtableBytes int
	// SyncEvery is the buffered-durability window: an fdatasync is issued
	// once this many bytes have been appended to the WAL since the last
	// sync (default 1000 KiB, matching the paper's observation).
	SyncEvery int
	// CompactAt merges all runs into one when their count reaches this
	// value (default 8).
	CompactAt int
}

const (
	defaultMemtableBytes = 4 << 20
	defaultSyncEvery     = 1000 << 10
	defaultCompactAt     = 8
)

// WriteOptions mirror LevelDB's per-operation durability switch.
type WriteOptions struct {
	// Sync forces an fdatasync before the operation returns.
	Sync bool
}

// Stats count I/O events relevant to the paper's analysis.
type Stats struct {
	Fdatasyncs  uint64 // fsync/fdatasync calls on the WAL or SSTs
	Flushes     uint64 // memtable flushes
	Compactions uint64
}

// DB is a leveldbsim store rooted in a directory.
type DB struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	mem      map[string]*string // nil value = tombstone
	memBytes int
	wal      *os.File
	walBuf   *bufio.Writer
	unsynced int
	ssts     []*sstReader // oldest first
	zombies  []*sstReader // compacted-away runs kept open for live iterators
	nextSST  int
	stats    Stats
}

// Open creates or reopens a store in dir, replaying the WAL.
func Open(dir string, opts Options) (*DB, error) {
	if opts.MemtableBytes == 0 {
		opts.MemtableBytes = defaultMemtableBytes
	}
	if opts.SyncEvery == 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if opts.CompactAt == 0 {
		opts.CompactAt = defaultCompactAt
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("leveldbsim: %w", err)
	}
	db := &DB{dir: dir, opts: opts, mem: map[string]*string{}}
	if err := db.loadSSTs(); err != nil {
		return nil, err
	}
	if err := db.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(db.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("leveldbsim: %w", err)
	}
	db.wal = wal
	db.walBuf = bufio.NewWriterSize(wal, 64<<10)
	return db, nil
}

func (db *DB) walPath() string { return filepath.Join(db.dir, "wal.log") }

func (db *DB) sstPath(n int) string {
	return filepath.Join(db.dir, fmt.Sprintf("%06d.sst", n))
}

func (db *DB) loadSSTs() error {
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return fmt.Errorf("leveldbsim: %w", err)
	}
	var nums []int
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".sst") {
			var n int
			if _, err := fmt.Sscanf(name, "%06d.sst", &n); err == nil {
				nums = append(nums, n)
			}
		}
	}
	sort.Ints(nums)
	for _, n := range nums {
		r, err := openSST(db.sstPath(n))
		if err != nil {
			return err
		}
		db.ssts = append(db.ssts, r)
		if n >= db.nextSST {
			db.nextSST = n + 1
		}
	}
	return nil
}

// replayWAL loads surviving WAL records into the memtable, tolerating a
// torn tail (records after the first corruption are discarded, like
// LevelDB's log reader).
func (db *DB) replayWAL() error {
	f, err := os.Open(db.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("leveldbsim: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [8]byte
	for {
		if _, err := readFull(r, hdr[:]); err != nil {
			break
		}
		klen := binary.LittleEndian.Uint32(hdr[0:4])
		vlen := binary.LittleEndian.Uint32(hdr[4:8])
		if klen > 1<<20 || (vlen != tombstoneLen && vlen > 1<<28) {
			break // torn/corrupt tail
		}
		key := make([]byte, klen)
		if _, err := readFull(r, key); err != nil {
			break
		}
		if vlen == tombstoneLen {
			db.memInsert(string(key), nil)
			continue
		}
		val := make([]byte, vlen)
		if _, err := readFull(r, val); err != nil {
			break
		}
		s := string(val)
		db.memInsert(string(key), &s)
	}
	return nil
}

func readFull(r *bufio.Reader, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := r.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

const tombstoneLen = 0xFFFFFFFF

func (db *DB) memInsert(key string, val *string) {
	if old, ok := db.mem[key]; ok {
		if old != nil {
			db.memBytes -= len(*old)
		}
		db.memBytes -= len(key)
	}
	db.mem[key] = val
	db.memBytes += len(key)
	if val != nil {
		db.memBytes += len(*val)
	}
}

// Put stores a key/value pair.
func (db *DB) Put(key, val []byte, wo WriteOptions) error {
	return db.apply(key, val, false, wo)
}

// Delete removes a key.
func (db *DB) Delete(key []byte, wo WriteOptions) error {
	return db.apply(key, nil, true, wo)
}

func (db *DB) apply(key, val []byte, del bool, wo WriteOptions) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.appendWAL(key, val, del); err != nil {
		return err
	}
	if err := db.maybeSync(wo.Sync); err != nil {
		return err
	}
	if del {
		db.memInsert(string(key), nil)
	} else {
		s := string(val)
		db.memInsert(string(key), &s)
	}
	return db.maybeFlush()
}

// Batch is an ordered set of operations applied atomically with respect to
// other writers (LevelDB write-batch semantics: atomicity in the log, not
// isolation from readers mid-apply).
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	del      bool
	key, val []byte
}

// Put queues an insertion.
func (b *Batch) Put(key, val []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), val: append([]byte(nil), val...)})
}

// Delete queues a removal.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{del: true, key: append([]byte(nil), key...)})
}

// Len returns the queued operation count.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Write applies the batch.
func (db *DB) Write(b *Batch, wo WriteOptions) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, op := range b.ops {
		if err := db.appendWAL(op.key, op.val, op.del); err != nil {
			return err
		}
	}
	if err := db.maybeSync(wo.Sync); err != nil {
		return err
	}
	for _, op := range b.ops {
		if op.del {
			db.memInsert(string(op.key), nil)
		} else {
			s := string(op.val)
			db.memInsert(string(op.key), &s)
		}
	}
	return db.maybeFlush()
}

func (db *DB) appendWAL(key, val []byte, del bool) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(key)))
	if del {
		binary.LittleEndian.PutUint32(hdr[4:8], tombstoneLen)
	} else {
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(val)))
	}
	if _, err := db.walBuf.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := db.walBuf.Write(key); err != nil {
		return err
	}
	if !del {
		if _, err := db.walBuf.Write(val); err != nil {
			return err
		}
	}
	db.unsynced += 8 + len(key) + len(val)
	return nil
}

// maybeSync implements the two durability modes: per-operation fdatasync
// (sync writes) or one fdatasync per SyncEvery bytes (buffered).
func (db *DB) maybeSync(force bool) error {
	if !force && db.unsynced < db.opts.SyncEvery {
		return nil
	}
	if err := db.walBuf.Flush(); err != nil {
		return err
	}
	if err := db.wal.Sync(); err != nil {
		return err
	}
	db.stats.Fdatasyncs++
	db.unsynced = 0
	return nil
}

// maybeFlush writes the memtable to a new SST when it outgrows its budget.
func (db *DB) maybeFlush() error {
	if db.memBytes < db.opts.MemtableBytes {
		return nil
	}
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if len(db.mem) == 0 {
		return nil
	}
	n := db.nextSST
	db.nextSST++
	path := db.sstPath(n)
	if err := writeSST(path, db.mem); err != nil {
		return err
	}
	db.stats.Fdatasyncs++ // SST is synced on write
	r, err := openSST(path)
	if err != nil {
		return err
	}
	db.ssts = append(db.ssts, r)
	db.mem = map[string]*string{}
	db.memBytes = 0
	// The WAL is now redundant for flushed data.
	if err := db.walBuf.Flush(); err != nil {
		return err
	}
	if err := db.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := db.wal.Seek(0, 0); err != nil {
		return err
	}
	db.unsynced = 0
	db.stats.Flushes++
	if len(db.ssts) >= db.opts.CompactAt {
		return db.compactLocked()
	}
	return nil
}

// compactLocked merges every run into one, dropping shadowed versions and
// tombstones.
func (db *DB) compactLocked() error {
	merged := map[string]*string{}
	for _, r := range db.ssts { // oldest first: newer overwrite older
		if err := r.loadInto(merged); err != nil {
			return err
		}
	}
	for k, v := range merged {
		if v == nil {
			delete(merged, k) // full merge: tombstones can drop
		}
	}
	n := db.nextSST
	db.nextSST++
	path := db.sstPath(n)
	if err := writeSST(path, merged); err != nil {
		return err
	}
	db.stats.Fdatasyncs++
	r, err := openSST(path)
	if err != nil {
		return err
	}
	// Old runs may still be referenced by live iterators: unlink the files
	// (POSIX keeps open descriptors readable) and close them at shutdown.
	for _, old := range db.ssts {
		os.Remove(old.path)
	}
	db.zombies = append(db.zombies, db.ssts...)
	db.ssts = []*sstReader{r}
	db.stats.Compactions++
	return nil
}

// Get returns the newest value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if v, ok := db.mem[string(key)]; ok {
		if v == nil {
			return nil, ErrNotFound
		}
		return []byte(*v), nil
	}
	for i := len(db.ssts) - 1; i >= 0; i-- {
		v, del, ok, err := db.ssts[i].get(string(key))
		if err != nil {
			return nil, err
		}
		if ok {
			if del {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// Len counts live keys (a full merge; intended for tests and tools).
func (db *DB) Len() (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	merged := map[string]*string{}
	for _, r := range db.ssts {
		if err := r.loadInto(merged); err != nil {
			return 0, err
		}
	}
	for k, v := range db.mem {
		merged[k] = v
	}
	n := 0
	for _, v := range merged {
		if v != nil {
			n++
		}
	}
	return n, nil
}

// Stats returns I/O counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.stats
}

// Sync forces the WAL to stable storage.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.maybeSync(true)
}

// Close flushes buffers and closes files. Buffered (unsynced) data is
// written out, like LevelDB's clean shutdown.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.walBuf.Flush(); err != nil {
		return err
	}
	if err := db.wal.Sync(); err != nil {
		return err
	}
	db.stats.Fdatasyncs++
	for _, r := range db.ssts {
		r.close()
	}
	for _, r := range db.zombies {
		r.close()
	}
	return db.wal.Close()
}
