package leveldbsim

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func openTmp(t testing.TB, opts Options) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := openTmp(t, Options{})
	wo := WriteOptions{}
	if err := db.Put([]byte("a"), []byte("1"), wo); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	if err := db.Delete([]byte("a"), wo); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestFlushAndReadThroughSST(t *testing.T) {
	db := openTmp(t, Options{MemtableBytes: 1 << 10})
	wo := WriteOptions{}
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%03d", i)), bytes.Repeat([]byte{byte(i)}, 50), wo); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("memtable never flushed")
	}
	for i := 0; i < 200; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("key%03d", i)))
		if err != nil || len(v) != 50 || v[0] != byte(i) {
			t.Fatalf("Get(%d) = %v, %v", i, v, err)
		}
	}
	// Shadowing: overwrite a flushed key; memtable version must win.
	if err := db.Put([]byte("key005"), []byte("new"), wo); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Get([]byte("key005"))
	if string(v) != "new" {
		t.Fatalf("shadowed read = %q", v)
	}
	// Deleting a flushed key must hide it.
	if err := db.Delete([]byte("key007"), wo); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("key007")); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone did not shadow SST value")
	}
}

func TestCompaction(t *testing.T) {
	db := openTmp(t, Options{MemtableBytes: 512, CompactAt: 3})
	wo := WriteOptions{}
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i%50)), bytes.Repeat([]byte{byte(i)}, 40), wo); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("no compaction happened")
	}
	n, err := db.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("Len = %d, want 50", n)
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wo := WriteOptions{Sync: true} // force durability for the recovery test
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)), wo); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete([]byte("k03"), wo)
	// Abandon without Close (simulated crash: OS kept the synced WAL).
	db.wal.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, err := db2.Get([]byte(k))
		if i == 3 {
			if !errors.Is(err, ErrNotFound) {
				t.Errorf("deleted key recovered: %q", v)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%02d", i) {
			t.Errorf("Get(%s) = %q, %v", k, v, err)
		}
	}
}

func TestBufferedDurabilityWindow(t *testing.T) {
	// With a large SyncEvery, writes are acknowledged before any fsync:
	// the paper's criticism of LevelDB's default mode.
	db := openTmp(t, Options{SyncEvery: 1 << 20})
	wo := WriteOptions{}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"), wo)
	}
	if got := db.Stats().Fdatasyncs; got != 0 {
		t.Errorf("buffered mode issued %d fdatasyncs for 100 small writes", got)
	}
	// Sync mode: one fsync per write.
	before := db.Stats().Fdatasyncs
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("s%d", i)), []byte("v"), WriteOptions{Sync: true})
	}
	if got := db.Stats().Fdatasyncs - before; got != 10 {
		t.Errorf("sync mode issued %d fdatasyncs for 10 writes", got)
	}
}

func TestFdatasyncsPerMillionBytesShape(t *testing.T) {
	// ~1000 kB between syncs means ~116 B records require ~9000 writes per
	// sync; verify the order of magnitude the paper reports (<100 syncs
	// for 1M x 116 B inserts scaled down here).
	db := openTmp(t, Options{SyncEvery: 1000 << 10, MemtableBytes: 64 << 20})
	wo := WriteOptions{}
	val := bytes.Repeat([]byte{7}, 100)
	for i := 0; i < 50000; i++ {
		db.Put([]byte(fmt.Sprintf("%016d", i)), val, wo)
	}
	syncs := db.Stats().Fdatasyncs
	// 50k * 124 B = 6.2 MB -> ~6 syncs.
	if syncs < 3 || syncs > 12 {
		t.Errorf("fdatasyncs = %d for 6.2 MB of writes, want ~6", syncs)
	}
}

func TestBatch(t *testing.T) {
	db := openTmp(t, Options{})
	var b Batch
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	b.Delete([]byte("x"))
	if b.Len() != 3 {
		t.Fatal("batch len")
	}
	if err := db.Write(&b, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("x")); !errors.Is(err, ErrNotFound) {
		t.Error("x should be deleted")
	}
	v, err := db.Get([]byte("y"))
	if err != nil || string(v) != "2" {
		t.Errorf("y = %q, %v", v, err)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset")
	}
}

func TestIteratorMergesAndOrders(t *testing.T) {
	db := openTmp(t, Options{MemtableBytes: 1 << 10})
	wo := WriteOptions{}
	model := map[string]string{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key%03d", rng.Intn(100))
		if rng.Intn(5) == 0 {
			db.Delete([]byte(k), wo)
			delete(model, k)
		} else {
			v := fmt.Sprintf("val%d", i)
			db.Put([]byte(k), []byte(v), wo)
			model[k] = v
		}
	}
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)

	it := db.NewIterator(false)
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
		if model[string(it.Key())] != string(it.Value()) {
			t.Errorf("value mismatch for %s", it.Key())
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != len(wantKeys) {
		t.Fatalf("forward iterator saw %d keys, want %d", len(got), len(wantKeys))
	}
	for i := range got {
		if got[i] != wantKeys[i] {
			t.Fatalf("forward order wrong at %d: %s vs %s", i, got[i], wantKeys[i])
		}
	}

	rit := db.NewIterator(true)
	got = got[:0]
	for rit.Next() {
		got = append(got, string(rit.Key()))
	}
	for i := range got {
		if got[i] != wantKeys[len(wantKeys)-1-i] {
			t.Fatalf("reverse order wrong at %d", i)
		}
	}
}

func TestIteratorSnapshotSurvivesCompaction(t *testing.T) {
	db := openTmp(t, Options{MemtableBytes: 512, CompactAt: 2})
	wo := WriteOptions{}
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte{1}, 40), wo)
	}
	it := db.NewIterator(false)
	// Trigger compaction while the iterator is live.
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("z%03d", i)), bytes.Repeat([]byte{2}, 40), wo)
	}
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() != nil {
		t.Fatalf("iterator failed after compaction: %v", it.Err())
	}
	if n < 50 {
		t.Errorf("iterator saw %d keys, want >= 50", n)
	}
}

func TestLenAcrossLayers(t *testing.T) {
	db := openTmp(t, Options{MemtableBytes: 512})
	wo := WriteOptions{}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte{1}, 30), wo)
	}
	for i := 0; i < 10; i++ {
		db.Delete([]byte(fmt.Sprintf("k%03d", i)), wo)
	}
	n, err := db.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 90 {
		t.Errorf("Len = %d, want 90", n)
	}
}
