package leveldbsim

import "sort"

// Iterator merges the memtable and every run in key order, newest version
// winning and tombstones suppressed — the semantics of LevelDB's iterators
// used by the readseq and readreverse benchmarks. An Iterator is a
// snapshot: writes after NewIterator are not observed.
type Iterator struct {
	sources []iterSource // priority order: 0 = newest
	reverse bool
	key     []byte
	val     []byte
	err     error
}

type iterSource interface {
	// peek returns the current key, or ok=false when exhausted.
	peek() (key string, ok bool)
	// take consumes the current entry, returning its value (nil for a
	// tombstone).
	take() ([]byte, bool, error)
}

// memIter iterates a sorted snapshot of the memtable.
type memIter struct {
	keys    []string
	vals    []*string
	i       int
	reverse bool
}

func (m *memIter) peek() (string, bool) {
	if m.reverse {
		if m.i < 0 {
			return "", false
		}
		return m.keys[m.i], true
	}
	if m.i >= len(m.keys) {
		return "", false
	}
	return m.keys[m.i], true
}

func (m *memIter) take() ([]byte, bool, error) {
	v := m.vals[m.i]
	if m.reverse {
		m.i--
	} else {
		m.i++
	}
	if v == nil {
		return nil, true, nil
	}
	return []byte(*v), false, nil
}

// sstIter iterates one immutable run.
type sstIter struct {
	r       *sstReader
	i       int
	reverse bool
}

func (s *sstIter) peek() (string, bool) {
	if s.reverse {
		if s.i < 0 {
			return "", false
		}
		return s.r.keys[s.i], true
	}
	if s.i >= len(s.r.keys) {
		return "", false
	}
	return s.r.keys[s.i], true
}

func (s *sstIter) take() ([]byte, bool, error) {
	i := s.i
	if s.reverse {
		s.i--
	} else {
		s.i++
	}
	if s.r.lens[i] == tombstoneLen {
		return nil, true, nil
	}
	val := make([]byte, s.r.lens[i])
	if _, err := s.r.f.ReadAt(val, s.r.offs[i]); err != nil {
		return nil, false, err
	}
	return val, false, nil
}

// NewIterator creates a snapshot iterator over the whole store.
func (db *DB) NewIterator(reverse bool) *Iterator {
	db.mu.RLock()
	defer db.mu.RUnlock()
	mi := &memIter{reverse: reverse}
	mi.keys = make([]string, 0, len(db.mem))
	for k := range db.mem {
		mi.keys = append(mi.keys, k)
	}
	sort.Strings(mi.keys)
	mi.vals = make([]*string, len(mi.keys))
	for i, k := range mi.keys {
		mi.vals[i] = db.mem[k]
	}
	if reverse {
		mi.i = len(mi.keys) - 1
	}
	it := &Iterator{reverse: reverse}
	it.sources = append(it.sources, mi)
	for i := len(db.ssts) - 1; i >= 0; i-- { // newest first
		si := &sstIter{r: db.ssts[i], reverse: reverse}
		if reverse {
			si.i = len(db.ssts[i].keys) - 1
		}
		it.sources = append(it.sources, si)
	}
	return it
}

// Next advances to the next live pair, returning false at the end (or on
// error; see Err).
func (it *Iterator) Next() bool {
	for {
		best := ""
		found := false
		for _, s := range it.sources {
			k, ok := s.peek()
			if !ok {
				continue
			}
			if !found || (!it.reverse && k < best) || (it.reverse && k > best) {
				best, found = k, true
			}
		}
		if !found {
			return false
		}
		// Take from the highest-priority source holding the key; discard
		// shadowed versions in the others.
		var val []byte
		var del bool
		taken := false
		for _, s := range it.sources {
			k, ok := s.peek()
			if !ok || k != best {
				continue
			}
			v, d, err := s.take()
			if err != nil {
				it.err = err
				return false
			}
			if !taken {
				val, del, taken = v, d, true
			}
		}
		if del {
			continue // tombstone: key is dead
		}
		it.key, it.val = []byte(best), val
		return true
	}
}

// Key returns the current key (valid after Next returns true).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.val }

// Err reports an I/O error that terminated iteration, if any.
func (it *Iterator) Err() error { return it.err }
