package leveldbsim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
)

// SST file format:
//
//	[count 8] then count records of [klen 4][vlen 4][key][value],
//	sorted ascending by key; vlen == tombstoneLen marks a deletion.
//
// The reader keeps keys and value offsets in memory (like LevelDB's index
// blocks, coarsened) and reads values from the file on demand.

func writeSST(path string, data map[string]*string) error {
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("leveldbsim: %w", err)
	}
	w := bufio.NewWriterSize(f, 256<<10)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(keys)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var rec [8]byte
	for _, k := range keys {
		v := data[k]
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(k)))
		if v == nil {
			binary.LittleEndian.PutUint32(rec[4:8], tombstoneLen)
		} else {
			binary.LittleEndian.PutUint32(rec[4:8], uint32(len(*v)))
		}
		if _, err := w.Write(rec[:]); err != nil {
			f.Close()
			return err
		}
		if _, err := w.WriteString(k); err != nil {
			f.Close()
			return err
		}
		if v != nil {
			if _, err := w.WriteString(*v); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type sstReader struct {
	path string
	f    *os.File
	keys []string
	offs []int64 // value offset in file (undefined for tombstones)
	lens []uint32
}

func openSST(path string) (*sstReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("leveldbsim: %w", err)
	}
	br := bufio.NewReaderSize(f, 256<<10)
	var hdr [8]byte
	if _, err := readFull(br, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("leveldbsim: %s: short header", path)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	r := &sstReader{
		path: path,
		f:    f,
		keys: make([]string, 0, count),
		offs: make([]int64, 0, count),
		lens: make([]uint32, 0, count),
	}
	off := int64(8)
	var rec [8]byte
	for i := uint64(0); i < count; i++ {
		if _, err := readFull(br, rec[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("leveldbsim: %s: truncated", path)
		}
		klen := binary.LittleEndian.Uint32(rec[0:4])
		vlen := binary.LittleEndian.Uint32(rec[4:8])
		key := make([]byte, klen)
		if _, err := readFull(br, key); err != nil {
			f.Close()
			return nil, fmt.Errorf("leveldbsim: %s: truncated key", path)
		}
		off += 8 + int64(klen)
		r.keys = append(r.keys, string(key))
		r.offs = append(r.offs, off)
		r.lens = append(r.lens, vlen)
		if vlen != tombstoneLen {
			if _, err := br.Discard(int(vlen)); err != nil {
				f.Close()
				return nil, fmt.Errorf("leveldbsim: %s: truncated value", path)
			}
			off += int64(vlen)
		}
	}
	return r, nil
}

// get returns (value, isTombstone, found).
func (r *sstReader) get(key string) ([]byte, bool, bool, error) {
	i := sort.SearchStrings(r.keys, key)
	if i >= len(r.keys) || r.keys[i] != key {
		return nil, false, false, nil
	}
	if r.lens[i] == tombstoneLen {
		return nil, true, true, nil
	}
	val := make([]byte, r.lens[i])
	if _, err := r.f.ReadAt(val, r.offs[i]); err != nil {
		return nil, false, false, fmt.Errorf("leveldbsim: %s: %w", r.path, err)
	}
	return val, false, true, nil
}

// loadInto merges the run's contents into dst (newer callers overwrite by
// calling on older runs first).
func (r *sstReader) loadInto(dst map[string]*string) error {
	for i, k := range r.keys {
		if r.lens[i] == tombstoneLen {
			dst[k] = nil
			continue
		}
		val := make([]byte, r.lens[i])
		if _, err := r.f.ReadAt(val, r.offs[i]); err != nil {
			return fmt.Errorf("leveldbsim: %s: %w", r.path, err)
		}
		s := string(val)
		dst[k] = &s
	}
	return nil
}

func (r *sstReader) close() { r.f.Close() }
