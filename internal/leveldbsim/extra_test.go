package leveldbsim

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestSyncForcesDurability(t *testing.T) {
	db := openTmp(t, Options{SyncEvery: 1 << 30})
	db.Put([]byte("a"), []byte("1"), WriteOptions{})
	before := db.Stats().Fdatasyncs
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Fdatasyncs != before+1 {
		t.Error("Sync did not fdatasync")
	}
}

func TestReopenWithExistingSSTs(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte{byte(i)}, 30), WriteOptions{})
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("no flush happened")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{MemtableBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 100; i++ {
		v, err := db2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || len(v) != 30 {
			t.Fatalf("Get(%d) after reopen = %v, %v", i, v, err)
		}
	}
	n, err := db2.Len()
	if err != nil || n != 100 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestOpenSSTRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	// A .sst file with a truncated header.
	if err := os.WriteFile(filepath.Join(dir, "000001.sst"), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Error("Open accepted a corrupt SST")
	}
	// A .sst claiming more records than it holds.
	var buf bytes.Buffer
	buf.Write([]byte{200, 0, 0, 0, 0, 0, 0, 0}) // count=200, no records
	if err := os.WriteFile(filepath.Join(dir, "000001.sst"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Error("Open accepted a truncated SST")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db := openTmp(t, Options{MemtableBytes: 2 << 10})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.Put([]byte(fmt.Sprintf("k%04d", i%200)), bytes.Repeat([]byte{byte(i)}, 20), WriteOptions{})
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				db.Get([]byte(fmt.Sprintf("k%04d", i%200)))
			}
		}()
	}
	// Also run an iterator concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			it := db.NewIterator(false)
			for it.Next() {
			}
			if it.Err() != nil {
				t.Errorf("iterator: %v", it.Err())
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-writerDone
}

func TestBatchSyncMode(t *testing.T) {
	db := openTmp(t, Options{SyncEvery: 1 << 30})
	var b Batch
	b.Put([]byte("x"), []byte("1"))
	before := db.Stats().Fdatasyncs
	if err := db.Write(&b, WriteOptions{Sync: true}); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Fdatasyncs != before+1 {
		t.Error("synced batch did not fdatasync")
	}
}
