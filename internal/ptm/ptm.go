// Package ptm defines the persistent-transactional-memory interface shared
// by every engine in this repository: the three Romulus variants, the
// undo-log baseline (PMDK-style) and the redo-log baseline (Mnemosyne-style).
//
// Persistent data lives in a simulated persistent region (internal/pmem) and
// is addressed by Ptr values: byte offsets from the start of the user heap's
// address space (the "main" region in Romulus terms). Ptr 0 is the nil
// pointer. Because Go has no operator overloading, the persist<T>
// interposition of the original C++ implementation becomes explicit: all
// loads and stores of persistent data go through a Tx, which is where each
// engine hooks its logging, flushing, and (for RomulusLR readers and the
// redo-log engine) load redirection.
package ptm

import "errors"

// Ptr is a persistent pointer: a byte offset within the persistent heap
// address space. The zero value is the nil pointer.
type Ptr uint64

// IsNil reports whether p is the nil persistent pointer.
func (p Ptr) IsNil() bool { return p == 0 }

// NumRoots is the size of the root-pointer array (the paper's "objects
// array") through which user code reaches persisted objects after a restart.
const NumRoots = 64

// ErrOutOfMemory is returned by Tx.Alloc when the persistent heap cannot
// satisfy the request.
var ErrOutOfMemory = errors.New("ptm: persistent heap exhausted")

// ErrBadFree is returned by Tx.Free for a pointer that does not address an
// allocated block.
var ErrBadFree = errors.New("ptm: free of invalid pointer")

// ErrCorruptHeader is returned (wrapped) by an engine's Open when the
// persistent header carries a valid magic but fails its checksum — torn or
// corrupted head metadata that must be reported as a typed error rather
// than interpreted as layout. Recovery cannot proceed on such a device.
var ErrCorruptHeader = errors.New("ptm: persistent header failed checksum")

// ErrCorruptLog is returned (wrapped) by an engine's Open when a persistent
// log region is structurally invalid (entries running off the log, counts
// exceeding capacity). Applying such a log would corrupt the heap, so
// recovery refuses instead.
var ErrCorruptLog = errors.New("ptm: persistent log is structurally invalid")

// ErrCorruptPayload is returned (wrapped) by an engine's Open when the data
// payload itself fails validation even though the header and logs parse —
// for the Romulus twin-copy engines, a byte divergence between main and back
// at a quiescent (IDL) open. A crash cannot produce that state (IDL is only
// published after both copies agree durably), so it is the signature of
// at-rest corruption: bit rot, a torn non-atomic medium, or tooling damage.
// Engines refuse to serve rather than guess which copy is right.
var ErrCorruptPayload = errors.New("ptm: persistent payload failed validation")

// HeaderChecksum mixes header words into the checksum engines store in
// their persistent header line and verify at Open, so torn head metadata is
// detected (ErrCorruptHeader) instead of silently trusted. The mixing
// follows splitmix64's finalizer, applied per word over a running state.
func HeaderChecksum(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h ^= h >> 30
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// Tx is a transaction handle. All accesses to persistent data inside a
// transaction must go through it. A Tx is only valid for the duration of the
// function it was passed to and must not be retained or shared.
//
// Read-only transactions must not call the mutating methods; engines are
// free to panic if they do.
type Tx interface {
	// Load8, Load16, Load32 and Load64 read little-endian values at p.
	Load8(p Ptr) byte
	Load16(p Ptr) uint16
	Load32(p Ptr) uint32
	Load64(p Ptr) uint64
	// LoadBytes fills dst from the bytes starting at p.
	LoadBytes(p Ptr, dst []byte)

	// Store8, Store16, Store32 and Store64 write little-endian values at p.
	Store8(p Ptr, v byte)
	Store16(p Ptr, v uint16)
	Store32(p Ptr, v uint32)
	Store64(p Ptr, v uint64)
	// StoreBytes writes src at p.
	StoreBytes(p Ptr, src []byte)

	// Alloc allocates n bytes of zeroed persistent memory. The allocation is
	// part of the transaction: if the transaction does not commit, neither
	// does the allocation (no leaks, no metadata corruption; §4.4).
	Alloc(n int) (Ptr, error)
	// Free releases an allocation made by Alloc, also transactionally.
	Free(p Ptr) error

	// Root returns root pointer i (0 <= i < NumRoots).
	Root(i int) Ptr
	// SetRoot durably publishes a root pointer. Mutating; update-only.
	SetRoot(i int, p Ptr)
}

// TxStats counts transactions executed by an engine.
type TxStats struct {
	UpdateTxs uint64 // committed update transactions
	ReadTxs   uint64 // completed read-only transactions
	Aborts    uint64 // internal aborts/retries (only the redo-log STM aborts)
	Rollbacks uint64 // user-requested rollbacks (fn returned an error)
	Combined  uint64 // update operations executed by a flat-combining pass on behalf of another thread

	// Batch counters (flat-combined engines only; zero elsewhere). A batch
	// is one committed durability round: one log replay / main→back sync and
	// one set of commit fences shared by every operation it carries, so
	// BatchOps/Batches is the fence-amortization factor.
	Batches   uint64 // committed durability rounds
	BatchOps  uint64 // update operations retired across those rounds
	CombineNs uint64 // total wall-clock ns spent in combining passes

	// Replication counters (twin-copy engines only; zero elsewhere).
	// ReplicatedBytes counts bytes copied between the twin copies when
	// bringing the stale copy up to date at commit — and, symmetrically,
	// when restoring main at rollback; ReplicateExtents counts the
	// contiguous ranges those copies were issued as. Together they measure
	// replication write amplification: with dirty-range tracking
	// ReplicatedBytes/UpdateTxs is O(bytes stored), where a full-prefix
	// replicator pays O(heap watermark) per round.
	ReplicatedBytes  uint64
	ReplicateExtents uint64
}

// PTM is a persistent transactional memory engine.
//
// Update runs fn in a durably-linearizable update transaction. If fn returns
// nil, all its persistent effects are atomically durable when Update
// returns. If fn returns an error (or panics), the engine rolls every
// persistent effect back — Romulus engines do this with the twin copy, the
// baselines with their logs — and Update returns the error (or re-panics).
//
// Read runs fn in a read-only transaction. Read transactions never abort;
// under RomulusLR they are wait-free.
//
// Engines that keep per-thread state (flat-combining slots, read-indicator
// slots) resolve it internally; Update and Read are safe for concurrent use
// from any goroutine.
type PTM interface {
	// Name identifies the engine in benchmark output ("rom", "romlog",
	// "romlr", "mne", "pmdk").
	Name() string
	Update(fn func(Tx) error) error
	Read(fn func(Tx) error) error
	// Stats returns transaction counters since engine creation.
	Stats() TxStats
	// Close releases engine resources. The persistent image remains valid.
	Close() error
}

// Auditor observes an engine's durability protocol from the outside. The
// engine calls TxBegin/TxEnd around each update-side protocol section (an
// update transaction, a format, a recovery) so stores can be attributed to a
// writer, and DurablePoint at every point where its protocol claims all
// prior effects are persistent — in Romulus terms, immediately after the
// psync that advances the commit marker (§4.1). EngineClose marks the final
// durability claim when the engine shuts down.
//
// Implementations live outside the engines (internal/audit); engines only
// hold the interface so auditing adds no dependency and, when nil, no cost
// beyond a branch.
type Auditor interface {
	TxBegin(engine, kind string)
	TxEnd()
	DurablePoint(point string)
	EngineClose(engine string)
}

// BatchAuditor is optionally implemented by an Auditor that wants batch
// attribution: engines whose durable points cover flat-combined batches call
// BatchCommitted(ops) immediately after the DurablePoint of a round that
// retired ops announced operations in one crash-atomic transaction.
type BatchAuditor interface {
	BatchCommitted(ops int)
}

// Handle is a per-goroutine transaction context. Engines keep per-thread
// announcement and read-indicator slots; acquiring a Handle pins one slot,
// avoiding per-transaction registry traffic on hot paths. A Handle must be
// used by one goroutine at a time and Released when done.
type Handle interface {
	Update(fn func(Tx) error) error
	Read(fn func(Tx) error) error
	Release()
}

// HandlePTM is implemented by engines that expose per-thread handles (all
// engines in this repository do).
type HandlePTM interface {
	PTM
	NewHandle() (Handle, error)
}

// Align rounds n up to the next multiple of a (a power of two).
func Align(n, a int) int { return (n + a - 1) &^ (a - 1) }
