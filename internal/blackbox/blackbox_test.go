package blackbox

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/pmem"
)

const ringBase = 128 // line-aligned scratch offset inside the test device

func testRing(t *testing.T, size int) (*pmem.Device, *Recorder) {
	t.Helper()
	dev := pmem.New(ringBase+size, pmem.ModelCLWB)
	rec, rep, err := Open(dev, ringBase, size)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() || rep.Reformatted {
		t.Fatalf("fresh ring replayed %+v", rep)
	}
	return dev, rec
}

// TestAppendSurvivesCrashImage pins the durability contract: every record
// appended before a crash point is replayable from the crash image, because
// Append fences each record.
func TestAppendSurvivesCrashImage(t *testing.T) {
	dev, rec := testRing(t, DefaultSize)
	rec.BatchStart(7, 42, 3, 2)
	rec.BatchCommit(7, 3)
	rec.BatchStart(8, 99, 1, 1)

	img := dev.CrashImage(pmem.CrashPolicy{})
	rep := Inspect(pmem.FromImage(img, pmem.ModelCLWB), ringBase, DefaultSize)
	if len(rep.Records) != 3 {
		t.Fatalf("replayed %d records, want 3: %+v", len(rep.Records), rep.Records)
	}
	if rep.MaxBatchStarted != 8 || rep.MaxBatchCommitted != 7 {
		t.Fatalf("summary started=%d committed=%d, want 8/7", rep.MaxBatchStarted, rep.MaxBatchCommitted)
	}
	if len(rep.InFlight) != 1 || rep.InFlight[0] != 8 {
		t.Fatalf("in-flight = %v, want [8]", rep.InFlight)
	}
	if rep.Records[2].Req != 99 {
		t.Fatalf("span checkpoint req = %d, want 99", rep.Records[2].Req)
	}
}

// TestReopenContinuesSeq pins that Open resumes the seq counter after the
// newest surviving record, so replay ordering stays total across reopens.
func TestReopenContinuesSeq(t *testing.T) {
	dev, rec := testRing(t, MinSize)
	rec.BatchStart(1, 0, 1, 1)
	rec.BatchCommit(1, 1)

	rec2, rep, err := Open(dev, ringBase, MinSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 || rep.Records[1].Seq != 2 {
		t.Fatalf("replay = %+v", rep.Records)
	}
	rec2.Recovery()
	_, rep2, err := Open(dev, ringBase, MinSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep2.Records[len(rep2.Records)-1]; got.Seq != 3 || got.Kind != KindRecovery {
		t.Fatalf("newest record = %+v, want seq 3 recovery", got)
	}
	if rep2.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", rep2.Recoveries)
	}
}

// TestRingWrapKeepsNewest pins the wrap semantics: a ring of N slots
// retains exactly the newest N records, oldest evicted first.
func TestRingWrapKeepsNewest(t *testing.T) {
	dev, rec := testRing(t, MinSize) // 4 slots
	if rec.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", rec.Capacity())
	}
	for b := uint64(1); b <= 10; b++ {
		rec.BatchStart(b, 0, 1, 1)
	}
	_, rep, err := Open(dev, ringBase, MinSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 4 {
		t.Fatalf("retained %d records, want 4", len(rep.Records))
	}
	for i, r := range rep.Records {
		if want := uint64(7 + i); r.Seq != want {
			t.Fatalf("record %d seq = %d, want %d", i, r.Seq, want)
		}
	}
	if rep.MaxBatchStarted != 10 {
		t.Fatalf("max started = %d, want 10", rep.MaxBatchStarted)
	}
}

// TestTornRecordDropped pins that a corrupted slot fails its checksum and
// replays as absent — never as garbage.
func TestTornRecordDropped(t *testing.T) {
	dev, rec := testRing(t, DefaultSize)
	rec.BatchStart(1, 0, 1, 1)
	rec.BatchCommit(1, 1)
	// Flip a byte inside the newest record's slot (slot 1).
	off := ringBase + headerSize + RecordSize + 5
	dev.Store8(off, dev.Load8(off)^0xff)
	rep := Inspect(dev, ringBase, DefaultSize)
	if len(rep.Records) != 1 || rep.Records[0].Kind != KindBatchStart {
		t.Fatalf("replay after torn slot = %+v, want just the start record", rep.Records)
	}
	// The start now has no surviving commit: it reads as in-flight.
	if len(rep.InFlight) != 1 || rep.InFlight[0] != 1 {
		t.Fatalf("in-flight = %v, want [1]", rep.InFlight)
	}
}

// TestCorruptHeaderReformats pins that a damaged ring header reformats
// (flight data is diagnostic, recovery must not block on it) and says so.
func TestCorruptHeaderReformats(t *testing.T) {
	dev, rec := testRing(t, DefaultSize)
	rec.BatchStart(1, 0, 1, 1)
	dev.Store64(ringBase, 0xdeadbeef)
	rec2, rep, err := Open(dev, ringBase, DefaultSize)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reformatted || !rep.Empty() {
		t.Fatalf("corrupt header replayed %+v, want empty reformatted report", rep)
	}
	rec2.BatchStart(5, 0, 1, 1)
	if rep2 := Inspect(dev, ringBase, DefaultSize); len(rep2.Records) != 1 || rep2.Records[0].Seq != 1 {
		t.Fatalf("post-reformat replay = %+v", rep2.Records)
	}
}

// TestTooSmall pins the reservation guard.
func TestTooSmall(t *testing.T) {
	dev := pmem.New(ringBase+MinSize, pmem.ModelCLWB)
	if _, _, err := Open(dev, ringBase, MinSize-1); err == nil {
		t.Fatal("Open accepted a sub-minimum ring")
	}
	if _, _, err := Open(dev, ringBase+1, MinSize); err == nil {
		t.Fatal("Open accepted an unaligned base")
	}
}

// TestReportRendering smoke-tests both output forms.
func TestReportRendering(t *testing.T) {
	dev, rec := testRing(t, DefaultSize)
	rec.now = func() time.Time { return time.Unix(1, 0) }
	rec.BatchStart(3, 11, 2, 2)
	rep := Inspect(dev, ringBase, DefaultSize)
	rep.Shard = 1

	var txt, js bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shard 1", "batch_start", "batch=3", "req=11", "1970-01-01T00:00:01Z"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"batch_start"`, `"max_batch_started":3`, `"in_flight":[3]`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("json report missing %q:\n%s", want, js.String())
		}
	}
}
