// Package blackbox is a crash-surviving flight recorder: a small ring of
// fixed-size records living in the reserved tail of a shard's persistent
// device (core.Config.ReserveTail), written with the same pwb/fence
// primitives as the data it describes. The group committer records each
// batch's start (before its transaction begins) and its durable point
// (after its psync); recovery replays the ring into a typed Report, so
// "what was mid-flight at the crash" is read off the media instead of
// guessed from logs.
//
// Durability contract: Append stores one 64-byte (one cache line) record,
// write-backs the line and fences. A completed fence deterministically
// persists the line, so every record appended before a crash point is in
// the crash image except, at worst, the one being appended — and a torn
// newest slot fails its checksum and is simply dropped at replay. The
// recorder is diagnostic: nothing on the data path ever waits on it except
// the one fence per record, and a corrupt ring header reformats instead of
// failing recovery.
//
// Concurrency: a Recorder has a single writer at a time. The shard layer
// serializes appends with the per-shard raw-device writers' mutex
// (shard.Store.RecordFlight) because pmem.Device's mutation path is
// unsynchronized by design.
package blackbox

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/pmem"
)

// Kind classifies a flight-recorder record.
type Kind uint8

const (
	// KindBatchStart marks a group-commit batch about to begin its shard
	// transaction. It is fenced before the transaction's first store, so a
	// crash inside the batch always leaves its start on the media.
	KindBatchStart Kind = 1
	// KindBatchCommit marks a batch's durable point: its psync completed.
	// Data durability is implied — the psync happened before this record's
	// fence — so a commit record in a crash image certifies the batch.
	KindBatchCommit Kind = 2
	// KindRecovery marks a successful engine recovery on this device.
	KindRecovery Kind = 3
	// KindCheckpoint is a free-form durable checkpoint (Req carries the
	// caller's correlation id, e.g. a request span's ReqID).
	KindCheckpoint Kind = 4
)

// String returns the report-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBatchStart:
		return "batch_start"
	case KindBatchCommit:
		return "batch_commit"
	case KindRecovery:
		return "recovery"
	case KindCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Record is one 64-byte flight-recorder entry. Seq is assigned by Append
// (monotonic per ring, 1-based); callers fill the rest.
type Record struct {
	Seq      uint64 `json:"seq"`
	Kind     Kind   `json:"kind"`
	BatchSeq uint64 `json:"batch_seq,omitempty"`
	// Req is the span checkpoint: the ReqID of the first request in the
	// batch (zero when the caller has no request spans).
	Req   uint64 `json:"req,omitempty"`
	Ops   uint32 `json:"ops,omitempty"`
	Conns uint32 `json:"conns,omitempty"`
	TsNs  int64  `json:"ts_ns"`
}

// On-media layout: one header line, then capacity record lines.
//
//	header:  magic(8) version(8) capacity(8) checksum(8) — checksum over the
//	         first three words
//	record:  seq(8) batchSeq(8) req(8) tsNs(8) ops(4) conns(4) kind(1)
//	         pad(15) checksum(8) — checksum over the first 56 bytes
//
// A record's slot is (seq-1) % capacity, so replay recovers ordering from
// the stored seqs alone and a wrapped ring keeps exactly the newest
// capacity records.
const (
	// RecordSize is one record: exactly one cache line, so a record is one
	// pwb and torn records can only be whole-line absent or checksum-dead.
	RecordSize = 64
	headerSize = 64
	// MinSize is the smallest usable ring: header plus four records.
	MinSize = headerSize + 4*RecordSize
	// DefaultSize is the tail reservation the shard layer makes: 63 records
	// — enough to hold the recent-batch window of any realistic in-flight
	// set while costing one page of the device.
	DefaultSize = 4096

	magicWord = 0x31584f42424d4f52 // "ROMBBOX1", little-endian
	version   = 1
)

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Recorder appends records to a formatted ring. Single writer; see the
// package comment.
type Recorder struct {
	dev  *pmem.Device
	base int
	cap  uint64
	// last is the seq of the newest appended record (0 on a fresh ring);
	// atomic only so metrics collectors can read it while the single writer
	// appends.
	last atomic.Uint64
	now  func() time.Time
}

// Open attaches to the ring in dev[base:base+size), replaying whatever
// records survive in it into a Report, and returns a Recorder positioned
// after the newest surviving record. A blank or corrupt ring header is
// (re)formatted — the flight recorder must never block recovery — with
// Report.Reformatted noting a non-blank one was discarded. size below
// MinSize is an error: the caller reserved too little tail.
func Open(dev *pmem.Device, base, size int) (*Recorder, *Report, error) {
	if size < MinSize {
		return nil, nil, fmt.Errorf("blackbox: %d bytes at offset %d below minimum %d", size, base, MinSize)
	}
	if base%pmem.LineSize != 0 {
		return nil, nil, fmt.Errorf("blackbox: base offset %d not line-aligned", base)
	}
	capacity := uint64((size - headerSize) / RecordSize)
	r := &Recorder{dev: dev, base: base, cap: capacity, now: time.Now}
	rep := &Report{}
	if ok, blank := r.headerValid(); !ok {
		rep.Reformatted = !blank
		r.format()
		return r, rep, nil
	}
	recs := r.scan()
	rep.Records = recs
	rep.summarize()
	if n := len(recs); n > 0 {
		r.last.Store(recs[n-1].Seq)
	}
	return r, rep, nil
}

// Inspect replays the ring read-only — no format, no writes — for forensic
// dumps over crash images (romulus-recover -flight). A blank or corrupt
// header answers an empty report, never an error.
func Inspect(dev *pmem.Device, base, size int) *Report {
	if size < MinSize || base%pmem.LineSize != 0 {
		return &Report{}
	}
	r := &Recorder{dev: dev, base: base, cap: uint64((size - headerSize) / RecordSize)}
	rep := &Report{}
	if ok, _ := r.headerValid(); !ok {
		return rep
	}
	rep.Records = r.scan()
	rep.summarize()
	return rep
}

// headerValid checks the ring header; blank reports an all-zero magic word
// (a never-formatted tail) as opposed to a corrupt one.
func (r *Recorder) headerValid() (ok, blank bool) {
	d := r.dev
	magic := d.Load64(r.base)
	if magic != magicWord {
		return false, magic == 0 && d.Load64(r.base+24) == 0
	}
	ver, capw := d.Load64(r.base+8), d.Load64(r.base+16)
	if d.Load64(r.base+24) != checksum(headerWords(magic, ver, capw)) {
		return false, false
	}
	// A capacity disagreeing with the reserved size means the tail was
	// resized; the old records' slots no longer map. Reformat.
	return ver == version && capw == r.cap, false
}

func headerWords(magic, ver, capw uint64) []byte {
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], magic)
	binary.LittleEndian.PutUint64(b[8:], ver)
	binary.LittleEndian.PutUint64(b[16:], capw)
	return b[:]
}

// format writes a fresh header and zeroes the record slots, durably.
func (r *Recorder) format() {
	d := r.dev
	d.Memset(r.base, 0, headerSize+int(r.cap)*RecordSize)
	var h [32]byte
	binary.LittleEndian.PutUint64(h[0:], magicWord)
	binary.LittleEndian.PutUint64(h[8:], version)
	binary.LittleEndian.PutUint64(h[16:], r.cap)
	binary.LittleEndian.PutUint64(h[24:], checksum(h[:24]))
	d.StoreBytes(r.base, h[:])
	d.PwbRange(r.base, headerSize+int(r.cap)*RecordSize)
	d.Pfence()
	r.last.Store(0)
}

// scan reads every slot, keeps checksum-valid records, and returns them
// sorted by seq — the newest min(cap, appended) records of the ring.
func (r *Recorder) scan() []Record {
	var recs []Record
	var raw [RecordSize]byte
	for slot := uint64(0); slot < r.cap; slot++ {
		off := r.base + headerSize + int(slot)*RecordSize
		r.dev.LoadBytes(off, raw[:])
		if rec, ok := decode(raw[:], slot, r.cap); ok {
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs
}

func decode(raw []byte, slot, capacity uint64) (Record, bool) {
	if binary.LittleEndian.Uint64(raw[56:]) != checksum(raw[:56]) {
		return Record{}, false
	}
	rec := Record{
		Seq:      binary.LittleEndian.Uint64(raw[0:]),
		BatchSeq: binary.LittleEndian.Uint64(raw[8:]),
		Req:      binary.LittleEndian.Uint64(raw[16:]),
		TsNs:     int64(binary.LittleEndian.Uint64(raw[24:])),
		Ops:      binary.LittleEndian.Uint32(raw[32:]),
		Conns:    binary.LittleEndian.Uint32(raw[36:]),
		Kind:     Kind(raw[40]),
	}
	// A zero seq is an empty slot (checksum of zeroes never validates, but
	// be explicit); a seq that does not map to this slot is stale garbage.
	if rec.Seq == 0 || (rec.Seq-1)%capacity != slot || rec.Kind == 0 {
		return Record{}, false
	}
	return rec, true
}

// Append durably writes one record: store, write-back, fence. Seq and TsNs
// are assigned here. The caller must serialize Append with every other
// mutator of the same device (see the package comment).
func (r *Recorder) Append(rec Record) {
	rec.Seq = r.last.Add(1)
	rec.TsNs = r.now().UnixNano()
	var raw [RecordSize]byte
	binary.LittleEndian.PutUint64(raw[0:], rec.Seq)
	binary.LittleEndian.PutUint64(raw[8:], rec.BatchSeq)
	binary.LittleEndian.PutUint64(raw[16:], rec.Req)
	binary.LittleEndian.PutUint64(raw[24:], uint64(rec.TsNs))
	binary.LittleEndian.PutUint32(raw[32:], rec.Ops)
	binary.LittleEndian.PutUint32(raw[36:], rec.Conns)
	raw[40] = byte(rec.Kind)
	binary.LittleEndian.PutUint64(raw[56:], checksum(raw[:56]))
	off := r.base + headerSize + int((rec.Seq-1)%r.cap)*RecordSize
	r.dev.StoreBytes(off, raw[:])
	r.dev.Pwb(off)
	r.dev.Pfence()
}

// BatchStart records a batch about to begin its transaction.
func (r *Recorder) BatchStart(batchSeq, firstReq uint64, ops, conns int) {
	r.Append(Record{Kind: KindBatchStart, BatchSeq: batchSeq, Req: firstReq, Ops: uint32(ops), Conns: uint32(conns)})
}

// BatchCommit records a batch's durable point.
func (r *Recorder) BatchCommit(batchSeq uint64, ops int) {
	r.Append(Record{Kind: KindBatchCommit, BatchSeq: batchSeq, Ops: uint32(ops)})
}

// Recovery records a successful engine recovery.
func (r *Recorder) Recovery() { r.Append(Record{Kind: KindRecovery}) }

// Capacity returns the number of record slots in the ring.
func (r *Recorder) Capacity() int { return int(r.cap) }

// Appended returns the seq of the newest record — the ring's lifetime
// append count, resumed across reopens. Safe to call concurrently with
// Append (metrics collectors read it while the committer records).
func (r *Recorder) Appended() uint64 { return r.last.Load() }

// Report is the replayed state of a ring: the surviving records plus the
// derived forensic summary.
type Report struct {
	// Shard is filled by the shard layer (the ring itself is shard-blind).
	Shard int `json:"shard"`
	// Reformatted notes that Open found a non-blank but corrupt header and
	// discarded the ring.
	Reformatted bool `json:"reformatted,omitempty"`
	// Records are the surviving records, oldest first — at most the ring's
	// capacity, so only the newest window of a long run is retained.
	Records []Record `json:"records"`
	// MaxBatchStarted and MaxBatchCommitted are the highest batch seqs with
	// a surviving start / commit record (zero when none survive).
	MaxBatchStarted   uint64 `json:"max_batch_started"`
	MaxBatchCommitted uint64 `json:"max_batch_committed"`
	// InFlight lists batch seqs whose start survived but whose commit record
	// did not: the batch was mid-flight at the crash — or its data psync
	// completed and the crash landed before the commit record's fence, so
	// "in flight" means "commit unconfirmed; the recovered data decides".
	InFlight []uint64 `json:"in_flight,omitempty"`
	// Recoveries counts surviving recovery records (prior crash chain depth
	// within the retained window).
	Recoveries int `json:"recoveries"`
}

// summarize derives the forensic fields from Records.
func (r *Report) summarize() {
	committed := map[uint64]bool{}
	for _, rec := range r.Records {
		if rec.Kind == KindBatchCommit {
			committed[rec.BatchSeq] = true
			if rec.BatchSeq > r.MaxBatchCommitted {
				r.MaxBatchCommitted = rec.BatchSeq
			}
		}
	}
	for _, rec := range r.Records {
		switch rec.Kind {
		case KindBatchStart:
			if rec.BatchSeq > r.MaxBatchStarted {
				r.MaxBatchStarted = rec.BatchSeq
			}
			if !committed[rec.BatchSeq] {
				r.InFlight = append(r.InFlight, rec.BatchSeq)
			}
		case KindRecovery:
			r.Recoveries++
		}
	}
}

// Empty reports a ring with no surviving records.
func (r *Report) Empty() bool { return r == nil || len(r.Records) == 0 }

// String is the one-line summary binaries log at startup.
func (r *Report) String() string {
	if r.Empty() {
		return "flight recorder: empty"
	}
	return fmt.Sprintf("flight recorder: %d records, max batch started %d, committed %d, %d in flight, %d recoveries",
		len(r.Records), r.MaxBatchStarted, r.MaxBatchCommitted, len(r.InFlight), r.Recoveries)
}

// WriteJSON writes the report as one JSON object.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r)
}

// WriteText renders the record timeline human-readably, oldest first.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "shard %d %s\n", r.Shard, r.String()); err != nil {
		return err
	}
	for _, rec := range r.Records {
		line := fmt.Sprintf("  #%d %s", rec.Seq, rec.Kind)
		if rec.BatchSeq != 0 {
			line += fmt.Sprintf(" batch=%d", rec.BatchSeq)
		}
		if rec.Req != 0 {
			line += fmt.Sprintf(" req=%d", rec.Req)
		}
		if rec.Ops != 0 {
			line += fmt.Sprintf(" ops=%d", rec.Ops)
		}
		if rec.Conns != 0 {
			line += fmt.Sprintf(" conns=%d", rec.Conns)
		}
		line += fmt.Sprintf(" ts=%s", time.Unix(0, rec.TsNs).UTC().Format(time.RFC3339Nano))
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
