package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/pstruct"
)

// reopenFromImage rebuilds a DB over a crash image.
func reopenFromImage(t *testing.T, img []byte) *DB {
	t.Helper()
	eng, err := core.Open(pmem.FromImage(img, pmem.ModelDRAM), core.Config{Variant: core.RomLog})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	return &DB{eng: eng, m: pstruct.AttachByteMap(rootIdx)}
}

// TestDBCrashAtomicityEveryPersistencePoint crashes a batched write at
// every store, write-back and fence under three adversary policies and
// verifies the database recovers to exactly the before- or after-batch
// state — the end-to-end version of the engine-level conformance test.
func TestDBCrashAtomicityEveryPersistencePoint(t *testing.T) {
	db, err := Open(Options{RegionSize: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	dev := db.Engine().Device()
	policies := []pmem.CrashPolicy{
		pmem.DropAll,
		pmem.KeepQueued,
		{QueuedPersistProb: 0.5, EvictDirtyProb: 0.3, TearWords: true,
			Rand: rand.New(rand.NewSource(4))},
	}
	var images [][]byte
	capture := func() {
		for _, pol := range policies {
			images = append(images, dev.CrashImage(pol))
		}
	}
	dev.SetHooks(&pmem.Hooks{
		Store: func(uint64) { capture() },
		Pwb:   func(uint64) { capture() },
		Fence: capture,
	})
	var b Batch
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("k%d", i)), []byte("new"))
	}
	b.Put([]byte("extra"), []byte("1"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	dev.SetHooks(nil)

	if len(images) < 50 {
		t.Fatalf("only %d crash images", len(images))
	}
	for n, img := range images {
		re := reopenFromImage(t, img)
		v0, err := re.Get([]byte("k0"))
		if err != nil {
			t.Fatalf("image %d: k0 missing: %v", n, err)
		}
		want := string(v0) // "old" or "new"; all keys must agree
		if want != "old" && want != "new" {
			t.Fatalf("image %d: impossible value %q", n, v0)
		}
		for i := 1; i < 10; i++ {
			v, err := re.Get([]byte(fmt.Sprintf("k%d", i)))
			if err != nil || string(v) != want {
				t.Fatalf("image %d: torn batch: k%d = %q/%v, k0 = %q", n, i, v, err, want)
			}
		}
		_, extraErr := re.Get([]byte("extra"))
		if want == "old" && extraErr == nil {
			t.Fatalf("image %d: extra key exists in pre-batch state", n)
		}
		if want == "new" && extraErr != nil {
			t.Fatalf("image %d: extra key missing in post-batch state", n)
		}
		if err := re.Engine().CheckHeap(); err != nil {
			t.Fatalf("image %d: heap corrupt: %v", n, err)
		}
	}
	t.Logf("%d crash images verified", len(images))
}

// Values much larger than a cache line must also recover untorn.
func TestDBCrashWithLargeValues(t *testing.T) {
	db, err := Open(Options{RegionSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	oldVal := bytes.Repeat([]byte{0xAA}, 10<<10)
	newVal := bytes.Repeat([]byte{0xBB}, 10<<10)
	if err := db.Put([]byte("blob"), oldVal); err != nil {
		t.Fatal(err)
	}
	dev := db.Engine().Device()
	var images [][]byte
	n := 0
	dev.SetHooks(&pmem.Hooks{Pwb: func(uint64) {
		n++
		if n%20 == 0 { // sample: full capture would copy 16 MiB hundreds of times
			images = append(images, dev.CrashImage(pmem.KeepQueued))
		}
	}})
	if err := db.Put([]byte("blob"), newVal); err != nil {
		t.Fatal(err)
	}
	dev.SetHooks(nil)
	if len(images) == 0 {
		t.Fatal("no images")
	}
	for i, img := range images {
		re := reopenFromImage(t, img)
		v, err := re.Get([]byte("blob"))
		if err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
		if !bytes.Equal(v, oldVal) && !bytes.Equal(v, newVal) {
			t.Fatalf("image %d: torn 10KiB value", i)
		}
	}
}
