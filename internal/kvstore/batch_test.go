package kvstore

import (
	"bytes"
	"testing"
)

// TestBatchLastOpWins pins the documented batch guarantee: operations apply
// in queue order, so when one batch both Puts and Deletes a key, the last
// queued operation decides the outcome. Cross-shard batches (internal/shard)
// inherit this per key, so the pin here protects both layers.
func TestBatchLastOpWins(t *testing.T) {
	db, err := Open(Options{RegionSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("pre"), []byte("old")); err != nil {
		t.Fatal(err)
	}

	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Delete([]byte("a")) // Put then Delete: delete wins
	b.Delete([]byte("b"))
	b.Put([]byte("b"), []byte("2")) // Delete then Put: put wins
	b.Put([]byte("c"), []byte("x"))
	b.Put([]byte("c"), []byte("3")) // Put then Put: last value wins
	b.Put([]byte("pre"), []byte("mid"))
	b.Delete([]byte("pre"))
	b.Put([]byte("pre"), []byte("new")) // pre-existing key: final Put wins
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}

	if _, err := db.Get([]byte("a")); err != ErrNotFound {
		t.Fatalf("key a: want ErrNotFound after Put+Delete, got err=%v", err)
	}
	for _, want := range []struct{ k, v string }{
		{"b", "2"}, {"c", "3"}, {"pre", "new"},
	} {
		got, err := db.Get([]byte(want.k))
		if err != nil {
			t.Fatalf("key %s: %v", want.k, err)
		}
		if !bytes.Equal(got, []byte(want.v)) {
			t.Fatalf("key %s = %q, want %q", want.k, got, want.v)
		}
	}
	if n := db.Len(); n != 3 {
		t.Fatalf("Len = %d, want 3", n)
	}
}

// TestBatchEachOrder pins that Each iterates in queue order — the order
// Apply uses — so routing layers that split a batch see the same sequence
// the single-store path applies.
func TestBatchEachOrder(t *testing.T) {
	var b Batch
	b.Put([]byte("k"), []byte("1"))
	b.Delete([]byte("k"))
	b.Put([]byte("k"), []byte("2"))

	var seq []string
	b.Each(func(del bool, key, val []byte) {
		if del {
			seq = append(seq, "del:"+string(key))
		} else {
			seq = append(seq, "put:"+string(key)+"="+string(val))
		}
	})
	want := []string{"put:k=1", "del:k", "put:k=2"}
	if len(seq) != len(want) {
		t.Fatalf("Each visited %d ops, want %d", len(seq), len(want))
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("Each op %d = %q, want %q", i, seq[i], want[i])
		}
	}
}
