// Package kvstore implements RomulusDB (§6.4 of the paper): a persistent
// key-value store exposing a LevelDB-style interface — Put, Get, Delete,
// atomic write batches, and full iteration — built by wrapping a persistent
// hash map (pstruct.ByteMap) in a RomulusLog PTM.
//
// Unlike LevelDB, every update is a real durable transaction: when Put
// returns, the pair is persistent, with no WriteOptions.sync flag needed
// and no buffered-durability window in which completed operations can be
// lost. Batches are durable and atomic as a unit. Read operations run as
// Romulus read-only transactions and therefore scale with reader threads.
//
// # Batch semantics
//
// A Batch applies its operations in queue order within one transaction, so
// when the same key is both Put and Deleted in a single batch the LAST
// queued operation wins: Put(k,v) then Delete(k) leaves k absent, Delete(k)
// then Put(k,v) leaves k=v, and repeated Puts leave the final value. This
// guarantee is load-bearing above the single store: cross-shard batches
// (internal/shard) split a batch by key routing and apply each shard's
// slice in the original queue order, so they inherit last-op-wins per key —
// a key always routes to one shard, keeping its operations totally ordered.
package kvstore

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("kvstore: key not found")

// rootIdx is the root-pointer slot holding the map object.
const rootIdx = 0

// Options configure Open.
type Options struct {
	// RegionSize is the persistent heap size per twin copy (default 64 MiB).
	RegionSize int
	// Variant selects the Romulus engine (default RomLog, as in the paper;
	// RomLR gives wait-free readers).
	Variant core.Variant
	// Model is the persistence model (default DRAM-like NVDIMM).
	Model pmem.Model
	// Path, when non-empty, backs the store with an image file: Open loads
	// it if present, and Close writes it back. An empty path keeps the
	// store in memory only (still crash-consistent within the process).
	Path string
	// InitialBuckets presizes the hash map (0 = default).
	InitialBuckets int
	// Metrics, when non-nil, attaches the store to an observability
	// registry: the device's pmem_* and the engine's ptm_* counters are
	// published on every snapshot, and kv_get_ns / kv_put_ns /
	// kv_delete_ns / kv_batch_ns histograms record per-operation wall time
	// in nanoseconds (see docs/OBSERVABILITY.md).
	Metrics *obs.Registry
	// Trace, when non-nil, receives one obs.TxEvent per transaction,
	// starting after the store's own initialization transaction.
	Trace obs.Sink
	// Audit, when non-nil, receives the engine's durability-protocol
	// markers (ptm.Auditor), including format/recovery at Open.
	Audit ptm.Auditor
}

const defaultRegionSize = 64 << 20

// DB is a RomulusDB instance.
type DB struct {
	eng  *core.Engine
	m    *pstruct.ByteMap
	path string

	// Operation-latency histograms; all nil unless Options.Metrics was set.
	getNs, putNs, delNs, batchNs *obs.Histogram
}

// Open creates or reopens a store.
func Open(opts Options) (*DB, error) {
	if opts.RegionSize == 0 {
		opts.RegionSize = defaultRegionSize
	}
	cfg := core.Config{Variant: opts.Variant, Model: opts.Model, Audit: opts.Audit} // zero Variant = RomLog
	var eng *core.Engine
	var err error
	if opts.Path != "" {
		if _, statErr := os.Stat(opts.Path); statErr == nil {
			dev, loadErr := pmem.LoadFile(opts.Path, opts.Model)
			if loadErr != nil {
				return nil, fmt.Errorf("kvstore: %w", loadErr)
			}
			eng, err = core.Open(dev, cfg)
		} else {
			eng, err = core.New(opts.RegionSize, cfg)
		}
	} else {
		eng, err = core.New(opts.RegionSize, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	db := &DB{eng: eng, path: opts.Path}
	err = db.eng.Update(func(tx ptm.Tx) error {
		m, err := pstruct.NewByteMap(tx, rootIdx, opts.InitialBuckets)
		if err != nil {
			return err
		}
		db.m = m
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kvstore: initializing map: %w", err)
	}
	if opts.Metrics != nil {
		obs.Instrument(eng.Device(), opts.Metrics)
		obs.InstrumentPTM(eng, opts.Metrics)
		db.getNs = opts.Metrics.Histogram("kv_get_ns")
		db.putNs = opts.Metrics.Histogram("kv_put_ns")
		db.delNs = opts.Metrics.Histogram("kv_delete_ns")
		db.batchNs = opts.Metrics.Histogram("kv_batch_ns")
	}
	if opts.Trace != nil {
		eng.SetTrace(opts.Trace)
	}
	return db, nil
}

// opStart returns a start timestamp when h records latencies, else the zero
// time — so untimed operations never call time.Now.
func opStart(h *obs.Histogram) time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// opDone records the elapsed time since start into h when recording.
func opDone(h *obs.Histogram, start time.Time) {
	if h != nil {
		h.Observe(uint64(time.Since(start)))
	}
}

// SetTrace installs (or, with nil, removes) the per-transaction trace sink
// on the underlying engine. Call at a quiescent point.
func (db *DB) SetTrace(s obs.Sink) { db.eng.SetTrace(s) }

// SetAuditor installs (or, with nil, removes) the durability auditor on the
// underlying engine. Call at a quiescent point.
func (db *DB) SetAuditor(a ptm.Auditor) { db.eng.SetAuditor(a) }

// Attach wraps an already-opened engine whose root slot holds a map from a
// previous run, without starting any transaction. Crash-recovery harnesses
// use it so reopening a crash image costs exactly the engine's own recovery
// work; general callers should use Open, which also formats fresh stores.
func Attach(eng *core.Engine) *DB {
	return &DB{eng: eng, m: pstruct.AttachByteMap(rootIdx)}
}

// Engine exposes the underlying PTM engine (statistics, crash testing).
func (db *DB) Engine() *core.Engine { return db.eng }

// Put durably stores the key/value pair.
func (db *DB) Put(key, val []byte) error {
	start := opStart(db.putNs)
	err := db.eng.Update(func(tx ptm.Tx) error {
		_, err := db.m.Put(tx, key, val)
		return err
	})
	opDone(db.putNs, start)
	return err
}

// Get returns the value for key, or ErrNotFound. Media-level failures are
// never folded into ErrNotFound: a read that tripped a device fault returns
// an error wrapping pmem.ErrMediaFault so callers can distinguish "absent"
// from "unreadable".
func (db *DB) Get(key []byte) ([]byte, error) {
	start := opStart(db.getNs)
	var out []byte
	err := db.eng.Read(func(tx ptm.Tx) error {
		v, err := db.m.Get(tx, key, nil)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	opDone(db.getNs, start)
	if errors.Is(err, pstruct.ErrNotFound) {
		return nil, ErrNotFound
	}
	return out, err
}

// Delete durably removes key (a no-op if absent).
func (db *DB) Delete(key []byte) error {
	start := opStart(db.delNs)
	err := db.eng.Update(func(tx ptm.Tx) error {
		_, err := db.m.Delete(tx, key)
		return err
	})
	opDone(db.delNs, start)
	return err
}

// Len returns the number of live pairs.
func (db *DB) Len() int {
	var n int
	db.eng.Read(func(tx ptm.Tx) error {
		n = db.m.Len(tx)
		return nil
	})
	return n
}

// Range iterates all pairs within a single read-only transaction (a
// consistent snapshot), forward or reverse, until fn returns false. This
// is what the readseq/readreverse benchmarks use.
func (db *DB) Range(reverse bool, fn func(key, val []byte) bool) error {
	return db.eng.Read(func(tx ptm.Tx) error {
		db.m.Range(tx, reverse, fn)
		return nil
	})
}

// RangeTx iterates all pairs inside an existing transaction on this
// store's engine, so a caller can combine the scan with point reads (or
// writes) in the same atomic snapshot — the shard migration copier
// snapshots a keyspace slice this way. The callback's key/val slices are
// only valid during the call; copy what outlives the transaction.
func (db *DB) RangeTx(tx ptm.Tx, reverse bool, fn func(key, val []byte) bool) {
	db.m.Range(tx, reverse, fn)
}

// Stats reports store-level counters and capacity.
type Stats struct {
	// Pairs is the number of live key-value pairs.
	Pairs int
	// UsedBytes is the persistent-heap high-water mark (what recovery
	// would copy).
	UsedBytes int
	// RegionBytes is the capacity of each twin copy.
	RegionBytes int
	// UpdateTxs and ReadTxs count transactions since open.
	UpdateTxs uint64
	ReadTxs   uint64
}

// Stats returns a snapshot of store statistics.
func (db *DB) Stats() Stats {
	ts := db.eng.Stats()
	return Stats{
		Pairs:       db.Len(),
		UsedBytes:   db.eng.Watermark(),
		RegionBytes: db.eng.RegionSize(),
		UpdateTxs:   ts.UpdateTxs,
		ReadTxs:     ts.ReadTxs,
	}
}

// Close writes the image back to Path (if configured). The store must be
// quiescent.
func (db *DB) Close() error {
	if db.path != "" {
		if err := db.eng.Device().SaveFile(db.path); err != nil {
			return err
		}
	}
	return db.eng.Close()
}

// Batch collects operations for atomic, durable application via Write —
// genuine transactional semantics, strictly stronger than LevelDB's
// write batches.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	del      bool
	key, val []byte
}

// Put queues a durable insertion/replacement.
func (b *Batch) Put(key, val []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), val: append([]byte(nil), val...)})
}

// Delete queues a removal.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{del: true, key: append([]byte(nil), key...)})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Each calls fn for every queued operation in queue order — the order Apply
// uses, so iteration observes exactly the last-op-wins sequence. del is true
// for Delete entries (val is nil); the key and value slices are the batch's
// own copies and must not be mutated.
func (b *Batch) Each(fn func(del bool, key, val []byte)) {
	for _, op := range b.ops {
		fn(op.del, op.key, op.val)
	}
}

// Apply applies the batch's operations, in queue order, inside an existing
// update transaction. It is the building block under Write and under the
// sharded store's cross-shard commits, which need a batch's effects plus
// their own bookkeeping in ONE durable transaction.
func (db *DB) Apply(tx ptm.Tx, b *Batch) error {
	for _, op := range b.ops {
		if op.del {
			if _, err := db.m.Delete(tx, op.key); err != nil {
				return err
			}
		} else if _, err := db.m.Put(tx, op.key, op.val); err != nil {
			return err
		}
	}
	return nil
}

// GetTx reads key inside an existing transaction (read-only or update),
// returning ErrNotFound when absent. Together with PutTx and DeleteTx it is
// the building block for callers that compose several key operations — and
// their own bookkeeping — into ONE durable transaction, such as the network
// layer's group-committed batches and its read-modify-write commands.
func (db *DB) GetTx(tx ptm.Tx, key []byte) ([]byte, error) {
	v, err := db.m.Get(tx, key, nil)
	if errors.Is(err, pstruct.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

// PutTx stores the pair inside an existing update transaction.
func (db *DB) PutTx(tx ptm.Tx, key, val []byte) error {
	_, err := db.m.Put(tx, key, val)
	return err
}

// DeleteTx removes key inside an existing update transaction (a no-op if
// absent).
func (db *DB) DeleteTx(tx ptm.Tx, key []byte) error {
	_, err := db.m.Delete(tx, key)
	return err
}

// Write applies the batch atomically in one durable transaction.
func (db *DB) Write(b *Batch) error {
	start := opStart(db.batchNs)
	err := db.eng.Update(func(tx ptm.Tx) error {
		return db.Apply(tx, b)
	})
	opDone(db.batchNs, start)
	return err
}

// Session is a per-goroutine handle for hot paths: it pins the engine's
// per-thread slots, avoiding pool traffic on every operation.
type Session struct {
	db *DB
	h  ptm.Handle
}

// NewSession creates a session; call Close when the goroutine is done.
func (db *DB) NewSession() (*Session, error) {
	h, err := db.eng.NewHandle()
	if err != nil {
		return nil, err
	}
	return &Session{db: db, h: h}, nil
}

// Put durably stores the pair using the session's handle.
func (s *Session) Put(key, val []byte) error {
	start := opStart(s.db.putNs)
	err := s.h.Update(func(tx ptm.Tx) error {
		_, err := s.db.m.Put(tx, key, val)
		return err
	})
	opDone(s.db.putNs, start)
	return err
}

// Get returns the value for key, or ErrNotFound.
func (s *Session) Get(key []byte, dst []byte) ([]byte, error) {
	start := opStart(s.db.getNs)
	var out []byte
	err := s.h.Read(func(tx ptm.Tx) error {
		v, err := s.db.m.Get(tx, key, dst)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	opDone(s.db.getNs, start)
	if errors.Is(err, pstruct.ErrNotFound) {
		return nil, ErrNotFound
	}
	return out, err
}

// Delete durably removes key.
func (s *Session) Delete(key []byte) error {
	start := opStart(s.db.delNs)
	err := s.h.Update(func(tx ptm.Tx) error {
		_, err := s.db.m.Delete(tx, key)
		return err
	})
	opDone(s.db.delNs, start)
	return err
}

// Write applies a batch atomically.
func (s *Session) Write(b *Batch) error {
	start := opStart(s.db.batchNs)
	err := s.h.Update(func(tx ptm.Tx) error {
		return s.db.Apply(tx, b)
	})
	opDone(s.db.batchNs, start)
	return err
}

// Range iterates within one read transaction on the session's handle.
func (s *Session) Range(reverse bool, fn func(key, val []byte) bool) error {
	return s.h.Read(func(tx ptm.Tx) error {
		s.db.m.Range(tx, reverse, fn)
		return nil
	})
}

// Close releases the session's thread slots.
func (s *Session) Close() { s.h.Release() }
