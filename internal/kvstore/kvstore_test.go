package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/pstruct"
)

func openSmall(t testing.TB) *DB {
	t.Helper()
	db, err := Open(Options{RegionSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := openSmall(t)
	if err := db.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("alpha"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("beta")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := db.Put([]byte("alpha"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, _ = db.Get([]byte("alpha"))
	if string(v) != "2" {
		t.Fatalf("overwrite: %q", v)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	if err := db.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("alpha")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if err := db.Delete([]byte("alpha")); err != nil {
		t.Fatalf("delete absent: %v", err)
	}
}

func TestBatchAtomicity(t *testing.T) {
	db := openSmall(t)
	var b Batch
	for i := 0; i < 20; i++ {
		b.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
	}
	b.Delete([]byte("k05"))
	if b.Len() != 21 {
		t.Fatalf("batch Len = %d", b.Len())
	}
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 19 {
		t.Fatalf("Len = %d, want 19", db.Len())
	}
	if _, err := db.Get([]byte("k05")); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key survived batch")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRangeSnapshot(t *testing.T) {
	db := openSmall(t)
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("key%03d", i), fmt.Sprintf("val%03d", i)
		want[k] = v
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	db.Range(false, func(k, v []byte) bool {
		if want[string(k)] != string(v) {
			t.Errorf("pair (%s,%s) unexpected", k, v)
		}
		seen++
		return true
	})
	if seen != 50 {
		t.Errorf("forward range saw %d", seen)
	}
	seen = 0
	db.Range(true, func(k, v []byte) bool { seen++; return true })
	if seen != 50 {
		t.Errorf("reverse range saw %d", seen)
	}
	// Early stop.
	seen = 0
	db.Range(false, func(k, v []byte) bool { seen++; return seen < 7 })
	if seen != 7 {
		t.Errorf("early stop at %d", seen)
	}
}

func TestFileBackedPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "romulusdb.img")
	db, err := Open(Options{RegionSize: 2 << 20, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("durable"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{RegionSize: 2 << 20, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("durable"))
	if err != nil || string(v) != "yes" {
		t.Fatalf("after reopen: %q, %v", v, err)
	}
}

func TestCrashRecoveryMidPut(t *testing.T) {
	db := openSmall(t)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte{byte(i)}, 100))
	}
	dev := db.Engine().Device()
	var img []byte
	n := 0
	dev.SetHooks(&pmem.Hooks{Pwb: func(uint64) {
		n++
		if img == nil && n == 5 {
			img = dev.CrashImage(pmem.KeepQueued)
		}
	}})
	db.Put([]byte("k050"), bytes.Repeat([]byte{0xFF}, 100))
	dev.SetHooks(nil)
	if img == nil {
		t.Fatal("no crash image")
	}
	eng, err := core.Open(pmem.FromImage(img, pmem.ModelDRAM), core.Config{Variant: core.RomLog})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrap as a DB by hand: the map handle is stateless.
	db2 := &DB{eng: eng, m: pstruct.AttachByteMap(rootIdx)}
	v, err := db2.Get([]byte("k050"))
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{50}, 100)
	updated := bytes.Repeat([]byte{0xFF}, 100)
	if !bytes.Equal(v, old) && !bytes.Equal(v, updated) {
		t.Fatalf("k050 neither old nor new after crash: %v...", v[:4])
	}
	if db2.Len() != 100 {
		t.Fatalf("Len after crash = %d", db2.Len())
	}
}

func TestConcurrentSessions(t *testing.T) {
	db := openSmall(t)
	const workers, items = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			s, err := db.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(int64(me)))
			for i := 0; i < items; i++ {
				k := []byte(fmt.Sprintf("w%d-%03d", me, i))
				if err := s.Put(k, []byte{byte(me)}); err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(4) == 0 {
					if v, err := s.Get(k, nil); err != nil || v[0] != byte(me) {
						t.Errorf("Get(%s) = %v, %v", k, v, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != workers*items {
		t.Fatalf("Len = %d, want %d", db.Len(), workers*items)
	}
}

func TestSessionBatchAndRange(t *testing.T) {
	db := openSmall(t)
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var b Batch
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	n := 0
	s.Range(false, func(k, v []byte) bool { n++; return true })
	if n != 2 {
		t.Fatalf("session range saw %d", n)
	}
	if err := s.Delete([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("x"), nil); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key found")
	}
}

func TestStats(t *testing.T) {
	db := openSmall(t)
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Get([]byte("a"))
	s := db.Stats()
	if s.Pairs != 2 {
		t.Errorf("Pairs = %d", s.Pairs)
	}
	if s.UsedBytes <= 0 || s.RegionBytes < s.UsedBytes {
		t.Errorf("capacity stats: %+v", s)
	}
	if s.UpdateTxs < 2 || s.ReadTxs < 1 {
		t.Errorf("tx stats: %+v", s)
	}
}

func TestLargeValues(t *testing.T) {
	db, err := Open(Options{RegionSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// 100 KiB values, as in the fill-100k benchmark.
	val := bytes.Repeat([]byte("z"), 100<<10)
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("big%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Get([]byte("big7"))
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("big value corrupted: len %d, %v", len(got), err)
	}
}
